module hipec

go 1.22
