package hipec_test

import (
	"errors"
	"testing"

	"hipec"
	"hipec/internal/kevent"
)

// TestTypedActivationError checks that the public API surfaces activation
// failures as typed *hipec.Error values carrying the ErrPolicyFault sentinel.
func TestTypedActivationError(t *testing.T) {
	k := hipec.New(hipec.Config{Frames: 64, HiPECDisabled: true})
	sp := k.NewSpace()
	_, _, err := k.Allocate(sp, 16*4096, hipec.WithPolicy(hipec.PolicyFIFO(8)))
	if err == nil {
		t.Fatal("Allocate with a policy succeeded on a HiPEC-disabled kernel")
	}
	var he *hipec.Error
	if !errors.As(err, &he) {
		t.Fatalf("err = %v (%T), want *hipec.Error", err, err)
	}
	if !errors.Is(err, hipec.ErrPolicyFault) {
		t.Fatalf("err = %v, want to wrap ErrPolicyFault", err)
	}
}

// TestDiskFaultDegradesToRevocation pins the acceptance criterion: a hard
// disk failure on a HiPEC-managed region exhausts the region's retry budget,
// surfaces as ErrDiskIO, and leaves the container cleanly revoked rather
// than wedged.
func TestDiskFaultDegradesToRevocation(t *testing.T) {
	k := hipec.New(hipec.Config{
		Frames: 64,
		Faults: hipec.FaultConfig{Seed: 42, Disk: hipec.FaultRule{FailRate: 1}},
	})
	sp := k.NewSpace()
	obj := k.VM.NewObject(16*4096, false)
	if err := k.VM.Populate(obj, nil); err != nil { // contents live on disk, so page-ins hit the device
		t.Fatal(err)
	}
	e, c, err := k.Map(sp, obj, 0, 16*4096,
		hipec.WithPolicy(hipec.PolicyFIFO(8)), hipec.WithRetryBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sp.Touch(e.Start)
	if !errors.Is(err, hipec.ErrDiskIO) {
		t.Fatalf("touch error = %v, want ErrDiskIO", err)
	}
	if c.State() != hipec.StateRevoked {
		t.Fatalf("container state = %v after exhausted recovery, want revoked", c.State())
	}
	if c.Allocated() != 0 {
		t.Fatalf("revoked container still holds %d frames", c.Allocated())
	}
}

// TestTransientDiskFaultRetries checks the other half of the ladder: when
// failures are intermittent, the bounded retry path absorbs them and the
// workload never sees an error.
func TestTransientDiskFaultRetries(t *testing.T) {
	k := hipec.New(hipec.Config{
		Frames: 64,
		Faults: hipec.FaultConfig{Seed: 1, Disk: hipec.FaultRule{FailEvery: 2}},
	})
	sp := k.NewSpace()
	obj := k.VM.NewObject(16*4096, false)
	if err := k.VM.Populate(obj, nil); err != nil {
		t.Fatal(err)
	}
	e, err := sp.Map(obj, 0, 16*4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 16; i++ {
		if _, err := sp.Touch(e.Start + i*4096); err != nil {
			t.Fatalf("page %d: %v (retries should absorb every-2nd failures)", i, err)
		}
	}
	if got := k.Registry().Count(kevent.EvFaultRetry); got == 0 {
		t.Fatal("no fault.retry events recorded despite injected failures")
	}
	if got := k.Registry().Count(kevent.EvInjectDiskError); got == 0 {
		t.Fatal("no disk errors injected")
	}
}
