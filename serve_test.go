package hipec_test

// Facade tests for the network layer: Serve and Dial through the public
// package only, both halves of the Client seam doing the same work.

import (
	"bytes"
	"errors"
	"testing"

	"hipec"
)

// One workload, two transports: the in-process Loop and the network client
// run the same Client code against kernels built the same way, and both
// round-trip payloads.
func TestClientSeamBothTransports(t *testing.T) {
	run := func(t *testing.T, c hipec.Client) {
		if c.PageSize() != 4096 {
			t.Fatalf("PageSize = %d, want 4096", c.PageSize())
		}
		r, err := c.Open(8, hipec.WithPolicySource("fifo2c", hipec.PolicyFIFOSecondChanceSource(4)))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		payload := []byte("seam payload")
		if err := c.WritePage(r, 5, payload); err != nil {
			t.Fatalf("write: %v", err)
		}
		buf := make([]byte, len(payload))
		n, err := c.ReadPage(r, 5, buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(buf[:n], payload) {
			t.Fatalf("read back %q, want %q", buf[:n], payload)
		}
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Accesses == 0 {
			t.Fatalf("stats show no traffic: %+v", st)
		}
		if err := c.FreeRegion(r); err != nil {
			t.Fatalf("free: %v", err)
		}
		if err := c.TouchPage(r, 0); !errors.Is(err, hipec.ErrBadRequest) {
			t.Fatalf("touch after free: got %v, want ErrBadRequest", err)
		}
	}

	t.Run("in-process", func(t *testing.T) {
		k := hipec.New(hipec.Config{
			Frames:        64,
			PageSize:      4096,
			BurstFraction: 0.5,
			Substrate:     hipec.SubstrateConfig{Kind: hipec.SubstrateReal},
		})
		loop := hipec.NewClient(k)
		defer loop.Close()
		run(t, loop)
	})
	t.Run("networked", func(t *testing.T) {
		store, err := hipec.NewTempFileStore("", 4096)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		srv, err := hipec.Serve("127.0.0.1:0", store, hipec.WithFrames(64))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := hipec.Dial(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		run(t, c)
	})
}
