package hipec_test

// End-to-end scenarios exercising the whole stack through the public API:
// the §3 motivation (partitioned pools prevent interference), multi-policy
// coexistence, failure injection, and long-haul stability.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hipec"
)

// TestPartitionedPoolsPreventInterference reproduces the paper's core §3
// claim: with the centralized pool, a scanning application evicts a
// well-behaved application's working set; with HiPEC private pools it
// cannot.
func TestPartitionedPoolsPreventInterference(t *testing.T) {
	const (
		pageSize = 4096
		hotPages = 1024
		scanSize = 8192 * pageSize
	)
	run := func(scannerUsesHiPEC bool) int64 {
		k := hipec.New(hipec.Config{Frames: 4096, StartChecker: scannerUsesHiPEC})
		victim := k.NewSpace()
		scanner := k.NewSpace()

		hot, err := victim.Allocate(hotPages * pageSize)
		if err != nil {
			t.Fatal(err)
		}
		for a := hot.Start; a < hot.End; a += pageSize {
			victim.Touch(a)
		}
		warm := victim.Stats().Faults

		var region *hipec.MapEntry
		if scannerUsesHiPEC {
			region, _, err = k.Allocate(scanner, scanSize, hipec.WithPolicy(hipec.PolicySequentialToss(64)))
		} else {
			region, err = scanner.Allocate(scanSize)
		}
		if err != nil {
			t.Fatal(err)
		}
		for a := region.Start; a < region.End; a += pageSize {
			if _, err := scanner.Touch(a); err != nil {
				t.Fatal(err)
			}
		}
		// Victim resumes.
		for a := hot.Start; a < hot.End; a += pageSize {
			victim.Touch(a)
		}
		return victim.Stats().Faults - warm
	}

	shared := run(false)
	private := run(true)
	if shared < hotPages/2 {
		t.Fatalf("shared pool scan should evict most of the working set, refaults=%d", shared)
	}
	if private != 0 {
		t.Fatalf("HiPEC-contained scan still caused %d refaults", private)
	}
}

// TestManyContainersCoexist runs several specific applications with
// different policies simultaneously and checks global frame accounting.
func TestManyContainersCoexist(t *testing.T) {
	k := hipec.New(hipec.Config{Frames: 8192, StartChecker: true})
	mks := []func(int) *hipec.Spec{
		hipec.PolicyFIFO, hipec.PolicyLRU, hipec.PolicyMRU,
		hipec.PolicyFIFOSecondChance, hipec.PolicySequentialToss,
	}
	type app struct {
		sp *hipec.AddressSpace
		e  *hipec.MapEntry
		c  *hipec.Container
	}
	var apps []app
	for i, mk := range mks {
		sp := k.NewSpace()
		e, c, err := k.Allocate(sp, 256*4096, hipec.WithPolicy(mk(64+i*16)))
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app{sp, e, c})
	}
	// Interleave sweeps.
	for round := 0; round < 4; round++ {
		for _, a := range apps {
			for addr := a.e.Start; addr < a.e.End; addr += 4096 {
				if _, err := a.sp.Write(addr); err != nil {
					t.Fatalf("%s: %v", a.c.Name(), err)
				}
			}
		}
	}
	k.Clock.Advance(time.Second) // drain async laundering
	total := 0
	for _, a := range apps {
		if a.c.State() != hipec.StateActive {
			t.Fatalf("%s died: %s", a.c.Name(), a.c.TerminationReason())
		}
		total += a.c.Allocated()
	}
	if total != k.FM.SpecificTotal() {
		t.Fatalf("accounting drift: containers hold %d, manager says %d", total, k.FM.SpecificTotal())
	}
	if total > k.FM.PartitionBurst {
		t.Fatalf("specific total %d exceeds burst %d", total, k.FM.PartitionBurst)
	}
	// Tear down and verify every frame returns.
	for _, a := range apps {
		k.DestroyContainer(a.c)
	}
	k.Clock.Advance(time.Second)
	if k.FM.SpecificTotal() != 0 {
		t.Fatalf("frames leaked: specific total %d after teardown", k.FM.SpecificTotal())
	}
	if got := k.Daemon.FreeCount(); got != 8192 {
		t.Fatalf("machine free = %d, want all 8192", got)
	}
}

// TestMaliciousPoliciesAreContained injects hostile/broken policies and
// checks the kernel survives with correct accounting every time.
func TestMaliciousPoliciesAreContained(t *testing.T) {
	hostile := []struct {
		name string
		src  string
	}{
		{"infinite-loop", `
			minframe = 8
			var x = 1
			event PageFault() {
			    while (x == 1) { x = 1 }
			    page = dequeue_head(_free_queue)
			    return page
			}
			event ReclaimFrame() { return }`},
		{"dequeue-empty", `
			minframe = 8
			event PageFault() {
			    page = dequeue_head(_inactive_queue)
			    return page
			}
			event ReclaimFrame() { return }`},
		{"return-nothing", `
			minframe = 8
			event PageFault() { return }
			event ReclaimFrame() { return }`},
		{"div-by-zero", `
			minframe = 8
			var a = 1
			var b = 0
			event PageFault() {
			    a = a / b
			    page = dequeue_head(_free_queue)
			    return page
			}
			event ReclaimFrame() { return }`},
	}
	for _, h := range hostile {
		t.Run(h.name, func(t *testing.T) {
			k := hipec.New(hipec.Config{Frames: 512, StartChecker: true})
			k.Checker.TimeOut = 5 * time.Millisecond
			k.Checker.WakeUp = 10 * time.Millisecond
			sp := k.NewSpace()
			spec, err := hipec.Translate(h.name, h.src)
			if err != nil {
				t.Fatalf("translate: %v", err)
			}
			e, c, err := k.Allocate(sp, 16*4096, hipec.WithPolicy(spec))
			if err != nil {
				t.Fatalf("activation: %v", err)
			}
			if _, err := sp.Touch(e.Start); err == nil {
				t.Fatal("hostile policy fault succeeded")
			}
			if c.State() != hipec.StateTerminated {
				t.Fatalf("state = %v", c.State())
			}
			// The kernel recovered every frame and the region still works
			// under the default policy.
			if k.FM.SpecificTotal() != 0 {
				t.Fatalf("frames leaked: %d", k.FM.SpecificTotal())
			}
			if _, err := sp.Touch(e.Start); err != nil {
				t.Fatalf("fallback fault failed: %v", err)
			}
		})
	}
}

// TestLongHaulStability runs a mixed workload for many rounds and validates
// global conservation at the end (the security checker's deep sweep).
func TestLongHaulStability(t *testing.T) {
	k := hipec.New(hipec.Config{Frames: 2048, StartChecker: true})
	k.Checker.DeepSweep = true
	specific := k.NewSpace()
	e1, c1, err := k.Allocate(specific, 512*4096, hipec.WithPolicy(hipec.PolicyFIFOSecondChance(128)))
	if err != nil {
		t.Fatal(err)
	}
	background := k.NewSpace()
	e2, err := background.Allocate(1024 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(12345)
	next := func(n int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		return int64(state>>33) % n
	}
	for i := 0; i < 30000; i++ {
		if i%3 == 0 {
			addr := e1.Start + next(512)*4096
			if _, err := specific.Write(addr); err != nil {
				t.Fatalf("specific access %d: %v", i, err)
			}
		} else {
			addr := e2.Start + next(1024)*4096
			if _, err := background.Touch(addr); err != nil {
				t.Fatalf("background access %d: %v", i, err)
			}
		}
	}
	k.Clock.Advance(10 * time.Second)
	if c1.State() != hipec.StateActive {
		t.Fatal(c1.TerminationReason())
	}
	if k.Checker.Stats().SweepErrors != 0 {
		t.Fatalf("deep sweep found %d violations", k.Checker.Stats().SweepErrors)
	}
	if k.Checker.Stats().Wakeups == 0 {
		t.Fatal("checker never woke")
	}
}

// TestHundredRegionsOneKernel stresses map-entry handling.
func TestHundredRegionsOneKernel(t *testing.T) {
	k := hipec.New(hipec.Config{Frames: 8192})
	sp := k.NewSpace()
	var entries []*hipec.MapEntry
	for i := 0; i < 100; i++ {
		e, err := sp.Allocate(4 * 4096)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	for i, e := range entries {
		p, err := sp.Write(e.Start + int64(i%4)*4096)
		if err != nil {
			t.Fatalf("region %d: %v", i, err)
		}
		if p == nil {
			t.Fatal("nil page")
		}
	}
	if sp.Stats().Faults != 100 {
		t.Fatalf("faults = %d", sp.Stats().Faults)
	}
}

// TestTable2ByteEncodingStability pins the byte encoding of the translated
// Figure 4 policy's first comparison against the paper's Table 2 row
// (02 02 0C 01 — "if(_free_count > reserved_target)").
func TestTable2ByteEncodingStability(t *testing.T) {
	spec := hipec.PolicyFIFOSecondChance(16)
	prog := spec.Events[hipec.EventPageFault]
	want := hipec.Command(0x02020C01)
	found := false
	for _, cmd := range prog {
		if cmd == want {
			found = true
			break
		}
	}
	if !found {
		var dump []string
		for _, cmd := range prog {
			dump = append(dump, fmt.Sprintf("%08x", uint32(cmd)))
		}
		t.Fatalf("Table 2 row 1 encoding %08x not found in PageFault program: %s",
			uint32(want), strings.Join(dump, " "))
	}
}
