package hipec_test

// Runnable godoc examples for the public API.

import (
	"fmt"
	"strings"

	"hipec"
)

// Example shows the end-to-end flow: translate a policy, activate it on a
// region, fault pages through it.
func Example() {
	k := hipec.New(hipec.Config{Frames: 1024})
	task := k.NewSpace()

	spec, err := hipec.Translate("demo-fifo", `
	    minframe = 8
	    event PageFault() {
	        if (empty(_free_queue)) { fifo(_active_queue) }
	        page = dequeue_head(_free_queue)
	        return page
	    }
	    event ReclaimFrame() {
	        if (!empty(_free_queue)) { release(1) }
	        return
	    }`)
	if err != nil {
		panic(err)
	}
	region, container, err := k.Allocate(task, 16*4096, hipec.WithPolicy(spec))
	if err != nil {
		panic(err)
	}
	for addr := region.Start; addr < region.End; addr += 4096 {
		if _, err := task.Touch(addr); err != nil {
			panic(err)
		}
	}
	fmt.Printf("faults=%d resident=%d pool=%d state=%v\n",
		task.Stats().Faults, region.Object.ResidentCount(), container.Allocated(), container.State())
	// Output: faults=16 resident=8 pool=8 state=active
}

// ExampleTranslate compiles the paper's Figure 4 pseudo-code and shows one
// line of the resulting Table-2-style listing.
func ExampleTranslate() {
	spec, err := hipec.Translate("fig4", `
	    minframe = 16
	    event PageFault() {
	        if (_free_count > reserve_target) {
	            page = de_queue_head(_free_queue)
	        } else {
	            activate Lack_free_frame()
	            page = de_queue_head(_free_queue)
	        }
	        return page
	    }
	    event Lack_free_frame() { fifo(_active_queue) }
	    event ReclaimFrame() { return }`)
	if err != nil {
		panic(err)
	}
	listing := strings.SplitAfterN(hipec.Disassemble(spec.Events[hipec.EventPageFault]), "\n", 3)
	fmt.Print(listing[0] + listing[1])
	// Output:
	//   0  48695045  HiPEC Magic No
	//   1  02 02 0c 01  Comp _free_count > reserved_target
}

// ExampleOptimalFaults compares a HiPEC policy against the Belady-optimal
// lower bound on the same reference trace.
func ExampleOptimalFaults() {
	// A cyclic scan of 12 pages with 8 frames: LRU faults on every
	// reference, OPT keeps a prefix.
	tr := &hipec.Trace{Pages: 12}
	for sweep := 0; sweep < 4; sweep++ {
		for p := int64(0); p < 12; p++ {
			tr.Records = append(tr.Records, hipec.TraceRecord{Page: p})
		}
	}
	fmt.Printf("LRU=%d OPT=%d\n", hipec.LRUFaults(tr, 8), hipec.OptimalFaults(tr, 8))
	// Output: LRU=48 OPT=24
}
