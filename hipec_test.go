package hipec_test

// Facade integration tests: everything here goes through the public hipec
// package only, exactly as a downstream user would.

import (
	"strings"
	"testing"
	"time"

	"hipec"
)

func TestQuickstartFlow(t *testing.T) {
	k := hipec.New(hipec.Config{Frames: 4096})
	task := k.NewSpace()
	spec, err := hipec.Translate("mru", `
	    minframe = 64
	    event PageFault() {
	        if (empty(_free_queue)) { mru(_active_queue) }
	        page = dequeue_head(_free_queue)
	        return page
	    }
	    event ReclaimFrame() {
	        if (empty(_free_queue)) { fifo(_active_queue) }
	        if (!empty(_free_queue)) { release(1) }
	        return
	    }`)
	if err != nil {
		t.Fatal(err)
	}
	region, container, err := k.Allocate(task, 1<<20, hipec.WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	for addr := region.Start; addr < region.End; addr += 4096 {
		if _, err := task.Touch(addr); err != nil {
			t.Fatal(err)
		}
	}
	if container.Allocated() != 64 {
		t.Fatalf("allocated = %d", container.Allocated())
	}
	if task.Stats().Faults != 256 {
		t.Fatalf("faults = %d, want 256", task.Stats().Faults)
	}
	if k.Clock.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestCannedPoliciesViaFacade(t *testing.T) {
	for _, mk := range []func(int) *hipec.Spec{
		hipec.PolicyFIFO, hipec.PolicyLRU, hipec.PolicyMRU,
		hipec.PolicyFIFOSecondChance, hipec.PolicySequentialToss,
	} {
		spec := mk(16)
		k := hipec.New(hipec.Config{Frames: 1024})
		task := k.NewSpace()
		region, _, err := k.Allocate(task, 32*4096, hipec.WithPolicy(spec))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for addr := region.Start; addr < region.End; addr += 4096 {
			if _, err := task.Touch(addr); err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
		}
	}
}

func TestPolicyByName(t *testing.T) {
	if _, err := hipec.PolicyByName("mru", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := hipec.PolicyByName("nope", 8); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDisassembleViaFacade(t *testing.T) {
	spec := hipec.PolicyMRU(8)
	out := hipec.DisassembleSpec(spec)
	if !strings.Contains(out, "MRU") || !strings.Contains(out, "PageFault") {
		t.Fatalf("disassembly incomplete:\n%s", out)
	}
}

func TestVirtualTimeDeterminism(t *testing.T) {
	elapsed := func() time.Duration {
		k := hipec.New(hipec.Config{Frames: 512})
		task := k.NewSpace()
		region, _, err := k.Allocate(task, 64*4096, hipec.WithPolicy(hipec.PolicyFIFO(32)))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			for addr := region.Start; addr < region.End; addr += 4096 {
				task.Touch(addr)
			}
		}
		return time.Duration(k.Clock.Now())
	}
	if a, b := elapsed(), elapsed(); a != b {
		t.Fatalf("nondeterministic elapsed time: %v vs %v", a, b)
	}
}

func TestMinFrameErrorExposed(t *testing.T) {
	k := hipec.New(hipec.Config{Frames: 64})
	task := k.NewSpace()
	_, _, err := k.Allocate(task, 1<<20, hipec.WithPolicy(hipec.PolicyFIFO(10000)))
	if err == nil {
		t.Fatal("oversized minFrame accepted")
	}
}

func TestEMMFacade(t *testing.T) {
	k := hipec.New(hipec.Config{Frames: 256, KeepData: true})
	// A nil IPC model skips boundary-cost charging; the pager still works.
	pager := hipec.NewCompressingPager("zram", k.Clock, nil, 4096)
	obj := k.VM.NewObject(8*4096, true)
	obj.ExternalPager = pager
	task := k.NewSpace()
	region, _, err := k.Map(task, obj, 0, obj.Size, hipec.WithPolicy(hipec.PolicyFIFO(4)))
	if err != nil {
		t.Fatal(err)
	}
	for addr := region.Start; addr < region.End; addr += 4096 {
		if _, err := task.Write(addr); err != nil {
			t.Fatal(err)
		}
	}
	if pager.Stats.Returns == 0 {
		t.Fatal("compressing pager never received evictions")
	}
}
