package hipec_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablation benchmarks for the design choices called
// out in DESIGN.md (per-command interpreter dispatch, fault-path cost by
// mechanism, victim selection, translator throughput, reclamation policy).
//
// The table/figure benchmarks run the experiments at reduced scale per
// iteration so `go test -bench .` stays quick; `cmd/experiments` runs them
// at full paper scale.

import (
	"syscall"
	"testing"

	"hipec"
	"hipec/internal/aim"
	"hipec/internal/bench"
	"hipec/internal/core"
	"hipec/internal/hpl"
	"hipec/internal/machipc"
	"hipec/internal/policies"
	"hipec/internal/substrate"
	"hipec/internal/vm"
	"hipec/internal/workload"
)

// --- Table 3: HiPEC overhead on a 40 MB fault storm -------------------------

func BenchmarkTable3NoIO(b *testing.B) {
	cfg := bench.Table3Config{RegionBytes: 4 << 20, Frames: 4096}
	for i := 0; i < b.N; i++ {
		r, err := bench.RunTable3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.OverheadNoIO <= 0 {
			b.Fatal("no overhead measured")
		}
	}
}

// --- Table 4: mechanism costs ------------------------------------------------

// BenchmarkTable4HiPECSimpleFault measures the real cost of the paper's
// ≈150 ns row: fetching and decoding the Comp/DeQueue/Return simple-fault
// path in the policy executor.
func BenchmarkTable4HiPECSimpleFault(b *testing.B) {
	k := core.New(core.Config{Frames: 1024})
	k.Executor.Costs = core.ExecCosts{}
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 64*4096, hipec.WithPolicy(policies.FIFO(64)))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := k.Executor.Run(c, core.EventPageFault)
		if err != nil {
			b.Fatal(err)
		}
		c.Free.EnqueueHead(res.Page)
		c.Operand(core.SlotPageReg).Page = nil
	}
}

// BenchmarkTable4NullSyscall measures a real trivial system call on this
// host, the modern analogue of the paper's 19 µs null syscall.
func BenchmarkTable4NullSyscall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = syscall.Getpid()
	}
}

// BenchmarkTable4NullIPC measures a real goroutine-channel RPC round trip,
// the modern analogue of the paper's 292 µs null IPC.
func BenchmarkTable4NullIPC(b *testing.B) {
	p := machipc.NewRealPort()
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Call(i) != i {
			b.Fatal("bad echo")
		}
	}
}

// --- Figure 5: AIM throughput -------------------------------------------------

func BenchmarkFigure5AIMStandardJob(b *testing.B) {
	// A fresh kernel per iteration: aim.Run creates address spaces that
	// live for the kernel's lifetime, so reusing one kernel across b.N
	// iterations would grow without bound.
	mix := aim.StandardMix()
	mix.ThinkTime = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := core.New(core.Config{Frames: 2048})
		if _, err := aim.Run(k, mix, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5SweepQuick(b *testing.B) {
	cfg := bench.Figure5Config{Frames: 2048, UserCounts: []int{1, 4}, JobsPerUser: 2}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFigure5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: nested-loop join ------------------------------------------------

func benchmarkJoin(b *testing.B, policy string) {
	cfg := workload.JoinConfig{
		InnerBytes: 4 << 10,
		OuterBytes: 60 << 20 / 256,
		TupleSize:  64,
		PageSize:   4096,
		MemBytes:   40 << 20 / 256,
	}
	pool := int(cfg.MemBytes / 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := core.New(core.Config{Frames: 4 * pool})
		sp := k.NewSpace()
		spec, err := policies.ByName(policy, pool)
		if err != nil {
			b.Fatal(err)
		}
		obj := k.VM.NewObject(cfg.OuterBytes, false)
		if err := k.VM.Populate(obj, nil); err != nil {
			b.Fatal(err)
		}
		e, _, err := k.Map(sp, obj, 0, obj.Size, hipec.WithPolicy(spec))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.RunJoin(sp, e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6JoinLRU(b *testing.B) { benchmarkJoin(b, "lru") }
func BenchmarkFigure6JoinMRU(b *testing.B) { benchmarkJoin(b, "mru") }

// --- Ablations -----------------------------------------------------------------

// Per-command interpreter dispatch cost, one benchmark per representative
// command class (the "simple commands induce more overhead" trade-off of
// §4.2).
func benchmarkCommandLoop(b *testing.B, body ...core.Command) {
	k := core.New(core.Config{Frames: 256})
	k.Executor.Costs = core.ExecCosts{}
	sp := k.NewSpace()
	_, c, err := k.Allocate(sp, 4096, hipec.WithPolicy(policies.FIFO(8)))
	if err != nil {
		b.Fatal(err)
	}
	prog := core.NewProgram(append(body, core.Encode(core.OpReturn, core.SlotScratch, 0, 0))...)
	ev := addEvent(c, prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Executor.Run(c, ev); err != nil {
			b.Fatal(err)
		}
	}
}

// addEvent appends an extra event program to a container (bench-only
// backdoor via the exported test hook pattern: events are data).
func addEvent(c *core.Container, prog core.Program) int {
	return c.AppendEventForTest(prog)
}

func BenchmarkCommandComp(b *testing.B) {
	benchmarkCommandLoop(b, core.Encode(core.OpComp, core.SlotFreeCount, core.SlotZero, core.CompGT))
}

func BenchmarkCommandArith(b *testing.B) {
	benchmarkCommandLoop(b, core.Encode(core.OpArith, core.SlotScratch, core.SlotOne, core.ArithAdd))
}

func BenchmarkCommandJump(b *testing.B) {
	benchmarkCommandLoop(b,
		core.Encode(core.OpComp, core.SlotZero, core.SlotOne, core.CompGT), // false
		core.Encode(core.OpJump, core.JumpIfTrue, 0, 1),                    // not taken
	)
}

func BenchmarkCommandQueueOps(b *testing.B) {
	benchmarkCommandLoop(b,
		core.Encode(core.OpDeQueue, core.SlotPageReg, core.SlotFreeQueue, core.QueueHead),
		core.Encode(core.OpEnQueue, core.SlotPageReg, core.SlotFreeQueue, core.QueueTail),
	)
}

// Fault-path cost by mechanism: default daemon, HiPEC policy, external
// pager over IPC. Virtual costs are zeroed so the benchmark isolates the
// real interpreter/IPC machinery.
func benchmarkFaultPath(b *testing.B, mode string) {
	clock := substrate.NewSimClock()
	const pool = 64
	switch mode {
	case "hipec":
		k := core.New(core.Config{Frames: 1024, VMCosts: vm.Costs{FaultService: 1}})
		k.Executor.Costs = core.ExecCosts{}
		sp := k.NewSpace()
		e, _, err := k.Allocate(sp, 128*4096, hipec.WithPolicy(policies.FIFO(pool)))
		if err != nil {
			b.Fatal(err)
		}
		run := cyclicToucher(sp, e)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	case "vanilla":
		k := core.New(core.Config{Frames: pool + 16, VMCosts: vm.Costs{FaultService: 1}, HiPECDisabled: true})
		sp := k.NewSpace()
		e, err := sp.Allocate(128 * 4096)
		if err != nil {
			b.Fatal(err)
		}
		run := cyclicToucher(sp, e)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	case "extpager":
		sys := vm.NewSystem(clock, vm.Config{Frames: 1024, Costs: vm.Costs{FaultService: 1}})
		ipc := machipc.New(clock, machipc.Costs{NullSyscall: 1, NullIPC: 1, Upcall: 1})
		pol, err := machipc.NewExtPager("bench", ipc, sys, pool, nil)
		if err != nil {
			b.Fatal(err)
		}
		sys.SetDefaultPolicy(pol)
		sp := sys.NewSpace()
		e, err := sp.Allocate(128 * 4096)
		if err != nil {
			b.Fatal(err)
		}
		run := cyclicToucher(sp, e)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	}
}

// cyclicToucher returns a closure touching the next page of the region on
// each call (wrapping), so every call under memory pressure is a fault.
func cyclicToucher(sp *vm.AddressSpace, e *vm.MapEntry) func() {
	addr := e.Start
	return func() {
		if _, err := sp.Touch(addr); err != nil {
			panic(err)
		}
		addr += 4096
		if addr >= e.End {
			addr = e.Start
		}
	}
}

func BenchmarkFaultPathVanilla(b *testing.B)  { benchmarkFaultPath(b, "vanilla") }
func BenchmarkFaultPathHiPEC(b *testing.B)    { benchmarkFaultPath(b, "hipec") }
func BenchmarkFaultPathExtPager(b *testing.B) { benchmarkFaultPath(b, "extpager") }

// Victim selection: recency-ordered O(1) queues vs LastAccess scan.
func benchmarkVictim(b *testing.B, accessOrder bool) {
	src := `
minframe = 512
event PageFault() {
    if (empty(_free_queue)) { lru(_active_queue) }
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() { if (!empty(_free_queue)) { release(1) } return }
`
	if accessOrder {
		src = "access_order = 1\n" + src
	}
	spec := hipec.MustTranslate("victim", src)
	k := core.New(core.Config{Frames: 2048})
	k.Executor.Costs = core.ExecCosts{}
	sp := k.NewSpace()
	e, _, err := k.Allocate(sp, 1024*4096, hipec.WithPolicy(spec))
	if err != nil {
		b.Fatal(err)
	}
	run := cyclicToucher(sp, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkVictimLRUScan(b *testing.B)        { benchmarkVictim(b, false) }
func BenchmarkVictimLRUAccessOrder(b *testing.B) { benchmarkVictim(b, true) }

// Translator throughput (Figure 4 program).
func BenchmarkTranslatorFigure4(b *testing.B) {
	src := policies.FIFOSecondChanceSource(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hpl.Translate("fig4", src); err != nil {
			b.Fatal(err)
		}
	}
}

// Reclamation policy ablation (§6 future work #4): FAFR vs round-robin vs
// proportional, measured as a full over-burst balance pass.
func benchmarkReclaim(b *testing.B, pol core.ReclaimPolicy) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := core.New(core.Config{Frames: 1024})
		k.FM.ReclaimPolicy = pol
		sp := k.NewSpace()
		for j := 0; j < 4; j++ {
			_, c, err := k.Allocate(sp, 64*4096, hipec.WithPolicy(policies.FIFO(32)))
			if err != nil {
				b.Fatal(err)
			}
			k.FM.Request(c, 64)
		}
		// Shrink the watermark so the balance pass must claw back ~184
		// frames through the containers' ReclaimFrame events — the work
		// being measured.
		k.FM.PartitionBurst = 200
		b.StartTimer()
		k.FM.BalanceSpecific()
		if k.FM.SpecificTotal() > 200 {
			b.Fatal("balance did not reclaim")
		}
	}
}

func BenchmarkReclaimFAFR(b *testing.B)       { benchmarkReclaim(b, core.ReclaimFAFR) }
func BenchmarkReclaimRoundRobin(b *testing.B) { benchmarkReclaim(b, core.ReclaimRoundRobin) }
func BenchmarkReclaimProportional(b *testing.B) {
	benchmarkReclaim(b, core.ReclaimProportional)
}

// End-to-end access throughput of the simulated kernel (accesses/sec of
// wall time) — the simulator's own speed limit.
func BenchmarkSimulatedAccessHit(b *testing.B) {
	k := core.New(core.Config{Frames: 256})
	sp := k.NewSpace()
	e, _, err := k.Allocate(sp, 64*4096, hipec.WithPolicy(policies.FIFO(64)))
	if err != nil {
		b.Fatal(err)
	}
	for a := e.Start; a < e.End; a += 4096 {
		sp.Touch(a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Touch(e.Start + int64(i%64)*4096)
	}
}
