// Package workload provides the memory access patterns driving the
// experiments: the nested-loop join of §5.3 (with its closed-form page
// fault model), plus sequential, cyclic, uniform-random, Zipf and
// hot/cold generators used by the ablation benchmarks.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"hipec/internal/vm"
)

// JoinConfig describes the §5.3 nested-loop join: a pinned 4 KB inner table
// joined against an outer table scanned once per inner tuple.
type JoinConfig struct {
	InnerBytes int64 // inner table size (paper: 4 KB, pinned in memory)
	OuterBytes int64 // outer table size (paper: 20–60 MB)
	TupleSize  int   // bytes per tuple (paper: 64)
	PageSize   int   // physical page size (paper: 4096)
	MemBytes   int64 // memory allocated to the outer table (paper: 40 MB)
}

// DefaultJoin returns the paper's parameters with the given outer size.
func DefaultJoin(outerBytes int64) JoinConfig {
	return JoinConfig{
		InnerBytes: 4 << 10,
		OuterBytes: outerBytes,
		TupleSize:  64,
		PageSize:   4096,
		MemBytes:   40 << 20,
	}
}

// Loops is the number of outer-table scans: one per inner tuple ("the outer
// table is scanned as many times as the number of tuples in the inner
// table"). With the paper's parameters this is 64.
func (c JoinConfig) Loops() int { return int(c.InnerBytes) / c.TupleSize }

// OuterPages is the outer table's page count.
func (c JoinConfig) OuterPages() int64 { return c.OuterBytes / int64(c.PageSize) }

// LRUPageFaults is the paper's analytic model for the LRU policy:
//
//	PF_l = OutLSize * Loop / PageSize
//
// valid when the outer table exceeds available memory (cyclic faulting on
// every scan); when it fits, only the cold faults remain.
func (c JoinConfig) LRUPageFaults() int64 {
	if c.OuterBytes <= c.MemBytes {
		return c.OuterPages() // cold faults only
	}
	return c.OuterBytes * int64(c.Loops()) / int64(c.PageSize)
}

// MRUPageFaults is the paper's analytic model for the MRU policy:
//
//	PF_m = ((OutLSize − MSize) * (Loop − 1) + OutLSize) / PageSize
func (c JoinConfig) MRUPageFaults() int64 {
	if c.OuterBytes <= c.MemBytes {
		return c.OuterPages()
	}
	return ((c.OuterBytes-c.MemBytes)*int64(c.Loops()-1) + c.OuterBytes) / int64(c.PageSize)
}

// AnalyticGain is the paper's predicted elapsed-time gain:
//
//	Gain = (PF_l − PF_m) * PFHandleTime
func (c JoinConfig) AnalyticGain(pfHandle time.Duration) time.Duration {
	return time.Duration(c.LRUPageFaults()-c.MRUPageFaults()) * pfHandle
}

// JoinResult reports one join run.
type JoinResult struct {
	Elapsed time.Duration
	Faults  int64
	Hits    int64
	PageIns int64
}

// RunJoin drives the join access pattern against the outer region: Loops()
// sequential scans of every outer page. The inner table is assumed pinned
// (its accesses never fault and are not simulated). Elapsed virtual time is
// measured by the caller around this call; fault deltas are returned.
func RunJoin(sp *vm.AddressSpace, outer *vm.MapEntry, cfg JoinConfig) (JoinResult, error) {
	ps := int64(cfg.PageSize)
	f0, h0, p0 := sp.Stats().Faults, sp.Stats().Hits, sp.Stats().PageIns
	loops := cfg.Loops()
	for l := 0; l < loops; l++ {
		for addr := outer.Start; addr < outer.End; addr += ps {
			if _, err := sp.Touch(addr); err != nil {
				return JoinResult{}, fmt.Errorf("join scan %d at %#x: %w", l, addr, err)
			}
		}
	}
	return JoinResult{
		Faults:  sp.Stats().Faults - f0,
		Hits:    sp.Stats().Hits - h0,
		PageIns: sp.Stats().PageIns - p0,
	}, nil
}

// --- generic access generators ---------------------------------------------

// Access is one generated memory reference.
type Access struct {
	Page  int64
	Write bool
}

// Generator produces an access sequence over a region of Pages() pages.
type Generator interface {
	Name() string
	Pages() int64
	Next() Access
}

// Sequential sweeps pages 0..n-1 repeatedly.
type Sequential struct {
	N   int64
	pos int64
}

func (s *Sequential) Name() string { return "sequential" }
func (s *Sequential) Pages() int64 { return s.N }
func (s *Sequential) Next() Access {
	a := Access{Page: s.pos}
	s.pos = (s.pos + 1) % s.N
	return a
}

// Random references pages uniformly at random.
type Random struct {
	N         int64
	WriteFrac float64
	rng       *rand.Rand
}

// NewRandom builds a deterministic uniform generator.
func NewRandom(n int64, writeFrac float64, seed int64) *Random {
	return &Random{N: n, WriteFrac: writeFrac, rng: rand.New(rand.NewSource(seed))}
}

func (r *Random) Name() string { return "random" }
func (r *Random) Pages() int64 { return r.N }
func (r *Random) Next() Access {
	return Access{
		Page:  r.rng.Int63n(r.N),
		Write: r.rng.Float64() < r.WriteFrac,
	}
}

// Zipf references pages with a Zipfian popularity skew (database-like).
type Zipf struct {
	N   int64
	z   *rand.Zipf
	rng *rand.Rand
}

// NewZipf builds a Zipf(s) generator over n pages; s > 1.
func NewZipf(n int64, s float64, seed int64) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{N: n, rng: rng, z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

func (z *Zipf) Name() string { return "zipf" }
func (z *Zipf) Pages() int64 { return z.N }
func (z *Zipf) Next() Access { return Access{Page: int64(z.z.Uint64())} }

// HotCold references a small hot set with high probability.
type HotCold struct {
	N        int64
	HotPages int64
	HotProb  float64
	rng      *rand.Rand
}

// NewHotCold builds a hot/cold generator (hotFrac of pages take hotProb of
// accesses).
func NewHotCold(n int64, hotFrac, hotProb float64, seed int64) *HotCold {
	hot := int64(math.Max(1, hotFrac*float64(n)))
	return &HotCold{N: n, HotPages: hot, HotProb: hotProb, rng: rand.New(rand.NewSource(seed))}
}

func (h *HotCold) Name() string { return "hotcold" }
func (h *HotCold) Pages() int64 { return h.N }
func (h *HotCold) Next() Access {
	if h.rng.Float64() < h.HotProb {
		return Access{Page: h.rng.Int63n(h.HotPages)}
	}
	return Access{Page: h.HotPages + h.rng.Int63n(h.N-h.HotPages)}
}

// Drive applies n accesses from gen to the entry's region, returning the
// number of faults incurred.
func Drive(sp *vm.AddressSpace, e *vm.MapEntry, gen Generator, n int) (faults int64, err error) {
	ps := int64(4096)
	if sz := e.Size() / gen.Pages(); sz > 0 {
		ps = sz
	}
	f0 := sp.Stats().Faults
	for i := 0; i < n; i++ {
		a := gen.Next()
		addr := e.Start + a.Page*ps
		if a.Write {
			_, err = sp.Write(addr)
		} else {
			_, err = sp.Touch(addr)
		}
		if err != nil {
			return sp.Stats().Faults - f0, fmt.Errorf("workload %s access %d: %w", gen.Name(), i, err)
		}
	}
	return sp.Stats().Faults - f0, nil
}
