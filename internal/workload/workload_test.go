package workload

import (
	"testing"
	"time"

	"hipec/internal/core"
	"hipec/internal/policies"
)

func TestJoinAnalyticModelMatchesPaper(t *testing.T) {
	// With the paper's parameters: inner 4 KB / 64 B tuples -> 64 loops.
	cfg := DefaultJoin(60 << 20)
	if cfg.Loops() != 64 {
		t.Fatalf("Loops = %d, want 64", cfg.Loops())
	}
	// PF_l = OutLSize*Loop/PageSize = 60 MB * 64 / 4 KB.
	if got, want := cfg.LRUPageFaults(), int64(60<<20)*64/4096; got != want {
		t.Fatalf("PF_l = %d, want %d", got, want)
	}
	// PF_m = ((60-40)MB*63 + 60MB)/4KB.
	if got, want := cfg.MRUPageFaults(), (int64(20<<20)*63+60<<20)/4096; got != want {
		t.Fatalf("PF_m = %d, want %d", got, want)
	}
	// Gain = (Loop-1)*MSize/PageSize * PFHandleTime.
	gain := cfg.AnalyticGain(time.Millisecond)
	want := time.Duration(63*(40<<20)/4096) * time.Millisecond
	if gain != want {
		t.Fatalf("Gain = %v, want %v", gain, want)
	}
}

func TestJoinFitsInMemoryNoReplacement(t *testing.T) {
	cfg := DefaultJoin(20 << 20) // fits in 40 MB
	if cfg.LRUPageFaults() != cfg.OuterPages() || cfg.MRUPageFaults() != cfg.OuterPages() {
		t.Fatal("in-memory join should only pay cold faults")
	}
}

// TestJoinSimulationMatchesAnalyticModel is the core §5.3 integration test:
// the simulated fault counts must equal the closed-form equations exactly.
func TestJoinSimulationMatchesAnalyticModel(t *testing.T) {
	// Scaled down 1024x to keep the test fast: "memory" is 40 KB = 10
	// pages, outer table 60 KB = 15 pages, inner 4 KB / 64 B = 64 loops.
	const scale = 1 << 10
	cfg := JoinConfig{
		InnerBytes: 4 << 10,
		OuterBytes: 60 << 20 / scale,
		TupleSize:  64,
		PageSize:   4096,
		MemBytes:   40 << 20 / scale,
	}
	pool := int(cfg.MemBytes / int64(cfg.PageSize))

	run := func(spec *core.Spec) (JoinResult, *core.Container) {
		k := core.New(core.Config{Frames: 4 * pool})
		sp := k.NewSpace()
		e, c, err := k.Allocate(sp, cfg.OuterBytes, core.WithPolicy(spec))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunJoin(sp, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, c
	}

	lruRes, _ := run(policies.LRU(pool))
	if lruRes.Faults != cfg.LRUPageFaults() {
		t.Fatalf("LRU faults = %d, analytic %d", lruRes.Faults, cfg.LRUPageFaults())
	}
	// The paper's PF_m idealizes MRU as keeping a fixed prefix resident;
	// a real MRU victim choice rotates one extra frame per sweep. The
	// simulation must land within Loop faults of the closed form (at the
	// paper's full scale this is a 0.02% gap, invisible in Figure 6).
	mruRes, c := run(policies.MRU(pool))
	if delta := mruRes.Faults - cfg.MRUPageFaults(); delta < 0 || delta > int64(cfg.Loops()) {
		t.Fatalf("MRU faults = %d, analytic %d (delta %d > %d loops)",
			mruRes.Faults, cfg.MRUPageFaults(), delta, cfg.Loops())
	}
	if c.State() != core.StateActive {
		t.Fatal(c.TerminationReason())
	}
	if lruRes.Faults <= mruRes.Faults {
		t.Fatal("LRU should fault far more than MRU on the nested-loop join")
	}
}

func TestGenerators(t *testing.T) {
	gens := []Generator{
		&Sequential{N: 16},
		NewRandom(16, 0.5, 1),
		NewZipf(16, 1.2, 1),
		NewHotCold(16, 0.25, 0.9, 1),
	}
	for _, g := range gens {
		t.Run(g.Name(), func(t *testing.T) {
			if g.Pages() != 16 {
				t.Fatalf("Pages = %d", g.Pages())
			}
			for i := 0; i < 1000; i++ {
				a := g.Next()
				if a.Page < 0 || a.Page >= 16 {
					t.Fatalf("access %d out of range: %d", i, a.Page)
				}
			}
		})
	}
}

func TestSequentialWraps(t *testing.T) {
	g := &Sequential{N: 3}
	want := []int64{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := g.Next().Page; got != w {
			t.Fatalf("access %d = %d, want %d", i, got, w)
		}
	}
}

func TestHotColdSkew(t *testing.T) {
	g := NewHotCold(100, 0.1, 0.9, 42)
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Next().Page < g.HotPages {
			hot++
		}
	}
	if frac := float64(hot) / n; frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction = %.3f, want ~0.9", frac)
	}
}

func TestDriveAgainstKernel(t *testing.T) {
	k := core.New(core.Config{Frames: 64})
	sp := k.NewSpace()
	e, _, err := k.Allocate(sp, 32*4096, core.WithPolicy(policies.FIFO(8)))
	if err != nil {
		t.Fatal(err)
	}
	faults, err := Drive(sp, e, NewRandom(32, 0.2, 7), 500)
	if err != nil {
		t.Fatal(err)
	}
	if faults < 8 {
		t.Fatalf("faults = %d, want at least the pool size", faults)
	}
	if sp.Stats().Accesses != 500 {
		t.Fatalf("accesses = %d", sp.Stats().Accesses)
	}
}

func TestZipfIsSkewed(t *testing.T) {
	g := NewZipf(1000, 1.5, 3)
	counts := map[int64]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Next().Page]++
	}
	if counts[0] < counts[500]*2 {
		t.Fatalf("page 0 (%d) not hotter than page 500 (%d)", counts[0], counts[500])
	}
}
