package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"hipec/internal/core"
	"hipec/internal/policies"
	"hipec/internal/workload"
)

func seqTrace(pages int64, sweeps int) *Trace {
	t := &Trace{Pages: pages}
	for s := 0; s < sweeps; s++ {
		for p := int64(0); p < pages; p++ {
			t.Records = append(t.Records, Record{Page: p})
		}
	}
	return t
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := FromGenerator(workload.NewRandom(64, 0.3, 7), 500)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pages != tr.Pages || len(got.Records) != len(tr.Records) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Pages, len(got.Records), tr.Pages, len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                     // no header
		"r 5\n",                // no pages
		"pages 4\nx 1\n",       // bad op
		"pages 4\nr 9\n",       // out of range
		"pages 4\nr\n",         // missing field
		"pages 4\nr notanum\n", // bad number
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d accepted: %q", i, src)
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	tr, err := Read(strings.NewReader("# header\npages 4\n\nr 1\nw 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 || !tr.Records[1].Write {
		t.Fatalf("records = %+v", tr.Records)
	}
}

func TestOPTOnSequentialCycle(t *testing.T) {
	// 10 pages, 3 sweeps, 5 frames. OPT (keep a prefix) faults:
	// 10 cold + 2*(10-5+1)... known closed form for cyclic: per extra
	// sweep N-F+1 misses is LRU-opt... compute a trusted small case by
	// brute reasoning: verify bounds instead of exact constants, plus
	// OPT <= LRU always, and OPT == cold faults when it fits.
	tr := seqTrace(10, 3)
	opt := OPT(tr, 5)
	lru := LRU(tr, 5)
	if opt < 10 {
		t.Fatalf("OPT %d below cold faults", opt)
	}
	if lru != 30 {
		t.Fatalf("LRU on cyclic scan should fault every reference: %d", lru)
	}
	if opt >= lru {
		t.Fatalf("OPT %d not better than LRU %d", opt, lru)
	}
	// Fits in memory: only cold faults.
	if got := OPT(tr, 10); got != 10 {
		t.Fatalf("OPT with full residency = %d, want 10", got)
	}
	if got := LRU(tr, 10); got != 10 {
		t.Fatalf("LRU with full residency = %d, want 10", got)
	}
}

func TestOPTNeverWorseThanLRUProperty(t *testing.T) {
	f := func(seed int64, framesRaw uint8) bool {
		frames := int(framesRaw%16) + 1
		tr := FromGenerator(workload.NewRandom(32, 0, seed), 400)
		return OPT(tr, frames) <= LRU(tr, frames)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOPTMonotoneInFrames(t *testing.T) {
	tr := FromGenerator(workload.NewZipf(64, 1.3, 5), 2000)
	prev := int64(1 << 62)
	for _, frames := range []int{1, 2, 4, 8, 16, 32, 64} {
		got := OPT(tr, frames)
		if got > prev {
			t.Fatalf("OPT not monotone: %d frames -> %d faults (prev %d)", frames, got, prev)
		}
		prev = got
	}
}

// The join trace analytics: MRU's closed-form fault count must be close to
// OPT's (MRU is near-optimal for cyclic scans; both keep a resident
// prefix).
func TestJoinMRUNearOPT(t *testing.T) {
	cfg := workload.JoinConfig{
		InnerBytes: 4 << 10, OuterBytes: 60 << 20 / 1024,
		TupleSize: 64, PageSize: 4096, MemBytes: 40 << 20 / 1024,
	}
	tr := Join(cfg)
	frames := int(cfg.MemBytes / 4096)
	opt := OPT(tr, frames)
	pfm := cfg.MRUPageFaults()
	// The paper's PF_m idealizes a fixed resident prefix of all F frames
	// with no rotation frame — slightly below even Belady's optimum
	// (whose cyclic-scan hit ratio is (F-1)/(N-1)). So PF_m lower-bounds
	// OPT, and OPT stays within one extra fault per sweep of it.
	if opt < pfm {
		t.Fatalf("OPT %d below the PF_m idealization %d — OPT implementation bug", opt, pfm)
	}
	if opt > pfm+int64(cfg.Loops()) {
		t.Fatalf("OPT %d too far above PF_m %d", opt, pfm)
	}
	// And LRU catastrophically worse.
	if lru := LRU(tr, frames); lru != cfg.LRUPageFaults() {
		t.Fatalf("trace LRU %d != analytic %d", lru, cfg.LRUPageFaults())
	}
}

// Replaying a trace through the kernel with the LRU policy must produce
// exactly the fault count the standalone LRU simulator predicts.
func TestReplayMatchesSimulator(t *testing.T) {
	tr := FromGenerator(workload.NewRandom(64, 0.2, 11), 1500)
	const pool = 16
	k := core.New(core.Config{Frames: 512})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, tr.Pages*4096, core.WithPolicy(policies.LRU(pool)))
	if err != nil {
		t.Fatal(err)
	}
	faults, err := Replay(sp, e, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := LRU(tr, pool)
	if faults != want {
		t.Fatalf("kernel LRU faults %d, simulator says %d", faults, want)
	}
	if c.State() != core.StateActive {
		t.Fatal(c.TerminationReason())
	}
}

func TestAnalyze(t *testing.T) {
	tr := &Trace{Pages: 8, Records: []Record{
		{Page: 0}, {Page: 1, Write: true}, {Page: 0}, {Page: 2}, {Page: 0},
	}}
	s := Analyze(tr)
	if s.References != 5 || s.UniquePages != 3 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ReuseP50 != 2 {
		t.Fatalf("ReuseP50 = %d", s.ReuseP50)
	}
	empty := Analyze(&Trace{Pages: 4})
	if empty.ReuseP50 != -1 {
		t.Fatal("empty trace reuse should be -1")
	}
}

func TestZeroFrameEdge(t *testing.T) {
	tr := seqTrace(4, 2)
	if OPT(tr, 0) != int64(len(tr.Records)) || LRU(tr, 0) != int64(len(tr.Records)) {
		t.Fatal("zero frames must fault on every reference")
	}
}
