// Package trace records, serializes, replays and analyzes page-reference
// traces. It gives the repository an apples-to-apples way to compare HiPEC
// policies against each other and against Belady's optimal replacement
// (OPT/MIN), which no online policy can beat — the natural yardstick for
// "did the application-specific policy get close to the best possible?".
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hipec/internal/vm"
	"hipec/internal/workload"
)

// Record is one page reference.
type Record struct {
	Page  int64
	Write bool
}

// Trace is a page-reference string over a region of Pages pages.
type Trace struct {
	Pages   int64
	Records []Record
}

// FromGenerator captures n references from a workload generator.
func FromGenerator(gen workload.Generator, n int) *Trace {
	t := &Trace{Pages: gen.Pages(), Records: make([]Record, 0, n)}
	for i := 0; i < n; i++ {
		a := gen.Next()
		t.Records = append(t.Records, Record{Page: a.Page, Write: a.Write})
	}
	return t
}

// Join builds the §5.3 nested-loop join reference string: Loops sequential
// sweeps over the outer table's pages.
func Join(cfg workload.JoinConfig) *Trace {
	pages := cfg.OuterPages()
	loops := cfg.Loops()
	t := &Trace{Pages: pages, Records: make([]Record, 0, int(pages)*loops)}
	for l := 0; l < loops; l++ {
		for p := int64(0); p < pages; p++ {
			t.Records = append(t.Records, Record{Page: p})
		}
	}
	return t
}

// Len reports the number of references.
func (t *Trace) Len() int { return len(t.Records) }

// WriteTo serializes the trace in a simple line format:
//
//	pages <N>
//	r <page> | w <page>
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := 0
	k, err := fmt.Fprintf(bw, "pages %d\n", t.Pages)
	n += k
	if err != nil {
		return int64(n), err
	}
	for _, r := range t.Records {
		op := "r"
		if r.Write {
			op = "w"
		}
		k, err := fmt.Fprintf(bw, "%s %d\n", op, r.Page)
		n += k
		if err != nil {
			return int64(n), err
		}
	}
	return int64(n), bw.Flush()
}

// Read parses a serialized trace.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want two fields, got %q", line, text)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		switch fields[0] {
		case "pages":
			t.Pages = v
		case "r":
			t.Records = append(t.Records, Record{Page: v})
		case "w":
			t.Records = append(t.Records, Record{Page: v, Write: true})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Pages == 0 {
		return nil, fmt.Errorf("trace: missing pages header")
	}
	for i, r := range t.Records {
		if r.Page < 0 || r.Page >= t.Pages {
			return nil, fmt.Errorf("trace: record %d references page %d outside [0,%d)", i, r.Page, t.Pages)
		}
	}
	return t, nil
}

// Replay drives the trace against a mapped region, returning the fault
// count it induced.
func Replay(sp *vm.AddressSpace, e *vm.MapEntry, t *Trace) (int64, error) {
	ps := int64(4096)
	f0 := sp.Stats().Faults
	for i, r := range t.Records {
		addr := e.Start + r.Page*ps
		var err error
		if r.Write {
			_, err = sp.Write(addr)
		} else {
			_, err = sp.Touch(addr)
		}
		if err != nil {
			return sp.Stats().Faults - f0, fmt.Errorf("trace: replay record %d: %w", i, err)
		}
	}
	return sp.Stats().Faults - f0, nil
}

// OPT computes the fault count of Belady's optimal (MIN) replacement with
// the given number of frames: on a miss with a full cache, evict the
// resident page whose next use is farthest in the future. O(n log n).
func OPT(t *Trace, frames int) int64 {
	if frames <= 0 {
		return int64(len(t.Records))
	}
	n := len(t.Records)
	// nextUse[i] = index of the next reference to the same page, or n.
	nextUse := make([]int, n)
	last := make(map[int64]int, t.Pages)
	for i := n - 1; i >= 0; i-- {
		p := t.Records[i].Page
		if j, ok := last[p]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = n
		}
		last[p] = i
	}
	// Max-heap of (nextUse, page) for resident pages; lazy deletion.
	type entry struct {
		next int
		page int64
	}
	heap := make([]entry, 0, frames+1)
	push := func(e entry) {
		heap = append(heap, e)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if heap[parent].next >= heap[i].next {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() entry {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && heap[l].next > heap[big].next {
				big = l
			}
			if r < len(heap) && heap[r].next > heap[big].next {
				big = r
			}
			if big == i {
				break
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
		return top
	}

	resident := make(map[int64]int, frames) // page -> its current nextUse
	var faults int64
	for i, r := range t.Records {
		if nu, ok := resident[r.Page]; ok {
			_ = nu
			resident[r.Page] = nextUse[i]
			push(entry{next: nextUse[i], page: r.Page})
			continue
		}
		faults++
		if len(resident) >= frames {
			// Evict the resident page with the farthest next use,
			// skipping stale heap entries.
			for {
				e := pop()
				if cur, ok := resident[e.page]; ok && cur == e.next {
					delete(resident, e.page)
					break
				}
			}
		}
		resident[r.Page] = nextUse[i]
		push(entry{next: nextUse[i], page: r.Page})
	}
	return faults
}

// LRU computes the fault count of exact LRU with the given frames using a
// standard recency list simulation. O(n) with map + intrusive order index.
func LRU(t *Trace, frames int) int64 {
	if frames <= 0 {
		return int64(len(t.Records))
	}
	type node struct {
		page       int64
		prev, next *node
	}
	var head, tail *node // head = MRU, tail = LRU
	nodes := make(map[int64]*node, frames)
	unlink := func(nd *node) {
		if nd.prev != nil {
			nd.prev.next = nd.next
		} else {
			head = nd.next
		}
		if nd.next != nil {
			nd.next.prev = nd.prev
		} else {
			tail = nd.prev
		}
		nd.prev, nd.next = nil, nil
	}
	pushFront := func(nd *node) {
		nd.next = head
		if head != nil {
			head.prev = nd
		}
		head = nd
		if tail == nil {
			tail = nd
		}
	}
	var faults int64
	for _, r := range t.Records {
		if nd, ok := nodes[r.Page]; ok {
			unlink(nd)
			pushFront(nd)
			continue
		}
		faults++
		if len(nodes) >= frames {
			victim := tail
			unlink(victim)
			delete(nodes, victim.page)
		}
		nd := &node{page: r.Page}
		nodes[r.Page] = nd
		pushFront(nd)
	}
	return faults
}

// Stats summarizes a trace.
type Stats struct {
	References  int
	UniquePages int64
	Writes      int
	// ReuseP50/P90 are median and 90th-percentile reuse distances
	// (references between consecutive uses of the same page; -1 if no
	// page is reused).
	ReuseP50, ReuseP90 int
}

// Analyze computes summary statistics.
func Analyze(t *Trace) Stats {
	s := Stats{References: len(t.Records), ReuseP50: -1, ReuseP90: -1}
	lastSeen := make(map[int64]int)
	var reuse []int
	for i, r := range t.Records {
		if r.Write {
			s.Writes++
		}
		if j, ok := lastSeen[r.Page]; ok {
			reuse = append(reuse, i-j)
		}
		lastSeen[r.Page] = i
	}
	s.UniquePages = int64(len(lastSeen))
	if len(reuse) > 0 {
		sort.Ints(reuse)
		s.ReuseP50 = reuse[len(reuse)/2]
		s.ReuseP90 = reuse[len(reuse)*9/10]
	}
	return s
}
