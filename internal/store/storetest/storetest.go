// Package storetest is the conformance kit for substrate.Store
// implementations. Every backend — the in-memory reference, the slot-file
// store, and each composite in internal/store — must pass Run against the
// same factory signature, so the Store contract lives in one place instead
// of being re-asserted (slightly differently) per backend.
//
// The kit checks the full written contract: round-trips, overwrite,
// nil-write presence, partial-page zero padding, Contains/Len accounting,
// hiperr.ErrDiskIO propagation under injected failures, and serialized
// concurrent use under the race detector (stores are confined to one actor
// loop in production; the kit mimics that discipline with a mutex and lets
// the race detector prove the backend publishes no state outside it).
package storetest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"hipec/internal/hiperr"
	"hipec/internal/substrate"
)

// Factory opens a fresh, empty store for one subtest. Cleanup is the
// kit's job: stores that implement io.Closer are closed when the subtest
// ends.
type Factory func(t *testing.T) substrate.Store

// Run exercises the store contract against factory-built instances. Each
// subtest gets a fresh store.
func Run(t *testing.T, factory Factory) {
	t.Helper()
	t.Run("RoundTrip", func(t *testing.T) { testRoundTrip(t, open(t, factory)) })
	t.Run("Overwrite", func(t *testing.T) { testOverwrite(t, open(t, factory)) })
	t.Run("NilWritePresence", func(t *testing.T) { testNilWrite(t, open(t, factory)) })
	t.Run("PartialPagePadding", func(t *testing.T) { testPartialPage(t, open(t, factory)) })
	t.Run("ContainsLen", func(t *testing.T) { testContainsLen(t, open(t, factory)) })
	t.Run("Delete", func(t *testing.T) { testDelete(t, open(t, factory)) })
	t.Run("InjectedWriteFailure", func(t *testing.T) { testWriteFailure(t, open(t, factory)) })
	t.Run("InjectedReadFailure", func(t *testing.T) { testReadFailure(t, open(t, factory)) })
	t.Run("ConcurrentSerialized", func(t *testing.T) { testConcurrent(t, open(t, factory)) })
}

func open(t *testing.T, factory Factory) substrate.Store {
	t.Helper()
	s := factory(t)
	if s == nil {
		t.Fatal("factory returned nil store")
	}
	if s.PageSize() <= 0 {
		t.Fatalf("PageSize() = %d, want > 0", s.PageSize())
	}
	if c, ok := s.(io.Closer); ok {
		t.Cleanup(func() {
			if err := c.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		})
	}
	return s
}

// key builds a page-aligned key for page index i of object obj.
func key(s substrate.Store, obj uint64, i int64) substrate.PageKey {
	return substrate.PageKey{Object: obj, Offset: i * int64(s.PageSize())}
}

// pattern fills a full page deterministically from a seed.
func pattern(size int, seed byte) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = seed + byte(i)*7
	}
	return p
}

// mustRead fetches a page that must be present and readable, returning a
// private copy (ReadPage buffers are reusable).
func mustRead(t *testing.T, s substrate.Store, k substrate.PageKey) []byte {
	t.Helper()
	data, ok, err := s.ReadPage(k)
	if err != nil {
		t.Fatalf("ReadPage(%v): %v", k, err)
	}
	if !ok {
		t.Fatalf("ReadPage(%v): ok = false, want present", k)
	}
	return append([]byte(nil), data...)
}

// wantPage asserts a present page reads back as want, tolerating the
// nil-means-zeroes representation: a page written as nil may read back
// nil or a zero-filled page.
func wantPage(t *testing.T, s substrate.Store, k substrate.PageKey, want []byte) {
	t.Helper()
	got := mustRead(t, s, k)
	if len(got) != 0 && len(got) != s.PageSize() {
		t.Fatalf("ReadPage(%v): %d bytes, want 0 or full page (%d)", k, len(got), s.PageSize())
	}
	norm := func(b []byte) []byte {
		if len(b) == 0 {
			return make([]byte, s.PageSize())
		}
		return b
	}
	if g, w := norm(got), norm(want); !bytes.Equal(g, w) {
		t.Fatalf("ReadPage(%v) mismatch:\n got %x\nwant %x", k, g[:16], w[:16])
	}
}

func testRoundTrip(t *testing.T, s substrate.Store) {
	ps := s.PageSize()
	const pages = 32
	for i := int64(0); i < pages; i++ {
		k := key(s, uint64(i%3), i)
		if err := s.WritePage(k, pattern(ps, byte(i))); err != nil {
			t.Fatalf("WritePage(%v): %v", k, err)
		}
	}
	for i := int64(0); i < pages; i++ {
		wantPage(t, s, key(s, uint64(i%3), i), pattern(ps, byte(i)))
	}
	if got := s.Len(); got != pages {
		t.Fatalf("Len() = %d, want %d", got, pages)
	}
	// A read buffer is reusable: two reads in a row must each be correct
	// at the time of the read.
	a := mustRead(t, s, key(s, 0, 0))
	b := mustRead(t, s, key(s, 1, 1))
	if bytes.Equal(a, b) {
		t.Fatal("distinct pages read back equal — read buffer aliasing?")
	}
}

func testOverwrite(t *testing.T, s substrate.Store) {
	ps := s.PageSize()
	k := key(s, 7, 2)
	for round := byte(0); round < 4; round++ {
		if err := s.WritePage(k, pattern(ps, round*31)); err != nil {
			t.Fatalf("WritePage round %d: %v", round, err)
		}
		wantPage(t, s, k, pattern(ps, round*31))
		if got := s.Len(); got != 1 {
			t.Fatalf("Len() after overwrite = %d, want 1", got)
		}
	}
}

func testNilWrite(t *testing.T, s substrate.Store) {
	k := key(s, 1, 4)
	if err := s.WritePage(k, nil); err != nil {
		t.Fatalf("WritePage(nil): %v", err)
	}
	if !s.Contains(k) {
		t.Fatal("Contains after nil write = false, want presence")
	}
	wantPage(t, s, k, nil) // nil or all-zero both conform
	if got := s.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1", got)
	}
}

func testPartialPage(t *testing.T, s substrate.Store) {
	ps := s.PageSize()
	k := key(s, 2, 1)
	// Dirty the page first so padding must actively zero the tail.
	if err := s.WritePage(k, pattern(ps, 0xAA)); err != nil {
		t.Fatalf("WritePage(full): %v", err)
	}
	part := pattern(ps, 0x11)[:ps/2]
	if err := s.WritePage(k, part); err != nil {
		t.Fatalf("WritePage(partial): %v", err)
	}
	want := make([]byte, ps)
	copy(want, part)
	wantPage(t, s, k, want)
}

func testContainsLen(t *testing.T, s substrate.Store) {
	if s.Contains(key(s, 9, 9)) {
		t.Fatal("Contains on empty store = true")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len() on empty store = %d", got)
	}
	if _, ok, err := s.ReadPage(key(s, 9, 9)); ok || err != nil {
		t.Fatalf("ReadPage(absent) = ok %v err %v, want false nil", ok, err)
	}
	for i := int64(0); i < 10; i++ {
		if err := s.WritePage(key(s, 4, i), pattern(s.PageSize(), byte(i))); err != nil {
			t.Fatalf("WritePage: %v", err)
		}
	}
	for i := int64(0); i < 10; i++ {
		if !s.Contains(key(s, 4, i)) {
			t.Fatalf("Contains(page %d) = false after write", i)
		}
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len() = %d, want 10", got)
	}
}

func testDelete(t *testing.T, s substrate.Store) {
	d, ok := s.(substrate.Deleter)
	if !ok {
		t.Skip("store does not implement substrate.Deleter")
	}
	k := key(s, 3, 5)
	if d.DeletePage(k) {
		t.Fatal("DeletePage(absent) = true")
	}
	if err := s.WritePage(k, pattern(s.PageSize(), 0x5C)); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if !d.DeletePage(k) {
		t.Fatal("DeletePage(present) = false")
	}
	if s.Contains(k) {
		t.Fatal("Contains after delete = true")
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len() after delete = %d, want 0", got)
	}
	// A deleted slot must be safely rewritable.
	if err := s.WritePage(k, pattern(s.PageSize(), 0x3D)); err != nil {
		t.Fatalf("WritePage after delete: %v", err)
	}
	wantPage(t, s, k, pattern(s.PageSize(), 0x3D))
}

func testWriteFailure(t *testing.T, s substrate.Store) {
	f := &Failing{Store: s, FailWrite: 2} // second write fails
	k1, k2 := key(s, 0, 0), key(s, 0, 1)
	if err := f.WritePage(k1, pattern(s.PageSize(), 1)); err != nil {
		t.Fatalf("WritePage #1: %v", err)
	}
	err := f.WritePage(k2, pattern(s.PageSize(), 2))
	if err == nil {
		t.Fatal("WritePage #2: no error from injected failure")
	}
	if !errors.Is(err, hiperr.ErrDiskIO) {
		t.Fatalf("WritePage #2 error %v does not wrap hiperr.ErrDiskIO", err)
	}
	// The failed write never records presence.
	if f.Contains(k2) {
		t.Fatal("Contains(failed write key) = true — garbage recorded as present")
	}
	if got := f.Len(); got != 1 {
		t.Fatalf("Len() = %d after one good and one failed write, want 1", got)
	}
	// The store stays usable after the fault passes.
	if err := f.WritePage(k2, pattern(s.PageSize(), 3)); err != nil {
		t.Fatalf("WritePage #3 (after fault): %v", err)
	}
	wantPage(t, s, k2, pattern(s.PageSize(), 3))
}

func testReadFailure(t *testing.T, s substrate.Store) {
	f := &Failing{Store: s, FailRead: 1} // first read fails
	k := key(s, 6, 0)
	if err := f.WritePage(k, pattern(s.PageSize(), 9)); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	_, ok, err := f.ReadPage(k)
	if err == nil {
		t.Fatal("ReadPage: no error from injected failure")
	}
	if !errors.Is(err, hiperr.ErrDiskIO) {
		t.Fatalf("ReadPage error %v does not wrap hiperr.ErrDiskIO", err)
	}
	if !ok {
		t.Fatal("failed read of a present page reported ok=false — presence lost")
	}
	// Next read succeeds.
	wantPage(t, f, k, pattern(s.PageSize(), 9))
}

// testConcurrent drives mixed readers and writers through a mutex — the
// same serialization the core loop provides — and lets the race detector
// prove the store publishes nothing outside that discipline.
func testConcurrent(t *testing.T, s substrate.Store) {
	const (
		workers = 8
		opsEach = 64
	)
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	ps := s.PageSize()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := key(s, uint64(w%3), int64((w*opsEach+i)%16))
				mu.Lock()
				switch i % 3 {
				case 0:
					if err := s.WritePage(k, pattern(ps, byte(w*16+i))); err != nil {
						t.Errorf("worker %d WritePage: %v", w, err)
					}
				case 1:
					if data, ok, err := s.ReadPage(k); err != nil {
						t.Errorf("worker %d ReadPage: %v", w, err)
					} else if ok && len(data) != 0 && len(data) != ps {
						t.Errorf("worker %d ReadPage: %d bytes", w, len(data))
					}
				case 2:
					s.Contains(k)
					s.Len()
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}

// Failing wraps a Store so the Nth write and/or Nth read fail with a
// hiperr.ErrDiskIO-wrapped error (counting from 1; zero disables). Failed
// writes never reach the child, so nothing is recorded present; failed
// reads report presence from the child's Contains, matching a real medium
// error on a resident page. It is itself a conforming Store — the kit
// runs it through Run like any backend.
type Failing struct {
	substrate.Store
	FailWrite int // fail the Nth write (1-based); 0 = never
	FailRead  int // fail the Nth read (1-based); 0 = never

	writes int
	reads  int
}

// WritePage implements substrate.Store.
func (f *Failing) WritePage(k substrate.PageKey, data []byte) error {
	f.writes++
	if f.writes == f.FailWrite {
		return &hiperr.Error{Op: "storetest.failing.write",
			Err: fmt.Errorf("injected failure on write %d at %v: %w", f.writes, k, hiperr.ErrDiskIO)}
	}
	return f.Store.WritePage(k, data)
}

// ReadPage implements substrate.Store.
func (f *Failing) ReadPage(k substrate.PageKey) ([]byte, bool, error) {
	f.reads++
	if f.reads == f.FailRead {
		return nil, f.Store.Contains(k), &hiperr.Error{Op: "storetest.failing.read",
			Err: fmt.Errorf("injected failure on read %d at %v: %w", f.reads, k, hiperr.ErrDiskIO)}
	}
	return f.Store.ReadPage(k)
}

// DeletePage forwards to the child where supported, so Failing composes
// under eviction-driven parents.
func (f *Failing) DeletePage(k substrate.PageKey) bool {
	if d, ok := f.Store.(substrate.Deleter); ok {
		return d.DeletePage(k)
	}
	return false
}

var _ substrate.Store = (*Failing)(nil)
