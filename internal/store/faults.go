package store

import (
	"fmt"

	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/substrate"
)

// InjectFaults wraps child so the deterministic fault-injection plane
// decides whether each page transfer fails: writes consult the
// faultinj.DiskWrite point, reads faultinj.DiskRead. An injected failure
// surfaces exactly like a real one — wrapped in hiperr.ErrDiskIO, with the
// failed write never recorded as present — so the whole recovery ladder
// above real backends (the VM retry path, emm.FailoverPager) is testable
// on a seeded schedule. Slow decisions are ignored at this layer: a store
// has no clock to charge, and real backends take real time already.
//
// A nil plane decides nothing; the wrapper is then a transparent
// pass-through (the same contract as every other faultinj consumer).
func InjectFaults(child substrate.Store, plane *faultinj.Plane) substrate.Store {
	return &faultStore{child: child, plane: plane}
}

type faultStore struct {
	child substrate.Store
	plane *faultinj.Plane
}

func (s *faultStore) PageSize() int { return s.child.PageSize() }

// WritePage fails before touching the child, so an injected failure never
// records presence.
func (s *faultStore) WritePage(key substrate.PageKey, data []byte) error {
	if s.plane.Decide(faultinj.DiskWrite).Fail {
		return &hiperr.Error{Op: "store.inject.write",
			Err: fmt.Errorf("injected write fault at %v: %w", key, hiperr.ErrDiskIO)}
	}
	return s.child.WritePage(key, data)
}

// ReadPage reports an injected failure as "present but unreadable" when
// the child holds the page — the same shape as a real medium error.
func (s *faultStore) ReadPage(key substrate.PageKey) ([]byte, bool, error) {
	if s.plane.Decide(faultinj.DiskRead).Fail {
		return nil, s.child.Contains(key), &hiperr.Error{Op: "store.inject.read",
			Err: fmt.Errorf("injected read fault at %v: %w", key, hiperr.ErrDiskIO)}
	}
	return s.child.ReadPage(key)
}

func (s *faultStore) Contains(key substrate.PageKey) bool { return s.child.Contains(key) }
func (s *faultStore) Len() int                            { return s.child.Len() }

// DeletePage, Sync, StoreIO and Close forward to the child where
// supported, so the wrapper composes under Tiered/Sharded without hiding
// the optional surfaces.
func (s *faultStore) DeletePage(key substrate.PageKey) bool {
	if d, ok := s.child.(substrate.Deleter); ok {
		return d.DeletePage(key)
	}
	return false
}

func (s *faultStore) Sync() error {
	if sy, ok := s.child.(Syncer); ok {
		return sy.Sync()
	}
	return nil
}

func (s *faultStore) StoreIO() (reads, writes int64) {
	if io, ok := s.child.(IOStats); ok {
		return io.StoreIO()
	}
	return 0, 0
}

func (s *faultStore) Close() error {
	if c, ok := s.child.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

var (
	_ substrate.Store   = (*faultStore)(nil)
	_ substrate.Deleter = (*faultStore)(nil)
	_ Syncer            = (*faultStore)(nil)
)
