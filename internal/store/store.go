// Package store grows substrate.Store from two implementations (the
// simulation's MemStore, the realtime filestore) into a family of
// composable backends:
//
//   - Tiered: a fast tier caching a slow tier, write-through or
//     write-back, with promotion on read and FIFO eviction at a fast-tier
//     page cap — mem-over-file is the classic shape, but any Store pair
//     composes.
//   - Sharded: deterministic object-ID/offset partitioned fan-out across N
//     child stores (N files, N devices, N tiered stacks...).
//   - Mmap: an mmap-backed file store — page writes are memory copies into
//     the mapping and durability is explicit (Sync) — falling back to
//     filestore-style pread/pwrite where mmap is unavailable.
//
// Every backend keeps the substrate.Store contract: misuse (unaligned
// offsets, oversize pages) panics, real I/O failures come back wrapped in
// the hiperr taxonomy terminating in ErrDiskIO, and a failed write never
// records the key as present with garbage. The conformance kit in
// storetest pins the contract against every implementation, and the
// differential tests in this package pin each composite byte-equivalent to
// a plain MemStore oracle.
//
// Like the filestore, none of these backends is safe for concurrent use on
// its own: in realtime mode every access is serialized by the kernel's
// actor loop (core.Loop). The hipecvet blockinloop/loopcapture passes
// enforce the seam — loop commands reach stores only through the
// substrate.Store interface, and no concrete store handle may escape a
// Loop.Call closure.
package store

import (
	"errors"
	"fmt"
	"io"

	"hipec/internal/disk/filestore"
	"hipec/internal/hiperr"
	"hipec/internal/substrate"
)

// Syncer is the optional durability surface of a backend: Sync pushes
// buffered state (a write-back fast tier's dirty pages, an mmap'ed
// mapping's page-cache residue) to the layer that owns durability.
type Syncer interface {
	Sync() error
}

// IOStats is the optional counter surface: page transfers that genuinely
// hit a backing device, summed across a composite's children.
type IOStats interface {
	StoreIO() (reads, writes int64)
}

// Backend is what Open returns: a Store plus the lifecycle and labeling
// every CLI-selected backend needs.
type Backend interface {
	substrate.Store
	Close() error
	Label() string
}

// Kinds lists the backend names Open accepts, for flag help.
func Kinds() string { return "file, mem, tiered, sharded, mmap" }

// Defaults for CLI-opened composite backends.
const (
	// DefaultTierCap is the fast-tier page cap of an Open-built tiered
	// store (1 MB of 4 KB pages).
	DefaultTierCap = 256
	// DefaultShards is the child count of an Open-built sharded store.
	DefaultShards = 4
)

// Open builds the named backend kind for pages of pageSize bytes. path
// locates the backing file(s): the file itself for "file" and "mmap", the
// slow-tier file for "tiered", and a stem suffixed ".shard<N>" for
// "sharded"; an empty path uses fresh temp files that Close removes.
// "mem" ignores path. Unknown kinds are an error (not a panic: the kind
// usually arrives from a flag).
func Open(kind, path string, pageSize int) (Backend, error) {
	switch kind {
	case "", "file":
		fs, err := openFile(path, pageSize)
		if err != nil {
			return nil, err
		}
		return &labeled{Store: fs, label: "file:" + fs.Path(), close: fs.Close}, nil
	case "mem":
		return &labeled{Store: substrate.NewMemStore(pageSize, true), label: "mem"}, nil
	case "tiered":
		slow, err := openFile(path, pageSize)
		if err != nil {
			return nil, err
		}
		fast := substrate.NewMemStore(pageSize, true)
		t := NewTiered(fast, slow, WriteThrough, DefaultTierCap)
		return &labeled{Store: t,
			label: fmt.Sprintf("tiered(mem[%d]->file:%s)", DefaultTierCap, slow.Path()),
			close: t.Close}, nil
	case "sharded":
		children := make([]substrate.Store, DefaultShards)
		var paths string
		for i := range children {
			var fs *filestore.Store
			var err error
			if path == "" {
				fs, err = filestore.OpenTemp("", pageSize)
			} else {
				fs, err = filestore.Open(fmt.Sprintf("%s.shard%d", path, i), pageSize)
			}
			if err != nil {
				closeAll(children[:i])
				return nil, err
			}
			children[i] = fs
			if i == 0 {
				paths = fs.Path()
			}
		}
		sh := NewSharded(children...)
		return &labeled{Store: sh,
			label: fmt.Sprintf("sharded(%d x file:%s...)", DefaultShards, paths),
			close: sh.Close}, nil
	case "mmap":
		var m *Mmap
		var err error
		if path == "" {
			m, err = OpenMmapTemp("", pageSize)
		} else {
			m, err = OpenMmap(path, pageSize)
		}
		if err != nil {
			return nil, err
		}
		mode := "mmap"
		if !m.Mapped() {
			mode = "mmap-fallback"
		}
		return &labeled{Store: m, label: mode + ":" + m.Path(), close: m.Close}, nil
	}
	return nil, &hiperr.Error{Op: "store.open",
		Err: fmt.Errorf("unknown store kind %q (want %s): %w", kind, Kinds(), hiperr.ErrBadRequest)}
}

// openFile opens a filestore at path, or a temp-backed one when path is
// empty.
func openFile(path string, pageSize int) (*filestore.Store, error) {
	if path == "" {
		return filestore.OpenTemp("", pageSize)
	}
	return filestore.Open(path, pageSize)
}

// closeAll best-effort closes the stores that implement io.Closer.
func closeAll(stores []substrate.Store) {
	for _, s := range stores {
		if c, ok := s.(io.Closer); ok {
			c.Close()
		}
	}
}

// labeled adapts any Store into a Backend, forwarding the optional
// surfaces (Deleter, Syncer, IOStats) to the wrapped store.
type labeled struct {
	substrate.Store
	label string
	close func() error
}

func (b *labeled) Label() string { return b.label }

func (b *labeled) Close() error {
	if b.close == nil {
		return nil
	}
	return b.close()
}

// Sync forwards to the wrapped store's Syncer, if any.
func (b *labeled) Sync() error {
	if s, ok := b.Store.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// DeletePage forwards to the wrapped store's Deleter, if any.
func (b *labeled) DeletePage(key substrate.PageKey) bool {
	if d, ok := b.Store.(substrate.Deleter); ok {
		return d.DeletePage(key)
	}
	return false
}

// StoreIO forwards to the wrapped store's IOStats, if any.
func (b *labeled) StoreIO() (reads, writes int64) {
	if io, ok := b.Store.(IOStats); ok {
		return io.StoreIO()
	}
	return 0, 0
}

// diskErr wraps a child-store failure with composite context, preserving
// the child's chain and guaranteeing the ErrDiskIO sentinel even when the
// child's error predates the taxonomy.
func diskErr(op, context string, err error) error {
	if errors.Is(err, hiperr.ErrDiskIO) {
		return &hiperr.Error{Op: op, Err: fmt.Errorf("%s: %w", context, err)}
	}
	return &hiperr.Error{Op: op, Err: fmt.Errorf("%s: %v: %w", context, err, hiperr.ErrDiskIO)}
}

// checkPage panics on the caller bugs every backend rejects identically.
func checkPage(name string, pageSize int, key substrate.PageKey, data []byte) {
	if key.Offset%int64(pageSize) != 0 {
		panic(fmt.Sprintf("%s: unaligned store offset %d", name, key.Offset))
	}
	if len(data) > pageSize {
		panic(fmt.Sprintf("%s: page data %d bytes exceeds page size %d", name, len(data), pageSize))
	}
}
