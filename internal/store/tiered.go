package store

import (
	"fmt"
	"io"
	"slices"

	"hipec/internal/substrate"
)

// TieredMode selects who owns durability in a Tiered store.
type TieredMode uint8

const (
	// WriteThrough writes every page to both tiers: the slow tier owns
	// durability and the fast tier is a clean cache — except after a
	// slow-tier write failure, when the fast copy is kept and marked dirty
	// so no data is lost (Sync retries the flush).
	WriteThrough TieredMode = iota
	// WriteBack writes land in the fast tier only and are flushed to the
	// slow tier on eviction, Sync, or Close: the fast tier owns durability
	// for dirty pages, trading crash-safety for write latency.
	WriteBack
)

// String names the mode.
func (m TieredMode) String() string {
	if m == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// Tiered layers a fast Store over a slow one: reads hit the fast tier
// first and promote slow-tier pages into it, writes follow the TieredMode,
// and when the fast tier exceeds cap pages the oldest resident is evicted
// (flushed first if dirty). The fast tier must implement substrate.Deleter
// (eviction needs removal) and must be exclusively owned by the Tiered
// store; the slow tier may be any Store.
//
// Failure semantics: a fast-tier write failure surfaces immediately and
// records nothing. A slow-tier write failure — on a write-through store,
// on eviction, or on Sync — keeps the fast-tier copy resident and dirty,
// so the error is recoverable: the page stays readable and a later Sync
// (or eviction retry) flushes it. Errors wrap hiperr.ErrDiskIO with the
// failing tier named.
type Tiered struct {
	fast, slow substrate.Store
	fastDel    substrate.Deleter
	mode       TieredMode
	cap        int

	dirty map[substrate.PageKey]bool
	order []substrate.PageKey // fast-tier FIFO residency queue (stale keys skipped at pop)
	count int                 // distinct keys across both tiers
}

// NewTiered builds a tiered store. cap bounds the fast tier in pages
// (<= 0 means unbounded — no eviction, useful for a pure write buffer).
// Both tiers must share a page size; fast must implement substrate.Deleter
// and must not be the same store as slow.
func NewTiered(fast, slow substrate.Store, mode TieredMode, cap int) *Tiered {
	if fast == nil || slow == nil {
		panic("store: tiered store needs both tiers")
	}
	if fast == slow {
		panic("store: tiered fast and slow tiers must be distinct stores")
	}
	if fast.PageSize() != slow.PageSize() {
		panic(fmt.Sprintf("store: tiered page sizes differ (fast %d, slow %d)",
			fast.PageSize(), slow.PageSize()))
	}
	del, ok := fast.(substrate.Deleter)
	if !ok {
		panic("store: tiered fast tier must support DeletePage (eviction)")
	}
	return &Tiered{
		fast: fast, slow: slow, fastDel: del, mode: mode, cap: cap,
		dirty: make(map[substrate.PageKey]bool),
	}
}

// PageSize implements substrate.Store.
func (t *Tiered) PageSize() int { return t.fast.PageSize() }

// WritePage implements substrate.Store: the page always lands in the fast
// tier; write-through pushes it down immediately, write-back defers to
// eviction/Sync. A slow-tier failure keeps the fast copy dirty and returns
// the wrapped error — the data is not lost.
func (t *Tiered) WritePage(key substrate.PageKey, data []byte) error {
	checkPage("store.tiered", t.PageSize(), key, data)
	wasPresent := t.Contains(key)
	wasInFast := t.fast.Contains(key)
	if err := t.fast.WritePage(key, data); err != nil {
		return diskErr("store.tiered.write", "fast tier", err)
	}
	if !wasPresent {
		t.count++
	}
	if !wasInFast {
		t.order = append(t.order, key)
	}
	var werr error
	if t.mode == WriteThrough {
		if err := t.slow.WritePage(key, data); err != nil {
			t.dirty[key] = true
			werr = diskErr("store.tiered.write", "slow tier", err)
		} else {
			delete(t.dirty, key)
		}
	} else {
		t.dirty[key] = true
	}
	if err := t.evict(); err != nil && werr == nil {
		werr = err
	}
	return werr
}

// evict flushes-and-drops fast-tier residents in FIFO order until the tier
// is back under cap. A dirty victim that fails to flush stays resident
// (re-queued at the back, still dirty) and stops the sweep with the error.
func (t *Tiered) evict() error {
	if t.cap <= 0 {
		return nil
	}
	for t.fast.Len() > t.cap && len(t.order) > 0 {
		victim := t.order[0]
		t.order = t.order[1:]
		if !t.fast.Contains(victim) {
			continue // deleted since queued
		}
		if t.dirty[victim] {
			data, _, err := t.fast.ReadPage(victim)
			if err == nil {
				err = t.slow.WritePage(victim, data)
			}
			if err != nil {
				t.order = append(t.order, victim)
				return diskErr("store.tiered.evict", "slow tier", err)
			}
			delete(t.dirty, victim)
		}
		t.fastDel.DeletePage(victim)
	}
	return nil
}

// ReadPage implements substrate.Store: fast tier first, then the slow
// tier, promoting slow-tier hits into the fast tier (clean). A promotion
// that cannot make room (eviction flush failure) is abandoned silently —
// the read itself succeeded, and the victim stays safe in the fast tier.
func (t *Tiered) ReadPage(key substrate.PageKey) ([]byte, bool, error) {
	if data, ok, err := t.fast.ReadPage(key); ok || err != nil {
		if err != nil {
			return nil, ok, diskErr("store.tiered.read", "fast tier", err)
		}
		return data, ok, nil
	}
	data, ok, err := t.slow.ReadPage(key)
	if err != nil {
		return nil, ok, diskErr("store.tiered.read", "slow tier", err)
	}
	if !ok {
		return nil, false, nil
	}
	// Promote a copy; the page is clean (the slow tier holds it). The
	// returned buffer is the slow tier's — the fast write copies, and the
	// eviction sweep never touches the slow tier's read buffer.
	if t.fast.WritePage(key, data) == nil {
		t.order = append(t.order, key)
		_ = t.evict()
	}
	return data, true, nil
}

// Contains implements substrate.Store.
func (t *Tiered) Contains(key substrate.PageKey) bool {
	return t.fast.Contains(key) || t.slow.Contains(key)
}

// Len implements substrate.Store: distinct keys across both tiers.
func (t *Tiered) Len() int { return t.count }

// DeletePage implements substrate.Deleter when the slow tier does; on an
// append-only slow tier it drops the fast copy only and reports whether
// the key is fully gone.
func (t *Tiered) DeletePage(key substrate.PageKey) bool {
	present := t.Contains(key)
	t.fastDel.DeletePage(key)
	delete(t.dirty, key)
	if d, ok := t.slow.(substrate.Deleter); ok {
		d.DeletePage(key)
	} else if t.slow.Contains(key) {
		return false
	}
	if present {
		t.count--
	}
	return present
}

// Dirty reports how many fast-tier pages are not yet durable in the slow
// tier (write-back residue plus write-through flush failures).
func (t *Tiered) Dirty() int { return len(t.dirty) }

// FastLen reports the fast tier's resident page count.
func (t *Tiered) FastLen() int { return t.fast.Len() }

// Sync implements Syncer: flush every dirty page to the slow tier (in
// deterministic key order), then sync the slow tier if it can. Flushing
// continues past failures; the first error is returned.
func (t *Tiered) Sync() error {
	keys := make([]substrate.PageKey, 0, len(t.dirty))
	for k := range t.dirty {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b substrate.PageKey) int {
		if a.Object != b.Object {
			if a.Object < b.Object {
				return -1
			}
			return 1
		}
		switch {
		case a.Offset < b.Offset:
			return -1
		case a.Offset > b.Offset:
			return 1
		}
		return 0
	})
	var first error
	for _, k := range keys {
		data, ok, err := t.fast.ReadPage(k)
		if !ok && err == nil {
			delete(t.dirty, k) // dirty entry with no fast copy: nothing to flush
			continue
		}
		if err == nil {
			err = t.slow.WritePage(k, data)
		}
		if err != nil {
			if first == nil {
				first = diskErr("store.tiered.sync", "slow tier", err)
			}
			continue
		}
		delete(t.dirty, k)
	}
	if first != nil {
		return first
	}
	if s, ok := t.slow.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// StoreIO implements IOStats: the sum of both tiers' device transfers.
func (t *Tiered) StoreIO() (reads, writes int64) {
	for _, tier := range []substrate.Store{t.fast, t.slow} {
		if io, ok := tier.(IOStats); ok {
			r, w := io.StoreIO()
			reads += r
			writes += w
		}
	}
	return reads, writes
}

// Close flushes dirty pages (Sync) and closes both tiers. The first error
// wins but every closer runs.
func (t *Tiered) Close() error {
	err := t.Sync()
	for _, tier := range []substrate.Store{t.fast, t.slow} {
		if c, ok := tier.(io.Closer); ok {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}

var (
	_ substrate.Store   = (*Tiered)(nil)
	_ substrate.Deleter = (*Tiered)(nil)
	_ Syncer            = (*Tiered)(nil)
)
