package store

import (
	"errors"
	"fmt"
	"os"

	"hipec/internal/hiperr"
	"hipec/internal/substrate"
)

// Mmap is an mmap-backed file store: the backing file is memory-mapped and
// page writes are memory copies into the mapping, so steady-state I/O
// costs a copy plus page-cache writeback instead of a write syscall per
// page. Durability is explicit — Sync flushes the mapping (and Close
// syncs implicitly via the OS on unmap) — which is the honest contract for
// a cache backend: the kernel's page cache owns the bytes between Syncs.
//
// Layout matches the filestore: dense page-sized slots assigned on first
// write, an in-memory rebuildable index, slots recycled by DeletePage. The
// mapping grows by doubling (ftruncate + remap); growth is the only write
// path that can fail with a real I/O error (ENOSPC surfaces at truncate
// time, wrapped in hiperr.ErrDiskIO).
//
// Where mmap is unavailable (platform or filesystem), the store falls back
// to filestore semantics — pread/pwrite against the same slot layout —
// so callers never need to care; Mapped reports which mode is live.
type Mmap struct {
	f        *os.File
	path     string
	pageSize int
	temp     bool

	data     []byte // the live mapping; nil in fallback mode
	capPages int64  // mapped capacity in pages (mapping mode only)

	slots    map[substrate.PageKey]int64
	free     []int64
	nextSlot int64

	readBuf  []byte
	writeBuf []byte // fallback-mode padding scratch; never aliased to readBuf
	zeroBuf  []byte

	// Reads/Writes count page transfers (copies in or out of the mapping,
	// or real file I/O in fallback mode).
	Reads  int64
	Writes int64
}

// mmapInitialPages is the initial mapped capacity.
const mmapInitialPages = 64

// errMapUnsupported marks a platform or filesystem that cannot mmap; the
// store falls back to pread/pwrite rather than failing. A package-level
// sentinel, matched with errors.Is through isMapUnsupported.
var errMapUnsupported = errors.New("store: mmap unavailable")

// isMapUnsupported classifies mapFile failures that mean "degrade", not
// "abort".
func isMapUnsupported(err error) bool { return errors.Is(err, errMapUnsupported) }

// OpenMmap creates (or truncates) an mmap-backed store at path for pages
// of pageSize bytes.
func OpenMmap(path string, pageSize int) (*Mmap, error) {
	if pageSize <= 0 {
		return nil, &hiperr.Error{Op: "store.mmap.open",
			Err: fmt.Errorf("non-positive page size %d: %w", pageSize, hiperr.ErrPolicyFault)}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, &hiperr.Error{Op: "store.mmap.open",
			Err: fmt.Errorf("%s: %v: %w", path, err, hiperr.ErrDiskIO)}
	}
	s := &Mmap{
		f:        f,
		path:     path,
		pageSize: pageSize,
		slots:    make(map[substrate.PageKey]int64),
		readBuf:  make([]byte, pageSize),
		writeBuf: make([]byte, pageSize),
		zeroBuf:  make([]byte, pageSize),
	}
	if err := s.mapCapacity(mmapInitialPages); err != nil {
		// Mapping unavailable here: fall back to pread/pwrite. Real
		// truncate failures (ENOSPC) still abort.
		if !isMapUnsupported(err) {
			f.Close()
			os.Remove(path)
			return nil, err
		}
		s.data = nil
	}
	return s, nil
}

// OpenMmapTemp creates an mmap-backed store on a fresh file in dir (or the
// OS temp directory when dir is empty). Close removes it.
func OpenMmapTemp(dir string, pageSize int) (*Mmap, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "hipec-mmap-*.dat")
	if err != nil {
		return nil, &hiperr.Error{Op: "store.mmap.open",
			Err: fmt.Errorf("%s: %v: %w", dir, err, hiperr.ErrDiskIO)}
	}
	name := f.Name()
	f.Close()
	s, err := OpenMmap(name, pageSize)
	if err != nil {
		os.Remove(name)
		return nil, err
	}
	s.temp = true
	return s, nil
}

// Path returns the backing file's path.
func (s *Mmap) Path() string { return s.path }

// Mapped reports whether the mapping is live (false = filestore-style
// pread/pwrite fallback).
func (s *Mmap) Mapped() bool { return s.data != nil }

// mapCapacity grows the file to capPages pages and (re)maps it.
func (s *Mmap) mapCapacity(capPages int64) error {
	if err := s.f.Truncate(capPages * int64(s.pageSize)); err != nil {
		return &hiperr.Error{Op: "store.mmap.grow",
			Err: fmt.Errorf("%s to %d pages: %v: %w", s.path, capPages, err, hiperr.ErrDiskIO)}
	}
	if s.data != nil {
		if err := unmapFile(s.data); err != nil {
			s.data = nil
			return &hiperr.Error{Op: "store.mmap.grow",
				Err: fmt.Errorf("%s unmap: %v: %w", s.path, err, hiperr.ErrDiskIO)}
		}
		s.data = nil
	}
	data, err := mapFile(s.f, capPages*int64(s.pageSize))
	if err != nil {
		return err
	}
	s.data = data
	s.capPages = capPages
	return nil
}

// PageSize implements substrate.Store.
func (s *Mmap) PageSize() int { return s.pageSize }

// slot assigns (or finds) key's slot; see filestore.
func (s *Mmap) slot(key substrate.PageKey) (n int64, fresh bool) {
	if n, ok := s.slots[key]; ok {
		return n, false
	}
	if l := len(s.free); l > 0 {
		n = s.free[l-1]
		s.free = s.free[:l-1]
	} else {
		n = s.nextSlot
		s.nextSlot++
	}
	s.slots[key] = n
	return n, true
}

func (s *Mmap) releaseSlot(n int64) {
	if n == s.nextSlot-1 {
		s.nextSlot--
		return
	}
	s.free = append(s.free, n)
}

// WritePage implements substrate.Store: a copy into the mapping (growing
// it as needed), or a pwrite in fallback mode. Nil data writes zeroes —
// presence must be durable, as in the filestore.
func (s *Mmap) WritePage(key substrate.PageKey, data []byte) error {
	checkPage("store.mmap", s.pageSize, key, data)
	n, fresh := s.slot(key)
	fail := func(err error) error {
		if fresh {
			delete(s.slots, key)
			s.releaseSlot(n)
		}
		return err
	}
	if s.data != nil {
		if n >= s.capPages {
			newCap := s.capPages * 2
			for n >= newCap {
				newCap *= 2
			}
			if err := s.mapCapacity(newCap); err != nil {
				if !isMapUnsupported(err) {
					return fail(err)
				}
				// The filesystem stopped cooperating mid-run: degrade to
				// pread/pwrite for the rest of the store's life.
				s.data = nil
			}
		}
	}
	if s.data != nil {
		dst := s.data[n*int64(s.pageSize) : (n+1)*int64(s.pageSize)]
		copied := copy(dst, data)
		copy(dst[copied:], s.zeroBuf[copied:])
		s.Writes++
		return nil
	}
	buf := s.zeroBuf
	if len(data) > 0 {
		if len(data) == s.pageSize {
			buf = data
		} else {
			copy(s.writeBuf, data)
			copy(s.writeBuf[len(data):], s.zeroBuf[len(data):])
			buf = s.writeBuf
		}
	}
	if _, err := s.f.WriteAt(buf, n*int64(s.pageSize)); err != nil {
		return fail(&hiperr.Error{Op: "store.mmap.write",
			Err: fmt.Errorf("%s slot %d: %v: %w", s.path, n, err, hiperr.ErrDiskIO)})
	}
	s.Writes++
	return nil
}

// ReadPage implements substrate.Store. The returned slice is the store's
// reusable read buffer, valid until the next ReadPage — never a window
// into the mapping, which can move on growth or vanish on Close.
func (s *Mmap) ReadPage(key substrate.PageKey) ([]byte, bool, error) {
	n, ok := s.slots[key]
	if !ok {
		return nil, false, nil
	}
	if s.data != nil {
		copy(s.readBuf, s.data[n*int64(s.pageSize):(n+1)*int64(s.pageSize)])
		s.Reads++
		return s.readBuf, true, nil
	}
	if _, err := s.f.ReadAt(s.readBuf, n*int64(s.pageSize)); err != nil {
		return nil, true, &hiperr.Error{Op: "store.mmap.read",
			Err: fmt.Errorf("%s slot %d: %v: %w", s.path, n, err, hiperr.ErrDiskIO)}
	}
	s.Reads++
	return s.readBuf, true, nil
}

// Contains implements substrate.Store.
func (s *Mmap) Contains(key substrate.PageKey) bool {
	_, ok := s.slots[key]
	return ok
}

// Len implements substrate.Store.
func (s *Mmap) Len() int { return len(s.slots) }

// DeletePage implements substrate.Deleter.
func (s *Mmap) DeletePage(key substrate.PageKey) bool {
	n, ok := s.slots[key]
	if !ok {
		return false
	}
	delete(s.slots, key)
	s.releaseSlot(n)
	return true
}

// Sync implements Syncer: flush the mapping's dirty pages (and the file)
// to stable storage. fsync on the backing file covers mmap-dirtied page
// cache on the platforms we map on.
func (s *Mmap) Sync() error {
	if err := s.f.Sync(); err != nil {
		return &hiperr.Error{Op: "store.mmap.sync",
			Err: fmt.Errorf("%s: %v: %w", s.path, err, hiperr.ErrDiskIO)}
	}
	return nil
}

// StoreIO implements IOStats.
func (s *Mmap) StoreIO() (reads, writes int64) { return s.Reads, s.Writes }

// Close unmaps, closes, and (for OpenMmapTemp stores) removes the backing
// file. The unmap always runs; the first error wins.
func (s *Mmap) Close() error {
	var err error
	if s.data != nil {
		err = unmapFile(s.data)
		s.data = nil
	}
	if cerr := s.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if s.temp {
		os.Remove(s.path)
	}
	return err
}

var (
	_ substrate.Store   = (*Mmap)(nil)
	_ substrate.Deleter = (*Mmap)(nil)
	_ Syncer            = (*Mmap)(nil)
)
