//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package store

import "os"

// mapFile reports mmap unsupported on this platform; Mmap degrades to
// filestore-style pread/pwrite against the same slot layout.
func mapFile(_ *os.File, _ int64) ([]byte, error) {
	return nil, errMapUnsupported
}

// unmapFile is never reached without a mapping.
func unmapFile(_ []byte) error { return nil }
