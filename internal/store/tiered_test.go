package store

import (
	"bytes"
	"errors"
	"testing"

	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/store/storetest"
	"hipec/internal/substrate"
)

const testPS = 256

func page(seed byte) []byte {
	p := make([]byte, testPS)
	for i := range p {
		p[i] = seed ^ byte(i)
	}
	return p
}

func pk(obj uint64, i int64) substrate.PageKey {
	return substrate.PageKey{Object: obj, Offset: i * testPS}
}

func TestTieredEvictionCap(t *testing.T) {
	fast := substrate.NewMemStore(testPS, true)
	slow := substrate.NewMemStore(testPS, true)
	tr := NewTiered(fast, slow, WriteThrough, 3)
	for i := int64(0); i < 10; i++ {
		if err := tr.WritePage(pk(1, i), page(byte(i))); err != nil {
			t.Fatalf("WritePage %d: %v", i, err)
		}
	}
	if got := tr.FastLen(); got > 3 {
		t.Fatalf("fast tier holds %d pages, cap is 3", got)
	}
	if got := tr.Len(); got != 10 {
		t.Fatalf("Len() = %d, want 10", got)
	}
	// Every page still readable (evicted ones come from the slow tier).
	for i := int64(0); i < 10; i++ {
		data, ok, err := tr.ReadPage(pk(1, i))
		if err != nil || !ok {
			t.Fatalf("ReadPage %d: ok %v err %v", i, ok, err)
		}
		if !bytes.Equal(data, page(byte(i))) {
			t.Fatalf("page %d corrupted after eviction round-trip", i)
		}
	}
}

func TestTieredPromotionOnRead(t *testing.T) {
	fast := substrate.NewMemStore(testPS, true)
	slow := substrate.NewMemStore(testPS, true)
	tr := NewTiered(fast, slow, WriteThrough, 8)
	// Seed the slow tier directly: a cold page not yet cached.
	if err := slow.WritePage(pk(2, 0), page(0x42)); err != nil {
		t.Fatal(err)
	}
	if fast.Contains(pk(2, 0)) {
		t.Fatal("page in fast tier before read")
	}
	data, ok, err := tr.ReadPage(pk(2, 0))
	if err != nil || !ok {
		t.Fatalf("ReadPage: ok %v err %v", ok, err)
	}
	if !bytes.Equal(data, page(0x42)) {
		t.Fatal("read returned wrong bytes")
	}
	if !fast.Contains(pk(2, 0)) {
		t.Fatal("read miss did not promote into the fast tier")
	}
	// A promoted page keeps serving (now from the fast tier).
	if _, ok, err := tr.ReadPage(pk(2, 0)); err != nil || !ok {
		t.Fatalf("second ReadPage: ok %v err %v", ok, err)
	}
}

// TestTieredDirtyOnSlowWriteFailure pins the satellite invariant: a
// write-through store whose slow tier rejects the write keeps the fast
// copy resident and dirty, returns the ErrDiskIO-wrapped error, and a
// later Sync retries the flush.
func TestTieredDirtyOnSlowWriteFailure(t *testing.T) {
	fast := substrate.NewMemStore(testPS, true)
	slow := &storetest.Failing{Store: substrate.NewMemStore(testPS, true), FailWrite: 1}
	tr := NewTiered(fast, slow, WriteThrough, 8)

	err := tr.WritePage(pk(3, 0), page(0x77))
	if err == nil {
		t.Fatal("WritePage: slow-tier failure not surfaced")
	}
	if !errors.Is(err, hiperr.ErrDiskIO) {
		t.Fatalf("error %v does not wrap hiperr.ErrDiskIO", err)
	}
	if !fast.Contains(pk(3, 0)) {
		t.Fatal("fast copy dropped on slow-tier failure — data lost")
	}
	if got := tr.Dirty(); got != 1 {
		t.Fatalf("Dirty() = %d, want 1 (fast copy must be marked dirty)", got)
	}
	// The page is still readable from the fast tier despite the failure.
	data, ok, rerr := tr.ReadPage(pk(3, 0))
	if rerr != nil || !ok || !bytes.Equal(data, page(0x77)) {
		t.Fatalf("ReadPage after failed write-through: ok %v err %v", ok, rerr)
	}
	// Sync retries the flush; the fault has passed, so it lands.
	if err := tr.Sync(); err != nil {
		t.Fatalf("Sync retry: %v", err)
	}
	if got := tr.Dirty(); got != 0 {
		t.Fatalf("Dirty() after Sync = %d, want 0", got)
	}
	if !slow.Contains(pk(3, 0)) {
		t.Fatal("slow tier still missing the page after Sync")
	}
}

func TestTieredWriteBackSync(t *testing.T) {
	fast := substrate.NewMemStore(testPS, true)
	slow := substrate.NewMemStore(testPS, true)
	tr := NewTiered(fast, slow, WriteBack, 8)
	for i := int64(0); i < 5; i++ {
		if err := tr.WritePage(pk(4, i), page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := slow.Len(); got != 0 {
		t.Fatalf("write-back leaked %d pages to the slow tier before Sync", got)
	}
	if got := tr.Dirty(); got != 5 {
		t.Fatalf("Dirty() = %d, want 5", got)
	}
	if err := tr.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got, want := slow.Len(), 5; got != want {
		t.Fatalf("slow tier has %d pages after Sync, want %d", got, want)
	}
	if got := tr.Dirty(); got != 0 {
		t.Fatalf("Dirty() after Sync = %d", got)
	}
}

// TestTieredWriteBackEvictionFlush: evicting a dirty page must flush it
// to the slow tier first — eviction never loses the only copy.
func TestTieredWriteBackEvictionFlush(t *testing.T) {
	fast := substrate.NewMemStore(testPS, true)
	slow := substrate.NewMemStore(testPS, true)
	tr := NewTiered(fast, slow, WriteBack, 2)
	for i := int64(0); i < 6; i++ {
		if err := tr.WritePage(pk(5, i), page(byte(i*3))); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 6; i++ {
		data, ok, err := tr.ReadPage(pk(5, i))
		if err != nil || !ok {
			t.Fatalf("page %d: ok %v err %v", i, ok, err)
		}
		if !bytes.Equal(data, page(byte(i*3))) {
			t.Fatalf("page %d lost or corrupted across dirty eviction", i)
		}
	}
}

func TestShardedErrorNamesShard(t *testing.T) {
	children := []substrate.Store{
		substrate.NewMemStore(testPS, true),
		substrate.NewMemStore(testPS, true),
		substrate.NewMemStore(testPS, true),
	}
	sh := NewSharded(children...)
	// Find a key for each shard, then arm one shard to fail.
	var victims [3]substrate.PageKey
	seen := 0
	for i := int64(0); seen < 3; i++ {
		k := pk(uint64(i), i)
		idx := sh.shard(k)
		if victims[idx] == (substrate.PageKey{}) && !(idx == 0 && i == 0) {
			victims[idx] = k
			seen++
		}
	}
	failing := &storetest.Failing{Store: children[1], FailWrite: 1}
	sh2 := NewSharded(children[0], failing, children[2])
	err := sh2.WritePage(victims[1], page(1))
	if err == nil {
		t.Fatal("write to failing shard returned nil")
	}
	if !errors.Is(err, hiperr.ErrDiskIO) {
		t.Fatalf("shard error %v does not wrap hiperr.ErrDiskIO", err)
	}
	var he *hiperr.Error
	if !errors.As(err, &he) {
		t.Fatalf("shard error %v is not a *hiperr.Error", err)
	}
	// The healthy shards still serve.
	if err := sh2.WritePage(victims[0], page(2)); err != nil {
		t.Fatalf("healthy shard 0: %v", err)
	}
	if err := sh2.WritePage(victims[2], page(3)); err != nil {
		t.Fatalf("healthy shard 2: %v", err)
	}
}

func TestShardedDeterministicPlacement(t *testing.T) {
	a := NewSharded(substrate.NewMemStore(testPS, true), substrate.NewMemStore(testPS, true),
		substrate.NewMemStore(testPS, true), substrate.NewMemStore(testPS, true))
	b := NewSharded(substrate.NewMemStore(testPS, true), substrate.NewMemStore(testPS, true),
		substrate.NewMemStore(testPS, true), substrate.NewMemStore(testPS, true))
	counts := make([]int, 4)
	for i := int64(0); i < 256; i++ {
		k := pk(uint64(i%7), i)
		if a.shard(k) != b.shard(k) {
			t.Fatalf("placement for %v differs between identical stores", k)
		}
		counts[a.shard(k)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys out of 256 — hash not spreading", i)
		}
	}
}

func TestInjectFaults(t *testing.T) {
	plane := faultinj.NewPlane(42)
	plane.SetRule(faultinj.DiskWrite, faultinj.Rule{FailEvery: 3})
	s := InjectFaults(substrate.NewMemStore(testPS, true), plane)

	var failures int
	for i := int64(0); i < 9; i++ {
		err := s.WritePage(pk(8, i), page(byte(i)))
		if err != nil {
			if !errors.Is(err, hiperr.ErrDiskIO) {
				t.Fatalf("injected error %v does not wrap hiperr.ErrDiskIO", err)
			}
			if s.Contains(pk(8, i)) {
				t.Fatalf("failed write %d recorded as present", i)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("FailEvery=3 over 9 writes gave %d failures, want 3", failures)
	}
	// Nil plane is a transparent pass-through.
	clean := InjectFaults(substrate.NewMemStore(testPS, true), nil)
	for i := int64(0); i < 20; i++ {
		if err := clean.WritePage(pk(9, i), page(byte(i))); err != nil {
			t.Fatalf("nil-plane wrapper failed write: %v", err)
		}
	}
}

func TestOpenUnknownKind(t *testing.T) {
	if _, err := Open("bogus", "", testPS); err == nil {
		t.Fatal("Open(bogus) succeeded")
	} else if !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("Open(bogus) error %v does not wrap hiperr.ErrBadRequest", err)
	}
}

func TestOpenLabels(t *testing.T) {
	for _, kind := range []string{"file", "mem", "tiered", "sharded", "mmap"} {
		b, err := Open(kind, "", testPS)
		if err != nil {
			t.Fatalf("Open(%s): %v", kind, err)
		}
		if b.Label() == "" {
			t.Errorf("Open(%s): empty label", kind)
		}
		if b.PageSize() != testPS {
			t.Errorf("Open(%s): page size %d", kind, b.PageSize())
		}
		if err := b.WritePage(pk(1, 1), page(0x10)); err != nil {
			t.Errorf("Open(%s) write: %v", kind, err)
		}
		if err := b.Close(); err != nil {
			t.Errorf("Open(%s) close: %v", kind, err)
		}
	}
}
