package store

import (
	"os"
	"runtime"
	"testing"
	"time"

	"hipec/internal/disk/filestore"
	"hipec/internal/substrate"
)

// countFDs reports the process's open descriptor count via /proc, or -1
// where /proc is unavailable (the fd-leak checks then skip).
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// TestCloseReleasesFDs opens and closes every file-backed backend kind and
// checks the descriptor count returns to its baseline — no leaked files
// from tiered stacks, shard fan-outs, or dropped mmap fallbacks.
func TestCloseReleasesFDs(t *testing.T) {
	if countFDs(t) < 0 {
		t.Skip("/proc/self/fd unavailable")
	}
	const ps = 256
	kinds := []string{"file", "tiered", "sharded", "mmap"}
	// Warm any lazy runtime descriptors before taking the baseline.
	for _, kind := range kinds {
		b, err := Open(kind, "", ps)
		if err != nil {
			t.Fatalf("Open(%s): %v", kind, err)
		}
		b.Close()
	}
	base := countFDs(t)
	for round := 0; round < 3; round++ {
		for _, kind := range kinds {
			b, err := Open(kind, "", ps)
			if err != nil {
				t.Fatalf("Open(%s): %v", kind, err)
			}
			for i := int64(0); i < 8; i++ {
				if err := b.WritePage(substrate.PageKey{Object: 1, Offset: i * ps}, nil); err != nil {
					t.Fatalf("%s write: %v", kind, err)
				}
			}
			if err := b.Close(); err != nil {
				t.Fatalf("Close(%s): %v", kind, err)
			}
		}
	}
	if got := countFDs(t); got > base {
		t.Fatalf("descriptor count grew from %d to %d across open/close cycles", base, got)
	}
}

// TestCloseRemovesTempFiles: every temp-backed kind must remove its
// backing files on Close, including the N shard files of a sharded store.
func TestCloseRemovesTempFiles(t *testing.T) {
	const ps = 256
	dir := t.TempDir()
	for _, kind := range []string{"file", "tiered", "sharded", "mmap"} {
		b, err := Open(kind, "", ps)
		if err != nil {
			t.Fatalf("Open(%s): %v", kind, err)
		}
		if err := b.WritePage(substrate.PageKey{Object: 1, Offset: 0}, []byte{1, 2, 3}); err != nil {
			t.Fatalf("%s write: %v", kind, err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("Close(%s): %v", kind, err)
		}
	}
	// Named (non-temp) stores keep their files; temp stores clean the
	// shared temp dir. Check an explicit sharded path set is removed only
	// by the caller, and that OpenMmapTemp in a private dir leaves nothing.
	mm, err := OpenMmapTemp(dir, ps)
	if err != nil {
		t.Fatalf("OpenMmapTemp: %v", err)
	}
	path := mm.Path()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("backing file missing while open: %v", err)
	}
	if err := mm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("temp mmap file %s survived Close (stat err %v)", path, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d stray files left in temp dir after Close", len(ents))
	}
}

// TestMmapCloseUnmaps: Close must drop the mapping (a later Close-after-
// Close or read would otherwise touch unmapped memory through a stale
// slice).
func TestMmapCloseUnmaps(t *testing.T) {
	s, err := OpenMmapTemp(t.TempDir(), 256)
	if err != nil {
		t.Fatalf("OpenMmapTemp: %v", err)
	}
	if err := s.WritePage(substrate.PageKey{Object: 1, Offset: 0}, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if s.data != nil {
		t.Fatal("mapping still referenced after Close")
	}
}

// TestShardedCloseClosesChildren: closing the composite closes every
// child, even when one is interposed mid-list.
func TestShardedCloseClosesChildren(t *testing.T) {
	const ps = 256
	children := make([]substrate.Store, 3)
	files := make([]*filestore.Store, 3)
	for i := range children {
		s, err := filestore.OpenTemp(t.TempDir(), ps)
		if err != nil {
			t.Fatalf("filestore.OpenTemp: %v", err)
		}
		children[i], files[i] = s, s
	}
	sh := NewSharded(children...)
	if err := sh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, f := range files {
		if _, err := os.Stat(f.Path()); !os.IsNotExist(err) {
			t.Fatalf("shard %d temp file survived composite Close (stat err %v)", i, err)
		}
	}
}

// TestStoreNoGoroutineLeak: no backend spawns goroutines — stores are
// passive actors driven by the loop. Style follows machipc's leak tests.
func TestStoreNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	const ps = 256
	for _, kind := range []string{"file", "mem", "tiered", "sharded", "mmap"} {
		b, err := Open(kind, "", ps)
		if err != nil {
			t.Fatalf("Open(%s): %v", kind, err)
		}
		for i := int64(0); i < 4; i++ {
			if err := b.WritePage(substrate.PageKey{Object: 2, Offset: i * ps}, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := b.ReadPage(substrate.PageKey{Object: 2, Offset: i * ps}); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after store open/close cycles",
		before, runtime.NumGoroutine())
}
