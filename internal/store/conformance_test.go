package store

import (
	"testing"

	"hipec/internal/disk/filestore"
	"hipec/internal/store/storetest"
	"hipec/internal/substrate"
)

// TestStoreConformance runs the storetest kit against every Store
// implementation in the tree — the reference MemStore, the slot-file
// store, each composite in this package (in both modes and over both
// child kinds), the mmap store in both mapped and fallback modes, and
// the kit's own fault-injecting wrapper. One contract, one suite.
func TestStoreConformance(t *testing.T) {
	const ps = 512
	matrix := []struct {
		name    string
		factory storetest.Factory
	}{
		{"Mem", func(t *testing.T) substrate.Store {
			return substrate.NewMemStore(ps, true)
		}},
		{"File", func(t *testing.T) substrate.Store {
			s, err := filestore.OpenTemp(t.TempDir(), ps)
			if err != nil {
				t.Fatalf("filestore.OpenTemp: %v", err)
			}
			return s
		}},
		{"TieredMemMemWriteThrough", func(t *testing.T) substrate.Store {
			// Tiny fast tier so the kit's workloads force eviction.
			return NewTiered(substrate.NewMemStore(ps, true),
				substrate.NewMemStore(ps, true), WriteThrough, 4)
		}},
		{"TieredMemFileWriteBack", func(t *testing.T) substrate.Store {
			slow, err := filestore.OpenTemp(t.TempDir(), ps)
			if err != nil {
				t.Fatalf("filestore.OpenTemp: %v", err)
			}
			return NewTiered(substrate.NewMemStore(ps, true), slow, WriteBack, 4)
		}},
		{"ShardedMem", func(t *testing.T) substrate.Store {
			return NewSharded(
				substrate.NewMemStore(ps, true),
				substrate.NewMemStore(ps, true),
				substrate.NewMemStore(ps, true))
		}},
		{"ShardedFile", func(t *testing.T) substrate.Store {
			children := make([]substrate.Store, 3)
			for i := range children {
				s, err := filestore.OpenTemp(t.TempDir(), ps)
				if err != nil {
					t.Fatalf("filestore.OpenTemp: %v", err)
				}
				children[i] = s
			}
			return NewSharded(children...)
		}},
		{"Mmap", func(t *testing.T) substrate.Store {
			s, err := OpenMmapTemp(t.TempDir(), ps)
			if err != nil {
				t.Fatalf("OpenMmapTemp: %v", err)
			}
			return s
		}},
		{"MmapFallback", func(t *testing.T) substrate.Store {
			s, err := OpenMmapTemp(t.TempDir(), ps)
			if err != nil {
				t.Fatalf("OpenMmapTemp: %v", err)
			}
			forceFallback(s)
			return s
		}},
		{"FailingPassthrough", func(t *testing.T) substrate.Store {
			// The kit's own wrapper with no faults armed must itself conform.
			return &storetest.Failing{Store: substrate.NewMemStore(ps, true)}
		}},
		{"OpenTiered", func(t *testing.T) substrate.Store {
			b, err := Open("tiered", "", ps)
			if err != nil {
				t.Fatalf("Open(tiered): %v", err)
			}
			return b
		}},
		{"OpenSharded", func(t *testing.T) substrate.Store {
			b, err := Open("sharded", "", ps)
			if err != nil {
				t.Fatalf("Open(sharded): %v", err)
			}
			return b
		}},
		{"OpenMmapKind", func(t *testing.T) substrate.Store {
			b, err := Open("mmap", "", ps)
			if err != nil {
				t.Fatalf("Open(mmap): %v", err)
			}
			return b
		}},
	}
	for _, m := range matrix {
		t.Run(m.name, func(t *testing.T) { storetest.Run(t, m.factory) })
	}
}

// forceFallback drops a live mapping so the store runs the
// filestore-semantics path, as it would on a platform or filesystem
// without mmap.
func forceFallback(s *Mmap) {
	if s.data != nil {
		_ = unmapFile(s.data)
		s.data = nil
	}
}
