//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package store

import (
	"fmt"
	"os"
	"syscall"

	"hipec/internal/hiperr"
)

// mapFile maps length bytes of f read-write, shared.
func mapFile(f *os.File, length int64) ([]byte, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(length),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		// A filesystem that refuses mmap (some network/overlay mounts)
		// reports ENODEV/ENOTSUP; the store degrades to pread/pwrite.
		if err == syscall.ENODEV || err == syscall.ENOTSUP || err == syscall.EOPNOTSUPP {
			return nil, errMapUnsupported
		}
		return nil, &hiperr.Error{Op: "store.mmap.map",
			Err: fmt.Errorf("%s (%d bytes): %v: %w", f.Name(), length, err, hiperr.ErrDiskIO)}
	}
	return data, nil
}

// unmapFile releases a mapFile mapping.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
