package store

import (
	"fmt"
	"io"

	"hipec/internal/substrate"
)

// Sharded fans a page store out across N child stores — N files, N
// devices, N tiered stacks — partitioned by a deterministic hash of the
// page key. The same key always lands on the same shard for a given child
// count, across runs and restarts (the index is content-addressed, not
// history-dependent), so a sharded store reopened over the same N backing
// files finds its pages.
//
// Each shard owns durability for its partition. A failing shard's error
// surfaces wrapped in the hiperr taxonomy (terminating in ErrDiskIO) with
// the shard named; the other shards are unaffected — a single dying device
// degrades only the keys it owns.
type Sharded struct {
	children []substrate.Store
	pageSize int
}

// NewSharded builds a sharded store over the children, which must all
// share a page size. At least one child is required (one child is a valid,
// if pointless, configuration — it keeps harness matrices simple).
func NewSharded(children ...substrate.Store) *Sharded {
	if len(children) == 0 {
		panic("store: sharded store needs at least one child")
	}
	ps := children[0].PageSize()
	for i, c := range children {
		if c == nil {
			panic("store: sharded store has a nil child")
		}
		if c.PageSize() != ps {
			panic(fmt.Sprintf("store: sharded child %d page size %d differs from %d",
				i, c.PageSize(), ps))
		}
	}
	return &Sharded{children: append([]substrate.Store(nil), children...), pageSize: ps}
}

// Shards reports the child count.
func (s *Sharded) Shards() int { return len(s.children) }

// shard maps key to its owning child: a splitmix64-style finalizer over
// the object ID and page index. Page-aligned offsets are divided down so
// consecutive pages of one object scatter rather than clump.
func (s *Sharded) shard(key substrate.PageKey) int {
	z := key.Object + 0x9E3779B97F4A7C15*(uint64(key.Offset/int64(s.pageSize))+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(len(s.children)))
}

// PageSize implements substrate.Store.
func (s *Sharded) PageSize() int { return s.pageSize }

// WritePage implements substrate.Store.
func (s *Sharded) WritePage(key substrate.PageKey, data []byte) error {
	checkPage("store.sharded", s.pageSize, key, data)
	i := s.shard(key)
	if err := s.children[i].WritePage(key, data); err != nil {
		return diskErr("store.sharded.write", fmt.Sprintf("shard %d", i), err)
	}
	return nil
}

// ReadPage implements substrate.Store.
func (s *Sharded) ReadPage(key substrate.PageKey) ([]byte, bool, error) {
	i := s.shard(key)
	data, ok, err := s.children[i].ReadPage(key)
	if err != nil {
		return nil, ok, diskErr("store.sharded.read", fmt.Sprintf("shard %d", i), err)
	}
	return data, ok, nil
}

// Contains implements substrate.Store.
func (s *Sharded) Contains(key substrate.PageKey) bool {
	return s.children[s.shard(key)].Contains(key)
}

// Len implements substrate.Store: the sum over shards.
func (s *Sharded) Len() int {
	n := 0
	for _, c := range s.children {
		n += c.Len()
	}
	return n
}

// DeletePage implements substrate.Deleter where the owning shard does.
func (s *Sharded) DeletePage(key substrate.PageKey) bool {
	if d, ok := s.children[s.shard(key)].(substrate.Deleter); ok {
		return d.DeletePage(key)
	}
	return false
}

// Sync implements Syncer: every shard that can sync does; sweeping
// continues past failures and the first error (shard-tagged) returns.
func (s *Sharded) Sync() error {
	var first error
	for i, c := range s.children {
		if sy, ok := c.(Syncer); ok {
			if err := sy.Sync(); err != nil && first == nil {
				first = diskErr("store.sharded.sync", fmt.Sprintf("shard %d", i), err)
			}
		}
	}
	return first
}

// StoreIO implements IOStats: summed over shards.
func (s *Sharded) StoreIO() (reads, writes int64) {
	for _, c := range s.children {
		if io, ok := c.(IOStats); ok {
			r, w := io.StoreIO()
			reads += r
			writes += w
		}
	}
	return reads, writes
}

// Close closes every child that can close — all of them, even after a
// failure — and returns the first error.
func (s *Sharded) Close() error {
	var first error
	for _, c := range s.children {
		if cl, ok := c.(io.Closer); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

var (
	_ substrate.Store   = (*Sharded)(nil)
	_ substrate.Deleter = (*Sharded)(nil)
	_ Syncer            = (*Sharded)(nil)
)
