package store

import (
	"bytes"
	"math/rand"
	"testing"

	"hipec/internal/disk/filestore"
	"hipec/internal/substrate"
)

// The differential harness pins every composite backend byte-equivalent
// to the MemStore oracle under a shared op stream. Ops are decoded from a
// byte script so the fuzzer can drive the same machine.
//
// Op encoding (3 bytes per op, trailing partial op ignored):
//
//	b0 % 5  — op: 0 full write, 1 partial write, 2 read, 3 contains, 4 delete
//	b1 % 3  — object ID
//	b2 % 16 — page index
//
// Write payloads derive deterministically from (op index, key), so the
// oracle and subject always see identical bytes.
const diffPS = 128

func diffKey(b1, b2 byte) substrate.PageKey {
	return substrate.PageKey{Object: uint64(b1 % 3), Offset: int64(b2%16) * diffPS}
}

func diffPayload(i int, k substrate.PageKey, n int) []byte {
	p := make([]byte, n)
	for j := range p {
		p[j] = byte(i) ^ byte(k.Object*131) ^ byte(k.Offset/diffPS) ^ byte(j*29)
	}
	return p
}

// normPage maps the two conforming representations of a page — nil and a
// zero-filled buffer — onto one canonical value.
func normPage(data []byte) []byte {
	if len(data) == 0 {
		return make([]byte, diffPS)
	}
	return append([]byte(nil), data...)
}

// runScript drives subject and oracle through the script, failing on the
// first observable divergence.
func runScript(t *testing.T, subject substrate.Store, script []byte) {
	t.Helper()
	oracle := substrate.NewMemStore(diffPS, true)
	for i := 0; i+3 <= len(script); i += 3 {
		op, k := script[i]%5, diffKey(script[i+1], script[i+2])
		switch op {
		case 0, 1:
			n := diffPS
			if op == 1 {
				n = 1 + int(script[i+1])%diffPS // partial, 1..diffPS bytes
			}
			payload := diffPayload(i, k, n)
			serr := subject.WritePage(k, payload)
			oerr := oracle.WritePage(k, payload)
			if (serr == nil) != (oerr == nil) {
				t.Fatalf("op %d write %v: subject err %v, oracle err %v", i, k, serr, oerr)
			}
		case 2:
			sdata, sok, serr := subject.ReadPage(k)
			if serr != nil {
				t.Fatalf("op %d read %v: subject error %v", i, k, serr)
			}
			odata, ook, _ := oracle.ReadPage(k)
			if sok != ook {
				t.Fatalf("op %d read %v: subject ok %v, oracle ok %v", i, k, sok, ook)
			}
			if sok && !bytes.Equal(normPage(sdata), normPage(odata)) {
				t.Fatalf("op %d read %v: subject and oracle disagree on bytes", i, k)
			}
		case 3:
			if s, o := subject.Contains(k), oracle.Contains(k); s != o {
				t.Fatalf("op %d contains %v: subject %v, oracle %v", i, k, s, o)
			}
		case 4:
			sd, sok := subject.(substrate.Deleter)
			if !sok {
				continue // backend opted out of deletion; skip the op
			}
			if s, o := sd.DeletePage(k), oracle.DeletePage(k); s != o {
				t.Fatalf("op %d delete %v: subject %v, oracle %v", i, k, s, o)
			}
		}
		if s, o := subject.Len(), oracle.Len(); s != o {
			t.Fatalf("after op %d: subject Len %d, oracle Len %d", i, s, o)
		}
	}
	// Closing sweep: every key the oracle holds must read identically.
	for obj := uint64(0); obj < 3; obj++ {
		for pg := int64(0); pg < 16; pg++ {
			k := substrate.PageKey{Object: obj, Offset: pg * diffPS}
			odata, ook, _ := oracle.ReadPage(k)
			ocopy := normPage(odata)
			sdata, sok, serr := subject.ReadPage(k)
			if serr != nil {
				t.Fatalf("sweep %v: subject error %v", k, serr)
			}
			if sok != ook {
				t.Fatalf("sweep %v: subject ok %v, oracle ok %v", k, sok, ook)
			}
			if sok && !bytes.Equal(normPage(sdata), ocopy) {
				t.Fatalf("sweep %v: final bytes diverge", k)
			}
		}
	}
}

// diffSubjects builds one fresh instance of every composite backend.
func diffSubjects(t *testing.T) map[string]substrate.Store {
	t.Helper()
	newFile := func() substrate.Store {
		s, err := filestore.OpenTemp(t.TempDir(), diffPS)
		if err != nil {
			t.Fatalf("filestore.OpenTemp: %v", err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	mm, err := OpenMmapTemp(t.TempDir(), diffPS)
	if err != nil {
		t.Fatalf("OpenMmapTemp: %v", err)
	}
	t.Cleanup(func() { mm.Close() })
	tieredWT := NewTiered(substrate.NewMemStore(diffPS, true), newFile(), WriteThrough, 5)
	tieredWB := NewTiered(substrate.NewMemStore(diffPS, true),
		substrate.NewMemStore(diffPS, true), WriteBack, 3)
	t.Cleanup(func() { tieredWT.Close() })
	return map[string]substrate.Store{
		"File":             newFile(),
		"TieredWT/File":    tieredWT,
		"TieredWB/Mem":     tieredWB,
		"Sharded/Mem":      NewSharded(substrate.NewMemStore(diffPS, true), substrate.NewMemStore(diffPS, true), substrate.NewMemStore(diffPS, true)),
		"Mmap":             mm,
		"Tiered/ShardFile": NewTiered(substrate.NewMemStore(diffPS, true), NewSharded(newFile(), newFile()), WriteThrough, 4),
	}
}

// TestStoreVsMemOracle drives a long seeded op stream through every
// composite backend and the MemStore oracle in lockstep.
func TestStoreVsMemOracle(t *testing.T) {
	for name, subject := range diffSubjects(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x42D))
			script := make([]byte, 3*4000)
			rng.Read(script)
			runScript(t, subject, script)
		})
	}
}

// FuzzStoreOps lets the fuzzer hunt for op sequences where a composite
// diverges from the oracle. Fresh subjects per input; small page size and
// tier caps keep eviction and promotion hot.
func FuzzStoreOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 2, 0, 0})                      // write then read
	f.Add([]byte{0, 1, 2, 4, 1, 2, 3, 1, 2})             // write, delete, contains
	f.Add([]byte{1, 0, 5, 1, 0, 5, 2, 0, 5})             // partial overwrites
	f.Add([]byte{0, 0, 0, 0, 1, 1, 0, 2, 2, 0, 0, 3, 2}) // fill past tier cap
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 3*512 {
			script = script[:3*512]
		}
		tiered := NewTiered(substrate.NewMemStore(diffPS, true),
			substrate.NewMemStore(diffPS, true), WriteThrough, 3)
		runScript(t, tiered, script)
		tieredWB := NewTiered(substrate.NewMemStore(diffPS, true),
			substrate.NewMemStore(diffPS, true), WriteBack, 2)
		runScript(t, tieredWB, script)
		sharded := NewSharded(substrate.NewMemStore(diffPS, true),
			substrate.NewMemStore(diffPS, true), substrate.NewMemStore(diffPS, true))
		runScript(t, sharded, script)
		mm, err := OpenMmapTemp(t.TempDir(), diffPS)
		if err != nil {
			t.Fatalf("OpenMmapTemp: %v", err)
		}
		defer mm.Close()
		runScript(t, mm, script)
	})
}
