package bench

import (
	"fmt"
	"io"

	"hipec/internal/core"
	"hipec/internal/kevent"
	"hipec/internal/policies"
)

// SpineSmokeConfig sizes the canonical deterministic workload used to
// exercise the kernel event spine end to end (CaptureEventLog, the
// replaydiff CI smoke, and the golden-report test share it).
type SpineSmokeConfig struct {
	Frames  int // machine size
	Touches int // references per phase
}

// DefaultSpineSmoke returns the full-size smoke workload.
func DefaultSpineSmoke() SpineSmokeConfig { return SpineSmokeConfig{Frames: 512, Touches: 20000} }

// QuickSpineSmoke returns the -quick scaling.
func QuickSpineSmoke() SpineSmokeConfig { return SpineSmokeConfig{Frames: 512, Touches: 4000} }

// RunSpineSmoke drives a small deterministic mixed workload — a plain
// daemon-managed task thrashing more pages than memory, a HiPEC MRU region
// cycling its working set, and a sprinkling of bad addresses — with the
// given sinks attached to the kernel spine. It returns the kernel for
// post-run inspection. Every run with the same config produces an
// identical event stream.
func RunSpineSmoke(cfg SpineSmokeConfig, sinks ...kevent.Sink) (*core.Kernel, error) {
	k := core.New(core.Config{Frames: cfg.Frames, StartChecker: true, Sinks: sinks})
	ps := int64(k.VM.PageSize())

	// Plain task under the default daemon: a region twice machine size,
	// written sequentially with wrap-around so the daemon balances, flushes
	// dirty pages, and reclaims.
	plain := k.NewSpace()
	plainPages := int64(2 * cfg.Frames)
	pe, err := plain.Allocate(plainPages * ps)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Touches; i++ {
		addr := pe.Start + (int64(i*7)%plainPages)*ps
		if i%3 == 0 {
			_, err = plain.Write(addr)
		} else {
			_, err = plain.Touch(addr)
		}
		if err != nil {
			return nil, err
		}
	}

	// Specific task: an MRU-managed region cycled sequentially (the
	// paper's pathological-for-LRU pattern), sized over its minFrame so
	// the policy requests, flushes and reclaims.
	hip := k.NewSpace()
	he, hc, err := k.Allocate(hip, 256*ps, core.WithPolicy(policies.MRU(64)))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Touches/2; i++ {
		addr := he.Start + (int64(i)%256)*ps
		if i%4 == 0 {
			_, err = hip.Write(addr)
		} else {
			_, err = hip.Touch(addr)
		}
		if err != nil {
			return nil, err
		}
	}

	// Bad addresses: accesses outside any mapped region.
	for i := 0; i < 5; i++ {
		if _, err := plain.Touch(int64(1<<40) + int64(i)*ps); err == nil {
			return nil, fmt.Errorf("bench: bad-address touch unexpectedly succeeded")
		}
	}

	// Teardown paths: destroy the HiPEC container so frames return.
	k.DestroyContainer(hc)
	return k, nil
}

// CaptureEventLog runs the spine smoke workload with a streaming event-log
// sink attached to the kernel spine and serializes every event to w. It
// reports the number of events captured. Two runs with the same quick flag
// produce byte-identical logs (cmd/replaydiff verifies this in CI).
func CaptureEventLog(w io.Writer, quick bool) (int64, error) {
	cfg := DefaultSpineSmoke()
	if quick {
		cfg = QuickSpineSmoke()
	}
	lw := kevent.NewLogWriter(w)
	if _, err := RunSpineSmoke(cfg, lw); err != nil {
		return 0, err
	}
	if err := lw.Flush(); err != nil {
		return 0, err
	}
	return lw.Events(), nil
}
