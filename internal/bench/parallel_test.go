package bench

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// withParallelism runs fn with the pool width pinned to n, restoring the
// previous setting afterwards.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := int(parallelism.Load())
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

func TestRunCellsCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		withParallelism(t, workers, func() {
			const n = 100
			var hits [n]atomic.Int32
			if err := runCells(n, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d: cell %d ran %d times", workers, i, got)
				}
			}
		})
	}
}

// Errors must come back joined in cell order regardless of which worker
// hit them first, so failure output is deterministic too.
func TestRunCellsErrorOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withParallelism(t, workers, func() {
			err := runCells(10, func(i int) error {
				if i%3 == 0 {
					return errors.New(string(rune('a' + i)))
				}
				return nil
			})
			if err == nil {
				t.Fatal("expected error")
			}
			want := "a\nd\ng\nj"
			if err.Error() != want {
				t.Fatalf("workers=%d: joined error %q, want %q", workers, err.Error(), want)
			}
		})
	}
}

// The core guarantee of the harness: every experiment renders byte-identical
// output whether the cells run serially or fanned out. Each sweep runs at
// reduced scale once with one worker and once with eight; the formatted
// text (what the experiments binary prints) must match exactly.
func TestParallelSweepsMatchSerialByteForByte(t *testing.T) {
	fig5 := Figure5Config{Frames: 2048, UserCounts: []int{1, 3}, JobsPerUser: 2}
	fig6 := Figure6Config{
		OuterBytes: []int64{20 << 20, 60 << 20},
		MemBytes:   40 << 20,
		Frames:     MachineFrames,
		Scale:      512,
	}
	t3 := Table3Config{RegionBytes: 2 << 20, Frames: 2048}

	render := func() (out [4]string) {
		s5, err := RunFigure5(fig5)
		if err != nil {
			t.Fatal(err)
		}
		out[0] = FormatFigure5(s5)
		p6, err := RunFigure6(fig6)
		if err != nil {
			t.Fatal(err)
		}
		out[1] = FormatFigure6(p6, fig6.Scale)
		r3, err := RunTable3(t3)
		if err != nil {
			t.Fatal(err)
		}
		out[2] = r3.Format()
		ab, err := RunMechanismAblation(1024)
		if err != nil {
			t.Fatal(err)
		}
		out[3] = FormatMechanismAblation(ab, 1024)
		return out
	}

	var serial, parallel [4]string
	withParallelism(t, 1, func() { serial = render() })
	withParallelism(t, 8, func() { parallel = render() })
	names := [4]string{"figure5", "figure6", "table3", "ablation"}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("%s output differs between -j 1 and -j 8:\nserial:\n%s\nparallel:\n%s",
				names[i], serial[i], parallel[i])
		}
	}
}

func TestMeasurePerfReport(t *testing.T) {
	r, err := MeasurePerf()
	if err != nil {
		t.Fatal(err)
	}
	if r.SweepCellsPerSec <= 0 || r.ExecutorNsPerCommand <= 0 {
		t.Fatalf("implausible report: %+v", r)
	}
	if r.ExecutorAllocsPerRun > 1 {
		t.Errorf("executor fault path allocates: %.2f allocs/run", r.ExecutorAllocsPerRun)
	}
	js := r.JSON()
	for _, field := range []string{"sweep_cells_per_sec", "executor_ns_per_command", "executor_allocs_per_run"} {
		if !strings.Contains(js, field) {
			t.Fatalf("JSON missing %q:\n%s", field, js)
		}
	}
}

// BenchmarkFigure5Sweep measures wall-clock sweep throughput at the
// session's parallelism (GOMAXPROCS by default); cells/sec is the headline
// number for the harness.
func BenchmarkFigure5Sweep(b *testing.B) {
	cfg := perfSweepConfig()
	cells := 3 * len(cfg.UserCounts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFigure5(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
}
