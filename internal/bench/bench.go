// Package bench regenerates every table and figure of the paper's
// evaluation (§5): Table 3 (HiPEC overhead on 40 MB of faults), Table 4
// (mechanism costs), Figure 5 (AIM throughput on modified vs unmodified
// kernels) and Figure 6 (nested-loop join, LRU vs HiPEC-MRU). Each runner
// returns structured results plus a paper-style text rendering with the
// paper's published numbers alongside for comparison.
package bench

import (
	"fmt"
	"strings"
	"time"

	"hipec/internal/aim"
	"hipec/internal/core"
	"hipec/internal/machipc"
	"hipec/internal/policies"
	"hipec/internal/vm"
	"hipec/internal/workload"
)

// MachineFrames is the paper's testbed memory: 64 MB of 4 KB frames.
const MachineFrames = 64 << 20 / 4096

// --- Table 3 ---------------------------------------------------------------

// Table3Config sizes experiment 1.
type Table3Config struct {
	RegionBytes int64 // paper: 40 MB
	Frames      int   // paper: 64 MB machine
}

// DefaultTable3 returns the paper's parameters.
func DefaultTable3() Table3Config {
	return Table3Config{RegionBytes: 40 << 20, Frames: MachineFrames}
}

// Table3Result reports the four elapsed times of Table 3.
type Table3Result struct {
	Faults       int64
	MachNoIO     time.Duration
	HiPECNoIO    time.Duration
	OverheadNoIO float64 // percent
	MachIO       time.Duration
	HiPECIO      time.Duration
	OverheadIO   float64 // percent
}

// RunTable3 measures page-fault handling time for touching the region once
// under the unmodified kernel and under HiPEC running the same FIFO with
// second chance policy, with and without disk I/O.
func RunTable3(cfg Table3Config) (Table3Result, error) {
	pages := cfg.RegionBytes / 4096
	poolFrames := int(pages) // "both request 40 Megabytes for their private management"

	touchAll := func(k *core.Kernel, sp *vm.AddressSpace, e *vm.MapEntry) (time.Duration, error) {
		start := k.Clock.Now()
		for addr := e.Start; addr < e.End; addr += 4096 {
			if _, err := sp.Touch(addr); err != nil {
				return 0, err
			}
		}
		return time.Duration(k.Clock.Now().Sub(start)), nil
	}

	run := func(hipec, withIO bool) (time.Duration, error) {
		k := core.New(core.Config{
			Frames:        cfg.Frames,
			HiPECDisabled: !hipec,
			StartChecker:  hipec,
		})
		sp := k.NewSpace()
		var e *vm.MapEntry
		var err error
		if hipec {
			spec := policies.FIFOSecondChance(poolFrames)
			if withIO {
				obj := k.VM.NewObject(cfg.RegionBytes, false)
				if perr := k.VM.Populate(obj, nil); perr != nil {
					return 0, perr
				}
				e, _, err = k.Map(sp, obj, 0, obj.Size, core.WithPolicy(spec))
			} else {
				e, _, err = k.Allocate(sp, cfg.RegionBytes, core.WithPolicy(spec))
			}
		} else {
			if withIO {
				obj := k.VM.NewObject(cfg.RegionBytes, false)
				if perr := k.VM.Populate(obj, nil); perr != nil {
					return 0, perr
				}
				e, err = sp.Map(obj, 0, obj.Size)
			} else {
				e, err = sp.Allocate(cfg.RegionBytes)
			}
		}
		if err != nil {
			return 0, err
		}
		return touchAll(k, sp, e)
	}

	var r Table3Result
	r.Faults = pages
	// The four kernel variants are independent simulations; run them as
	// pool cells, each writing its own field of the result.
	slots := [4]struct {
		hipec, withIO bool
		dst           *time.Duration
	}{
		{false, false, &r.MachNoIO},
		{true, false, &r.HiPECNoIO},
		{false, true, &r.MachIO},
		{true, true, &r.HiPECIO},
	}
	err := runCells(len(slots), func(i int) error {
		d, err := run(slots[i].hipec, slots[i].withIO)
		if err != nil {
			return err
		}
		*slots[i].dst = d
		return nil
	})
	if err != nil {
		return r, err
	}
	r.OverheadNoIO = 100 * (r.HiPECNoIO - r.MachNoIO).Seconds() / r.MachNoIO.Seconds()
	r.OverheadIO = 100 * (r.HiPECIO - r.MachIO).Seconds() / r.MachIO.Seconds()
	return r, nil
}

// Format renders Table 3 next to the paper's published numbers.
func (r Table3Result) Format() string {
	var b strings.Builder
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f msec", float64(d.Microseconds())/1000) }
	fmt.Fprintf(&b, "Table 3: Comparison — I (%d page faults)\n", r.Faults)
	fmt.Fprintf(&b, "%-44s %14s %14s\n", "Evaluation", "measured", "paper")
	fmt.Fprintf(&b, "40 Mbytes page fault, without disk I/O\n")
	fmt.Fprintf(&b, "  %-42s %14s %14s\n", "Running on Mach 3.0 Kernel", ms(r.MachNoIO), "4016.5 msec")
	fmt.Fprintf(&b, "  %-42s %14s %14s\n", "Running on HiPEC mechanism", ms(r.HiPECNoIO), "4088.6 msec")
	fmt.Fprintf(&b, "  %-42s %13.2f%% %14s\n", "HiPEC Overhead", r.OverheadNoIO, "1.8%")
	fmt.Fprintf(&b, "40 Mbytes page fault, with disk I/O\n")
	fmt.Fprintf(&b, "  %-42s %14s %14s\n", "Running on Mach 3.0 Kernel", ms(r.MachIO), "82485.5 msec")
	fmt.Fprintf(&b, "  %-42s %14s %14s\n", "Running on HiPEC mechanism", ms(r.HiPECIO), "82505.6 msec")
	fmt.Fprintf(&b, "  %-42s %13.3f%% %14s\n", "HiPEC Overhead", r.OverheadIO, "0.024%")
	return b.String()
}

// --- Table 4 ---------------------------------------------------------------

// Table4Result reports the mechanism comparison.
type Table4Result struct {
	NullSyscall time.Duration // calibrated simulated trap
	NullIPC     time.Duration // calibrated simulated round trip
	HiPECFault  time.Duration // simulated simple-fault policy overhead
	// InterpNsPerFault is the real (wall-clock, this machine) time to
	// fetch/decode/execute the Comp,DeQueue,Return simple-fault path.
	InterpNsPerFault time.Duration
}

// RunTable4 computes the three rows of Table 4. The simulated costs come
// from the calibrated models; the interpreter row is additionally measured
// for real on the host by running the executor with zero cost charging.
func RunTable4(measureIters int) (Table4Result, error) {
	var r Table4Result
	costs := machipc.DefaultCosts()
	r.NullSyscall = costs.NullSyscall
	r.NullIPC = costs.NullIPC
	// Simulated simple-fault overhead: 3 commands at the calibrated
	// per-command decode cost (Table 4 reports ≈150 ns).
	r.HiPECFault = 3 * core.DefaultExecCosts().PerCommand

	// Real measurement: drive the PageFault event of the simple FIFO
	// policy (Comp/DeQueue/Return shape) with zero virtual-cost charging.
	k := core.New(core.Config{Frames: 4096})
	k.Executor.Costs = core.ExecCosts{}
	sp := k.NewSpace()
	spec := policies.FIFO(64)
	e, c, err := k.Allocate(sp, 64*4096, core.WithPolicy(spec))
	if err != nil {
		return r, err
	}
	if _, err := sp.Touch(e.Start); err != nil {
		return r, err
	}
	if measureIters <= 0 {
		measureIters = 200000
	}
	// Run the ReclaimFrame-free fast path: execute the PageFault program
	// directly, returning the dequeued page to the free list each time.
	start := time.Now()
	for i := 0; i < measureIters; i++ {
		res, err := k.Executor.Run(c, core.EventPageFault)
		if err != nil {
			return r, err
		}
		// put the frame back so the next run takes the same 3-command path
		c.Free.EnqueueHead(res.Page)
		c.Operand(core.SlotPageReg).Page = nil
	}
	r.InterpNsPerFault = time.Since(start) / time.Duration(measureIters)
	return r, nil
}

// Format renders Table 4 next to the paper's numbers.
func (r Table4Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Comparison — II\n")
	fmt.Fprintf(&b, "%-36s %14s %14s\n", "Evaluation", "this repo", "paper")
	fmt.Fprintf(&b, "%-36s %14v %14s\n", "Null System Call (calibrated)", r.NullSyscall, "19 µsec")
	fmt.Fprintf(&b, "%-36s %14v %14s\n", "Null IPC Call (calibrated)", r.NullIPC, "292 µsec")
	fmt.Fprintf(&b, "%-36s %14v %14s\n", "Simple HiPEC fault (calibrated)", r.HiPECFault, "~150 nsec")
	fmt.Fprintf(&b, "%-36s %14v %14s\n", "Simple HiPEC fault (measured here)", r.InterpNsPerFault, "-")
	return b.String()
}

// --- Figure 5 ---------------------------------------------------------------

// Figure5Point is one throughput sample.
type Figure5Point struct {
	Users   int
	Vanilla float64 // jobs/min on the unmodified kernel
	HiPEC   float64 // jobs/min on the HiPEC kernel (no specific apps)
}

// Figure5Series is one workload mix's curve.
type Figure5Series struct {
	Mix    string
	Points []Figure5Point
}

// Figure5Config sizes the AIM sweep.
type Figure5Config struct {
	Frames      int
	UserCounts  []int
	JobsPerUser int
}

// DefaultFigure5 uses a 32 MB machine (the paper's 64 MB minus the kernel
// and buffer cache of a loaded 1994 system) and 1..15 simulated users, which
// puts the memory mix's saturation knee at 4-6 users as in Figure 5.
func DefaultFigure5() Figure5Config {
	users := make([]int, 15)
	for i := range users {
		users[i] = i + 1
	}
	return Figure5Config{Frames: MachineFrames / 2, UserCounts: users, JobsPerUser: 6}
}

// RunFigure5 sweeps the three AIM mixes over the user counts on both
// kernels. Each (mix, users) point is an independent cell — two private
// kernels, two private clocks — so the sweep fans out over the worker
// pool; results land by index, making the output identical at any
// parallelism.
func RunFigure5(cfg Figure5Config) ([]Figure5Series, error) {
	mixes := aim.Mixes()
	out := make([]Figure5Series, len(mixes))
	for mi, mix := range mixes {
		out[mi] = Figure5Series{Mix: mix.Name, Points: make([]Figure5Point, len(cfg.UserCounts))}
	}
	nu := len(cfg.UserCounts)
	err := runCells(len(mixes)*nu, func(i int) error {
		mi, ui := i/nu, i%nu
		mix, n := mixes[mi], cfg.UserCounts[ui]
		build := func(hipec bool) *core.Kernel {
			return core.New(core.Config{
				Frames:        cfg.Frames,
				HiPECDisabled: !hipec,
				StartChecker:  hipec,
			})
		}
		v, err := aim.Run(build(false), mix, n, cfg.JobsPerUser)
		if err != nil {
			return err
		}
		h, err := aim.Run(build(true), mix, n, cfg.JobsPerUser)
		if err != nil {
			return err
		}
		out[mi].Points[ui] = Figure5Point{Users: n, Vanilla: v.Throughput, HiPEC: h.Throughput}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatFigure5 renders the curves as aligned columns with an ASCII spark
// of the vanilla curve.
func FormatFigure5(series []Figure5Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: AIM-style throughput, Mach kernel vs HiPEC kernel (jobs/min)\n")
	for _, s := range series {
		fmt.Fprintf(&b, "\nworkload mix: %s\n", s.Mix)
		fmt.Fprintf(&b, "%6s %12s %12s %9s\n", "users", "Mach", "HiPEC", "delta")
		for _, p := range s.Points {
			delta := 0.0
			if p.Vanilla != 0 {
				delta = 100 * (p.HiPEC - p.Vanilla) / p.Vanilla
			}
			fmt.Fprintf(&b, "%6d %12.1f %12.1f %8.3f%%\n", p.Users, p.Vanilla, p.HiPEC, delta)
		}
	}
	for _, s := range series {
		xs := make([]float64, len(s.Points))
		mach := make([]float64, len(s.Points))
		hip := make([]float64, len(s.Points))
		for i, p := range s.Points {
			xs[i] = float64(p.Users)
			mach[i] = p.Vanilla
			hip[i] = p.HiPEC
		}
		b.WriteString("\n")
		b.WriteString(asciiChart(
			fmt.Sprintf("throughput vs users — %s mix (curves coincide)", s.Mix),
			"simulated users", "jobs/min", xs,
			[]plotSeries{{name: "Mach", marker: 'M', ys: mach}, {name: "HiPEC", marker: '*', ys: hip}},
			56, 12))
	}
	b.WriteString("\npaper result: the two kernels provide almost the same throughput under all three mixes.\n")
	return b.String()
}

// --- Figure 6 ---------------------------------------------------------------

// Figure6Point is one outer-table size sample.
type Figure6Point struct {
	OuterBytes  int64
	LRUElapsed  time.Duration
	MRUElapsed  time.Duration
	LRUFaults   int64
	MRUFaults   int64
	AnalyticLRU int64 // paper's PF_l
	AnalyticMRU int64 // paper's PF_m
}

// Figure6Config sizes the join sweep. Scale divides every byte quantity to
// allow fast scaled-down runs with identical shape (Scale=1 reproduces the
// paper's sizes: outer 20..60 MB, memory 40 MB, 64 scans).
type Figure6Config struct {
	OuterBytes []int64
	MemBytes   int64
	Frames     int
	Scale      int64
}

// DefaultFigure6 uses the paper's sweep: 20..60 MB outer tables.
func DefaultFigure6() Figure6Config {
	var outs []int64
	for mb := int64(20); mb <= 60; mb += 5 {
		outs = append(outs, mb<<20)
	}
	return Figure6Config{OuterBytes: outs, MemBytes: 40 << 20, Frames: MachineFrames, Scale: 1}
}

// RunFigure6 runs the §5.3 nested-loop join for each outer size under the
// default-kernel LRU policy and the HiPEC MRU policy. Each (outer size,
// policy) run is one pool cell; the two cells of a point write disjoint
// fields of the same Figure6Point.
func RunFigure6(cfg Figure6Config) ([]Figure6Point, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	out := make([]Figure6Point, len(cfg.OuterBytes))
	for oi, outer := range cfg.OuterBytes {
		out[oi].OuterBytes = outer
	}
	pols := [2]string{"lru", "mru"}
	err := runCells(2*len(cfg.OuterBytes), func(i int) error {
		oi, pol := i/2, pols[i%2]
		outer := cfg.OuterBytes[oi]
		jc := workload.JoinConfig{
			InnerBytes: 4 << 10,
			OuterBytes: outer / cfg.Scale,
			TupleSize:  64,
			PageSize:   4096,
			MemBytes:   cfg.MemBytes / cfg.Scale,
		}
		pool := int(jc.MemBytes / int64(jc.PageSize))
		pt := &out[oi]
		frames := int(int64(cfg.Frames) / cfg.Scale)
		if minFrames := pool + pool/8 + 64; frames < minFrames {
			frames = minFrames
		}
		k := core.New(core.Config{Frames: frames})
		sp := k.NewSpace()
		spec, err := policies.ByName(pol, pool)
		if err != nil {
			return err
		}
		obj := k.VM.NewObject(jc.OuterBytes, false)
		if perr := k.VM.Populate(obj, nil); perr != nil { // outer table lives on disk
			return perr
		}
		e, c, err := k.Map(sp, obj, 0, obj.Size, core.WithPolicy(spec))
		if err != nil {
			return err
		}
		start := k.Clock.Now()
		res, err := workload.RunJoin(sp, e, jc)
		if err != nil {
			return err
		}
		elapsed := time.Duration(k.Clock.Now().Sub(start))
		if c.State() != core.StateActive {
			return fmt.Errorf("bench: %s policy died: %s", pol, c.TerminationReason())
		}
		if pol == "lru" {
			pt.LRUElapsed, pt.LRUFaults = elapsed, res.Faults
			pt.AnalyticLRU = jc.LRUPageFaults()
		} else {
			pt.MRUElapsed, pt.MRUFaults = elapsed, res.Faults
			pt.AnalyticMRU = jc.MRUPageFaults()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatFigure6 renders the join sweep with the analytic model.
func FormatFigure6(points []Figure6Point, scale int64) string {
	var b strings.Builder
	if scale <= 0 {
		scale = 1
	}
	fmt.Fprintf(&b, "Figure 6: Elapsed time for the join operation (LRU vs HiPEC MRU)")
	if scale > 1 {
		fmt.Fprintf(&b, " — scaled 1/%d", scale)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%9s %12s %12s %8s %12s %12s %12s %12s\n",
		"outer", "LRU", "MRU", "speedup", "LRU faults", "PF_l", "MRU faults", "PF_m")
	for _, p := range points {
		speed := 0.0
		if p.MRUElapsed > 0 {
			speed = p.LRUElapsed.Seconds() / p.MRUElapsed.Seconds()
		}
		fmt.Fprintf(&b, "%6d MB %12s %12s %7.2fx %12d %12d %12d %12d\n",
			p.OuterBytes>>20,
			fmtMinutes(p.LRUElapsed), fmtMinutes(p.MRUElapsed), speed,
			p.LRUFaults, p.AnalyticLRU, p.MRUFaults, p.AnalyticMRU)
	}
	xs := make([]float64, len(points))
	lru := make([]float64, len(points))
	mru := make([]float64, len(points))
	for i, p := range points {
		xs[i] = float64(p.OuterBytes >> 20)
		lru[i] = p.LRUElapsed.Minutes()
		mru[i] = p.MRUElapsed.Minutes()
	}
	b.WriteString("\n")
	b.WriteString(asciiChart(
		"elapsed time vs outer table size",
		"outer table (MB)", "minutes", xs,
		[]plotSeries{{name: "LRU", marker: 'L', ys: lru}, {name: "HiPEC MRU", marker: 'M', ys: mru}},
		56, 14))
	b.WriteString("\npaper result: a great response-time gap opens once the outer table exceeds the\n40 MB of allocated memory; measured faults match the analytic PF model.\n")
	return b.String()
}

func fmtMinutes(d time.Duration) string {
	return fmt.Sprintf("%.2f min", d.Minutes())
}
