package bench

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hipec/internal/core"
	"hipec/internal/policies"
	"hipec/internal/store"
	"hipec/internal/substrate"
	"hipec/internal/vm"
)

// RealtimeConfig sizes the realtime-substrate smoke: N client goroutines
// hammer one real-store-backed HiPEC cache through the serialized command
// loop.
type RealtimeConfig struct {
	Clients        int    // concurrent client goroutines (default 8)
	PagesPerClient int    // region size per client in pages (default 64)
	Rounds         int    // full passes over each region (default 4)
	StoreKind      string // backend kind per store.Open ("" = file)
	Dir            string // backing-file directory ("" = OS temp dir)
}

// DefaultRealtime returns the standard smoke shape.
func DefaultRealtime() RealtimeConfig {
	return RealtimeConfig{Clients: 8, PagesPerClient: 64, Rounds: 4}
}

// RealtimeResult summarizes one realtime run. Unlike every simulated
// result in this package, WallTime is genuinely elapsed real time and the
// store counters are real file I/O.
type RealtimeResult struct {
	Clients     int
	Pages       int
	Rounds      int
	StoreLabel  string
	WallTime    time.Duration
	VM          vm.Stats
	StoreReads  int64
	StoreWrites int64
	StorePages  int
	Verified    int64 // pages whose payload round-tripped through the file intact
}

// Format renders the result.
func (r RealtimeResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "realtime substrate: %d clients x %d pages x %d rounds, %s store\n",
		r.Clients, r.Pages, r.Rounds, r.StoreLabel)
	fmt.Fprintf(&b, "  wall time      %v\n", r.WallTime.Round(time.Microsecond))
	fmt.Fprintf(&b, "  accesses       %d (%d hits, %d faults)\n", r.VM.Accesses, r.VM.Hits, r.VM.Faults)
	fmt.Fprintf(&b, "  page-ins       %d   page-outs %d   zero-fills %d\n", r.VM.PageIns, r.VM.PageOuts, r.VM.ZeroFills)
	fmt.Fprintf(&b, "  store          %d page reads, %d page writes, %d pages resident in file\n",
		r.StoreReads, r.StoreWrites, r.StorePages)
	fmt.Fprintf(&b, "  verified       %d payload round trips through the backing file\n", r.Verified)
	return b.String()
}

// RunRealtime builds a kernel on the realtime substrate — wall clock, frame
// payload arena, file-backed store — and drives it with cfg.Clients
// concurrent goroutines through the actor loop. Each client owns one
// HiPEC FIFO-policy region sized to overflow its frame pool, so every round
// after the first forces real evictions (file writes) and re-faults (file
// reads). Clients stamp each page with a recognizable payload and verify it
// after the page round-trips through the backing file.
func RunRealtime(cfg RealtimeConfig) (RealtimeResult, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.PagesPerClient <= 0 {
		cfg.PagesPerClient = 64
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	const pageSize = 4096
	res := RealtimeResult{Clients: cfg.Clients, Pages: cfg.PagesPerClient, Rounds: cfg.Rounds}

	// cfg.Dir pins the backing file(s) to a directory; an empty path means
	// fresh temp files that Close removes.
	var path string
	if cfg.Dir != "" {
		path = filepath.Join(cfg.Dir, "hipec-realtime.pages")
	}
	st, err := store.Open(cfg.StoreKind, path, pageSize)
	if err != nil {
		return res, err
	}
	defer st.Close()
	res.StoreLabel = st.Label()

	// Half the frames a full fleet would want: the cache must evict.
	frames := cfg.Clients * cfg.PagesPerClient / 2
	k := core.New(core.Config{
		Frames:        frames,
		PageSize:      pageSize,
		BurstFraction: 0.5,
		Substrate:     substrate.Config{Kind: substrate.KindReal, Store: st},
	})
	l := core.NewLoop(k)
	defer l.Close()

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var verified int64
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var sp *vm.AddressSpace
			var start int64
			pool := cfg.PagesPerClient / 4
			if pool < 2 {
				pool = 2
			}
			if err := l.Call(func(k *core.Kernel) error {
				sp = k.NewSpace()
				e, _, err := k.Allocate(sp, int64(cfg.PagesPerClient)*pageSize, core.WithPolicy(policies.FIFO(pool)))
				if err != nil {
					return err
				}
				start = e.Start
				return nil
			}); err != nil {
				fail(err)
				return
			}
			stamp := byte(id + 1)
			for round := 0; round < cfg.Rounds; round++ {
				for i := 0; i < cfg.PagesPerClient; i++ {
					addr := start + int64(i)*pageSize
					i := i
					if err := l.Call(func(k *core.Kernel) error {
						p, err := sp.Write(addr)
						if err != nil {
							return err
						}
						if round == 0 {
							p.Data[0], p.Data[1] = stamp, byte(i)
						} else if p.Data[0] != stamp || p.Data[1] != byte(i) {
							return fmt.Errorf("client %d page %d: payload corrupt after store round trip: % x",
								id, i, p.Data[:2])
						} else {
							mu.Lock()
							verified++
							mu.Unlock()
						}
						return nil
					}); err != nil {
						fail(err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	res.WallTime = time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}

	err = l.Call(func(k *core.Kernel) error {
		res.VM = k.VM.Stats()
		return nil
	})
	if io, ok := st.(store.IOStats); ok {
		res.StoreReads, res.StoreWrites = io.StoreIO()
	}
	res.StorePages = st.Len()
	res.Verified = verified
	return res, err
}
