package bench

import (
	"bytes"
	"testing"
)

func TestChaosZeroSeedRejected(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Frames: 64, Touches: 10}); err == nil {
		t.Fatal("chaos soak accepted a zero seed")
	}
}

// TestChaosRecoveryLadder runs the quick soak and checks that every stage of
// the graceful-degradation ladder was actually exercised: injected faults of
// each class, fault-path retries, abandoned faults, pager failover and
// container revocation — with the invariants inside RunChaos all holding.
func TestChaosRecoveryLadder(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		rep, err := RunChaos(QuickChaos(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t.Logf("%v", rep)
		if rep.DiskErrors == 0 {
			t.Errorf("seed %d: no disk errors injected", seed)
		}
		if rep.DiskSlows == 0 {
			t.Errorf("seed %d: no latency spikes injected", seed)
		}
		if rep.PagerLosses == 0 {
			t.Errorf("seed %d: no pager losses injected", seed)
		}
		if rep.GrantDenials == 0 {
			t.Errorf("seed %d: no grant denials injected", seed)
		}
		if rep.Retries == 0 {
			t.Errorf("seed %d: fault path never retried", seed)
		}
		if rep.Abandons == 0 {
			t.Errorf("seed %d: no fault ever exhausted its budget", seed)
		}
		if rep.Failovers != 1 {
			t.Errorf("seed %d: failovers = %d, want 1", seed, rep.Failovers)
		}
		if rep.Revocations != 1 {
			t.Errorf("seed %d: revocations = %d, want 1", seed, rep.Revocations)
		}
	}
}

// TestChaosDeterminism pins the acceptance criterion: two soaks with the
// same seed produce byte-identical event logs.
func TestChaosDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	na, err := CaptureChaosLog(&a, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := CaptureChaosLog(&b, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed chaos logs differ: %d vs %d events", na, nb)
	}
	var c bytes.Buffer
	if _, err := CaptureChaosLog(&c, 8, true); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical chaos logs")
	}
}
