package bench

import (
	"testing"
	"time"
)

// The simulation is deterministic, so the full-scale experiment outputs can
// be pinned exactly. These are the numbers recorded in EXPERIMENTS.md; any
// change to kernel behaviour that shifts them is either a bug or requires
// re-documenting.

func TestFigure6FullScalePinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale pin skipped in -short mode")
	}
	cfg := DefaultFigure6()
	cfg.OuterBytes = []int64{40 << 20, 60 << 20}
	points, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p40, p60 := points[0], points[1]

	// 40 MB: fits exactly; both policies pay only cold faults.
	if p40.LRUFaults != 10240 || p40.MRUFaults != 10240 {
		t.Fatalf("40MB faults = %d/%d, want 10240/10240", p40.LRUFaults, p40.MRUFaults)
	}
	if p40.LRUElapsed != p40.MRUElapsed {
		t.Fatalf("40MB elapsed diverges: %v vs %v", p40.LRUElapsed, p40.MRUElapsed)
	}

	// 60 MB: the paper's analytic counts, exactly.
	if p60.LRUFaults != 983040 {
		t.Fatalf("60MB LRU faults = %d, want 983040", p60.LRUFaults)
	}
	if p60.MRUFaults != 337920 {
		t.Fatalf("60MB MRU faults = %d, want 337920", p60.MRUFaults)
	}
	// Elapsed times in the paper's "minutes" regime (Figure 6's y-axis).
	if m := p60.LRUElapsed.Minutes(); m < 125 || m > 140 {
		t.Fatalf("60MB LRU elapsed = %.2f min, want ~132", m)
	}
	if m := p60.MRUElapsed.Minutes(); m < 40 || m > 50 {
		t.Fatalf("60MB MRU elapsed = %.2f min, want ~45", m)
	}
	if ratio := p60.LRUElapsed.Seconds() / p60.MRUElapsed.Seconds(); ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("60MB speedup = %.2f, want ~2.9", ratio)
	}
}

func TestTable3FullScalePinnedDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale pin skipped in -short mode")
	}
	r, err := RunTable3(DefaultTable3())
	if err != nil {
		t.Fatal(err)
	}
	// The HiPEC delta is exactly the calibrated per-fault policy cost:
	// 10240 * (region check + activation + interpreted commands).
	delta := r.HiPECNoIO - r.MachNoIO
	if delta < 70*time.Millisecond || delta > 90*time.Millisecond {
		t.Fatalf("no-I/O delta = %v, want ~79ms (paper: 72.1ms)", delta)
	}
	deltaIO := r.HiPECIO - r.MachIO
	if d := deltaIO - delta; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("I/O delta %v differs from no-I/O delta %v", deltaIO, delta)
	}
}

func TestMechanismAblationFullScalePinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale pin skipped in -short mode")
	}
	rows, err := RunMechanismAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Faults != 337920 {
			t.Fatalf("%s faults = %d, want 337920", r.Mechanism, r.Faults)
		}
	}
	// The external pager's penalty is its replacements times the null-IPC
	// cost (292 µs), within rounding.
	extPenalty := rows[1].Elapsed - rows[0].Elapsed
	wantIPC := time.Duration(rows[1].IPCs) * 292 * time.Microsecond
	// HiPEC itself charges activation+commands the ext pager doesn't;
	// allow that margin (7µs + ~6 commands * 50ns per fault).
	margin := time.Duration(rows[0].Faults) * 8 * time.Microsecond
	if extPenalty < wantIPC-margin || extPenalty > wantIPC+margin {
		t.Fatalf("ext pager penalty %v, want ~%v (±%v)", extPenalty, wantIPC, margin)
	}
}

func TestFigure5FullScalePinnedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale pin skipped in -short mode")
	}
	cfg := DefaultFigure5()
	cfg.UserCounts = []int{1, 4, 15}
	series, err := RunFigure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		p1, p4, p15 := s.Points[0], s.Points[1], s.Points[2]
		// Rising limb: 4 users beat 1 user on every mix.
		if p4.Vanilla <= p1.Vanilla {
			t.Errorf("mix %s: no rise (1 user %.1f, 4 users %.1f)", s.Mix, p1.Vanilla, p4.Vanilla)
		}
		// Saturated/degraded tail: 15 users never exceed 15x one user.
		if p15.Vanilla >= 15*p1.Vanilla {
			t.Errorf("mix %s: no saturation at 15 users", s.Mix)
		}
		// The two kernels coincide everywhere (the Figure 5 claim).
		for _, p := range s.Points {
			gap := (p.Vanilla - p.HiPEC) / p.Vanilla
			if gap < -0.001 || gap > 0.001 {
				t.Errorf("mix %s users %d: kernel gap %.4f%%", s.Mix, p.Users, gap*100)
			}
		}
	}
	// The memory mix must show the post-knee decline.
	mem := series[2]
	if mem.Points[2].Vanilla >= mem.Points[1].Vanilla {
		t.Errorf("memory mix did not degrade: 4 users %.1f, 15 users %.1f",
			mem.Points[1].Vanilla, mem.Points[2].Vanilla)
	}
}
