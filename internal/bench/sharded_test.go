package bench

import (
	"bytes"
	"runtime"
	"testing"

	"hipec/internal/kevent"
)

// TestShardedSerialParallelIdentical pins the harness's core determinism
// claim: per-shard results and merged counters are identical whether the
// shards run on K goroutines or sequentially on one.
func TestShardedSerialParallelIdentical(t *testing.T) {
	par, err := RunSharded(ShardedConfig{Shards: 4, Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunSharded(ShardedConfig{Shards: 4, Seed: 7, Quick: true, Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range par.Shards {
		if par.Shards[i] != ser.Shards[i] {
			t.Fatalf("shard %d diverged:\n  parallel: %+v\n  serial:   %+v", i, par.Shards[i], ser.Shards[i])
		}
	}
	if *par.Merged.Global() != *ser.Merged.Global() {
		t.Fatal("merged global counters diverged between serial and parallel runs")
	}
	if par.Faults != ser.Faults {
		t.Fatalf("fault totals diverged: %d vs %d", par.Faults, ser.Faults)
	}
}

// TestShardResultIndependentOfShardCount pins that shard i's outcome
// depends only on its seed: shard 0 of a 4-shard run matches shard 0 of a
// 1-shard run (same master seed).
func TestShardResultIndependentOfShardCount(t *testing.T) {
	one, err := RunSharded(ShardedConfig{Shards: 1, Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunSharded(ShardedConfig{Shards: 4, Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if one.Shards[0] != four.Shards[0] {
		t.Fatalf("shard 0 diverged with shard count:\n  1 shard:  %+v\n  4 shards: %+v", one.Shards[0], four.Shards[0])
	}
}

// TestShardedSeedZeroMatchesUnshardedLog is the in-process version of the
// CI replaydiff gate: at Shards=1, Seed=0, the sharded path's shard-0
// event log is byte-identical to CaptureEventLog's unsharded stream.
func TestShardedSeedZeroMatchesUnshardedLog(t *testing.T) {
	var unsharded bytes.Buffer
	if _, err := CaptureEventLog(&unsharded, true); err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	lw := kevent.NewLogWriter(&sharded)
	if _, err := RunSharded(ShardedConfig{Shards: 1, Quick: true, Shard0Sink: lw}); err != nil {
		t.Fatal(err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unsharded.Bytes(), sharded.Bytes()) {
		t.Fatalf("sharded shard-0 log differs from unsharded log: %d vs %d bytes",
			sharded.Len(), unsharded.Len())
	}
}

// TestShardSeedsDerivation pins the splitmix64 seed schedule: non-zero
// masters give distinct non-zero per-shard seeds, zero master disables
// scatter everywhere.
func TestShardSeedsDerivation(t *testing.T) {
	seeds := ShardSeeds(42, 8)
	seen := map[uint64]bool{}
	for i, s := range seeds {
		if s == 0 {
			t.Fatalf("shard %d got zero seed from non-zero master", i)
		}
		if seen[s] {
			t.Fatalf("duplicate shard seed %#x", s)
		}
		seen[s] = true
	}
	again := ShardSeeds(42, 8)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("seed schedule not deterministic")
		}
	}
	for _, s := range ShardSeeds(0, 4) {
		if s != 0 {
			t.Fatal("zero master must yield zero shard seeds")
		}
	}
}

// TestRegistryMerge pins the merge semantics on a hand-built pair.
func TestRegistryMerge(t *testing.T) {
	var a, b kevent.Registry
	a.Emit(kevent.Event{Type: kevent.EvFault, Space: 1, Arg: 2})
	b.Emit(kevent.Event{Type: kevent.EvFault, Space: 1, Arg: 3})
	b.Emit(kevent.Event{Type: kevent.EvHit, Space: 2, Flag: true})
	var m kevent.Registry
	m.Merge(&a)
	m.Merge(&b)
	if got := m.Count(kevent.EvFault); got != 2 {
		t.Fatalf("merged fault count = %d, want 2", got)
	}
	if got := m.Sum(kevent.EvFault); got != 5 {
		t.Fatalf("merged fault sum = %d, want 5", got)
	}
	if got := m.Space(1).Counts[kevent.EvFault]; got != 2 {
		t.Fatalf("merged space-1 faults = %d, want 2", got)
	}
	if got := m.Space(2).Flags[kevent.EvHit]; got != 1 {
		t.Fatalf("merged space-2 hit flags = %d, want 1", got)
	}
}

// BenchmarkMultiKernelThroughput is the scale headline: GOMAXPROCS
// independent kernels, each a complete simulated machine, run to
// completion; the reported custom metric is simulated page faults per
// wall-clock second across the fleet.
func BenchmarkMultiKernelThroughput(b *testing.B) {
	shards := runtime.GOMAXPROCS(0)
	var faults int64
	var wall float64
	for i := 0; i < b.N; i++ {
		res, err := RunSharded(ShardedConfig{Shards: shards, Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		faults += res.Faults
		wall += res.WallSeconds
	}
	if wall > 0 {
		b.ReportMetric(float64(faults)/wall, "faults/sec")
	}
	b.ReportMetric(float64(shards), "shards")
}
