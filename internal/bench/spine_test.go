package bench

import (
	"bytes"
	"testing"

	"hipec/internal/kevent"
)

// TestEventSpineCaptureDeterministic: two captures of the same smoke
// workload must produce byte-identical event logs — the property replaydiff
// relies on to treat any divergence as a regression.
func TestEventSpineCaptureDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	na, err := CaptureEventLog(&a, true)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := CaptureEventLog(&b, true)
	if err != nil {
		t.Fatal(err)
	}
	if na == 0 {
		t.Fatal("capture produced no events")
	}
	if na != nb || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("captures diverged: %d vs %d events, equal=%t", na, nb, bytes.Equal(a.Bytes(), b.Bytes()))
	}
	// The capture must parse back into the same number of records.
	events, err := kevent.ReadLog(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(events)) != na {
		t.Fatalf("log wrote %d events but parses to %d", na, len(events))
	}
}

// TestEventSpineSmokeCounters sanity-checks that the smoke workload drives
// every layer of the spine: vm traffic, HiPEC activations, and container
// lifecycle all register.
func TestEventSpineSmokeCounters(t *testing.T) {
	k, err := RunSpineSmoke(QuickSpineSmoke())
	if err != nil {
		t.Fatal(err)
	}
	r := k.Registry()
	for _, ty := range []kevent.Type{
		kevent.EvHit, kevent.EvFault, kevent.EvZeroFill, kevent.EvBadAddress,
		kevent.EvFMGrant, kevent.EvPolicyActivation, kevent.EvContainerCreated,
	} {
		if r.Count(ty) == 0 {
			t.Errorf("smoke workload emitted no %v events", ty)
		}
	}
	if got := r.Count(kevent.EvBadAddress); got != 5 {
		t.Errorf("bad addresses = %d, want 5", got)
	}
}
