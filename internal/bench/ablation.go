package bench

import (
	"fmt"
	"strings"
	"time"

	"hipec/internal/core"
	"hipec/internal/machipc"
	"hipec/internal/mem"
	"hipec/internal/policies"
	"hipec/internal/substrate"
	"hipec/internal/vm"
	"hipec/internal/workload"
)

// MechanismResult is one row of the mechanism ablation: the same MRU join
// executed under a different application-control mechanism.
type MechanismResult struct {
	Mechanism    string
	Elapsed      time.Duration
	Faults       int64
	Replacements int64
	IPCs         int64
}

// RunMechanismAblation quantifies the paper's central claim end to end:
// application-specific replacement *without kernel crossing* (HiPEC) versus
// the same policy behind the external-pager interface, where every
// replacement decision pays a null-IPC round trip (the PREMO approach
// discussed in §2), versus upcall-based control. All three run the §5.3
// nested-loop join with an MRU policy at the given scale divisor.
func RunMechanismAblation(scale int64) ([]MechanismResult, error) {
	if scale <= 0 {
		scale = 1
	}
	jc := workload.JoinConfig{
		InnerBytes: 4 << 10,
		OuterBytes: 60 << 20 / scale,
		TupleSize:  64,
		PageSize:   4096,
		MemBytes:   40 << 20 / scale,
	}
	pool := int(jc.MemBytes / int64(jc.PageSize))
	frames := pool*2 + 128

	// The three mechanisms simulate disjoint kernels; run them as pool
	// cells, each writing its own result slot.
	mechanisms := [3]func(workload.JoinConfig, int, int) (MechanismResult, error){
		runHiPECMechanism,
		runExtPagerMechanism,
		runUpcallMechanism,
	}
	out := make([]MechanismResult, len(mechanisms))
	err := runCells(len(mechanisms), func(i int) error {
		r, err := mechanisms[i](jc, pool, frames)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runHiPECMechanism: in-kernel interpreted policy — no boundary crossing.
func runHiPECMechanism(jc workload.JoinConfig, pool, frames int) (MechanismResult, error) {
	k := core.New(core.Config{Frames: frames, StartChecker: true})
	sp := k.NewSpace()
	obj := k.VM.NewObject(jc.OuterBytes, false)
	if err := k.VM.Populate(obj, nil); err != nil {
		return MechanismResult{}, err
	}
	e, _, err := k.Map(sp, obj, 0, obj.Size, core.WithPolicy(policies.MRU(pool)))
	if err != nil {
		return MechanismResult{}, err
	}
	start := k.Clock.Now()
	res, err := workload.RunJoin(sp, e, jc)
	if err != nil {
		return MechanismResult{}, err
	}
	return MechanismResult{
		Mechanism:    "HiPEC (in-kernel interpreter)",
		Elapsed:      time.Duration(k.Clock.Now().Sub(start)),
		Faults:       res.Faults,
		Replacements: res.Faults - jc.OuterPages(),
	}, nil
}

// runExtPagerMechanism: the MRU decision behind a null IPC per replacement
// (the PREMO approach discussed in §2).
func runExtPagerMechanism(jc workload.JoinConfig, pool, frames int) (MechanismResult, error) {
	clock := substrate.NewSimClock()
	sys := vm.NewSystem(clock, vm.Config{Frames: frames})
	ipc := machipc.New(clock, machipc.Costs{})
	// The pager's resident queue is recency-ordered: MRU is the tail.
	mru := func(q *mem.Queue) *mem.Page { return q.Tail() }
	pol, err := machipc.NewExtPager("mru", ipc, sys, pool, mru)
	if err != nil {
		return MechanismResult{}, err
	}
	sys.SetDefaultPolicy(pol)
	sp := sys.NewSpace()
	obj := sys.NewObject(jc.OuterBytes, false)
	if err := sys.Populate(obj, nil); err != nil {
		return MechanismResult{}, err
	}
	e, err := sp.Map(obj, 0, obj.Size)
	if err != nil {
		return MechanismResult{}, err
	}
	start := clock.Now()
	res, err := workload.RunJoin(sp, e, jc)
	if err != nil {
		return MechanismResult{}, err
	}
	return MechanismResult{
		Mechanism:    "external pager (IPC per replacement)",
		Elapsed:      time.Duration(clock.Now().Sub(start)),
		Faults:       res.Faults,
		Replacements: pol.Replacements,
		IPCs:         ipc.Stats.RPCs,
	}, nil
}

// runUpcallMechanism: upcall-based control — two boundary crossings per
// replacement.
func runUpcallMechanism(jc workload.JoinConfig, pool, frames int) (MechanismResult, error) {
	clock := substrate.NewSimClock()
	sys := vm.NewSystem(clock, vm.Config{Frames: frames})
	ipc := machipc.New(clock, machipc.Costs{})
	pol := &upcallPolicy{sys: sys, ipc: ipc, resident: mem.NewQueue("upcall")}
	pol.resident.AccessOrder = true
	for i := 0; i < pool; i++ {
		if f := sys.Frames.Alloc(); f != nil {
			pol.pool = append(pol.pool, f)
		}
	}
	sys.SetDefaultPolicy(pol)
	sp := sys.NewSpace()
	obj := sys.NewObject(jc.OuterBytes, false)
	if err := sys.Populate(obj, nil); err != nil {
		return MechanismResult{}, err
	}
	e, err := sp.Map(obj, 0, obj.Size)
	if err != nil {
		return MechanismResult{}, err
	}
	start := clock.Now()
	res, err := workload.RunJoin(sp, e, jc)
	if err != nil {
		return MechanismResult{}, err
	}
	return MechanismResult{
		Mechanism:    "upcall (stack switch per replacement)",
		Elapsed:      time.Duration(clock.Now().Sub(start)),
		Faults:       res.Faults,
		Replacements: pol.replacements,
		IPCs:         ipc.Stats.Upcalls,
	}, nil
}

// upcallPolicy invokes the "user-level" MRU chooser via an upcall (Krueger
// style, §2): cheaper than full IPC but still two boundary crossings.
type upcallPolicy struct {
	sys          *vm.System
	ipc          *machipc.IPC
	resident     *mem.Queue
	pool         []*mem.Page
	replacements int64
}

func (u *upcallPolicy) Name() string { return "upcall-mru" }

func (u *upcallPolicy) PageFor(f *vm.Fault) (*mem.Page, error) {
	if n := len(u.pool); n > 0 {
		p := u.pool[n-1]
		u.pool = u.pool[:n-1]
		return p, nil
	}
	if u.resident.Empty() {
		return nil, vm.ErrNoMemory
	}
	var victim *mem.Page
	u.ipc.Upcall(func() {
		victim = u.resident.Tail() // recency-ordered queue: tail = MRU
	})
	u.resident.Remove(victim)
	if victim.Modified {
		u.sys.PageOut(victim, nil)
	}
	u.sys.Detach(victim)
	victim.Object, victim.Offset = 0, 0
	u.replacements++
	return victim, nil
}

func (u *upcallPolicy) Installed(f *vm.Fault, p *mem.Page) {
	if !p.Wired {
		u.resident.EnqueueTail(p)
	}
}

func (u *upcallPolicy) Release(p *mem.Page) {
	if p.Queue() == u.resident {
		u.resident.Remove(p)
	}
}

// FormatMechanismAblation renders the ablation table.
func FormatMechanismAblation(rows []MechanismResult, scale int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: the same MRU join under three control mechanisms")
	if scale > 1 {
		fmt.Fprintf(&b, " (scaled 1/%d)", scale)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-40s %14s %10s %13s %10s\n", "mechanism", "elapsed", "faults", "replacements", "crossings")
	base := rows[0].Elapsed
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s %14s %10d %13d %10d", r.Mechanism, r.Elapsed.Round(time.Millisecond), r.Faults, r.Replacements, r.IPCs)
		if r.Elapsed > base && base > 0 {
			fmt.Fprintf(&b, "  (+%.2f%%)", 100*(r.Elapsed-base).Seconds()/base.Seconds())
		}
		b.WriteString("\n")
	}
	b.WriteString("\nHiPEC needs no kernel/user crossing; the external pager pays a 292 µs IPC and\nthe upcall two 19 µs traps per replacement decision (Table 4 costs).\n")
	return b.String()
}
