package bench

import (
	"strings"
	"testing"
)

func TestMechanismAblation(t *testing.T) {
	rows, err := RunMechanismAblation(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	hipec, ext, up := rows[0], rows[1], rows[2]
	// All three run the same MRU policy: fault counts must agree to
	// within the tie-breaking slack of one frame per sweep (64 loops).
	if diff := ext.Faults - hipec.Faults; diff < -128 || diff > 128 {
		t.Fatalf("fault counts diverge: hipec=%d ext=%d", hipec.Faults, ext.Faults)
	}
	// Cost ordering: HiPEC < upcall < external pager.
	if !(hipec.Elapsed < up.Elapsed && up.Elapsed < ext.Elapsed) {
		t.Fatalf("elapsed ordering broken: hipec=%v upcall=%v ext=%v",
			hipec.Elapsed, up.Elapsed, ext.Elapsed)
	}
	// The external pager must have paid one RPC per replacement.
	if ext.IPCs != ext.Replacements {
		t.Fatalf("IPCs=%d replacements=%d", ext.IPCs, ext.Replacements)
	}
	out := FormatMechanismAblation(rows, 256)
	if !strings.Contains(out, "external pager") || !strings.Contains(out, "upcall") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestMechanismAblationDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled ablation only in -short")
	}
	rows, err := RunMechanismAblation(64)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Elapsed >= rows[1].Elapsed {
		t.Fatal("HiPEC not cheaper than external pager at 1/64 scale")
	}
}
