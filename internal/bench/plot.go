package bench

import (
	"fmt"
	"math"
	"strings"
)

// plotSeries is one curve on an ASCII chart.
type plotSeries struct {
	name   string
	marker byte
	ys     []float64
}

// asciiChart renders one or more series over shared x values as a terminal
// chart. Later series overwrite earlier ones where they collide (useful for
// Figure 5, where the two kernels' curves are meant to coincide).
func asciiChart(title, xlabel, ylabel string, xs []float64, ss []plotSeries, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range ss {
		for _, y := range s.ys {
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minY, 1) || minY == maxY {
		maxY = minY + 1
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	if minX == maxX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range ss {
		for i, y := range s.ys {
			col := int(math.Round((xs[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((y - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			grid[r][col] = s.marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yTop := fmt.Sprintf("%.0f", maxY)
	yBot := fmt.Sprintf("%.0f", minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		}
		if i == height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.0f%*.0f   (x: %s, y: %s)\n",
		strings.Repeat(" ", pad), width/2, minX, width-width/2, maxX, xlabel, ylabel)
	var legend []string
	for _, s := range ss {
		legend = append(legend, fmt.Sprintf("%c=%s", s.marker, s.name))
	}
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", pad), strings.Join(legend, "  "))
	return b.String()
}
