package bench

import (
	"fmt"
	"sync"
	"time"

	"hipec/internal/core"
	"hipec/internal/kevent"
)

// The sharded harness answers the scale question the per-cell sweeps do
// not: how many page faults per second of simulated kernel work can this
// host sustain when it runs many independent kernels at once? Each shard
// is one complete simulated machine — private core.Kernel, private
// simtime.Clock, private kevent spine — driven by the canonical spine
// smoke workload plus an optional shard-seeded scatter phase. Shards
// share nothing, so K shards on K goroutines scale until the host runs
// out of cores or memory bandwidth, and every shard's event stream is
// individually deterministic: shard i's log depends only on (config,
// shard seed), never on K, goroutine interleaving, or wall time.

// ShardedConfig sizes a sharded multi-kernel run.
type ShardedConfig struct {
	Shards int    // kernel count; <= 0 means 1
	Seed   uint64 // master seed; 0 disables the per-shard scatter phase
	Quick  bool   // use the -quick smoke scaling
	Serial bool   // run shards sequentially on the calling goroutine

	// Shard0Sink, when non-nil, is attached to shard 0's kernel spine —
	// the hook the replaydiff determinism gate uses to prove the sharded
	// path emits exactly the unsharded event stream at Shards=1, Seed=0.
	Shard0Sink kevent.Sink
}

// ShardResult is one shard's contribution.
type ShardResult struct {
	Shard     int
	Seed      uint64 // derived per-shard seed (0 when scatter is disabled)
	Faults    int64  // EvFault count on the shard's spine
	Events    int64  // total events on the shard's spine
	VirtualNs int64  // shard's final virtual clock reading
}

// ShardedResult aggregates a sharded run.
type ShardedResult struct {
	Shards       []ShardResult
	Merged       *kevent.Registry // all shard registries merged
	Faults       int64            // total simulated page faults
	WallSeconds  float64          // host wall-clock for the whole fleet
	FaultsPerSec float64          // Faults / WallSeconds: the scale headline
}

// splitmix64 advances *x and returns the next value of the stream
// (Steele et al., "Fast Splittable Pseudorandom Number Generators").
// The per-shard seeds and the scatter phase's reference string both come
// from it, so shard workloads are decorrelated but fully determined by
// the master seed.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ShardSeeds derives the n per-shard seeds from a master seed. A zero
// master seed yields all-zero shard seeds (scatter disabled everywhere),
// keeping shard 0 byte-identical to the unsharded smoke workload.
func ShardSeeds(master uint64, n int) []uint64 {
	seeds := make([]uint64, n)
	if master == 0 {
		return seeds
	}
	x := master
	for i := range seeds {
		seeds[i] = splitmix64(&x)
	}
	return seeds
}

// RunShardWorkload drives one shard's kernel: the canonical spine smoke
// workload, then — for a non-zero seed — a scatter phase touching a
// shard-private region in a splitmix64-derived order, so different shards
// stress different reference strings. With seed 0 it is exactly
// RunSpineSmoke.
func RunShardWorkload(cfg SpineSmokeConfig, seed uint64, sinks ...kevent.Sink) (*core.Kernel, error) {
	k, err := RunSpineSmoke(cfg, sinks...)
	if err != nil {
		return nil, err
	}
	if seed == 0 {
		return k, nil
	}
	sp := k.NewSpace()
	ps := int64(k.VM.PageSize())
	pages := int64(2 * cfg.Frames)
	e, err := sp.Allocate(pages * ps)
	if err != nil {
		return nil, err
	}
	x := seed
	for i := 0; i < cfg.Touches/2; i++ {
		r := splitmix64(&x)
		addr := e.Start + int64(r%uint64(pages))*ps
		if r&7 == 0 {
			_, err = sp.Write(addr)
		} else {
			_, err = sp.Touch(addr)
		}
		if err != nil {
			return nil, err
		}
	}
	return k, nil
}

// RunSharded runs cfg.Shards independent kernels, one goroutine per shard
// (or serially with cfg.Serial), and merges their registries. The
// per-shard results and the merged counters are identical at any
// parallelism; only WallSeconds and FaultsPerSec depend on the host.
func RunSharded(cfg ShardedConfig) (*ShardedResult, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	smoke := DefaultSpineSmoke()
	if cfg.Quick {
		smoke = QuickSpineSmoke()
	}
	seeds := ShardSeeds(cfg.Seed, n)
	res := &ShardedResult{
		Shards: make([]ShardResult, n),
		Merged: &kevent.Registry{},
	}
	regs := make([]*kevent.Registry, n)
	errs := make([]error, n)

	runShard := func(i int) {
		var sinks []kevent.Sink
		var counting kevent.Counting
		sinks = append(sinks, &counting)
		if i == 0 && cfg.Shard0Sink != nil {
			sinks = append(sinks, cfg.Shard0Sink)
		}
		k, err := RunShardWorkload(smoke, seeds[i], sinks...)
		if err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
			return
		}
		reg := k.Registry()
		regs[i] = reg
		res.Shards[i] = ShardResult{
			Shard:     i,
			Seed:      seeds[i],
			Faults:    reg.Count(kevent.EvFault),
			Events:    counting.N,
			VirtualNs: int64(k.Clock.Now()),
		}
	}

	start := time.Now()
	if cfg.Serial || n == 1 {
		for i := 0; i < n; i++ {
			runShard(i)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) {
				defer wg.Done()
				runShard(i)
			}(i)
		}
		wg.Wait()
	}
	res.WallSeconds = time.Since(start).Seconds()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Merged.Merge(regs[i])
		res.Faults += res.Shards[i].Faults
	}
	if res.WallSeconds > 0 {
		res.FaultsPerSec = float64(res.Faults) / res.WallSeconds
	}
	return res, nil
}

// Format renders the sharded run as a small table plus the headline.
func (r *ShardedResult) Format() string {
	var b []byte
	b = fmt.Appendf(b, "Sharded multi-kernel run: %d shards\n", len(r.Shards))
	b = fmt.Appendf(b, "%6s %18s %12s %12s %14s\n", "shard", "seed", "faults", "events", "virtual time")
	for _, s := range r.Shards {
		b = fmt.Appendf(b, "%6d %#18x %12d %12d %14s\n",
			s.Shard, s.Seed, s.Faults, s.Events, time.Duration(s.VirtualNs).Round(time.Millisecond))
	}
	b = fmt.Appendf(b, "total faults: %d   wall: %.3fs   throughput: %.0f faults/sec\n",
		r.Faults, r.WallSeconds, r.FaultsPerSec)
	b = fmt.Appendf(b, "merged spine: %d hits, %d faults, %d pageins, %d reclaims\n",
		r.Merged.Count(kevent.EvHit), r.Merged.Count(kevent.EvFault),
		r.Merged.Count(kevent.EvPageIn), r.Merged.Count(kevent.EvDaemonReclaim))
	return string(b)
}
