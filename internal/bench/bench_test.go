package bench

import (
	"strings"
	"testing"
	"time"
)

// Table 3, scaled to 4 MB so the unit test is fast; the shape (small
// percentage without I/O, negligible with I/O) must hold at any scale.
func TestTable3Shape(t *testing.T) {
	r, err := RunTable3(Table3Config{RegionBytes: 4 << 20, Frames: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults != 1024 {
		t.Fatalf("faults = %d", r.Faults)
	}
	if r.HiPECNoIO <= r.MachNoIO {
		t.Fatal("HiPEC must cost slightly more than Mach without I/O")
	}
	if r.OverheadNoIO <= 0 || r.OverheadNoIO > 5 {
		t.Fatalf("no-I/O overhead %.2f%% outside (0,5%%]", r.OverheadNoIO)
	}
	if r.OverheadIO <= 0 || r.OverheadIO > 0.2 {
		t.Fatalf("with-I/O overhead %.3f%% outside (0,0.2%%]", r.OverheadIO)
	}
	if r.OverheadIO >= r.OverheadNoIO {
		t.Fatal("disk I/O must dwarf the HiPEC overhead")
	}
	out := r.Format()
	for _, want := range []string{"Table 3", "Mach 3.0", "HiPEC", "1.8%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

// Full-scale Table 3 must land close to the paper's published numbers —
// the calibration test.
func TestTable3FullScaleMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration in -short mode")
	}
	r, err := RunTable3(DefaultTable3())
	if err != nil {
		t.Fatal(err)
	}
	within := func(got time.Duration, wantMs float64, tolFrac float64) bool {
		want := time.Duration(wantMs * float64(time.Millisecond))
		diff := (got - want).Seconds()
		if diff < 0 {
			diff = -diff
		}
		return diff <= want.Seconds()*tolFrac
	}
	if !within(r.MachNoIO, 4016.5, 0.05) {
		t.Errorf("MachNoIO = %v, paper 4016.5ms", r.MachNoIO)
	}
	if !within(r.HiPECNoIO, 4088.6, 0.05) {
		t.Errorf("HiPECNoIO = %v, paper 4088.6ms", r.HiPECNoIO)
	}
	if !within(r.MachIO, 82485.5, 0.05) {
		t.Errorf("MachIO = %v, paper 82485.5ms", r.MachIO)
	}
	if r.OverheadNoIO < 0.5 || r.OverheadNoIO > 3.5 {
		t.Errorf("no-I/O overhead %.2f%%, paper 1.8%%", r.OverheadNoIO)
	}
	if r.OverheadIO > 0.1 {
		t.Errorf("with-I/O overhead %.3f%%, paper 0.024%%", r.OverheadIO)
	}
}

func TestTable4(t *testing.T) {
	r, err := RunTable4(2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.NullSyscall != 19*time.Microsecond || r.NullIPC != 292*time.Microsecond {
		t.Fatalf("calibrated costs wrong: %+v", r)
	}
	if r.HiPECFault != 150*time.Nanosecond {
		t.Fatalf("simulated simple fault = %v, want 150ns", r.HiPECFault)
	}
	// Table 4's ordering: HiPEC << syscall << IPC.
	if !(r.HiPECFault < r.NullSyscall && r.NullSyscall < r.NullIPC) {
		t.Fatal("mechanism cost ordering broken")
	}
	if r.InterpNsPerFault <= 0 || r.InterpNsPerFault > 100*time.Microsecond {
		t.Fatalf("measured interpreter cost implausible: %v", r.InterpNsPerFault)
	}
	if !strings.Contains(r.Format(), "Null IPC") {
		t.Fatal("format incomplete")
	}
}

func TestFigure5SmallSweep(t *testing.T) {
	cfg := Figure5Config{Frames: 2048, UserCounts: []int{1, 4}, JobsPerUser: 2}
	series, err := RunFigure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3 mixes", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("mix %s points = %d", s.Mix, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Vanilla <= 0 || p.HiPEC <= 0 {
				t.Fatalf("mix %s users %d: zero throughput", s.Mix, p.Users)
			}
			gap := (p.Vanilla - p.HiPEC) / p.Vanilla
			if gap < -0.02 || gap > 0.02 {
				t.Fatalf("mix %s users %d: kernels differ by %.2f%%", s.Mix, p.Users, gap*100)
			}
		}
	}
	out := FormatFigure5(series)
	if !strings.Contains(out, "standard") || !strings.Contains(out, "users") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestFigure6ScaledShape(t *testing.T) {
	// 1/256 scale: outer 80..240 KB, memory 160 KB. Crossover at outer ==
	// memory must appear exactly as in the paper.
	cfg := Figure6Config{
		OuterBytes: []int64{20 << 20, 40 << 20, 60 << 20},
		MemBytes:   40 << 20,
		Frames:     MachineFrames,
		Scale:      256,
	}
	points, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Below memory: both policies equal (cold faults only).
	p20 := points[0]
	if p20.LRUFaults != p20.MRUFaults {
		t.Fatalf("20MB: LRU %d vs MRU %d faults; expected equal", p20.LRUFaults, p20.MRUFaults)
	}
	// Above memory: LRU blows up, MRU stays far lower. (The paper's own
	// formulas give PF_l/PF_m = 983040/337920 ≈ 2.9 at 60 MB.)
	p60 := points[2]
	if p60.LRUFaults < 2*p60.MRUFaults {
		t.Fatalf("60MB: LRU %d vs MRU %d; expected ~2.9x gap", p60.LRUFaults, p60.MRUFaults)
	}
	if p60.LRUElapsed <= p60.MRUElapsed {
		t.Fatal("60MB: LRU elapsed should exceed MRU elapsed")
	}
	// Analytic model agreement.
	if p60.LRUFaults != p60.AnalyticLRU {
		t.Fatalf("LRU faults %d != PF_l %d", p60.LRUFaults, p60.AnalyticLRU)
	}
	if delta := p60.MRUFaults - p60.AnalyticMRU; delta < 0 || delta > 64 {
		t.Fatalf("MRU faults %d vs PF_m %d (delta %d)", p60.MRUFaults, p60.AnalyticMRU, delta)
	}
	out := FormatFigure6(points, 256)
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "PF_l") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestFigure6Determinism(t *testing.T) {
	cfg := Figure6Config{
		OuterBytes: []int64{48 << 20},
		MemBytes:   40 << 20,
		Frames:     MachineFrames,
		Scale:      512,
	}
	a, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("nondeterministic: %+v vs %+v", a[0], b[0])
	}
}
