package bench

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment sweeps are embarrassingly parallel: every cell (one mix ×
// user-count point of Figure 5, one outer-size × policy run of Figure 6,
// one kernel-variant of Table 3, one mechanism of the ablation) builds its
// own core.Kernel with its own simtime.Clock and shares nothing with its
// neighbours. runCells fans the cells out over a bounded worker pool while
// keeping the results — and any errors — in deterministic cell order, so
// the rendered tables and figures are byte-identical at any parallelism.

// parallelism is the configured worker count; 0 means GOMAXPROCS.
var parallelism atomic.Int64

// SetParallelism sets the number of workers used by the experiment sweeps.
// n <= 0 restores the default (GOMAXPROCS). Safe to call concurrently with
// running sweeps; in-flight runCells calls keep the worker count they
// started with.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the worker count sweeps will use.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// runCells invokes cell(0..n-1), fanning out over Parallelism() workers.
// Each cell must be self-contained: private kernel, private clock, writes
// only to its own result slot. Cell errors are collected per index and
// joined in index order, so failure output is as deterministic as success
// output. With one worker (or one cell) it degenerates to a plain serial
// loop on the calling goroutine.
func runCells(n int, cell func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := range errs {
			errs[i] = cell(i)
		}
		return errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
