package bench

import (
	"strings"
	"testing"
)

func TestAsciiChart(t *testing.T) {
	out := asciiChart("demo", "x", "y",
		[]float64{1, 2, 3, 4},
		[]plotSeries{
			{name: "up", marker: 'U', ys: []float64{1, 2, 3, 4}},
			{name: "down", marker: 'D', ys: []float64{4, 3, 2, 1}},
		}, 20, 6)
	for _, want := range []string{"demo", "U=up", "D=down", "x: x, y: y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "U") < 4 { // 3 plotted markers + legend minimum
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestAsciiChartDegenerate(t *testing.T) {
	// Flat series and single x must not divide by zero.
	out := asciiChart("flat", "x", "y",
		[]float64{5, 5},
		[]plotSeries{{name: "s", marker: 's', ys: []float64{2, 2}}}, 10, 4)
	if !strings.Contains(out, "flat") {
		t.Fatal("degenerate chart failed")
	}
	out = asciiChart("tiny", "x", "y", []float64{1}, []plotSeries{{name: "s", marker: 's', ys: []float64{0}}}, 2, 2)
	if out == "" {
		t.Fatal("tiny chart failed")
	}
}
