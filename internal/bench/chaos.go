package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"hipec/internal/core"
	"hipec/internal/disk"
	"hipec/internal/emm"
	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/hpl"
	"hipec/internal/kevent"
	"hipec/internal/machipc"
	"hipec/internal/mem"
	"hipec/internal/vm"
)

// ChaosConfig sizes the chaos soak: a seeded, deterministic run of the
// spine-smoke workload mix with the fault-injection plane enabled on every
// injection point, followed by system-wide invariant checks.
type ChaosConfig struct {
	Seed    uint64 // fault-injection PRNG seed (must be nonzero)
	Frames  int    // machine size
	Touches int    // references per workload phase
}

// DefaultChaos returns the full-size chaos soak for seed.
func DefaultChaos(seed uint64) ChaosConfig { return ChaosConfig{Seed: seed, Frames: 512, Touches: 12000} }

// QuickChaos returns the -quick scaling.
func QuickChaos(seed uint64) ChaosConfig { return ChaosConfig{Seed: seed, Frames: 512, Touches: 3000} }

// ChaosReport summarizes what the chaos plane injected and how the kernel
// degraded, every count derived from the event-spine registry.
type ChaosReport struct {
	Seed         uint64
	Faults       int64 // page faults taken across all spaces
	DiskErrors   int64 // injected synchronous read failures
	DiskSlows    int64 // injected latency spikes (reads and writes)
	PagerLosses  int64 // injected remote-pager network losses
	GrantDenials int64 // injected frame-manager grant denials
	Retries      int64 // fault-path page-in retries
	Abandons     int64 // faults abandoned after exhausting their budget
	Failovers    int64 // pager failover transitions
	Revocations  int64 // containers degraded to the default policy
	Tolerated    int64 // workload-visible errors absorbed by the harness
}

func (r *ChaosReport) String() string {
	return fmt.Sprintf("chaos seed=%d: faults=%d injected(disk=%d slow=%d pager=%d deny=%d) "+
		"recovered(retries=%d abandons=%d failovers=%d revocations=%d) tolerated=%d",
		r.Seed, r.Faults, r.DiskErrors, r.DiskSlows, r.PagerLosses, r.GrantDenials,
		r.Retries, r.Abandons, r.Failovers, r.Revocations, r.Tolerated)
}

// chaosPolicy is the soak's HiPEC policy: MRU replacement that first asks
// the global frame manager for more frames and only evicts when the grant is
// denied — so the run exercises both the Request/grant path and the injected
// denial path, with MRU eviction as the cope-with-denial fallback.
const chaosPolicy = `
minframe = 64
access_order = 1

event PageFault() {
    if (empty(_free_queue)) {
        if (!request(8)) {
            mru(_active_queue)
        }
    }
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() {
    if (empty(_free_queue)) {
        fifo(_active_queue)
    }
    if (!empty(_free_queue)) {
        release(1)
    }
    return
}
`

// chaosFaults is the injection mix the soak runs under: frequent-enough disk
// errors that a retry budget of 2 is exhausted within the run (revocation
// exercised), pager loss high enough to cross the failover threshold, and
// occasional grant denials and latency spikes.
func chaosFaults(seed uint64) faultinj.Config {
	return faultinj.Config{
		Seed:  seed,
		Disk:  faultinj.Rule{FailRate: 0.15, SlowRate: 0.05, SlowBy: 2 * time.Millisecond},
		Pager: faultinj.Rule{FailRate: 0.2},
		Grant: faultinj.Rule{FailRate: 0.1},
	}
}

// RunChaos drives the chaos soak: three deterministic workloads — a plain
// daemon-managed thrasher, a HiPEC MRU region with a tight retry budget, and
// a region backed by a lossy remote pager behind a failover mirror — all
// under the injection mix of chaosFaults. Workload-visible transient errors
// are tolerated (counted, not fatal); afterwards the run must satisfy the
// degradation invariants:
//
//   - no stuck activity: the event queue, disk queue and launder pipeline
//     drain completely;
//   - no lost page: every offset the workload wrote is resident, in the
//     kernel's backing store, or in the failover mirror;
//   - frame conservation: every physical frame is accounted for exactly once;
//   - revoked containers hold no frames;
//   - per-space registry counters sum to the system-wide counters.
//
// Two runs with the same config produce byte-identical event streams.
func RunChaos(cfg ChaosConfig, sinks ...kevent.Sink) (*ChaosReport, error) {
	if cfg.Seed == 0 {
		return nil, errors.New("bench: chaos soak needs a nonzero seed")
	}
	k := core.New(core.Config{
		Frames:       cfg.Frames,
		StartChecker: true,
		Faults:       chaosFaults(cfg.Seed),
		Sinks:        sinks,
	})
	ps := int64(k.VM.PageSize())
	rep := &ChaosReport{Seed: cfg.Seed}
	tolerate := func(err error) error {
		if err == nil {
			return nil
		}
		if errors.Is(err, hiperr.ErrDiskIO) || errors.Is(err, hiperr.ErrPagerLost) ||
			errors.Is(err, hiperr.ErrPolicyFault) || errors.Is(err, hiperr.ErrRevoked) ||
			errors.Is(err, vm.ErrNoMemory) {
			rep.Tolerated++
			return nil
		}
		return err
	}
	written := make(map[disk.StoreKey]bool)
	noteWrite := func(e *vm.MapEntry, addr int64) {
		off := e.ObjOffset + (addr - e.Start)
		written[disk.StoreKey{Object: e.Object.ID, Offset: off}] = true
	}

	// Workload 1: plain task under the default daemon, thrashing a region
	// twice machine size so the daemon balances and flushes under injection.
	plain := k.NewSpace()
	plainPages := int64(2 * cfg.Frames)
	pe, err := plain.Allocate(plainPages * ps)
	if err != nil {
		return nil, err
	}

	// Workload 2: a HiPEC request-then-MRU region with a deliberately tight
	// retry budget, so injected disk errors exhaust recovery and force a
	// revocation.
	hip := k.NewSpace()
	spec, err := hpl.Translate("chaos-mru", chaosPolicy)
	if err != nil {
		return nil, err
	}
	// The region is larger than the pool the policy can ever grow to (the
	// partition_burst watermark caps it at half the machine), so eviction
	// and page-in traffic — the disk-error exposure — never stops.
	hipPages := int64(cfg.Frames)
	he, hc, err := k.Allocate(hip, hipPages*ps,
		core.WithPolicy(spec), core.WithRetryBudget(2))
	if err != nil {
		return nil, err
	}

	// Workload 3: a region backed by a lossy remote pager mirrored by a
	// durable store pager — repeated network loss triggers pager failover.
	rm := k.NewSpace()
	ipc := machipc.New(k.Clock, machipc.Costs{})
	remote := emm.NewRemotePager("chaosnet", k.Clock, ipc, time.Millisecond, 100*time.Nanosecond, int(ps))
	remote.Inject = k.Inject
	remote.Events = k.Events()
	store := emm.NewStorePager("chaosmirror", k.Clock, ipc, disk.DefaultParams(), int(ps))
	failover := emm.NewFailoverPager(remote, store, k.Events())
	re, _, err := k.Allocate(rm, 128*ps, core.WithPager(failover))
	if err != nil {
		return nil, err
	}

	// Interleave the three workloads so injected faults land across every
	// subsystem in one deterministic stream.
	for i := 0; i < cfg.Touches; i++ {
		addr := pe.Start + (int64(i*7)%plainPages)*ps
		if i%3 == 0 {
			if _, werr := plain.Write(addr); werr == nil {
				noteWrite(pe, addr)
			} else if err := tolerate(werr); err != nil {
				return nil, err
			}
		} else if _, terr := plain.Touch(addr); tolerate(terr) != nil {
			return nil, terr
		}

		if i%2 == 0 {
			addr := he.Start + (int64(i/2)%hipPages)*ps
			if i%8 == 0 {
				if _, werr := hip.Write(addr); werr == nil {
					noteWrite(he, addr)
				} else if err := tolerate(werr); err != nil {
					return nil, err
				}
			} else if _, terr := hip.Touch(addr); tolerate(terr) != nil {
				return nil, terr
			}
		}

		if i%4 == 0 {
			addr := re.Start + (int64(i/4*3)%128)*ps
			if i%8 == 0 {
				if _, werr := rm.Write(addr); werr == nil {
					noteWrite(re, addr)
				} else if err := tolerate(werr); err != nil {
					return nil, err
				}
			} else if _, terr := rm.Touch(addr); tolerate(terr) != nil {
				return nil, terr
			}
		}
	}

	// Drain: stop the watchdog and run the event queue dry so outstanding
	// disk completions, launder callbacks and the final checker wakeup fire.
	k.Checker.Stop()
	if k.Clock.Drain(1<<20) >= 1<<20 {
		return nil, errors.New("bench: chaos event queue did not drain")
	}
	if n := k.Clock.Pending(); n != 0 {
		return nil, fmt.Errorf("bench: %d events still pending after drain (stuck fault?)", n)
	}
	if n := k.VM.Disk.Inflight(); n != 0 {
		return nil, fmt.Errorf("bench: %d disk writes still in flight after drain", n)
	}
	if n := k.FM.Stats().LaunderPending; n != 0 {
		return nil, fmt.Errorf("bench: %d laundering frames still pending after drain", n)
	}

	if err := chaosInvariants(k, written, failover); err != nil {
		return nil, err
	}

	reg := k.Registry()
	g := reg.Global()
	rep.Faults = g.Counts[kevent.EvFault]
	rep.DiskErrors = g.Counts[kevent.EvInjectDiskError]
	rep.DiskSlows = g.Counts[kevent.EvInjectDiskSlow]
	rep.PagerLosses = g.Counts[kevent.EvInjectPagerLoss]
	rep.GrantDenials = g.Counts[kevent.EvInjectGrantDeny]
	rep.Retries = g.Counts[kevent.EvFaultRetry]
	rep.Abandons = g.Counts[kevent.EvFaultAbandon]
	rep.Failovers = g.Counts[kevent.EvPagerFailover]
	rep.Revocations = g.Counts[kevent.EvContainerRevoked]
	_ = hc // lifecycle asserted via the revocation counter and invariants
	return rep, nil
}

// chaosInvariants checks the degradation safety properties on a drained
// kernel: durability of every written page, physical frame conservation,
// empty revoked containers, and registry scope consistency.
func chaosInvariants(k *core.Kernel, written map[disk.StoreKey]bool, failover *emm.FailoverPager) error {
	// No lost page: everything the workload wrote survives somewhere.
	for key := range written {
		obj := k.VM.Object(key.Object)
		if obj != nil && obj.Resident(key.Offset) != nil {
			continue
		}
		if k.VM.Store.Contains(key) {
			continue
		}
		if failover.Contains(key.Object, key.Offset) {
			continue
		}
		return fmt.Errorf("bench: written page (obj %d, off %#x) lost: not resident, not in store, not in mirror",
			key.Object, key.Offset)
	}

	// Frame conservation: every frame is free, on exactly one queue, or
	// resident off-queue (wired / mid-launder).
	queues := []*mem.Queue{k.Daemon.Active, k.Daemon.Inactive}
	seen := map[*mem.Queue]bool{k.Daemon.Active: true, k.Daemon.Inactive: true}
	loose := map[*mem.Page]bool{}
	for _, c := range k.FM.Containers() {
		// The operand scan picks up the built-in queues too (the well-known
		// _free_queue/_active_queue/_inactive_queue slots alias them), so
		// dedupe by identity.
		queues = append(queues, c.Free, c.Active, c.Inactive)
		seen[c.Free], seen[c.Active], seen[c.Inactive] = true, true, true
		for i := 0; i < 256; i++ {
			o := c.Operand(uint8(i))
			if o.Kind == core.KindQueue && o.Queue != nil && !seen[o.Queue] {
				seen[o.Queue] = true
				queues = append(queues, o.Queue)
			}
			if o.Kind == core.KindPage && o.Page != nil && o.Page.Queue() == nil {
				loose[o.Page] = true
			}
		}
	}
	for i := 0; i < k.VM.Frames.Frames(); i++ {
		p := k.VM.Frames.Page(i)
		if p.Queue() != nil || loose[p] || p.Object == 0 {
			continue
		}
		if obj := k.VM.Object(p.Object); obj != nil && obj.Resident(p.Offset) == p {
			loose[p] = true
		}
	}
	if err := k.VM.Frames.Conservation(queues, loose); err != nil {
		return fmt.Errorf("bench: chaos conservation: %w", err)
	}

	// Revoked (and terminated/destroyed) containers hold no frames.
	for _, c := range k.Containers() {
		if c.State() != core.StateActive && c.Allocated() != 0 {
			return fmt.Errorf("bench: %v container %d still holds %d frames", c.State(), c.ID, c.Allocated())
		}
	}

	// Registry consistency: per-space counters sum to the global counters
	// for every space-scoped event type.
	reg := k.Registry()
	for _, t := range []kevent.Type{kevent.EvHit, kevent.EvFault, kevent.EvPageIn, kevent.EvZeroFill, kevent.EvBadAddress} {
		var sum int64
		for id := 1; id < reg.Spaces(); id++ {
			sum += reg.Space(id).Counts[t]
		}
		if g := reg.Global().Counts[t]; sum != g {
			return fmt.Errorf("bench: registry scope mismatch for %v: spaces sum %d, global %d", t, sum, g)
		}
	}
	return nil
}

// CaptureChaosLog runs the chaos soak with a streaming event-log sink and
// serializes every event to w (the replaydiff determinism check). It reports
// the number of events captured.
func CaptureChaosLog(w io.Writer, seed uint64, quick bool) (int64, error) {
	cfg := DefaultChaos(seed)
	if quick {
		cfg = QuickChaos(seed)
	}
	lw := kevent.NewLogWriter(w)
	if _, err := RunChaos(cfg, lw); err != nil {
		return 0, err
	}
	if err := lw.Flush(); err != nil {
		return 0, err
	}
	return lw.Events(), nil
}
