package bench

import (
	"encoding/json"
	"runtime"
	"time"

	"hipec/internal/core"
	"hipec/internal/kevent"
	"hipec/internal/pageout"
	"hipec/internal/policies"
	"hipec/internal/simtime"
	"hipec/internal/substrate"
	"hipec/internal/vm"
)

// PerfReport is the machine-readable output of MeasurePerf (the
// experiments -bench-json mode): wall-clock throughput of the parallel
// sweep harness plus the interpreted-command hot path, on this host.
// Unlike everything else in this package the numbers are real time, not
// virtual time, so they vary by machine; the report records the host
// shape alongside.
type PerfReport struct {
	GOMAXPROCS  int `json:"gomaxprocs"`
	Parallelism int `json:"parallelism"`

	// Sweep harness: a reduced Figure 5 grid (3 mixes x 4 user counts).
	// At parallelism 1 the parallel and serial configurations are the same
	// run, so no speedup is measurable: the serial re-run is skipped and
	// SweepSerialWallS/SweepSpeedup report 0 ("n/a") instead of a noise
	// ratio of two identical measurements.
	SweepCells       int     `json:"sweep_cells"`
	SweepWallSeconds float64 `json:"sweep_wall_seconds"`
	SweepCellsPerSec float64 `json:"sweep_cells_per_sec"`
	SweepSerialWallS float64 `json:"sweep_serial_wall_seconds"`
	SweepSpeedup     float64 `json:"sweep_speedup_vs_serial"`

	// Executor hot path: the simple-fault activation with calibrated
	// costs charged, i.e. the path every simulated page fault takes.
	ExecutorRuns         int     `json:"executor_runs"`
	ExecutorNsPerRun     float64 `json:"executor_ns_per_run"`
	ExecutorNsPerCommand float64 `json:"executor_ns_per_command"`
	ExecutorAllocsPerRun float64 `json:"executor_allocs_per_run"`

	// Verifier fast path: the same loop with the per-command runtime
	// checks forced back on (ForceChecked), versus the default where the
	// static verifier's clean bill lets the executor skip them. On typical
	// hosts the delta sits inside measurement noise (a few percent either
	// way): the elided checks are perfectly predicted branches on cache-hot
	// operands, and per-command cost is dominated by the Run prologue. The
	// measurement is kept because it bounds the cost of the checks — the
	// verifier's value is proving their elision is safe, not a speedup.
	CheckedNsPerCommand  float64 `json:"checked_ns_per_command"`
	VerifiedNsPerCommand float64 `json:"verified_ns_per_command"`
	VerifiedSpeedupPct   float64 `json:"verified_speedup_pct"`

	// Event spine overhead: the same loop with no sink attached (the
	// registry alone) versus with a counting sink attached to the spine.
	SpineNsPerCommandNoSink   float64 `json:"spine_ns_per_command_no_sink"`
	SpineNsPerCommandCounting float64 `json:"spine_ns_per_command_counting_sink"`
	SpineEventsCounted        int64   `json:"spine_events_counted"`

	// Data plane: the resident-hit fast path (translate + page-table
	// probe, no policy activation) under the flat page-indexed table
	// versus the map-backed reference mode it replaced
	// (vm.System.ForceSparseObjects). The improvement percentage is the
	// flat table's win over the map on this host; allocs must be zero.
	ResidentHitNsFlat         float64 `json:"resident_hit_ns_flat"`
	ResidentHitNsSparse       float64 `json:"resident_hit_ns_sparse"`
	ResidentHitImprovementPct float64 `json:"resident_hit_improvement_pct"`
	ResidentHitAllocsPerOp    float64 `json:"resident_hit_allocs_per_op"`

	// Sharded multi-kernel scale: GOMAXPROCS independent kernels run to
	// completion on as many goroutines, each a full simulated machine on
	// its own virtual clock; the headline is simulated page faults
	// retired per wall-clock second across the fleet.
	Shards           int     `json:"shards"`
	ShardFaults      int64   `json:"shard_faults_total"`
	ShardWallSeconds float64 `json:"shard_wall_seconds"`
	FaultsPerSec     float64 `json:"faults_per_sec"`

	// TimerScheduler records which simtime backend timed the runs
	// ("wheel" is the default; "heap" is the reference implementation).
	TimerScheduler string `json:"timer_scheduler"`
}

// JSON renders the report with stable field order and indentation.
func (r PerfReport) JSON() string {
	b, _ := json.MarshalIndent(r, "", "  ")
	return string(b) + "\n"
}

func perfSweepConfig() Figure5Config {
	return Figure5Config{Frames: 2048, UserCounts: []int{1, 2, 4, 8}, JobsPerUser: 2}
}

// MeasurePerf times the reduced Figure 5 sweep at the configured
// parallelism and again at one worker, then the executor fault path.
func MeasurePerf() (PerfReport, error) {
	r := PerfReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: Parallelism(),
		SweepCells:  3 * len(perfSweepConfig().UserCounts),
	}

	start := time.Now()
	if _, err := RunFigure5(perfSweepConfig()); err != nil {
		return r, err
	}
	r.SweepWallSeconds = time.Since(start).Seconds()
	r.SweepCellsPerSec = float64(r.SweepCells) / r.SweepWallSeconds

	if saved := Parallelism(); saved > 1 {
		SetParallelism(1)
		start = time.Now()
		_, err := RunFigure5(perfSweepConfig())
		SetParallelism(saved)
		if err != nil {
			return r, err
		}
		r.SweepSerialWallS = time.Since(start).Seconds()
		if r.SweepWallSeconds > 0 {
			r.SweepSpeedup = r.SweepSerialWallS / r.SweepWallSeconds
		}
	}

	if err := measureExecutor(&r); err != nil {
		return r, err
	}
	if err := measureVerified(&r); err != nil {
		return r, err
	}
	if err := measureSpine(&r); err != nil {
		return r, err
	}
	if err := measureResidentHit(&r); err != nil {
		return r, err
	}
	if err := measureSharded(&r); err != nil {
		return r, err
	}
	r.TimerScheduler = simtime.DefaultScheduler().String()
	return r, nil
}

// residentHitLoop times the resident-hit path — the most common memory
// operation the simulator models — on a system in the given page-table
// mode, and reports ns/op and allocs/op.
func residentHitLoop(forceSparse bool) (nsPerOp, allocsPerOp float64, err error) {
	clock := substrate.NewSimClock()
	sys := vm.NewSystem(clock, vm.Config{Frames: 2048, PageSize: 4096})
	sys.ForceSparseObjects = forceSparse
	d := pageout.New(sys, pageout.Targets{})
	sys.SetDefaultPolicy(d)
	sp := sys.NewSpace()
	e, err := sp.Allocate(1024 * 4096)
	if err != nil {
		return 0, 0, err
	}
	// Make every page resident so the measured loop is pure hits.
	for a := e.Start; a < e.End; a += 4096 {
		if _, err := sp.Touch(a); err != nil {
			return 0, 0, err
		}
	}
	const iters = 2000000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	a := e.Start
	for i := 0; i < iters; i++ {
		if _, err := sp.Touch(a); err != nil {
			return 0, 0, err
		}
		a += 4096
		if a >= e.End {
			a = e.Start
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(wall.Nanoseconds()) / iters,
		float64(after.Mallocs-before.Mallocs) / iters, nil
}

// measureResidentHit compares the flat page table against the map-backed
// reference mode on the resident-hit path, best-of-reps per mode with the
// modes interleaved so frequency drift cancels.
func measureResidentHit(r *PerfReport) error {
	const reps = 5
	flat, sparse := 0.0, 0.0
	var flatAllocs float64
	for i := 0; i < reps; i++ {
		f, fa, err := residentHitLoop(false)
		if err != nil {
			return err
		}
		s, _, err := residentHitLoop(true)
		if err != nil {
			return err
		}
		if flat == 0 || f < flat {
			flat, flatAllocs = f, fa
		}
		if sparse == 0 || s < sparse {
			sparse = s
		}
	}
	r.ResidentHitNsFlat = flat
	r.ResidentHitNsSparse = sparse
	r.ResidentHitAllocsPerOp = flatAllocs
	if sparse > 0 {
		r.ResidentHitImprovementPct = 100 * (sparse - flat) / sparse
	}
	return nil
}

// measureSharded runs the multi-kernel fleet once and records the
// faults/sec-at-scale headline.
func measureSharded(r *PerfReport) error {
	shards := runtime.GOMAXPROCS(0)
	res, err := RunSharded(ShardedConfig{Shards: shards, Seed: 1})
	if err != nil {
		return err
	}
	r.Shards = shards
	r.ShardFaults = res.Faults
	r.ShardWallSeconds = res.WallSeconds
	r.FaultsPerSec = res.FaultsPerSec
	return nil
}

// executorLoop drives the simple-fault PageFault program in a tight loop
// with the calibrated virtual costs charged, optionally with extra sinks
// attached to the kernel spine. It reports wall time, commands interpreted,
// and heap allocations per run.
func executorLoop(iters int, forceChecked bool, sinks ...kevent.Sink) (wall time.Duration, cmds int64, allocsPerRun float64, err error) {
	k := core.New(core.Config{Frames: 4096, Sinks: sinks})
	k.Executor.ForceChecked = forceChecked
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 64*4096, core.WithPolicy(policies.FIFO(64)))
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := sp.Touch(e.Start); err != nil {
		return 0, 0, 0, err
	}
	reg := c.Operand(core.SlotPageReg)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	cmds0 := k.Executor.TotalCommands()
	start := time.Now()
	for i := 0; i < iters; i++ {
		res, err := k.Executor.Run(c, core.EventPageFault)
		if err != nil {
			return 0, 0, 0, err
		}
		c.Free.EnqueueHead(res.Page)
		reg.Page = nil
	}
	wall = time.Since(start)
	runtime.ReadMemStats(&after)
	cmds = k.Executor.TotalCommands() - cmds0
	allocsPerRun = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return wall, cmds, allocsPerRun, nil
}

// measureExecutor reports the plain hot path (registry only, no sinks),
// best-of-reps so the benchguard regression gate compares signal rather
// than scheduler noise.
func measureExecutor(r *PerfReport) error {
	const iters = 500000
	const reps = 5
	for i := 0; i < reps; i++ {
		wall, cmds, allocs, err := executorLoop(iters, false)
		if err != nil {
			return err
		}
		nsPerCmd := float64(wall.Nanoseconds()) / float64(cmds)
		if i == 0 || nsPerCmd < r.ExecutorNsPerCommand {
			r.ExecutorRuns = iters
			r.ExecutorNsPerRun = float64(wall.Nanoseconds()) / iters
			r.ExecutorNsPerCommand = nsPerCmd
			r.ExecutorAllocsPerRun = allocs
		}
	}
	r.SpineNsPerCommandNoSink = r.ExecutorNsPerCommand
	return nil
}

// measureVerified re-runs the loop with ForceChecked, quantifying what
// the verified bit buys: the delta is the per-command cost of the operand
// kind, jump-range, and command-counter checks the static verifier proves
// redundant.
func measureVerified(r *PerfReport) error {
	const iters = 200000
	const reps = 10
	one := func(forceChecked bool) (float64, error) {
		wall, cmds, _, err := executorLoop(iters, forceChecked)
		if err != nil {
			return 0, err
		}
		return float64(wall.Nanoseconds()) / float64(cmds), nil
	}
	// Interleave the two modes and take best-of-reps per mode: the delta
	// is a few percent, smaller than cold-start and frequency drift, so
	// back-to-back pairs keep the comparison fair.
	if _, err := one(true); err != nil {
		return err
	}
	if _, err := one(false); err != nil {
		return err
	}
	checked, verified := 0.0, 0.0
	for i := 0; i < reps; i++ {
		c, err := one(true)
		if err != nil {
			return err
		}
		v, err := one(false)
		if err != nil {
			return err
		}
		if checked == 0 || c < checked {
			checked = c
		}
		if verified == 0 || v < verified {
			verified = v
		}
	}
	r.CheckedNsPerCommand = checked
	r.VerifiedNsPerCommand = verified
	if checked > 0 {
		r.VerifiedSpeedupPct = 100 * (checked - verified) / checked
	}
	return nil
}

// measureSpine re-runs the loop with a counting sink attached, recording
// the per-command cost of having a spine consumer.
func measureSpine(r *PerfReport) error {
	const iters = 500000
	var counting kevent.Counting
	wall, cmds, _, err := executorLoop(iters, false, &counting)
	if err != nil {
		return err
	}
	r.SpineNsPerCommandCounting = float64(wall.Nanoseconds()) / float64(cmds)
	r.SpineEventsCounted = counting.N
	return nil
}
