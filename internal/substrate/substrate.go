// Package substrate is the seam between the HiPEC engine and the world it
// runs in. The engine — core, vm, pageout, disk, emm, machipc — depends on
// the two small contracts defined here:
//
//   - Clock: the source of time and deferred callbacks. The engine charges
//     costs with Sleep, schedules completions with After, and reads Now.
//   - Store: page-granular backing storage addressed by PageKey.
//
// Two substrates implement the contracts:
//
//   - The simulation substrate (Sim, NewSimClock, MemStore): a deterministic
//     discrete-event virtual clock (internal/simtime) and an in-memory
//     store. Time is modeled, not measured; two runs of the same workload
//     are byte-identical.
//   - The realtime substrate (NewRealClock, disk/filestore): wall-clock
//     timers and a file-backed store whose I/O takes real time. Time is
//     measured, not modeled; calibrated 1994 cost models default to zero.
//
// Devirtualization: Clock is a two-word struct, not an interface. The sim
// backend is a concrete *simtime.Clock field; every method tests it first
// and makes a direct (inlinable) call, so the simulation's hot paths — the
// executor's ~15 ns/command loop, the zero-allocation fault path — pay one
// predictable branch, never interface dispatch. Only the realtime backend
// goes through the Impl interface. This is also why every *simtime.Clock
// dereference in the tree lives inside this package: the hipecvet simclock
// pass enforces that the seam cannot silently erode.
package substrate

import (
	"time"

	"hipec/internal/simtime"
)

// Kind names a substrate backend family.
type Kind uint8

const (
	// KindSim is the deterministic discrete-event simulation substrate
	// (the zero value: a zero Config builds the classic simulated kernel).
	KindSim Kind = iota
	// KindReal is the wall-clock realtime substrate.
	KindReal
)

// String returns the kind's CLI name.
func (k Kind) String() string {
	if k == KindReal {
		return "real"
	}
	return "sim"
}

// Config selects the substrate a kernel is assembled on. The zero value is
// the simulation substrate with an in-memory store — byte-identical to the
// pre-seam kernel.
type Config struct {
	Kind Kind
	// Store overrides the backing store (e.g. a file-backed
	// filestore.Store for KindReal). Nil takes the in-memory MemStore.
	Store Store
}

// Timer is the handle returned by Clock.After/At; pass it to Clock.Cancel.
// The sim backend returns its pooled *simtime.Event directly (no
// allocation); handles must not be retained after the timer fires or is
// cancelled.
type Timer interface {
	// When reports the timer's scheduled fire time.
	When() simtime.Time
}

// Impl is the backend contract behind Clock for non-sim substrates. The
// methods mirror *simtime.Clock so the engine's call sites are
// backend-agnostic; see Clock for the semantics each must provide.
type Impl interface {
	Now() simtime.Time
	Sleep(d time.Duration)
	Advance(d time.Duration)
	After(d time.Duration, fn func(now simtime.Time)) Timer
	At(t simtime.Time, fn func(now simtime.Time)) Timer
	Cancel(t Timer) bool
	// PeekNext reports the earliest pending timer deadline. Backends
	// without an inspectable queue (wall-clock timers fire on their own)
	// return ok=false; the executor's event-boundary batching then
	// degenerates to a single charge.
	PeekNext() (simtime.Time, bool)
	Pending() int
	RunUntil(t simtime.Time)
	RunNext() bool
	Drain(limit int) int
}

// Clock is the engine's source of time. It is a small value (two words):
// copy it freely, compare it against the zero value with IsZero. The zero
// Clock is not usable — construct with NewSimClock, Sim, or NewRealClock.
type Clock struct {
	sim  *simtime.Clock // non-nil = simulation fast path, devirtualized
	impl Impl           // non-sim backend (realtime); nil when sim != nil
}

// NewSimClock returns a simulation-substrate clock positioned at virtual
// time zero, using the process-default event scheduler.
func NewSimClock() Clock { return Clock{sim: simtime.NewClock()} }

// Sim wraps an existing virtual clock. It is the bridge for callers that
// build the simtime.Clock themselves (scheduler-selection experiments).
func Sim(c *simtime.Clock) Clock { return Clock{sim: c} }

// NewClock builds the clock for a backend Impl (the realtime substrate, or
// a test double).
func NewClock(impl Impl) Clock { return Clock{impl: impl} }

// IsZero reports whether the clock has no backend (the unusable zero value).
func (c Clock) IsZero() bool { return c.sim == nil && c.impl == nil }

// IsSim reports whether the clock is the deterministic simulation backend.
func (c Clock) IsSim() bool { return c.sim != nil }

// Backend returns the non-sim backend Impl, or nil for the sim substrate.
// The actor loop uses it to install its callback gate on a RealClock.
func (c Clock) Backend() Impl { return c.impl }

// Now reports the current time: virtual nanoseconds since clock creation
// (sim) or wall nanoseconds since clock creation (real).
//
//hipec:hotpath
func (c Clock) Now() simtime.Time {
	if c.sim != nil {
		return c.sim.Now()
	}
	return c.impl.Now()
}

// Sleep charges a blocking delay: the sim clock advances (firing due
// events), the real clock genuinely sleeps.
//
//hipec:hotpath
func (c Clock) Sleep(d time.Duration) {
	if c.sim != nil {
		c.sim.Sleep(d)
		return
	}
	c.impl.Sleep(d)
}

// Advance moves time forward by d. On the sim backend this is the test
// harness's way of running the event queue; on the real backend it is a
// plain sleep (wall time advances itself).
func (c Clock) Advance(d time.Duration) {
	if c.sim != nil {
		c.sim.Advance(d)
		return
	}
	c.impl.Advance(d)
}

// After schedules fn to run d from now; fn observes the clock at its fire
// time. Sim: a deterministic event. Real: a wall-clock timer, routed
// through the actor loop's gate when one is installed.
func (c Clock) After(d time.Duration, fn func(now simtime.Time)) Timer {
	if c.sim != nil {
		return c.sim.After(d, fn)
	}
	return c.impl.After(d, fn)
}

// At schedules fn at absolute time t (>= Now).
func (c Clock) At(t simtime.Time, fn func(now simtime.Time)) Timer {
	if c.sim != nil {
		return c.sim.At(t, fn)
	}
	return c.impl.At(t, fn)
}

// Cancel revokes a Timer returned by After/At, reporting whether it was
// still pending. A nil Timer is a no-op.
func (c Clock) Cancel(t Timer) bool {
	if c.sim != nil {
		if t == nil {
			return c.sim.Cancel(nil)
		}
		return c.sim.Cancel(t.(*simtime.Event))
	}
	return c.impl.Cancel(t)
}

// PeekNext reports the earliest pending timer deadline without firing it.
// The executor's batched charging uses it to stop at event boundaries; a
// backend that cannot peek (realtime) reports ok=false and batching
// degenerates safely.
//
//hipec:hotpath
func (c Clock) PeekNext() (simtime.Time, bool) {
	if c.sim != nil {
		return c.sim.PeekNext()
	}
	return c.impl.PeekNext()
}

// Pending reports the number of scheduled, unfired timers.
func (c Clock) Pending() int {
	if c.sim != nil {
		return c.sim.Pending()
	}
	return c.impl.Pending()
}

// RunUntil advances to time t, firing due events (sim) or sleeping until
// wall time t (real).
func (c Clock) RunUntil(t simtime.Time) {
	if c.sim != nil {
		c.sim.RunUntil(t)
		return
	}
	c.impl.RunUntil(t)
}

// RunNext fires the single earliest pending event, advancing time to it.
// Realtime timers fire on their own; the real backend reports false.
func (c Clock) RunNext() bool {
	if c.sim != nil {
		return c.sim.RunNext()
	}
	return c.impl.RunNext()
}

// Drain fires pending events until the queue is empty or limit is reached
// (0 = unlimited), returning the number fired. The real backend waits for
// its outstanding timers instead of firing them early and reports 0.
func (c Clock) Drain(limit int) int {
	if c.sim != nil {
		return c.sim.Drain(limit)
	}
	return c.impl.Drain(limit)
}
