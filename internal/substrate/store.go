package substrate

import "fmt"

// PageKey addresses one page of backing store: the owning VM object and the
// page-aligned byte offset within it.
type PageKey struct {
	Object uint64
	Offset int64
}

// Store is page-granular backing storage. The simulated kernel's paging
// store (MemStore), the realtime file-backed store (disk/filestore) and any
// future backend (networked, multi-tier) implement it.
//
// WritePage with nil data records presence without content (the simulation
// runs data-free by default); ReadPage's ok distinguishes "absent" (a
// zero-fill page) from "present with nil content".
//
// Errors are real I/O failures (ENOSPC, EIO on a file-backed store, a lost
// peer on a networked one), wrapped in the hiperr taxonomy terminating in
// ErrDiskIO. The in-memory store cannot fail and always returns nil;
// misuse (unaligned offset, oversize data) is a caller bug and panics on
// every backend.
type Store interface {
	// PageSize reports the store's page size in bytes.
	PageSize() int
	// WritePage stores data (length <= PageSize) for key; nil data records
	// presence only. On error the page's previous durable content (if any)
	// is unspecified per-backend, but the key is never recorded as present
	// with garbage.
	WritePage(key PageKey, data []byte) error
	// ReadPage fetches the page for key; ok is false for absent pages. A
	// non-nil err means the page is present but could not be read.
	ReadPage(key PageKey) (data []byte, ok bool, err error)
	// Contains reports whether the store holds a page for key.
	Contains(key PageKey) bool
	// Len reports the number of pages present.
	Len() int
}

// Deleter is the optional removal surface of a Store. The paging kernel
// never deletes (a page once written stays until the object dies), but
// composite backends do: a tiered store's fast tier evicts pages it has
// flushed down, and per-key reclamation needs somewhere to go. DeletePage
// reports whether the key was present; deleting an absent key is a no-op.
// Backends that cannot reclaim (an append-only remote, say) simply do not
// implement it, and composites requiring eviction reject them at
// construction.
type Deleter interface {
	DeletePage(key PageKey) bool
}

// MemStore is the in-memory backing store of the simulation substrate: the
// paging file that VM objects page to and from. Content is optional —
// experiments that only count faults run with data disabled to avoid the
// memory traffic.
type MemStore struct {
	pageSize int
	keepData bool
	pages    map[PageKey][]byte
}

// NewMemStore creates a backing store for pages of pageSize bytes. If
// keepData is false, page contents are not retained (reads return nil) but
// presence is still tracked.
func NewMemStore(pageSize int, keepData bool) *MemStore {
	if pageSize <= 0 {
		panic("substrate: non-positive page size")
	}
	return &MemStore{pageSize: pageSize, keepData: keepData, pages: make(map[PageKey][]byte)}
}

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.pageSize }

// WritePage implements Store; memory writes cannot fail.
func (s *MemStore) WritePage(key PageKey, data []byte) error {
	if key.Offset%int64(s.pageSize) != 0 {
		panic(fmt.Sprintf("substrate: unaligned store offset %d", key.Offset))
	}
	if len(data) > s.pageSize {
		panic(fmt.Sprintf("substrate: page data %d bytes exceeds page size %d", len(data), s.pageSize))
	}
	if !s.keepData || data == nil {
		s.pages[key] = nil
		return nil
	}
	buf := make([]byte, s.pageSize)
	copy(buf, data)
	s.pages[key] = buf
	return nil
}

// ReadPage implements Store; memory reads cannot fail.
func (s *MemStore) ReadPage(key PageKey) (data []byte, ok bool, err error) {
	d, ok := s.pages[key]
	return d, ok, nil
}

// Contains implements Store.
func (s *MemStore) Contains(key PageKey) bool {
	_, ok := s.pages[key]
	return ok
}

// Len implements Store.
func (s *MemStore) Len() int { return len(s.pages) }

// DeletePage implements Deleter; memory pages release immediately.
func (s *MemStore) DeletePage(key PageKey) bool {
	_, ok := s.pages[key]
	delete(s.pages, key)
	return ok
}

var (
	_ Store   = (*MemStore)(nil)
	_ Deleter = (*MemStore)(nil)
)
