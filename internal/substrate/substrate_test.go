package substrate

import (
	"sync"
	"testing"
	"time"

	"hipec/internal/simtime"
)

func TestZeroClockIsZero(t *testing.T) {
	var c Clock
	if !c.IsZero() || c.IsSim() {
		t.Fatalf("zero clock: IsZero=%v IsSim=%v", c.IsZero(), c.IsSim())
	}
	if NewSimClock().IsZero() || NewRealClock().IsZero() {
		t.Fatal("constructed clocks report zero")
	}
}

// TestSimFastPathMatchesConcreteClock: the devirtualized wrapper must be
// observationally identical to the concrete clock it wraps.
func TestSimFastPathMatchesConcreteClock(t *testing.T) {
	raw := simtime.NewClock()
	c := Sim(raw)
	if !c.IsSim() || c.Backend() != nil {
		t.Fatal("sim clock misreports its backend")
	}
	fired := simtime.Time(-1)
	tm := c.After(5*time.Millisecond, func(now simtime.Time) { fired = now })
	if want := simtime.Time(5 * time.Millisecond); tm.When() != want {
		t.Fatalf("When() = %v, want %v", tm.When(), want)
	}
	if next, ok := c.PeekNext(); !ok || next != simtime.Time(5*time.Millisecond) {
		t.Fatalf("PeekNext = %v,%v", next, ok)
	}
	c.Sleep(2 * time.Millisecond)
	if c.Now() != raw.Now() || c.Now() != simtime.Time(2*time.Millisecond) {
		t.Fatalf("Now diverged: wrapper %v raw %v", c.Now(), raw.Now())
	}
	c.Advance(10 * time.Millisecond)
	if fired != simtime.Time(5*time.Millisecond) {
		t.Fatalf("event fired at %v", fired)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d", c.Pending())
	}
}

func TestSimCancel(t *testing.T) {
	c := NewSimClock()
	ran := false
	tm := c.After(time.Millisecond, func(simtime.Time) { ran = true })
	if !c.Cancel(tm) {
		t.Fatal("Cancel reported not pending")
	}
	if c.Cancel(nil) {
		t.Fatal("Cancel(nil) reported pending")
	}
	c.Advance(5 * time.Millisecond)
	if ran {
		t.Fatal("cancelled event fired")
	}
}

func TestRealClockNowAdvances(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	c.Sleep(2 * time.Millisecond)
	if b := c.Now(); b.Sub(a) < time.Millisecond {
		t.Fatalf("wall clock barely moved: %v -> %v", a, b)
	}
}

func TestRealClockAfterFires(t *testing.T) {
	c := NewRealClock()
	done := make(chan simtime.Time, 1)
	tm := c.After(time.Millisecond, func(now simtime.Time) { done <- now })
	if tm.When() <= 0 {
		t.Fatalf("When() = %v", tm.When())
	}
	select {
	case now := <-done:
		if now < simtime.Time(time.Millisecond) {
			t.Fatalf("fired at %v, before its deadline", now)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestRealClockCancel(t *testing.T) {
	c := NewRealClock()
	fired := make(chan struct{})
	tm := c.After(time.Hour, func(simtime.Time) { close(fired) })
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d", c.Pending())
	}
	if !c.Cancel(tm) {
		t.Fatal("Cancel reported not pending")
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending after cancel = %d", c.Pending())
	}
	if c.Cancel(tm) {
		t.Fatal("double Cancel reported pending")
	}
	select {
	case <-fired:
		t.Fatal("cancelled timer fired")
	case <-time.After(10 * time.Millisecond):
	}
}

// TestRealClockGate: with a gate installed, callbacks are delivered to the
// gate instead of running on the timer goroutine.
func TestRealClockGate(t *testing.T) {
	raw := &RealClock{start: time.Now()}
	c := NewClock(raw)
	var mu sync.Mutex
	var gated []func()
	raw.SetGate(func(run func()) {
		mu.Lock()
		gated = append(gated, run)
		mu.Unlock()
	})
	ran := false
	c.After(time.Millisecond, func(simtime.Time) { ran = true })
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(gated)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gate never received the callback")
		}
		time.Sleep(time.Millisecond)
	}
	if ran {
		t.Fatal("callback ran before the gate released it")
	}
	// The expired-but-undelivered callback is still outstanding work: it
	// must stay in Pending until the gate actually runs it, so a
	// Drain-style wait for quiescence cannot return early.
	if got := raw.Pending(); got != 1 {
		t.Fatalf("Pending while parked in gate = %d, want 1", got)
	}
	gated[0]()
	if !ran {
		t.Fatal("gated callback did not run when released")
	}
	if got := raw.Pending(); got != 0 {
		t.Fatalf("Pending after delivery = %d, want 0", got)
	}
}

// TestRealClockNoQueueSemantics: the introspection verbs degrade as
// documented — nothing peekable, nothing runnable early.
func TestRealClockNoQueueSemantics(t *testing.T) {
	c := NewRealClock()
	if _, ok := c.PeekNext(); ok {
		t.Fatal("PeekNext reported a deadline")
	}
	if c.RunNext() {
		t.Fatal("RunNext fired something")
	}
	done := make(chan struct{})
	c.After(time.Millisecond, func(simtime.Time) { close(done) })
	if n := c.Drain(0); n != 0 {
		t.Fatalf("Drain fired %d", n)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timer lost")
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore(4096, true)
	key := PageKey{Object: 7, Offset: 8192}
	if s.Contains(key) {
		t.Fatal("empty store contains a page")
	}
	if err := s.WritePage(key, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.ReadPage(key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(data) != 4096 || data[0] != 1 || data[2] != 3 {
		t.Fatalf("read back ok=%v len=%d", ok, len(data))
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestMemStoreMetadataOnly(t *testing.T) {
	s := NewMemStore(4096, false)
	key := PageKey{Object: 1, Offset: 0}
	if err := s.WritePage(key, []byte{1}); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.ReadPage(key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || data != nil {
		t.Fatalf("metadata-only store kept data: ok=%v data=%v", ok, data)
	}
}
