package substrate

import (
	"sync"
	"time"

	"hipec/internal/simtime"
)

// RealClock is the wall-clock backend: Now is elapsed real time since
// construction, Sleep genuinely sleeps, and After arms an OS timer. Unlike
// the simulation there is no event queue to introspect — PeekNext reports
// nothing pending and the executor's event-boundary batching degenerates to
// a single charge, which is correct because nothing needs the clock to be
// advanced for it: real timers fire on their own.
//
// Timer callbacks fire on the Go runtime's timer goroutines. A kernel is a
// single-writer structure, so before sharing a realtime kernel with
// concurrent callers a serialization gate must be installed with SetGate:
// the actor loop (core.Loop) routes every callback through its mailbox,
// making timer completions take their turn with commands. Without a gate,
// callbacks run inline on the timer goroutine — fine for single-goroutine
// use, unsafe under concurrency.
type RealClock struct {
	start time.Time

	mu      sync.Mutex
	gate    func(run func())
	pending int
}

// NewRealClock returns a wall-clock substrate clock positioned at time zero
// (times read as nanoseconds since construction, mirroring the sim clock's
// nanoseconds since boot).
func NewRealClock() Clock { return Clock{impl: &RealClock{start: time.Now()}} }

// SetGate installs the callback serialization gate: every timer callback is
// handed to gate as a ready-to-run closure instead of running inline on the
// timer goroutine. The actor loop installs its mailbox here. A nil gate
// restores inline dispatch. A gate is allowed to drop a closure outright (a
// closed actor loop does, deliberately — see core.Loop.Close); the dropped
// timer's pending entry then never clears.
func (c *RealClock) SetGate(gate func(run func())) {
	c.mu.Lock()
	c.gate = gate
	c.mu.Unlock()
}

// Now implements Impl: wall nanoseconds since construction.
func (c *RealClock) Now() simtime.Time { return simtime.Time(time.Since(c.start)) }

// Sleep implements Impl: a genuine sleep.
func (c *RealClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Advance implements Impl. Wall time advances on its own; Advance (the test
// harness's "run the event queue" verb) is just a sleep long enough for the
// timers in the window to have fired.
func (c *RealClock) Advance(d time.Duration) { c.Sleep(d) }

// realTimer is the Timer handle for one armed wall-clock timer.
type realTimer struct {
	when  simtime.Time
	clock *RealClock
	t     *time.Timer
}

// When implements Timer.
func (rt *realTimer) When() simtime.Time { return rt.when }

// After implements Impl: arm a wall-clock timer. The callback observes the
// clock at its fire time and runs through the gate when one is installed.
func (c *RealClock) After(d time.Duration, fn func(now simtime.Time)) Timer {
	if d < 0 {
		d = 0
	}
	rt := &realTimer{when: c.Now().Add(d), clock: c}
	c.mu.Lock()
	c.pending++
	c.mu.Unlock()
	rt.t = time.AfterFunc(d, func() { c.fire(fn) })
	return rt
}

// At implements Impl.
func (c *RealClock) At(t simtime.Time, fn func(now simtime.Time)) Timer {
	return c.After(time.Duration(t.Sub(c.Now())), fn)
}

// fire runs one expired timer callback, through the gate when installed.
// The pending count drops only once the callback has actually run, not when
// the OS timer expires: a gated callback parked in an actor-loop mailbox is
// still outstanding work, and Drain's wait-for-pending-zero must not report
// quiescence while expirations sit queued undelivered. A gate that drops a
// callback (an actor loop after Close) leaves it counted forever — Drain's
// wait is deadline-bounded, so that cannot hang anyone.
func (c *RealClock) fire(fn func(now simtime.Time)) {
	c.mu.Lock()
	gate := c.gate
	c.mu.Unlock()
	run := func() {
		defer func() {
			c.mu.Lock()
			c.pending--
			c.mu.Unlock()
		}()
		fn(c.Now())
	}
	if gate != nil {
		gate(run)
		return
	}
	run()
}

// Cancel implements Impl: stop the timer, reporting whether it was revoked
// before firing.
func (c *RealClock) Cancel(t Timer) bool {
	rt, ok := t.(*realTimer)
	if !ok || rt == nil || rt.clock != c {
		return false
	}
	if rt.t.Stop() {
		c.mu.Lock()
		c.pending--
		c.mu.Unlock()
		return true
	}
	return false
}

// PeekNext implements Impl: wall-clock timers fire on their own, there is
// no queue to step through, so nothing is ever "due" from the caller's
// point of view.
func (c *RealClock) PeekNext() (simtime.Time, bool) { return 0, false }

// Pending implements Impl: timers whose callbacks have not yet completed —
// armed, in flight, or parked behind the serialization gate.
func (c *RealClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending
}

// RunUntil implements Impl: sleep until wall time t.
func (c *RealClock) RunUntil(t simtime.Time) {
	if d := time.Duration(t.Sub(c.Now())); d > 0 {
		time.Sleep(d)
	}
}

// RunNext implements Impl: timers cannot be fired early; report none run.
func (c *RealClock) RunNext() bool { return false }

// Drain implements Impl: timers cannot be fired early. Give briefly-due
// timers a chance to land — a bounded wait for the pending count to reach
// zero, which since pending only drops after a callback completes means
// "all timer work settled", not merely "all OS timers expired" — then
// report 0 fired by Drain itself. The limit parameter is meaningless on
// this backend (Drain never fires anything) and is ignored. The wait can
// time out without quiescence when a closed actor loop's gate has dropped
// callbacks; their pending entries never clear.
func (c *RealClock) Drain(limit int) int {
	deadline := time.Now().Add(100 * time.Millisecond)
	for c.Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return 0
}

var _ Impl = (*RealClock)(nil)
