package policies_test

import (
	"testing"

	"hipec/internal/core"
	"hipec/internal/hpl"
	"hipec/internal/hpl/verify"
	"hipec/internal/policies"
)

// TestPaperPoliciesVerifyClean is the golden gate: every canned paper
// policy must pass the static verifier with zero error-severity
// diagnostics at every plausible minFrame.
func TestPaperPoliciesVerifyClean(t *testing.T) {
	for _, name := range policies.Names() {
		for _, mf := range []int{4, 16, 64} {
			spec, err := policies.ByName(name, mf)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			u, err := core.UnitForSpec(spec)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			diags := verify.Analyze(u)
			for _, d := range verify.Errors(diags) {
				t.Errorf("%s minFrame=%d: %s", name, mf, d)
			}
		}
	}
}

// TestPaperPoliciesDiagnosticBudget pins the advisory noise level: the
// canned policies should not accumulate warnings silently. The only
// accepted warning class is unreachable code from the compiler's implicit
// trailing return.
func TestPaperPoliciesDiagnosticBudget(t *testing.T) {
	for _, name := range policies.Names() {
		spec, err := policies.ByName(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		u, err := core.UnitForSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range verify.Analyze(u) {
			if d.Code != verify.CodeUnreachable {
				t.Errorf("%s: unexpected diagnostic %s", name, d)
			}
		}
	}
}

// TestBrokenSourceDiagnostics runs deliberately broken HPL programs
// through translate-then-verify and checks the expected diagnostic code
// surfaces. This is the source-level golden table; command-level cases
// live in the verify package's own tests.
func TestBrokenSourceDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want verify.Code
	}{
		{
			name: "mutual recursion",
			want: verify.CodeActivateCycle,
			src: `
minframe = 4
event PageFault() {
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() {
    return
}
event A() {
    activate B()
}
event B() {
    activate A()
}
`,
		},
		{
			name: "busy wait on constants",
			want: verify.CodeInfiniteLoop,
			src: `
minframe = 4
event PageFault() {
    while (0 < 1) {
    }
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() {
    return
}
`,
		},
		{
			name: "stuck queue poll",
			want: verify.CodeStuckLoop,
			src: `
minframe = 4
event PageFault() {
    while (empty(_free_queue)) {
    }
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() {
    return
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := hpl.Translate(tc.name, tc.src)
			if err != nil {
				t.Fatalf("translate: %v", err)
			}
			u, err := core.UnitForSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			diags := verify.Analyze(u)
			for _, d := range diags {
				if d.Code == tc.want && d.Severity == verify.SevError {
					return
				}
			}
			t.Fatalf("want %s error, got %v", tc.want, diags)
		})
	}
}
