package policies

import (
	"testing"

	"hipec/internal/core"
	"hipec/internal/vm"
)

func runPattern(t *testing.T, spec *core.Spec, regionPages int, pattern []int64) (*core.Kernel, *vm.MapEntry, *core.Container) {
	t.Helper()
	k := core.New(core.Config{Frames: 1024})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, int64(regionPages)*4096, core.WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	for _, pg := range pattern {
		if _, err := sp.Touch(e.Start + pg*4096); err != nil {
			t.Fatalf("touch page %d: %v", pg, err)
		}
		k.Clock.Advance(1000)
	}
	if c.State() != core.StateActive {
		t.Fatalf("policy died: %s", c.TerminationReason())
	}
	return k, e, c
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestAllPoliciesValidateAndRun(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			spec, err := ByName(name, 8)
			if err != nil {
				t.Fatal(err)
			}
			_, e, _ := runPattern(t, spec, 32, seq(32))
			if got := e.Object.ResidentCount(); got > 8 {
				t.Fatalf("resident %d > pool 8", got)
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("clock-pro", 8); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFIFOEvictsOldest(t *testing.T) {
	_, e, _ := runPattern(t, FIFO(4), 8, seq(8))
	// Pool 4, FIFO: pages 4..7 resident.
	for i := int64(0); i < 4; i++ {
		if e.Object.Resident(i*4096) != nil {
			t.Fatalf("page %d should be evicted", i)
		}
	}
	for i := int64(4); i < 8; i++ {
		if e.Object.Resident(i*4096) == nil {
			t.Fatalf("page %d should be resident", i)
		}
	}
}

func TestMRUKeepsPrefixOnCyclicScan(t *testing.T) {
	// Two sequential sweeps over 12 pages with a 6-frame pool.
	pattern := append(seq(12), seq(12)...)
	_, e, c := runPattern(t, MRU(6), 12, pattern)
	// MRU keeps a scan prefix resident. (The second sweep's hits on the
	// prefix make its last page the most-recently-used, so the prefix
	// shrinks by exactly one per sweep — pages 0..3 survive sweep two.)
	for i := int64(0); i < 4; i++ {
		if e.Object.Resident(i*4096) == nil {
			t.Fatalf("MRU lost prefix page %d", i)
		}
	}
	// Fault count: 12 cold + (12-6+1 at most) replacement faults on the
	// second sweep; in particular far fewer than LRU's 24.
	if c.Stats().Activations >= 24 {
		t.Fatalf("MRU faulted %d times; no better than LRU", c.Stats().Activations)
	}
}

func TestLRUThrashesOnCyclicScan(t *testing.T) {
	// LRU on a cyclic scan larger than the pool faults on every access —
	// the §5.3 pathology.
	pattern := append(seq(12), seq(12)...)
	_, _, c := runPattern(t, LRU(6), 12, pattern)
	if c.Stats().Activations != 24 {
		t.Fatalf("LRU faults = %d, want 24 (every access)", c.Stats().Activations)
	}
}

func TestLRUKeepsHotSet(t *testing.T) {
	// Repeated accesses to a working set smaller than the pool never
	// fault after warmup, even with cold scans interleaved.
	pattern := []int64{0, 1, 2, 0, 1, 2, 5, 0, 1, 2, 6, 0, 1, 2, 7}
	_, e, _ := runPattern(t, LRU(4), 8, pattern)
	for i := int64(0); i < 3; i++ {
		if e.Object.Resident(i*4096) == nil {
			t.Fatalf("LRU evicted hot page %d", i)
		}
	}
}

func TestSequentialTossSinglePass(t *testing.T) {
	_, e, c := runPattern(t, SequentialToss(4), 64, seq(64))
	if got := e.Object.ResidentCount(); got > 4 {
		t.Fatalf("resident %d > 4", got)
	}
	if c.Stats().Requests != 0 {
		t.Fatal("streaming policy should never request more frames")
	}
}

func TestReclaimFrameSurrendersFrames(t *testing.T) {
	k, _, c := runPattern(t, FIFO(16), 16, seq(8))
	before := c.Allocated()
	// Drive the shared ReclaimFrame event directly.
	if _, err := k.Executor.Run(c, core.EventReclaimFrame); err != nil {
		t.Fatal(err)
	}
	if c.Allocated() != before-1 {
		t.Fatalf("allocated %d -> %d, want -1", before, c.Allocated())
	}
	// Exhaust the free list; the event must then evict and still release.
	for c.Free.Len() > 0 {
		if _, err := k.Executor.Run(c, core.EventReclaimFrame); err != nil {
			t.Fatal(err)
		}
	}
	freeBefore := c.Allocated()
	if _, err := k.Executor.Run(c, core.EventReclaimFrame); err != nil {
		t.Fatal(err)
	}
	if c.Allocated() != freeBefore-1 {
		t.Fatal("ReclaimFrame with empty free list did not evict+release")
	}
}

func TestSourcesExposed(t *testing.T) {
	for _, src := range []string{
		FIFOSource(8), LRUSource(8), MRUSource(8),
		FIFOSecondChanceSource(8), SequentialTossSource(8),
	} {
		if len(src) == 0 {
			t.Fatal("empty source")
		}
	}
}

func TestClockGivesSecondChance(t *testing.T) {
	// Hot pages 0..1 re-referenced between faults survive the clock
	// sweep; cold pages rotate out.
	pattern := []int64{0, 1, 2, 3 /*pool full*/, 0, 1, 4, 0, 1, 5, 0, 1, 6}
	_, e, c := runPattern(t, Clock(4), 8, pattern)
	if e.Object.Resident(0) == nil || e.Object.Resident(4096) == nil {
		t.Fatal("clock evicted re-referenced hot pages")
	}
	if c.Stats().Activations >= int64(len(pattern)) {
		t.Fatal("clock faulted on every access")
	}
}

func TestClockWritebackOnDirtyVictims(t *testing.T) {
	k := core.New(core.Config{Frames: 1024})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 16*4096, core.WithPolicy(Clock(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 16; i++ {
		if _, err := sp.Write(e.Start + i*4096); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Flushes == 0 {
		t.Fatal("dirty victims were not flushed")
	}
	if c.State() != core.StateActive {
		t.Fatal(c.TerminationReason())
	}
}
