// Package policies provides ready-made HiPEC replacement policies written
// in HPL and compiled with the translator: the policies used throughout the
// paper's evaluation (FIFO with second chance as the Mach-equivalent
// baseline, MRU for the nested-loop join of §5.3) plus plain FIFO and LRU.
//
// Each constructor takes the container's minFrame (the private pool size
// requested from the global frame manager) and returns a validated
// core.Spec. Source accessors expose the HPL text for documentation and
// the hipecc CLI.
package policies

import (
	"fmt"

	"hipec/internal/core"
	"hipec/internal/hpl"
)

// reclaimBody is the shared ReclaimFrame event: surrender a free frame,
// evicting the oldest active page first if the free list is empty.
const reclaimBody = `
event ReclaimFrame() {
    if (empty(_free_queue)) {
        fifo(_active_queue)
    }
    if (!empty(_free_queue)) {
        release(1)
    }
    return
}
`

// FIFOSecondChanceSource returns the HPL source of the paper's Figure 4
// policy (FIFO with second chance), parameterized by pool size.
func FIFOSecondChanceSource(minFrame int) string {
	return fmt.Sprintf(`
minframe = %d
free_target = %d
inactive_target = %d
reserved_target = 1

event PageFault() {
    if (_free_count > reserve_target) {
        page = de_queue_head(_free_queue)
    } else {
        activate Lack_free_frame()
        page = de_queue_head(_free_queue)
    }
    return page
}

event Lack_free_frame() {
    /* FIFO with 2nd Chance (paper Figure 4) */
    while (_inactive_count < inactive_target && !empty(_active_queue)) {
        page = de_queue_head(_active_queue)
        reset_ref(page)
        en_queue_tail(_inactive_queue, page)
    }
    while (_free_count < free_target && !empty(_inactive_queue)) {
        page = de_queue_head(_inactive_queue)
        if (referenced(page)) {
            reset_ref(page)
            en_queue_tail(_active_queue, page)
        } else {
            if (modified(page)) {
                flush(page)
            }
            en_queue_head(_free_queue, page)
        }
    }
}
`, minFrame, freeTarget(minFrame), inactiveTarget(minFrame)) + reclaimBody
}

func freeTarget(minFrame int) int {
	t := minFrame / 8
	if t < 2 {
		t = 2
	}
	return t
}

func inactiveTarget(minFrame int) int {
	t := minFrame / 3
	if t < 3 {
		t = 3
	}
	return t
}

// FIFOSecondChance compiles the paper's FIFO-with-second-chance policy.
func FIFOSecondChance(minFrame int) *core.Spec {
	return hpl.MustTranslate("fifo-2nd-chance", FIFOSecondChanceSource(minFrame))
}

// simplePolicySource builds a one-command replacement policy around a
// canned victim selector (fifo/lru/mru). Recency-based selectors keep the
// active queue in access order so victim selection is O(1).
func simplePolicySource(cmd string, minFrame int) string {
	order := ""
	if cmd == "lru" || cmd == "mru" {
		order = "access_order = 1\n"
	}
	return fmt.Sprintf(`
minframe = %d
%s
event PageFault() {
    if (empty(_free_queue)) {
        %s(_active_queue)
    }
    page = dequeue_head(_free_queue)
    return page
}
`, minFrame, order, cmd) + reclaimBody
}

// FIFOSource returns the HPL source of the plain FIFO policy.
func FIFOSource(minFrame int) string { return simplePolicySource("fifo", minFrame) }

// FIFO compiles a plain FIFO replacement policy.
func FIFO(minFrame int) *core.Spec {
	return hpl.MustTranslate("fifo", FIFOSource(minFrame))
}

// LRUSource returns the HPL source of the LRU policy.
func LRUSource(minFrame int) string { return simplePolicySource("lru", minFrame) }

// LRU compiles a least-recently-used replacement policy (the "LRU-like
// policy ... for its popularity in conventional operating systems" used as
// the baseline in §5.3).
func LRU(minFrame int) *core.Spec {
	return hpl.MustTranslate("lru", LRUSource(minFrame))
}

// MRUSource returns the HPL source of the MRU policy.
func MRUSource(minFrame int) string { return simplePolicySource("mru", minFrame) }

// MRU compiles the most-recently-used replacement policy, "the right
// solution to the nested-loop join operation" (§5.3).
func MRU(minFrame int) *core.Spec {
	return hpl.MustTranslate("mru", MRUSource(minFrame))
}

// SequentialTossSource is a scan-resistant policy for strictly sequential
// single-pass workloads (multimedia streaming): pages are recycled as soon
// as the scan moves past them, keeping the footprint at minFrame without
// ever asking the global frame manager for more.
func SequentialTossSource(minFrame int) string {
	return fmt.Sprintf(`
minframe = %d

event PageFault() {
    if (empty(_free_queue)) {
        /* Reuse the page the scan finished with: the oldest resident. */
        fifo(_active_queue)
    }
    page = dequeue_head(_free_queue)
    return page
}
`, minFrame) + reclaimBody
}

// SequentialToss compiles the streaming policy.
func SequentialToss(minFrame int) *core.Spec {
	return hpl.MustTranslate("sequential-toss", SequentialTossSource(minFrame))
}

// ClockSource is a circular second-chance ("clock") policy written in pure
// HPL with no canned replacement commands: it demonstrates that the simple
// commands alone are "flexible for application designers to program a
// specific policy" (§4.2). Pages cycle through the active queue; referenced
// pages get their bit cleared and a second lap, unreferenced ones are
// reclaimed (flushing if dirty).
func ClockSource(minFrame int) string {
	return fmt.Sprintf(`
minframe = %d

event PageFault() {
    if (empty(_free_queue)) {
        activate Sweep()
    }
    page = dequeue_head(_free_queue)
    return page
}

event Sweep() {
    while (empty(_free_queue) && !empty(_active_queue)) {
        page = dequeue_head(_active_queue)
        if (referenced(page)) {
            reset_ref(page)
            enqueue_tail(_active_queue, page)
        } else {
            if (modified(page)) {
                flush(page)
            }
            enqueue_head(_free_queue, page)
        }
    }
}
`, minFrame) + reclaimBody
}

// Clock compiles the circular second-chance policy.
func Clock(minFrame int) *core.Spec {
	return hpl.MustTranslate("clock", ClockSource(minFrame))
}

// ByName returns a policy constructor by its CLI name.
func ByName(name string, minFrame int) (*core.Spec, error) {
	switch name {
	case "fifo":
		return FIFO(minFrame), nil
	case "lru":
		return LRU(minFrame), nil
	case "mru":
		return MRU(minFrame), nil
	case "fifo2", "fifo-2nd-chance", "second-chance":
		return FIFOSecondChance(minFrame), nil
	case "sequential", "sequential-toss":
		return SequentialToss(minFrame), nil
	case "clock":
		return Clock(minFrame), nil
	}
	return nil, fmt.Errorf("policies: unknown policy %q (want fifo, lru, mru, fifo2, sequential, clock)", name)
}

// Names lists the CLI policy names.
func Names() []string {
	return []string{"fifo", "lru", "mru", "fifo2", "sequential", "clock"}
}
