package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"hipec/internal/hiperr"
)

// frame pushes one encoded frame through ReadFrame, asserting the stream
// layer round-trips it intact.
func frame(t *testing.T, enc []byte) []byte {
	t.Helper()
	payload, err := ReadFrame(bytes.NewReader(enc), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if len(enc) != len(payload)+4 {
		t.Fatalf("frame length prefix %d does not cover the %d-byte encoding", len(payload), len(enc))
	}
	return payload
}

func TestRequestRoundTrip(t *testing.T) {
	open, err := AppendOpen(nil, 7, 96, "lru", "policy lru { }", 3)
	if err != nil {
		t.Fatal(err)
	}
	write, err := AppendWrite(nil, 9, 2, 41, []byte{0xde, 0xad})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		enc  []byte
		want Request
	}{
		{"hello", AppendHello(nil, 1), Request{Op: OpHello, Seq: 1, Magic: Magic, Version: Version}},
		{"open", open, Request{Op: OpOpen, Seq: 7, Pages: 96, Name: "lru", Source: "policy lru { }", Retry: 3}},
		{"free", AppendFree(nil, 8, 2), Request{Op: OpFree, Seq: 8, Region: 2}},
		{"write", write, Request{Op: OpWrite, Seq: 9, Region: 2, Page: 41, Data: []byte{0xde, 0xad}}},
		{"read", AppendRead(nil, 10, 2, 5, 4096), Request{Op: OpRead, Seq: 10, Region: 2, Page: 5, MaxLen: 4096}},
		{"touch", AppendTouch(nil, 11, 2, 5), Request{Op: OpTouch, Seq: 11, Region: 2, Page: 5}},
		{"stats", AppendStats(nil, 12), Request{Op: OpStats, Seq: 12}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeRequest(frame(t, tc.enc))
			if err != nil {
				t.Fatalf("DecodeRequest: %v", err)
			}
			if got.Op != tc.want.Op || got.Seq != tc.want.Seq ||
				got.Magic != tc.want.Magic || got.Version != tc.want.Version ||
				got.Pages != tc.want.Pages || got.Name != tc.want.Name ||
				got.Source != tc.want.Source || got.Retry != tc.want.Retry ||
				got.Region != tc.want.Region || got.Page != tc.want.Page ||
				got.MaxLen != tc.want.MaxLen || !bytes.Equal(got.Data, tc.want.Data) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

func TestResponseRoundTrip(t *testing.T) {
	st := Stats{Accesses: 1, Hits: 2, Faults: 3, PageIns: 4, ZeroFills: 5, PageOuts: 6, Evictions: 7, StorePages: 8}
	cases := []struct {
		name string
		enc  []byte
		want Response
	}{
		{"ack", AppendAck(nil, 1), Response{Status: StatusOK, Kind: KindAck, Seq: 1}},
		{"hello", AppendHelloResp(nil, 2, 4096), Response{Status: StatusOK, Kind: KindHello, Seq: 2, PageSize: 4096}},
		{"open", AppendOpenResp(nil, 3, 9), Response{Status: StatusOK, Kind: KindOpen, Seq: 3, Region: 9}},
		{"read", AppendReadResp(nil, 4, []byte{1, 2, 3}), Response{Status: StatusOK, Kind: KindRead, Seq: 4, Data: []byte{1, 2, 3}}},
		{"stats", AppendStatsResp(nil, 5, st), Response{Status: StatusOK, Kind: KindStats, Seq: 5, Stats: st}},
		{"error", AppendErrorResp(nil, 6, StatusMinFrame, "too few frames"),
			Response{Status: StatusMinFrame, Kind: KindAck, Seq: 6, Msg: "too few frames"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeResponse(frame(t, tc.enc))
			if err != nil {
				t.Fatalf("DecodeResponse: %v", err)
			}
			if got.Status != tc.want.Status || got.Kind != tc.want.Kind || got.Seq != tc.want.Seq ||
				got.Msg != tc.want.Msg || got.PageSize != tc.want.PageSize ||
				got.Region != tc.want.Region || got.Stats != tc.want.Stats ||
				!bytes.Equal(got.Data, tc.want.Data) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// Batched frames decode in order off one stream with a reused buffer — the
// server's read path.
func TestFrameStreamReuse(t *testing.T) {
	var stream []byte
	stream = AppendHello(stream, 1)
	stream = AppendTouch(stream, 2, 1, 0)
	stream = AppendStats(stream, 3)
	r := bytes.NewReader(stream)
	var buf []byte
	var seqs []uint32
	for i := 0; i < 3; i++ {
		payload, err := ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = payload[:0]
		req, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		seqs = append(seqs, req.Seq)
	}
	if seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Fatalf("frames decoded out of order: %v", seqs)
	}
	if _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

func TestReadFrameMalformedPrefix(t *testing.T) {
	t.Run("zero length", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), nil)
		if !errors.Is(err, ErrBadMessage) {
			t.Fatalf("got %v, want ErrBadMessage", err)
		}
	})
	t.Run("oversized claim", func(t *testing.T) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 1<<31)
		// The reader must refuse before allocating: a hostile prefix
		// claiming 2 GiB costs nothing.
		_, err := ReadFrame(bytes.NewReader(hdr[:]), nil)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		enc := AppendHello(nil, 1)
		_, err := ReadFrame(bytes.NewReader(enc[:len(enc)-3]), nil)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader([]byte{5, 0}), nil); err == nil {
			t.Fatal("short header accepted")
		}
	})
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	valid := frame(t, AppendTouch(nil, 1, 2, 3))
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := DecodeRequest(append(append([]byte(nil), valid...), 0xff)); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("got %v, want ErrBadMessage", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		if _, err := DecodeRequest(valid[:len(valid)-2]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("unknown op", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] = byte(opMax)
		if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("got %v, want ErrBadMessage", err)
		}
	})
	t.Run("write payload over cap", func(t *testing.T) {
		var b []byte
		b = append(b, byte(OpWrite))
		b = appendU32(b, 1)
		b = appendU32(b, 1)
		b = appendU32(b, 0)
		b = appendU32(b, 1<<20) // claims 1 MiB of data
		if _, err := DecodeRequest(b); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("got %v, want ErrBadMessage", err)
		}
	})
	t.Run("open source over cap", func(t *testing.T) {
		var b []byte
		b = append(b, byte(OpOpen))
		b = appendU32(b, 1)
		b = appendU32(b, 8)
		b = appendU32(b, 0)
		b = appendStr(b, "x")
		b = appendU16(b, MaxPolicySource+1)
		if _, err := DecodeRequest(b); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("got %v, want ErrBadMessage", err)
		}
	})
	t.Run("unknown status", func(t *testing.T) {
		resp := frame(t, AppendAck(nil, 1))
		bad := append([]byte(nil), resp...)
		bad[0] = byte(statusMax)
		if _, err := DecodeResponse(bad); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("got %v, want ErrBadMessage", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		resp := frame(t, AppendAck(nil, 1))
		bad := append([]byte(nil), resp...)
		bad[1] = byte(kindMax)
		if _, err := DecodeResponse(bad); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("got %v, want ErrBadMessage", err)
		}
	})
	t.Run("hello version mismatch", func(t *testing.T) {
		resp := frame(t, AppendHelloResp(nil, 1, 4096))
		bad := append([]byte(nil), resp...)
		bad[6] = byte(Version + 1) // version lives after status, kind, seq
		if _, err := DecodeResponse(bad); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("got %v, want ErrBadMessage", err)
		}
	})
}

func TestEncoderRefusesOversizeInputs(t *testing.T) {
	if _, err := AppendOpen(nil, 1, 1, "x", strings.Repeat("p", MaxPolicySource+1), 0); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversize source: got %v, want ErrBadMessage", err)
	}
	if _, err := AppendOpen(nil, 1, 1, strings.Repeat("n", 256), "", 0); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversize name: got %v, want ErrBadMessage", err)
	}
	if _, err := AppendWrite(nil, 1, 1, 0, make([]byte, 64*1024+1)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversize write: got %v, want ErrBadMessage", err)
	}
}

// The status taxonomy must round-trip sentinels so errors.Is works across
// the network.
func TestStatusSentinelRoundTrip(t *testing.T) {
	for st, sentinel := range statusSentinel {
		err := SentinelError(st, "remote failure")
		if !errors.Is(err, sentinel) {
			t.Errorf("status %d: rebuilt error does not wrap its sentinel", st)
		}
		if got := StatusFor(err); got != st {
			t.Errorf("status %d: round-tripped to %d", st, got)
		}
	}
	if StatusFor(nil) != StatusOK {
		t.Error("nil error must be StatusOK")
	}
	if StatusFor(errors.New("whatever")) != StatusError {
		t.Error("untyped error must be StatusError")
	}
	if SentinelError(StatusOK, "") != nil {
		t.Error("StatusOK must rebuild as nil")
	}
	// ErrPolicyRejected wraps ErrPolicyFault in the kernel taxonomy; the
	// more specific status must win.
	if got := StatusFor(hiperr.ErrPolicyRejected); got != StatusPolicyRejected {
		t.Errorf("ErrPolicyRejected classified as %d", got)
	}
}

// ---- fuzz: the decoder must error on garbage, never panic or over-allocate ----

func FuzzDecodeRequest(f *testing.F) {
	f.Add(AppendHello(nil, 1)[4:])
	open, _ := AppendOpen(nil, 2, 96, "lru", "policy lru { }", 1)
	f.Add(open[4:])
	write, _ := AppendWrite(nil, 3, 1, 5, []byte{1, 2, 3})
	f.Add(write[4:])
	f.Add(AppendRead(nil, 4, 1, 5, 4096)[4:])
	f.Add(AppendStats(nil, 5)[4:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without tripping the encoders'
		// own caps (proves the decoder enforced them).
		if len(req.Source) > MaxPolicySource || len(req.Data) > 64*1024 {
			t.Fatalf("decoder accepted oversize fields: source=%d data=%d", len(req.Source), len(req.Data))
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add(AppendAck(nil, 1)[4:])
	f.Add(AppendHelloResp(nil, 2, 4096)[4:])
	f.Add(AppendReadResp(nil, 3, []byte{9, 9})[4:])
	f.Add(AppendStatsResp(nil, 4, Stats{Accesses: 1})[4:])
	f.Add(AppendErrorResp(nil, 5, StatusDiskIO, "boom")[4:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := DecodeResponse(payload)
		if err != nil {
			return
		}
		if len(resp.Data) > 64*1024 {
			t.Fatalf("decoder accepted %d-byte read payload", len(resp.Data))
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	f.Add(AppendHello(nil, 1))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, stream []byte) {
		payload, err := ReadFrame(bytes.NewReader(stream), nil)
		if err != nil {
			return
		}
		if len(payload) == 0 || len(payload) > MaxFrame || cap(payload) > MaxFrame {
			t.Fatalf("frame reader returned %d bytes (cap %d) outside (0, MaxFrame]", len(payload), cap(payload))
		}
	})
}
