// Package wire is the HiPEC serving protocol: a tiny length-prefixed binary
// framing that carries the typed client command surface (core.CacheSession's
// operations) over a byte stream.
//
// Every frame is a little-endian u32 payload length followed by the payload;
// payloads are capped at MaxFrame so a malformed or hostile peer can never
// make the decoder allocate more than one frame's worth of memory. Request
// payloads are `op seq body`, response payloads `status kind seq body`.
// Responses to one connection are written in request order, so a client may
// pipeline: N requests in flight, N replies back in sequence — which is
// exactly what lets the server batch (decode N frames, apply all N in one
// command-loop hop, write N replies).
//
// The package is pure encode/decode — no net, no goroutines — so the
// decoder can be fuzzed in isolation: malformed prefixes, truncated frames
// and oversized payloads must produce errors, never panics.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hipec/internal/hiperr"
)

// Protocol identity. Version is negotiated by the mandatory first request
// on every connection (OpHello); the server rejects mismatches.
const (
	Magic   uint32 = 0x48695043 // "HiPC"
	Version uint16 = 1
)

// MaxFrame caps one frame's payload: a full page write (64 KiB page ceiling)
// plus header room. The frame reader refuses anything larger before
// allocating, and encoders refuse to build it.
const MaxFrame = 64*1024 + 128

// MaxPolicySource caps the HPL source an OpOpen may carry.
const MaxPolicySource = 32 * 1024

// Op is a request opcode.
type Op uint8

const (
	OpInvalid Op = iota
	// OpHello opens the conversation: magic, version. Must be first.
	OpHello
	// OpOpen allocates a region (pages, optional policy name+source, retry).
	OpOpen
	// OpFree releases a region.
	OpFree
	// OpWrite write-faults a page and stores a payload prefix.
	OpWrite
	// OpRead touch-faults a page and returns up to MaxLen payload bytes.
	OpRead
	// OpTouch read-faults a page, returning no payload.
	OpTouch
	// OpStats snapshots machine-wide counters.
	OpStats
	opMax
)

// Status classifies a response. StatusOK carries a result body; everything
// else is an error whose body is a message string. The non-OK codes mirror
// the hiperr sentinel taxonomy so errors.Is keeps working across the wire.
type Status uint8

const (
	StatusOK Status = iota
	StatusError
	StatusBadRequest
	StatusMinFrame
	StatusDiskIO
	StatusPolicyFault
	StatusPolicyRejected
	StatusRevoked
	StatusBadSpec
	statusMax
)

// statusSentinel maps each non-generic status to its hiperr sentinel.
var statusSentinel = map[Status]error{
	StatusBadRequest:     hiperr.ErrBadRequest,
	StatusMinFrame:       hiperr.ErrMinFrame,
	StatusDiskIO:         hiperr.ErrDiskIO,
	StatusPolicyFault:    hiperr.ErrPolicyFault,
	StatusPolicyRejected: hiperr.ErrPolicyRejected,
	StatusRevoked:        hiperr.ErrRevoked,
	StatusBadSpec:        hiperr.ErrBadSpec,
}

// StatusFor classifies err into the wire taxonomy. Order matters where
// sentinels wrap each other (ErrPolicyRejected wraps ErrPolicyFault).
func StatusFor(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, hiperr.ErrBadRequest):
		return StatusBadRequest
	case errors.Is(err, hiperr.ErrMinFrame):
		return StatusMinFrame
	case errors.Is(err, hiperr.ErrDiskIO):
		return StatusDiskIO
	case errors.Is(err, hiperr.ErrPolicyRejected):
		return StatusPolicyRejected
	case errors.Is(err, hiperr.ErrPolicyFault):
		return StatusPolicyFault
	case errors.Is(err, hiperr.ErrRevoked):
		return StatusRevoked
	case errors.Is(err, hiperr.ErrBadSpec):
		return StatusBadSpec
	default:
		return StatusError
	}
}

// SentinelError rebuilds a typed error from a wire status and message: the
// message for context, the status's sentinel underneath for errors.Is.
func SentinelError(st Status, msg string) error {
	if st == StatusOK {
		return nil
	}
	if sentinel, ok := statusSentinel[st]; ok {
		return fmt.Errorf("%s: %w", msg, sentinel)
	}
	return errors.New(msg)
}

// Kind tags a successful response body.
type Kind uint8

const (
	KindAck Kind = iota // empty body (free/write/touch)
	KindHello
	KindOpen
	KindRead
	KindStats
	kindMax
)

// Stats is the wire form of core.CacheStats.
type Stats struct {
	Accesses, Hits, Faults, PageIns, ZeroFills, PageOuts, Evictions, StorePages int64
}

// Request is one decoded client command. Data aliases the decoded frame
// buffer — consume it before reusing the buffer.
type Request struct {
	Op  Op
	Seq uint32

	Magic   uint32 // OpHello
	Version uint16 // OpHello

	Pages  uint32 // OpOpen
	Name   string // OpOpen: policy name ("" = no policy)
	Source string // OpOpen: HPL policy source
	Retry  uint32 // OpOpen: page-in retry budget (0 = default)

	Region uint32 // region ops
	Page   uint32 // OpWrite/OpRead/OpTouch
	Data   []byte // OpWrite payload
	MaxLen uint32 // OpRead reply size cap
}

// Response is one decoded server reply.
type Response struct {
	Status Status
	Kind   Kind
	Seq    uint32

	Msg      string // non-OK: error message
	PageSize uint32 // KindHello
	Region   uint32 // KindOpen
	Data     []byte // KindRead (aliases the frame buffer)
	Stats    Stats  // KindStats
}

// ---- frame I/O ----

var (
	// ErrFrameTooLarge rejects a length prefix above MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	// ErrTruncated marks a payload shorter than its fields claim.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrBadMessage marks a structurally invalid payload.
	ErrBadMessage = errors.New("wire: malformed message")
)

// ReadFrame reads one length-prefixed frame from r. buf is reused when its
// capacity suffices; the returned slice aliases it. Allocation is bounded
// by MaxFrame no matter what the prefix claims.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrBadMessage)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// ---- encode helpers ----

func appendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// appendStr writes a u16 length-prefixed string (encoders bound lengths).
func appendStr(dst []byte, s string) []byte {
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// scratch builds one frame: payload assembled after a 4-byte hole, then the
// length is patched in. All Append* functions use it via finish.
func finish(dst []byte, start int) []byte {
	payload := len(dst) - start - 4
	binary.LittleEndian.PutUint32(dst[start:], uint32(payload))
	return dst
}

func begin(dst []byte) ([]byte, int) {
	start := len(dst)
	return append(dst, 0, 0, 0, 0), start
}

// ---- request encoders (client side) ----

// AppendHello encodes the mandatory first request of a connection.
func AppendHello(dst []byte, seq uint32) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(OpHello))
	dst = appendU32(dst, seq)
	dst = appendU32(dst, Magic)
	dst = appendU16(dst, Version)
	return finish(dst, s)
}

// AppendOpen encodes a region allocation. Name and source lengths are the
// caller's to respect (MaxPolicySource); oversize is caught by the decoder.
func AppendOpen(dst []byte, seq, pages uint32, name, source string, retry uint32) ([]byte, error) {
	if len(source) > MaxPolicySource {
		return dst, fmt.Errorf("%w: policy source %d bytes (cap %d)", ErrBadMessage, len(source), MaxPolicySource)
	}
	if len(name) > 255 {
		return dst, fmt.Errorf("%w: policy name %d bytes (cap 255)", ErrBadMessage, len(name))
	}
	dst, s := begin(dst)
	dst = append(dst, byte(OpOpen))
	dst = appendU32(dst, seq)
	dst = appendU32(dst, pages)
	dst = appendU32(dst, retry)
	dst = appendStr(dst, name)
	dst = appendStr(dst, source)
	return finish(dst, s), nil
}

// AppendFree encodes a region release.
func AppendFree(dst []byte, seq, region uint32) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(OpFree))
	dst = appendU32(dst, seq)
	dst = appendU32(dst, region)
	return finish(dst, s)
}

// AppendWrite encodes a page write. len(data) must fit a frame.
func AppendWrite(dst []byte, seq, region, page uint32, data []byte) ([]byte, error) {
	if len(data) > 64*1024 {
		return dst, fmt.Errorf("%w: write payload %d bytes", ErrBadMessage, len(data))
	}
	dst, s := begin(dst)
	dst = append(dst, byte(OpWrite))
	dst = appendU32(dst, seq)
	dst = appendU32(dst, region)
	dst = appendU32(dst, page)
	dst = appendU32(dst, uint32(len(data)))
	dst = append(dst, data...)
	return finish(dst, s), nil
}

// AppendRead encodes a page read returning at most maxLen payload bytes.
func AppendRead(dst []byte, seq, region, page, maxLen uint32) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(OpRead))
	dst = appendU32(dst, seq)
	dst = appendU32(dst, region)
	dst = appendU32(dst, page)
	dst = appendU32(dst, maxLen)
	return finish(dst, s)
}

// AppendTouch encodes a page touch.
func AppendTouch(dst []byte, seq, region, page uint32) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(OpTouch))
	dst = appendU32(dst, seq)
	dst = appendU32(dst, region)
	dst = appendU32(dst, page)
	return finish(dst, s)
}

// AppendStats encodes a stats snapshot request.
func AppendStats(dst []byte, seq uint32) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(OpStats))
	dst = appendU32(dst, seq)
	return finish(dst, s)
}

// ---- response encoders (server side) ----

// AppendAck encodes an empty success reply.
func AppendAck(dst []byte, seq uint32) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(StatusOK), byte(KindAck))
	dst = appendU32(dst, seq)
	return finish(dst, s)
}

// AppendErrorResp encodes a failure reply. The message is truncated to fit
// one frame.
func AppendErrorResp(dst []byte, seq uint32, st Status, msg string) []byte {
	if st == StatusOK {
		st = StatusError
	}
	if len(msg) > 4096 {
		msg = msg[:4096]
	}
	dst, s := begin(dst)
	dst = append(dst, byte(st), byte(KindAck))
	dst = appendU32(dst, seq)
	dst = appendStr(dst, msg)
	return finish(dst, s)
}

// AppendHelloResp encodes the hello reply carrying the server's page size.
func AppendHelloResp(dst []byte, seq, pageSize uint32) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(StatusOK), byte(KindHello))
	dst = appendU32(dst, seq)
	dst = appendU16(dst, Version)
	dst = appendU32(dst, pageSize)
	return finish(dst, s)
}

// AppendOpenResp encodes a successful region allocation.
func AppendOpenResp(dst []byte, seq, region uint32) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(StatusOK), byte(KindOpen))
	dst = appendU32(dst, seq)
	dst = appendU32(dst, region)
	return finish(dst, s)
}

// AppendReadResp encodes a successful page read.
func AppendReadResp(dst []byte, seq uint32, data []byte) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(StatusOK), byte(KindRead))
	dst = appendU32(dst, seq)
	dst = appendU32(dst, uint32(len(data)))
	dst = append(dst, data...)
	return finish(dst, s)
}

// AppendStatsResp encodes a counter snapshot.
func AppendStatsResp(dst []byte, seq uint32, cs Stats) []byte {
	dst, s := begin(dst)
	dst = append(dst, byte(StatusOK), byte(KindStats))
	dst = appendU32(dst, seq)
	for _, v := range [...]int64{cs.Accesses, cs.Hits, cs.Faults, cs.PageIns,
		cs.ZeroFills, cs.PageOuts, cs.Evictions, cs.StorePages} {
		dst = appendU64(dst, uint64(v))
	}
	return finish(dst, s)
}

// ---- decode ----

// cursor is a bounds-checked little-endian reader over one payload.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if c.off+n > len(c.b) {
		c.err = fmt.Errorf("%w: want %d bytes at offset %d of %d", ErrTruncated, n, c.off, len(c.b))
		return false
	}
	return true
}

func (c *cursor) u8() uint8 {
	if !c.need(1) {
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if !c.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if !c.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// bytesN returns n payload bytes without copying (aliases the frame buffer).
func (c *cursor) bytesN(n int) []byte {
	if n < 0 || !c.need(n) {
		if c.err == nil {
			c.err = fmt.Errorf("%w: negative length", ErrBadMessage)
		}
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

func (c *cursor) str() string { return string(c.bytesN(int(c.u16()))) }

// rest errors unless the payload was fully consumed — trailing garbage is a
// protocol violation, not padding.
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(c.b)-c.off)
	}
	return nil
}

// DecodeRequest parses one request payload. The returned Request's Data and
// strings alias payload where possible.
func DecodeRequest(payload []byte) (Request, error) {
	c := &cursor{b: payload}
	var r Request
	r.Op = Op(c.u8())
	r.Seq = c.u32()
	if c.err == nil && (r.Op == OpInvalid || r.Op >= opMax) {
		return r, fmt.Errorf("%w: unknown op %d", ErrBadMessage, r.Op)
	}
	switch r.Op {
	case OpHello:
		r.Magic = c.u32()
		r.Version = c.u16()
	case OpOpen:
		r.Pages = c.u32()
		r.Retry = c.u32()
		r.Name = c.str()
		srcLen := int(c.u16())
		if c.err == nil && srcLen > MaxPolicySource {
			return r, fmt.Errorf("%w: policy source %d bytes (cap %d)", ErrBadMessage, srcLen, MaxPolicySource)
		}
		r.Source = string(c.bytesN(srcLen))
	case OpFree:
		r.Region = c.u32()
	case OpWrite:
		r.Region = c.u32()
		r.Page = c.u32()
		n := c.u32()
		if c.err == nil && n > 64*1024 {
			return r, fmt.Errorf("%w: write payload %d bytes", ErrBadMessage, n)
		}
		r.Data = c.bytesN(int(n))
	case OpRead:
		r.Region = c.u32()
		r.Page = c.u32()
		r.MaxLen = c.u32()
	case OpTouch:
		r.Region = c.u32()
		r.Page = c.u32()
	case OpStats:
		// no body
	}
	if err := c.done(); err != nil {
		return r, err
	}
	return r, nil
}

// DecodeResponse parses one response payload. Data aliases payload.
func DecodeResponse(payload []byte) (Response, error) {
	c := &cursor{b: payload}
	var r Response
	r.Status = Status(c.u8())
	r.Kind = Kind(c.u8())
	r.Seq = c.u32()
	if c.err == nil && r.Status >= statusMax {
		return r, fmt.Errorf("%w: unknown status %d", ErrBadMessage, r.Status)
	}
	if c.err == nil && r.Kind >= kindMax {
		return r, fmt.Errorf("%w: unknown response kind %d", ErrBadMessage, r.Kind)
	}
	if r.Status != StatusOK {
		r.Msg = c.str()
		if err := c.done(); err != nil {
			return r, err
		}
		return r, nil
	}
	switch r.Kind {
	case KindAck:
		// no body
	case KindHello:
		ver := c.u16()
		if c.err == nil && ver != Version {
			return r, fmt.Errorf("%w: server speaks version %d, client %d", ErrBadMessage, ver, Version)
		}
		r.PageSize = c.u32()
	case KindOpen:
		r.Region = c.u32()
	case KindRead:
		n := c.u32()
		if c.err == nil && n > 64*1024 {
			return r, fmt.Errorf("%w: read payload %d bytes", ErrBadMessage, n)
		}
		r.Data = c.bytesN(int(n))
	case KindStats:
		for _, p := range [...]*int64{&r.Stats.Accesses, &r.Stats.Hits, &r.Stats.Faults,
			&r.Stats.PageIns, &r.Stats.ZeroFills, &r.Stats.PageOuts,
			&r.Stats.Evictions, &r.Stats.StorePages} {
			*p = int64(c.u64())
		}
	}
	if err := c.done(); err != nil {
		return r, err
	}
	return r, nil
}
