// Package faultinj is the simulated kernel's deterministic fault-injection
// plane. Subsystems consult it at well-defined points — disk I/O, external
// pager traffic, frame-manager grants — and it answers with a Decision
// (fail, and/or slow by some extra virtual time) drawn from a seeded PRNG.
//
// Determinism: the plane owns a splitmix64 stream advanced only by Decide
// calls against non-zero rules, and the simulated kernel serializes all
// activity on one virtual clock, so the same seed against the same workload
// yields the same decision sequence — runs remain byte-diffable at the event
// log level. A nil *Plane (injection disabled) is valid and decides nothing,
// so non-chaos runs make no draws and are behaviorally unchanged.
package faultinj

import (
	"fmt"
	"time"
)

// Point names one injection point in the kernel.
type Point uint8

const (
	// DiskRead is a synchronous paging-device read.
	DiskRead Point = iota
	// DiskWrite is an asynchronous paging-device write (latency spikes
	// only: store writes are immediate and durable, so write failures are
	// not modeled).
	DiskWrite
	// PagerRequest is a remote-pager data_request (page-in).
	PagerRequest
	// PagerReturn is a remote-pager data_return (page-out).
	PagerReturn
	// FrameGrant is a frame-manager Request-command grant.
	FrameGrant
	// NumPoints sizes per-point arrays.
	NumPoints
)

// String returns the point name.
func (p Point) String() string {
	switch p {
	case DiskRead:
		return "disk.read"
	case DiskWrite:
		return "disk.write"
	case PagerRequest:
		return "pager.request"
	case PagerReturn:
		return "pager.return"
	case FrameGrant:
		return "frame.grant"
	}
	return fmt.Sprintf("Point(%d)", uint8(p))
}

// Rule configures injection at one point. The zero Rule injects nothing and
// costs nothing (no PRNG draw).
type Rule struct {
	// FailRate is the probability in [0,1] that an operation fails.
	FailRate float64
	// FailEvery, when positive, fails every Nth decision at the point
	// deterministically (no PRNG draw) and takes precedence over FailRate.
	// It exists for tests that need exact failure schedules.
	FailEvery int
	// SlowRate is the probability that an operation is delayed by SlowBy.
	SlowRate float64
	// SlowBy is the extra virtual latency of a slow operation.
	SlowBy time.Duration
}

func (r Rule) zero() bool {
	return r.FailRate == 0 && r.FailEvery == 0 && (r.SlowRate == 0 || r.SlowBy == 0)
}

// Decision is the plane's answer for one operation.
type Decision struct {
	Fail bool          // the operation should fail
	Slow time.Duration // extra latency to charge (0 = none)
}

// Config seeds and populates a Plane. Seed 0 disables injection entirely
// (New returns nil, which every consumer accepts).
type Config struct {
	Seed uint64
	// Disk applies to disk reads; its SlowRate/SlowBy also apply to disk
	// writes (writes never fail — see Point).
	Disk Rule
	// Pager applies to remote-pager requests and returns.
	Pager Rule
	// Grant applies to frame-manager grants (FailRate/FailEvery only).
	Grant Rule
}

// Plane is the injection decision engine. It is a pure function of its seed
// and the sequence of Decide calls; it emits no events itself — consumers
// record injected faults on the kernel event spine.
type Plane struct {
	state uint64
	draws uint64
	rules [NumPoints]Rule
	calls [NumPoints]uint64
}

// New builds a plane from cfg, or returns nil (injection disabled) when
// cfg.Seed is zero.
func New(cfg Config) *Plane {
	if cfg.Seed == 0 {
		return nil
	}
	pl := NewPlane(cfg.Seed)
	pl.SetRule(DiskRead, cfg.Disk)
	pl.SetRule(DiskWrite, Rule{SlowRate: cfg.Disk.SlowRate, SlowBy: cfg.Disk.SlowBy})
	pl.SetRule(PagerRequest, cfg.Pager)
	pl.SetRule(PagerReturn, cfg.Pager)
	pl.SetRule(FrameGrant, Rule{FailRate: cfg.Grant.FailRate, FailEvery: cfg.Grant.FailEvery})
	return pl
}

// NewPlane builds an empty plane (no rules) with the given nonzero seed;
// configure it with SetRule. Intended for tests.
func NewPlane(seed uint64) *Plane {
	if seed == 0 {
		panic("faultinj: zero seed")
	}
	return &Plane{state: seed}
}

// SetRule installs the rule for one point.
func (pl *Plane) SetRule(pt Point, r Rule) { pl.rules[pt] = r }

// Draws reports how many PRNG values have been consumed (for tests pinning
// stream stability).
func (pl *Plane) Draws() uint64 {
	if pl == nil {
		return 0
	}
	return pl.draws
}

// next advances the splitmix64 stream.
func (pl *Plane) next() uint64 {
	pl.draws++
	pl.state += 0x9E3779B97F4A7C15
	z := pl.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// chance draws a uniform [0,1) variate and compares it to rate. It draws
// even when rate >= 1 so that changing a rate never shifts the stream
// consumed by other rules.
func (pl *Plane) chance(rate float64) bool {
	return float64(pl.next()>>11)/(1<<53) < rate
}

// Decide answers for one operation at pt. Safe on a nil receiver (injection
// disabled): returns the zero Decision without drawing.
func (pl *Plane) Decide(pt Point) Decision {
	if pl == nil {
		return Decision{}
	}
	r := pl.rules[pt]
	if r.zero() {
		return Decision{}
	}
	pl.calls[pt]++
	var d Decision
	if r.FailEvery > 0 {
		d.Fail = pl.calls[pt]%uint64(r.FailEvery) == 0
	} else if r.FailRate > 0 {
		d.Fail = pl.chance(r.FailRate)
	}
	if r.SlowRate > 0 && r.SlowBy > 0 && pl.chance(r.SlowRate) {
		d.Slow = r.SlowBy
	}
	return d
}
