package faultinj

import (
	"testing"
	"time"
)

func TestNilPlaneDecidesNothing(t *testing.T) {
	var pl *Plane
	for pt := Point(0); pt < NumPoints; pt++ {
		if d := pl.Decide(pt); d != (Decision{}) {
			t.Errorf("nil plane decided %+v at %v", d, pt)
		}
	}
	if pl.Draws() != 0 {
		t.Errorf("nil plane draws = %d", pl.Draws())
	}
}

func TestZeroSeedDisables(t *testing.T) {
	if pl := New(Config{Seed: 0, Disk: Rule{FailRate: 1}}); pl != nil {
		t.Fatal("New with zero seed should return nil")
	}
}

func TestZeroRuleMakesNoDraws(t *testing.T) {
	pl := NewPlane(7)
	pl.SetRule(DiskRead, Rule{FailRate: 0.5})
	for i := 0; i < 100; i++ {
		pl.Decide(PagerRequest) // no rule installed
	}
	if pl.Draws() != 0 {
		t.Errorf("draws = %d after decisions against zero rules", pl.Draws())
	}
}

func TestDeterministicSequence(t *testing.T) {
	run := func() []Decision {
		pl := New(Config{Seed: 42, Disk: Rule{FailRate: 0.3, SlowRate: 0.2, SlowBy: time.Millisecond}})
		out := make([]Decision, 200)
		for i := range out {
			out[i] = pl.Decide(DiskRead)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	fails := 0
	for _, d := range a {
		if d.Fail {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("FailRate 0.3 produced %d/%d failures", fails, len(a))
	}
}

func TestFailEvery(t *testing.T) {
	pl := NewPlane(1)
	pl.SetRule(FrameGrant, Rule{FailEvery: 3})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, pl.Decide(FrameGrant).Fail)
	}
	want := []bool{false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FailEvery=3 sequence %v, want %v", got, want)
		}
	}
	if pl.Draws() != 0 {
		t.Errorf("FailEvery consumed %d PRNG draws", pl.Draws())
	}
}

func TestRateOneAlwaysAndStreamStability(t *testing.T) {
	pl := NewPlane(9)
	pl.SetRule(DiskRead, Rule{FailRate: 1})
	for i := 0; i < 10; i++ {
		if !pl.Decide(DiskRead).Fail {
			t.Fatal("FailRate 1 did not fail")
		}
	}
	if pl.Draws() != 10 {
		t.Errorf("FailRate 1 made %d draws, want 10 (stream stability)", pl.Draws())
	}
}

func TestWriteRuleDerivedFromDisk(t *testing.T) {
	pl := New(Config{Seed: 5, Disk: Rule{FailRate: 1, SlowRate: 1, SlowBy: time.Millisecond}})
	if d := pl.Decide(DiskWrite); d.Fail {
		t.Error("disk writes must never fail")
	} else if d.Slow != time.Millisecond {
		t.Errorf("disk write slow = %v, want 1ms", d.Slow)
	}
}
