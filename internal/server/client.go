package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"hipec/internal/core"
	"hipec/internal/hiperr"
	"hipec/internal/wire"
)

// Client is the network half of the client seam: it speaks the wire
// protocol to a Server and exposes the same typed command surface as the
// in-process *core.Loop, so application code written against the
// hipec.Client interface runs unchanged against either.
//
// A Client is safe for concurrent use. Requests from concurrent goroutines
// are pipelined over one connection — which is precisely what feeds the
// server's per-connection batching: every frame already queued behind the
// first rides the same Loop hop.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes
	out *bufio.Writer

	mu      sync.Mutex // guards seq, pending, sticky err
	seq     uint32
	pending map[uint32]chan wire.Response // nil channel = fire-and-forget
	err     error                         // sticky transport failure

	pageSize int
	closed   chan struct{}
	readerWG sync.WaitGroup
}

// Dial connects to a HiPEC server, performs the hello exchange, and returns
// a ready client.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		out:     bufio.NewWriter(conn),
		pending: make(map[uint32]chan wire.Response),
		closed:  make(chan struct{}),
	}
	c.readerWG.Add(1)
	go c.readLoop()
	resp, err := c.roundTrip(func(dst []byte, seq uint32) ([]byte, error) {
		return wire.AppendHello(dst, seq), nil
	})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("server hello: %w", err)
	}
	c.pageSize = int(resp.PageSize)
	if c.pageSize <= 0 {
		c.Close()
		return nil, fmt.Errorf("server hello: bad page size %d", resp.PageSize)
	}
	return c, nil
}

// errClosed is the sticky error after Close or a transport failure.
var errClosed = fmt.Errorf("hipec client: connection closed")

// send allocates a seq, registers its waiter (nil ch = discard the reply),
// builds the frame, and writes it.
func (c *Client) send(build func(dst []byte, seq uint32) ([]byte, error), ch chan wire.Response) (uint32, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	c.seq++
	seq := c.seq
	c.pending[seq] = ch
	c.mu.Unlock()

	frame, err := build(nil, seq)
	if err != nil {
		c.forgetSeq(seq)
		return 0, err
	}
	c.wmu.Lock()
	_, werr := c.out.Write(frame)
	if werr == nil {
		werr = c.out.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		c.forgetSeq(seq)
		c.fail(werr)
		return 0, werr
	}
	return seq, nil
}

func (c *Client) forgetSeq(seq uint32) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// roundTrip sends one request and waits for its reply.
func (c *Client) roundTrip(build func(dst []byte, seq uint32) ([]byte, error)) (wire.Response, error) {
	ch := make(chan wire.Response, 1)
	if _, err := c.send(build, ch); err != nil {
		return wire.Response{}, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return wire.Response{}, c.stickyErr()
		}
		if resp.Status != wire.StatusOK {
			return resp, wire.SentinelError(resp.Status, resp.Msg)
		}
		return resp, nil
	case <-c.closed:
		// The reader may have delivered just before failing.
		select {
		case resp, ok := <-ch:
			if ok {
				if resp.Status != wire.StatusOK {
					return resp, wire.SentinelError(resp.Status, resp.Msg)
				}
				return resp, nil
			}
		default:
		}
		return wire.Response{}, c.stickyErr()
	}
}

func (c *Client) stickyErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return errClosed
}

// fail records the first transport error, wakes every waiter, and tears the
// connection down.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.closed)
	}
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		if ch != nil {
			close(ch)
		}
	}
	c.mu.Unlock()
	c.conn.Close()
}

// readLoop delivers replies to their waiters until the connection dies.
func (c *Client) readLoop() {
	defer c.readerWG.Done()
	in := bufio.NewReaderSize(c.conn, 64*1024)
	var buf []byte
	for {
		frame, err := wire.ReadFrame(in, buf)
		if err != nil {
			c.fail(fmt.Errorf("hipec client: %w", err))
			return
		}
		buf = frame[:0]
		resp, err := wire.DecodeResponse(frame)
		if err != nil {
			c.fail(fmt.Errorf("hipec client: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if !ok {
			c.fail(fmt.Errorf("hipec client: reply for unknown seq %d", resp.Seq))
			return
		}
		if ch == nil {
			continue // fire-and-forget (TouchAsync): reply discarded
		}
		// Data aliases the read buffer, which the next ReadFrame reuses;
		// copy before handing off.
		if len(resp.Data) > 0 {
			resp.Data = append([]byte(nil), resp.Data...)
		}
		ch <- resp
	}
}

// ---- the typed command surface (mirrors *core.Loop's methods) ----

// Open allocates a region of pages pages on the server and returns its
// handle. Policy must arrive as source (WithPolicySource) — a *Spec does
// not serialize, so WithPolicySpec is rejected here.
func (c *Client) Open(pages int, opts ...core.RegionOption) (core.RegionID, error) {
	o := core.ResolveRegionOptions(opts)
	if o.Spec != nil {
		return 0, fmt.Errorf("hipec client: WithPolicySpec is in-process only; use WithPolicySource: %w", hiperr.ErrBadRequest)
	}
	if pages < 0 {
		return 0, fmt.Errorf("hipec client: negative region size: %w", hiperr.ErrBadRequest)
	}
	resp, err := c.roundTrip(func(dst []byte, seq uint32) ([]byte, error) {
		return wire.AppendOpen(dst, seq, uint32(pages), o.Name, o.Source, uint32(o.Retry))
	})
	if err != nil {
		return 0, err
	}
	return core.RegionID(resp.Region), nil
}

// WritePage write-faults page page of region r and stores data (length <=
// PageSize) at its head.
func (c *Client) WritePage(r core.RegionID, page int, data []byte) error {
	_, err := c.roundTrip(func(dst []byte, seq uint32) ([]byte, error) {
		return wire.AppendWrite(dst, seq, uint32(r), uint32(page), data)
	})
	return err
}

// ReadPage touch-faults page page of region r and copies up to len(buf)
// payload bytes into buf, returning the count.
func (c *Client) ReadPage(r core.RegionID, page int, buf []byte) (int, error) {
	resp, err := c.roundTrip(func(dst []byte, seq uint32) ([]byte, error) {
		return wire.AppendRead(dst, seq, uint32(r), uint32(page), uint32(len(buf))), nil
	})
	if err != nil {
		return 0, err
	}
	return copy(buf, resp.Data), nil
}

// TouchPage read-faults page page of region r.
func (c *Client) TouchPage(r core.RegionID, page int) error {
	_, err := c.roundTrip(func(dst []byte, seq uint32) ([]byte, error) {
		return wire.AppendTouch(dst, seq, uint32(r), uint32(page)), nil
	})
	return err
}

// TouchAsync sends a touch without waiting for the reply, which is
// discarded when it arrives. True means "accepted for transmission", not
// "applied" — the same enqueued-not-guaranteed contract as Loop.Async,
// stretched over TCP.
func (c *Client) TouchAsync(r core.RegionID, page int) bool {
	_, err := c.send(func(dst []byte, seq uint32) ([]byte, error) {
		return wire.AppendTouch(dst, seq, uint32(r), uint32(page)), nil
	}, nil)
	return err == nil
}

// FreeRegion releases region r on the server.
func (c *Client) FreeRegion(r core.RegionID) error {
	_, err := c.roundTrip(func(dst []byte, seq uint32) ([]byte, error) {
		return wire.AppendFree(dst, seq, uint32(r)), nil
	})
	return err
}

// Stats snapshots the server's machine-wide counters.
func (c *Client) Stats() (core.CacheStats, error) {
	resp, err := c.roundTrip(func(dst []byte, seq uint32) ([]byte, error) {
		return wire.AppendStats(dst, seq), nil
	})
	if err != nil {
		return core.CacheStats{}, err
	}
	return core.CacheStats{
		Accesses: resp.Stats.Accesses, Hits: resp.Stats.Hits,
		Faults: resp.Stats.Faults, PageIns: resp.Stats.PageIns,
		ZeroFills: resp.Stats.ZeroFills, PageOuts: resp.Stats.PageOuts,
		Evictions: resp.Stats.Evictions, StorePages: resp.Stats.StorePages,
	}, nil
}

// PageSize reports the server's page size (learned in the hello exchange).
func (c *Client) PageSize() int { return c.pageSize }

// Close tears down the connection. The server frees the session's regions
// when it sees the disconnect. Idempotent; concurrent in-flight calls
// return transport errors.
func (c *Client) Close() {
	c.fail(errClosed)
	c.readerWG.Wait()
}
