package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hipec/internal/core"
	"hipec/internal/hiperr"
	"hipec/internal/policies"
	"hipec/internal/substrate"
	"hipec/internal/wire"

	_ "hipec/internal/hpl" // registers the policy translator for WithPolicySource
)

const testPageSize = 4096

// newTestServer boots a server on a loopback listener over an in-memory
// store and tears it down with the test.
func newTestServer(t testing.TB, opts ...Option) (*Server, string) {
	t.Helper()
	store := substrate.NewMemStore(testPageSize, true)
	srv := New(store, opts...)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(srv.Close)
	return srv, srv.Addr().String()
}

func TestClientRoundTrip(t *testing.T) {
	_, addr := newTestServer(t, WithFrames(256))
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if got := c.PageSize(); got != testPageSize {
		t.Fatalf("PageSize = %d, want %d", got, testPageSize)
	}
	r, err := c.Open(8, core.WithPolicySource("fifo2c", policies.FIFOSecondChanceSource(4)))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	payload := []byte("page zero payload")
	if err := c.WritePage(r, 0, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(payload))
	n, err := c.ReadPage(r, 0, buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf[:n], payload) {
		t.Fatalf("read back %q, want %q", buf[:n], payload)
	}
	if err := c.TouchPage(r, 7); err != nil {
		t.Fatalf("touch: %v", err)
	}
	if !c.TouchAsync(r, 7) {
		t.Fatal("TouchAsync refused on a healthy connection")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Accesses == 0 || st.Faults == 0 {
		t.Fatalf("stats show no traffic: %+v", st)
	}
	if err := c.FreeRegion(r); err != nil {
		t.Fatalf("free: %v", err)
	}
}

// Errors cross the wire as typed statuses: errors.Is must keep working on
// the client side.
func TestErrorsStayTypedAcrossTheWire(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if err := c.TouchPage(99, 0); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("unknown region: got %v, want ErrBadRequest", err)
	}
	r, err := c.Open(4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := c.TouchPage(r, 4); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("page out of range: got %v, want ErrBadRequest", err)
	}
	if _, err := c.Open(4, core.WithPolicySource("broken", "policy broken { not hpl")); !errors.Is(err, hiperr.ErrBadSpec) {
		t.Fatalf("bad policy source: got %v, want ErrBadSpec", err)
	}
	if _, err := c.Open(4, core.WithPolicySpec(&core.Spec{})); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("WithPolicySpec over the network: got %v, want ErrBadRequest", err)
	}
}

// The concurrency contract, networked: many clients (and pipelining
// goroutines within each) hammer one server. Run under -race this proves
// the mailbox stays the only synchronization end to end.
func TestConcurrentClients(t *testing.T) {
	_, addr := newTestServer(t, WithFrames(128))
	const clients = 8
	const pages = 16
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errc <- fmt.Errorf("client %d: %v", id, err)
				return
			}
			defer c.Close()
			r, err := c.Open(pages, core.WithPolicySource("fifo", policies.FIFOSource(4)))
			if err != nil {
				errc <- fmt.Errorf("client %d: open: %v", id, err)
				return
			}
			// Two pipelining goroutines per client share the connection.
			var inner sync.WaitGroup
			for g := 0; g < 2; g++ {
				inner.Add(1)
				go func(g int) {
					defer inner.Done()
					stamp := byte(id<<1 + g + 1)
					for p := g; p < pages; p += 2 {
						if err := c.WritePage(r, p, []byte{stamp, byte(p)}); err != nil {
							errc <- fmt.Errorf("client %d.%d: write %d: %v", id, g, p, err)
							return
						}
					}
					buf := make([]byte, 2)
					for p := g; p < pages; p += 2 {
						n, err := c.ReadPage(r, p, buf)
						if err != nil {
							errc <- fmt.Errorf("client %d.%d: read %d: %v", id, g, p, err)
							return
						}
						if n != 2 || buf[0] != stamp || buf[1] != byte(p) {
							errc <- fmt.Errorf("client %d.%d: page %d corrupt: % x", id, g, p, buf[:n])
							return
						}
					}
				}(g)
			}
			inner.Wait()
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// A connection killed mid-stream must not leak kernel state: the handler
// frees the session's regions on its way out, so the dead client's
// containers end up destroyed and its frames return to the pool.
func TestMidStreamConnectionKill(t *testing.T) {
	srv, addr := newTestServer(t, WithFrames(64))

	// Speak the wire protocol by hand so the TCP connection can be severed
	// abruptly, mid-session, with regions still open.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var out []byte
	out = wire.AppendHello(out, 1)
	open, err := wire.AppendOpen(out, 2, 8, "fifo", policies.FIFOSource(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	out = wire.AppendTouch(open, 3, 1, 0)
	if _, err := conn.Write(out); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Wait until the touch executed so the region is definitely open, then
	// kill the connection without freeing anything.
	waitFor(t, srv, func(k *core.Kernel) bool { return k.VM.Stats().Faults > 0 })
	conn.Close()

	// The handler notices, frees the session, and every container the dead
	// connection created ends up destroyed.
	waitFor(t, srv, func(k *core.Kernel) bool {
		cs := k.Containers()
		if len(cs) == 0 {
			return false
		}
		for _, c := range cs {
			if c.State() != core.StateDestroyed {
				return false
			}
		}
		return true
	})

	// The server keeps serving: a fresh client gets the freed frames back.
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial after kill: %v", err)
	}
	defer c.Close()
	r, err := c.Open(8, core.WithPolicySource("fifo", policies.FIFOSource(4)))
	if err != nil {
		t.Fatalf("open after kill: %v", err)
	}
	if err := c.TouchPage(r, 0); err != nil {
		t.Fatalf("touch after kill: %v", err)
	}
}

// waitFor polls a kernel predicate through the loop until it holds.
func waitFor(t *testing.T, srv *Server, pred func(*core.Kernel) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := false
		if err := srv.Loop().Call(func(k *core.Kernel) error { ok = pred(k); return nil }); err != nil {
			t.Fatalf("loop: %v", err)
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

// A first frame that is not a valid hello gets the connection dropped.
func TestHelloIsMandatory(t *testing.T) {
	_, addr := newTestServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendStats(nil, 1)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("server answered %d bytes to a hello-less connection", n)
	}
}

// Closing the server mid-traffic surfaces transport errors on clients, never
// panics or hangs.
func TestServerCloseWithLiveClients(t *testing.T) {
	srv, addr := newTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	r, err := c.Open(4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if err := c.TouchPage(r, 0); err != nil {
				return // transport error: the expected outcome
			}
		}
	}()
	time.Sleep(5 * time.Millisecond) // let traffic flow
	srv.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("client call hung across server close")
	}
}

// The batching benchmark: the same pipelined load, one server applying each
// request in its own Loop hop (WithMaxBatch(1)) versus one batching each
// connection's backlog (default). Compare ops/sec:
//
//	go test ./internal/server -bench=Submission -benchtime=2s
func BenchmarkSubmission(b *testing.B) {
	for _, bc := range []struct {
		name  string
		batch int
	}{
		{"hop-per-request", 1},
		{"batched", DefaultMaxBatch},
	} {
		b.Run(bc.name, func(b *testing.B) {
			_, addr := newTestServer(b, WithFrames(256), WithMaxBatch(bc.batch))
			c, err := Dial(addr)
			if err != nil {
				b.Fatalf("dial: %v", err)
			}
			defer c.Close()
			r, err := c.Open(64, core.WithPolicySource("fifo", policies.FIFOSource(16)))
			if err != nil {
				b.Fatalf("open: %v", err)
			}
			for p := 0; p < 64; p++ { // pre-fault the working set
				if err := c.TouchPage(r, p); err != nil {
					b.Fatalf("prefault: %v", err)
				}
			}
			b.ResetTimer()
			// Pipelined load: enough goroutines share the connection to
			// keep a real backlog in the server's per-connection queue —
			// that backlog is what batching turns into single Loop hops.
			b.SetParallelism(64)
			b.RunParallel(func(pb *testing.PB) {
				p := 0
				for pb.Next() {
					if err := c.TouchPage(r, p%64); err != nil {
						b.Errorf("touch: %v", err)
						return
					}
					p++
				}
			})
		})
	}
}
