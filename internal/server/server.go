// Package server puts the wire protocol in front of a realtime HiPEC
// kernel: a TCP listener whose connections submit the typed client command
// surface onto the kernel's serialized command loop (core.Loop).
//
// The interesting part is the batching. One Loop hop (a mailbox send, a
// channel wake, a reply channel) costs far more than applying a decoded
// command, so paying it per request would put the boundary crossing the
// paper eliminated right back on the hot path — this time as a channel, not
// a syscall. Instead each connection decodes as many frames as have already
// arrived (bounded by WithMaxBatch, optionally lingering WithBatchWindow for
// stragglers) and applies the whole batch in ONE Loop.Call, then writes all
// the replies with one flush. Pipelined clients amortize the crossing
// exactly the way the policy executor amortizes clock charges across an
// event boundary.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hipec/internal/core"
	"hipec/internal/substrate"
	"hipec/internal/wire"
)

// Option configures a Server (variadic-option style; there is no config
// struct).
type Option func(*options)

type options struct {
	frames      int
	maxConns    int
	maxBatch    int
	batchWindow time.Duration
	burst       float64
}

func defaults() options {
	return options{frames: 4096, maxConns: 64, maxBatch: DefaultMaxBatch, burst: 0.5}
}

// DefaultMaxBatch bounds how many decoded requests one Loop.Call applies.
const DefaultMaxBatch = 64

// WithFrames sets the kernel's physical memory size in frames (default
// 4096).
func WithFrames(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.frames = n
		}
	}
}

// WithMaxConns bounds concurrently served connections (default 64); excess
// connections wait in the listen backlog.
func WithMaxConns(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.maxConns = n
		}
	}
}

// WithMaxBatch bounds how many requests one Loop hop applies (default
// DefaultMaxBatch). 1 disables batching — every request pays its own
// mailbox crossing; the throughput benchmark uses it as the baseline.
func WithMaxBatch(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.maxBatch = n
		}
	}
}

// WithBatchWindow makes a connection linger up to d for more requests
// before submitting a non-full batch (default 0: submit whatever has
// already arrived). A window trades latency for fewer Loop hops under
// bursty, non-pipelined load.
func WithBatchWindow(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.batchWindow = d
		}
	}
}

// WithBurstFraction sets the kernel's partition_burst fraction (default
// 0.5, the paper's figure).
func WithBurstFraction(f float64) Option {
	return func(o *options) {
		if f > 0 {
			o.burst = f
		}
	}
}

// Server serves the wire protocol over TCP. It owns the kernel and its
// command loop; the backing store stays the caller's (close it after
// Close returns).
type Server struct {
	loop *core.Loop
	opts options

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg  sync.WaitGroup // accept loop + one handler per connection
	sem chan struct{}  // connection slots
}

// New assembles a realtime kernel over store (page size taken from the
// store) and wraps it in a command loop. Serve or ListenAndServe starts
// accepting.
func New(store substrate.Store, opts ...Option) *Server {
	o := defaults()
	for _, fn := range opts {
		fn(&o)
	}
	k := core.New(core.Config{
		Frames:        o.frames,
		PageSize:      store.PageSize(),
		BurstFraction: o.burst,
		Substrate:     substrate.Config{Kind: substrate.KindReal, Store: store},
	})
	return &Server{
		loop:  core.NewLoop(k),
		opts:  o,
		conns: make(map[net.Conn]struct{}),
		sem:   make(chan struct{}, o.maxConns),
	}
}

// Loop exposes the server's command loop for in-process callers (tests,
// mixed local+remote deployments). The loop is shared with the network —
// use Call/typed methods, never touch the kernel directly.
func (s *Server) Loop() *core.Loop { return s.loop }

// Addr reports the bound listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr ("host:port"; ":0" picks a port) and
// serves until Close. It returns once the listener is bound; accepting runs
// on a background goroutine. Use Addr for the bound address.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Serve accepts on a caller-provided listener until Close. Blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	s.acceptLoop(ln)
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.sem <- struct{}{} // connection slot (WithMaxConns)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			<-s.sem
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			s.handle(c)
		}()
	}
}

// Close stops accepting, closes live connections, waits for their handlers
// to drain (each frees its session's regions through the loop), then closes
// the loop. The store passed to New is untouched. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	s.loop.Close()
}

// forget drops a finished connection from the close set.
func (s *Server) forget(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// handle runs one connection: a reader goroutine decodes frames into a
// bounded queue; this goroutine batches them onto the loop and writes
// replies. On any exit path the session's regions are freed through the
// loop, so a connection kill mid-stream never leaks kernel state.
func (s *Server) handle(c net.Conn) {
	defer s.forget(c)
	defer c.Close()

	sess := core.NewCacheSession()
	defer func() {
		// The loop may already be closed during server shutdown; region
		// teardown is then part of kernel teardown and nothing leaks.
		_ = s.loop.Call(func(k *core.Kernel) error { sess.FreeAll(k); return nil })
	}()

	reqs := make(chan wire.Request, 4*s.opts.maxBatch)
	done := make(chan struct{}) // unblocks the reader if the batcher quits first
	defer close(done)
	go s.readLoop(c, reqs, done)

	out := bufio.NewWriter(c)
	batch := make([]wire.Request, 0, s.opts.maxBatch)
	var reply []byte
	var window *time.Timer
	for {
		first, ok := <-reqs
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		// Fill the batch from what has already arrived; with a window,
		// linger for stragglers.
		if s.opts.batchWindow > 0 && len(batch) < s.opts.maxBatch {
			if window == nil {
				window = time.NewTimer(s.opts.batchWindow)
				defer window.Stop()
			} else {
				window.Reset(s.opts.batchWindow)
			}
		fill:
			for len(batch) < s.opts.maxBatch {
				select {
				case r, ok := <-reqs:
					if !ok {
						break fill
					}
					batch = append(batch, r)
				case <-window.C:
					break fill
				}
			}
			if !window.Stop() {
				select {
				case <-window.C:
				default:
				}
			}
		} else {
		drain:
			for len(batch) < s.opts.maxBatch {
				select {
				case r, ok := <-reqs:
					if !ok {
						break drain
					}
					batch = append(batch, r)
				default:
					break drain
				}
			}
		}

		// One Loop hop for the whole batch.
		reply = reply[:0]
		err := s.loop.Call(func(k *core.Kernel) error {
			for _, req := range batch {
				reply = s.execute(k, sess, req, reply)
			}
			return nil
		})
		if err != nil {
			return // loop closed: server shutting down
		}
		if _, err := out.Write(reply); err != nil {
			return
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// readLoop decodes frames off the connection into reqs until the peer goes
// away or sends garbage; either way the channel closes and the batcher
// finishes what it has.
func (s *Server) readLoop(c net.Conn, reqs chan<- wire.Request, done <-chan struct{}) {
	defer close(reqs)
	in := bufio.NewReaderSize(c, 64*1024)
	hello := false
	for {
		// Each frame gets its own buffer: requests are queued past the
		// read, so the payload (policy source, write data) must survive.
		// Allocation stays bounded by wire.MaxFrame per frame.
		frame, err := wire.ReadFrame(in, nil)
		if err != nil {
			return // EOF, reset, or malformed prefix — drop the conn
		}
		req, err := wire.DecodeRequest(frame)
		if err != nil {
			return // protocol violation: no recovery mid-stream
		}
		if !hello {
			if req.Op != wire.OpHello || req.Magic != wire.Magic || req.Version != wire.Version {
				return
			}
			hello = true
		}
		select {
		case reqs <- req:
		case <-done:
			return
		}
	}
}

// execute applies one decoded request against the kernel (on the engine
// goroutine) and appends its reply frame to dst.
func (s *Server) execute(k *core.Kernel, sess *core.CacheSession, req wire.Request, dst []byte) []byte {
	fail := func(err error) []byte {
		return wire.AppendErrorResp(dst, req.Seq, wire.StatusFor(err), err.Error())
	}
	switch req.Op {
	case wire.OpHello:
		return wire.AppendHelloResp(dst, req.Seq, uint32(k.VM.PageSize()))
	case wire.OpOpen:
		var opts []core.RegionOption
		if req.Source != "" {
			opts = append(opts, core.WithPolicySource(req.Name, req.Source))
		}
		if req.Retry > 0 {
			opts = append(opts, core.WithRegionRetryBudget(int(req.Retry)))
		}
		r, err := sess.Open(k, int(req.Pages), opts...)
		if err != nil {
			return fail(err)
		}
		return wire.AppendOpenResp(dst, req.Seq, uint32(r))
	case wire.OpFree:
		if err := sess.Free(k, core.RegionID(req.Region)); err != nil {
			return fail(err)
		}
		return wire.AppendAck(dst, req.Seq)
	case wire.OpWrite:
		if err := sess.Write(k, core.RegionID(req.Region), int(req.Page), req.Data); err != nil {
			return fail(err)
		}
		return wire.AppendAck(dst, req.Seq)
	case wire.OpRead:
		maxLen := int(req.MaxLen)
		if maxLen > k.VM.PageSize() {
			maxLen = k.VM.PageSize()
		}
		buf := make([]byte, maxLen)
		n, err := sess.Read(k, core.RegionID(req.Region), int(req.Page), buf)
		if err != nil {
			return fail(err)
		}
		return wire.AppendReadResp(dst, req.Seq, buf[:n])
	case wire.OpTouch:
		if err := sess.Touch(k, core.RegionID(req.Region), int(req.Page)); err != nil {
			return fail(err)
		}
		return wire.AppendAck(dst, req.Seq)
	case wire.OpStats:
		cs := sess.Stats(k)
		return wire.AppendStatsResp(dst, req.Seq, wire.Stats{
			Accesses: cs.Accesses, Hits: cs.Hits, Faults: cs.Faults,
			PageIns: cs.PageIns, ZeroFills: cs.ZeroFills, PageOuts: cs.PageOuts,
			Evictions: cs.Evictions, StorePages: cs.StorePages,
		})
	}
	return fail(fmt.Errorf("server: unhandled op %d: %w", req.Op, errUnhandled))
}

// errUnhandled is unreachable while the decoder and this switch agree on
// the op set; it exists so a future op added to one but not the other fails
// loudly instead of silently.
var errUnhandled = errors.New("op decoded but not executable")
