// Package demo is the shared harness behind examples/realcache and
// examples/netcache: one stamp/verify cache workload written purely against
// the transport-agnostic hipec.Client seam, so the in-process original and
// its networked twin run literally the same client code — the only
// difference is the dial function handed in.
package demo

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"hipec"
)

// Config shapes the workload. Flags installs the shared flag set so both
// examples accept the same knobs.
type Config struct {
	Clients int // concurrent clients (each gets its own Client via dial)
	Pages   int // region size per client in pages
	Rounds  int // passes over each region; round 0 stamps, later rounds verify
	Frames  int // suggested kernel frames (Clients*Pages/2 when 0)
	Pool    int // per-region policy frame pool (minframe)
}

// Flags registers the workload's flags on fs with cfg's values as defaults
// and returns pointers bound to a fresh Config.
func Flags(fs *flag.FlagSet, def Config) *Config {
	cfg := &Config{}
	fs.IntVar(&cfg.Clients, "clients", def.Clients, "concurrent cache clients")
	fs.IntVar(&cfg.Pages, "pages", def.Pages, "pages per client region")
	fs.IntVar(&cfg.Rounds, "rounds", def.Rounds, "rounds per client (round 0 stamps, later rounds verify)")
	fs.IntVar(&cfg.Pool, "pool", def.Pool, "policy frame pool per region (minframe)")
	return cfg
}

// KernelFrames returns the machine size the workload wants: half the
// fleet's total working set, so the store works hard.
func (c Config) KernelFrames() int {
	if c.Frames > 0 {
		return c.Frames
	}
	f := c.Clients * c.Pages / 2
	if f < 64 {
		f = 64
	}
	return f
}

// Result is one run's outcome.
type Result struct {
	Verified int           // payload round trips that came back intact
	Elapsed  time.Duration // wall time for the client fleet
	Stats    hipec.CacheStats
}

// Run drives cfg.Clients concurrent clients, each obtained from dial and
// released via the returned cleanup. Every client opens one region under
// the paper's Figure 4 policy (FIFO with a second chance), stamps each page
// with a recognizable two-byte payload on round 0, and on later rounds
// verifies the payload survived its round trips through the backing store.
// The final Stats snapshot is taken through the last client before its
// cleanup runs.
func Run(cfg Config, dial func(id int) (hipec.Client, func(), error)) (Result, error) {
	if cfg.Clients <= 0 || cfg.Pages <= 0 || cfg.Rounds <= 0 {
		return Result{}, fmt.Errorf("demo: bad config %+v", cfg)
	}
	pool := cfg.Pool
	if pool <= 0 {
		pool = 16
	}
	policy := hipec.PolicyFIFOSecondChanceSource(pool)

	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		verified int
		firstErr error
		stats    hipec.CacheStats
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cli, done, err := dial(id)
			if err != nil {
				fail(fmt.Errorf("client %d: dial: %w", id, err))
				return
			}
			defer done()
			region, err := cli.Open(cfg.Pages,
				hipec.WithPolicySource("fifo-2nd-chance", policy))
			if err != nil {
				fail(fmt.Errorf("client %d: open: %w", id, err))
				return
			}
			stamp := byte(id + 1)
			buf := make([]byte, 2)
			for round := 0; round < cfg.Rounds; round++ {
				for i := 0; i < cfg.Pages; i++ {
					if round == 0 {
						if err := cli.WritePage(region, i, []byte{stamp, byte(i)}); err != nil {
							fail(fmt.Errorf("client %d page %d: write: %w", id, i, err))
							return
						}
						continue
					}
					n, err := cli.ReadPage(region, i, buf)
					if err != nil {
						fail(fmt.Errorf("client %d page %d: read: %w", id, i, err))
						return
					}
					if n < 2 || buf[0] != stamp || buf[1] != byte(i) {
						fail(fmt.Errorf("client %d page %d: payload corrupt: % x", id, i, buf[:n]))
						return
					}
					mu.Lock()
					verified++
					mu.Unlock()
				}
			}
			// Read-only probes of the hot tail: hits served without I/O.
			for i := cfg.Pages - 4; i >= 0 && i < cfg.Pages; i++ {
				if err := cli.TouchPage(region, i); err != nil {
					fail(fmt.Errorf("client %d: hot-tail touch %d: %w", id, i, err))
					return
				}
			}
			if id == cfg.Clients-1 {
				s, err := cli.Stats()
				if err != nil {
					fail(fmt.Errorf("client %d: stats: %w", id, err))
					return
				}
				mu.Lock()
				stats = s
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}
	return Result{Verified: verified, Elapsed: time.Since(start), Stats: stats}, nil
}

// Report renders the run like the original realcache banner.
func (r Result) Report(cfg Config, label string) string {
	s := r.Stats
	return fmt.Sprintf(
		"%d %s clients x %d pages x %d rounds in %v (wall clock)\n"+
			"  accesses %d: %d hits, %d faults (%d page-ins, %d zero-fills)\n"+
			"  page-outs %d; store now holds %d pages\n"+
			"  payload integrity: %d pages verified after store round trips\n",
		cfg.Clients, label, cfg.Pages, cfg.Rounds, r.Elapsed.Round(time.Millisecond),
		s.Accesses, s.Hits, s.Faults, s.PageIns, s.ZeroFills,
		s.PageOuts, s.StorePages, r.Verified)
}
