package demo

import (
	"testing"

	"hipec"
)

// The harness itself, driven through the in-process client: every stamped
// page must verify on every later round.
func TestRunInProcess(t *testing.T) {
	cfg := Config{Clients: 2, Pages: 8, Rounds: 3, Pool: 4}
	k := hipec.New(hipec.Config{
		Frames:        cfg.KernelFrames(),
		PageSize:      4096,
		BurstFraction: 0.5,
		Substrate:     hipec.SubstrateConfig{Kind: hipec.SubstrateReal},
	})
	client := hipec.NewClient(k)
	defer client.Close()

	res, err := Run(cfg, func(int) (hipec.Client, func(), error) {
		return client, func() {}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Clients * cfg.Pages * (cfg.Rounds - 1)
	if res.Verified != want {
		t.Fatalf("verified %d pages, want %d", res.Verified, want)
	}
	if res.Stats.Faults == 0 {
		t.Fatalf("stats show no traffic: %+v", res.Stats)
	}
	if rep := res.Report(cfg, "test"); rep == "" {
		t.Fatal("empty report")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Fatal("zero config accepted")
	}
}
