package simtime

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// runBoth runs the same scripted scenario against a wheel clock and a heap
// clock and fails if their observable traces differ. The scenario callback
// receives the clock and an emit function for recording observations.
func runBoth(t *testing.T, name string, scenario func(c *Clock, emit func(string))) {
	t.Helper()
	traces := make(map[Scheduler][]string)
	for _, sched := range []Scheduler{SchedWheel, SchedHeap} {
		c := NewClockSched(sched)
		var trace []string
		scenario(c, func(s string) { trace = append(trace, s) })
		traces[sched] = trace
	}
	w, h := traces[SchedWheel], traces[SchedHeap]
	if len(w) != len(h) {
		t.Fatalf("%s: wheel trace has %d entries, heap %d", name, len(w), len(h))
	}
	for i := range w {
		if w[i] != h[i] {
			t.Fatalf("%s: trace diverges at %d:\n  wheel: %s\n  heap:  %s", name, i, w[i], h[i])
		}
	}
}

// TestWheelHeapDifferentialRandom drives both schedulers through identical
// random schedule/cancel/advance/drain sequences and requires identical
// firing traces — timestamps, FIFO order among equal timestamps, pending
// counts, and clock positions.
func TestWheelHeapDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runBoth(t, "random", func(c *Clock, emit func(string)) {
				rng := rand.New(rand.NewSource(seed))
				var live []*Event
				id := 0
				for op := 0; op < 400; op++ {
					switch rng.Intn(10) {
					case 0, 1, 2, 3: // schedule
						id++
						eid := id
						// Mix of near, far, and beyond-horizon delays to
						// exercise every wheel level and the overflow list.
						var d Duration
						switch rng.Intn(4) {
						case 0:
							d = Duration(rng.Int63n(64)) // level 0
						case 1:
							d = Duration(rng.Int63n(1 << 18)) // mid levels
						case 2:
							d = Duration(rng.Int63n(1 << 40)) // high levels
						case 3:
							d = Duration(1<<50 + rng.Int63n(1<<50)) // overflow
						}
						live = append(live, c.After(d, func(now Time) {
							emit(fmt.Sprintf("fire %d at %v", eid, now))
						}))
					case 4: // cancel a random live handle
						if len(live) > 0 {
							i := rng.Intn(len(live))
							emit(fmt.Sprintf("cancel -> %v", c.Cancel(live[i])))
							live = append(live[:i], live[i+1:]...)
						}
					case 5, 6, 7: // advance
						c.Advance(Duration(rng.Int63n(1 << 20)))
						// Fired handles are recycled; drop stale references.
						live = live[:0]
						emit(fmt.Sprintf("now %v pending %d", c.Now(), c.Pending()))
					case 8: // run one event
						emit(fmt.Sprintf("runnext %v now %v", c.RunNext(), c.Now()))
						live = live[:0]
					case 9: // peek
						when, ok := c.PeekNext()
						emit(fmt.Sprintf("peek %v %v", when, ok))
					}
				}
				emit(fmt.Sprintf("drain %d end %v", c.Drain(0), c.Now()))
			})
		})
	}
}

// TestWheelHeapDifferentialNestedAdvance exercises the pastDue machinery:
// a callback performs a nested advance that jumps the clock past pending
// events, which must still fire afterwards in (when, seq) order on both
// backends.
func TestWheelHeapDifferentialNestedAdvance(t *testing.T) {
	runBoth(t, "nested", func(c *Clock, emit func(string)) {
		for i, d := range []Duration{5, 10, 15, 70, 200, 1 << 30} {
			i := i
			c.After(d, func(now Time) { emit(fmt.Sprintf("fire %d at %v", i, now)) })
		}
		// The event at t=5 sleeps re-entrantly far past every other
		// pending event, stranding them all.
		c.After(5, func(Time) {
			c.Sleep(1 << 31)
			emit(fmt.Sprintf("nested slept to %v", c.Now()))
		})
		// Schedule during the nested window too.
		c.After(10, func(Time) {
			c.After(3, func(now Time) { emit(fmt.Sprintf("late fire at %v", now)) })
		})
		c.Advance(1 << 32)
		emit(fmt.Sprintf("end %v pending %d", c.Now(), c.Pending()))
	})
}

// TestWheelHeapDifferentialEqualTimestamps pins FIFO tie-breaking across
// backends when many events share deadlines, including events scheduled at
// the current instant.
func TestWheelHeapDifferentialEqualTimestamps(t *testing.T) {
	runBoth(t, "ties", func(c *Clock, emit func(string)) {
		for i := 0; i < 8; i++ {
			i := i
			c.After(100, func(now Time) { emit(fmt.Sprintf("a%d %v", i, now)) })
			c.After(50, func(now Time) { emit(fmt.Sprintf("b%d %v", i, now)) })
			c.At(c.Now(), func(now Time) { emit(fmt.Sprintf("imm%d %v", i, now)) })
		}
		c.Advance(100)
		emit(c.Now().String())
	})
}

func TestWheelOverflowEventsFire(t *testing.T) {
	c := NewClockSched(SchedWheel)
	const far = Duration(1) << 52 // beyond the 64^8 ns horizon
	fired := false
	c.After(far, func(now Time) { fired = true })
	c.Advance(far - 1)
	if fired {
		t.Fatal("overflow event fired early")
	}
	c.Advance(1)
	if !fired {
		t.Fatal("overflow event never fired")
	}
}

// TestCancelledEventsAreRecycled pins the satellite fix for event
// retention: cancelled timers must return to the freelist (not stay
// pinned by heap slices or wheel slots), and the freelist must actually be
// reused by subsequent schedules.
func TestCancelledEventsAreRecycled(t *testing.T) {
	for _, sched := range []Scheduler{SchedWheel, SchedHeap} {
		c := NewClockSched(sched)
		evs := make([]*Event, 100)
		for i := range evs {
			evs[i] = c.After(Duration(i+1), func(Time) {})
		}
		for _, e := range evs {
			c.Cancel(e)
		}
		if got := c.FreelistLen(); got != 100 {
			t.Fatalf("%v: FreelistLen after 100 cancels = %d, want 100", sched, got)
		}
		e := c.After(1, func(Time) {})
		if got := c.FreelistLen(); got != 99 {
			t.Fatalf("%v: FreelistLen after reuse = %d, want 99", sched, got)
		}
		if e != evs[99] {
			t.Fatalf("%v: schedule did not reuse the freelist head", sched)
		}
	}
}

// TestSteadyStateTimerLoopDoesNotAllocate pins the hot-path contract: a
// schedule/fire cycle (the shape of disk completions and daemon wakeups)
// runs allocation-free once the freelist is primed. The callback closure
// is hoisted outside the loop — closures capturing loop state would
// allocate in the caller, not the clock.
func TestSteadyStateTimerLoopDoesNotAllocate(t *testing.T) {
	for _, sched := range []Scheduler{SchedWheel, SchedHeap} {
		c := NewClockSched(sched)
		fired := 0
		fn := func(Time) { fired++ }
		c.After(1, fn)
		c.Advance(1) // prime the freelist
		avg := testing.AllocsPerRun(1000, func() {
			c.After(7, fn)
			c.Advance(7)
		})
		if avg != 0 {
			t.Fatalf("%v: schedule/fire cycle allocates %.1f/op, want 0", sched, avg)
		}
		avg = testing.AllocsPerRun(1000, func() {
			c.Cancel(c.After(1<<40, fn))
		})
		if avg != 0 {
			t.Fatalf("%v: schedule/cancel cycle allocates %.1f/op, want 0", sched, avg)
		}
	}
}

// TestFreelistIsBounded guards against the pool itself becoming a leak.
func TestFreelistIsBounded(t *testing.T) {
	c := NewClock()
	for i := 0; i < 10*maxFreelist; i++ {
		c.Cancel(c.After(1, func(Time) {}))
	}
	if got := c.FreelistLen(); got > maxFreelist {
		t.Fatalf("FreelistLen = %d, want <= %d", got, maxFreelist)
	}
}

// TestHeapPopClearsSlot guards the retention fix on the reference backend:
// firing all events must leave no *Event pointers behind in the heap
// slice's spare capacity.
func TestHeapPopClearsSlot(t *testing.T) {
	c := NewClockSched(SchedHeap)
	for i := 0; i < 32; i++ {
		c.After(Duration(i+1), func(Time) {})
	}
	c.Advance(100)
	spare := c.events[:cap(c.events)]
	for i, e := range spare {
		if e != nil {
			t.Fatalf("heap slice slot %d still holds an event after drain", i)
		}
	}
}

func TestSchedulerByName(t *testing.T) {
	if s, ok := SchedulerByName("heap"); !ok || s != SchedHeap {
		t.Fatal("heap")
	}
	if s, ok := SchedulerByName("wheel"); !ok || s != SchedWheel {
		t.Fatal("wheel")
	}
	if _, ok := SchedulerByName("bogus"); ok {
		t.Fatal("bogus accepted")
	}
	if SchedWheel.String() != "wheel" || SchedHeap.String() != "heap" {
		t.Fatal("String")
	}
}

func TestDefaultSchedulerSwitch(t *testing.T) {
	old := DefaultScheduler()
	defer SetDefaultScheduler(old)
	SetDefaultScheduler(SchedHeap)
	if NewClock().SchedulerKind() != SchedHeap {
		t.Fatal("NewClock ignored default heap")
	}
	SetDefaultScheduler(SchedWheel)
	if NewClock().SchedulerKind() != SchedWheel {
		t.Fatal("NewClock ignored default wheel")
	}
}

func BenchmarkSchedulerScheduleFire(b *testing.B) {
	for _, sched := range []Scheduler{SchedWheel, SchedHeap} {
		b.Run(sched.String(), func(b *testing.B) {
			c := NewClockSched(sched)
			fn := func(Time) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.After(100*time.Microsecond, fn)
				c.Advance(100 * time.Microsecond)
			}
		})
	}
}

// BenchmarkSchedulerPendingSet measures schedule/fire with a standing set
// of outstanding timers (the multi-container steady state).
func BenchmarkSchedulerPendingSet(b *testing.B) {
	for _, sched := range []Scheduler{SchedWheel, SchedHeap} {
		b.Run(sched.String(), func(b *testing.B) {
			c := NewClockSched(sched)
			fn := func(Time) {}
			for i := 0; i < 256; i++ {
				c.After(Duration(1+i)*time.Millisecond, fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.After(50*time.Microsecond, fn)
				c.Advance(50 * time.Microsecond)
			}
		})
	}
}
