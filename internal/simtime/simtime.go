// Package simtime provides the deterministic virtual time base used by the
// simulated kernel: a monotonic clock measured in nanoseconds plus a
// discrete-event queue of scheduled callbacks (pageout-daemon wakeups,
// security-checker wakeups, disk completions).
//
// All kernel activity is serialized on one Clock, which makes every
// experiment in this repository bit-for-bit reproducible: elapsed times
// reported by the harness are virtual nanoseconds accumulated from the
// calibrated cost constants, not wall-clock measurements.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute virtual time in nanoseconds since kernel boot.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration (which is also nanoseconds).
type Duration = time.Duration

// String formats the time as a duration since boot.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Event is a scheduled callback. Events fire in timestamp order; events with
// equal timestamps fire in scheduling order (FIFO), which keeps the
// simulation deterministic.
type Event struct {
	when     Time
	seq      uint64
	fn       func(now Time)
	index    int // heap index, -1 once removed
	canceled bool
}

// When reports the virtual time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// eventHeap implements heap.Interface ordered by (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is a virtual clock with an attached discrete-event queue.
// The zero value is not usable; call NewClock.
type Clock struct {
	now    Time
	seq    uint64
	events eventHeap
	// dispatching guards against RunUntil re-entrancy from callbacks.
	dispatching bool
}

// NewClock returns a clock positioned at time zero with an empty queue.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d, firing any events that become due.
// Advancing by a negative duration panics: the clock is monotonic.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %v", d))
	}
	c.RunUntil(c.now.Add(d))
}

// Sleep is an alias for Advance; it reads better at call sites that model a
// blocking delay (e.g. a synchronous disk read).
func (c *Clock) Sleep(d Duration) { c.Advance(d) }

// After schedules fn to run d from now and returns the event handle, which
// may be used to Cancel it. fn runs with the clock set to its fire time.
func (c *Clock) After(d Duration, fn func(now Time)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", d))
	}
	return c.At(c.now.Add(d), fn)
}

// At schedules fn at absolute time t (>= Now) and returns the event handle.
func (c *Clock) At(t Time, fn func(now Time)) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simtime: schedule at %v before now %v", t, c.now))
	}
	if fn == nil {
		panic("simtime: nil event callback")
	}
	e := &Event{when: t, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.events, e)
	return e
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op. It reports whether the event was
// pending.
func (c *Clock) Cancel(e *Event) bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	heap.Remove(&c.events, e.index)
	return true
}

// Pending reports the number of scheduled (not yet fired) events.
func (c *Clock) Pending() int { return len(c.events) }

// PeekNext reports the timestamp of the earliest pending event without
// firing it. Callers that batch virtual-time charges (the policy executor)
// use it to advance exactly to event boundaries so scheduled callbacks
// observe the same clock they would under fine-grained charging.
func (c *Clock) PeekNext() (Time, bool) {
	if len(c.events) == 0 {
		return 0, false
	}
	return c.events[0].when, true
}

// RunUntil fires all events scheduled at or before t, in order, then sets
// the clock to t. Callbacks may schedule further events; those are honored
// if they fall within the window. A nested call from within an event
// callback (e.g. a callback that charges simulated CPU time) only moves the
// clock forward; newly due events fire when control returns to the outer
// dispatch loop or on the next top-level advance.
func (c *Clock) RunUntil(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("simtime: RunUntil %v before now %v", t, c.now))
	}
	if c.dispatching {
		c.now = t
		return
	}
	c.dispatching = true
	defer func() { c.dispatching = false }()
	for len(c.events) > 0 && c.events[0].when <= t {
		e := heap.Pop(&c.events).(*Event)
		// A nested advance inside a callback may already have moved the
		// clock past this event's timestamp; never step backwards.
		if e.when > c.now {
			c.now = e.when
		}
		e.fn(c.now)
	}
	if t > c.now {
		c.now = t
	}
}

// RunNext fires the single earliest pending event (advancing the clock to
// its timestamp) and reports whether one existed. Useful for draining a
// simulation to quiescence.
func (c *Clock) RunNext() bool {
	if c.dispatching {
		panic("simtime: RunNext called re-entrantly from an event callback")
	}
	if len(c.events) == 0 {
		return false
	}
	c.dispatching = true
	e := heap.Pop(&c.events).(*Event)
	if e.when > c.now {
		c.now = e.when
	}
	e.fn(c.now)
	c.dispatching = false
	return true
}

// Drain runs events until the queue is empty or limit events have fired.
// It returns the number of events fired. A limit of 0 means no limit.
func (c *Clock) Drain(limit int) int {
	fired := 0
	for c.RunNext() {
		fired++
		if limit > 0 && fired >= limit {
			break
		}
	}
	return fired
}
