// Package simtime provides the deterministic virtual time base used by the
// simulated kernel: a monotonic clock measured in nanoseconds plus a
// discrete-event queue of scheduled callbacks (pageout-daemon wakeups,
// security-checker wakeups, disk completions).
//
// All kernel activity is serialized on one Clock, which makes every
// experiment in this repository bit-for-bit reproducible: elapsed times
// reported by the harness are virtual nanoseconds accumulated from the
// calibrated cost constants, not wall-clock measurements.
//
// Two scheduler backends implement the event queue behind the same Clock
// API. The default is a hierarchical timer wheel (O(1) schedule/cancel,
// bitmap-guided pop); the original container/heap implementation is
// retained as the reference scheduler (`experiments -timer=heap`) and the
// two are held equivalent by a differential test over random
// schedule/cancel/advance sequences. Fired and cancelled events are
// recycled through a per-clock freelist, so the steady-state fault path
// (disk completions, daemon wakeups) schedules timers without allocating
// and cancelled timers do not pin memory.
package simtime

import (
	"container/heap"
	"fmt"
	"math/bits"
	"time"
)

// Time is an absolute virtual time in nanoseconds since kernel boot.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration (which is also nanoseconds).
type Duration = time.Duration

// String formats the time as a duration since boot.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Scheduler selects the event-queue backend of a Clock.
type Scheduler uint8

const (
	// SchedWheel is the hierarchical timer wheel (the default).
	SchedWheel Scheduler = iota
	// SchedHeap is the container/heap reference implementation.
	SchedHeap
)

// String names the scheduler (the -timer flag values).
func (s Scheduler) String() string {
	if s == SchedHeap {
		return "heap"
	}
	return "wheel"
}

// SchedulerByName resolves a -timer flag value; ok is false for unknown
// names.
func SchedulerByName(name string) (Scheduler, bool) {
	switch name {
	case "wheel":
		return SchedWheel, true
	case "heap":
		return SchedHeap, true
	}
	return SchedWheel, false
}

// defaultScheduler is the backend NewClock uses. It is set once at process
// startup (the experiments -timer flag) before any kernels are built;
// concurrent sweep cells only read it.
var defaultScheduler = SchedWheel

// SetDefaultScheduler selects the backend for subsequently constructed
// clocks. Call it before building kernels; it is not synchronized against
// concurrent NewClock calls.
func SetDefaultScheduler(s Scheduler) { defaultScheduler = s }

// DefaultScheduler reports the backend NewClock will use.
func DefaultScheduler() Scheduler { return defaultScheduler }

// Event is a scheduled callback. Events fire in timestamp order; events with
// equal timestamps fire in scheduling order (FIFO), which keeps the
// simulation deterministic.
//
// Event handles are recycled through the owning clock's freelist once they
// fire or are cancelled; callers must not retain a handle past its firing
// (Cancel on a retained stale handle could cancel an unrelated later
// timer).
type Event struct {
	when     Time
	seq      uint64
	fn       func(now Time)
	canceled bool

	// Heap scheduler state.
	index int // heap index, -1 once removed

	// Wheel scheduler state: intrusive doubly-linked slot-list membership
	// plus the (level, slot) the event was filed under. level is noLevel
	// when not on the wheel, overflowLevel for the beyond-horizon list.
	prev, next *Event
	level      int8
	slot       uint8
}

// When reports the virtual time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// --- heap scheduler ---------------------------------------------------------

// eventHeap implements heap.Interface ordered by (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	// Nil the vacated tail slot so the backing array does not keep the
	// popped event reachable: a fired or cancelled timer must be
	// recyclable immediately, not pinned by stale heap storage.
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// --- wheel scheduler --------------------------------------------------------

// The wheel is a hashed hierarchical timing wheel (Varghese & Lauck):
// wheelLevels levels of wheelSlots slots, with level-L slots spanning
// wheelSlots^L nanoseconds. An event is filed, at scheduling time, on the
// lowest level where it lies within one wheel revolution of the current
// time. Events never cascade down levels: the pop path locates the global
// minimum directly from per-level occupancy bitmaps, so firing order is
// exactly the (when, seq) order the heap reference produces, and advancing
// the clock costs nothing per empty tick.
//
// Slot lists are intrusive and kept in ascending seq order (insertion is an
// append; seq is monotonic). Level-0 slots hold a single timestamp, so
// their head is the slot minimum; higher-level slots span a window and are
// scanned.
const (
	wheelBits     = 6
	wheelSlots    = 1 << wheelBits // 64
	wheelMask     = wheelSlots - 1
	wheelLevels   = 8 // horizon: 64^8 ns ≈ 78 hours of virtual time
	overflowLevel = wheelLevels
	pastDueLevel  = wheelLevels + 1
	noLevel       = -1
)

// eventList is an intrusive doubly-linked list of events (one wheel slot).
type eventList struct {
	head, tail *Event
}

func (l *eventList) append(e *Event) {
	e.prev = l.tail
	e.next = nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
}

func (l *eventList) remove(e *Event) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

type timerWheel struct {
	slots [wheelLevels][wheelSlots]eventList
	// occupied tracks non-empty slots per level; slot scans are bitmap
	// operations, not 64-entry walks.
	occupied [wheelLevels]uint64
	// overflow holds events beyond the wheel horizon (seq order).
	overflow eventList
	// pastDue holds events stranded behind the clock by a nested advance
	// (see Clock.strandOverdue), kept in ascending (when, seq) order so
	// its head is its minimum.
	pastDue eventList
	count   int
}

// levelFor returns the wheel level for an event at when given now (with
// when >= now), or overflowLevel. The chosen level L is the smallest whose
// slot distance (when>>6L) - (now>>6L) is under one revolution. This —
// rather than the naive delta < 64^(L+1) — guarantees that within a level
// no slot holds events from both the current and the next revolution, so
// circular slot order from now's cursor equals time order: the property
// the min-scan relies on.
//
// Computed in O(1): the lowest level sharing a parent window is given by
// the highest differing bit of when and now; the only other candidate is
// one level below, where the windows differ but by fewer than 64 slots
// (any lower level differs by >= 64 slots).
func levelFor(when, now Time) int8 {
	diff := uint64(when ^ now)
	if diff < wheelSlots {
		return 0
	}
	l := int8((bits.Len64(diff) - 1) / wheelBits)
	if shift := wheelBits * uint(l-1); (when>>shift)-(now>>shift) < wheelSlots {
		l--
	}
	if l >= wheelLevels {
		return overflowLevel
	}
	return l
}

func (w *timerWheel) listFor(e *Event) *eventList {
	switch e.level {
	case overflowLevel:
		return &w.overflow
	case pastDueLevel:
		return &w.pastDue
	}
	return &w.slots[e.level][e.slot]
}

func (w *timerWheel) schedule(e *Event, now Time) {
	l := levelFor(e.when, now)
	e.level = l
	if l == overflowLevel {
		w.overflow.append(e)
	} else {
		s := uint8(e.when>>(wheelBits*uint(l))) & wheelMask
		e.slot = s
		w.slots[l][s].append(e)
		w.occupied[l] |= 1 << s
	}
	w.count++
}

// unlink removes a still-filed event from its slot list, maintaining the
// occupancy bitmap.
func (w *timerWheel) unlink(e *Event) {
	list := w.listFor(e)
	list.remove(e)
	if e.level < wheelLevels && list.head == nil {
		w.occupied[e.level] &^= 1 << e.slot
	}
	e.level = noLevel
	w.count--
}

// scanMin returns the pending event minimizing (when, seq), or nil.
//
// Correctness relies on the invariant that every slot-filed event has
// when >= now: filing guarantees window distance < one revolution, the
// clock is monotonic, and events that would fall behind now are moved to
// pastDue first (strandOverdue). Under that invariant, circular slot order
// from now's cursor equals time order within a level, a level-0 slot holds
// a single timestamp (so its seq-ordered head is its minimum), and the
// level minimum of a higher level lives in its first occupied slot.
func (w *timerWheel) scanMin(now Time) *Event {
	return w.scanFiled(now, w.pastDue.head) // sorted; head is the pastDue min
}

// scanFiled scans the wheel slots and overflow list (not pastDue) for the
// (when, seq) minimum, seeded with best (may be nil).
func (w *timerWheel) scanFiled(now Time, best *Event) *Event {
	for l := 0; l < wheelLevels; l++ {
		occ := w.occupied[l]
		if occ == 0 {
			continue
		}
		cur := uint(now>>(wheelBits*uint(l))) & wheelMask
		// First occupied slot at or after the cursor, wrapping around.
		var s int
		if m := occ >> cur; m != 0 {
			s = int(cur) + bits.TrailingZeros64(m)
		} else {
			s = bits.TrailingZeros64(occ)
		}
		list := &w.slots[l][s]
		if l == 0 {
			// A level-0 slot holds a single timestamp; its head has the
			// minimum seq (lists are seq-ordered).
			if e := list.head; better(e, best) {
				best = e
			}
			continue
		}
		// Higher-level slots span a window: scan the slot list.
		for e := list.head; e != nil; e = e.next {
			if better(e, best) {
				best = e
			}
		}
	}
	for e := w.overflow.head; e != nil; e = e.next {
		if better(e, best) {
			best = e
		}
	}
	return best
}

func better(e, best *Event) bool {
	return best == nil || e.when < best.when || (e.when == best.when && e.seq < best.seq)
}

// Clock is a virtual clock with an attached discrete-event queue.
// The zero value is not usable; call NewClock.
type Clock struct {
	now   Time
	seq   uint64
	sched Scheduler

	events eventHeap   // heap backend
	wheel  *timerWheel // wheel backend (nil under SchedHeap)

	// nextEvent caches the earliest pending event (meaningful when
	// nextValid; nil means the queue is empty). The Advance/Sleep fast
	// path — charging fault-service time with no timer due — is then a
	// compare and an add with no queue access, and popping the cached
	// event skips re-scanning the wheel.
	nextEvent *Event
	nextValid bool

	// freelist recycles fired/cancelled events, linked through next.
	freelist  *Event
	freeCount int

	// dispatching guards against RunUntil re-entrancy from callbacks.
	dispatching bool
}

// maxFreelist bounds the number of recycled events pooled per clock.
const maxFreelist = 256

// NewClock returns a clock positioned at time zero with an empty queue,
// using the process-default scheduler backend.
func NewClock() *Clock { return NewClockSched(defaultScheduler) }

// NewClockSched returns a clock using the given scheduler backend.
func NewClockSched(s Scheduler) *Clock {
	c := &Clock{sched: s}
	if s == SchedWheel {
		c.wheel = &timerWheel{}
	}
	return c
}

// SchedulerKind reports the clock's event-queue backend.
func (c *Clock) SchedulerKind() Scheduler { return c.sched }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d, firing any events that become due.
// Advancing by a negative duration panics: the clock is monotonic.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %v", d))
	}
	c.RunUntil(c.now.Add(d))
}

// Sleep is an alias for Advance; it reads better at call sites that model a
// blocking delay (e.g. a synchronous disk read).
func (c *Clock) Sleep(d Duration) { c.Advance(d) }

// After schedules fn to run d from now and returns the event handle, which
// may be used to Cancel it. fn runs with the clock set to its fire time.
func (c *Clock) After(d Duration, fn func(now Time)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative delay %v", d))
	}
	return c.At(c.now.Add(d), fn)
}

// At schedules fn at absolute time t (>= Now) and returns the event handle.
// The handle is recycled after the event fires or is cancelled; callers
// must not retain it past that point.
func (c *Clock) At(t Time, fn func(now Time)) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simtime: schedule at %v before now %v", t, c.now))
	}
	if fn == nil {
		panic("simtime: nil event callback")
	}
	e := c.newEvent()
	e.when, e.seq, e.fn = t, c.seq, fn
	c.seq++
	if c.sched == SchedHeap {
		heap.Push(&c.events, e)
	} else {
		c.wheel.schedule(e, c.now)
	}
	// Tighten the earliest-due cache only if it is currently valid; an
	// invalidated cache may be hiding an earlier pending event, which a
	// refresh will rediscover. Strict < keeps the FIFO tie-break: an
	// equal-deadline cached event has a smaller seq.
	if c.nextValid && (c.nextEvent == nil || t < c.nextEvent.when) {
		c.nextEvent = e
	}
	return e
}

// newEvent takes an event from the freelist or allocates one.
func (c *Clock) newEvent() *Event {
	if e := c.freelist; e != nil {
		c.freelist = e.next
		c.freeCount--
		*e = Event{index: -1, level: noLevel}
		return e
	}
	return &Event{index: -1, level: noLevel}
}

// recycle returns a detached event to the freelist. Clearing fn is what
// releases the callback's captures even while the shell of the event stays
// pooled (or, past the pool bound, is dropped to the collector).
func (c *Clock) recycle(e *Event) {
	if c.freeCount >= maxFreelist {
		e.fn = nil
		return
	}
	*e = Event{index: -1, level: noLevel, next: c.freelist}
	c.freelist = e
	c.freeCount++
}

// FreelistLen reports the number of recycled events currently pooled
// (exposed for leak/alloc tests).
func (c *Clock) FreelistLen() int { return c.freeCount }

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op (provided the handle has not been
// recycled into a new timer). It reports whether the event was pending.
func (c *Clock) Cancel(e *Event) bool {
	if e == nil || e.canceled {
		return false
	}
	if c.sched == SchedHeap {
		if e.index < 0 {
			return false
		}
		heap.Remove(&c.events, e.index)
	} else {
		if e.level == noLevel {
			return false
		}
		c.wheel.unlink(e)
	}
	e.canceled = true
	if c.nextValid && e == c.nextEvent {
		c.nextValid = false
		c.nextEvent = nil
	}
	c.recycle(e)
	return true
}

// Pending reports the number of scheduled (not yet fired) events.
func (c *Clock) Pending() int {
	if c.sched == SchedHeap {
		return len(c.events)
	}
	return c.wheel.count
}

// refreshNext recomputes the cached earliest event.
func (c *Clock) refreshNext() {
	if c.sched == SchedHeap {
		if len(c.events) == 0 {
			c.nextEvent = nil
		} else {
			c.nextEvent = c.events[0]
		}
	} else {
		c.nextEvent = c.wheel.scanMin(c.now)
	}
	c.nextValid = true
}

// PeekNext reports the timestamp of the earliest pending event without
// firing it. Callers that batch virtual-time charges (the policy executor)
// use it to advance exactly to event boundaries so scheduled callbacks
// observe the same clock they would under fine-grained charging.
func (c *Clock) PeekNext() (Time, bool) {
	if !c.nextValid {
		c.refreshNext()
	}
	if c.nextEvent == nil {
		return 0, false
	}
	return c.nextEvent.when, true
}

// strandOverdue moves wheel events that a nested advance to t would leave
// behind the clock onto the pastDue list, preserving (when, seq) order.
// Slot filing is only scannable while when >= now; events the jump passes
// over must therefore be parked where the min-scan can still see them.
// Successive filed minima append in sorted order, and later strandings
// (from deeper nested jumps) only ever add events with larger whens.
func (c *Clock) strandOverdue(t Time) {
	w := c.wheel
	for {
		e := w.scanFiled(c.now, nil)
		if e == nil || e.when >= t {
			break
		}
		w.unlink(e)
		e.level = pastDueLevel
		w.pastDue.append(e)
		w.count++
		c.nextValid, c.nextEvent = false, nil
	}
}

// popNext removes and returns the earliest pending event, or nil, reusing
// the cached minimum so a refresh-then-pop sequence scans the queue once.
func (c *Clock) popNext() *Event {
	if !c.nextValid {
		c.refreshNext()
	}
	e := c.nextEvent
	if e == nil {
		return nil
	}
	if c.sched == SchedHeap {
		heap.Pop(&c.events) // the cached minimum is the root
	} else {
		c.wheel.unlink(e)
	}
	c.nextValid, c.nextEvent = false, nil
	return e
}

// RunUntil fires all events scheduled at or before t, in order, then sets
// the clock to t. Callbacks may schedule further events; those are honored
// if they fall within the window. A nested call from within an event
// callback (e.g. a callback that charges simulated CPU time) only moves the
// clock forward; newly due events fire when control returns to the outer
// dispatch loop or on the next top-level advance.
func (c *Clock) RunUntil(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("simtime: RunUntil %v before now %v", t, c.now))
	}
	if c.dispatching {
		if c.sched == SchedWheel {
			c.strandOverdue(t)
		}
		c.now = t
		return
	}
	// Fast path: nothing due inside the window.
	if !c.nextValid {
		c.refreshNext()
	}
	if c.nextEvent == nil || c.nextEvent.when > t {
		c.now = t
		return
	}
	c.dispatching = true
	defer func() { c.dispatching = false }()
	for {
		if !c.nextValid {
			c.refreshNext()
		}
		if c.nextEvent == nil || c.nextEvent.when > t {
			break
		}
		e := c.popNext()
		// A nested advance inside a callback may already have moved the
		// clock past this event's timestamp; never step backwards.
		if e.when > c.now {
			c.now = e.when
		}
		fn := e.fn
		c.recycle(e)
		fn(c.now)
	}
	if t > c.now {
		c.now = t
	}
}

// RunNext fires the single earliest pending event (advancing the clock to
// its timestamp) and reports whether one existed. Useful for draining a
// simulation to quiescence.
func (c *Clock) RunNext() bool {
	if c.dispatching {
		panic("simtime: RunNext called re-entrantly from an event callback")
	}
	e := c.popNext()
	if e == nil {
		return false
	}
	c.dispatching = true
	if e.when > c.now {
		c.now = e.when
	}
	fn := e.fn
	c.recycle(e)
	fn(c.now)
	c.dispatching = false
	return true
}

// Drain runs events until the queue is empty or limit events have fired.
// It returns the number of events fired. A limit of 0 means no limit.
func (c *Clock) Drain(limit int) int {
	fired := 0
	for c.RunNext() {
		fired++
		if limit > 0 && fired >= limit {
			break
		}
	}
	return fired
}
