package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestAdvanceMovesClock(t *testing.T) {
	c := NewClock()
	c.Advance(5 * time.Millisecond)
	if got := c.Now(); got != Time(5*time.Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.Advance(0)
	if got := c.Now(); got != Time(5*time.Millisecond) {
		t.Fatalf("Now() after zero advance = %v, want 5ms", got)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestAfterFiresAtDeadline(t *testing.T) {
	c := NewClock()
	var firedAt Time = -1
	c.After(10*time.Microsecond, func(now Time) { firedAt = now })
	c.Advance(9 * time.Microsecond)
	if firedAt != -1 {
		t.Fatalf("event fired early at %v", firedAt)
	}
	c.Advance(1 * time.Microsecond)
	if firedAt != Time(10*time.Microsecond) {
		t.Fatalf("event fired at %v, want 10µs", firedAt)
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	c := NewClock()
	var order []int
	c.After(30, func(Time) { order = append(order, 3) })
	c.After(10, func(Time) { order = append(order, 1) })
	c.After(20, func(Time) { order = append(order, 2) })
	c.Advance(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(5, func(Time) { order = append(order, i) })
	}
	c.Advance(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-timestamp order = %v, want FIFO", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := NewClock()
	fired := false
	e := c.After(10, func(Time) { fired = true })
	if !c.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if c.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
	c.Advance(20)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelNilIsNoop(t *testing.T) {
	c := NewClock()
	if c.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	c := NewClock()
	var fires []Time
	var reschedule func(now Time)
	reschedule = func(now Time) {
		fires = append(fires, now)
		if len(fires) < 5 {
			c.After(10, reschedule)
		}
	}
	c.After(10, reschedule)
	c.Advance(100)
	if len(fires) != 5 {
		t.Fatalf("got %d fires, want 5", len(fires))
	}
	for i, ft := range fires {
		if want := Time(10 * (i + 1)); ft != want {
			t.Fatalf("fire %d at %v, want %v", i, ft, want)
		}
	}
}

func TestCallbackSchedulingBeyondWindowDeferred(t *testing.T) {
	c := NewClock()
	fired := false
	c.After(10, func(Time) {
		c.After(100, func(Time) { fired = true })
	})
	c.Advance(50)
	if fired {
		t.Fatal("event beyond window fired early")
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
	c.Advance(60)
	if !fired {
		t.Fatal("deferred event never fired")
	}
}

func TestRunNext(t *testing.T) {
	c := NewClock()
	var order []int
	c.After(20, func(Time) { order = append(order, 2) })
	c.After(10, func(Time) { order = append(order, 1) })
	if !c.RunNext() {
		t.Fatal("RunNext returned false with pending events")
	}
	if c.Now() != 10 {
		t.Fatalf("Now() = %v after RunNext, want 10", c.Now())
	}
	if !c.RunNext() || c.RunNext() {
		t.Fatal("RunNext drain mismatch")
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestDrainLimit(t *testing.T) {
	c := NewClock()
	count := 0
	for i := 0; i < 10; i++ {
		c.After(Duration(i+1), func(Time) { count++ })
	}
	if fired := c.Drain(3); fired != 3 {
		t.Fatalf("Drain(3) = %d, want 3", fired)
	}
	if fired := c.Drain(0); fired != 7 {
		t.Fatalf("Drain(0) = %d, want 7", fired)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestClockTimeVisibleInsideCallback(t *testing.T) {
	c := NewClock()
	c.After(42, func(now Time) {
		if c.Now() != 42 || now != 42 {
			t.Errorf("inside callback Now()=%v now=%v, want 42", c.Now(), now)
		}
	})
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", c.Now())
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	c.At(50, func(Time) {})
}

func TestNilCallbackPanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("After with nil callback did not panic")
		}
	}()
	c.After(1, nil)
}

// Property: for any set of random delays, events fire exactly once each, in
// nondecreasing timestamp order, and the clock ends at the max horizon.
func TestPropertyRandomSchedulesFireInOrder(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClock()
		count := int(n%64) + 1
		delays := make([]int64, count)
		var fires []Time
		for i := 0; i < count; i++ {
			delays[i] = rng.Int63n(1000)
			c.After(Duration(delays[i]), func(now Time) { fires = append(fires, now) })
		}
		c.Advance(1000)
		if len(fires) != count {
			return false
		}
		if !sort.SliceIsSorted(fires, func(i, j int) bool { return fires[i] < fires[j] }) {
			return false
		}
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		for i, d := range delays {
			if fires[i] != Time(d) {
				return false
			}
		}
		return c.Now() == Time(1000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset of events prevents exactly those from
// firing.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClock()
		count := int(n%32) + 2
		fired := make([]bool, count)
		evs := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			evs[i] = c.After(Duration(rng.Int63n(100)), func(Time) { fired[i] = true })
		}
		cancel := make([]bool, count)
		for i := range cancel {
			cancel[i] = rng.Intn(2) == 0
			if cancel[i] {
				c.Cancel(evs[i])
			}
		}
		c.Advance(200)
		for i := range fired {
			if fired[i] == cancel[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(100)
	if a.Add(50) != Time(150) {
		t.Fatal("Add")
	}
	if a.Sub(Time(40)) != Duration(60) {
		t.Fatal("Sub")
	}
	if Time(time.Second).String() != "1s" {
		t.Fatalf("String() = %q", Time(time.Second).String())
	}
}
