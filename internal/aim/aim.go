// Package aim reproduces the role of the AIM Suite III multi-user benchmark
// in the paper's Figure 5: a tunable mix of simulated jobs (CPU, disk and
// memory bound) run by N concurrent users against the simulated kernel,
// reporting system throughput in jobs per minute.
//
// AIM III itself is proprietary (the paper cites the 1986 user's guide);
// what Figure 5 needs from it is only (a) a workload whose throughput is
// resource-limited, so that adding users beyond the saturation point
// degrades throughput, and (b) three mixes weighting disk and memory
// differently. The synthetic jobs below provide exactly that against the
// simulated CPU (virtual clock), disk and VM system.
package aim

import (
	"fmt"
	"math/rand"
	"time"

	"hipec/internal/core"
	"hipec/internal/simtime"
	"hipec/internal/vm"
)

// Mix is a weighted job profile, the analogue of an AIM workload file.
type Mix struct {
	Name string
	// CPUPerJob is pure computation per job.
	CPUPerJob time.Duration
	// DiskOpsPerJob is the number of raw disk transfers per job.
	DiskOpsPerJob int
	// MemTouchesPerJob is the number of page references per job, spread
	// over the user's footprint.
	MemTouchesPerJob int
	// FootprintPages is each user's resident working set.
	FootprintPages int64
	// WriteFrac is the fraction of memory touches that dirty pages.
	WriteFrac float64
	// ThinkTime is the pause between a user's jobs. It is what makes the
	// throughput curve rise with user count before the CPU saturates
	// (the classic interactive closed-system shape of Figure 5).
	ThinkTime time.Duration
}

// StandardMix balances CPU, disk and memory (the "standard workload").
func StandardMix() Mix {
	return Mix{
		Name:             "standard",
		CPUPerJob:        12 * time.Millisecond,
		DiskOpsPerJob:    3,
		MemTouchesPerJob: 160,
		FootprintPages:   900,
		WriteFrac:        0.3,
		ThinkTime:        170 * time.Millisecond,
	}
}

// DiskMix emphasizes disk usage (the second workload).
func DiskMix() Mix {
	return Mix{
		Name:             "disk",
		CPUPerJob:        4 * time.Millisecond,
		DiskOpsPerJob:    10,
		MemTouchesPerJob: 60,
		FootprintPages:   500,
		WriteFrac:        0.3,
		ThinkTime:        400 * time.Millisecond,
	}
}

// MemoryMix emphasizes memory usage (the third workload).
func MemoryMix() Mix {
	return Mix{
		Name:             "memory",
		CPUPerJob:        4 * time.Millisecond,
		DiskOpsPerJob:    1,
		MemTouchesPerJob: 500,
		FootprintPages:   1700,
		WriteFrac:        0.4,
		ThinkTime:        100 * time.Millisecond,
	}
}

// Mixes returns the three workload mixes of Figure 5.
func Mixes() []Mix { return []Mix{StandardMix(), DiskMix(), MemoryMix()} }

// Result is one throughput measurement.
type Result struct {
	Mix        string
	Users      int
	Jobs       int
	Elapsed    time.Duration
	Throughput float64 // jobs per virtual minute
	Faults     int64
}

// Run simulates users concurrent users each completing jobsPerUser jobs of
// the mix on kernel k. It models the classic interactive closed system on
// one CPU (the paper disabled the second CPU): each user thinks for
// Mix.ThinkTime, then queues a job; jobs execute serially on the simulated
// CPU. Throughput therefore rises with user count until the CPU saturates
// (5-6 users in Figure 5) and then degrades as memory contention inflates
// job service times.
func Run(k *core.Kernel, mix Mix, users, jobsPerUser int) (Result, error) {
	if users <= 0 || jobsPerUser <= 0 {
		return Result{}, fmt.Errorf("aim: users=%d jobs=%d", users, jobsPerUser)
	}
	type user struct {
		sp      *vm.AddressSpace
		e       *vm.MapEntry
		rng     *rand.Rand
		jobs    int
		readyAt simtime.Time
		diskA   int64
	}
	us := make([]*user, users)
	for i := range us {
		sp := k.NewSpace()
		e, err := sp.Allocate(mix.FootprintPages * int64(k.VM.PageSize()))
		if err != nil {
			return Result{}, err
		}
		us[i] = &user{
			sp:    sp,
			e:     e,
			rng:   rand.New(rand.NewSource(int64(i + 1))),
			diskA: int64(i) * 1 << 20,
			// Stagger initial think completions deterministically.
			readyAt: k.Clock.Now().Add(mix.ThinkTime * time.Duration(i+1) / time.Duration(users)),
		}
	}
	start := k.Clock.Now()
	f0 := k.VM.Stats().Faults
	remaining := users * jobsPerUser
	for remaining > 0 {
		// Next ready user (earliest readyAt; index breaks ties).
		var u *user
		for _, cand := range us {
			if cand.jobs >= jobsPerUser {
				continue
			}
			if u == nil || cand.readyAt < u.readyAt {
				u = cand
			}
		}
		if u.readyAt > k.Clock.Now() {
			k.Clock.RunUntil(u.readyAt) // CPU idle until a user finishes thinking
		}
		if err := runJob(k, mix, u.sp, u.e, u.rng, &u.diskA); err != nil {
			return Result{}, err
		}
		u.jobs++
		remaining--
		u.readyAt = k.Clock.Now().Add(mix.ThinkTime)
	}
	elapsed := time.Duration(k.Clock.Now().Sub(start))
	totalJobs := users * jobsPerUser
	return Result{
		Mix:        mix.Name,
		Users:      users,
		Jobs:       totalJobs,
		Elapsed:    elapsed,
		Throughput: float64(totalJobs) / elapsed.Minutes(),
		Faults:     k.VM.Stats().Faults - f0,
	}, nil
}

func runJob(k *core.Kernel, mix Mix, sp *vm.AddressSpace, e *vm.MapEntry, rng *rand.Rand, diskA *int64) error {
	// CPU phase.
	k.Clock.Sleep(mix.CPUPerJob)
	// Disk phase: raw transfers bypassing the page cache.
	for i := 0; i < mix.DiskOpsPerJob; i++ {
		*diskA++
		k.VM.Disk.Read(*diskA+rng.Int63n(4096), k.VM.PageSize())
	}
	// Memory phase: touches over the footprint; under memory pressure
	// these fault and contend with every other user via the pageout
	// daemon's shared pool.
	ps := int64(k.VM.PageSize())
	for i := 0; i < mix.MemTouchesPerJob; i++ {
		page := rng.Int63n(mix.FootprintPages)
		addr := e.Start + page*ps
		var err error
		if rng.Float64() < mix.WriteFrac {
			_, err = sp.Write(addr)
		} else {
			_, err = sp.Touch(addr)
		}
		if err != nil {
			return fmt.Errorf("aim job memory touch: %w", err)
		}
	}
	return nil
}

// Sweep runs the mix at each user count on freshly built kernels and
// returns one Result per count. build must return a new kernel each call.
func Sweep(build func() *core.Kernel, mix Mix, userCounts []int, jobsPerUser int) ([]Result, error) {
	out := make([]Result, 0, len(userCounts))
	for _, n := range userCounts {
		r, err := Run(build(), mix, n, jobsPerUser)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
