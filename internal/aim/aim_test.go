package aim

import (
	"math"
	"testing"

	"hipec/internal/core"
)

// buildKernel returns a small machine so memory pressure appears at low
// user counts (full-size Figure 5 sweeps run in cmd/experiments).
func buildKernel(hipec bool) func() *core.Kernel {
	return func() *core.Kernel {
		return core.New(core.Config{
			Frames:        2048, // 8 MB: pressure appears at few users
			HiPECDisabled: !hipec,
			StartChecker:  hipec,
		})
	}
}

func TestRunProducesThroughput(t *testing.T) {
	r, err := Run(buildKernel(false)(), StandardMix(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 6 || r.Throughput <= 0 || r.Elapsed <= 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(buildKernel(false)(), StandardMix(), 0, 1); err == nil {
		t.Fatal("0 users accepted")
	}
}

func TestMixesDistinct(t *testing.T) {
	ms := Mixes()
	if len(ms) != 3 {
		t.Fatalf("mixes = %d", len(ms))
	}
	if ms[1].DiskOpsPerJob <= ms[0].DiskOpsPerJob {
		t.Fatal("disk mix not disk-heavier than standard")
	}
	if ms[2].FootprintPages <= ms[0].FootprintPages {
		t.Fatal("memory mix not memory-heavier than standard")
	}
}

func TestThroughputDegradesUnderMemoryPressure(t *testing.T) {
	// With a 2048-frame machine and 1700-page footprints, 4 users
	// (6800 pages) thrash while 1 user fits: per-access fault rate and
	// therefore job latency rise, so aggregate throughput on the single
	// simulated CPU falls — the post-saturation decline of Figure 5.
	r1, err := Run(buildKernel(false)(), MemoryMix(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(buildKernel(false)(), MemoryMix(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Faults <= r1.Faults*4 {
		t.Fatalf("no pressure: faults %d (4 users) vs %d (1 user)", r4.Faults, r1.Faults)
	}
	// Under thrash, 4 users fall well short of 4x a single user's rate.
	if r4.Throughput >= r1.Throughput*4*0.8 {
		t.Fatalf("no contention: throughput %.1f (4 users) vs %.1f (1 user)", r4.Throughput, r1.Throughput)
	}
}

func TestThroughputRisesBeforeSaturation(t *testing.T) {
	// Think time dominates at one user: adding users must raise
	// throughput while memory still fits (standard mix, 900-page
	// footprints on a 2048-frame machine supports 2 users cleanly).
	r1, err := Run(buildKernel(false)(), StandardMix(), 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(buildKernel(false)(), StandardMix(), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Throughput <= r1.Throughput*1.2 {
		t.Fatalf("throughput did not rise: %.1f (2 users) vs %.1f (1 user)", r2.Throughput, r1.Throughput)
	}
}

func TestHiPECKernelThroughputWithinNoise(t *testing.T) {
	// Figure 5's claim: the modified (HiPEC) kernel and the original Mach
	// kernel provide nearly identical throughput for non-specific
	// workloads. The deterministic simulation differs only by the
	// per-fault region check and checker wakeups, so the gap must be
	// well under 1%.
	for _, mix := range Mixes() {
		vanilla, err := Run(buildKernel(false)(), mix, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		hipec, err := Run(buildKernel(true)(), mix, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		diff := math.Abs(vanilla.Throughput-hipec.Throughput) / vanilla.Throughput
		if diff > 0.01 {
			t.Fatalf("mix %s: HiPEC overhead %.3f%% exceeds 1%%", mix.Name, diff*100)
		}
		if hipec.Throughput > vanilla.Throughput {
			t.Logf("mix %s: HiPEC slightly faster (%.2f vs %.2f) — acceptable noise", mix.Name, hipec.Throughput, vanilla.Throughput)
		}
	}
}

func TestSweep(t *testing.T) {
	rs, err := Sweep(buildKernel(false), StandardMix(), []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Users != 1 || rs[1].Users != 2 {
		t.Fatalf("sweep = %+v", rs)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Run(buildKernel(false)(), StandardMix(), 2, 2)
	b, _ := Run(buildKernel(false)(), StandardMix(), 2, 2)
	if a.Elapsed != b.Elapsed || a.Faults != b.Faults {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}
