package core

import (
	"fmt"
	"time"

	"hipec/internal/hiperr"
	"hipec/internal/kevent"
	"hipec/internal/mem"
	"hipec/internal/simtime"
	"hipec/internal/vm"
)

// Operand is one entry of the container's operand array. Its Kind (the
// runtime type of the slot) is defined in package isa and re-exported by
// this package.
type Operand struct {
	Kind  Kind
	Name  string
	Int   int64
	Bool  bool
	Queue *mem.Queue
	Page  *mem.Page

	// live, when non-nil, makes the operand a kernel-maintained counter:
	// integer reads evaluate it (e.g. _free_count is the live length of
	// the private free queue). Live operands are read-only to policies.
	live func() int64
	// readOnly slots reject Arith writes (constants and live counters).
	readOnly bool
}

// IntValue returns the integer value, evaluating live counters.
func (o *Operand) IntValue() int64 {
	if o.live != nil {
		return o.live()
	}
	return o.Int
}

// OperandDecl declares one application operand in a Spec.
type OperandDecl struct {
	Slot uint8
	Kind Kind
	Name string
	Init int64 // initial value for KindInt; nonzero = true for KindBool
	// Const marks the operand read-only (a policy constant).
	Const bool
}

// Spec is a complete user-supplied policy: the event programs, operand
// declarations and resource parameters handed to vm_allocate_hipec() /
// vm_map_hipec(). Produced by hand-encoding or by the hpl translator.
type Spec struct {
	Name string
	// Events indexes programs by event number; entries 0 and 1
	// (PageFault, ReclaimFrame) are mandatory.
	Events []Program
	// EventNames optionally names events for diagnostics.
	EventNames []string
	// Operands declares application slots (>= SlotUser) and may override
	// the initial values of the target slots (reserved/free/inactive).
	Operands []OperandDecl
	// MinFrame is the guaranteed minimum number of frames (§4.3.1
	// Allocation); the kernel rejects activation if it cannot be granted.
	MinFrame int
	// EnableExtensions permits the post-paper opcodes (Migrate, Age).
	EnableExtensions bool
	// AccessOrderQueues keeps the container's active queue in exact
	// recency order (the VM layer moves pages to the tail on every hit),
	// which makes the canned LRU and MRU commands O(1). Policies that
	// depend on fault-insertion order (plain FIFO) should leave it off.
	AccessOrderQueues bool
}

// ContainerState describes the lifecycle of a container.
type ContainerState uint8

const (
	StateActive     ContainerState = iota
	StateTerminated                // killed by the checker or a runtime fault
	StateDestroyed                 // region deallocated
	StateRevoked                   // degraded: region handed back to the default policy
)

func (s ContainerState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateTerminated:
		return "terminated"
	case StateDestroyed:
		return "destroyed"
	case StateRevoked:
		return "revoked"
	}
	return fmt.Sprintf("ContainerState(%d)", uint8(s))
}

// ContainerStats is a snapshot of per-container policy activity, derived
// from the container's scoped view of the kernel event spine.
type ContainerStats struct {
	Activations   int64 // event executions (outer, not Activate-nested)
	Commands      int64 // commands fetched/decoded/executed
	Requests      int64 // Request commands issued
	RequestDenied int64
	Releases      int64 // frames returned via Release
	Flushes       int64 // Flush commands executed
	Migrations    int64 // pages migrated in via the Migrate extension
}

// Container is the kernel object added by HiPEC (§4.1): it records the
// operand array, pointers to the command buffers (event programs), the
// private frame lists, the command counter, and the execution timestamp
// checked by the security checker.
type Container struct {
	ID int

	kernel *Kernel
	object *vm.Object
	spec   *Spec

	operands [256]Operand
	events   []Program
	// decoded mirrors events with each program unpacked once at load time
	// (the executor's fetch/decode fast path; see command.go).
	decoded [][]decodedCmd

	// Private frame lists (the partitioned pool of §3).
	Free     *mem.Queue
	Active   *mem.Queue
	Inactive *mem.Queue

	// MinFrame is the administratively guaranteed minimum (§4.3.1).
	MinFrame int
	// allocated counts frames currently granted by the global frame
	// manager (on private queues, resident, or held in page registers).
	allocated int

	// Executor state.
	cc        int          // command counter of the current execution
	cr        bool         // condition register
	timestamp simtime.Time // start of current execution (checked by checker)
	executing bool
	timedOut  bool // set asynchronously by the security checker

	state      ContainerState
	termReason string

	extensions bool
	// verified is set by the security checker when the spec passed the
	// static verifier with no errors; the executor then skips the
	// per-command operand-kind and range checks the verifier proved
	// redundant (see Executor.ForceChecked).
	verified bool
}

// Stats reports per-container policy counters, derived from the event spine.
func (c *Container) Stats() ContainerStats {
	sc := c.kernel.Registry().Container(c.ID)
	return ContainerStats{
		Activations:   sc.Counts[kevent.EvPolicyActivation],
		Commands:      sc.Sums[kevent.EvPolicyActivation],
		Requests:      sc.Counts[kevent.EvPolicyRequest],
		RequestDenied: sc.Flags[kevent.EvPolicyRequest],
		Releases:      sc.Sums[kevent.EvPolicyRelease],
		Flushes:       sc.Counts[kevent.EvPolicyFlush],
		Migrations:    sc.Counts[kevent.EvPolicyMigrate],
	}
}

// Object returns the VM object this container manages.
func (c *Container) Object() *vm.Object { return c.object }

// State returns the container lifecycle state.
func (c *Container) State() ContainerState { return c.state }

// TerminationReason returns why a terminated container was killed.
func (c *Container) TerminationReason() string { return c.termReason }

// Allocated reports the number of frames currently granted.
func (c *Container) Allocated() int { return c.allocated }

// Operand returns a pointer to slot i's entry for inspection.
func (c *Container) Operand(i uint8) *Operand { return &c.operands[i] }

// Executing reports whether a policy execution is in flight (used by the
// security checker).
func (c *Container) Executing() (bool, simtime.Time) { return c.executing, c.timestamp }

// newContainer wires up the well-known operand slots.
func newContainer(k *Kernel, id int, obj *vm.Object, spec *Spec) (*Container, error) {
	c := &Container{
		ID:         id,
		kernel:     k,
		object:     obj,
		spec:       spec,
		events:     spec.Events,
		MinFrame:   spec.MinFrame,
		extensions: spec.EnableExtensions,
	}
	c.decoded = make([][]decodedCmd, len(spec.Events))
	for i, p := range spec.Events {
		c.decoded[i] = decodeProgram(p)
	}
	c.Free = mem.NewQueue(fmt.Sprintf("hipec%d_free", id))
	c.Active = mem.NewQueue(fmt.Sprintf("hipec%d_active", id))
	c.Inactive = mem.NewQueue(fmt.Sprintf("hipec%d_inactive", id))
	c.Active.AccessOrder = spec.AccessOrderQueues

	set := func(slot uint8, o Operand) { c.operands[slot] = o }
	set(SlotScratch, Operand{Kind: KindInt, Name: "_scratch"})
	set(SlotFreeQueue, Operand{Kind: KindQueue, Name: "_free_queue", Queue: c.Free, readOnly: true})
	set(SlotFreeCount, Operand{Kind: KindInt, Name: "_free_count", live: func() int64 { return int64(c.Free.Len()) }, readOnly: true})
	set(SlotActiveQueue, Operand{Kind: KindQueue, Name: "_active_queue", Queue: c.Active, readOnly: true})
	set(SlotActiveCount, Operand{Kind: KindInt, Name: "_active_count", live: func() int64 { return int64(c.Active.Len()) }, readOnly: true})
	set(SlotInactiveQueue, Operand{Kind: KindQueue, Name: "_inactive_queue", Queue: c.Inactive, readOnly: true})
	set(SlotInactiveCount, Operand{Kind: KindInt, Name: "_inactive_count", live: func() int64 { return int64(c.Inactive.Len()) }, readOnly: true})
	set(SlotAllocated, Operand{Kind: KindInt, Name: "_allocated", live: func() int64 { return int64(c.allocated) }, readOnly: true})
	set(SlotMinFrame, Operand{Kind: KindInt, Name: "_min_frame", live: func() int64 { return int64(c.MinFrame) }, readOnly: true})
	set(SlotInactiveTgt, Operand{Kind: KindInt, Name: "inactive_target", Int: int64(spec.MinFrame / 3)})
	set(SlotFreeTgt, Operand{Kind: KindInt, Name: "free_target", Int: int64(spec.MinFrame/8 + 2)})
	set(SlotPageReg, Operand{Kind: KindPage, Name: "_page"})
	set(SlotReservedTgt, Operand{Kind: KindInt, Name: "reserved_target", Int: 0})
	set(SlotFaultAddr, Operand{Kind: KindInt, Name: "_fault_addr", readOnly: true})
	set(SlotFaultOffset, Operand{Kind: KindInt, Name: "_fault_offset", readOnly: true})
	set(SlotZero, Operand{Kind: KindInt, Name: "_zero", readOnly: true})
	set(SlotOne, Operand{Kind: KindInt, Name: "_one", Int: 1, readOnly: true})

	for _, d := range spec.Operands {
		if d.Slot < SlotUser {
			// Target slots may be re-initialized but not re-typed.
			existing := &c.operands[d.Slot]
			if existing.readOnly || existing.Kind != KindInt || d.Kind != KindInt {
				return nil, fmt.Errorf("core: operand decl %q cannot override reserved slot %#02x: %w", d.Name, d.Slot, hiperr.ErrBadSpec)
			}
			existing.Int = d.Init
			continue
		}
		o := Operand{Kind: d.Kind, Name: d.Name, readOnly: d.Const}
		switch d.Kind {
		case KindInt:
			o.Int = d.Init
		case KindBool:
			o.Bool = d.Init != 0
		case KindQueue:
			o.Queue = mem.NewQueue(fmt.Sprintf("hipec%d_%s", id, d.Name))
		case KindPage:
			// empty page register
		default:
			return nil, fmt.Errorf("core: operand decl %q has invalid kind: %w", d.Name, hiperr.ErrBadSpec)
		}
		c.operands[d.Slot] = o
	}
	return c, nil
}

// SetIntOperand assigns a declared integer operand by name. It is the
// application's control channel into a running policy (e.g. adjusting a
// target or telling a policy which container to cooperate with).
func (c *Container) SetIntOperand(name string, v int64) error {
	for i := range c.operands {
		o := &c.operands[i]
		if o.Name != name {
			continue
		}
		if o.Kind != KindInt {
			return fmt.Errorf("core: operand %q is %v, not int: %w", name, o.Kind, hiperr.ErrBadOperand)
		}
		if o.readOnly || o.live != nil {
			return fmt.Errorf("core: operand %q is read-only: %w", name, hiperr.ErrBadOperand)
		}
		o.Int = v
		return nil
	}
	return fmt.Errorf("core: no operand named %q: %w", name, hiperr.ErrBadOperand)
}

// IntOperand reads a declared integer operand by name.
func (c *Container) IntOperand(name string) (int64, error) {
	for i := range c.operands {
		o := &c.operands[i]
		if o.Name == name && o.Kind == KindInt {
			return o.IntValue(), nil
		}
	}
	return 0, fmt.Errorf("core: no int operand named %q: %w", name, hiperr.ErrBadOperand)
}

// AppendEventForTest registers an additional event program directly,
// bypassing static validation. It exists for tests and benchmarks that
// need to drive individual commands; production policies must go through
// a Spec so the security checker sees them.
func (c *Container) AppendEventForTest(p Program) int {
	c.events = append(c.events, p)
	c.decoded = append(c.decoded, decodeProgram(p))
	// The new program never saw the verifier; drop the fast-path waiver.
	c.verified = false
	return len(c.events) - 1
}

// Verified reports whether the container's spec passed the static verifier
// with no errors (enabling the executor's unchecked fast path).
func (c *Container) Verified() bool { return c.verified }

// eventName returns a printable name for an event number.
func (c *Container) eventName(ev int) string {
	switch ev {
	case EventPageFault:
		return "PageFault"
	case EventReclaimFrame:
		return "ReclaimFrame"
	}
	if c.spec != nil && ev < len(c.spec.EventNames) && c.spec.EventNames[ev] != "" {
		return c.spec.EventNames[ev]
	}
	return fmt.Sprintf("event%d", ev)
}

// queues returns the container's built-in and user-declared queues.
func (c *Container) queues() []*mem.Queue {
	qs := []*mem.Queue{c.Free, c.Active, c.Inactive}
	for i := int(SlotUser); i < len(c.operands); i++ {
		if c.operands[i].Kind == KindQueue && c.operands[i].Queue != nil {
			qs = append(qs, c.operands[i].Queue)
		}
	}
	return qs
}

// pageRegisters returns frames currently held in page-register operands.
func (c *Container) pageRegisters() []*mem.Page {
	var out []*mem.Page
	for i := range c.operands {
		if c.operands[i].Kind == KindPage && c.operands[i].Page != nil {
			out = append(out, c.operands[i].Page)
		}
	}
	return out
}

// --- vm.Policy implementation -------------------------------------------

// Name implements vm.Policy.
func (c *Container) Name() string { return fmt.Sprintf("hipec:%s", c.spec.Name) }

// PageFor implements vm.Policy: a fault on the container's region runs the
// PageFault event program; its Return operand must name a free page.
func (c *Container) PageFor(f *vm.Fault) (*mem.Page, error) {
	if c.state != StateActive {
		sentinel := hiperr.ErrPolicyFault
		if c.state == StateRevoked {
			sentinel = hiperr.ErrRevoked
		}
		return nil, &hiperr.Error{Op: "hipec.pagefor", Container: c.ID,
			Err: fmt.Errorf("container is %v: %w", c.state, sentinel)}
	}
	c.operands[SlotFaultAddr].Int = f.Addr
	c.operands[SlotFaultOffset].Int = f.Offset
	res, err := c.kernel.Executor.Run(c, EventPageFault)
	if err != nil {
		return nil, err
	}
	if res == nil || res.Kind != KindPage || res.Page == nil {
		c.kernel.terminate(c, "PageFault event did not return a page")
		return nil, &hiperr.Error{Op: "hipec.pagefor", Container: c.ID,
			Err: fmt.Errorf("PageFault returned no page: %w", hiperr.ErrPolicyFault)}
	}
	p := res.Page
	if p.Queue() != nil {
		c.kernel.terminate(c, "PageFault returned a page still on a queue")
		return nil, &hiperr.Error{Op: "hipec.pagefor", Container: c.ID,
			Err: fmt.Errorf("PageFault returned queued page: %w", hiperr.ErrPolicyFault)}
	}
	if p.Object != 0 {
		c.kernel.terminate(c, "PageFault returned a page still mapped to an object")
		return nil, &hiperr.Error{Op: "hipec.pagefor", Container: c.ID,
			Err: fmt.Errorf("PageFault returned resident page: %w", hiperr.ErrPolicyFault)}
	}
	// The frame leaves the page register: it now belongs to the fault.
	if reg := &c.operands[SlotPageReg]; reg.Page == p {
		reg.Page = nil
	}
	return p, nil
}

// Installed implements vm.Policy: newly resident pages join the
// container's active list (wired pages stay off-queue).
func (c *Container) Installed(f *vm.Fault, p *mem.Page) {
	if p.Wired {
		return
	}
	c.Active.EnqueueTail(p)
}

// Release implements vm.Policy: the VM layer is detaching a resident page
// (object destruction). Drop it from private queues and registers; the
// caller frees the frame, so adjust the grant count.
func (c *Container) Release(p *mem.Page) {
	if q := p.Queue(); q != nil {
		q.Remove(p)
	}
	for i := range c.operands {
		if c.operands[i].Kind == KindPage && c.operands[i].Page == p {
			c.operands[i].Page = nil
		}
	}
	if c.allocated > 0 {
		c.allocated--
		c.kernel.FM.noteReleased(c, 1)
	}
}

// FaultAborted implements vm.FaultAborter: a fault the container supplied a
// frame for failed during page-in. The frame is still granted to the
// container, so it goes back on the private free list (or to the machine
// pool if the container is no longer active — its grant accounting has
// already been torn down).
func (c *Container) FaultAborted(f *vm.Fault, p *mem.Page) {
	if c.state == StateActive {
		c.Free.EnqueueTail(p)
		return
	}
	c.kernel.Daemon.ReturnFrame(p)
}

var (
	_ vm.Policy       = (*Container)(nil)
	_ vm.FaultAborter = (*Container)(nil)
)

// Timeout durations for the security checker; see checker.go.
const defaultExecTimeout = 100 * time.Millisecond
