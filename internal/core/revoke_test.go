package core

import (
	"errors"
	"testing"

	"hipec/internal/hiperr"
	"hipec/internal/kevent"
)

// TestRevokeHandsResidentPagesBack checks the graceful-degradation contract:
// revoking a container keeps its resident pages resident (now managed by the
// default daemon), returns its grant accounting to zero, and makes further
// policy activity fail with ErrRevoked.
func TestRevokeHandsResidentPagesBack(t *testing.T) {
	k := New(Config{Frames: 256})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 64*4096, WithPolicy(simpleSpec(32)))
	if err != nil {
		t.Fatal(err)
	}
	const touched = 16
	for i := int64(0); i < touched; i++ {
		if _, err := sp.Touch(e.Start + i*4096); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Object.ResidentCount(); got != touched {
		t.Fatalf("resident = %d before revoke, want %d", got, touched)
	}

	k.RevokeContainer(c, "test revocation")

	if c.State() != StateRevoked {
		t.Fatalf("state = %v, want revoked", c.State())
	}
	if c.Allocated() != 0 {
		t.Fatalf("revoked container still holds %d frames", c.Allocated())
	}
	if got := e.Object.ResidentCount(); got != touched {
		t.Fatalf("resident = %d after revoke, want %d (no page may be lost)", got, touched)
	}
	if e.Object.Policy != nil {
		t.Fatal("object still points at the revoked container")
	}

	// Every previously resident page is a hit under the default policy.
	faultsBefore := sp.Stats().Faults
	for i := int64(0); i < touched; i++ {
		if _, err := sp.Touch(e.Start + i*4096); err != nil {
			t.Fatal(err)
		}
	}
	if got := sp.Stats().Faults; got != faultsBefore {
		t.Fatalf("re-touch after revoke faulted (%d -> %d): resident pages were lost", faultsBefore, got)
	}
	// New pages fault in under the daemon.
	if _, err := sp.Touch(e.Start + touched*4096); err != nil {
		t.Fatalf("fault on revoked region under default policy: %v", err)
	}

	// The executor refuses the revoked container with the typed sentinel.
	if _, err := k.Executor.Run(c, EventReclaimFrame); !errors.Is(err, hiperr.ErrRevoked) {
		t.Fatalf("Run on revoked container: err = %v, want ErrRevoked", err)
	}
	var he *hiperr.Error
	if _, err := c.PageFor(nil); !errors.As(err, &he) || !errors.Is(err, hiperr.ErrRevoked) {
		t.Fatalf("PageFor on revoked container: err = %v, want hiperr.Error wrapping ErrRevoked", err)
	}
	if he.Container != c.ID {
		t.Fatalf("error carries container %d, want %d", he.Container, c.ID)
	}
}

// TestRevokeIdempotent checks that revoking twice (and terminating after
// revoking) does nothing the second time.
func TestRevokeIdempotent(t *testing.T) {
	k := New(Config{Frames: 128})
	sp := k.NewSpace()
	_, c, err := k.Allocate(sp, 16*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	k.RevokeContainer(c, "first")
	k.RevokeContainer(c, "second")
	k.terminate(c, "third")
	if got := k.Registry().Count(kevent.EvContainerRevoked); got != 1 {
		t.Fatalf("container.revoked events = %d, want 1", got)
	}
	if c.TerminationReason() != "first" {
		t.Fatalf("reason = %q, want the first revocation's", c.TerminationReason())
	}
	kernelConservation(t, k)
}

// TestDestroyAfterRevoke checks the full teardown of a degraded region:
// destroying the container after revocation returns every frame to the
// machine pool and conserves all frames.
func TestDestroyAfterRevoke(t *testing.T) {
	k := New(Config{Frames: 128})
	free := k.Daemon.FreeCount()
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 32*4096, WithPolicy(simpleSpec(16)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 24; i++ {
		if _, err := sp.Write(e.Start + i*4096); err != nil {
			t.Fatal(err)
		}
	}
	k.RevokeContainer(c, "degrade")
	k.Clock.Drain(1 << 20) // let in-flight laundering I/O complete
	kernelConservation(t, k)
	k.DestroyContainer(c)
	kernelConservation(t, k)
	if got := k.Daemon.FreeCount(); got != free {
		t.Fatalf("free = %d after destroy, want %d (all frames back)", got, free)
	}
	if k.FM.SpecificTotal() != 0 {
		t.Fatalf("specific total = %d after destroy", k.FM.SpecificTotal())
	}
}
