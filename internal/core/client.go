package core

import (
	"fmt"

	"hipec/internal/hiperr"
	"hipec/internal/vm"
)

// This file is the kernel half of the transport-agnostic client seam: a
// typed command surface — open a region, read/write/touch pages by index,
// fetch stats — that can be carried verbatim over a wire protocol. The same
// operations back two fronts:
//
//   - *Loop's typed methods (the in-process client): each method is one
//     Call onto the engine goroutine.
//   - The network server (internal/server): decodes N frames from a
//     connection and applies all N operations in ONE Call, amortizing the
//     mailbox crossing the way the executor amortizes clock charges across
//     an event boundary.
//
// Regions are addressed by opaque RegionID handles and pages by index
// within the region, so the surface never leaks kernel pointers — exactly
// what lets it serialize.

// RegionID names one cache region within a client session. Handles are
// session-scoped: two sessions (two connections) may hold the same numeric
// ID for different regions.
type RegionID uint32

// CacheStats is the machine-wide counter snapshot of the client surface:
// the VM view plus the backing store's resident page count.
type CacheStats struct {
	Accesses  int64
	Hits      int64
	Faults    int64
	PageIns   int64
	ZeroFills int64
	PageOuts  int64
	Evictions int64
	// StorePages is the number of pages currently held by the backing
	// store (the paging file's population).
	StorePages int64
}

// RegionOption configures a region opened through the client surface.
type RegionOption func(*RegionOptions)

// RegionOptions is the resolved form of a RegionOption list. It is exported
// so transports can serialize the options a caller asked for (the network
// client ships Name/Source over the wire); most callers never touch it.
type RegionOptions struct {
	Spec   *Spec
	Name   string
	Source string
	Retry  int
}

// ResolveRegionOptions folds an option list into its resolved form.
func ResolveRegionOptions(opts []RegionOption) RegionOptions {
	var o RegionOptions
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithPolicySpec places the region under an already-translated HiPEC
// policy. In-process only: a *Spec does not serialize, so the network
// client rejects it — remote callers use WithPolicySource.
func WithPolicySpec(spec *Spec) RegionOption {
	return func(o *RegionOptions) { o.Spec = spec }
}

// WithPolicySource places the region under the HiPEC policy whose HPL
// source is given. Translation happens where the kernel lives (server-side
// for remote clients), through the translator registered by the hpl
// package; the usual registration-time static verification applies.
func WithPolicySource(name, source string) RegionOption {
	return func(o *RegionOptions) { o.Name, o.Source = name, source }
}

// WithRegionRetryBudget overrides the fault path's page-in retry budget for
// the region (see WithRetryBudget). n <= 0 is ignored.
func WithRegionRetryBudget(n int) RegionOption {
	return func(o *RegionOptions) { o.Retry = n }
}

// policyTranslator turns HPL source into a Spec. It lives behind a
// registration hook because the hpl package imports core: the hpl package
// registers its Translate at init, so any program that links the translator
// (anything importing hipec or internal/hpl) can open regions from source.
var policyTranslator func(name, source string) (*Spec, error)

// RegisterPolicyTranslator installs the HPL source translator used by
// WithPolicySource. Called from the hpl package's init.
func RegisterPolicyTranslator(fn func(name, source string) (*Spec, error)) {
	policyTranslator = fn
}

func badRequest(op, format string, args ...any) error {
	args = append(args, hiperr.ErrBadRequest)
	return &hiperr.Error{Op: op, Err: fmt.Errorf(format+": %w", args...)}
}

// cacheRegion is one open region: its own address space (so page indexes
// are dense and regions are isolated), the mapping, and the container when
// the region is policy-managed.
type cacheRegion struct {
	space     *vm.AddressSpace
	entry     *vm.MapEntry
	container *Container
}

// CacheSession is one client's region table. All methods must run on the
// kernel's owning goroutine (inside a Loop Call/Async closure); the session
// itself adds no locking — it inherits the single-writer discipline of the
// kernel it drives.
type CacheSession struct {
	nextID  RegionID
	regions map[RegionID]*cacheRegion
}

// NewCacheSession creates an empty region table.
func NewCacheSession() *CacheSession {
	return &CacheSession{regions: make(map[RegionID]*cacheRegion)}
}

// Regions reports the number of open regions.
func (s *CacheSession) Regions() int { return len(s.regions) }

// Open allocates a region of pages pages in a fresh address space,
// optionally under a HiPEC policy, and returns its handle.
func (s *CacheSession) Open(k *Kernel, pages int, opts ...RegionOption) (RegionID, error) {
	o := ResolveRegionOptions(opts)
	if pages <= 0 {
		return 0, badRequest("client.open", "non-positive region size %d pages", pages)
	}
	spec := o.Spec
	if o.Source != "" {
		if spec != nil {
			return 0, badRequest("client.open", "both WithPolicySpec and WithPolicySource given")
		}
		if policyTranslator == nil {
			return 0, badRequest("client.open", "policy source given but no translator registered (import hipec or internal/hpl)")
		}
		tr, err := policyTranslator(o.Name, o.Source)
		if err != nil {
			return 0, &hiperr.Error{Op: "client.open",
				Err: fmt.Errorf("translating policy %q: %v: %w", o.Name, err, hiperr.ErrBadSpec)}
		}
		spec = tr
	}
	var allocOpts []AllocOption
	if spec != nil {
		allocOpts = append(allocOpts, WithPolicy(spec))
	}
	if o.Retry > 0 {
		allocOpts = append(allocOpts, WithRetryBudget(o.Retry))
	}
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, int64(pages)*int64(k.VM.PageSize()), allocOpts...)
	if err != nil {
		return 0, err
	}
	s.nextID++
	s.regions[s.nextID] = &cacheRegion{space: sp, entry: e, container: c}
	return s.nextID, nil
}

// region resolves a handle.
func (s *CacheSession) region(op string, r RegionID) (*cacheRegion, error) {
	reg, ok := s.regions[r]
	if !ok {
		return nil, badRequest(op, "unknown region %d", r)
	}
	return reg, nil
}

// pageAddr bounds-checks a page index and returns its virtual address.
func (s *CacheSession) pageAddr(op string, k *Kernel, reg *cacheRegion, page int) (int64, error) {
	ps := int64(k.VM.PageSize())
	if page < 0 || int64(page)*ps >= reg.entry.Size() {
		return 0, badRequest(op, "page %d out of range (region is %d pages)",
			page, reg.entry.Size()/ps)
	}
	return reg.entry.Start + int64(page)*ps, nil
}

// Write write-faults one page and copies data (length <= page size) to its
// head. The remainder of the page keeps its prior content. On a kernel
// running data-free (the simulation's default), the fault still happens —
// residency and policy state advance — but the payload is discarded.
func (s *CacheSession) Write(k *Kernel, r RegionID, page int, data []byte) error {
	reg, err := s.region("client.write", r)
	if err != nil {
		return err
	}
	if len(data) > k.VM.PageSize() {
		return badRequest("client.write", "payload %d bytes exceeds page size %d",
			len(data), k.VM.PageSize())
	}
	addr, err := s.pageAddr("client.write", k, reg, page)
	if err != nil {
		return err
	}
	p, err := reg.space.Write(addr)
	if err != nil {
		return err
	}
	copy(p.Data, data)
	return nil
}

// Read touch-faults one page and copies up to len(buf) payload bytes into
// buf, returning the count (0 on a data-free kernel).
func (s *CacheSession) Read(k *Kernel, r RegionID, page int, buf []byte) (int, error) {
	reg, err := s.region("client.read", r)
	if err != nil {
		return 0, err
	}
	addr, err := s.pageAddr("client.read", k, reg, page)
	if err != nil {
		return 0, err
	}
	p, err := reg.space.Touch(addr)
	if err != nil {
		return 0, err
	}
	return copy(buf, p.Data), nil
}

// Touch read-faults one page without copying any payload.
func (s *CacheSession) Touch(k *Kernel, r RegionID, page int) error {
	reg, err := s.region("client.touch", r)
	if err != nil {
		return err
	}
	addr, err := s.pageAddr("client.touch", k, reg, page)
	if err != nil {
		return err
	}
	_, err = reg.space.Touch(addr)
	return err
}

// Free releases a region: the mapping is removed and the backing object
// (and its container, when policy-managed) is destroyed.
func (s *CacheSession) Free(k *Kernel, r RegionID) error {
	reg, err := s.region("client.free", r)
	if err != nil {
		return err
	}
	delete(s.regions, r)
	s.release(k, reg)
	return nil
}

// FreeAll releases every open region (connection teardown).
func (s *CacheSession) FreeAll(k *Kernel) {
	for id, reg := range s.regions {
		delete(s.regions, id)
		s.release(k, reg)
	}
}

func (s *CacheSession) release(k *Kernel, reg *cacheRegion) {
	_ = reg.space.Unmap(reg.entry)
	if reg.container != nil {
		k.DestroyContainer(reg.container)
		return
	}
	if obj := k.VM.Object(reg.entry.Object.ID); obj != nil {
		k.VM.DestroyObject(obj)
	}
}

// Stats snapshots the machine-wide client-surface counters.
func (s *CacheSession) Stats(k *Kernel) CacheStats {
	vs := k.VM.Stats()
	return CacheStats{
		Accesses:   vs.Accesses,
		Hits:       vs.Hits,
		Faults:     vs.Faults,
		PageIns:    vs.PageIns,
		ZeroFills:  vs.ZeroFills,
		PageOuts:   vs.PageOuts,
		Evictions:  vs.Evictions,
		StorePages: int64(k.VM.Store.Len()),
	}
}

// ---- The in-process client: *Loop satisfies the hipec.Client seam. ----

// Open allocates a region of pages pages and returns its handle. One Call.
func (l *Loop) Open(pages int, opts ...RegionOption) (RegionID, error) {
	var r RegionID
	err := l.Call(func(k *Kernel) error {
		var err error
		r, err = l.sess.Open(k, pages, opts...)
		return err
	})
	return r, err
}

// WritePage write-faults page page of region r and stores data (length <=
// PageSize) at its head.
func (l *Loop) WritePage(r RegionID, page int, data []byte) error {
	return l.Call(func(k *Kernel) error { return l.sess.Write(k, r, page, data) })
}

// ReadPage touch-faults page page of region r and copies up to len(buf)
// payload bytes into buf, returning the count.
func (l *Loop) ReadPage(r RegionID, page int, buf []byte) (int, error) {
	var n int
	err := l.Call(func(k *Kernel) error {
		var err error
		n, err = l.sess.Read(k, r, page, buf)
		return err
	})
	return n, err
}

// TouchPage read-faults page page of region r.
func (l *Loop) TouchPage(r RegionID, page int) error {
	return l.Call(func(k *Kernel) error { return l.sess.Touch(k, r, page) })
}

// TouchAsync enqueues a touch without waiting for it to run. True means
// "enqueued", not "applied" (see Async); any fault error is discarded.
func (l *Loop) TouchAsync(r RegionID, page int) bool {
	return l.Async(func(k *Kernel) { _ = l.sess.Touch(k, r, page) })
}

// FreeRegion releases region r.
func (l *Loop) FreeRegion(r RegionID) error {
	return l.Call(func(k *Kernel) error { return l.sess.Free(k, r) })
}

// Stats snapshots the machine-wide counters.
func (l *Loop) Stats() (CacheStats, error) {
	var cs CacheStats
	err := l.Call(func(k *Kernel) error {
		cs = l.sess.Stats(k)
		return nil
	})
	return cs, err
}

// PageSize reports the kernel's page size. Immutable after construction, so
// it is read without a loop hop.
func (l *Loop) PageSize() int { return l.k.VM.PageSize() }
