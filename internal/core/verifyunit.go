package core

import (
	"hipec/internal/hpl/verify"
	"hipec/internal/isa"
)

// buildUnit describes a constructed container to the static verifier: the
// event programs plus the authoritative operand contract (kinds, read-only
// and live flags, the live-counter-to-queue mapping, and the statically
// known constants that enable Comp folding).
func buildUnit(c *Container) *verify.Unit {
	u := verify.NewUnit(c.spec.Name)
	u.Events = c.events
	u.EventNames = c.spec.EventNames
	u.Extensions = c.extensions

	liveQueue := map[uint8]uint8{}
	for _, s := range isa.WellKnownSlots() {
		if s.LiveQueue != isa.SlotNoQueue {
			liveQueue[s.Slot] = s.LiveQueue
		}
	}
	for i := range c.operands {
		slot := uint8(i)
		o := &c.operands[i]
		if o.Kind == KindNone {
			// The container's table is authoritative: an undeclared slot is
			// known to hold nothing, and any typed access faults at runtime.
			// Known (not inference-mode unknown) so the verifier rejects it.
			u.Operands[i] = verify.OperandInfo{LiveQueue: isa.SlotNoQueue, Known: true}
			continue
		}
		info := verify.OperandInfo{
			Kind:      o.Kind,
			Name:      o.Name,
			ReadOnly:  o.readOnly || o.live != nil,
			Live:      o.live != nil,
			LiveQueue: isa.SlotNoQueue,
			Known:     true,
		}
		if q, ok := liveQueue[slot]; ok && info.Live {
			info.LiveQueue = q
		}
		// Only genuinely immutable integers fold: the _zero/_one builtins
		// and user-declared Const operands. Read-only fault context
		// (_fault_addr, _fault_offset) changes per activation.
		if o.Kind == KindInt && o.readOnly && o.live == nil &&
			(slot == SlotZero || slot == SlotOne || slot >= SlotUser) {
			info.HasConst = true
			info.ConstVal = o.Int
		}
		u.Operands[i] = info
	}
	return u
}

// UnitForSpec builds a verifier unit from a bare spec, constructing (but
// not registering) the container it would produce. Used by hipecc -analyze
// and hipeclint, which verify policies outside any kernel.
func UnitForSpec(spec *Spec) (*verify.Unit, error) {
	c, err := newContainer(nil, 0, nil, spec)
	if err != nil {
		return nil, err
	}
	return buildUnit(c), nil
}
