package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hipec/internal/simtime"
	"hipec/internal/substrate"
	"hipec/internal/vm"
)

// realKernel builds a kernel on the realtime substrate (wall clock, payload
// arena, zero cost models).
func realKernel(frames int) *Kernel {
	return New(Config{
		Frames:        frames,
		PageSize:      4096,
		BurstFraction: 0.5,
		Substrate:     substrate.Config{Kind: substrate.KindReal},
	})
}

// TestLoopSerializesConcurrentCallers is the realtime concurrency contract:
// >= 8 goroutines hammer one kernel through the loop, each faulting and
// re-touching its own HiPEC region. Run under -race this proves the mailbox
// is the only synchronization the engine needs.
func TestLoopSerializesConcurrentCallers(t *testing.T) {
	k := realKernel(512)
	l := NewLoop(k)
	defer l.Close()

	const clients = 8
	const pagesPer = 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sp *vm.AddressSpace
			var start int64
			if err := l.Call(func(k *Kernel) error {
				sp = k.NewSpace()
				e, _, err := k.Allocate(sp, pagesPer*4096, WithPolicy(simpleSpec(4)))
				if err != nil {
					return err
				}
				start = e.Start
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			for round := 0; round < 4; round++ {
				for i := int64(0); i < pagesPer; i++ {
					addr := start + i*4096
					if err := l.Call(func(k *Kernel) error {
						_, err := sp.Touch(addr)
						return err
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if err := l.Call(func(k *Kernel) error {
		if got := int(k.Stats().ContainersCreated); got != clients {
			t.Errorf("containers = %d, want %d", got, clients)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLoopGatesTimerCallbacks proves wall-clock timer expirations are
// delivered through the mailbox: a callback scheduled on the RealClock
// mutates engine-owned state that Calls are concurrently mutating — only
// serialization through the loop keeps -race quiet, and the observed
// ordering must show the callback ran on the engine goroutine.
func TestLoopGatesTimerCallbacks(t *testing.T) {
	k := realKernel(64)
	l := NewLoop(k)
	defer l.Close()

	hits := 0 // engine-owned: touched only inside mailbox closures
	fired := make(chan struct{})
	if err := l.Call(func(k *Kernel) error {
		k.Clock.After(time.Millisecond, func(simtime.Time) {
			hits++
			close(fired)
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := l.Call(func(*Kernel) error { hits++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("gated timer callback never delivered")
	}
	if err := l.Call(func(*Kernel) error {
		if hits != 101 {
			t.Errorf("hits = %d, want 101", hits)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLoopCloseDrainsAndRejects: commands enqueued before Close run; calls
// after Close report ErrLoopClosed; Close is idempotent.
func TestLoopCloseDrainsAndRejects(t *testing.T) {
	k := realKernel(64)
	l := NewLoop(k)

	ran := false
	if !l.Async(func(*Kernel) { ran = true }) {
		t.Fatal("Async rejected before Close")
	}
	l.Close()
	l.Close()
	if !ran {
		t.Fatal("command enqueued before Close was dropped")
	}
	if err := l.Call(func(*Kernel) error { return nil }); !errors.Is(err, ErrLoopClosed) {
		t.Fatalf("Call after Close = %v, want ErrLoopClosed", err)
	}
	if l.Async(func(*Kernel) {}) {
		t.Fatal("Async accepted after Close")
	}
}

// TestLoopCloseNeverRunsTimerCallbacksInline is the shutdown-race
// regression: timers armed before Close that expire around or after it must
// either be applied by the engine goroutine or dropped — never run inline
// on a Go timer goroutine, where they would race with the drain still in
// progress or with the closer, who owns the kernel after Close. The
// callbacks and the closer both mutate the same engine-owned state; under
// -race an inline delivery is flagged immediately.
func TestLoopCloseNeverRunsTimerCallbacksInline(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		k := realKernel(64)
		l := NewLoop(k)
		state := 0 // engine-owned until Close returns, then closer-owned
		if err := l.Call(func(k *Kernel) error {
			for i := 0; i < 8; i++ {
				k.Clock.After(time.Duration(i)*50*time.Microsecond, func(simtime.Time) {
					state++
				})
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		l.Close()
		// Ownership has passed to us; a late inline callback would race.
		state++
		_ = state
	}
}

// TestLoopCloseKeepsGateInstalled: after Close the RealClock gate must not
// revert to inline dispatch — late expirations are dropped by the dead
// loop's gate instead of running on timer goroutines.
func TestLoopCloseKeepsGateInstalled(t *testing.T) {
	k := realKernel(64)
	l := NewLoop(k)
	rc := k.Clock.Backend().(*substrate.RealClock)
	ran := make(chan struct{})
	if err := l.Call(func(k *Kernel) error {
		k.Clock.After(20*time.Millisecond, func(simtime.Time) { close(ran) })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	select {
	case <-ran:
		t.Fatal("timer callback ran after Close")
	case <-time.After(60 * time.Millisecond):
	}
	// The dropped callback's pending entry deliberately never clears.
	if rc.Pending() == 0 {
		t.Fatal("dropped callback vanished from Pending")
	}
}

// TestLoopOnSimKernel: the loop is substrate-agnostic — a simulated kernel
// can be driven through it too (there is just no gate to install).
func TestLoopOnSimKernel(t *testing.T) {
	k := testKernel(64)
	l := NewLoop(k)
	defer l.Close()
	if err := l.Call(func(k *Kernel) error {
		sp := k.NewSpace()
		_, _, err := k.Allocate(sp, 4*4096, WithPolicy(simpleSpec(2)))
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRealtimeKernelPayloads: on the realtime substrate frames carry real
// page payloads from the arena.
func TestRealtimeKernelPayloads(t *testing.T) {
	k := realKernel(64)
	if !k.VM.Frames.HasArena() {
		t.Fatal("realtime kernel frames have no payload arena")
	}
	if k.Clock.IsSim() {
		t.Fatal("realtime kernel got a sim clock")
	}
}
