package core

import (
	"strings"
	"testing"
	"time"

	"hipec/internal/mem"
)

// runProg appends a scratch event to an existing container and executes it.
func runProg(t *testing.T, k *Kernel, c *Container, cmds ...Command) (*Operand, error) {
	t.Helper()
	ev := c.AppendEventForTest(NewProgram(cmds...))
	return k.Executor.Run(c, ev)
}

func newExecFixture(t *testing.T) (*Kernel, *Container) {
	t.Helper()
	k := testKernel(128)
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 16*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	// Make a few pages resident (4 on Active, 4 left on Free).
	for i := int64(0); i < 4; i++ {
		if _, err := sp.Write(e.Start + i*4096); err != nil {
			t.Fatal(err)
		}
	}
	return k, c
}

func TestInQCommand(t *testing.T) {
	k, c := newExecFixture(t)
	// Dequeue a page from Active, test membership before/after enqueue.
	res, err := runProg(t, k, c,
		Encode(OpDeQueue, SlotPageReg, SlotActiveQueue, QueueHead),
		Encode(OpInQ, SlotActiveQueue, SlotPageReg, 0),
		Encode(OpJump, JumpIfTrue, 0, 6), // must NOT be on active anymore
		Encode(OpEnQueue, SlotPageReg, SlotActiveQueue, QueueTail),
		Encode(OpReturn, SlotOne, 0, 0),  // CC5: correct path
		Encode(OpReturn, SlotZero, 0, 0), // CC6: wrong path
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntValue() != 1 {
		t.Fatal("InQ reported dequeued page as still enqueued")
	}
	// Now the page is back on active: InQ must see it. Registers were
	// cleared by EnQueue, so re-dequeue and re-enqueue won't help — use
	// a fresh dequeue and leave it in the register.
	res, err = runProg(t, k, c,
		Encode(OpDeQueue, SlotPageReg, SlotActiveQueue, QueueHead),
		Encode(OpEnQueue, SlotPageReg, SlotInactiveQueue, QueueTail),
		Encode(OpDeQueue, SlotPageReg, SlotInactiveQueue, QueueTail),
		Encode(OpInQ, SlotInactiveQueue, SlotPageReg, 0),
		Encode(OpJump, JumpIfTrue, 0, 7),
		Encode(OpReturn, SlotOne, 0, 0),
		Encode(OpReturn, SlotZero, 0, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntValue() != 1 {
		t.Fatal("InQ membership after moves wrong")
	}
}

func TestLogicCommands(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	bt := uint8(SlotUser)     // bool true
	bf := uint8(SlotUser + 1) // bool false
	spec.Operands = []OperandDecl{
		{Slot: bt, Kind: KindBool, Name: "t", Init: 1},
		{Slot: bf, Kind: KindBool, Name: "f", Init: 0},
	}
	_, c, err := k.Allocate(sp, 4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	check := func(flag uint8, a, b uint8, want bool) {
		t.Helper()
		res, err := runProg(t, k, c,
			Encode(OpLogic, a, b, flag),
			Encode(OpJump, JumpIfTrue, 0, 4),
			Encode(OpReturn, SlotZero, 0, 0), // CC3: false path
			Encode(OpReturn, SlotOne, 0, 0),  // CC4: true path
		)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.IntValue() == 1; got != want {
			t.Fatalf("Logic flag=%d(%v,%v) = %t, want %t", flag, a, b, got, want)
		}
	}
	check(LogicAnd, bt, bt, true)
	check(LogicAnd, bt, bf, false)
	check(LogicOr, bf, bt, true)
	check(LogicOr, bf, bf, false)
	check(LogicXor, bt, bf, true)
	check(LogicXor, bt, bt, false)
	check(LogicNot, bf, 0, true)
	check(LogicNot, bt, 0, false)
}

func TestSetModifyBit(t *testing.T) {
	k, c := newExecFixture(t)
	_, err := runProg(t, k, c,
		Encode(OpDeQueue, SlotPageReg, SlotActiveQueue, QueueHead),
		Encode(OpSet, SlotPageReg, SetBitModify, SetOpClear),
		Encode(OpMod, SlotPageReg, 0, 0),
		Encode(OpJump, JumpIfTrue, 0, 7),
		Encode(OpSet, SlotPageReg, SetBitModify, SetOpSet),
		Encode(OpEnQueue, SlotPageReg, SlotActiveQueue, QueueTail),
		Encode(OpReturn, SlotOne, 0, 0),
		Encode(OpReturn, SlotZero, 0, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	// The page went back dirty (SetOpSet before EnQueue).
	dirty := 0
	c.Active.Each(func(p *mem.Page) bool {
		if p.Modified {
			dirty++
		}
		return true
	})
	if dirty == 0 {
		t.Fatal("Set modify bit did not stick")
	}
}

func TestFindMissSetsCRFalse(t *testing.T) {
	k, c := newExecFixture(t)
	far := uint8(SlotUser)
	c.operands[far] = Operand{Kind: KindInt, Name: "far", Int: 15 * 4096} // never touched
	res, err := runProg(t, k, c,
		Encode(OpFind, SlotPageReg, far, 0),
		Encode(OpJump, JumpIfTrue, 0, 4),
		Encode(OpReturn, SlotOne, 0, 0),  // CC3: miss path
		Encode(OpReturn, SlotZero, 0, 0), // CC4: hit path
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntValue() != 1 {
		t.Fatal("Find of non-resident address reported a hit")
	}
}

func TestReleasePageVariant(t *testing.T) {
	k, c := newExecFixture(t)
	before := c.Allocated()
	freeBefore := k.Daemon.FreeCount()
	_, err := runProg(t, k, c,
		Encode(OpDeQueue, SlotPageReg, SlotActiveQueue, QueueHead),
		Encode(OpRelease, SlotPageReg, 0, 0),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Allocated() != before-1 {
		t.Fatalf("allocated %d -> %d", before, c.Allocated())
	}
	// The released frame may be dirty: it is laundered asynchronously
	// before joining the pool, or free immediately if clean.
	k.Clock.Advance(time.Second)
	if got := k.Daemon.FreeCount(); got != freeBefore+1 {
		t.Fatalf("machine free %d -> %d, want +1", freeBefore, got)
	}
}

func TestActivateDepthLimit(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	_, c, err := k.Allocate(sp, 4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	// Two events activating each other. The verifier now rejects this at
	// registration (activate-cycle), so inject the programs behind its
	// back to prove the runtime nesting limit still backstops.
	c.AppendEventForTest(NewProgram(Encode(OpActivate, 3, 0, 0), Encode(OpReturn, 0, 0, 0)))
	c.AppendEventForTest(NewProgram(Encode(OpActivate, 2, 0, 0), Encode(OpReturn, 0, 0, 0)))
	if _, err := k.Executor.Run(c, 2); err == nil {
		t.Fatal("mutual recursion not caught")
	}
	if !strings.Contains(c.TerminationReason(), "nesting") {
		t.Fatalf("reason = %q", c.TerminationReason())
	}
}

func TestRequestZeroAlwaysGranted(t *testing.T) {
	k, c := newExecFixture(t)
	res, err := runProg(t, k, c,
		Encode(OpRequest, SlotZero, 0, 0),
		Encode(OpJump, JumpIfTrue, 0, 4),
		Encode(OpReturn, SlotZero, 0, 0),
		Encode(OpReturn, SlotOne, 0, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntValue() != 1 {
		t.Fatal("Request of zero frames denied")
	}
}

func TestFlushFallbackWhenMachineExhausted(t *testing.T) {
	// A machine so small the frame manager cannot find a replacement
	// frame: FlushExchange must fall back to a synchronous write and
	// return the same frame.
	k := testKernel(16)
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 8*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	sp.Write(e.Start)
	// Exhaust the machine: with the reserve at the full size, TakeFree
	// can never hand out a replacement frame.
	k.Daemon.Targets.Reserved = 16
	before := c.Allocated()
	_, err = runProg(t, k, c,
		Encode(OpDeQueue, SlotPageReg, SlotActiveQueue, QueueHead),
		Encode(OpFlush, SlotPageReg, 0, 0),
		Encode(OpEnQueue, SlotPageReg, SlotFreeQueue, QueueTail),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Allocated() != before {
		t.Fatal("fallback flush changed the grant")
	}
	if k.VM.Stats().PageOuts != 1 {
		t.Fatalf("PageOuts = %d", k.VM.Stats().PageOuts)
	}
}

func TestImplicitLaunderOnDirtyFree(t *testing.T) {
	// A policy that frees a dirty page without Flush: the kernel must
	// launder it rather than lose the data.
	k := New(Config{Frames: 128, KeepData: true})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 8*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sp.Write(e.Start)
	p.Data[0] = 0xEE
	_, err = runProg(t, k, c,
		Encode(OpDeQueue, SlotPageReg, SlotActiveQueue, QueueHead),
		Encode(OpEnQueue, SlotPageReg, SlotFreeQueue, QueueTail), // dirty!
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if k.FM.Stats().ImplicitFlushes != 1 {
		t.Fatalf("ImplicitFlushes = %d", k.FM.Stats().ImplicitFlushes)
	}
	// The data must survive a re-fault.
	p2, err := sp.Touch(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Data[0] != 0xEE {
		t.Fatal("dirty data lost when policy freed without Flush")
	}
}

func TestCheckerAdaptiveHalving(t *testing.T) {
	k := testKernel(64)
	// The verifier statically proves this loop infinite; the watchdog
	// test needs it to load anyway.
	k.Checker.AllowUnbounded = true
	ck := k.Checker
	ck.TimeOut = time.Millisecond
	ck.WakeUp = 4 * time.Second
	ck.Start()
	sp := k.NewSpace()
	spec := simpleSpec(4)
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpComp, SlotZero, SlotOne, CompLT),
		Encode(OpJump, JumpIfTrue, 0, 1),
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead),
		Encode(OpReturn, SlotPageReg, 0, 0),
	)
	k.Executor.MaxSteps = 1 << 30 // let the checker do the killing
	e, _, err := k.Allocate(sp, 4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err == nil {
		t.Fatal("runaway survived")
	}
	// Timeout detected: the wakeup interval halves (4s -> 2s).
	if ck.WakeUp != 2*time.Second {
		t.Fatalf("WakeUp = %v after timeout, want 2s", ck.WakeUp)
	}
	// Quiet period: it doubles back up to the clamp.
	k.Clock.Advance(2 * time.Minute)
	if ck.WakeUp != ck.MaxWakeUp {
		t.Fatalf("WakeUp = %v after quiet period, want %v", ck.WakeUp, ck.MaxWakeUp)
	}
}

func TestCheckerStopStopsWakeups(t *testing.T) {
	k := testKernel(64)
	k.Checker.Start()
	k.Clock.Advance(3 * time.Second)
	n := k.Checker.Stats().Wakeups
	if n == 0 {
		t.Fatal("no wakeups before stop")
	}
	k.Checker.Stop()
	k.Clock.Advance(time.Minute)
	if k.Checker.Stats().Wakeups > n+1 {
		t.Fatalf("checker kept waking after Stop: %d -> %d", n, k.Checker.Stats().Wakeups)
	}
}

func TestExecutorTotalsAccumulate(t *testing.T) {
	k, c := newExecFixture(t)
	a0, c0 := k.Executor.TotalActivations(), k.Executor.TotalCommands()
	if _, err := runProg(t, k, c, Encode(OpReturn, SlotScratch, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if k.Executor.TotalActivations() != a0+1 || k.Executor.TotalCommands() != c0+1 {
		t.Fatalf("totals did not advance: %d/%d -> %d/%d",
			a0, c0, k.Executor.TotalActivations(), k.Executor.TotalCommands())
	}
}

func TestExecutorTraceOutput(t *testing.T) {
	k, c := newExecFixture(t)
	var buf strings.Builder
	k.Executor.Trace = k.NewTextTrace(&buf)
	if _, err := runProg(t, k, c,
		Encode(OpComp, SlotFreeCount, SlotZero, CompGT),
		Encode(OpReturn, SlotScratch, 0, 0),
	); err != nil {
		t.Fatal(err)
	}
	k.Executor.Trace = nil
	out := buf.String()
	for _, want := range []string{"Comp", "Return", "CC=1", "CR="} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestKernelReport(t *testing.T) {
	k, c := newExecFixture(t)
	out := k.Report()
	for _, want := range []string{"machine:", "daemon:", "manager:", "checker:", "containers:", "simple-fifo", "active"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	k.terminate(c, "test kill")
	if !strings.Contains(k.Report(), "test kill") {
		t.Fatal("terminated container reason not reported")
	}
	empty := testKernel(16)
	if !strings.Contains(empty.Report(), "containers: none") {
		t.Fatal("empty kernel report wrong")
	}
}
