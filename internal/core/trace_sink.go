package core

import (
	"fmt"
	"io"

	"hipec/internal/kevent"
)

// TextTrace is a kevent.Sink that renders EvPolicyCommand events as the
// classic one-line-per-command executor trace:
//
//	hipec<id> <event> CC=<cc>  CR=<cr>  <command>
//
// Attach it to Executor.Trace (the usual spot — per-command events flow only
// there) or to the kernel spine, where it ignores every other event type.
// Container and event names are resolved through the owning kernel.
type TextTrace struct {
	kernel *Kernel
	w      io.Writer
}

// NewTextTrace builds a trace sink writing to w.
func (k *Kernel) NewTextTrace(w io.Writer) *TextTrace {
	return &TextTrace{kernel: k, w: w}
}

// Emit implements kevent.Sink.
func (t *TextTrace) Emit(e kevent.Event) {
	if e.Type != kevent.EvPolicyCommand {
		return
	}
	eventName := fmt.Sprintf("event%d", e.Aux)
	if c := t.kernel.containerByID(int(e.Container)); c != nil {
		eventName = c.eventName(int(e.Aux))
	}
	fmt.Fprintf(t.w, "hipec%d %s CC=%-3d CR=%-5t %v\n",
		e.Container, eventName, e.Arg, e.Flag, Command(e.Addr))
}

// containerByID finds a container (live or dead) by ID.
func (k *Kernel) containerByID(id int) *Container {
	for _, c := range k.containers {
		if c.ID == id {
			return c
		}
	}
	return nil
}
