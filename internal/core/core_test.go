package core

import (
	"strings"
	"testing"
	"time"

	"hipec/internal/vm"
)

// testKernel builds a small kernel with cheap costs for unit tests.
func testKernel(frames int) *Kernel {
	return New(Config{
		Frames:        frames,
		PageSize:      4096,
		BurstFraction: 0.5,
	})
}

// simpleSpec is a minimal FIFO policy: take from the private free list,
// running the canned FIFO command over the active queue when it is empty.
func simpleSpec(minFrame int) *Spec {
	pageFault := NewProgram(
		Encode(OpEmptyQ, SlotFreeQueue, 0, 0),                    // CC1: free list empty?
		Encode(OpJump, JumpIfTrue, 0, 5),                         // CC2: yes -> replenish
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead), // CC3
		Encode(OpReturn, SlotPageReg, 0, 0),                      // CC4
		Encode(OpFIFO, SlotActiveQueue, 0, 0),                    // CC5: evict oldest
		Encode(OpJump, JumpAlways, 0, 3),                         // CC6
	)
	reclaim := NewProgram(
		Encode(OpEmptyQ, SlotFreeQueue, 0, 0),
		Encode(OpJump, JumpIfTrue, 0, 5),
		Encode(OpRelease, SlotOne, 0, 0), // give one frame back
		Encode(OpReturn, SlotScratch, 0, 0),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	return &Spec{
		Name:     "simple-fifo",
		Events:   []Program{pageFault, reclaim},
		MinFrame: minFrame,
	}
}

func TestCommandEncodingRoundTrip(t *testing.T) {
	c := Encode(OpDeQueue, 0x0B, 0x01, 0x01)
	if c.Op() != OpDeQueue || c.A() != 0x0B || c.B() != 0x01 || c.C() != 0x01 {
		t.Fatalf("round trip failed: %v", c)
	}
	if got := Command(0x070B0101); got != c {
		t.Fatalf("Table 2 byte image mismatch: %#08x vs %#08x", uint32(got), uint32(c))
	}
	if !strings.Contains(c.String(), "DeQueue") {
		t.Fatalf("String() = %q", c.String())
	}
	if Magic.String() != "HiPEC-Magic" {
		t.Fatalf("magic String() = %q", Magic.String())
	}
}

func TestOpcodeNames(t *testing.T) {
	for op := OpReturn; op <= maxExtOpcode; op++ {
		if strings.HasPrefix(op.String(), "Opcode(") {
			t.Fatalf("opcode %#02x has no name", uint8(op))
		}
	}
	if !strings.HasPrefix(Opcode(0xFF).String(), "Opcode(") {
		t.Fatal("unknown opcode did not format as raw")
	}
}

func TestActivateAndFaultBasics(t *testing.T) {
	k := testKernel(256)
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 16*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	if c.Allocated() != 8 || c.Free.Len() != 8 {
		t.Fatalf("minFrame grant: allocated=%d free=%d", c.Allocated(), c.Free.Len())
	}
	if k.FM.SpecificTotal() != 8 {
		t.Fatalf("SpecificTotal = %d", k.FM.SpecificTotal())
	}
	// Fault in 4 pages: all served from the private free list.
	for i := int64(0); i < 4; i++ {
		if _, err := sp.Touch(e.Start + i*4096); err != nil {
			t.Fatal(err)
		}
	}
	if c.Free.Len() != 4 || c.Active.Len() != 4 {
		t.Fatalf("after 4 faults: free=%d active=%d", c.Free.Len(), c.Active.Len())
	}
	if c.Stats().Activations != 4 {
		t.Fatalf("Activations = %d", c.Stats().Activations)
	}
	// Re-touch: hits, no policy execution.
	sp.Touch(e.Start)
	if c.Stats().Activations != 4 {
		t.Fatal("hit ran the policy")
	}
}

func TestFIFOReplacementCyclesWithinPrivatePool(t *testing.T) {
	k := testKernel(256)
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 32*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 32; i++ {
		if _, err := sp.Touch(e.Start + i*4096); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	if got := e.Object.ResidentCount(); got != 8 {
		t.Fatalf("resident = %d, want 8 (private pool size)", got)
	}
	// FIFO: the last 8 touched pages are resident.
	for i := int64(24); i < 32; i++ {
		if e.Object.Resident(i*4096) == nil {
			t.Fatalf("page %d should be resident", i)
		}
	}
	if c.Allocated() != 8 {
		t.Fatalf("allocated drifted to %d", c.Allocated())
	}
}

func TestTable2ProgramRunsVerbatim(t *testing.T) {
	// The FIFO-with-second-chance program exactly as printed in Table 2
	// of the paper (PageFault + Lack_free_frame), using this
	// implementation's slot layout. The Jump-iff-CR-false reconstruction
	// must make every annotated row behave as documented.
	pageFault := NewProgram(
		Encode(OpComp, SlotFreeCount, SlotReservedTgt, CompGT),   // CC1 if(_free_count > reserved_target)
		Encode(OpJump, JumpIfFalse, 0, 5),                        // CC2 /* else */ Jump to 5
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead), // CC3
		Encode(OpReturn, SlotPageReg, 0, 0),                      // CC4
		Encode(OpActivate, EventUser, 0, 0),                      // CC5 Activate Lack_free_frame
		Encode(OpJump, JumpIfFalse, 0, 3),                        // CC6 Jump (CR cleared by Activate)
	)
	// Structure of Table 2's Lack_free_frame, with the two empty-queue
	// guards a real kernel gets for free from its invariants (the paper's
	// Mach host always has inactive pages; our private pool starts with
	// everything on the active list).
	lack := NewProgram(
		Encode(OpComp, SlotFreeCount, SlotFreeTgt, CompLT),           // CC1 if(_free_count < free_target)
		Encode(OpJump, JumpIfFalse, 0, 24),                           // CC2 /* else */ done
		Encode(OpEmptyQ, SlotInactiveQueue, 0, 0),                    // CC3 guard
		Encode(OpJump, JumpIfTrue, 0, 16),                            // CC4 -> refill
		Encode(OpDeQueue, SlotPageReg, SlotInactiveQueue, QueueHead), // CC5
		Encode(OpRef, SlotPageReg, 0, 0),                             // CC6 referenced?
		Encode(OpJump, JumpIfFalse, 0, 11),                           // CC7 /* else */ reclaim it
		Encode(OpSet, SlotPageReg, SetBitReference, SetOpClear),      // CC8 second chance:
		Encode(OpEnQueue, SlotPageReg, SlotActiveQueue, QueueTail),   // CC9 back to active
		Encode(OpJump, JumpIfFalse, 0, 1),                            // CC10 loop
		Encode(OpMod, SlotPageReg, 0, 0),                             // CC11 modified?
		Encode(OpJump, JumpIfFalse, 0, 14),                           // CC12 /* else */ skip flush
		Encode(OpFlush, SlotPageReg, 0, 0),                           // CC13
		Encode(OpEnQueue, SlotPageReg, SlotFreeQueue, QueueHead),     // CC14 free it
		Encode(OpJump, JumpIfFalse, 0, 1),                            // CC15 loop
		Encode(OpComp, SlotInactiveCount, SlotInactiveTgt, CompLT),   // CC16 refill loop
		Encode(OpJump, JumpIfFalse, 0, 1),                            // CC17
		Encode(OpEmptyQ, SlotActiveQueue, 0, 0),                      // CC18 guard
		Encode(OpJump, JumpIfTrue, 0, 24),                            // CC19 nothing left anywhere
		Encode(OpDeQueue, SlotPageReg, SlotActiveQueue, QueueHead),   // CC20
		Encode(OpSet, SlotPageReg, SetBitReference, SetOpClear),      // CC21
		Encode(OpEnQueue, SlotPageReg, SlotInactiveQueue, QueueTail), // CC22
		Encode(OpJump, JumpIfFalse, 0, 16),                           // CC23
		Encode(OpReturn, SlotScratch, 0, 0),                          // CC24
	)
	reclaim := NewProgram(
		Encode(OpEmptyQ, SlotFreeQueue, 0, 0),
		Encode(OpJump, JumpIfTrue, 0, 4),
		Encode(OpRelease, SlotOne, 0, 0),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	spec := &Spec{
		Name:       "table2-fifo-2nd-chance",
		Events:     []Program{pageFault, reclaim, lack},
		EventNames: []string{"PageFault", "ReclaimFrame", "Lack_free_frame"},
		MinFrame:   16,
		Operands: []OperandDecl{
			{Slot: SlotFreeTgt, Kind: KindInt, Name: "free_target", Init: 4},
			{Slot: SlotInactiveTgt, Kind: KindInt, Name: "inactive_target", Init: 6},
			{Slot: SlotReservedTgt, Kind: KindInt, Name: "reserved_target", Init: 1},
		},
	}
	k := testKernel(256)
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 64*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	// Sweep the region twice with writes: forces replacement, second
	// chances, flushes and page-ins.
	for round := 0; round < 2; round++ {
		for i := int64(0); i < 64; i++ {
			if _, err := sp.Write(e.Start + i*4096); err != nil {
				t.Fatalf("round %d page %d: %v", round, i, err)
			}
		}
	}
	if c.State() != StateActive {
		t.Fatalf("container state %v: %s", c.State(), c.TerminationReason())
	}
	if c.Stats().Flushes == 0 {
		t.Fatal("no dirty pages were flushed")
	}
	if got := e.Object.ResidentCount(); got > 16 {
		t.Fatalf("resident %d exceeds private pool 16", got)
	}
	if sp.Stats().PageIns == 0 {
		t.Fatal("second sweep did not page anything back in")
	}
}

func TestMinFrameRejected(t *testing.T) {
	k := testKernel(64) // burst = 32 frames; minFrame below must fail on free frames
	sp := k.NewSpace()
	_, _, err := k.Allocate(sp, 16*4096, WithPolicy(simpleSpec(1000)))
	if err == nil {
		t.Fatal("oversized minFrame accepted")
	}
}

func TestHiPECDisabledKernelRejectsActivation(t *testing.T) {
	k := New(Config{Frames: 64, HiPECDisabled: true})
	sp := k.NewSpace()
	if _, _, err := k.Allocate(sp, 4096, WithPolicy(simpleSpec(4))); err == nil {
		t.Fatal("HiPEC-disabled kernel accepted a container")
	}
}

func TestRequestGrantsAndPartitionBurst(t *testing.T) {
	k := testKernel(128) // burst ≈ 64
	sp := k.NewSpace()
	chunk := uint8(SlotUser)
	spec := simpleSpec(8)
	spec.Operands = []OperandDecl{{Slot: chunk, Kind: KindInt, Name: "chunk", Init: 16, Const: true}}
	// PageFault that Requests more frames when empty.
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpEmptyQ, SlotFreeQueue, 0, 0),
		Encode(OpJump, JumpIfTrue, 0, 5),
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead),
		Encode(OpReturn, SlotPageReg, 0, 0),
		Encode(OpRequest, chunk, 0, 0), // CC5
		Encode(OpJump, JumpIfTrue, 0, 3),
		Encode(OpFIFO, SlotActiveQueue, 0, 0), // denied: recycle own pages
		Encode(OpJump, JumpAlways, 0, 3),
	)
	e, c, err := k.Allocate(sp, 256*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 256; i++ {
		if _, err := sp.Touch(e.Start + i*4096); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	if c.Stats().Requests == 0 {
		t.Fatal("policy never issued Request")
	}
	if got := k.FM.SpecificTotal(); got > k.FM.PartitionBurst {
		t.Fatalf("specific total %d exceeds partition burst %d", got, k.FM.PartitionBurst)
	}
	if c.Stats().RequestDenied == 0 {
		t.Fatal("burst never denied a request (watermark not exercised)")
	}
	if c.State() != StateActive {
		t.Fatalf("container died: %s", c.TerminationReason())
	}
}

func TestNormalReclamationFAFR(t *testing.T) {
	k := testKernel(128) // burst 64
	sp := k.NewSpace()
	// First container guarantees 16 frames but grows to 40.
	_, c1, err := k.Allocate(sp, 64*4096, WithPolicy(simpleSpec(16)))
	if err != nil {
		t.Fatal(err)
	}
	if !k.FM.Request(c1, 24) {
		t.Fatal("grow request denied")
	}
	if c1.Allocated() != 40 {
		t.Fatalf("allocated = %d, want 40", c1.Allocated())
	}
	// Second container takes 40 more: 80 > burst(64).
	_, c2, err := k.Allocate(sp, 64*4096, WithPolicy(simpleSpec(40)))
	if err != nil {
		t.Fatal(err)
	}
	if k.FM.SpecificTotal() != 80 {
		t.Fatalf("SpecificTotal = %d", k.FM.SpecificTotal())
	}
	// Balancing must reclaim back down to the burst via c1's
	// ReclaimFrame event (FAFR: first allocated pays first; c2 is at its
	// minimum and must not be touched).
	k.FM.BalanceSpecific()
	if got := k.FM.SpecificTotal(); got > k.FM.PartitionBurst {
		t.Fatalf("after balance specific total %d > burst %d", got, k.FM.PartitionBurst)
	}
	if c1.Allocated() >= 40 {
		t.Fatalf("FAFR did not reclaim from first container (allocated=%d)", c1.Allocated())
	}
	if c1.Allocated() < c1.MinFrame {
		t.Fatalf("reclaim violated minFrame: %d < %d", c1.Allocated(), c1.MinFrame)
	}
	if c2.Allocated() != 40 {
		t.Fatalf("balance touched the at-minimum container: %d", c2.Allocated())
	}
	if k.FM.Stats().NormalReclaims == 0 {
		t.Fatal("normal reclamation not counted")
	}
}

func TestForcedReclamationWhenPolicyWontGive(t *testing.T) {
	k := testKernel(128)
	sp := k.NewSpace()
	spec := simpleSpec(40)
	// A ReclaimFrame event that refuses to release anything.
	spec.Events[EventReclaimFrame] = NewProgram(
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	e, c1, err := k.Allocate(sp, 64*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if !k.FM.Request(c1, 20) { // 60 total, 20 above the minimum
		t.Fatal("grow request denied")
	}
	// Make some frames resident so forced reclamation sees queue pages.
	for i := int64(0); i < 20; i++ {
		sp.Touch(e.Start + i*4096)
	}
	_, _, err = k.Allocate(sp, 64*4096, WithPolicy(simpleSpec(40)))
	if err != nil {
		t.Fatal(err)
	}
	// 100 granted > burst 64. Normal reclamation gets nothing (the event
	// refuses), so the manager must fall back to forced reclamation,
	// stripping c1 down to its guaranteed minimum.
	k.FM.BalanceSpecific()
	if k.FM.Stats().ForcedReclaims == 0 {
		t.Fatal("forced reclamation never ran")
	}
	if c1.Allocated() != c1.MinFrame {
		t.Fatalf("forced reclaim should stop exactly at minFrame: %d != %d", c1.Allocated(), c1.MinFrame)
	}
	if k.FM.Stats().NormalReclaims != 0 {
		t.Fatal("normal reclamation should have yielded nothing")
	}
}

func TestValidationRejectsMalformedPrograms(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"missing magic", func(s *Spec) {
			s.Events[EventPageFault] = Program{Encode(OpReturn, 0, 0, 0)}
		}},
		{"illegal opcode", func(s *Spec) {
			s.Events[EventPageFault] = NewProgram(Encode(Opcode(0x7F), 0, 0, 0), Encode(OpReturn, 0, 0, 0))
		}},
		{"jump out of range", func(s *Spec) {
			s.Events[EventPageFault] = NewProgram(Encode(OpJump, JumpAlways, 0, 99), Encode(OpReturn, 0, 0, 0))
		}},
		{"wrong operand type", func(s *Spec) {
			s.Events[EventPageFault] = NewProgram(
				Encode(OpDeQueue, SlotFreeCount, SlotFreeQueue, QueueHead), // dest is int, not page
				Encode(OpReturn, 0, 0, 0))
		}},
		{"no return", func(s *Spec) {
			s.Events[EventPageFault] = NewProgram(Encode(OpComp, SlotZero, SlotOne, CompEQ))
		}},
		{"falls off end", func(s *Spec) {
			s.Events[EventPageFault] = NewProgram(
				Encode(OpJump, JumpAlways, 0, 3),          // CC1
				Encode(OpReturn, 0, 0, 0),                 // CC2 unreachable
				Encode(OpComp, SlotZero, SlotOne, CompEQ), // CC3 falls off the end
			)
		}},
		{"missing reclaim event", func(s *Spec) {
			s.Events = s.Events[:1]
		}},
		{"activate undefined event", func(s *Spec) {
			s.Events[EventPageFault] = NewProgram(Encode(OpActivate, 9, 0, 0), Encode(OpReturn, 0, 0, 0))
		}},
		{"self-recursive activate", func(s *Spec) {
			s.Events[EventPageFault] = NewProgram(Encode(OpActivate, EventPageFault, 0, 0), Encode(OpReturn, 0, 0, 0))
		}},
		{"extension without flag", func(s *Spec) {
			s.Events[EventPageFault] = NewProgram(Encode(OpAge, SlotActiveQueue, 0, 0), Encode(OpReturn, 0, 0, 0))
		}},
		{"write to read-only operand", func(s *Spec) {
			s.Events[EventPageFault] = NewProgram(
				Encode(OpArith, SlotFreeCount, SlotOne, ArithAdd),
				Encode(OpReturn, 0, 0, 0))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := simpleSpec(4)
			tc.mutate(spec)
			if _, _, err := k.Allocate(sp, 4096, WithPolicy(spec)); err == nil {
				t.Fatalf("%s: accepted", tc.name)
			}
		})
	}
	if k.Checker.Stats().ValidationBad != int64(len(cases)) {
		t.Fatalf("ValidationBad = %d, want %d", k.Checker.Stats().ValidationBad, len(cases))
	}
}

func TestRuntimeErrorTerminatesContainer(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	// Statically valid but dequeues from an empty queue at runtime.
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpDeQueue, SlotPageReg, SlotInactiveQueue, QueueHead),
		Encode(OpReturn, SlotPageReg, 0, 0),
	)
	e, c, err := k.Allocate(sp, 4*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err == nil {
		t.Fatal("fault succeeded with broken policy")
	}
	if c.State() != StateTerminated {
		t.Fatalf("state = %v", c.State())
	}
	if !strings.Contains(c.TerminationReason(), "empty queue") {
		t.Fatalf("reason = %q", c.TerminationReason())
	}
	// Frames returned to the machine pool.
	if c.Allocated() != 0 || k.FM.SpecificTotal() != 0 {
		t.Fatalf("leak: allocated=%d specific=%d", c.Allocated(), k.FM.SpecificTotal())
	}
	// Subsequent faults fall back to the default policy.
	if _, err := sp.Touch(e.Start); err != nil {
		t.Fatalf("fallback fault failed: %v", err)
	}
}

func TestWatchdogKillsRunawayPolicy(t *testing.T) {
	k := testKernel(64)
	// The verifier statically proves this loop infinite; the watchdog
	// test needs it to load anyway.
	k.Checker.AllowUnbounded = true
	k.Checker.TimeOut = 10 * time.Millisecond
	k.Checker.WakeUp = 20 * time.Millisecond // first wakeup lands mid-execution
	k.Checker.Start()
	sp := k.NewSpace()
	spec := simpleSpec(4)
	// Infinite loop: Comp sets CR, jump-if-true back. Statically this
	// passes reachability (a path reaches Return).
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpComp, SlotZero, SlotOne, CompLT), // CC1: always true
		Encode(OpJump, JumpIfTrue, 0, 1),          // CC2: loop
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead),
		Encode(OpReturn, SlotPageReg, 0, 0),
	)
	e, c, err := k.Allocate(sp, 4*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err == nil {
		t.Fatal("runaway policy fault returned success")
	}
	if c.State() != StateTerminated {
		t.Fatalf("state = %v (%s)", c.State(), c.TerminationReason())
	}
	if !strings.Contains(c.TerminationReason(), "timeout") {
		t.Fatalf("reason = %q", c.TerminationReason())
	}
	if k.Checker.Stats().Timeouts == 0 {
		t.Fatal("checker did not count the timeout")
	}
}

func TestWatchdogAdaptiveSleep(t *testing.T) {
	k := testKernel(64)
	ck := k.Checker
	ck.Start()
	start := ck.WakeUp
	// No activity: wakeups double the sleep up to the maximum.
	k.Clock.Advance(time.Minute)
	if ck.WakeUp != ck.MaxWakeUp {
		t.Fatalf("WakeUp = %v, want max %v (started at %v)", ck.WakeUp, ck.MaxWakeUp, start)
	}
	if ck.Stats().Wakeups == 0 {
		t.Fatal("no wakeups")
	}
	// Clamp at minimum is covered by the runaway test halving path.
	if ck.MinWakeUp != 250*time.Millisecond || ck.MaxWakeUp != 8*time.Second {
		t.Fatalf("clamps = [%v, %v], want paper's [250ms, 8s]", ck.MinWakeUp, ck.MaxWakeUp)
	}
}

func TestMaxStepsBackstop(t *testing.T) {
	k := testKernel(64)
	// The verifier statically proves this loop infinite; the watchdog
	// test needs it to load anyway.
	k.Checker.AllowUnbounded = true
	k.Executor.Costs = ExecCosts{} // zero cost: clock never advances
	k.Executor.MaxSteps = 1000
	sp := k.NewSpace()
	spec := simpleSpec(4)
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpComp, SlotZero, SlotOne, CompLT),
		Encode(OpJump, JumpIfTrue, 0, 1),
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead),
		Encode(OpReturn, SlotPageReg, 0, 0),
	)
	e, c, err := k.Allocate(sp, 4*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err == nil {
		t.Fatal("infinite loop not caught")
	}
	if !strings.Contains(c.TerminationReason(), "runaway") {
		t.Fatalf("reason = %q", c.TerminationReason())
	}
}

func TestFlushExchangeKeepsPoolSizeConstant(t *testing.T) {
	k := testKernel(256)
	sp := k.NewSpace()
	spec := simpleSpec(8)
	e, c, err := k.Allocate(sp, 8*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	// Dirty every page.
	for i := int64(0); i < 8; i++ {
		sp.Write(e.Start + i*4096)
	}
	// Run a synthetic flush: dequeue a dirty page from active, Flush it,
	// enqueue the replacement to the free list.
	prog := NewProgram(
		Encode(OpDeQueue, SlotPageReg, SlotActiveQueue, QueueHead),
		Encode(OpFlush, SlotPageReg, 0, 0),
		Encode(OpEnQueue, SlotPageReg, SlotFreeQueue, QueueTail),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	c.AppendEventForTest(prog)
	before := c.Allocated()
	if _, err := k.Executor.Run(c, len(c.events)-1); err != nil {
		t.Fatal(err)
	}
	if c.Allocated() != before {
		t.Fatalf("allocated changed across flush: %d -> %d", before, c.Allocated())
	}
	if c.Stats().Flushes != 1 || k.FM.Stats().FlushExchanges != 1 {
		t.Fatalf("flush stats: container=%d fm=%d", c.Stats().Flushes, k.FM.Stats().FlushExchanges)
	}
	// The laundered frame rejoins the pool when its write completes.
	pending := k.FM.Stats().LaunderPending
	if pending != 1 {
		t.Fatalf("LaunderPending = %d, want 1", pending)
	}
	k.Clock.Advance(time.Second)
	if k.FM.Stats().LaunderPending != 0 {
		t.Fatal("laundered frame never returned")
	}
}

func TestMigrateExtension(t *testing.T) {
	k := testKernel(128)
	sp := k.NewSpace()
	specA := simpleSpec(8)
	specA.EnableExtensions = true
	_, ca, err := k.Allocate(sp, 8*4096, WithPolicy(specA))
	if err != nil {
		t.Fatal(err)
	}
	_, cb, err := k.Allocate(sp, 8*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	// Event: dequeue a free frame and migrate it to container cb.
	target := uint8(SlotUser)
	ca.operands[target] = Operand{Kind: KindInt, Name: "target", Int: int64(cb.ID)}
	prog := NewProgram(
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead),
		Encode(OpMigrate, SlotPageReg, target, 0),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	ca.AppendEventForTest(prog)
	if _, err := k.Executor.Run(ca, len(ca.events)-1); err != nil {
		t.Fatal(err)
	}
	if ca.Allocated() != 7 || cb.Allocated() != 9 {
		t.Fatalf("migration accounting: a=%d b=%d", ca.Allocated(), cb.Allocated())
	}
	if cb.Free.Len() != 9 {
		t.Fatalf("migrated frame not on target free list (%d)", cb.Free.Len())
	}
	if cb.Stats().Migrations != 1 {
		t.Fatal("migration not counted")
	}
}

func TestDestroyContainerReturnsEverything(t *testing.T) {
	k := testKernel(128)
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 16*4096, WithPolicy(simpleSpec(16)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		sp.Write(e.Start + i*4096)
	}
	freeBefore := k.Daemon.FreeCount()
	allocated := c.Allocated()
	k.DestroyContainer(c)
	k.Clock.Advance(time.Second) // drain laundering
	if c.State() != StateDestroyed {
		t.Fatalf("state = %v", c.State())
	}
	if got := k.Daemon.FreeCount(); got != freeBefore+allocated {
		t.Fatalf("free = %d, want %d", got, freeBefore+allocated)
	}
	if k.FM.SpecificTotal() != 0 {
		t.Fatalf("SpecificTotal = %d", k.FM.SpecificTotal())
	}
	if len(k.FM.Containers()) != 0 {
		t.Fatal("container still on manager list")
	}
}

func TestArithAndLogicCommands(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	va := uint8(SlotUser)
	vb := uint8(SlotUser + 1)
	spec.Operands = []OperandDecl{
		{Slot: va, Kind: KindInt, Name: "a", Init: 10},
		{Slot: vb, Kind: KindInt, Name: "b", Init: 3},
	}
	_, c, err := k.Allocate(sp, 4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	run := func(cmds ...Command) *Operand {
		prog := NewProgram(append(cmds, Encode(OpReturn, va, 0, 0))...)
		c.AppendEventForTest(prog)
		res, err := k.Executor.Run(c, len(c.events)-1)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(Encode(OpArith, va, vb, ArithAdd)); res.Int != 13 {
		t.Fatalf("10+3 = %d", res.Int)
	}
	if res := run(Encode(OpArith, va, vb, ArithMul)); res.Int != 39 {
		t.Fatalf("13*3 = %d", res.Int)
	}
	if res := run(Encode(OpArith, va, vb, ArithDiv)); res.Int != 13 {
		t.Fatalf("39/3 = %d", res.Int)
	}
	if res := run(Encode(OpArith, va, vb, ArithMod)); res.Int != 1 {
		t.Fatalf("13%%3 = %d", res.Int)
	}
	if res := run(Encode(OpArith, va, 0, ArithInc)); res.Int != 2 {
		t.Fatalf("1++ = %d", res.Int)
	}
	if res := run(Encode(OpArith, va, vb, ArithMov)); res.Int != 3 {
		t.Fatalf("mov = %d", res.Int)
	}
	// Division by zero terminates.
	zero := uint8(SlotZero)
	prog := NewProgram(Encode(OpArith, va, zero, ArithDiv), Encode(OpReturn, va, 0, 0))
	c.AppendEventForTest(prog)
	if _, err := k.Executor.Run(c, len(c.events)-1); err == nil {
		t.Fatal("division by zero succeeded")
	}
	if c.State() != StateTerminated {
		t.Fatal("div-by-zero did not terminate container")
	}
}

func TestExecCostsChargedToClock(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	e, _, err := k.Allocate(sp, 4096, WithPolicy(simpleSpec(4)))
	if err != nil {
		t.Fatal(err)
	}
	before := k.Clock.Now()
	sp.Touch(e.Start)
	elapsed := time.Duration(k.Clock.Now().Sub(before))
	// Fault service + activation + >=3 commands.
	min := k.VM.Costs.FaultService + k.Executor.Costs.Activation + 3*k.Executor.Costs.PerCommand
	if elapsed < min {
		t.Fatalf("fault charged %v, want >= %v", elapsed, min)
	}
}

func TestLRUAndMRUVictimSelection(t *testing.T) {
	k := testKernel(128)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	e, c, err := k.Allocate(sp, 16*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	// Fault 4 pages (fills pool), then touch 0 and 1 again so page 2 is
	// LRU and page 1... ordering: touches: 0,1,2,3 then 0,1 → LRU=2, MRU=1.
	for i := int64(0); i < 4; i++ {
		sp.Touch(e.Start + i*4096)
		k.Clock.Advance(time.Millisecond)
	}
	sp.Touch(e.Start + 0*4096)
	k.Clock.Advance(time.Millisecond)
	sp.Touch(e.Start + 1*4096)

	runCanned := func(op Opcode) {
		prog := NewProgram(Encode(op, SlotActiveQueue, 0, 0), Encode(OpReturn, SlotScratch, 0, 0))
		c.AppendEventForTest(prog)
		if _, err := k.Executor.Run(c, len(c.events)-1); err != nil {
			t.Fatal(err)
		}
	}
	runCanned(OpLRU)
	if e.Object.Resident(2*4096) != nil {
		t.Fatal("LRU did not evict page 2")
	}
	runCanned(OpMRU)
	if e.Object.Resident(1*4096) != nil {
		t.Fatal("MRU did not evict page 1")
	}
	// Both victims landed on the private free list.
	if c.Free.Len() != 2 {
		t.Fatalf("free list = %d, want 2", c.Free.Len())
	}
}

func TestFindCommand(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	e, c, err := k.Allocate(sp, 4*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sp.Touch(e.Start)
	addr := uint8(SlotUser)
	c.operands[addr] = Operand{Kind: KindInt, Name: "addr", Int: p.Offset + 100}
	prog := NewProgram(
		Encode(OpFind, SlotPageReg, addr, 0),
		Encode(OpReturn, SlotPageReg, 0, 0),
	)
	c.AppendEventForTest(prog)
	res, err := k.Executor.Run(c, len(c.events)-1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Page != p {
		t.Fatalf("Find returned %v, want %v", res.Page, p)
	}
}

func TestMapWithPolicyOnPopulatedObject(t *testing.T) {
	k := New(Config{Frames: 256, KeepData: true})
	sp := k.NewSpace()
	obj := k.VM.NewObject(8*4096, false)
	data := make([]byte, 8*4096)
	data[5*4096] = 0x5A
	if err := k.VM.Populate(obj, data); err != nil {
		t.Fatal(err)
	}
	e, c, err := k.Map(sp, obj, 0, obj.Size, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := sp.Touch(e.Start + 5*4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data[0] != 0x5A {
		t.Fatal("page-in through HiPEC policy lost data")
	}
	if sp.Stats().PageIns != 1 {
		t.Fatalf("PageIns = %d", sp.Stats().PageIns)
	}
	if c.State() != StateActive {
		t.Fatal(c.TerminationReason())
	}
}

// vmGuard ensures core.Container satisfies vm.Policy.
var _ vm.Policy = (*Container)(nil)
