// Package core implements the HiPEC mechanism itself: the container kernel
// object, the in-kernel policy executor, the global frame manager (§4.3.1)
// and the security checker (§4.3.3).
//
// The instruction-set vocabulary — command encoding, opcodes, flags,
// well-known operand slots, event numbers, operand kinds — lives in the
// leaf package internal/isa so that the hpl translator and the static
// verifier (internal/hpl/verify) can share it without importing the kernel.
// This file re-exports that vocabulary under the historical core names, so
// policy specs and tests written against core.OpDeQueue etc. compile
// unchanged.
package core

import "hipec/internal/isa"

// Opcode is the 8-bit HiPEC operator code (Table 1). Alias of isa.Opcode.
type Opcode = isa.Opcode

// The 20 commands of the paper plus the extension opcodes (§6).
const (
	OpReturn   = isa.OpReturn
	OpArith    = isa.OpArith
	OpComp     = isa.OpComp
	OpLogic    = isa.OpLogic
	OpEmptyQ   = isa.OpEmptyQ
	OpInQ      = isa.OpInQ
	OpJump     = isa.OpJump
	OpDeQueue  = isa.OpDeQueue
	OpEnQueue  = isa.OpEnQueue
	OpRequest  = isa.OpRequest
	OpRelease  = isa.OpRelease
	OpFlush    = isa.OpFlush
	OpSet      = isa.OpSet
	OpRef      = isa.OpRef
	OpMod      = isa.OpMod
	OpFind     = isa.OpFind
	OpActivate = isa.OpActivate
	OpFIFO     = isa.OpFIFO
	OpLRU      = isa.OpLRU
	OpMRU      = isa.OpMRU
	OpMigrate  = isa.OpMigrate
	OpAge      = isa.OpAge

	maxBaseOpcode = isa.MaxBaseOpcode
	maxExtOpcode  = isa.MaxExtOpcode
)

// Arith flags (op1 = op1 OP op2, except Mov/Inc/Dec).
const (
	ArithAdd = isa.ArithAdd
	ArithSub = isa.ArithSub
	ArithMul = isa.ArithMul
	ArithDiv = isa.ArithDiv
	ArithMod = isa.ArithMod
	ArithMov = isa.ArithMov
	ArithInc = isa.ArithInc
	ArithDec = isa.ArithDec
)

// Comp flags (Table 2 fixes CompGT=1, CompLT=2).
const (
	CompEQ = isa.CompEQ
	CompGT = isa.CompGT
	CompLT = isa.CompLT
	CompNE = isa.CompNE
	CompGE = isa.CompGE
	CompLE = isa.CompLE
)

// Logic flags.
const (
	LogicAnd = isa.LogicAnd
	LogicOr  = isa.LogicOr
	LogicNot = isa.LogicNot
	LogicXor = isa.LogicXor
)

// Jump modes (op1 byte).
const (
	JumpIfFalse = isa.JumpIfFalse
	JumpAlways  = isa.JumpAlways
	JumpIfTrue  = isa.JumpIfTrue
)

// Queue-end flags for DeQueue/EnQueue.
const (
	QueueHead = isa.QueueHead
	QueueTail = isa.QueueTail
)

// Set command selectors: flag1 chooses the bit, flag2 the operation.
const (
	SetBitModify    = isa.SetBitModify
	SetBitReference = isa.SetBitReference
	SetOpSet        = isa.SetOpSet
	SetOpClear      = isa.SetOpClear
)

// Magic is the HiPEC magic number occupying word 0 of every event program.
const Magic = isa.Magic

// Command is one encoded 32-bit HiPEC command word. Alias of isa.Command.
type Command = isa.Command

// Encode packs an opcode and three operand bytes into a command word.
func Encode(op Opcode, a, b, c uint8) Command { return isa.Encode(op, a, b, c) }

// Program is one event's command sequence. Alias of isa.Program.
type Program = isa.Program

// NewProgram builds a program from commands, prepending the magic word.
func NewProgram(cmds ...Command) Program { return isa.NewProgram(cmds...) }

// Reserved event numbers.
const (
	EventPageFault    = isa.EventPageFault
	EventReclaimFrame = isa.EventReclaimFrame
	EventUser         = isa.EventUser
)

// Well-known operand array slots (see isa.WellKnownSlots for the full
// static contract the verifier consumes).
const (
	SlotScratch       = isa.SlotScratch
	SlotFreeQueue     = isa.SlotFreeQueue
	SlotFreeCount     = isa.SlotFreeCount
	SlotActiveQueue   = isa.SlotActiveQueue
	SlotActiveCount   = isa.SlotActiveCount
	SlotInactiveQueue = isa.SlotInactiveQueue
	SlotInactiveCount = isa.SlotInactiveCount
	SlotAllocated     = isa.SlotAllocated
	SlotMinFrame      = isa.SlotMinFrame
	SlotInactiveTgt   = isa.SlotInactiveTgt
	SlotFreeTgt       = isa.SlotFreeTgt
	SlotPageReg       = isa.SlotPageReg
	SlotReservedTgt   = isa.SlotReservedTgt
	SlotFaultAddr     = isa.SlotFaultAddr
	SlotFaultOffset   = isa.SlotFaultOffset
	SlotZero          = isa.SlotZero
	SlotOne           = isa.SlotOne
	SlotUser          = isa.SlotUser
)

// Kind is the runtime type of an operand-array entry. Alias of isa.Kind.
type Kind = isa.Kind

const (
	KindNone  = isa.KindNone
	KindInt   = isa.KindInt
	KindBool  = isa.KindBool
	KindQueue = isa.KindQueue
	KindPage  = isa.KindPage
)

// decodedCmd is the unpacked form of one Command word. Programs are decoded
// once at container-load time so the executor's fetch step is a plain slice
// index instead of three shifts and masks per command.
type decodedCmd struct {
	op      Opcode
	a, b, c uint8
}

// encoded re-packs the command word (trace and disassembly paths only).
func (d decodedCmd) encoded() Command { return Encode(d.op, d.a, d.b, d.c) }

// decodeProgram unpacks every word of a program, preserving indices so
// command counters and jump targets carry over unchanged (entry 0 is the
// magic word, decoded like any other word but never executed).
func decodeProgram(p Program) []decodedCmd {
	if p == nil {
		return nil
	}
	out := make([]decodedCmd, len(p))
	for i, cmd := range p {
		out[i] = decodedCmd{op: cmd.Op(), a: cmd.A(), b: cmd.B(), c: cmd.C()}
	}
	return out
}
