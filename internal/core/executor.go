package core

import (
	"fmt"
	"io"
	"time"

	"hipec/internal/mem"
)

// ExecCosts are the virtual-time charges of policy execution, calibrated
// from the paper (DESIGN.md §4): Table 4 reports ≈150 ns to fetch and
// decode the three-command simple-fault path (≈50 ns/command), and Table 3
// implies ≈7 µs of per-fault activation bookkeeping (timestamp write,
// container lookup, executor entry/exit).
type ExecCosts struct {
	PerCommand time.Duration
	Activation time.Duration
}

// DefaultExecCosts returns the calibrated values.
func DefaultExecCosts() ExecCosts {
	return ExecCosts{PerCommand: 50 * time.Nanosecond, Activation: 7 * time.Microsecond}
}

// Executor is the application-specific policy executor (§4.3.2). It runs in
// "kernel mode": it fetches commands from the (conceptually wired-down,
// read-only) policy buffer, decodes them and performs the operations,
// without crossing the kernel/user boundary.
type Executor struct {
	kernel *Kernel
	Costs  ExecCosts

	// Trace, when non-nil, receives one line per executed command —
	// the policy developer's printf. Use only for debugging; it is on
	// the hot path.
	Trace io.Writer

	// MaxSteps bounds commands per outer activation as a hard backstop
	// against runaway policies when command costs are zero (the adaptive
	// security checker handles the timed case).
	MaxSteps int
	// MaxActivateDepth bounds Activate nesting ("non-HiPEC-defined events
	// ... can be viewed as procedure calls").
	MaxActivateDepth int

	// Stats
	TotalActivations int64
	TotalCommands    int64
}

func newExecutor(k *Kernel, costs ExecCosts) *Executor {
	return &Executor{
		kernel:           k,
		Costs:            costs,
		MaxSteps:         1 << 20,
		MaxActivateDepth: 8,
	}
}

// Run executes event ev of container c and returns the operand named by the
// program's Return command. A runtime fault terminates the container and is
// returned as an error.
func (x *Executor) Run(c *Container, ev int) (*Operand, error) {
	if c.state != StateActive {
		return nil, fmt.Errorf("core: container %d is %v", c.ID, c.state)
	}
	c.executing = true
	c.timestamp = x.kernel.Clock.Now()
	c.timedOut = false
	c.Stats.Activations++
	x.TotalActivations++
	if x.Costs.Activation > 0 {
		x.kernel.Clock.Sleep(x.Costs.Activation)
	}
	steps := 0
	res, err := x.exec(c, ev, 0, &steps)
	c.executing = false
	if err != nil {
		x.kernel.terminate(c, err.Error())
		return nil, err
	}
	return res, nil
}

func (x *Executor) fail(c *Container, ev, cc int, format string, args ...any) error {
	return &execError{Container: c, Event: ev, CC: cc, Reason: fmt.Sprintf(format, args...)}
}

// operand accessors with runtime type checking --------------------------

func (x *Executor) intOp(c *Container, ev, cc int, slot uint8) (int64, error) {
	o := &c.operands[slot]
	if o.Kind != KindInt {
		return 0, x.fail(c, ev, cc, "operand %#02x (%s) is %v, want int", slot, o.Name, o.Kind)
	}
	return o.IntValue(), nil
}

func (x *Executor) boolOp(c *Container, ev, cc int, slot uint8) (bool, error) {
	o := &c.operands[slot]
	switch o.Kind {
	case KindBool:
		return o.Bool, nil
	case KindInt:
		return o.IntValue() != 0, nil
	}
	return false, x.fail(c, ev, cc, "operand %#02x (%s) is %v, want bool", slot, o.Name, o.Kind)
}

func (x *Executor) queueOp(c *Container, ev, cc int, slot uint8) (*mem.Queue, error) {
	o := &c.operands[slot]
	if o.Kind != KindQueue || o.Queue == nil {
		return nil, x.fail(c, ev, cc, "operand %#02x (%s) is %v, want queue", slot, o.Name, o.Kind)
	}
	return o.Queue, nil
}

func (x *Executor) pageOp(c *Container, ev, cc int, slot uint8) (*mem.Page, error) {
	o := &c.operands[slot]
	if o.Kind != KindPage {
		return nil, x.fail(c, ev, cc, "operand %#02x (%s) is %v, want page", slot, o.Name, o.Kind)
	}
	if o.Page == nil {
		return nil, x.fail(c, ev, cc, "page register %#02x (%s) is empty", slot, o.Name)
	}
	return o.Page, nil
}

// exec interprets one event program. depth counts Activate nesting; steps
// is shared across the whole activation.
func (x *Executor) exec(c *Container, ev, depth int, steps *int) (*Operand, error) {
	if ev < 0 || ev >= len(c.events) || c.events[ev] == nil {
		return nil, x.fail(c, ev, 0, "undefined event %d", ev)
	}
	prog := c.events[ev]
	cc := 1 // CC 0 is the magic word
	for {
		if cc < 1 || cc >= len(prog) {
			return nil, x.fail(c, ev, cc, "command counter out of range (missing Return?)")
		}
		*steps++
		if *steps > x.MaxSteps {
			return nil, x.fail(c, ev, cc, "exceeded %d commands (runaway policy)", x.MaxSteps)
		}
		c.Stats.Commands++
		x.TotalCommands++
		if x.Costs.PerCommand > 0 {
			// Charging per-command time is also what lets the
			// asynchronous security checker observe a long-running
			// execution: advancing the clock fires its wakeups.
			x.kernel.Clock.Sleep(x.Costs.PerCommand)
		}
		if c.timedOut || c.state != StateActive {
			return nil, x.fail(c, ev, cc, "terminated by security checker (timeout)")
		}
		cmd := prog[cc]
		c.cc = cc
		if x.Trace != nil {
			fmt.Fprintf(x.Trace, "hipec%d %s CC=%-3d CR=%-5t %v\n",
				c.ID, c.eventName(ev), cc, c.cr, cmd)
		}
		op1, op2, flag := cmd.A(), cmd.B(), cmd.C()

		switch cmd.Op() {
		case OpReturn:
			return &c.operands[op1], nil

		case OpArith:
			dst := &c.operands[op1]
			if dst.Kind != KindInt {
				return nil, x.fail(c, ev, cc, "Arith destination %#02x (%s) is %v", op1, dst.Name, dst.Kind)
			}
			if dst.readOnly || dst.live != nil {
				return nil, x.fail(c, ev, cc, "Arith write to read-only operand %#02x (%s)", op1, dst.Name)
			}
			var src int64
			switch flag {
			case ArithInc, ArithDec:
				// no source operand
			default:
				v, err := x.intOp(c, ev, cc, op2)
				if err != nil {
					return nil, err
				}
				src = v
			}
			switch flag {
			case ArithAdd:
				dst.Int += src
			case ArithSub:
				dst.Int -= src
			case ArithMul:
				dst.Int *= src
			case ArithDiv:
				if src == 0 {
					return nil, x.fail(c, ev, cc, "division by zero")
				}
				dst.Int /= src
			case ArithMod:
				if src == 0 {
					return nil, x.fail(c, ev, cc, "modulo by zero")
				}
				dst.Int %= src
			case ArithMov:
				dst.Int = src
			case ArithInc:
				dst.Int++
			case ArithDec:
				dst.Int--
			default:
				return nil, x.fail(c, ev, cc, "bad Arith flag %d", flag)
			}
			c.cr = false

		case OpComp:
			a, err := x.intOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			b, err := x.intOp(c, ev, cc, op2)
			if err != nil {
				return nil, err
			}
			switch flag {
			case CompEQ:
				c.cr = a == b
			case CompGT:
				c.cr = a > b
			case CompLT:
				c.cr = a < b
			case CompNE:
				c.cr = a != b
			case CompGE:
				c.cr = a >= b
			case CompLE:
				c.cr = a <= b
			default:
				return nil, x.fail(c, ev, cc, "bad Comp flag %d", flag)
			}

		case OpLogic:
			a, err := x.boolOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			switch flag {
			case LogicNot:
				c.cr = !a
			case LogicAnd, LogicOr, LogicXor:
				b, err := x.boolOp(c, ev, cc, op2)
				if err != nil {
					return nil, err
				}
				switch flag {
				case LogicAnd:
					c.cr = a && b
				case LogicOr:
					c.cr = a || b
				case LogicXor:
					c.cr = a != b
				}
			default:
				return nil, x.fail(c, ev, cc, "bad Logic flag %d", flag)
			}

		case OpEmptyQ:
			q, err := x.queueOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			c.cr = q.Empty()

		case OpInQ:
			q, err := x.queueOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			reg := &c.operands[op2]
			if reg.Kind != KindPage {
				return nil, x.fail(c, ev, cc, "InQ operand %#02x is %v, want page", op2, reg.Kind)
			}
			c.cr = reg.Page != nil && reg.Page.InQueue(q)

		case OpJump:
			target := int(flag)
			take := false
			switch op1 {
			case JumpIfFalse:
				take = !c.cr
			case JumpAlways:
				take = true
			case JumpIfTrue:
				take = c.cr
			default:
				return nil, x.fail(c, ev, cc, "bad Jump mode %d", op1)
			}
			c.cr = false
			if take {
				if target < 1 || target >= len(prog) {
					return nil, x.fail(c, ev, cc, "jump target %d out of range", target)
				}
				cc = target
				continue
			}

		case OpDeQueue:
			q, err := x.queueOp(c, ev, cc, op2)
			if err != nil {
				return nil, err
			}
			reg := &c.operands[op1]
			if reg.Kind != KindPage {
				return nil, x.fail(c, ev, cc, "DeQueue destination %#02x is %v, want page", op1, reg.Kind)
			}
			if err := x.checkOverwrite(c, ev, cc, reg); err != nil {
				return nil, err
			}
			var p *mem.Page
			switch flag {
			case QueueHead:
				p = q.DequeueHead()
			case QueueTail:
				p = q.DequeueTail()
			default:
				return nil, x.fail(c, ev, cc, "bad DeQueue flag %d", flag)
			}
			if p == nil {
				return nil, x.fail(c, ev, cc, "DeQueue from empty queue %s", q.Name)
			}
			reg.Page = p
			c.cr = false

		case OpEnQueue:
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			q, err := x.queueOp(c, ev, cc, op2)
			if err != nil {
				return nil, err
			}
			if p.Queue() != nil {
				return nil, x.fail(c, ev, cc, "EnQueue of page already on queue %s", p.Queue().Name)
			}
			if q == c.Free {
				// Moving a page to the private free list implies it
				// leaves residency; the kernel performs the detach
				// (applications cannot corrupt VM state, §3).
				if err := x.kernel.FM.retire(c, p); err != nil {
					return nil, x.fail(c, ev, cc, "EnQueue to free list: %v", err)
				}
			}
			switch flag {
			case QueueHead:
				q.EnqueueHead(p)
			case QueueTail:
				q.EnqueueTail(p)
			default:
				return nil, x.fail(c, ev, cc, "bad EnQueue flag %d", flag)
			}
			c.operands[op1].Page = nil
			c.cr = false

		case OpRequest:
			n, err := x.intOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, x.fail(c, ev, cc, "Request of %d frames", n)
			}
			c.Stats.Requests++
			granted := x.kernel.FM.Request(c, int(n))
			if !granted {
				c.Stats.RequestDenied++
			}
			c.cr = granted

		case OpRelease:
			o := &c.operands[op1]
			switch o.Kind {
			case KindPage:
				if o.Page == nil {
					return nil, x.fail(c, ev, cc, "Release of empty page register %#02x", op1)
				}
				p := o.Page
				o.Page = nil
				if q := p.Queue(); q != nil {
					q.Remove(p)
				}
				x.kernel.FM.ReleaseFrame(c, p)
				c.Stats.Releases++
				c.cr = true
			case KindInt:
				n := o.IntValue()
				released := x.kernel.FM.ReleaseFromFree(c, int(n))
				c.Stats.Releases += int64(released)
				c.cr = int64(released) == n
			default:
				return nil, x.fail(c, ev, cc, "Release operand %#02x is %v", op1, o.Kind)
			}

		case OpFlush:
			reg := &c.operands[op1]
			if reg.Kind != KindPage {
				return nil, x.fail(c, ev, cc, "Flush operand %#02x is %v, want page", op1, reg.Kind)
			}
			if reg.Page == nil {
				return nil, x.fail(c, ev, cc, "Flush of empty page register %#02x", op1)
			}
			if reg.Page.Queue() != nil {
				return nil, x.fail(c, ev, cc, "Flush of page still on queue %s", reg.Page.Queue().Name)
			}
			// Asynchronous exchange (§4.3.1 I/O Handling): the dirty
			// page goes to the global frame manager for laundering and
			// a clean free frame comes back in its place, so the
			// executor never waits for disk I/O.
			np := x.kernel.FM.FlushExchange(c, reg.Page)
			reg.Page = np
			c.Stats.Flushes++
			c.cr = np != nil

		case OpSet:
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			var bit *bool
			switch op2 {
			case SetBitModify:
				bit = &p.Modified
			case SetBitReference:
				bit = &p.Referenced
			default:
				return nil, x.fail(c, ev, cc, "bad Set bit selector %d", op2)
			}
			switch flag {
			case SetOpSet:
				*bit = true
			case SetOpClear:
				*bit = false
			default:
				return nil, x.fail(c, ev, cc, "bad Set operation %d", flag)
			}
			c.cr = false

		case OpRef:
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			c.cr = p.Referenced

		case OpMod:
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			c.cr = p.Modified

		case OpFind:
			reg := &c.operands[op1]
			if reg.Kind != KindPage {
				return nil, x.fail(c, ev, cc, "Find destination %#02x is %v, want page", op1, reg.Kind)
			}
			if err := x.checkOverwrite(c, ev, cc, reg); err != nil {
				return nil, err
			}
			addr, err := x.intOp(c, ev, cc, op2)
			if err != nil {
				return nil, err
			}
			ps := int64(x.kernel.VM.PageSize())
			reg.Page = c.object.Resident(addr / ps * ps)
			c.cr = reg.Page != nil

		case OpActivate:
			if depth+1 > x.MaxActivateDepth {
				return nil, x.fail(c, ev, cc, "Activate nesting exceeds %d", x.MaxActivateDepth)
			}
			if _, err := x.exec(c, int(op1), depth+1, steps); err != nil {
				return nil, err
			}
			c.cr = false

		case OpFIFO, OpLRU, OpMRU:
			q, err := x.queueOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			victim := x.selectVictim(cmd.Op(), q)
			if victim == nil {
				c.cr = false
				break
			}
			q.Remove(victim)
			if victim.Modified {
				victim = x.kernel.FM.FlushExchange(c, victim)
			} else if err := x.kernel.FM.retire(c, victim); err != nil {
				return nil, x.fail(c, ev, cc, "%v: %v", cmd.Op(), err)
			}
			if victim == nil {
				c.cr = false
				break
			}
			c.Free.EnqueueTail(victim)
			c.cr = true

		case OpMigrate:
			if !c.extensions {
				return nil, x.fail(c, ev, cc, "Migrate requires EnableExtensions")
			}
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			id, err := x.intOp(c, ev, cc, op2)
			if err != nil {
				return nil, err
			}
			if err := x.kernel.FM.Migrate(c, int(id), p); err != nil {
				c.cr = false
				break
			}
			c.operands[op1].Page = nil
			c.cr = true

		case OpAge:
			if !c.extensions {
				return nil, x.fail(c, ev, cc, "Age requires EnableExtensions")
			}
			q, err := x.queueOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			// Clock-style aging sweep: clear reference bits so the next
			// pass distinguishes recently used pages.
			q.Each(func(p *mem.Page) bool { p.Referenced = false; return true })
			c.cr = false

		default:
			return nil, x.fail(c, ev, cc, "illegal opcode %#02x", uint8(cmd.Op()))
		}
		cc++
	}
}

// checkOverwrite rejects writes to a page register that still holds a
// detached frame: overwriting the only reference to a non-resident,
// unqueued frame would orphan it forever (a frame leak the security model
// cannot allow). Policies must EnQueue, Flush or Release a frame before
// reusing its register. Overwriting a reference to a resident or queued
// page is harmless and permitted.
func (x *Executor) checkOverwrite(c *Container, ev, cc int, reg *Operand) error {
	p := reg.Page
	if p == nil || p.Queue() != nil || x.kernel.isResident(p) {
		return nil
	}
	return x.fail(c, ev, cc, "overwriting register %q would orphan frame %d (EnQueue, Flush or Release it first)", reg.Name, p.Frame)
}

// selectVictim applies the canned replacement policies. FIFO takes the
// oldest enqueued page (queue head); LRU the least recently used; MRU the
// most recently used. Wired pages are never selected.
//
// On AccessOrder queues (kept in exact recency order by the VM layer) LRU
// and MRU are O(1): head and tail respectively. Otherwise they fall back to
// a LastAccess scan.
func (x *Executor) selectVictim(op Opcode, q *mem.Queue) *mem.Page {
	eligible := func(p *mem.Page) bool { return !p.Wired }
	firstFromHead := func() *mem.Page {
		var v *mem.Page
		q.Each(func(p *mem.Page) bool {
			if eligible(p) {
				v = p
				return false
			}
			return true
		})
		return v
	}
	firstFromTail := func() *mem.Page {
		var v *mem.Page
		q.EachReverse(func(p *mem.Page) bool {
			if eligible(p) {
				v = p
				return false
			}
			return true
		})
		return v
	}
	switch op {
	case OpFIFO:
		return firstFromHead()
	case OpLRU:
		if q.AccessOrder {
			return firstFromHead()
		}
		var v *mem.Page
		var best int64
		q.Each(func(p *mem.Page) bool {
			if eligible(p) && (v == nil || int64(p.LastAccess) < best) {
				v, best = p, int64(p.LastAccess)
			}
			return true
		})
		return v
	case OpMRU:
		if q.AccessOrder {
			return firstFromTail()
		}
		var v *mem.Page
		var best int64
		q.Each(func(p *mem.Page) bool {
			if eligible(p) && (v == nil || int64(p.LastAccess) > best) {
				v, best = p, int64(p.LastAccess)
			}
			return true
		})
		return v
	}
	return nil
}
