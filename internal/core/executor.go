package core

import (
	"fmt"
	"time"

	"hipec/internal/hiperr"
	"hipec/internal/kevent"
	"hipec/internal/mem"
)

// ExecCosts are the virtual-time charges of policy execution, calibrated
// from the paper (DESIGN.md §4): Table 4 reports ≈150 ns to fetch and
// decode the three-command simple-fault path (≈50 ns/command), and Table 3
// implies ≈7 µs of per-fault activation bookkeeping (timestamp write,
// container lookup, executor entry/exit).
type ExecCosts struct {
	PerCommand time.Duration
	Activation time.Duration
}

// DefaultExecCosts returns the calibrated values.
func DefaultExecCosts() ExecCosts {
	return ExecCosts{PerCommand: 50 * time.Nanosecond, Activation: 7 * time.Microsecond}
}

// DefaultFlushQuantum is the default cap on virtual time accrued locally by
// the executor between clock flushes (100 commands at the calibrated 50 ns).
// See Executor.FlushQuantum.
const DefaultFlushQuantum = 5 * time.Microsecond

// Executor is the application-specific policy executor (§4.3.2). It runs in
// "kernel mode": it fetches commands from the (conceptually wired-down,
// read-only) policy buffer, decodes them and performs the operations,
// without crossing the kernel/user boundary.
type Executor struct {
	kernel *Kernel
	Costs  ExecCosts

	// Trace, when non-nil, receives one EvPolicyCommand event per executed
	// command — the policy developer's printf. Per-command events flow only
	// to this sink (never to the kernel spine or registry), and only the
	// nil check sits on the hot path. Kernel.NewTextTrace adapts an
	// io.Writer into the classic one-line-per-command format.
	Trace kevent.Sink

	// ForceChecked disables the verified-container fast path, running the
	// per-command operand-kind and range checks even for specs the static
	// verifier proved safe. Benchmarks use it to measure the cost of the
	// waived checks; it is also an escape hatch if the verifier is ever
	// suspected of a soundness bug.
	ForceChecked bool

	// MaxSteps bounds commands per outer activation as a hard backstop
	// against runaway policies when command costs are zero (the adaptive
	// security checker handles the timed case).
	MaxSteps int
	// MaxActivateDepth bounds Activate nesting ("non-HiPEC-defined events
	// ... can be viewed as procedure calls").
	MaxActivateDepth int

	// FlushQuantum caps the virtual time the executor accrues locally
	// before charging it to the kernel clock in one batch. Charging the
	// clock per command walks the event heap on every command; batching
	// amortizes that while flushCharge's event-boundary stepping keeps
	// every scheduled callback (security-checker wakeups, disk
	// completions) firing at exactly the clock it would see under
	// per-command charging. A value <= Costs.PerCommand restores the
	// serial per-command charge.
	FlushQuantum time.Duration
	// pending is the accrued, not-yet-charged command time.
	pending time.Duration
}

// TotalActivations reports event-program activations across all containers,
// derived from the event spine.
func (x *Executor) TotalActivations() int64 {
	return x.kernel.Registry().Count(kevent.EvPolicyActivation)
}

// TotalCommands reports commands interpreted across all containers, derived
// from the event spine.
func (x *Executor) TotalCommands() int64 {
	return x.kernel.Registry().Sum(kevent.EvPolicyActivation)
}

func newExecutor(k *Kernel, costs ExecCosts) *Executor {
	return &Executor{
		kernel:           k,
		Costs:            costs,
		MaxSteps:         1 << 20,
		MaxActivateDepth: 8,
		FlushQuantum:     DefaultFlushQuantum,
	}
}

// Run executes event ev of container c and returns the operand named by the
// program's Return command. A runtime fault terminates the container and is
// returned as an error.
func (x *Executor) Run(c *Container, ev int) (*Operand, error) {
	if c.state != StateActive {
		sentinel := hiperr.ErrPolicyFault
		if c.state == StateRevoked {
			sentinel = hiperr.ErrRevoked
		}
		return nil, &hiperr.Error{Op: "hipec.exec", Container: c.ID,
			Err: fmt.Errorf("container is %v: %w", c.state, sentinel)}
	}
	c.executing = true
	c.timestamp = x.kernel.Clock.Now()
	c.timedOut = false
	if x.Costs.Activation > 0 {
		x.kernel.Clock.Sleep(x.Costs.Activation)
	}
	steps := 0
	res, err := x.exec(c, ev, 0, &steps)
	// steps counted every interpreted command (including nested Activate
	// frames, which share the counter); the whole activation is one event —
	// emitted once, at completion — so nothing lands on the per-command path
	// and the spine costs one emission per fault, not per command.
	x.kernel.emit(kevent.Event{Type: kevent.EvPolicyActivation, Container: int32(c.ID), Arg: int64(steps), Aux: int64(ev)})
	// Charge any batched command time before the activation ends so
	// callers measuring elapsed virtual time see the full cost (the
	// success path has already flushed at its Return boundary).
	if x.pending > 0 {
		x.flushCharge(c)
	}
	c.executing = false
	if err != nil {
		x.kernel.terminate(c, err.Error())
		return nil, err
	}
	return res, nil
}

// flushCharge charges the accrued per-command time to the kernel clock. It
// advances to each intervening event boundary in turn, so scheduled
// callbacks (security-checker wakeups, disk completions, daemon balances)
// fire with exactly the clock they would observe under serial per-command
// charging. If a callback kills the container mid-batch, the clock is
// rounded up to the end of the command whose charge crossed the wakeup —
// the same simulated instant the serial path aborts at — and the rest of
// the batch is discarded (those commands never run in the serial world).
func (x *Executor) flushCharge(c *Container) {
	clock := x.kernel.Clock
	for x.pending > 0 {
		next, ok := clock.PeekNext()
		if !ok {
			clock.Sleep(x.pending)
			x.pending = 0
			return
		}
		d := next.Sub(clock.Now())
		if d <= 0 || d > x.pending {
			// No event inside the remaining window — or an overdue event,
			// which means the clock is inside a nested dispatch (the
			// executor was entered from an event callback) where advances
			// fire nothing anyway: charge the rest in one step.
			clock.Sleep(x.pending)
			x.pending = 0
			return
		}
		clock.Sleep(d) // fires the event(s) due at the boundary
		x.pending -= d
		if c.timedOut || c.state != StateActive {
			if per := x.Costs.PerCommand; per > 0 {
				if rem := x.pending % per; rem > 0 {
					clock.Sleep(rem)
				}
			}
			x.pending = 0
			return
		}
	}
}

// syncClock flushes batched command time before a kernel-visible operation
// (frame-manager calls, VM calls, Return) so those paths observe — and
// schedule I/O completions against — the exact clock the serial charge
// would produce. It surfaces a security-checker kill raised during the
// flush. With nothing pending it is a no-op: the loop-top check has
// already seen every event fired so far.
func (x *Executor) syncClock(c *Container, ev, cc int) error {
	if x.pending == 0 {
		return nil
	}
	x.flushCharge(c)
	if c.timedOut || c.state != StateActive {
		return x.fail(c, ev, cc, "terminated by security checker (timeout)")
	}
	return nil
}

// fail builds the typed runtime-fault error that terminates the container.
// It wraps hiperr.ErrPolicyFault so callers can classify with errors.Is and
// recover the container ID and command counter with errors.As.
func (x *Executor) fail(c *Container, ev, cc int, format string, args ...any) error {
	return &hiperr.Error{
		Op:        "hipec.exec",
		Container: c.ID,
		PC:        cc,
		Err: fmt.Errorf("policy %q event %s: %s: %w",
			c.spec.Name, c.eventName(ev), fmt.Sprintf(format, args...), hiperr.ErrPolicyFault),
	}
}

// operand accessors with runtime type checking --------------------------

// intOp reads an integer operand. The common case (plain stored int) is
// kept small enough to inline at the Arith/Comp call sites; live operands
// and type errors take the outlined slow path.
func (x *Executor) intOp(c *Container, ev, cc int, slot uint8) (int64, error) {
	o := &c.operands[slot]
	if o.Kind != KindInt || o.live != nil {
		return x.intOpSlow(c, ev, cc, slot)
	}
	return o.Int, nil
}

func (x *Executor) intOpSlow(c *Container, ev, cc int, slot uint8) (int64, error) {
	o := &c.operands[slot]
	if o.Kind != KindInt {
		return 0, x.fail(c, ev, cc, "operand %#02x (%s) is %v, want int", slot, o.Name, o.Kind)
	}
	return o.IntValue(), nil
}

func (x *Executor) boolOp(c *Container, ev, cc int, slot uint8) (bool, error) {
	o := &c.operands[slot]
	switch o.Kind {
	case KindBool:
		return o.Bool, nil
	case KindInt:
		return o.IntValue() != 0, nil
	}
	return false, x.fail(c, ev, cc, "operand %#02x (%s) is %v, want bool", slot, o.Name, o.Kind)
}

func (x *Executor) queueOp(c *Container, ev, cc int, slot uint8) (*mem.Queue, error) {
	o := &c.operands[slot]
	if o.Kind != KindQueue || o.Queue == nil {
		return nil, x.fail(c, ev, cc, "operand %#02x (%s) is %v, want queue", slot, o.Name, o.Kind)
	}
	return o.Queue, nil
}

func (x *Executor) pageOp(c *Container, ev, cc int, slot uint8) (*mem.Page, error) {
	o := &c.operands[slot]
	if o.Kind != KindPage {
		return nil, x.fail(c, ev, cc, "operand %#02x (%s) is %v, want page", slot, o.Name, o.Kind)
	}
	if o.Page == nil {
		return nil, x.fail(c, ev, cc, "page register %#02x (%s) is empty", slot, o.Name)
	}
	return o.Page, nil
}

// exec interprets one event program. depth counts Activate nesting; steps
// is shared across the whole activation.
func (x *Executor) exec(c *Container, ev, depth int, steps *int) (*Operand, error) {
	if ev < 0 || ev >= len(c.decoded) || c.decoded[ev] == nil {
		return nil, x.fail(c, ev, 0, "undefined event %d", ev)
	}
	prog := c.decoded[ev]
	per := x.Costs.PerCommand
	quantum := x.FlushQuantum
	// chk enables the per-command checks the static verifier makes
	// redundant: operand kinds, read-only writes, jump-target and
	// command-counter ranges. Runtime-state checks (empty queues and
	// registers, orphaned frames, division by zero, step/time budgets) are
	// never waived — the verifier cannot prove those.
	chk := x.ForceChecked || !c.verified
	cc := 1 // CC 0 is the magic word
	for {
		if chk && (cc < 1 || cc >= len(prog)) {
			return nil, x.fail(c, ev, cc, "command counter out of range (missing Return?)")
		}
		*steps++
		if *steps > x.MaxSteps {
			return nil, x.fail(c, ev, cc, "exceeded %d commands (runaway policy)", x.MaxSteps)
		}
		if per > 0 {
			// Charging command time is also what lets the asynchronous
			// security checker observe a long-running execution: the
			// accrued charge is flushed to the clock — firing its
			// wakeups — every quantum and at kernel-visible boundaries.
			x.pending += per
			if x.pending >= quantum {
				x.flushCharge(c)
			}
		}
		if c.timedOut || c.state != StateActive {
			return nil, x.fail(c, ev, cc, "terminated by security checker (timeout)")
		}
		dc := prog[cc]
		if x.Trace != nil {
			c.cc = cc
			x.traceCmd(c, ev, cc, dc)
		}
		op1, op2, flag := dc.a, dc.b, dc.c

		switch dc.op {
		case OpReturn:
			if err := x.syncClock(c, ev, cc); err != nil {
				return nil, err
			}
			return &c.operands[op1], nil

		case OpArith:
			dst := &c.operands[op1]
			if chk {
				if dst.Kind != KindInt {
					return nil, x.fail(c, ev, cc, "Arith destination %#02x (%s) is %v", op1, dst.Name, dst.Kind)
				}
				if dst.readOnly || dst.live != nil {
					return nil, x.fail(c, ev, cc, "Arith write to read-only operand %#02x (%s)", op1, dst.Name)
				}
			}
			var src int64
			switch flag {
			case ArithInc, ArithDec:
				// no source operand
			default:
				v, err := x.intOp(c, ev, cc, op2)
				if err != nil {
					return nil, err
				}
				src = v
			}
			switch flag {
			case ArithAdd:
				dst.Int += src
			case ArithSub:
				dst.Int -= src
			case ArithMul:
				dst.Int *= src
			case ArithDiv:
				if src == 0 {
					return nil, x.fail(c, ev, cc, "division by zero")
				}
				dst.Int /= src
			case ArithMod:
				if src == 0 {
					return nil, x.fail(c, ev, cc, "modulo by zero")
				}
				dst.Int %= src
			case ArithMov:
				dst.Int = src
			case ArithInc:
				dst.Int++
			case ArithDec:
				dst.Int--
			default:
				return nil, x.fail(c, ev, cc, "bad Arith flag %d", flag)
			}
			c.cr = false

		case OpComp:
			// Hand-inlined operand reads: Comp is the workhorse of policy
			// scan loops and intOp is just over the compiler's inline
			// budget. The error path falls back to intOp for diagnostics.
			ao, bo := &c.operands[op1], &c.operands[op2]
			if chk && (ao.Kind != KindInt || bo.Kind != KindInt) {
				if _, err := x.intOp(c, ev, cc, op1); err != nil {
					return nil, err
				}
				_, err := x.intOp(c, ev, cc, op2)
				return nil, err
			}
			a, b := ao.Int, bo.Int
			if ao.live != nil {
				a = ao.live()
			}
			if bo.live != nil {
				b = bo.live()
			}
			switch flag {
			case CompEQ:
				c.cr = a == b
			case CompGT:
				c.cr = a > b
			case CompLT:
				c.cr = a < b
			case CompNE:
				c.cr = a != b
			case CompGE:
				c.cr = a >= b
			case CompLE:
				c.cr = a <= b
			default:
				return nil, x.fail(c, ev, cc, "bad Comp flag %d", flag)
			}

		case OpLogic:
			a, err := x.boolOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			switch flag {
			case LogicNot:
				c.cr = !a
			case LogicAnd, LogicOr, LogicXor:
				b, err := x.boolOp(c, ev, cc, op2)
				if err != nil {
					return nil, err
				}
				switch flag {
				case LogicAnd:
					c.cr = a && b
				case LogicOr:
					c.cr = a || b
				case LogicXor:
					c.cr = a != b
				}
			default:
				return nil, x.fail(c, ev, cc, "bad Logic flag %d", flag)
			}

		case OpEmptyQ:
			q, err := x.queueOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			c.cr = q.Empty()

		case OpInQ:
			q, err := x.queueOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			reg := &c.operands[op2]
			if chk && reg.Kind != KindPage {
				return nil, x.fail(c, ev, cc, "InQ operand %#02x is %v, want page", op2, reg.Kind)
			}
			c.cr = reg.Page != nil && reg.Page.InQueue(q)

		case OpJump:
			target := int(flag)
			take := false
			switch op1 {
			case JumpIfFalse:
				take = !c.cr
			case JumpAlways:
				take = true
			case JumpIfTrue:
				take = c.cr
			default:
				return nil, x.fail(c, ev, cc, "bad Jump mode %d", op1)
			}
			c.cr = false
			if take {
				if chk && (target < 1 || target >= len(prog)) {
					return nil, x.fail(c, ev, cc, "jump target %d out of range", target)
				}
				cc = target
				continue
			}

		case OpDeQueue:
			q, err := x.queueOp(c, ev, cc, op2)
			if err != nil {
				return nil, err
			}
			reg := &c.operands[op1]
			if chk && reg.Kind != KindPage {
				return nil, x.fail(c, ev, cc, "DeQueue destination %#02x is %v, want page", op1, reg.Kind)
			}
			if err := x.checkOverwrite(c, ev, cc, reg); err != nil {
				return nil, err
			}
			var p *mem.Page
			switch flag {
			case QueueHead:
				p = q.DequeueHead()
			case QueueTail:
				p = q.DequeueTail()
			default:
				return nil, x.fail(c, ev, cc, "bad DeQueue flag %d", flag)
			}
			if p == nil {
				return nil, x.fail(c, ev, cc, "DeQueue from empty queue %s", q.Name)
			}
			reg.Page = p
			c.cr = false

		case OpEnQueue:
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			q, err := x.queueOp(c, ev, cc, op2)
			if err != nil {
				return nil, err
			}
			if p.Queue() != nil {
				return nil, x.fail(c, ev, cc, "EnQueue of page already on queue %s", p.Queue().Name)
			}
			if q == c.Free {
				// Moving a page to the private free list implies it
				// leaves residency; the kernel performs the detach
				// (applications cannot corrupt VM state, §3). Laundering
				// may schedule disk I/O: sync the clock first.
				if err := x.syncClock(c, ev, cc); err != nil {
					return nil, err
				}
				if err := x.kernel.FM.retire(c, p); err != nil {
					return nil, x.fail(c, ev, cc, "EnQueue to free list: %v", err)
				}
			}
			switch flag {
			case QueueHead:
				q.EnqueueHead(p)
			case QueueTail:
				q.EnqueueTail(p)
			default:
				return nil, x.fail(c, ev, cc, "bad EnQueue flag %d", flag)
			}
			c.operands[op1].Page = nil
			c.cr = false

		case OpRequest:
			n, err := x.intOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, x.fail(c, ev, cc, "Request of %d frames", n)
			}
			if err := x.syncClock(c, ev, cc); err != nil {
				return nil, err
			}
			granted := x.kernel.FM.Request(c, int(n))
			x.kernel.emit(kevent.Event{Type: kevent.EvPolicyRequest, Container: int32(c.ID), Arg: n, Flag: !granted})
			c.cr = granted

		case OpRelease:
			if err := x.syncClock(c, ev, cc); err != nil {
				return nil, err
			}
			o := &c.operands[op1]
			switch o.Kind {
			case KindPage:
				if o.Page == nil {
					return nil, x.fail(c, ev, cc, "Release of empty page register %#02x", op1)
				}
				p := o.Page
				o.Page = nil
				if q := p.Queue(); q != nil {
					q.Remove(p)
				}
				if !x.kernel.FM.ReleaseFrame(c, p) {
					// Wired page or failed laundering: the frame stays with
					// the container. Put it back in the register so it is
					// not orphaned; CR tells the policy it wasn't released.
					o.Page = p
					c.cr = false
					break
				}
				x.kernel.emit(kevent.Event{Type: kevent.EvPolicyRelease, Container: int32(c.ID), Arg: 1})
				c.cr = true
			case KindInt:
				n := o.IntValue()
				released := x.kernel.FM.ReleaseFromFree(c, int(n))
				x.kernel.emit(kevent.Event{Type: kevent.EvPolicyRelease, Container: int32(c.ID), Arg: int64(released)})
				c.cr = int64(released) == n
			default:
				return nil, x.fail(c, ev, cc, "Release operand %#02x is %v", op1, o.Kind)
			}

		case OpFlush:
			reg := &c.operands[op1]
			if chk && reg.Kind != KindPage {
				return nil, x.fail(c, ev, cc, "Flush operand %#02x is %v, want page", op1, reg.Kind)
			}
			if reg.Page == nil {
				return nil, x.fail(c, ev, cc, "Flush of empty page register %#02x", op1)
			}
			if reg.Page.Queue() != nil {
				return nil, x.fail(c, ev, cc, "Flush of page still on queue %s", reg.Page.Queue().Name)
			}
			// Asynchronous exchange (§4.3.1 I/O Handling): the dirty
			// page goes to the global frame manager for laundering and
			// a clean free frame comes back in its place, so the
			// executor never waits for disk I/O. The disk completion is
			// scheduled off the clock: sync it first.
			if err := x.syncClock(c, ev, cc); err != nil {
				return nil, err
			}
			np, ok := x.kernel.FM.FlushExchange(c, reg.Page)
			reg.Page = np
			x.kernel.emit(kevent.Event{Type: kevent.EvPolicyFlush, Container: int32(c.ID)})
			c.cr = ok

		case OpSet:
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			var bit *bool
			switch op2 {
			case SetBitModify:
				bit = &p.Modified
			case SetBitReference:
				bit = &p.Referenced
			default:
				return nil, x.fail(c, ev, cc, "bad Set bit selector %d", op2)
			}
			switch flag {
			case SetOpSet:
				*bit = true
			case SetOpClear:
				*bit = false
			default:
				return nil, x.fail(c, ev, cc, "bad Set operation %d", flag)
			}
			c.cr = false

		case OpRef:
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			c.cr = p.Referenced

		case OpMod:
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			c.cr = p.Modified

		case OpFind:
			reg := &c.operands[op1]
			if chk && reg.Kind != KindPage {
				return nil, x.fail(c, ev, cc, "Find destination %#02x is %v, want page", op1, reg.Kind)
			}
			if err := x.checkOverwrite(c, ev, cc, reg); err != nil {
				return nil, err
			}
			addr, err := x.intOp(c, ev, cc, op2)
			if err != nil {
				return nil, err
			}
			ps := int64(x.kernel.VM.PageSize())
			reg.Page = c.object.Resident(addr / ps * ps)
			c.cr = reg.Page != nil

		case OpActivate:
			if depth+1 > x.MaxActivateDepth {
				return nil, x.fail(c, ev, cc, "Activate nesting exceeds %d", x.MaxActivateDepth)
			}
			if _, err := x.exec(c, int(op1), depth+1, steps); err != nil {
				return nil, err
			}
			c.cr = false

		case OpFIFO, OpLRU, OpMRU:
			q, err := x.queueOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			if err := x.syncClock(c, ev, cc); err != nil {
				return nil, err
			}
			victim := x.selectVictim(dc.op, q)
			if victim == nil {
				c.cr = false
				break
			}
			q.Remove(victim)
			if victim.Modified {
				nv, ok := x.kernel.FM.FlushExchange(c, victim)
				if !ok {
					// Write-back failed; the dirty page goes back where it
					// was and the policy sees CR=false.
					if nv != nil {
						q.EnqueueTail(nv)
					}
					c.cr = false
					break
				}
				victim = nv
			} else if err := x.kernel.FM.retire(c, victim); err != nil {
				return nil, x.fail(c, ev, cc, "%v: %v", dc.op, err)
			}
			if victim == nil {
				c.cr = false
				break
			}
			c.Free.EnqueueTail(victim)
			c.cr = true

		case OpMigrate:
			if !c.extensions {
				return nil, x.fail(c, ev, cc, "Migrate requires EnableExtensions")
			}
			p, err := x.pageOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			id, err := x.intOp(c, ev, cc, op2)
			if err != nil {
				return nil, err
			}
			if err := x.syncClock(c, ev, cc); err != nil {
				return nil, err
			}
			if err := x.kernel.FM.Migrate(c, int(id), p); err != nil {
				c.cr = false
				break
			}
			c.operands[op1].Page = nil
			c.cr = true

		case OpAge:
			if !c.extensions {
				return nil, x.fail(c, ev, cc, "Age requires EnableExtensions")
			}
			q, err := x.queueOp(c, ev, cc, op1)
			if err != nil {
				return nil, err
			}
			// Clock-style aging sweep: clear reference bits so the next
			// pass distinguishes recently used pages.
			q.Each(func(p *mem.Page) bool { p.Referenced = false; return true })
			c.cr = false

		default:
			return nil, x.fail(c, ev, cc, "illegal opcode %#02x", uint8(dc.op))
		}
		cc++
	}
}

// traceCmd delivers the per-command event to the attached Trace sink. It
// lives outside exec so the Event construction is only materialized when
// tracing is enabled, keeping the hot loop allocation-free. The event is
// stamped here because it bypasses the Emitter (and hence the registry).
func (x *Executor) traceCmd(c *Container, ev, cc int, dc decodedCmd) {
	x.Trace.Emit(kevent.Event{
		Time:      x.kernel.Clock.Now(),
		Type:      kevent.EvPolicyCommand,
		Container: int32(c.ID),
		Addr:      int64(dc.encoded()),
		Arg:       int64(cc),
		Aux:       int64(ev),
		Flag:      c.cr,
	})
}

// checkOverwrite rejects writes to a page register that still holds a
// detached frame: overwriting the only reference to a non-resident,
// unqueued frame would orphan it forever (a frame leak the security model
// cannot allow). Policies must EnQueue, Flush or Release a frame before
// reusing its register. Overwriting a reference to a resident or queued
// page is harmless and permitted.
func (x *Executor) checkOverwrite(c *Container, ev, cc int, reg *Operand) error {
	p := reg.Page
	if p == nil || p.Queue() != nil || x.kernel.isResident(p) {
		return nil
	}
	return x.fail(c, ev, cc, "overwriting register %q would orphan frame %d (EnQueue, Flush or Release it first)", reg.Name, p.Frame)
}

// selectVictim applies the canned replacement policies. FIFO takes the
// oldest enqueued page (queue head); LRU the least recently used; MRU the
// most recently used. Wired pages are never selected.
//
// On AccessOrder queues (kept in exact recency order by the VM layer) LRU
// and MRU are O(1): head and tail respectively. Otherwise they fall back to
// a LastAccess scan.
func (x *Executor) selectVictim(op Opcode, q *mem.Queue) *mem.Page {
	eligible := func(p *mem.Page) bool { return !p.Wired }
	firstFromHead := func() *mem.Page {
		var v *mem.Page
		q.Each(func(p *mem.Page) bool {
			if eligible(p) {
				v = p
				return false
			}
			return true
		})
		return v
	}
	firstFromTail := func() *mem.Page {
		var v *mem.Page
		q.EachReverse(func(p *mem.Page) bool {
			if eligible(p) {
				v = p
				return false
			}
			return true
		})
		return v
	}
	switch op {
	case OpFIFO:
		return firstFromHead()
	case OpLRU:
		if q.AccessOrder {
			return firstFromHead()
		}
		var v *mem.Page
		var best int64
		q.Each(func(p *mem.Page) bool {
			if eligible(p) && (v == nil || int64(p.LastAccess) < best) {
				v, best = p, int64(p.LastAccess)
			}
			return true
		})
		return v
	case OpMRU:
		if q.AccessOrder {
			return firstFromTail()
		}
		var v *mem.Page
		var best int64
		q.Each(func(p *mem.Page) bool {
			if eligible(p) && (v == nil || int64(p.LastAccess) > best) {
				v, best = p, int64(p.LastAccess)
			}
			return true
		})
		return v
	}
	return nil
}
