package core

import (
	"strings"
	"testing"

	"hipec/internal/kevent"
)

// --- satellite: the spine must not cost the hot path its zero-alloc pin --

// TestEventSpineFaultPathZeroAlloc pins the simple-fault activation —
// registry counting included, no sinks attached — at zero heap allocations
// per run, the property BENCH_0001/BENCH_0002 measure in wall time.
func TestEventSpineFaultPathZeroAlloc(t *testing.T) {
	k := testKernel(1024)
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 64*4096, WithPolicy(simpleSpec(64)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err != nil {
		t.Fatal(err)
	}
	run := func() {
		res, err := k.Executor.Run(c, EventPageFault)
		if err != nil {
			t.Fatal(err)
		}
		c.Free.EnqueueHead(res.Page)
		c.operands[SlotPageReg].Page = nil
	}
	// Warm up so one-time growth (registry scope slices, event heap) does
	// not count against the steady state.
	for i := 0; i < 64; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("fault activation allocates %.2f objects/run, want 0", allocs)
	}
}

// TestEventSpineCommandLoopZeroAlloc pins the sustained interpreter loop
// (1024 Arith/Comp/Jump commands per activation) at zero allocations, with
// the registry attached and the Trace sink nil.
func TestEventSpineCommandLoopZeroAlloc(t *testing.T) {
	k := testKernel(128)
	sp := k.NewSpace()
	spec := simpleSpec(8)
	ctr := uint8(SlotUser)
	limit := uint8(SlotUser + 1)
	spec.Operands = []OperandDecl{
		{Slot: ctr, Kind: KindInt, Name: "ctr"},
		{Slot: limit, Kind: KindInt, Name: "limit", Init: 1024, Const: true},
	}
	_, c, err := k.Allocate(sp, 8*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	zero := uint8(SlotUser + 2)
	c.operands[zero] = Operand{Kind: KindInt, Name: "z"}
	loop := c.AppendEventForTest(NewProgram(
		Encode(OpArith, ctr, zero, ArithMov),
		Encode(OpArith, ctr, 0, ArithInc),
		Encode(OpComp, ctr, limit, CompLT),
		Encode(OpJump, JumpIfTrue, 0, 2),
		Encode(OpReturn, SlotScratch, 0, 0),
	))
	run := func() {
		if _, err := k.Executor.Run(c, loop); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("command loop allocates %.2f objects/run, want 0", allocs)
	}
}

// --- the text trace is a sink adapter, fed only per-command events -------

func TestEventSpineTextTraceAdapter(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	e, _, err := k.Allocate(sp, 8*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	k.Executor.Trace = k.NewTextTrace(&buf)
	if _, err := sp.Touch(e.Start); err != nil {
		t.Fatal(err)
	}
	k.Executor.Trace = nil
	out := buf.String()
	if out == "" {
		t.Fatal("trace sink saw no commands")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if int64(len(lines)) != k.Executor.TotalCommands() {
		t.Fatalf("trace has %d lines, executor interpreted %d commands", len(lines), k.Executor.TotalCommands())
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "hipec1 PageFault ") || !strings.Contains(line, "CC=") {
			t.Fatalf("malformed trace line: %q", line)
		}
	}
	// Trace-only events must not leak into the registry.
	if n := k.Registry().Count(kevent.EvPolicyCommand); n != 0 {
		t.Fatalf("registry counted %d policy.command events; they are Trace-only", n)
	}
}

// --- satellite: golden Kernel.Report over a deterministic workload -------

// goldenWorkload drives a small fixed scenario: one HiPEC container with a
// FIFO-style free pool over 8 pages, 20 touches with stride 3 (faults then
// hits), two denied accesses, and one container teardown.
func goldenWorkload(t *testing.T) *Kernel {
	t.Helper()
	k := testKernel(64)
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 8*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		addr := e.Start + int64(i%8)*4096
		if i%3 == 0 {
			if _, err := sp.Write(addr); err != nil {
				t.Fatal(err)
			}
		} else if _, err := sp.Touch(addr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := sp.Touch(1 << 40); err == nil {
			t.Fatal("bad address succeeded")
		}
	}
	k.DestroyContainer(c)
	return k
}

const goldenReport = `machine: 64 frames x 4096 B (0.2 MB), 64 free
clock:   3.1952ms
vm:      22 accesses, 12 hits, 8 faults (0 page-ins, 8 zero-fills), 0 page-outs, 0 evictions
daemon:  active 0, inactive 0, targets free/inactive/reserved 16/21/4, 0 balances (0 reclaims, 0 reactivations)
manager: 0/32 frames granted to specific applications (partition_burst), 0 normal + 0 forced reclaims, 0 flush exchanges
checker: 0 wakeups (next interval 1s), 0 timeouts, 0 terminations
containers:
  #1 simple-fifo              destroyed  min    8, held    0 (free 0 / active 0 / inactive 0)  8 activations, 32 commands, 0 flushes
`

func TestEventSpineGoldenReport(t *testing.T) {
	k := goldenWorkload(t)
	got := k.Report()
	if got != goldenReport {
		t.Fatalf("Report drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, goldenReport)
	}
}
