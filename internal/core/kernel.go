package core

import (
	"fmt"

	"hipec/internal/disk"
	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/kevent"
	"hipec/internal/mem"
	"hipec/internal/pageout"
	"hipec/internal/substrate"
	"hipec/internal/vm"
)

// Config assembles a simulated kernel. Zero-valued fields take calibrated
// defaults.
type Config struct {
	Frames   int // physical memory size in frames
	PageSize int // default 4096
	KeepData bool

	VMCosts   vm.Costs
	ExecCosts ExecCosts
	Disk      disk.Params
	Targets   pageout.Targets

	// Faults configures the deterministic fault-injection plane (chaos
	// testing). The zero value (Seed 0) builds no plane: no code path
	// consults it and behaviour is bit-for-bit the non-chaos baseline.
	Faults faultinj.Config
	// Retry bounds the VM fault path's page-in retries; the zero value
	// takes vm.DefaultRetry.
	Retry vm.Retry

	// BurstFraction sets partition_burst as a fraction of the free frames
	// at startup (the paper uses 50%).
	BurstFraction float64
	// StartChecker launches the security-checker watchdog immediately.
	StartChecker bool
	// HiPECDisabled builds a vanilla Mach kernel: the per-fault region
	// check is not charged and HiPEC activation calls fail. Used as the
	// unmodified-kernel baseline in the experiments.
	HiPECDisabled bool

	// Sinks are attached to the kernel event spine at construction:
	// every subsystem event (faults, evictions, disk I/O, frame-manager
	// grants, checker wakeups, ...) is delivered to each sink in order,
	// after the metrics registry. See package kevent.
	Sinks []kevent.Sink

	// Substrate selects the world the kernel runs in. The zero value is the
	// deterministic simulation on an in-memory store — byte-identical to the
	// pre-seam kernel. substrate.Config{Kind: substrate.KindReal} runs on
	// wall-clock time: cost models default to zero (real time is measured,
	// not modeled), frames carry real page payloads cut from one arena, and
	// Substrate.Store (e.g. a filestore) supplies persistent backing.
	Substrate substrate.Config
}

// KernelStats is a snapshot of top-level counters, derived from the kernel
// event spine.
type KernelStats struct {
	ContainersCreated int64
	ActivationErrors  int64
}

// Kernel is the simulated OSF/1-MK-with-HiPEC kernel: the VM substrate, the
// pageout daemon (doubling as the global frame manager engine), the policy
// executor and the security checker.
type Kernel struct {
	Clock    substrate.Clock
	VM       *vm.System
	Daemon   *pageout.Daemon
	FM       *FrameManager
	Executor *Executor
	Checker  *Checker
	// Inject is the fault-injection plane (nil unless Config.Faults has a
	// seed). Shared with the disk and consultable by external pagers.
	Inject *faultinj.Plane

	hipecDisabled bool
	nextContainer int
	containers    []*Container // every container ever created
}

// Events returns the kernel's event spine (shared with the VM substrate);
// attach kevent.Sink consumers here at runtime.
func (k *Kernel) Events() *kevent.Emitter { return k.VM.Events }

// Registry returns the spine's metrics registry: the single source of truth
// for every counter surfaced by Report() and the experiment harness.
func (k *Kernel) Registry() *kevent.Registry { return k.VM.Events.Registry() }

// Stats reports top-level counters, derived from the event spine.
func (k *Kernel) Stats() KernelStats {
	sc := k.Registry().Global()
	return KernelStats{
		ContainersCreated: sc.Counts[kevent.EvContainerCreated],
		ActivationErrors:  sc.Counts[kevent.EvActivationError],
	}
}

// emit sends an event down the kernel spine.
func (k *Kernel) emit(e kevent.Event) { k.VM.Events.Emit(e) }

// New builds a kernel.
func New(cfg Config) *Kernel {
	real := cfg.Substrate.Kind == substrate.KindReal
	var clock substrate.Clock
	if real {
		clock = substrate.NewRealClock()
	} else {
		clock = substrate.NewSimClock()
	}
	costs := cfg.VMCosts
	if costs == (vm.Costs{}) && !real {
		// Realtime keeps zero costs zero: real time is measured by the
		// wall clock, not modeled by charges.
		costs = vm.DefaultCosts()
	}
	if cfg.HiPECDisabled {
		costs.RegionCheck = 0
	}
	dp := cfg.Disk
	if real && dp == (disk.Params{}) {
		// The timing model is vestigial on the realtime substrate (the
		// store's actual I/O takes real time); keep the charge negligible
		// while satisfying the positive-PerByte invariant.
		dp = disk.Params{PerByte: 1}
	}
	inject := faultinj.New(cfg.Faults)
	sys := vm.NewSystem(clock, vm.Config{
		Frames:       cfg.Frames,
		PageSize:     cfg.PageSize,
		KeepData:     cfg.KeepData || real,
		Costs:        costs,
		Disk:         dp,
		Retry:        cfg.Retry,
		Inject:       inject,
		Store:        cfg.Substrate.Store,
		PayloadArena: real,
		RawCosts:     real,
	})
	for _, s := range cfg.Sinks {
		sys.Events.Attach(s)
	}
	daemon := pageout.New(sys, cfg.Targets)
	sys.SetDefaultPolicy(daemon)
	k := &Kernel{
		Clock:         clock,
		VM:            sys,
		Daemon:        daemon,
		Inject:        inject,
		hipecDisabled: cfg.HiPECDisabled,
	}
	sys.OnFaultFailure = k.degradeFault
	ec := cfg.ExecCosts
	if ec == (ExecCosts{}) && !real {
		ec = DefaultExecCosts()
	}
	k.Executor = newExecutor(k, ec)
	k.FM = newFrameManager(k, daemon, cfg.BurstFraction)
	k.Checker = newChecker(k)
	if cfg.StartChecker && !cfg.HiPECDisabled {
		k.Checker.Start()
	}
	return k
}

// NewSpace creates a task address space.
func (k *Kernel) NewSpace() *vm.AddressSpace { return k.VM.NewSpace() }

// activate builds, validates and funds a container for obj.
func (k *Kernel) activate(obj *vm.Object, spec *Spec) (*Container, error) {
	if k.hipecDisabled {
		return nil, &hiperr.Error{Op: "hipec.activate",
			Err: fmt.Errorf("kernel built without HiPEC support: %w", hiperr.ErrPolicyFault)}
	}
	if spec == nil {
		return nil, &hiperr.Error{Op: "hipec.activate",
			Err: fmt.Errorf("nil policy spec: %w", hiperr.ErrPolicyFault)}
	}
	if obj.Policy != nil {
		return nil, &hiperr.Error{Op: "hipec.activate",
			Err: fmt.Errorf("object %d already has a container: %w", obj.ID, hiperr.ErrPolicyFault)}
	}
	k.nextContainer++
	c, err := newContainer(k, k.nextContainer, obj, spec)
	if err != nil {
		return nil, err
	}
	if errs := k.Checker.ValidateSpec(c); len(errs) > 0 {
		k.emit(kevent.Event{Type: kevent.EvActivationError, Container: int32(c.ID)})
		return nil, &hiperr.Error{Op: "hipec.activate", Container: c.ID,
			Err: fmt.Errorf("policy %q rejected by security checker: %v (and %d more): %w",
				spec.Name, errs[0], len(errs)-1, hiperr.ErrPolicyRejected)}
	}
	if err := k.FM.attach(c); err != nil {
		k.emit(kevent.Event{Type: kevent.EvActivationError, Container: int32(c.ID)})
		return nil, err
	}
	obj.Policy = c
	k.containers = append(k.containers, c)
	k.emit(kevent.Event{Type: kevent.EvContainerCreated, Container: int32(c.ID), Arg: int64(obj.ID)})
	return c, nil
}

// terminate kills a specific application's policy: the container stops
// handling events, its free frames return to the machine pool, and its
// resident pages revert to default (pageout daemon) management. Idempotent.
func (k *Kernel) terminate(c *Container, reason string) {
	if c.state != StateActive {
		return
	}
	c.state = StateTerminated
	c.termReason = reason
	c.timedOut = true // abort any in-flight execution at its next step
	k.emit(kevent.Event{Type: kevent.EvCheckerKill, Container: int32(c.ID)})
	k.releaseContainer(c, true)
}

// degradeFault is installed as the VM's OnFaultFailure hook: when a fault on
// a HiPEC-managed region exhausts its retry budget, the region degrades
// gracefully — the container is revoked, its resident pages revert to the
// pageout daemon, and the fault replays once under the default policy. A
// failure on an already-degraded (or never-HiPEC) region is final.
func (k *Kernel) degradeFault(o *vm.Object, cause error) bool {
	c, ok := o.Policy.(*Container)
	if !ok || c.state != StateActive {
		return false
	}
	k.RevokeContainer(c, fmt.Sprintf("fault recovery exhausted: %v", cause))
	return true
}

// RevokeContainer degrades a specific application: the container stops
// handling events (Run and PageFor return ErrRevoked), its free frames
// return to the machine pool, and its resident pages revert to default
// (pageout daemon) management — no resident page is lost. Idempotent.
func (k *Kernel) RevokeContainer(c *Container, reason string) {
	if c.state != StateActive {
		return
	}
	c.state = StateRevoked
	c.termReason = reason
	c.timedOut = true // abort any in-flight execution at its next step
	k.emit(kevent.Event{Type: kevent.EvContainerRevoked, Container: int32(c.ID)})
	k.releaseContainer(c, true)
}

// DestroyContainer tears down a container whose region is being
// deallocated: every frame (resident or free) returns to the global frame
// manager (§4.3.1 Deallocation).
func (k *Kernel) DestroyContainer(c *Container) {
	if c.state == StateDestroyed {
		return
	}
	c.state = StateDestroyed
	// DestroyObject runs with the container still installed as the
	// object's policy so that Release hooks clear queues, registers and
	// grant accounting for each resident page.
	k.VM.DestroyObject(c.object)
	k.releaseContainer(c, false)
}

// releaseContainer empties the container's private lists. When
// handResidents is true, resident pages are handed to the pageout daemon's
// active queue (management reverts to the default policy); otherwise
// residency has already been torn down.
func (k *Kernel) releaseContainer(c *Container, handResidents bool) {
	// Page registers first: a register may hold a detached frame.
	for i := range c.operands {
		o := &c.operands[i]
		if o.Kind != KindPage || o.Page == nil {
			continue
		}
		p := o.Page
		o.Page = nil
		if p.Queue() == nil && !k.isResident(p) {
			k.Daemon.ReturnFrame(p)
		}
	}
	for p := c.Free.DequeueHead(); p != nil; p = c.Free.DequeueHead() {
		k.Daemon.ReturnFrame(p)
	}
	for _, q := range c.queues() {
		for p := q.DequeueHead(); p != nil; p = q.DequeueHead() {
			if handResidents && k.isResident(p) {
				k.Daemon.Active.EnqueueTail(p)
			} else if !k.isResident(p) {
				k.Daemon.ReturnFrame(p)
			}
			// Resident pages with handResidents=false were already
			// freed by DestroyObject -> Release; nothing to do.
		}
	}
	k.FM.noteReleased(c, c.allocated)
	c.allocated = 0
	if c.object.Policy == c {
		c.object.Policy = nil
	}
	k.FM.detach(c)
}

func (k *Kernel) isResident(p *mem.Page) bool {
	if p.Object == 0 {
		return false
	}
	obj := k.VM.Object(p.Object)
	return obj != nil && obj.Resident(p.Offset) == p
}

// Containers returns every container ever created (including terminated and
// destroyed ones) for inspection.
func (k *Kernel) Containers() []*Container { return k.containers }
