package core

import (
	"testing"
	"time"
)

// --- batched clock charging: correctness --------------------------------

// chargeFixture builds a kernel whose PageFault program spins in a pure
// Comp/Jump loop for `spins` iterations before dequeuing a page, so a
// single fault executes a long run of non-kernel-touching commands — the
// case where batched charging and serial per-command charging could
// diverge if the flush logic were wrong.
func chargeFixture(t testing.TB, spins int64, quantum time.Duration) (*Kernel, *Container, int64) {
	t.Helper()
	k := testKernel(128)
	k.Executor.FlushQuantum = quantum
	sp := k.NewSpace()
	spec := simpleSpec(8)
	ctr := uint8(SlotUser)
	limit := uint8(SlotUser + 1)
	spec.Operands = []OperandDecl{
		{Slot: ctr, Kind: KindInt, Name: "ctr"},
		{Slot: limit, Kind: KindInt, Name: "limit", Init: spins, Const: true},
	}
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpArith, ctr, 0, ArithInc),                        // CC1
		Encode(OpComp, ctr, limit, CompLT),                       // CC2
		Encode(OpJump, JumpIfTrue, 0, 1),                         // CC3: spin
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead), // CC4
		Encode(OpReturn, SlotPageReg, 0, 0),                      // CC5
	)
	e, c, err := k.Allocate(sp, 8*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err != nil {
		t.Fatal(err)
	}
	return k, c, int64(k.Clock.Now())
}

// TestBatchedChargeMatchesSerialElapsed: the total virtual time of an
// activation must be identical whether command time is charged per command
// (quantum <= PerCommand) or batched at the default quantum.
func TestBatchedChargeMatchesSerialElapsed(t *testing.T) {
	_, _, serial := chargeFixture(t, 5000, time.Nanosecond)
	_, _, batched := chargeFixture(t, 5000, DefaultFlushQuantum)
	if serial != batched {
		t.Fatalf("elapsed diverged: serial=%dns batched=%dns", serial, batched)
	}
	_, _, huge := chargeFixture(t, 5000, time.Second)
	if huge != serial {
		t.Fatalf("elapsed diverged at 1s quantum: serial=%dns got=%dns", serial, huge)
	}
}

// runawayKillTime drives a watchdog kill of an infinitely looping policy
// and reports the simulated time at which the container died.
func runawayKillTime(t *testing.T, quantum time.Duration) (int64, string) {
	t.Helper()
	k := testKernel(64)
	// The verifier statically proves this loop infinite; the watchdog
	// test needs it to load anyway.
	k.Checker.AllowUnbounded = true
	k.Executor.FlushQuantum = quantum
	k.Executor.MaxSteps = 1 << 30 // let the checker do the killing
	k.Checker.TimeOut = 10 * time.Millisecond
	k.Checker.WakeUp = 20 * time.Millisecond
	k.Checker.Start()
	sp := k.NewSpace()
	spec := simpleSpec(4)
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpComp, SlotZero, SlotOne, CompLT), // CC1: always true
		Encode(OpJump, JumpIfTrue, 0, 1),          // CC2: loop forever
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead),
		Encode(OpReturn, SlotPageReg, 0, 0),
	)
	e, c, err := k.Allocate(sp, 4*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err == nil {
		t.Fatal("runaway policy survived")
	}
	if c.State() != StateTerminated {
		t.Fatalf("state = %v", c.State())
	}
	return int64(k.Clock.Now()), c.TerminationReason()
}

// TestCheckerKillTimeUnchangedByBatching: the security checker must kill a
// runaway policy at the same simulated instant under batched charging as
// under the serial per-command charge, for any flush quantum. flushCharge
// guarantees this by stepping to each event boundary and rounding the
// abort up to the command boundary the serial path would have died at.
func TestCheckerKillTimeUnchangedByBatching(t *testing.T) {
	serialAt, serialWhy := runawayKillTime(t, time.Nanosecond) // per-command
	for _, q := range []time.Duration{DefaultFlushQuantum, 123 * time.Nanosecond, time.Millisecond} {
		at, why := runawayKillTime(t, q)
		if at != serialAt {
			t.Errorf("quantum %v: killed at %dns, serial killed at %dns", q, at, serialAt)
		}
		if why != serialWhy {
			t.Errorf("quantum %v: reason %q, serial %q", q, why, serialWhy)
		}
	}
}

// TestPredecodeCoversAppendedEvents: programs registered after activation
// (the bench/test backdoor) must be predecoded too.
func TestPredecodeCoversAppendedEvents(t *testing.T) {
	k, c := newExecFixture(t)
	ev := c.AppendEventForTest(NewProgram(
		Encode(OpArith, SlotScratch, SlotOne, ArithAdd),
		Encode(OpReturn, SlotScratch, 0, 0),
	))
	res, err := k.Executor.Run(c, ev)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntValue() != 1 {
		t.Fatalf("appended event computed %d, want 1", res.IntValue())
	}
}

// --- hot-path benchmarks -------------------------------------------------

// BenchmarkExecutorSimpleFault measures the full simple-fault activation
// (EmptyQ, Jump-not-taken via CR, DeQueue, Return) with the calibrated
// virtual costs charged — the paper's Table 4 fast path as the experiments
// actually run it.
func BenchmarkExecutorSimpleFault(b *testing.B) {
	k := testKernel(1024)
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 64*4096, WithPolicy(simpleSpec(64)))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := k.Executor.Run(c, EventPageFault)
		if err != nil {
			b.Fatal(err)
		}
		c.Free.EnqueueHead(res.Page)
		c.operands[SlotPageReg].Page = nil
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(k.Executor.TotalCommands()), "ns/command")
}

// BenchmarkExecutorCommandLoop measures sustained interpreted-command
// throughput with costs charged: a 1024-iteration pure Arith/Comp/Jump
// loop per activation, the case where batched clock charging replaces one
// event-heap walk per command with one per quantum.
func BenchmarkExecutorCommandLoop(b *testing.B) {
	k := testKernel(128)
	sp := k.NewSpace()
	spec := simpleSpec(8)
	ctr := uint8(SlotUser)
	limit := uint8(SlotUser + 1)
	spec.Operands = []OperandDecl{
		{Slot: ctr, Kind: KindInt, Name: "ctr"},
		{Slot: limit, Kind: KindInt, Name: "limit", Init: 1024, Const: true},
	}
	_, c, err := k.Allocate(sp, 8*4096, WithPolicy(spec))
	if err != nil {
		b.Fatal(err)
	}
	// Loop program: reset counter, spin to limit, return.
	zero := uint8(SlotUser + 2)
	c.operands[zero] = Operand{Kind: KindInt, Name: "z"}
	loop := c.AppendEventForTest(NewProgram(
		Encode(OpArith, ctr, zero, ArithMov), // CC1: ctr = 0
		Encode(OpArith, ctr, 0, ArithInc),    // CC2
		Encode(OpComp, ctr, limit, CompLT),   // CC3
		Encode(OpJump, JumpIfTrue, 0, 2),     // CC4: spin
		Encode(OpReturn, SlotScratch, 0, 0),  // CC5
	))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Executor.Run(c, loop); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(k.Executor.TotalCommands()), "ns/command")
}

// --- frame-manager hot paths: allocation pins ---------------------------

// TestRequestReleaseCycleDoesNotAllocate pins the global frame manager's
// grant path: a steady Request/ReleaseFromFree cycle reuses the manager's
// scratch buffers and must not allocate.
func TestRequestReleaseCycleDoesNotAllocate(t *testing.T) {
	k := testKernel(256)
	sp := k.NewSpace()
	_, c, err := k.Allocate(sp, 8*4096, WithPolicy(simpleSpec(8)))
	if err != nil {
		t.Fatal(err)
	}
	// Warm one cycle so lazy structures (registry scopes, queue nodes)
	// exist before measuring.
	if !k.FM.Request(c, 4) {
		t.Fatal("warm-up request denied")
	}
	if got := k.FM.ReleaseFromFree(c, 4); got != 4 {
		t.Fatalf("warm-up release returned %d, want 4", got)
	}
	if avg := testing.AllocsPerRun(500, func() {
		if !k.FM.Request(c, 4) {
			t.Fatal("request denied")
		}
		if got := k.FM.ReleaseFromFree(c, 4); got != 4 {
			t.Fatalf("released %d, want 4", got)
		}
	}); avg != 0 {
		t.Fatalf("request/release cycle allocates %.2f/op, want 0", avg)
	}
}
