package core

import (
	"fmt"
	"time"

	"hipec/internal/kevent"
	"hipec/internal/simtime"
)

// CheckerStats is a snapshot of security-checker activity, derived from the
// kernel event spine.
type CheckerStats struct {
	Wakeups       int64
	Timeouts      int64 // timed-out executions detected
	Terminations  int64 // containers killed (timeouts and runtime faults)
	SweepErrors   int64 // consistency-sweep violations found
	Validations   int64
	ValidationBad int64
}

// Checker is the in-kernel security checker (§4.3.3): it validates policy
// programs at registration time (illegal syntax, wrong operand types) and
// runs as a periodic watchdog that detects timed-out policy executions,
// halving its sleep interval when a timeout is found and doubling it
// otherwise, clamped to [250 ms, 8 s]:
//
//	WakeUp = WakeUp/2  if timeout detected
//	WakeUp = WakeUp*2  if no timeout detected
//	WakeUp clamped to [250 msec, 8 sec]
type Checker struct {
	kernel *Kernel

	// TimeOut is the execution budget after which a policy run is killed;
	// "the length of TimeOut period is determined manually by a
	// privileged user".
	TimeOut time.Duration
	// WakeUp is the current adaptive sleep period.
	WakeUp time.Duration
	// MinWakeUp and MaxWakeUp clamp the adaptive schedule.
	MinWakeUp, MaxWakeUp time.Duration
	// DeepSweep additionally validates queue structure on every wakeup
	// (§6 future work #3: "the security checker could do more").
	DeepSweep bool

	started bool
	stopped bool
}

// Stats reports checker counters, derived from the event spine.
func (ck *Checker) Stats() CheckerStats {
	sc := ck.kernel.Registry().Global()
	return CheckerStats{
		Wakeups:       sc.Counts[kevent.EvCheckerWakeup],
		Timeouts:      sc.Counts[kevent.EvCheckerTimeout],
		Terminations:  sc.Counts[kevent.EvCheckerKill],
		SweepErrors:   sc.Counts[kevent.EvCheckerSweepError],
		Validations:   sc.Counts[kevent.EvCheckerValidation],
		ValidationBad: sc.Flags[kevent.EvCheckerValidation],
	}
}

func newChecker(k *Kernel) *Checker {
	return &Checker{
		kernel:    k,
		TimeOut:   defaultExecTimeout,
		WakeUp:    time.Second,
		MinWakeUp: 250 * time.Millisecond,
		MaxWakeUp: 8 * time.Second,
	}
}

// Start schedules the watchdog on the kernel clock. Calling Start twice is
// a no-op.
func (ck *Checker) Start() {
	if ck.started {
		return
	}
	ck.started = true
	ck.schedule()
}

// Stop prevents further wakeups after the next one fires.
func (ck *Checker) Stop() { ck.stopped = true }

func (ck *Checker) schedule() {
	ck.kernel.Clock.After(ck.WakeUp, ck.wake)
}

func (ck *Checker) wake(now simtime.Time) {
	if ck.stopped {
		return
	}
	ck.kernel.emit(kevent.Event{Type: kevent.EvCheckerWakeup})
	detected := false
	// Copy: terminating mutates the list.
	containers := append([]*Container(nil), ck.kernel.FM.containers...)
	for _, c := range containers {
		if executing, since := c.Executing(); executing && now.Sub(since) > ck.TimeOut {
			// Flag the executor; it aborts at its next poll and the
			// kernel terminates the application.
			c.timedOut = true
			detected = true
			ck.kernel.emit(kevent.Event{Type: kevent.EvCheckerTimeout, Container: int32(c.ID)})
		}
		if ck.DeepSweep {
			for _, q := range c.queues() {
				if err := q.Validate(); err != nil {
					ck.kernel.emit(kevent.Event{Type: kevent.EvCheckerSweepError, Container: int32(c.ID)})
					ck.kernel.terminate(c, fmt.Sprintf("checker sweep: %v", err))
					break
				}
			}
		}
	}
	if detected {
		ck.WakeUp /= 2
	} else {
		ck.WakeUp *= 2
	}
	if ck.WakeUp < ck.MinWakeUp {
		ck.WakeUp = ck.MinWakeUp
	}
	if ck.WakeUp > ck.MaxWakeUp {
		ck.WakeUp = ck.MaxWakeUp
	}
	ck.schedule()
}

// ValidateSpec performs the registration-time static checks on a spec
// against the operand kinds of its (already constructed) container:
// magic numbers, legal opcodes, operand types, jump-target ranges, event
// references, and Return reachability. It returns every violation found.
func (ck *Checker) ValidateSpec(c *Container) []error {
	var errs []error
	report := func(ev, cc int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("event %s CC=%d: %s", c.eventName(ev), cc, fmt.Sprintf(format, args...)))
	}
	if len(c.events) < 2 || c.events[EventPageFault] == nil || c.events[EventReclaimFrame] == nil {
		errs = append(errs, fmt.Errorf("spec %q must define the PageFault and ReclaimFrame events", c.spec.Name))
		if len(c.events) < 2 {
			ck.noteValidation(errs)
			return errs
		}
	}
	kind := func(slot uint8) Kind { return c.operands[slot].Kind }
	wantKind := func(ev, cc int, slot uint8, k Kind, what string) {
		if kind(slot) != k {
			report(ev, cc, "%s operand %#02x is %v, want %v", what, slot, kind(slot), k)
		}
	}
	wantIntOrBool := func(ev, cc int, slot uint8, what string) {
		if k := kind(slot); k != KindInt && k != KindBool {
			report(ev, cc, "%s operand %#02x is %v, want int or bool", what, slot, k)
		}
	}

	for ev, prog := range c.events {
		if prog == nil {
			continue
		}
		if len(prog) == 0 || prog[0] != Magic {
			report(ev, 0, "missing HiPEC magic number")
			continue
		}
		if len(prog) == 1 {
			report(ev, 0, "empty program")
			continue
		}
		hasReturn := false
		for cc := 1; cc < len(prog); cc++ {
			cmd := prog[cc]
			op1, op2, flag := cmd.A(), cmd.B(), cmd.C()
			switch cmd.Op() {
			case OpReturn:
				hasReturn = true
			case OpArith:
				wantKind(ev, cc, op1, KindInt, "Arith destination")
				if c.operands[op1].readOnly || c.operands[op1].live != nil {
					report(ev, cc, "Arith writes read-only operand %#02x (%s)", op1, c.operands[op1].Name)
				}
				if flag > ArithDec {
					report(ev, cc, "bad Arith flag %d", flag)
				}
				if flag != ArithInc && flag != ArithDec {
					wantKind(ev, cc, op2, KindInt, "Arith source")
				}
			case OpComp:
				wantKind(ev, cc, op1, KindInt, "Comp")
				wantKind(ev, cc, op2, KindInt, "Comp")
				if flag > CompLE {
					report(ev, cc, "bad Comp flag %d", flag)
				}
			case OpLogic:
				wantIntOrBool(ev, cc, op1, "Logic")
				if flag != LogicNot {
					wantIntOrBool(ev, cc, op2, "Logic")
				}
				if flag > LogicXor {
					report(ev, cc, "bad Logic flag %d", flag)
				}
			case OpEmptyQ:
				wantKind(ev, cc, op1, KindQueue, "EmptyQ")
			case OpInQ:
				wantKind(ev, cc, op1, KindQueue, "InQ queue")
				wantKind(ev, cc, op2, KindPage, "InQ page")
			case OpJump:
				if op1 > JumpIfTrue {
					report(ev, cc, "bad Jump mode %d", op1)
				}
				if t := int(flag); t < 1 || t >= len(prog) {
					report(ev, cc, "jump target %d out of range [1,%d)", t, len(prog))
				}
			case OpDeQueue:
				wantKind(ev, cc, op1, KindPage, "DeQueue destination")
				wantKind(ev, cc, op2, KindQueue, "DeQueue source")
				if flag != QueueHead && flag != QueueTail {
					report(ev, cc, "bad DeQueue flag %d", flag)
				}
			case OpEnQueue:
				wantKind(ev, cc, op1, KindPage, "EnQueue page")
				wantKind(ev, cc, op2, KindQueue, "EnQueue queue")
				if flag != QueueHead && flag != QueueTail {
					report(ev, cc, "bad EnQueue flag %d", flag)
				}
			case OpRequest:
				wantKind(ev, cc, op1, KindInt, "Request size")
			case OpRelease:
				if k := kind(op1); k != KindInt && k != KindPage {
					report(ev, cc, "Release operand %#02x is %v, want int or page", op1, k)
				}
			case OpFlush:
				wantKind(ev, cc, op1, KindPage, "Flush")
			case OpSet:
				wantKind(ev, cc, op1, KindPage, "Set")
				if op2 != SetBitModify && op2 != SetBitReference {
					report(ev, cc, "bad Set bit selector %d", op2)
				}
				if flag != SetOpSet && flag != SetOpClear {
					report(ev, cc, "bad Set operation %d", flag)
				}
			case OpRef:
				wantKind(ev, cc, op1, KindPage, "Ref")
			case OpMod:
				wantKind(ev, cc, op1, KindPage, "Mod")
			case OpFind:
				wantKind(ev, cc, op1, KindPage, "Find destination")
				wantKind(ev, cc, op2, KindInt, "Find address")
			case OpActivate:
				target := int(op1)
				if target >= len(c.events) || c.events[target] == nil {
					report(ev, cc, "Activate of undefined event %d", target)
				}
				if target == ev {
					report(ev, cc, "Activate of the running event (unbounded recursion)")
				}
			case OpFIFO, OpLRU, OpMRU:
				wantKind(ev, cc, op1, KindQueue, cmd.Op().String())
			case OpMigrate:
				if !c.extensions {
					report(ev, cc, "Migrate used without EnableExtensions")
				}
				wantKind(ev, cc, op1, KindPage, "Migrate page")
				wantKind(ev, cc, op2, KindInt, "Migrate target")
			case OpAge:
				if !c.extensions {
					report(ev, cc, "Age used without EnableExtensions")
				}
				wantKind(ev, cc, op1, KindQueue, "Age")
			default:
				report(ev, cc, "illegal opcode %#02x", uint8(cmd.Op()))
			}
		}
		if !hasReturn {
			report(ev, 0, "program has no Return command")
		}
		if err := checkFlow(prog); err != nil {
			report(ev, 0, "%v", err)
		}
	}
	ck.noteValidation(errs)
	return errs
}

// noteValidation emits the validation event; the Flag marks a rejection.
func (ck *Checker) noteValidation(errs []error) {
	ck.kernel.emit(kevent.Event{Type: kevent.EvCheckerValidation, Flag: len(errs) > 0})
}

// checkFlow performs a reachability analysis: starting from CC 1, following
// fall-through and jump edges, execution must never run off the end of the
// program — every reachable path must hit a Return.
//
// The analysis tracks whether CR is definitely false at each point, because
// the paper's programs rely on the "non-test commands clear CR, so a
// Jump-iff-false after one is unconditional" idiom (Table 2); without CR
// tracking those programs would be falsely rejected.
func checkFlow(prog Program) error {
	type state struct {
		cc      int
		crFalse bool // CR is definitely false on entry
	}
	seen := make(map[state]bool, 2*len(prog))
	stack := []state{{cc: 1}}
	push := func(cc int, crFalse bool) error {
		if cc >= len(prog) {
			return fmt.Errorf("control flow can run off the end of the program")
		}
		s := state{cc, crFalse}
		if cc >= 1 && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
		return nil
	}
	seen[state{1, false}] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cmd := prog[s.cc]
		var err error
		switch cmd.Op() {
		case OpReturn:
			// terminal
		case OpComp, OpLogic, OpEmptyQ, OpInQ, OpRef, OpMod:
			err = push(s.cc+1, false) // CR becomes unknown
		case OpJump:
			// The executor clears CR when evaluating a Jump, so every
			// successor enters with CR false.
			target := int(cmd.C())
			taken := true
			fall := true
			switch cmd.A() {
			case JumpAlways:
				fall = false
			case JumpIfFalse:
				if s.crFalse {
					fall = false // always taken
				}
			case JumpIfTrue:
				if s.crFalse {
					taken = false // never taken
				}
			}
			if taken && target >= 1 && target < len(prog) {
				err = push(target, true)
			}
			if err == nil && fall {
				err = push(s.cc+1, true)
			}
		default:
			err = push(s.cc+1, true) // non-test commands clear CR
		}
		if err != nil {
			return err
		}
	}
	return nil
}
