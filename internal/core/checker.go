package core

import (
	"fmt"
	"time"

	"hipec/internal/hpl/verify"
	"hipec/internal/kevent"
	"hipec/internal/simtime"
)

// CheckerStats is a snapshot of security-checker activity, derived from the
// kernel event spine.
type CheckerStats struct {
	Wakeups       int64
	Timeouts      int64 // timed-out executions detected
	Terminations  int64 // containers killed (timeouts and runtime faults)
	SweepErrors   int64 // consistency-sweep violations found
	Validations   int64
	ValidationBad int64
}

// Checker is the in-kernel security checker (§4.3.3): it validates policy
// programs at registration time (illegal syntax, wrong operand types) and
// runs as a periodic watchdog that detects timed-out policy executions,
// halving its sleep interval when a timeout is found and doubling it
// otherwise, clamped to [250 ms, 8 s]:
//
//	WakeUp = WakeUp/2  if timeout detected
//	WakeUp = WakeUp*2  if no timeout detected
//	WakeUp clamped to [250 msec, 8 sec]
type Checker struct {
	kernel *Kernel

	// TimeOut is the execution budget after which a policy run is killed;
	// "the length of TimeOut period is determined manually by a
	// privileged user".
	TimeOut time.Duration
	// WakeUp is the current adaptive sleep period.
	WakeUp time.Duration
	// MinWakeUp and MaxWakeUp clamp the adaptive schedule.
	MinWakeUp, MaxWakeUp time.Duration
	// DeepSweep additionally validates queue structure on every wakeup
	// (§6 future work #3: "the security checker could do more").
	DeepSweep bool
	// AllowUnbounded downgrades the verifier's boundedness errors
	// (infinite-loop, stuck-loop, frame-leak) to warnings, accepting
	// specs whose termination only the watchdog timeout can enforce.
	// Intended for watchdog tests and experiments; the verifier's kind
	// and flow errors still reject.
	AllowUnbounded bool

	started bool
	stopped bool
}

// Stats reports checker counters, derived from the event spine.
func (ck *Checker) Stats() CheckerStats {
	sc := ck.kernel.Registry().Global()
	return CheckerStats{
		Wakeups:       sc.Counts[kevent.EvCheckerWakeup],
		Timeouts:      sc.Counts[kevent.EvCheckerTimeout],
		Terminations:  sc.Counts[kevent.EvCheckerKill],
		SweepErrors:   sc.Counts[kevent.EvCheckerSweepError],
		Validations:   sc.Counts[kevent.EvCheckerValidation],
		ValidationBad: sc.Flags[kevent.EvCheckerValidation],
	}
}

func newChecker(k *Kernel) *Checker {
	return &Checker{
		kernel:    k,
		TimeOut:   defaultExecTimeout,
		WakeUp:    time.Second,
		MinWakeUp: 250 * time.Millisecond,
		MaxWakeUp: 8 * time.Second,
	}
}

// Start schedules the watchdog on the kernel clock. Calling Start twice is
// a no-op.
func (ck *Checker) Start() {
	if ck.started {
		return
	}
	ck.started = true
	ck.schedule()
}

// Stop prevents further wakeups after the next one fires.
func (ck *Checker) Stop() { ck.stopped = true }

func (ck *Checker) schedule() {
	ck.kernel.Clock.After(ck.WakeUp, ck.wake)
}

func (ck *Checker) wake(now simtime.Time) {
	if ck.stopped {
		return
	}
	ck.kernel.emit(kevent.Event{Type: kevent.EvCheckerWakeup})
	detected := false
	// Copy: terminating mutates the list.
	containers := append([]*Container(nil), ck.kernel.FM.containers...)
	for _, c := range containers {
		if executing, since := c.Executing(); executing && now.Sub(since) > ck.TimeOut {
			// Flag the executor; it aborts at its next poll and the
			// kernel terminates the application.
			c.timedOut = true
			detected = true
			ck.kernel.emit(kevent.Event{Type: kevent.EvCheckerTimeout, Container: int32(c.ID)})
		}
		if ck.DeepSweep {
			for _, q := range c.queues() {
				if err := q.Validate(); err != nil {
					ck.kernel.emit(kevent.Event{Type: kevent.EvCheckerSweepError, Container: int32(c.ID)})
					ck.kernel.terminate(c, fmt.Sprintf("checker sweep: %v", err))
					break
				}
			}
		}
	}
	if detected {
		ck.WakeUp /= 2
	} else {
		ck.WakeUp *= 2
	}
	if ck.WakeUp < ck.MinWakeUp {
		ck.WakeUp = ck.MinWakeUp
	}
	if ck.WakeUp > ck.MaxWakeUp {
		ck.WakeUp = ck.MaxWakeUp
	}
	ck.schedule()
}

// ValidateSpec runs the static verifier (internal/hpl/verify) over a
// constructed container's spec: structural and operand-kind checks, the
// Activate call graph, page-register def-before-use, the CR-aware flow
// walk, loop boundedness, and Request/Release frame balance. Every
// diagnostic is emitted on the event spine; error-severity diagnostics are
// returned and reject the registration. A spec that verifies with no
// errors sets the container's verified bit, letting the executor skip the
// per-command checks the verifier proved redundant.
func (ck *Checker) ValidateSpec(c *Container) []error {
	diags := verify.Analyze(buildUnit(c))
	var errs []error
	for i := range diags {
		d := &diags[i]
		if ck.AllowUnbounded && d.Severity == verify.SevError && boundednessCode(d.Code) {
			d.Severity = verify.SevWarning
		}
		ck.kernel.emit(kevent.Event{
			Type: kevent.EvVerifyDiag, Container: int32(c.ID),
			Arg: int64(d.Severity), Aux: int64(d.Event),
			Flag: d.Severity == verify.SevError,
		})
		if d.Severity == verify.SevError {
			if d.Event < 0 {
				errs = append(errs, fmt.Errorf("spec %q: %s", c.spec.Name, d.Msg))
			} else {
				errs = append(errs, fmt.Errorf("event %s CC=%d: %s", d.EventName, d.CC, d.Msg))
			}
		}
	}
	c.verified = len(errs) == 0
	ck.noteValidation(errs)
	return errs
}

// boundednessCode reports whether a diagnostic code is a termination
// argument (the class AllowUnbounded waives) rather than a safety one.
func boundednessCode(code verify.Code) bool {
	switch code {
	case verify.CodeInfiniteLoop, verify.CodeStuckLoop, verify.CodeFrameLeak:
		return true
	}
	return false
}

// noteValidation emits the validation event; the Flag marks a rejection.
func (ck *Checker) noteValidation(errs []error) {
	ck.kernel.emit(kevent.Event{Type: kevent.EvCheckerValidation, Flag: len(errs) > 0})
}
