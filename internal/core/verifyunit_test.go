package core

import (
	"errors"
	"strings"
	"testing"

	"hipec/internal/hiperr"
	"hipec/internal/isa"
	"hipec/internal/kevent"
)

// TestWellKnownSlotsMatchContainer pins the isa.WellKnownSlots contract to
// the slots newContainer actually wires: the verifier's view of the operand
// array must never drift from the runtime's.
func TestWellKnownSlotsMatchContainer(t *testing.T) {
	c, err := newContainer(nil, 0, nil, simpleSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint8]bool{}
	for _, s := range isa.WellKnownSlots() {
		seen[s.Slot] = true
		o := &c.operands[s.Slot]
		if o.Kind != s.Kind {
			t.Errorf("slot %#02x (%s): isa kind %v, container kind %v", s.Slot, s.Name, s.Kind, o.Kind)
		}
		if o.Name != s.Name {
			t.Errorf("slot %#02x: isa name %q, container name %q", s.Slot, s.Name, o.Name)
		}
		if got := o.readOnly || o.live != nil; got != s.ReadOnly {
			t.Errorf("slot %#02x (%s): isa readOnly %t, container %t", s.Slot, s.Name, s.ReadOnly, got)
		}
		if got := o.live != nil; got != s.Live {
			t.Errorf("slot %#02x (%s): isa live %t, container %t", s.Slot, s.Name, s.Live, got)
		}
		if s.Live && s.LiveQueue != isa.SlotNoQueue {
			// The mapped queue slot must hold a queue whose length the
			// live closure reports.
			q := c.operands[s.LiveQueue].Queue
			if q == nil {
				t.Errorf("slot %#02x (%s): LiveQueue %#02x holds no queue", s.Slot, s.Name, s.LiveQueue)
			} else if o.live() != int64(q.Len()) {
				t.Errorf("slot %#02x (%s): live() = %d, queue len %d", s.Slot, s.Name, o.live(), q.Len())
			}
		}
	}
	// Every builtin slot the container wires must be in the isa table.
	for i, o := range c.operands {
		if uint8(i) >= SlotUser {
			break
		}
		if o.Kind != KindNone && !seen[uint8(i)] {
			t.Errorf("container wires slot %#02x (%s) missing from isa.WellKnownSlots", i, o.Name)
		}
	}
}

// TestVerifierRejectsMutualActivate is the registration-level regression
// for the headline bugfix: A activates B, B activates A used to pass
// ValidateSpec (which only caught self-activation) and loop until the
// checker timeout. The call-graph pass now rejects it at registration.
func TestVerifierRejectsMutualActivate(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	evA := NewProgram(Encode(OpActivate, 3, 0, 0), Encode(OpReturn, 0, 0, 0))
	evB := NewProgram(Encode(OpActivate, 2, 0, 0), Encode(OpReturn, 0, 0, 0))
	spec.Events = append(spec.Events, evA, evB)
	_, _, err := k.Allocate(sp, 4096, WithPolicy(spec))
	if err == nil {
		t.Fatal("mutual Activate recursion accepted at registration")
	}
	if !strings.Contains(err.Error(), "Activate cycle") {
		t.Fatalf("err = %v, want an Activate cycle diagnostic", err)
	}
	if !errors.Is(err, hiperr.ErrPolicyRejected) {
		t.Fatalf("err = %v, want ErrPolicyRejected", err)
	}
	if !errors.Is(err, hiperr.ErrPolicyFault) {
		t.Fatalf("err = %v, must still match ErrPolicyFault", err)
	}
}

// TestVerifierRejectsUndefinedPageRegister: using a page register no event
// ever fills used to pass validation and fault at runtime.
func TestVerifierRejectsUndefinedPageRegister(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	spec.Operands = []OperandDecl{{Slot: SlotUser, Kind: KindPage, Name: "ghost"}}
	spec.Events[EventReclaimFrame] = NewProgram(
		Encode(OpEnQueue, SlotUser, SlotFreeQueue, QueueTail),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	_, _, err := k.Allocate(sp, 4096, WithPolicy(spec))
	if err == nil {
		t.Fatal("undefined page register accepted at registration")
	}
	if !strings.Contains(err.Error(), "never defined") {
		t.Fatalf("err = %v, want undefined-page-register diagnostic", err)
	}
}

// TestVerifierRejectsFrameLeakLoop: a Request loop blind to the grant
// outcome used to run until the checker timeout while draining the global
// frame pool.
func TestVerifierRejectsFrameLeakLoop(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	spec.Events[EventReclaimFrame] = NewProgram(
		Encode(OpRequest, SlotOne, 0, 0),
		Encode(OpEmptyQ, SlotActiveQueue, 0, 0),
		Encode(OpJump, JumpIfTrue, 0, 1),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	_, _, err := k.Allocate(sp, 4096, WithPolicy(spec))
	if err == nil {
		t.Fatal("unbounded Request loop accepted at registration")
	}
	if !strings.Contains(err.Error(), "no Release") {
		t.Fatalf("err = %v, want frame-leak diagnostic", err)
	}
}

// TestVerifiedBitLifecycle: accepted specs run on the unchecked fast path;
// programs injected behind the verifier's back drop the waiver.
func TestVerifiedBitLifecycle(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	_, c, err := k.Allocate(sp, 4*4096, WithPolicy(simpleSpec(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Verified() {
		t.Fatal("accepted spec must set the verified bit")
	}
	c.AppendEventForTest(NewProgram(Encode(OpReturn, 0, 0, 0)))
	if c.Verified() {
		t.Fatal("AppendEventForTest must clear the verified bit")
	}
}

// TestAllowUnboundedDowngrade: the watchdog-test knob accepts provably
// infinite loops but keeps kind-safety rejections.
func TestAllowUnboundedDowngrade(t *testing.T) {
	k := testKernel(64)
	k.Checker.AllowUnbounded = true
	sp := k.NewSpace()
	spec := simpleSpec(4)
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpComp, SlotZero, SlotOne, CompLT),
		Encode(OpJump, JumpIfTrue, 0, 1),
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead),
		Encode(OpReturn, SlotPageReg, 0, 0),
	)
	k.Executor.MaxSteps = 100 // terminate quickly if executed
	_, c, err := k.Allocate(sp, 4*4096, WithPolicy(spec))
	if err != nil {
		t.Fatalf("AllowUnbounded must accept the infinite loop: %v", err)
	}
	if !c.Verified() {
		t.Fatal("boundedness waiver must not clear the verified bit (kind safety is independent)")
	}

	// Kind errors still reject.
	bad := simpleSpec(4)
	bad.Events[EventPageFault] = NewProgram(
		Encode(OpDeQueue, SlotFreeCount, SlotFreeQueue, QueueHead),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	if _, _, err := k.Allocate(k.NewSpace(), 4096, WithPolicy(bad)); err == nil {
		t.Fatal("AllowUnbounded must not waive operand-kind errors")
	}
}

// TestVerifyDiagEvents: every verifier diagnostic lands on the event spine.
func TestVerifyDiagEvents(t *testing.T) {
	k := testKernel(64)
	sp := k.NewSpace()
	spec := simpleSpec(4)
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpActivate, EventPageFault, 0, 0),
		Encode(OpReturn, 0, 0, 0),
	)
	if _, _, err := k.Allocate(sp, 4096, WithPolicy(spec)); err == nil {
		t.Fatal("self-activation accepted")
	}
	g := k.Registry().Global()
	if g.Counts[kevent.EvVerifyDiag] == 0 {
		t.Fatal("rejection emitted no verify.diag events")
	}
	if g.Flags[kevent.EvVerifyDiag] == 0 {
		t.Fatal("error-severity diagnostics must set the event flag")
	}
}

// TestForceCheckedEquivalence: the checked and unchecked interpreters must
// agree on a verified program's result.
func TestForceCheckedEquivalence(t *testing.T) {
	run := func(force bool) int64 {
		k := testKernel(64)
		k.Executor.ForceChecked = force
		sp := k.NewSpace()
		e, c, err := k.Allocate(sp, 8*4096, WithPolicy(simpleSpec(8)))
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 6; i++ {
			if _, err := sp.Touch(e.Start + i*4096); err != nil {
				t.Fatal(err)
			}
		}
		return int64(c.Allocated())
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("checked run allocated %d, fast-path run %d", a, b)
	}
}
