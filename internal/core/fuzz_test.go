package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"hipec/internal/mem"
)

// kernelConservation verifies that every physical frame is accounted for
// exactly once across the machine free pool, the daemon's queues, every
// container's queues and registers, and resident-but-unqueued (wired or
// in-laundering) pages. It is the global safety property the HiPEC design
// must preserve no matter what policies do.
func kernelConservation(t *testing.T, k *Kernel) {
	t.Helper()
	queues := []*mem.Queue{k.Daemon.Active, k.Daemon.Inactive}
	loose := map[*mem.Page]bool{}
	for _, c := range k.containers {
		queues = append(queues, c.queues()...)
		for _, p := range c.pageRegisters() {
			if p.Queue() == nil {
				loose[p] = true
			}
		}
	}
	// Resident pages that are on no queue (wired pages, pages mid-fault).
	for i := 0; i < k.VM.Frames.Frames(); i++ {
		p := k.VM.Frames.Page(i)
		if p.Queue() == nil && !loose[p] && k.isResident(p) {
			loose[p] = true
		}
	}
	if err := k.VM.Frames.Conservation(queues, loose); err != nil {
		t.Fatal(err)
	}
}

// randomProgram builds a random, statically-plausible event program from a
// vocabulary of commands. Most are well-formed; runtime failures (empty
// dequeues, empty registers) are expected and must terminate cleanly.
func randomProgram(rng *rand.Rand, length int) Program {
	cmds := make([]Command, 0, length+1)
	queueSlots := []uint8{SlotFreeQueue, SlotActiveQueue, SlotInactiveQueue}
	q := func() uint8 { return queueSlots[rng.Intn(len(queueSlots))] }
	for i := 0; i < length; i++ {
		switch rng.Intn(10) {
		case 0:
			cmds = append(cmds, Encode(OpComp, SlotFreeCount, SlotOne, uint8(rng.Intn(6))))
		case 1:
			cmds = append(cmds, Encode(OpEmptyQ, q(), 0, 0))
		case 2:
			cmds = append(cmds, Encode(OpDeQueue, SlotPageReg, q(), QueueHead))
		case 3:
			cmds = append(cmds, Encode(OpEnQueue, SlotPageReg, q(), QueueTail))
		case 4:
			cmds = append(cmds, Encode(OpRef, SlotPageReg, 0, 0))
		case 5:
			cmds = append(cmds, Encode(OpSet, SlotPageReg, SetBitReference, SetOpClear))
		case 6:
			cmds = append(cmds, Encode(OpFlush, SlotPageReg, 0, 0))
		case 7:
			cmds = append(cmds, Encode(OpRequest, SlotOne, 0, 0))
		case 8:
			cmds = append(cmds, Encode(OpRelease, SlotOne, 0, 0))
		case 9:
			cmds = append(cmds, Encode(uint8ToOp(rng), q(), 0, 0)) // FIFO/LRU/MRU
		}
	}
	cmds = append(cmds, Encode(OpReturn, SlotPageReg, 0, 0))
	return NewProgram(cmds...)
}

func uint8ToOp(rng *rand.Rand) Opcode {
	return []Opcode{OpFIFO, OpLRU, OpMRU}[rng.Intn(3)]
}

// TestPropertyRandomPoliciesNeverLeakFrames is the kernel-robustness fuzz:
// random policies drive faults until they either work or get terminated;
// in every outcome the machine's frames remain fully accounted for and the
// frame manager's books balance.
func TestPropertyRandomPoliciesNeverLeakFrames(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := testKernel(256)
		sp := k.NewSpace()
		spec := &Spec{
			Name: "fuzz",
			Events: []Program{
				randomProgram(rng, 3+rng.Intn(10)),
				randomProgram(rng, 1+rng.Intn(5)),
			},
			MinFrame: 4 + rng.Intn(12),
		}
		e, c, err := k.Allocate(sp, 64*4096, WithPolicy(spec))
		if err != nil {
			// Static checker rejected it: nothing was granted.
			return k.FM.SpecificTotal() == 0
		}
		// Drive random accesses; faults may kill the container, which is
		// fine — subsequent faults take the default path.
		for i := 0; i < 40; i++ {
			addr := e.Start + int64(rng.Intn(64))*4096
			if rng.Intn(2) == 0 {
				sp.Write(addr) //nolint:errcheck // errors are expected
			} else {
				sp.Touch(addr) //nolint:errcheck
			}
		}
		// Let the manager's asynchronous laundering finish.
		k.Clock.Advance(5 * time.Second)
		if k.FM.Stats().LaunderPending != 0 {
			return false
		}
		kernelConservation(t, k)
		// Manager accounting: sum of grants equals its ledger.
		total := 0
		for _, cc := range k.FM.Containers() {
			total += cc.Allocated()
		}
		if c.state == StateActive && c.allocated < c.MinFrame {
			return false
		}
		return total == k.FM.SpecificTotal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// wildProgram builds a program from a much rougher vocabulary than
// randomProgram: random opcodes (sometimes illegal), random slots
// (sometimes the wrong kind), random jump targets (sometimes out of
// range). Most of these are rejected by the verifier; the ones it accepts
// feed the soundness fuzz below.
func wildProgram(rng *rand.Rand, length int) Program {
	cmds := make([]Command, 0, length+2)
	queueSlots := []uint8{SlotFreeQueue, SlotActiveQueue, SlotInactiveQueue}
	q := func() uint8 { return queueSlots[rng.Intn(len(queueSlots))] }
	// Define the page register early so programs that return it have a
	// chance of verifying; the verifier still sees plenty of rejects from
	// the wild cases below.
	cmds = append(cmds, Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead))
	for i := 0; i < length; i++ {
		switch rng.Intn(14) {
		case 0:
			cmds = append(cmds, Encode(OpComp, SlotFreeCount, SlotOne, uint8(rng.Intn(8))))
		case 1:
			cmds = append(cmds, Encode(OpEmptyQ, q(), 0, 0))
		case 2:
			cmds = append(cmds, Encode(OpDeQueue, SlotPageReg, q(), QueueHead))
		case 3:
			cmds = append(cmds, Encode(OpEnQueue, SlotPageReg, q(), QueueTail))
		case 4:
			cmds = append(cmds, Encode(OpRef, SlotPageReg, 0, 0))
		case 5:
			cmds = append(cmds, Encode(OpSet, SlotPageReg, SetBitReference, SetOpClear))
		case 6:
			cmds = append(cmds, Encode(OpFlush, SlotPageReg, 0, 0))
		case 7:
			cmds = append(cmds, Encode(OpRequest, SlotOne, 0, 0))
		case 8:
			cmds = append(cmds, Encode(OpRelease, SlotOne, 0, 0))
		case 9:
			cmds = append(cmds, Encode(uint8ToOp(rng), q(), 0, 0))
		case 10:
			// Arith on scratch — sometimes against the wrong kind.
			src := SlotOne
			if rng.Intn(4) == 0 {
				src = SlotFreeQueue
			}
			cmds = append(cmds, Encode(OpArith, SlotScratch, src, ArithAdd))
		case 11:
			// Forward-ish jump; target may land out of range.
			cmds = append(cmds, Encode(OpJump, uint8(rng.Intn(3)), 0, uint8(i+2+rng.Intn(4))))
		case 12:
			// Logic on the CR with a random flag.
			cmds = append(cmds, Encode(OpLogic, SlotScratch, SlotScratch, uint8(rng.Intn(4))))
		default:
			// Fully wild: random opcode (sometimes beyond the ISA),
			// random slots, random flag.
			op := Opcode(rng.Intn(int(maxExtOpcode) + 3))
			cmds = append(cmds, Encode(op, uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(16))))
		}
	}
	cmds = append(cmds, Encode(OpReturn, SlotPageReg, 0, 0))
	return NewProgram(cmds...)
}

// TestPropertyVerifierSoundness: a program the static verifier accepts must
// never raise a runtime PolicyFault of a class the verifier claims to rule
// out — operand-kind misuse, illegal opcodes or flags, out-of-range jumps
// or command counters, read-only writes, undefined events, or Activate
// nesting overflows. Runtime-state faults (empty queues and registers,
// orphaned frames, division by zero, runaway budgets) remain legitimate.
// The executor runs with ForceChecked so a verifier soundness hole
// surfaces as a typed fault instead of skipping the check.
func TestPropertyVerifierSoundness(t *testing.T) {
	ruledOut := []string{
		"want int", "want bool", "want queue", "want page",
		"illegal opcode", "bad Arith flag", "bad Comp flag", "bad Logic flag",
		"bad Jump mode", "bad DeQueue flag", "bad EnQueue flag",
		"bad Set bit selector", "bad Set operation",
		"jump target", "command counter out of range",
		"read-only", "undefined event", "Activate nesting",
	}
	accepted := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := testKernel(128)
		k.Executor.ForceChecked = true
		sp := k.NewSpace()
		spec := &Spec{
			Name: "fuzz-sound",
			Events: []Program{
				wildProgram(rng, 2+rng.Intn(8)),
				wildProgram(rng, 1+rng.Intn(6)),
			},
			MinFrame: 4,
		}
		e, c, err := k.Allocate(sp, 32*4096, WithPolicy(spec))
		if err != nil {
			return true // rejected: nothing to check
		}
		accepted++
		if !c.Verified() {
			t.Errorf("seed %d: accepted spec without the verified bit", seed)
			return false
		}
		check := func(err error) bool {
			if err == nil {
				return true
			}
			for _, class := range ruledOut {
				if strings.Contains(err.Error(), class) {
					t.Errorf("seed %d: verified program raised statically-ruled-out fault: %v", seed, err)
					return false
				}
			}
			return true
		}
		for i := 0; i < 20; i++ {
			_, err := sp.Touch(e.Start + int64(rng.Intn(32))*4096)
			if !check(err) {
				return false
			}
			if c.State() != StateActive {
				break
			}
		}
		if c.State() == StateActive {
			_, err := k.Executor.Run(c, EventReclaimFrame)
			if !check(err) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if accepted == 0 {
		t.Skip("no wild program passed the verifier in this run (vocabulary too hostile)")
	}
}

// TestPropertyRandomPoliciesAfterDestroy extends the fuzz across container
// teardown: every frame must return to the machine pool.
func TestPropertyRandomPoliciesAfterDestroy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := testKernel(128)
		sp := k.NewSpace()
		spec := &Spec{
			Name:     "fuzz-destroy",
			Events:   []Program{randomProgram(rng, 6), randomProgram(rng, 3)},
			MinFrame: 8,
		}
		e, c, err := k.Allocate(sp, 32*4096, WithPolicy(spec))
		if err != nil {
			return k.Daemon.FreeCount() == 128
		}
		for i := 0; i < 20; i++ {
			sp.Touch(e.Start + int64(rng.Intn(32))*4096) //nolint:errcheck
		}
		k.DestroyContainer(c)
		k.Clock.Advance(5 * time.Second)
		return k.Daemon.FreeCount() == 128 && k.FM.SpecificTotal() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
