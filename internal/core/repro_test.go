package core

import (
	"strings"
	"testing"
	"time"
)

// Regression for a frame leak found by the conservation fuzz
// (TestPropertyRandomPoliciesAfterDestroy, seed 6821146589318828694):
// a policy that DeQueues into a register already holding a detached frame
// used to orphan the old frame permanently. The executor must terminate
// such a policy instead, and teardown must recover every frame.
func TestRegressionRegisterOverwriteOrphansFrame(t *testing.T) {
	k := testKernel(128)
	sp := k.NewSpace()
	spec := simpleSpec(8)
	spec.Events[EventPageFault] = NewProgram(
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead),
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead), // would orphan the first frame
		Encode(OpReturn, SlotPageReg, 0, 0),
	)
	e, c, err := k.Allocate(sp, 32*4096, WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err == nil {
		t.Fatal("orphaning policy succeeded")
	}
	if !strings.Contains(c.TerminationReason(), "orphan") {
		t.Fatalf("reason = %q", c.TerminationReason())
	}
	k.DestroyContainer(c)
	k.Clock.Advance(time.Second)
	if got := k.Daemon.FreeCount(); got != 128 {
		t.Fatalf("frames leaked: free = %d, want 128", got)
	}
	if k.FM.SpecificTotal() != 0 {
		t.Fatalf("SpecificTotal = %d", k.FM.SpecificTotal())
	}
}

// Overwriting a register that merely references a queued/resident page must
// remain legal (Find results, for example).
func TestRegisterOverwriteOfResidentReferenceAllowed(t *testing.T) {
	k, c := newExecFixture(t)
	addr := uint8(SlotUser)
	c.operands[addr] = Operand{Kind: KindInt, Name: "addr", Int: 0}
	_, err := runProg(t, k, c,
		Encode(OpFind, SlotPageReg, addr, 0),                     // register <- resident page
		Encode(OpFind, SlotPageReg, addr, 0),                     // overwrite: fine, page is resident
		Encode(OpDeQueue, SlotPageReg, SlotFreeQueue, QueueHead), // overwrite resident ref: fine
		Encode(OpEnQueue, SlotPageReg, SlotFreeQueue, QueueHead),
		Encode(OpReturn, SlotScratch, 0, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != StateActive {
		t.Fatal(c.TerminationReason())
	}
}
