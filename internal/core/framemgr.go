package core

import (
	"cmp"
	"fmt"
	"slices"

	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/kevent"
	"hipec/internal/mem"
	"hipec/internal/pageout"
	"hipec/internal/simtime"
)

// ErrMinFrame is returned when HiPEC activation cannot grant the requested
// minimum frame count ("If the minFrame request cannot be satisfied when
// HiPEC is initially invoked, an error code is returned. The specific
// application can either run as a non-specific application or terminate and
// retry later", §4.3.1). It is the hiperr sentinel, re-exported for
// compatibility.
var ErrMinFrame = hiperr.ErrMinFrame

// FMStats is a snapshot of global frame manager activity, derived from the
// kernel event spine.
type FMStats struct {
	Grants          int64 // Request commands granted
	Denials         int64 // Request commands denied
	FramesGranted   int64
	FramesReturned  int64
	NormalReclaims  int64 // frames recovered via ReclaimFrame events (FAFR)
	ForcedReclaims  int64 // frames recovered by forced reclamation
	FlushExchanges  int64
	LaunderPending  int64 // frames waiting for their flush write to finish
	ImplicitFlushes int64 // dirty pages laundered because a policy freed them uncleaned
}

// FrameManager is the HiPEC global frame manager (§4.3.1). It is "the
// pageout daemon acting as global frame manager": it allocates free page
// frames to specific applications, reclaims them under the partition_burst
// watermark, and performs page flushing on their behalf.
type FrameManager struct {
	kernel *Kernel
	Daemon *pageout.Daemon

	// PartitionBurst caps the total frames granted to all specific
	// applications; the paper sets it to 50% of the free frames at
	// startup.
	PartitionBurst int

	specificTotal int
	containers    []*Container // FAFR order: first allocated, first reclaimed

	// ReclaimPolicy selects how BalanceSpecific picks victims. FAFR is
	// the paper's policy; the alternatives implement §6 future work #4.
	ReclaimPolicy ReclaimPolicy
	rrNext        int // round-robin cursor
	// victimScratch backs victimOrder's candidate slice between reclaims;
	// nil while a reclaim iteration holds it (see victimOrder).
	victimScratch []*Container
	// grantScratch backs Request's frame list between grants, claimed the
	// same way so a nested Request (a ReclaimFrame policy requesting
	// frames) allocates privately instead of clobbering the outer grant.
	grantScratch []*mem.Page
	// forcedScratch backs reclaimForced's candidate list between passes.
	forcedScratch []forcedCand
}

// forcedCand is one (container, page) forced-reclamation candidate.
type forcedCand struct {
	c *Container
	p *mem.Page
}

// emit sends an event down the kernel spine.
func (fm *FrameManager) emit(e kevent.Event) { fm.kernel.emit(e) }

// Stats reports frame manager counters, derived from the event spine.
// Initial minFrame grants at activation carry the event Flag, so Grants
// (Request-command grants only) excludes them while FramesGranted counts
// their frames.
func (fm *FrameManager) Stats() FMStats {
	sc := fm.kernel.Registry().Global()
	return FMStats{
		Grants:          sc.Counts[kevent.EvFMGrant] - sc.Flags[kevent.EvFMGrant],
		Denials:         sc.Counts[kevent.EvFMDeny],
		FramesGranted:   sc.Sums[kevent.EvFMGrant],
		FramesReturned:  sc.Sums[kevent.EvFMReturn],
		NormalReclaims:  sc.Sums[kevent.EvFMReclaimNormal],
		ForcedReclaims:  sc.Counts[kevent.EvFMReclaimForced],
		FlushExchanges:  sc.Counts[kevent.EvFMFlushExchange],
		LaunderPending:  sc.Counts[kevent.EvFMLaunderStart] - sc.Counts[kevent.EvFMLaunderDone],
		ImplicitFlushes: sc.Counts[kevent.EvFMImplicitFlush],
	}
}

// ReclaimPolicy names a victim-selection strategy for container-level
// reclamation.
type ReclaimPolicy uint8

const (
	// ReclaimFAFR is the paper's First Allocated, First Reclaimed.
	ReclaimFAFR ReclaimPolicy = iota
	// ReclaimRoundRobin rotates the starting container between passes.
	ReclaimRoundRobin
	// ReclaimProportional asks the largest-overage container first.
	ReclaimProportional
)

func newFrameManager(k *Kernel, d *pageout.Daemon, burstFrac float64) *FrameManager {
	if burstFrac <= 0 || burstFrac > 1 {
		burstFrac = 0.5
	}
	return &FrameManager{
		kernel:         k,
		Daemon:         d,
		PartitionBurst: int(float64(d.FreeCount()) * burstFrac),
	}
}

// SpecificTotal reports the frames currently granted to all containers.
func (fm *FrameManager) SpecificTotal() int { return fm.specificTotal }

// Containers returns the live container list in FAFR order.
func (fm *FrameManager) Containers() []*Container { return fm.containers }

// attach grants a new container its minFrame frames and links it at the end
// of the container list (FAFR order).
func (fm *FrameManager) attach(c *Container) error {
	need := c.MinFrame
	if need <= 0 {
		return fmt.Errorf("container %d declares minFrame %d: %w", c.ID, need, ErrMinFrame)
	}
	frames := fm.Daemon.TakeFree(need)
	if len(frames) < need {
		// Try recovering frames from earlier specific applications
		// before giving up.
		fm.reclaim(need-len(frames), c)
		frames = append(frames, fm.Daemon.TakeFree(need-len(frames))...)
	}
	if len(frames) < need {
		for _, p := range frames {
			fm.Daemon.ReturnFrame(p)
		}
		return fmt.Errorf("%w: want %d frames, got %d", ErrMinFrame, need, len(frames))
	}
	for _, p := range frames {
		p.Object, p.Offset = 0, 0
		c.Free.EnqueueTail(p)
	}
	c.allocated = need
	fm.specificTotal += need
	fm.emit(kevent.Event{Type: kevent.EvFMGrant, Container: int32(c.ID), Arg: int64(need), Flag: true})
	fm.containers = append(fm.containers, c)
	return nil
}

// detach removes a container from the manager's list.
func (fm *FrameManager) detach(c *Container) {
	for i, cc := range fm.containers {
		if cc == c {
			fm.containers = append(fm.containers[:i], fm.containers[i+1:]...)
			return
		}
	}
}

// Request implements the Request command: grant n more frames to c, or
// reject ("the global frame manager grants or rejects the request depending
// on the number of the remaining free page frames and the status of the
// requester", §4.3.1). Grants are all-or-nothing; a rejected request leaves
// state unchanged and the executor's CR tells the policy to cope.
//
//hipec:hotpath
func (fm *FrameManager) Request(c *Container, n int) bool {
	if n == 0 {
		return true
	}
	if dec := fm.kernel.Inject.Decide(faultinj.FrameGrant); dec.Fail {
		// Injected denial under (simulated) pressure: policies already
		// cope with denial via the condition register, so this exercises
		// exactly the paper's reject path.
		fm.emit(kevent.Event{Type: kevent.EvInjectGrantDeny, Container: int32(c.ID), Arg: int64(n)})
		fm.emit(kevent.Event{Type: kevent.EvFMDeny, Container: int32(c.ID), Arg: int64(n), Flag: true})
		return false
	}
	if fm.specificTotal+n > fm.PartitionBurst {
		// Over the watermark: try to deallocate from other specific
		// applications first, then re-check.
		fm.reclaim(fm.specificTotal+n-fm.PartitionBurst, c)
		if fm.specificTotal+n > fm.PartitionBurst {
			fm.emit(kevent.Event{Type: kevent.EvFMDeny, Container: int32(c.ID), Arg: int64(n)})
			return false
		}
	}
	// Claim the grant scratch (a nested Request allocates privately).
	scratch := fm.grantScratch
	fm.grantScratch = nil
	frames := fm.Daemon.TakeFreeInto(scratch[:0], n)
	granted := len(frames) >= n
	for _, p := range frames {
		if granted {
			p.Object, p.Offset = 0, 0
			c.Free.EnqueueTail(p)
		} else {
			fm.Daemon.ReturnFrame(p)
		}
	}
	clear(frames)
	fm.grantScratch = frames[:0]
	if !granted {
		fm.emit(kevent.Event{Type: kevent.EvFMDeny, Container: int32(c.ID), Arg: int64(n)})
		return false
	}
	c.allocated += n
	fm.specificTotal += n
	fm.emit(kevent.Event{Type: kevent.EvFMGrant, Container: int32(c.ID), Arg: int64(n)})
	return true
}

// retire takes a page out of residency (detaching it from its object and
// laundering dirty contents) without changing frame ownership. After retire
// the frame is a clean, anonymous frame suitable for a private free list.
func (fm *FrameManager) retire(c *Container, p *mem.Page) error {
	if p.Wired {
		return fmt.Errorf("cannot retire wired frame %d: %w", p.Frame, hiperr.ErrPolicyFault)
	}
	if p.Object != 0 {
		obj := fm.kernel.VM.Object(p.Object)
		if obj != nil && obj.Resident(p.Offset) == p {
			if p.Modified {
				// The policy freed a dirty page without Flush; the
				// kernel launders it rather than lose data. If the
				// write-back fails the page stays resident and dirty —
				// retiring it would lose the only copy.
				if err := fm.kernel.VM.PageOut(p, nil); err != nil {
					return fmt.Errorf("launder frame %d: %w", p.Frame, err)
				}
				fm.emit(kevent.Event{Type: kevent.EvFMImplicitFlush, Container: int32(c.ID), Arg: int64(p.Object), Aux: p.Offset})
			}
			fm.kernel.VM.Detach(p)
		}
		p.Object, p.Offset = 0, 0
	}
	return nil
}

// ReleaseFrame returns one frame from c to the machine pool. The page must
// be off all queues; it may still be resident (it will be retired). It
// reports whether the frame was actually released: wired pages and pages
// whose laundering write failed stay with the container.
func (fm *FrameManager) ReleaseFrame(c *Container, p *mem.Page) bool {
	if err := fm.retire(c, p); err != nil {
		return false
	}
	fm.Daemon.ReturnFrame(p)
	c.allocated--
	fm.specificTotal--
	fm.emit(kevent.Event{Type: kevent.EvFMReturn, Container: int32(c.ID), Arg: 1})
	return true
}

// ReleaseFromFree returns up to n frames from c's private free list to the
// machine pool, reporting how many were released.
func (fm *FrameManager) ReleaseFromFree(c *Container, n int) int {
	released := 0
	for released < n {
		p := c.Free.DequeueHead()
		if p == nil {
			break
		}
		fm.Daemon.ReturnFrame(p)
		c.allocated--
		fm.specificTotal--
		released++
	}
	if released > 0 {
		fm.emit(kevent.Event{Type: kevent.EvFMReturn, Container: int32(c.ID), Arg: int64(released)})
	}
	return released
}

// noteReleased records frames freed on the manager's behalf by the VM layer
// (object teardown via Container.Release).
func (fm *FrameManager) noteReleased(c *Container, n int) {
	fm.specificTotal -= n
	if fm.specificTotal < 0 {
		fm.specificTotal = 0
	}
	if n > 0 {
		fm.emit(kevent.Event{Type: kevent.EvFMReturn, Container: int32(c.ID), Arg: int64(n)})
	}
}

// FlushExchange implements the Flush command's I/O handling (§4.3.1): the
// executor "releases the flushed page to a VM object of the global frame
// manager and receives a new free page", so it never waits for disk. The
// flushed frame rejoins the machine pool when its write completes. If no
// replacement frame is available the write happens synchronously and the
// same frame is handed back clean. Clean pages are simply retired and
// returned as-is.
//
// ok reports whether the flush succeeded. On failure the returned page is
// the caller's own page back (still resident and dirty when its write-back
// failed — the contents are the only copy) or nil for a wired page; the
// policy sees CR=false and copes.
//
//hipec:hotpath
func (fm *FrameManager) FlushExchange(c *Container, p *mem.Page) (_ *mem.Page, ok bool) {
	if !p.Modified {
		fm.emit(kevent.Event{Type: kevent.EvFMFlushExchange, Container: int32(c.ID)})
		if err := fm.retire(c, p); err != nil {
			return nil, false
		}
		return p, true
	}
	np := fm.Daemon.TakeOne()
	if np == nil {
		// Fallback: synchronous flush, reuse the same frame.
		fm.emit(kevent.Event{Type: kevent.EvFMFlushExchange, Container: int32(c.ID)})
		if err := fm.kernel.VM.PageOutSync(p); err != nil {
			// Write-back failed: the page stays resident and dirty.
			return p, false
		}
		fm.kernel.VM.Detach(p)
		p.Object, p.Offset = 0, 0
		return p, true
	}
	np.Object, np.Offset = 0, 0
	// Asynchronous laundering: store write is immediate (contents safe),
	// the disk write completes later, and only then does the frame rejoin
	// the pool. The Flag marks the asynchronous (exchange) path.
	cid := int32(c.ID)
	obj := fm.kernel.VM.Object(p.Object)
	fm.emit(kevent.Event{Type: kevent.EvFMFlushExchange, Container: cid, Flag: true})
	//hipec:vet-ignore hotalloc -- laundering completion callback rides the asynchronous disk write; its capture is noise against the I/O it tracks
	if err := fm.kernel.VM.PageOut(p, func(simtime.Time) {
		p.Object, p.Offset = 0, 0
		fm.Daemon.ReturnFrame(p)
		fm.emit(kevent.Event{Type: kevent.EvFMLaunderDone, Container: cid})
	}); err != nil {
		// Write-back failed before anything was detached: give the
		// replacement frame back and return the dirty page to the policy.
		fm.Daemon.ReturnFrame(np)
		return p, false
	}
	fm.emit(kevent.Event{Type: kevent.EvFMLaunderStart, Container: cid, Arg: int64(p.Object), Aux: p.Offset})
	if obj != nil && obj.Resident(p.Offset) == p {
		fm.kernel.VM.Detach(p)
	}
	p.Object, p.Offset = 0, 0 // identity cleared; completion callback re-clears harmlessly
	return np, true
}

// reclaim recovers at least want frames for the machine pool from specific
// applications other than skip, first by normal reclamation (running each
// victim's ReclaimFrame event, FAFR order) and then, if still short, by
// forced reclamation (§4.3.1 Deallocation). It returns the number of frames
// recovered.
func (fm *FrameManager) reclaim(want int, skip *Container) int {
	if want <= 0 {
		return 0
	}
	recovered := fm.reclaimNormal(want, skip)
	if recovered < want {
		recovered += fm.reclaimForced(want-recovered, skip)
	}
	return recovered
}

// victimOrder returns candidate containers per the configured policy. The
// returned slice aliases the manager's scratch buffer — reclaim runs on
// every frame request under memory pressure, and allocating a fresh sorted
// slice per reclaim showed up as steady garbage in sweep profiles. Callers
// hand the slice back via releaseVictims. victimOrder claims the scratch
// (nils the field) so a nested reclaim — a ReclaimFrame policy whose own
// Request triggers another reclaim — allocates privately instead of
// clobbering the iteration in progress.
func (fm *FrameManager) victimOrder() []*Container {
	scratch := fm.victimScratch
	fm.victimScratch = nil
	out := append(scratch[:0], fm.containers...)
	switch fm.ReclaimPolicy {
	case ReclaimRoundRobin:
		if len(out) > 1 {
			k := fm.rrNext % len(out)
			fm.rrNext++
			rotateLeft(out, k)
		}
	case ReclaimProportional:
		slices.SortStableFunc(out, func(a, b *Container) int {
			return cmp.Compare(b.allocated-b.MinFrame, a.allocated-a.MinFrame)
		})
	}
	return out
}

// releaseVictims returns a victimOrder slice to the scratch buffer. The
// elements are cleared so the scratch does not keep dead containers
// reachable between reclaims.
func (fm *FrameManager) releaseVictims(s []*Container) {
	clear(s)
	fm.victimScratch = s[:0]
}

// rotateLeft rotates s left by k in place (three-reversal), so the
// round-robin order starts at index k without allocating. The old code's
// append(out[k:], out[:k]...) only worked because out was freshly
// allocated at full capacity; on a reused scratch it would alias.
func rotateLeft[T any](s []T, k int) {
	reverse(s[:k])
	reverse(s[k:])
	reverse(s)
}

func reverse[T any](s []T) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func (fm *FrameManager) reclaimNormal(want int, skip *Container) int {
	recovered := 0
	victims := fm.victimOrder()
	defer fm.releaseVictims(victims)
	for _, cand := range victims {
		if recovered >= want {
			break
		}
		if cand == skip || cand.state != StateActive || cand.allocated <= cand.MinFrame {
			// "The global frame manager reclaims page frames from
			// specific applications with more pages than their
			// minimal request only."
			continue
		}
		// Keep invoking the victim's ReclaimFrame event "until the
		// request is satisfied" or it stops yielding frames or hits its
		// guaranteed minimum.
		for recovered < want && cand.state == StateActive && cand.allocated > cand.MinFrame {
			before := fm.specificTotal
			if _, err := fm.kernel.Executor.Run(cand, EventReclaimFrame); err != nil {
				break // the run terminated the container; move on
			}
			got := before - fm.specificTotal
			if got <= 0 {
				break
			}
			recovered += got
			fm.emit(kevent.Event{Type: kevent.EvFMReclaimNormal, Container: int32(cand.ID), Arg: int64(got)})
		}
	}
	return recovered
}

// reclaimForced steals the oldest-allocated frames ("all the allocated page
// frames of all specific applications are linked in the sequence of the
// time of allocation") from containers above their minimum.
//
//hipec:hotpath
func (fm *FrameManager) reclaimForced(want int, skip *Container) int {
	// Claim the candidate scratch for this pass (nested passes allocate
	// privately), reusing its backing array across reclaim rounds.
	cands := fm.forcedScratch
	fm.forcedScratch = nil
	cands = cands[:0]
	for _, c := range fm.containers {
		if c == skip || c.state != StateActive {
			continue
		}
		budget := c.allocated - c.MinFrame
		if budget <= 0 {
			continue
		}
		for _, q := range c.queues() {
			for p := q.Head(); p != nil; p = p.Next() {
				if !p.Wired {
					cands = append(cands, forcedCand{c, p})
				}
			}
		}
	}
	slices.SortStableFunc(cands, func(a, b forcedCand) int { return cmp.Compare(a.p.AllocSeq, b.p.AllocSeq) })
	taken := 0
	for _, cd := range cands {
		if taken >= want {
			break
		}
		if cd.c.allocated-cd.c.MinFrame <= 0 {
			continue // never strip a container below its guarantee
		}
		if cd.p.Queue() == nil {
			continue // already moved by an earlier step
		}
		q := cd.p.Queue()
		q.Remove(cd.p)
		if err := fm.retire(cd.c, cd.p); err != nil {
			// Laundering failed; the dirty page must stay with its
			// container, so put it back where it was.
			q.EnqueueTail(cd.p)
			continue
		}
		fm.Daemon.ReturnFrame(cd.p)
		cd.c.allocated--
		fm.specificTotal--
		taken++
		fm.emit(kevent.Event{Type: kevent.EvFMReclaimForced, Container: int32(cd.c.ID), Arg: int64(cd.p.Object), Aux: cd.p.Offset})
	}
	// Hand the scratch back for the next round (single exit: no defer, so
	// the function stays closure-free on the hot path).
	clear(cands)
	fm.forcedScratch = cands[:0]
	return taken
}

// BalanceSpecific enforces the partition_burst watermark: when the total
// granted to specific applications exceeds it, frames are deallocated from
// containers holding more than minFrame.
func (fm *FrameManager) BalanceSpecific() {
	over := fm.specificTotal - fm.PartitionBurst
	if over > 0 {
		fm.reclaim(over, nil)
	}
}

// Migrate moves a frame from container src to the container with the given
// ID (§6 future work #1: "migrating physical frames between the relevant
// jobs"). The page is retired first; it arrives on dst's private free list.
func (fm *FrameManager) Migrate(src *Container, dstID int, p *mem.Page) error {
	var dst *Container
	for _, c := range fm.containers {
		if c.ID == dstID {
			dst = c
			break
		}
	}
	if dst == nil || dst.state != StateActive {
		return fmt.Errorf("migrate target container %d not active: %w", dstID, hiperr.ErrPolicyFault)
	}
	if dst == src {
		return fmt.Errorf("migrate to self: %w", hiperr.ErrPolicyFault)
	}
	if q := p.Queue(); q != nil {
		q.Remove(p)
	}
	if err := fm.retire(src, p); err != nil {
		return err
	}
	dst.Free.EnqueueTail(p)
	src.allocated--
	dst.allocated++
	fm.emit(kevent.Event{Type: kevent.EvPolicyMigrate, Container: int32(dst.ID), Arg: int64(src.ID)})
	return nil
}
