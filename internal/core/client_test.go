package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hipec/internal/hiperr"
)

// The in-process client surface end to end: *Loop's typed methods on a
// realtime kernel, payloads round-tripping through the fault path.
func TestLoopClientSurface(t *testing.T) {
	l := NewLoop(realKernel(64))
	defer l.Close()

	if ps := l.PageSize(); ps != 4096 {
		t.Fatalf("PageSize = %d, want 4096", ps)
	}
	r, err := l.Open(8)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	payload := []byte("client surface payload")
	if err := l.WritePage(r, 3, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(payload))
	n, err := l.ReadPage(r, 3, buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf[:n], payload) {
		t.Fatalf("read back %q, want %q", buf[:n], payload)
	}
	if err := l.TouchPage(r, 0); err != nil {
		t.Fatalf("touch: %v", err)
	}
	st, err := l.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Accesses < 3 || st.Faults == 0 {
		t.Fatalf("stats show no traffic: %+v", st)
	}
	if err := l.FreeRegion(r); err != nil {
		t.Fatalf("free: %v", err)
	}
	if err := l.TouchPage(r, 0); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("touch after free: got %v, want ErrBadRequest", err)
	}
}

// TouchAsync is enqueued-not-guaranteed: true means the touch is in the
// mailbox, and it lands eventually.
func TestLoopTouchAsync(t *testing.T) {
	l := NewLoop(realKernel(64))
	defer l.Close()
	r, err := l.Open(2)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	before, _ := l.Stats()
	if !l.TouchAsync(r, 1) {
		t.Fatal("TouchAsync refused on an open loop")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := l.Stats()
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Accesses > before.Accesses {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("async touch never landed")
		}
		time.Sleep(time.Millisecond)
	}
}

// The session's request validation: every malformed command is a typed
// ErrBadRequest, and none of them disturb kernel state.
func TestCacheSessionBadRequests(t *testing.T) {
	k := New(Config{Frames: 64})
	s := NewCacheSession()

	if _, err := s.Open(k, 0); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("zero pages: got %v, want ErrBadRequest", err)
	}
	if err := s.Touch(k, 42, 0); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("unknown region: got %v, want ErrBadRequest", err)
	}
	r, err := s.Open(k, 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Touch(k, r, 4); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("page out of range: got %v, want ErrBadRequest", err)
	}
	if err := s.Touch(k, r, -1); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("negative page: got %v, want ErrBadRequest", err)
	}
	if err := s.Write(k, r, 0, make([]byte, k.VM.PageSize()+1)); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("oversize payload: got %v, want ErrBadRequest", err)
	}
	if _, err := s.Open(k, 4, WithPolicySpec(&Spec{}), WithPolicySource("x", "y")); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("spec and source together: got %v, want ErrBadRequest", err)
	}
}

// WithPolicySource without a linked translator (this test binary does not
// import hpl) fails typed, not silently.
func TestCacheSessionSourceNeedsTranslator(t *testing.T) {
	saved := policyTranslator
	policyTranslator = nil
	defer func() { policyTranslator = saved }()

	k := New(Config{Frames: 64})
	s := NewCacheSession()
	if _, err := s.Open(k, 4, WithPolicySource("lru", "policy lru { }")); !errors.Is(err, hiperr.ErrBadRequest) {
		t.Fatalf("got %v, want ErrBadRequest", err)
	}
}

// On the data-free simulation, the client surface still drives residency and
// policy state — writes fault, reads return no payload, nothing panics.
func TestCacheSessionDataFreeSim(t *testing.T) {
	k := New(Config{Frames: 64}) // sim default: KeepData false
	s := NewCacheSession()
	r, err := s.Open(k, 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Write(k, r, 0, []byte("dropped")); err != nil {
		t.Fatalf("write: %v", err)
	}
	n, err := s.Read(k, r, 0, make([]byte, 8))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n != 0 {
		t.Fatalf("data-free read returned %d bytes", n)
	}
	if st := s.Stats(k); st.Faults == 0 {
		t.Fatalf("no faults recorded: %+v", st)
	}
}

// FreeAll is connection teardown: every region goes, frames return to the
// machine pool, and the space can be refilled.
func TestCacheSessionFreeAll(t *testing.T) {
	k := New(Config{Frames: 32})
	s := NewCacheSession()
	for i := 0; i < 3; i++ {
		r, err := s.Open(k, 8)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		for p := 0; p < 8; p++ {
			if err := s.Touch(k, r, p); err != nil {
				t.Fatalf("region %d touch %d: %v", i, p, err)
			}
		}
	}
	if got := s.Regions(); got != 3 {
		t.Fatalf("Regions = %d, want 3", got)
	}
	s.FreeAll(k)
	if got := s.Regions(); got != 0 {
		t.Fatalf("Regions after FreeAll = %d, want 0", got)
	}
	// The machine is whole again: a fresh session can fault a full region.
	s2 := NewCacheSession()
	r, err := s2.Open(k, 8)
	if err != nil {
		t.Fatalf("open after FreeAll: %v", err)
	}
	for p := 0; p < 8; p++ {
		if err := s2.Touch(k, r, p); err != nil {
			t.Fatalf("touch after FreeAll: %v", err)
		}
	}
}
