package core

import (
	"fmt"

	"hipec/internal/hiperr"
	"hipec/internal/vm"
)

// AllocOption configures a region created by Allocate or mapped by Map.
// Options compose: a region may have a HiPEC policy, an external pager and a
// private retry budget all at once.
type AllocOption func(*allocOptions)

type allocOptions struct {
	spec  *Spec
	pager vm.Pager
	retry int
}

// WithPolicy places the region under control of a HiPEC policy: the kernel
// allocates and initializes a container, obtains minFrame frames from the
// global frame manager, and statically validates the policy commands (§4.3).
// A nil spec is ignored (the region stays under the default policy).
func WithPolicy(spec *Spec) AllocOption {
	return func(o *allocOptions) { o.spec = spec }
}

// WithPager backs the region with an external memory manager: page-ins and
// page-outs go through p instead of the kernel's default store/disk path.
func WithPager(p vm.Pager) AllocOption {
	return func(o *allocOptions) { o.pager = p }
}

// WithRetryBudget overrides the kernel's fault-path retry budget for this
// region: a transient page-in failure is retried up to n times (with
// virtual-time backoff) before the fault is declared failed and graceful
// degradation kicks in. n <= 0 is ignored.
func WithRetryBudget(n int) AllocOption {
	return func(o *allocOptions) { o.retry = n }
}

// Allocate creates a fresh zero-fill region of size bytes in sp, configured
// by opts. With no options it is a plain vm_allocate; WithPolicy makes it
// vm_allocate_hipec, WithPager attaches an external memory manager, and
// WithRetryBudget tunes fault-path resilience.
func (k *Kernel) Allocate(sp *vm.AddressSpace, size int64, opts ...AllocOption) (*vm.MapEntry, *Container, error) {
	obj := k.VM.NewObject(size, true)
	e, c, err := k.mapWith(sp, obj, 0, size, opts)
	if err != nil {
		// mapWith destroys the object when it tears down a container; only
		// clean up what is still alive.
		if k.VM.Object(obj.ID) != nil {
			k.VM.DestroyObject(obj)
		}
		return nil, nil, err
	}
	return e, c, nil
}

// Map maps a window of an existing (typically Populate-d) object into sp,
// configured by opts. The returned Container is nil unless WithPolicy was
// given.
//
// Note: when WithPolicy is given and the address-space mapping itself fails,
// the freshly activated container is destroyed — which destroys obj too,
// preserving the legacy vm_map_hipec teardown semantics.
func (k *Kernel) Map(sp *vm.AddressSpace, obj *vm.Object, objOffset, length int64, opts ...AllocOption) (*vm.MapEntry, *Container, error) {
	return k.mapWith(sp, obj, objOffset, length, opts)
}

func (k *Kernel) mapWith(sp *vm.AddressSpace, obj *vm.Object, objOffset, length int64, opts []AllocOption) (*vm.MapEntry, *Container, error) {
	var o allocOptions
	for _, fn := range opts {
		fn(&o)
	}
	if o.pager != nil {
		if obj.ExternalPager != nil && obj.ExternalPager != o.pager {
			return nil, nil, &hiperr.Error{Op: "hipec.map",
				Err: fmt.Errorf("object %d already has pager %q", obj.ID, obj.ExternalPager.PagerName())}
		}
		obj.ExternalPager = o.pager
	}
	if o.retry > 0 {
		obj.RetryBudget = o.retry
	}
	var c *Container
	if o.spec != nil {
		var err error
		c, err = k.activate(obj, o.spec)
		if err != nil {
			return nil, nil, err
		}
	}
	e, err := sp.Map(obj, objOffset, length)
	if err != nil {
		if c != nil {
			k.DestroyContainer(c)
		}
		return nil, nil, err
	}
	return e, c, nil
}
