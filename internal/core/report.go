package core

import (
	"fmt"
	"strings"
)

// Report renders a human-readable snapshot of kernel state: machine memory,
// the default daemon's queues, and every container's pools and statistics.
// It is the simulation's equivalent of `vm_stat` plus a HiPEC status page.
func (k *Kernel) Report() string {
	var b strings.Builder
	ft := k.VM.Frames
	fmt.Fprintf(&b, "machine: %d frames x %d B (%.1f MB), %d free\n",
		ft.Frames(), ft.PageSize(),
		float64(ft.Frames())*float64(ft.PageSize())/(1<<20), ft.FreeCount())
	fmt.Fprintf(&b, "clock:   %v\n", k.Clock.Now())
	fmt.Fprintf(&b, "vm:      %d accesses, %d hits, %d faults (%d page-ins, %d zero-fills), %d page-outs, %d evictions\n",
		k.VM.Stats.Accesses, k.VM.Stats.Hits, k.VM.Stats.Faults,
		k.VM.Stats.PageIns, k.VM.Stats.ZeroFills, k.VM.Stats.PageOuts, k.VM.Stats.Evictions)
	fmt.Fprintf(&b, "daemon:  active %d, inactive %d, targets free/inactive/reserved %d/%d/%d, %d balances (%d reclaims, %d reactivations)\n",
		k.Daemon.Active.Len(), k.Daemon.Inactive.Len(),
		k.Daemon.Targets.Free, k.Daemon.Targets.Inactive, k.Daemon.Targets.Reserved,
		k.Daemon.Stats.Balances, k.Daemon.Stats.Reclaims, k.Daemon.Stats.Reactivations)
	fmt.Fprintf(&b, "manager: %d/%d frames granted to specific applications (partition_burst), %d normal + %d forced reclaims, %d flush exchanges\n",
		k.FM.SpecificTotal(), k.FM.PartitionBurst,
		k.FM.Stats.NormalReclaims, k.FM.Stats.ForcedReclaims, k.FM.Stats.FlushExchanges)
	fmt.Fprintf(&b, "checker: %d wakeups (next interval %v), %d timeouts, %d terminations\n",
		k.Checker.Stats.Wakeups, k.Checker.WakeUp,
		k.Checker.Stats.Timeouts, k.Checker.Stats.Terminations)
	if len(k.containers) == 0 {
		fmt.Fprintf(&b, "containers: none\n")
		return b.String()
	}
	fmt.Fprintf(&b, "containers:\n")
	for _, c := range k.containers {
		fmt.Fprintf(&b, "  #%d %-24s %-10s min %4d, held %4d (free %d / active %d / inactive %d)",
			c.ID, c.spec.Name, c.state, c.MinFrame, c.allocated,
			c.Free.Len(), c.Active.Len(), c.Inactive.Len())
		fmt.Fprintf(&b, "  %d activations, %d commands, %d flushes",
			c.Stats.Activations, c.Stats.Commands, c.Stats.Flushes)
		if c.Stats.Requests > 0 {
			fmt.Fprintf(&b, ", %d/%d requests granted", c.Stats.Requests-c.Stats.RequestDenied, c.Stats.Requests)
		}
		if c.state == StateTerminated {
			fmt.Fprintf(&b, " [%s]", c.termReason)
		}
		b.WriteString("\n")
	}
	return b.String()
}
