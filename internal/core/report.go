package core

import (
	"fmt"
	"strings"
)

// Report renders a human-readable snapshot of kernel state: machine memory,
// the default daemon's queues, and every container's pools and statistics.
// It is the simulation's equivalent of `vm_stat` plus a HiPEC status page.
// Every counter it prints is derived from the kevent registry (via the
// subsystem Stats() snapshots); no subsystem keeps private counters.
func (k *Kernel) Report() string {
	var b strings.Builder
	ft := k.VM.Frames
	vs := k.VM.Stats()
	ds := k.Daemon.Stats()
	fs := k.FM.Stats()
	cs := k.Checker.Stats()
	fmt.Fprintf(&b, "machine: %d frames x %d B (%.1f MB), %d free\n",
		ft.Frames(), ft.PageSize(),
		float64(ft.Frames())*float64(ft.PageSize())/(1<<20), ft.FreeCount())
	fmt.Fprintf(&b, "clock:   %v\n", k.Clock.Now())
	fmt.Fprintf(&b, "vm:      %d accesses, %d hits, %d faults (%d page-ins, %d zero-fills), %d page-outs, %d evictions\n",
		vs.Accesses, vs.Hits, vs.Faults,
		vs.PageIns, vs.ZeroFills, vs.PageOuts, vs.Evictions)
	fmt.Fprintf(&b, "daemon:  active %d, inactive %d, targets free/inactive/reserved %d/%d/%d, %d balances (%d reclaims, %d reactivations)\n",
		k.Daemon.Active.Len(), k.Daemon.Inactive.Len(),
		k.Daemon.Targets.Free, k.Daemon.Targets.Inactive, k.Daemon.Targets.Reserved,
		ds.Balances, ds.Reclaims, ds.Reactivations)
	fmt.Fprintf(&b, "manager: %d/%d frames granted to specific applications (partition_burst), %d normal + %d forced reclaims, %d flush exchanges\n",
		k.FM.SpecificTotal(), k.FM.PartitionBurst,
		fs.NormalReclaims, fs.ForcedReclaims, fs.FlushExchanges)
	fmt.Fprintf(&b, "checker: %d wakeups (next interval %v), %d timeouts, %d terminations\n",
		cs.Wakeups, k.Checker.WakeUp,
		cs.Timeouts, cs.Terminations)
	if len(k.containers) == 0 {
		fmt.Fprintf(&b, "containers: none\n")
		return b.String()
	}
	fmt.Fprintf(&b, "containers:\n")
	for _, c := range k.containers {
		st := c.Stats()
		fmt.Fprintf(&b, "  #%d %-24s %-10s min %4d, held %4d (free %d / active %d / inactive %d)",
			c.ID, c.spec.Name, c.state, c.MinFrame, c.allocated,
			c.Free.Len(), c.Active.Len(), c.Inactive.Len())
		fmt.Fprintf(&b, "  %d activations, %d commands, %d flushes",
			st.Activations, st.Commands, st.Flushes)
		if st.Requests > 0 {
			fmt.Fprintf(&b, ", %d/%d requests granted", st.Requests-st.RequestDenied, st.Requests)
		}
		if c.state == StateTerminated {
			fmt.Fprintf(&b, " [%s]", c.termReason)
		}
		b.WriteString("\n")
	}
	return b.String()
}
