package core

import (
	"errors"

	"hipec/internal/substrate"
)

// ErrLoopClosed is returned by Loop.Call after Close.
var ErrLoopClosed = errors.New("core: kernel loop closed")

// Loop makes a kernel safe for concurrent callers without putting a single
// lock inside the engine: an actor-style serialized command loop. The
// kernel stays a single-writer structure — exactly the discipline the
// simulation gets for free from its one virtual clock — and concurrency
// lives entirely at this boundary: callers enqueue closures into a mailbox,
// one engine goroutine applies them in arrival order. This is the same
// shape as the sharded scale harness (bench.RunSharded), with the shard
// count fixed at one and the workload arriving live instead of replayed.
//
// On the realtime substrate the loop also captures the clock's timer
// callbacks (disk write completions, checker wakeups, pageout balancing):
// it installs itself as the RealClock gate, so expirations are delivered
// through the same mailbox and take their turn with commands instead of
// touching the kernel from a timer goroutine.
type Loop struct {
	k    *Kernel
	mbox chan func()
	done chan struct{} // closed when the engine goroutine has exited
	// sess backs the loop's typed client methods (Open/WritePage/...);
	// touched only from closures running on the engine goroutine.
	sess *CacheSession
}

// DefaultMailboxDepth bounds how many commands may queue before senders
// block — enough to absorb bursts, small enough to apply backpressure
// instead of hiding latency in an unbounded queue.
const DefaultMailboxDepth = 128

// NewLoop starts the engine goroutine for k and, when k runs on the
// realtime substrate, installs the timer-callback gate. The kernel must not
// be touched directly (outside Call/Async closures) from then on.
func NewLoop(k *Kernel) *Loop {
	l := &Loop{
		k:    k,
		mbox: make(chan func(), DefaultMailboxDepth),
		done: make(chan struct{}),
		sess: NewCacheSession(),
	}
	if rc, ok := k.Clock.Backend().(*substrate.RealClock); ok {
		rc.SetGate(l.enqueue)
	}
	go l.run()
	return l
}

// run is the engine goroutine: apply mailbox closures in order until one of
// them (enqueued by Close) reports stop.
func (l *Loop) run() {
	defer close(l.done)
	for fn := range l.mbox {
		if fn == nil { // Close's stop sentinel
			return
		}
		fn()
	}
}

// enqueue is the RealClock gate: deliver a timer expiration through the
// mailbox. Expirations are NEVER run inline on the timer goroutine — while
// the engine is draining toward Close's stop sentinel an inline callback
// would race with the closures still being applied, and after the engine
// has exited it would race with the closer, who owns the kernel again (and
// may be tearing down the backing store). So once the engine is gone the
// callback is deliberately dropped: a disk-completion or wakeup for a
// kernel that is shutting down has no one left to serve. A callback that
// lands in the mailbox behind the stop sentinel is dropped the same way
// when the engine exits without draining it.
func (l *Loop) enqueue(run func()) {
	select {
	case l.mbox <- run:
	case <-l.done:
		// Dropped: engine exited, kernel ownership has passed to the closer.
	}
}

// Call runs fn on the engine goroutine and returns its error. It blocks
// until fn has run (or the loop closes first, returning ErrLoopClosed).
func (l *Loop) Call(fn func(k *Kernel) error) error {
	select {
	case <-l.done: // engine already gone; don't park fn in a dead mailbox
		return ErrLoopClosed
	default:
	}
	errc := make(chan error, 1)
	select {
	case l.mbox <- func() { errc <- fn(l.k) }:
	case <-l.done:
		return ErrLoopClosed
	}
	select {
	case err := <-errc:
		return err
	case <-l.done:
		// The loop shut down while fn was queued; it may still have been
		// the last closure applied before the sentinel.
		select {
		case err := <-errc:
			return err
		default:
			return ErrLoopClosed
		}
	}
}

// Async enqueues fn without waiting for it to run. It reports false after
// Close. True means "enqueued", not "will run": if Close wins the race and
// its stop sentinel lands ahead of fn in the mailbox, fn is discarded
// without running. Callers that must know their command applied use Call.
func (l *Loop) Async(fn func(k *Kernel)) bool {
	select {
	case <-l.done:
		return false
	default:
	}
	select {
	case l.mbox <- func() { fn(l.k) }:
		return true
	case <-l.done:
		return false
	}
}

// Close stops the engine goroutine after the commands already enqueued have
// been applied and waits for it to exit. Idempotent; concurrent Calls that
// lose the race return ErrLoopClosed.
//
// The timer gate stays installed: detaching it (before OR after the engine
// exits) would let late wall-clock expirations run inline on Go timer
// goroutines — racing with the drain while it is still in progress, or with
// the closer tearing down the kernel and its store afterwards. Instead the
// gate itself goes dead with the loop: once done is closed, enqueue drops
// every callback deliberately (see enqueue). A kernel is not reusable for
// ungated single-goroutine timer work after its loop closes; wrap it in a
// new Loop instead, which installs a fresh gate.
func (l *Loop) Close() {
	select {
	case <-l.done:
		return
	default:
	}
	select {
	case l.mbox <- nil:
	case <-l.done:
		return
	}
	<-l.done
}
