package core

import (
	"errors"

	"hipec/internal/substrate"
)

// ErrLoopClosed is returned by Loop.Call after Close.
var ErrLoopClosed = errors.New("core: kernel loop closed")

// Loop makes a kernel safe for concurrent callers without putting a single
// lock inside the engine: an actor-style serialized command loop. The
// kernel stays a single-writer structure — exactly the discipline the
// simulation gets for free from its one virtual clock — and concurrency
// lives entirely at this boundary: callers enqueue closures into a mailbox,
// one engine goroutine applies them in arrival order. This is the same
// shape as the sharded scale harness (bench.RunSharded), with the shard
// count fixed at one and the workload arriving live instead of replayed.
//
// On the realtime substrate the loop also captures the clock's timer
// callbacks (disk write completions, checker wakeups, pageout balancing):
// it installs itself as the RealClock gate, so expirations are delivered
// through the same mailbox and take their turn with commands instead of
// touching the kernel from a timer goroutine.
type Loop struct {
	k    *Kernel
	mbox chan func()
	done chan struct{} // closed when the engine goroutine has exited
}

// DefaultMailboxDepth bounds how many commands may queue before senders
// block — enough to absorb bursts, small enough to apply backpressure
// instead of hiding latency in an unbounded queue.
const DefaultMailboxDepth = 128

// NewLoop starts the engine goroutine for k and, when k runs on the
// realtime substrate, installs the timer-callback gate. The kernel must not
// be touched directly (outside Call/Async closures) from then on.
func NewLoop(k *Kernel) *Loop {
	l := &Loop{
		k:    k,
		mbox: make(chan func(), DefaultMailboxDepth),
		done: make(chan struct{}),
	}
	if rc, ok := k.Clock.Backend().(*substrate.RealClock); ok {
		rc.SetGate(l.enqueue)
	}
	go l.run()
	return l
}

// run is the engine goroutine: apply mailbox closures in order until one of
// them (enqueued by Close) reports stop.
func (l *Loop) run() {
	defer close(l.done)
	for fn := range l.mbox {
		if fn == nil { // Close's stop sentinel
			return
		}
		fn()
	}
}

// enqueue is the RealClock gate: deliver a timer expiration through the
// mailbox. After Close the mailbox is no longer drained; late expirations
// run inline on the timer goroutine, which is safe because Close has
// already detached the gate for future timers and the closer owns the
// kernel again.
func (l *Loop) enqueue(run func()) {
	select {
	case l.mbox <- run:
	case <-l.done:
		run()
	}
}

// Call runs fn on the engine goroutine and returns its error. It blocks
// until fn has run (or the loop closes first, returning ErrLoopClosed).
func (l *Loop) Call(fn func(k *Kernel) error) error {
	select {
	case <-l.done: // engine already gone; don't park fn in a dead mailbox
		return ErrLoopClosed
	default:
	}
	errc := make(chan error, 1)
	select {
	case l.mbox <- func() { errc <- fn(l.k) }:
	case <-l.done:
		return ErrLoopClosed
	}
	select {
	case err := <-errc:
		return err
	case <-l.done:
		// The loop shut down while fn was queued; it may still have been
		// the last closure applied before the sentinel.
		select {
		case err := <-errc:
			return err
		default:
			return ErrLoopClosed
		}
	}
}

// Async enqueues fn without waiting for it to run. It reports false after
// Close.
func (l *Loop) Async(fn func(k *Kernel)) bool {
	select {
	case <-l.done:
		return false
	default:
	}
	select {
	case l.mbox <- func() { fn(l.k) }:
		return true
	case <-l.done:
		return false
	}
}

// Close stops the engine goroutine after the commands already enqueued have
// been applied, detaches the timer gate, and waits for the engine to exit.
// Idempotent; concurrent Calls that lose the race return ErrLoopClosed.
func (l *Loop) Close() {
	select {
	case <-l.done:
		return
	default:
	}
	if rc, ok := l.k.Clock.Backend().(*substrate.RealClock); ok {
		rc.SetGate(nil)
	}
	select {
	case l.mbox <- nil:
	case <-l.done:
		return
	}
	<-l.done
}
