package analyzers

import (
	"go/ast"
	"go/types"
)

// The loopcapture pass proves the single-writer actor invariant statically.
// core.Loop serializes every kernel mutation onto one engine goroutine:
// closures passed to Loop.Call / Loop.Async receive the *core.Kernel for the
// duration of the call and must not let it — or the other single-writer
// structures, *vm.System and the per-connection *core.CacheSession — escape
// that window. An escape into a spawned goroutine, a package-level variable,
// a channel, or a struct that outlives the call is exactly the bug -race
// can only catch when a test happens to interleave it; this pass rejects the
// shape outright.

// guardedTypes are the single-writer structures that must stay inside a
// loop closure, keyed by "pkgpath.Name".
var guardedTypes = map[string]string{
	"hipec/internal/core.Kernel":       "*core.Kernel",
	"hipec/internal/core.CacheSession": "*core.CacheSession",
	"hipec/internal/vm.System":         "*vm.System",
	// Concrete page stores are loop-confined single-writer state too: a
	// store handle that escapes the closure invites unserialized I/O on
	// buffers the loop is still using. (The substrate.Store interface is
	// the sanctioned way to hand a store around — before the loop starts.)
	"hipec/internal/disk/filestore.Store": "*filestore.Store",
	"hipec/internal/store.Tiered":         "*store.Tiered",
	"hipec/internal/store.Sharded":        "*store.Sharded",
	"hipec/internal/store.Mmap":           "*store.Mmap",
}

// guardName reports the display name of a guarded type, or "" when t is not
// guarded. Pointers unwrap; containers of guarded values (slices, maps) are
// guarded too — storing a slice of kernels is still storing kernels.
func guardName(t types.Type) string {
	if t == nil {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if n := guardName(u.Elem()); n != "" {
			return n
		}
	case *types.Map:
		if n := guardName(u.Elem()); n != "" {
			return n
		}
	case *types.Chan:
		if n := guardName(u.Elem()); n != "" {
			return n
		}
	}
	pkgPath, name, ok := namedType(t)
	if !ok {
		return ""
	}
	return guardedTypes[pkgPath+"."+name]
}

// loopClosure is one func literal passed to (*core.Loop).Call or Async,
// with the call node for reporting.
type loopClosure struct {
	call *ast.CallExpr
	lit  *ast.FuncLit
}

// loopClosures finds every function literal handed to the loop's Call/Async
// mailbox methods in the package.
func loopClosures(p *Pkg) []loopClosure {
	var out []loopClosure
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.funcFor(call)
			if fn == nil || (fn.Name() != "Call" && fn.Name() != "Async") {
				return true
			}
			pkgPath, recvName, ok := recvNamed(fn)
			if !ok || pkgPath != "hipec/internal/core" || recvName != "Loop" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					out = append(out, loopClosure{call: call, lit: lit})
				}
			}
			return true
		})
	}
	return out
}

// declaredInside reports whether obj's declaration lies within the closure
// body (including its parameters).
func declaredInside(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

// storesGuarded reports the guarded type a value expression carries into an
// assignment: its own type, or — for composite literals — any element's.
func (p *Pkg) storesGuarded(e ast.Expr) string {
	e = ast.Unparen(e)
	if name := guardName(p.exprType(e)); name != "" {
		return name
	}
	if comp, ok := e.(*ast.CompositeLit); ok {
		for _, elt := range comp.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if name := p.storesGuarded(elt); name != "" {
				return name
			}
		}
	}
	if un, ok := e.(*ast.UnaryExpr); ok {
		return p.storesGuarded(un.X)
	}
	return ""
}

// checkLoopCapture inspects every Loop.Call/Async closure for kernel-state
// escapes.
func checkLoopCapture(p *Pkg, report reportFunc) {
	for _, lc := range loopClosures(p) {
		lit := lc.lit
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// Everything the spawned goroutine can see — the call's
				// function, its arguments, a closure's whole body — runs
				// off the engine goroutine.
				ast.Inspect(n.Call, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					obj, isVar := p.objectOf(id).(*types.Var)
					if !isVar {
						return true
					}
					if name := guardName(obj.Type()); name != "" {
						report(n, "%s %q escapes into a goroutine spawned inside a Loop closure; the kernel is single-writer — only the engine goroutine may touch it", name, id.Name)
						return false
					}
					return true
				})
			case *ast.AssignStmt:
				p.checkGuardedAssign(n, lit, report)
			case *ast.SendStmt:
				if name := p.storesGuarded(n.Value); name != "" {
					report(n, "%s sent on a channel from inside a Loop closure; kernel state must not leave the engine goroutine", name)
				}
			}
			return true
		})
	}
}

// checkGuardedAssign flags assignments inside a loop closure that store a
// guarded value anywhere that outlives the call: a package-level variable,
// or a variable (or field/element of one) declared outside the closure.
func (p *Pkg) checkGuardedAssign(as *ast.AssignStmt, lit *ast.FuncLit, report reportFunc) {
	// Multi-value forms (x, y := f()) carry non-guarded tuples in this
	// codebase; pair positionally and fail open on length mismatch.
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		name := p.storesGuarded(as.Rhs[i])
		if name == "" {
			continue
		}
		base := baseIdent(lhs)
		if base == nil || base.Name == "_" {
			continue
		}
		obj, ok := p.objectOf(base).(*types.Var)
		if !ok {
			continue
		}
		switch {
		case obj.Parent() == p.Types.Scope():
			report(as, "%s stored in package-level variable %q from inside a Loop closure; kernel state must not outlive the call", name, base.Name)
		case !declaredInside(obj, lit):
			report(as, "%s stored in %q, which outlives the Loop closure; kernel state must not escape the call", name, base.Name)
		}
	}
}
