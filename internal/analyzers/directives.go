package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Inline suppression: a finding can be silenced at its site with
//
//	//hipec:vet-ignore <pass>[,<pass>...] -- <reason>
//
// placed on the offending line or on its own line immediately above. The
// reason is mandatory — a suppression without one is itself a finding, as is
// a suppression naming an unknown pass or one that suppresses nothing
// (unused suppressions rot into lies as the code under them changes).
// Suppressions are the successor of the old embedded allowlist file: the
// waiver lives next to the code it waives, with its justification, and the
// engine verifies it still does something.

// directivePrefix introduces a suppression comment.
const directivePrefix = "//hipec:vet-ignore"

// metaPass names the pseudo-pass that reports directive problems (malformed
// syntax, unknown pass names, unused suppressions).
const metaPass = "vet-ignore"

// directive is one parsed vet-ignore comment.
type directive struct {
	pos    token.Position
	passes []string
	reason string
	bad    string // non-empty: parse problem, reported as a finding
	used   bool
}

// parseDirectives collects every vet-ignore directive in the package,
// validating syntax and pass names.
func parseDirectives(p *Pkg) []*directive {
	var ds []*directive
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := &directive{pos: p.eng.fset.Position(c.Pos())}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && !strings.HasPrefix(rest, " ") {
					continue // some other //hipec:vet-ignoreXXX token; not ours
				}
				spec, reason, found := strings.Cut(rest, "--")
				d.reason = strings.TrimSpace(reason)
				for _, name := range strings.Split(spec, ",") {
					if name = strings.TrimSpace(name); name != "" {
						d.passes = append(d.passes, name)
					}
				}
				switch {
				case len(d.passes) == 0:
					d.bad = "suppression names no pass; write //hipec:vet-ignore <pass> -- <reason>"
				case !found || d.reason == "":
					d.bad = fmt.Sprintf("suppression of %s has no reason; append ` -- <reason>`",
						strings.Join(d.passes, ","))
				default:
					for _, name := range d.passes {
						if !knownPasses[name] {
							d.bad = fmt.Sprintf("suppression names unknown pass %q", name)
						}
					}
				}
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// applyDirectives filters raw findings through the package's suppressions
// and appends the directive machinery's own findings: malformed directives
// and suppressions that silenced nothing.
func applyDirectives(p *Pkg, raw []Finding) []Finding {
	ds := parseDirectives(p)
	var out []Finding
	for _, f := range raw {
		suppressed := false
		for _, d := range ds {
			if d.bad != "" || d.pos.Filename != f.Pos.Filename {
				continue
			}
			if f.Pos.Line != d.pos.Line && f.Pos.Line != d.pos.Line+1 {
				continue
			}
			match := false
			for _, name := range d.passes {
				if name == f.Analyzer {
					match = true
				}
			}
			if match {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, d := range ds {
		switch {
		case d.bad != "":
			out = append(out, Finding{Pos: d.pos, Analyzer: metaPass, Msg: d.bad})
		case !d.used:
			out = append(out, Finding{Pos: d.pos, Analyzer: metaPass,
				Msg: fmt.Sprintf("unused suppression of %s (nothing fires here; delete the directive)",
					strings.Join(d.passes, ","))})
		}
	}
	return out
}

// hotPathMarked reports whether a function's doc comment carries the
// //hipec:hotpath directive (the zero-allocation contract the mapinloop and
// hotalloc passes enforce).
func hotPathMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//hipec:hotpath") {
			return true
		}
	}
	return false
}
