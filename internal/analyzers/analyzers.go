// Package analyzers holds the repo's custom static-analysis passes — the
// Go-source counterpart of the HPL policy verifier. Where internal/hpl/verify
// proves policy programs safe before they enter the simulated kernel, this
// package proves the kernel sources keep their own load-bearing invariants
// at build time, on resolved types rather than identifier spelling:
//
//   - determinism: simulation packages must not read the wall clock
//     (wallclock) or the global math/rand state (globalrand);
//   - the substrate seam: no package outside internal/substrate may name the
//     concrete simulation clock (simclock);
//   - the error taxonomy: kernel packages return typed errors, never a bare
//     fmt.Errorf without %w or an inline errors.New (errtype);
//   - kernel isolation: no package-level mutable counters or sync/atomic
//     state (globalstate);
//   - the client seam: core.Loop is constructed only inside internal/ and
//     the facade (loopseam);
//   - the single-writer actor: kernel state must not escape a Loop.Call
//     closure into a goroutine, package variable, or longer-lived struct
//     (loopcapture), and no blocking call may be statically reachable from
//     a command body executed on the loop (blockinloop);
//   - the zero-allocation contract: //hipec:hotpath functions must not
//     index maps (mapinloop) or perform the allocation shapes only types
//     reveal — interface boxing, capturing closures, append without
//     capacity, string concatenation (hotalloc);
//   - refuse-before-allocate: in the wire and server packages, a length
//     decoded from the network must pass a bound check before it reaches
//     make (wiretaint).
//
// The engine (see load.go) type-checks whole packages with go/parser +
// go/types and the stdlib source importer — no module downloads, no
// x/tools — so the passes match on package paths and resolved objects:
// renamed imports, aliased types and cross-package values are all visible.
// Findings are suppressed inline with `//hipec:vet-ignore <pass> -- <reason>`
// (see directives.go); the reason is mandatory and unused suppressions are
// themselves findings.
//
// The passes are wired into `go test ./internal/analyzers` (fixture trees
// under testdata/ plus a walk of the real source tree) and the cmd/hipecvet
// runner for CI, which also emits machine-readable JSON with -json.
package analyzers

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer hit, formatted like a compiler diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Msg)
}

// MarshalJSON renders the finding for the -json CI artifact.
func (f Finding) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Col  int    `json:"col"`
		Pass string `json:"pass"`
		Msg  string `json:"msg"`
	}{f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Msg})
}

// reportFunc is the callback passes emit findings through.
type reportFunc func(ast.Node, string, ...any)

// pass is one analysis over a single type-checked package.
type pass struct {
	name string
	// scope decides whether the pass runs for a repo-relative package path.
	scope func(pkgPath string) bool
	run   func(*Pkg, reportFunc)
}

func internalOnly(pkgPath string) bool { return strings.HasPrefix(pkgPath, "internal") }
func wholeTree(string) bool            { return true }
func wireScope(pkgPath string) bool {
	return pkgPath == "internal/wire" || pkgPath == "internal/server"
}

// passes is the registry, in documentation order.
var passes = []pass{
	{"wallclock", internalOnly, checkWallClock},
	{"simclock", internalOnly, checkSimClock},
	{"globalrand", internalOnly, checkGlobalRand},
	{"errtype", internalOnly, checkErrType},
	{"globalstate", internalOnly, checkGlobalState},
	{"mapinloop", wholeTree, checkMapInLoop},
	{"loopseam", wholeTree, checkLoopSeam},
	{"loopcapture", wholeTree, checkLoopCapture},
	{"blockinloop", wholeTree, checkBlockInLoop},
	{"hotalloc", wholeTree, checkHotAlloc},
	{"wiretaint", wireScope, checkWireTaint},
}

// knownPasses validates vet-ignore directives (the meta pass itself cannot
// be suppressed).
var knownPasses = func() map[string]bool {
	m := map[string]bool{}
	for _, p := range passes {
		m[p.name] = true
	}
	return m
}()

// kernelPkgs are the packages whose errors must carry the hiperr taxonomy
// and which must stay free of package-level mutable state.
var kernelPkgs = map[string]bool{
	"internal/core":    true,
	"internal/vm":      true,
	"internal/mem":     true,
	"internal/emm":     true,
	"internal/disk":    true,
	"internal/pageout": true,
	"internal/machipc": true,
	"internal/store":   true,
}

// wallClockExempt may measure real time: the benchmark harness exists to
// report wall-clock numbers, and the substrate package owns the realtime
// backend (RealClock is built from time.Now/Sleep/AfterFunc by design).
var wallClockExempt = map[string]bool{
	"internal/bench":     true,
	"internal/substrate": true,
	// The network layer and its demo harness live on the realtime substrate
	// by definition: batch windows are real timers and throughput is wall
	// time.
	"internal/server": true,
	"internal/demo":   true,
}

// simClockExempt may hold concrete simulation-clock references: the
// substrate package IS the seam — it wraps *simtime.Clock behind
// substrate.Clock and is the one place allowed to name it.
var simClockExempt = map[string]bool{
	"internal/substrate": true,
}

// analyze runs every in-scope pass over one package and filters the result
// through the package's vet-ignore directives.
func (e *Engine) analyze(p *Pkg) []Finding {
	var raw []Finding
	for _, ps := range passes {
		if !ps.scope(p.Path) {
			continue
		}
		name := ps.name
		report := func(n ast.Node, format string, args ...any) {
			raw = append(raw, Finding{
				Pos:      e.fset.Position(n.Pos()),
				Analyzer: name,
				Msg:      fmt.Sprintf(format, args...),
			})
		}
		ps.run(p, report)
	}
	return applyDirectives(p, raw)
}

// Run analyzes every package under root/internal, root/cmd and
// root/examples, plus the root package itself, and returns the findings
// sorted by position. testdata trees (analyzer fixtures) are skipped, as
// the Go toolchain skips them.
func Run(root string) ([]Finding, error) {
	e := NewEngine(root)
	rels, err := discover(root)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, rel := range rels {
		p, err := e.load(rel)
		if err != nil {
			return nil, err
		}
		findings = append(findings, e.analyze(p)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return findings, nil
}

// discover lists the repo-relative package directories to analyze.
func discover(root string) ([]string, error) {
	hasGo := func(dir string) bool {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return false
		}
		for _, ent := range ents {
			n := ent.Name()
			if !ent.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				return true
			}
		}
		return false
	}
	var rels []string
	if hasGo(root) {
		rels = append(rels, ".")
	}
	for _, top := range []string{"internal", "cmd", "examples"} {
		err := filepath.WalkDir(filepath.Join(root, top), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return fs.SkipDir
			}
			if hasGo(path) {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				rels = append(rels, filepath.ToSlash(rel))
			}
			return nil
		})
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
	}
	return rels, nil
}
