// Package analyzers holds the repo's custom static-analysis passes — the
// Go-source counterpart of the HPL policy verifier. Where internal/hpl/verify
// proves policy programs safe before they enter the simulated kernel, this
// package proves the kernel sources keep their own invariants:
//
//   - simulation packages must not read the wall clock or use the global
//     math/rand state (determinism: every run is replayable from a seed
//     and the simulated clock in internal/simtime);
//   - kernel packages must not dereference the concrete simulation clock —
//     only the substrate package may touch simtime.Clock directly; everyone
//     else depends on the substrate.Clock seam so the same engine runs on
//     the deterministic simulation or the wall clock;
//   - kernel packages must return typed errors — a bare fmt.Errorf without
//     %w or an inline errors.New loses the hiperr taxonomy callers program
//     against with errors.Is / errors.As;
//   - kernel packages must not grow package-level mutable counters or
//     sync/atomic state — metrics belong to the kevent registry, and
//     package globals break multi-kernel isolation in tests.
//
// The passes are deliberately pure go/ast (no go/types, no x/tools) so they
// run anywhere the repo builds, with no module downloads. They are wired
// into `go test ./internal/analyzers` (which walks the real source tree)
// and the cmd/hipecvet runner for CI.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one analyzer hit, formatted like a compiler diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Msg)
}

// file is the per-file context handed to each pass.
type file struct {
	fset *token.FileSet
	ast  *ast.File
	pkg  string // package path relative to the repo root, e.g. "internal/core"
}

// pass is one analysis over a single file. internalOnly passes keep their
// historical scope (files under internal/); the rest also see cmd/,
// examples/ and the root package.
type pass struct {
	name         string
	internalOnly bool
	run          func(*file, func(ast.Node, string, ...any))
}

var passes = []pass{
	{"wallclock", true, checkWallClock},
	{"simclock", true, checkSimClock},
	{"globalrand", true, checkGlobalRand},
	{"errtype", true, checkErrType},
	{"globalstate", true, checkGlobalState},
	{"mapinloop", true, checkMapInLoop},
	{"loopseam", false, checkLoopSeam},
}

// kernelPkgs are the packages whose errors must carry the hiperr taxonomy.
var kernelPkgs = map[string]bool{
	"internal/core":    true,
	"internal/vm":      true,
	"internal/mem":     true,
	"internal/emm":     true,
	"internal/disk":    true,
	"internal/pageout": true,
	"internal/machipc": true,
}

// wallClockExempt may measure real time: the benchmark harness exists to
// report wall-clock numbers, and the substrate package owns the realtime
// backend (RealClock is built from time.Now/Sleep/AfterFunc by design).
var wallClockExempt = map[string]bool{
	"internal/bench":     true,
	"internal/substrate": true,
	// The network layer and its demo harness live on the realtime substrate
	// by definition: batch windows are real timers and throughput is wall
	// time.
	"internal/server": true,
	"internal/demo":   true,
}

// Run analyzes every non-test Go file under root/internal, root/cmd and
// root/examples, plus the root package itself, and returns the findings
// sorted by position. Internal-scoped passes only fire under internal/; the
// seam passes (loopseam) cover the whole tree.
func Run(root string) ([]Finding, error) {
	var findings []Finding
	analyzeFile := func(path string) error {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fs, err := AnalyzeSource(filepath.Dir(rel), rel, string(src))
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	}
	for _, dir := range []string{"internal", "cmd", "examples"} {
		err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			return analyzeFile(path)
		})
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		if err := analyzeFile(filepath.Join(root, e.Name())); err != nil {
			return nil, err
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return findings, nil
}

// AnalyzeSource runs every pass over one file's source. pkg is the
// repo-relative package path ("internal/core"); filename labels positions.
func AnalyzeSource(pkg, filename, src string) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	ctx := &file{fset: fset, ast: f, pkg: pkg}
	var findings []Finding
	for _, p := range passes {
		p := p
		if p.internalOnly && !strings.HasPrefix(pkg, "internal") {
			continue
		}
		report := func(n ast.Node, format string, args ...any) {
			findings = append(findings, Finding{
				Pos:      fset.Position(n.Pos()),
				Analyzer: p.name,
				Msg:      fmt.Sprintf(format, args...),
			})
		}
		p.run(ctx, report)
	}
	return findings, nil
}

// importName returns the local name the file uses for an import path
// ("" if not imported). Dot and blank imports are reported as named so
// callers fail safe.
func (f *file) importName(path string) string {
	for _, imp := range f.ast.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return path[strings.LastIndex(path, "/")+1:]
	}
	return ""
}

// pkgCall matches a call of the form <pkgName>.<fn>(...) where pkgName is
// a plain identifier (not a local variable shadowing an import is assumed;
// the repo does not shadow package names).
func pkgCall(call *ast.CallExpr, pkgName string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return "", false
	}
	return sel.Sel.Name, true
}
