package analyzers

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// modulePath is this repo's module path; import paths under it resolve to
// repo directories instead of the standard library.
const modulePath = "hipec"

// Engine is the package-at-a-time, type-aware analysis engine. It parses and
// type-checks whole packages (go/parser + go/types, stdlib only: repo-local
// import paths are resolved against the repo tree, everything else goes
// through the stdlib source importer — no module downloads, no x/tools),
// caches every package it loads, and keeps a cross-package index of function
// declarations so call-graph passes (blockinloop) can chase static calls
// through the whole module.
type Engine struct {
	root string // repo root on disk
	fset *token.FileSet
	std  types.Importer // source importer for non-module paths

	pkgs    map[string]*Pkg // by import path ("hipec/internal/core")
	loading map[string]bool // cycle guard

	// funcs indexes every function/method declaration in loaded repo
	// packages by its types object; blockinloop walks call chains through it.
	funcs map[*types.Func]*declSite

	// blockMemo caches blockinloop's per-function verdict: the call chain
	// from the function to a blocking leaf, or nil when none is reachable.
	blockMemo map[*types.Func][]string
}

// declSite is one function declaration and the package it lives in.
type declSite struct {
	pkg  *Pkg
	decl *ast.FuncDecl
}

// Pkg is one loaded, type-checked package as the passes see it.
type Pkg struct {
	// Path is the repo-relative package path the scoping tables key on:
	// "internal/core", "cmd/hipecd", "." for the root package. Fixture
	// packages override it with a //hipec:fixture-as directive.
	Path       string
	ImportPath string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	eng *Engine
}

// NewEngine builds an engine rooted at the repo root.
func NewEngine(root string) *Engine {
	fset := token.NewFileSet()
	return &Engine{
		root:      root,
		fset:      fset,
		std:       importer.ForCompiler(fset, "source", nil),
		pkgs:      map[string]*Pkg{},
		loading:   map[string]bool{},
		funcs:     map[*types.Func]*declSite{},
		blockMemo: map[*types.Func][]string{},
	}
}

// Fset exposes the engine's file set (positions in Findings resolve
// through it).
func (e *Engine) Fset() *token.FileSet { return e.fset }

// Import implements types.Importer: module-local paths load from the repo
// tree through this engine (recursively, cached); everything else is the
// standard library, type-checked from GOROOT source.
func (e *Engine) Import(path string) (*types.Package, error) {
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		rel := "."
		if path != modulePath {
			rel = strings.TrimPrefix(path, modulePath+"/")
		}
		p, err := e.load(rel)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if from, ok := e.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, e.root, 0)
	}
	return e.std.Import(path)
}

// load parses and type-checks the repo package at the repo-relative dir rel
// ("." for the root package), caching by import path.
func (e *Engine) load(rel string) (*Pkg, error) {
	importPath := modulePath
	if rel != "." {
		importPath = modulePath + "/" + filepath.ToSlash(rel)
	}
	if p, ok := e.pkgs[importPath]; ok {
		return p, nil
	}
	if e.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	e.loading[importPath] = true
	defer delete(e.loading, importPath)

	dir := filepath.Join(e.root, filepath.FromSlash(rel))
	files, err := e.parseDir(dir)
	if err != nil {
		return nil, err
	}
	p, err := e.check(importPath, rel, files)
	if err != nil {
		return nil, err
	}
	e.pkgs[importPath] = p
	return p, nil
}

// parseDir parses every non-test Go file in dir that builds on the host
// platform, sorted by name. Build-constrained files (//go:build tags,
// _GOOS suffixes) are filtered the way the go tool filters them, so
// platform shim pairs don't redeclare each other under the type checker.
func (e *Engine) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		n := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(e.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one package's files and registers its declarations in
// the cross-package function index.
func (e *Engine) check(importPath, relPath string, files []*ast.File) (*Pkg, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: e,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, e.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	p := &Pkg{
		Path:       relPath,
		ImportPath: importPath,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		eng:        e,
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				e.funcs[fn] = &declSite{pkg: p, decl: fd}
			}
		}
	}
	return p, nil
}

// fixtureImportSeq numbers fixture packages so their import paths never
// collide with each other or with module packages.
var fixtureImportSeq int

// AnalyzeDir loads the package in dir (outside the module tree — fixture
// packages under testdata) and runs the passes over it. The package's
// repo-relative identity is taken from a mandatory
// `//hipec:fixture-as <path>` comment in one of its files, so a fixture can
// stand in for any package the scoping tables know about.
func (e *Engine) AnalyzeDir(dir string) ([]Finding, error) {
	files, err := e.parseDir(dir)
	if err != nil {
		return nil, err
	}
	as := ""
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//hipec:fixture-as "); ok {
					as = strings.TrimSpace(rest)
				}
			}
		}
	}
	if as == "" {
		return nil, fmt.Errorf("%s: fixture package lacks a //hipec:fixture-as directive", dir)
	}
	fixtureImportSeq++
	importPath := fmt.Sprintf("hipec.fixture%d/%s", fixtureImportSeq, filepath.Base(dir))
	p, err := e.check(importPath, as, files)
	if err != nil {
		return nil, err
	}
	return e.analyze(p), nil
}

// funcFor resolves a call expression's static callee, or nil when the
// callee is not a declared function or method (func values, conversions,
// builtins, interface-typed method values stay resolvable — interface
// *dispatch* resolves to the interface method object).
func (p *Pkg) funcFor(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := p.Info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// isBuiltin reports whether a call invokes the named builtin.
func (p *Pkg) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// pkgFunc reports whether fn is the package-level function pkgPath.name
// (methods never match: their receiver distinguishes them).
func pkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// recvNamed resolves a method's receiver to (package path, type name);
// ok=false for package-level functions.
func recvNamed(fn *types.Func) (pkgPath, name string, ok bool) {
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, nok := t.(*types.Named)
	if !nok || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// namedType unwraps pointers and reports the (package path, name) of a
// named type; ok=false for unnamed or universe types.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	for {
		ptr, isPtr := t.(*types.Pointer)
		if !isPtr {
			break
		}
		t = ptr.Elem()
	}
	named, nok := t.(*types.Named)
	if !nok || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// exprType returns the static type of e (nil when untracked).
func (p *Pkg) exprType(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// baseIdent unwraps an assignable expression to its leftmost identifier:
// x, x.f, x[i], *x, (x).f all resolve to x.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its object (definition or use).
func (p *Pkg) objectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}
