package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// The blockinloop pass proves that command bodies executed on the kernel's
// serialized loop cannot stall every other client: no blocking call —
// time.Sleep, os file I/O, net operations, a provably-unbuffered channel
// send — may be statically reachable from a closure passed to Loop.Call or
// Loop.Async. Reachability is chased through the module's own functions
// using the engine's cross-package declaration index; a call through an
// interface (substrate.Clock's backend, substrate.Store) is unresolvable
// and deliberately breaks the chain — that is the design contract: anything
// that may genuinely block must sit behind the substrate seam, where the
// sim backend replaces it with virtual time and the realtime backend owns
// the consequences.

// blockDepthLimit caps call-chain depth; deeper chains fail open.
const blockDepthLimit = 40

// osFileMethods are the *os.File methods that perform real I/O.
var osFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "ReadFrom": true, "ReadDir": true,
	"Write": true, "WriteAt": true, "WriteString": true, "WriteTo": true,
	"Seek": true, "Sync": true, "Truncate": true, "Chmod": true,
}

// osPkgFuncs are the os package functions that touch the filesystem.
var osPkgFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "Chmod": true, "Chtimes": true, "Link": true,
	"Symlink": true, "ReadLink": true,
}

// storeIOMethods are the concrete page-store methods that perform (or may
// perform) real I/O. Calling them on a concrete backend from inside a loop
// closure is flagged even when the particular backend is memory-backed:
// the seam contract says loop code reaches storage only through the
// substrate.Store interface, dispatched on whatever the kernel was built
// with.
var storeIOMethods = map[string]bool{
	"WritePage": true, "ReadPage": true, "DeletePage": true,
	"Sync": true, "Close": true,
}

// blockingCall classifies fn as a blocking leaf, returning a display name
// ("" = not blocking).
func blockingCall(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "hipec/internal/disk/filestore", "hipec/internal/store":
		if _, recvName, ok := recvNamed(fn); ok && storeIOMethods[fn.Name()] {
			short := fn.Pkg().Path()
			short = short[strings.LastIndex(short, "/")+1:]
			return "(" + short + "." + recvName + ")." + fn.Name()
		}
		return ""
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		if recvPkg, recvName, ok := recvNamed(fn); ok {
			if recvPkg == "os" && recvName == "File" && osFileMethods[fn.Name()] {
				return "(*os.File)." + fn.Name()
			}
			return ""
		}
		if osPkgFuncs[fn.Name()] {
			return "os." + fn.Name()
		}
	case "net":
		if _, recvName, ok := recvNamed(fn); ok {
			return "net." + recvName + "." + fn.Name()
		}
		return "net." + fn.Name()
	}
	return ""
}

// funcDisplay names a function for chain messages: pkg.Func or
// (pkg.Recv).Method.
func funcDisplay(fn *types.Func) string {
	if pkgPath, recvName, ok := recvNamed(fn); ok {
		short := pkgPath[strings.LastIndex(pkgPath, "/")+1:]
		return "(" + short + "." + recvName + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		short := fn.Pkg().Path()
		short = short[strings.LastIndex(short, "/")+1:]
		return short + "." + fn.Name()
	}
	return fn.Name()
}

// blockChain reports the call chain from fn to a blocking leaf, or nil.
// Verdicts are memoized on the engine; in-progress functions (recursion)
// report nil for the inner frame.
func (e *Engine) blockChain(fn *types.Func, depth int, stack map[*types.Func]bool) []string {
	if chain, ok := e.blockMemo[fn]; ok {
		return chain
	}
	if depth > blockDepthLimit || stack[fn] {
		return nil
	}
	site, ok := e.funcs[fn]
	if !ok {
		return nil // no body in the module: interface method or stdlib — chain breaks
	}
	stack[fn] = true
	var chain []string
	site.pkg.scanBlocking(site.decl.Body, site.decl.Body, depth, stack, func(_ ast.Node, sub []string) {
		if chain == nil {
			chain = append([]string{funcDisplay(fn)}, sub...)
		}
	})
	delete(stack, fn)
	e.blockMemo[fn] = chain
	return chain
}

// scanBlocking walks body (skipping spawned goroutines — they do not hold
// the engine goroutine) and invokes found for each blocking shape: a
// blocking leaf call, a module call whose chain reaches one, or an
// unbuffered channel send. enclosing is the function body used to resolve
// channel buffering.
func (p *Pkg) scanBlocking(body ast.Node, enclosing ast.Node, depth int, stack map[*types.Func]bool, found func(n ast.Node, chain []string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // spawned work blocks its own goroutine, not the loop
		case *ast.CallExpr:
			fn := p.funcFor(n)
			if fn == nil {
				return true // func value / conversion / builtin: fail open
			}
			if leaf := blockingCall(fn); leaf != "" {
				found(n, []string{leaf})
				return true
			}
			if chain := p.eng.blockChain(fn, depth+1, stack); chain != nil {
				found(n, chain)
			}
		case *ast.SendStmt:
			if p.provablyUnbuffered(n.Chan, enclosing) {
				found(n, []string{"send on unbuffered channel"})
			}
		case *ast.SelectStmt:
			// Sends under select are guarded by the select's readiness
			// semantics (a default arm makes them non-blocking; without one
			// the select parks, which is a deliberate wait, not an
			// accidental one). Calls inside the bodies still count.
			for _, clause := range n.Body.List {
				cc := clause.(*ast.CommClause)
				for _, s := range cc.Body {
					p.scanBlocking(s, enclosing, depth, stack, found)
				}
			}
			return false
		}
		return true
	})
}

// provablyUnbuffered reports whether ch is a channel variable every visible
// initialization of which is make(chan T) with no capacity. Unresolvable
// channels (parameters, fields, cross-package values) fail open.
func (p *Pkg) provablyUnbuffered(ch ast.Expr, enclosing ast.Node) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.objectOf(id).(*types.Var)
	if !ok {
		return false
	}
	verdict := false
	seen := false
	consider := func(rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !p.isBuiltin(call, "make") {
			seen, verdict = true, false // initialized some other way: fail open
			return
		}
		unbuffered := len(call.Args) == 1
		if !seen {
			verdict = unbuffered
		} else {
			verdict = verdict && unbuffered
		}
		seen = true
	}
	scan := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					lid, ok := lhs.(*ast.Ident)
					if !ok || p.objectOf(lid) != obj || i >= len(n.Rhs) {
						continue
					}
					consider(n.Rhs[i])
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if p.objectOf(name) == obj && i < len(n.Values) {
						consider(n.Values[i])
					}
				}
			}
			return true
		})
	}
	scan(enclosing)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok {
				scan(gd)
			}
		}
	}
	return seen && verdict
}

// checkBlockInLoop flags blocking work statically reachable from Loop
// command closures.
func checkBlockInLoop(p *Pkg, report reportFunc) {
	for _, lc := range loopClosures(p) {
		stack := map[*types.Func]bool{}
		p.scanBlocking(lc.lit.Body, lc.lit.Body, 0, stack, func(n ast.Node, chain []string) {
			report(n, "blocking call reachable from a Loop command closure (stalls every client of the loop): %s", strings.Join(chain, " -> "))
		})
	}
}
