package analyzers

import (
	"encoding/json"
	"go/token"
	"testing"
)

// TestRepoIsClean walks the real source tree with every pass enabled: the
// repo must hold its own invariants, and every inline vet-ignore must still
// be suppressing something.
func TestRepoIsClean(t *testing.T) {
	findings, err := Run("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%v", f)
	}
}

// TestFindingJSON pins the -json artifact shape CI depends on.
func TestFindingJSON(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "internal/vm/vm.go", Line: 3, Column: 7},
		Analyzer: "hotalloc",
		Msg:      "argument boxes int64 into any",
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"internal/vm/vm.go","line":3,"col":7,"pass":"hotalloc","msg":"argument boxes int64 into any"}`
	if string(b) != want {
		t.Fatalf("Finding JSON = %s, want %s", b, want)
	}
}

// TestPassRegistry guards the registry against silent drops: all eleven
// passes stay registered and suppressible by name.
func TestPassRegistry(t *testing.T) {
	for _, name := range []string{
		"wallclock", "simclock", "globalrand", "errtype", "globalstate",
		"mapinloop", "loopseam", "loopcapture", "blockinloop", "hotalloc",
		"wiretaint",
	} {
		if !knownPasses[name] {
			t.Errorf("pass %q missing from the registry", name)
		}
	}
	if len(knownPasses) != 11 {
		t.Errorf("registry has %d passes, want 11", len(knownPasses))
	}
}
