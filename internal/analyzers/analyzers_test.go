package analyzers

import (
	"strings"
	"testing"
)

func analyze(t *testing.T, pkg, src string) []Finding {
	t.Helper()
	fs, err := AnalyzeSource(pkg, pkg+"/x.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func wantFinding(t *testing.T, fs []Finding, analyzer, frag string) {
	t.Helper()
	for _, f := range fs {
		if f.Analyzer == analyzer && strings.Contains(f.Msg, frag) {
			return
		}
	}
	t.Fatalf("want %s finding containing %q, got %v", analyzer, frag, fs)
}

func TestWallClockFlagged(t *testing.T) {
	fs := analyze(t, "internal/core", `
package core
import "time"
func now() time.Time { return time.Now() }
`)
	wantFinding(t, fs, "wallclock", "time.Now")
}

func TestWallClockExemptInBench(t *testing.T) {
	fs := analyze(t, "internal/bench", `
package bench
import "time"
func now() time.Time { return time.Now() }
`)
	if len(fs) != 0 {
		t.Fatalf("bench is exempt, got %v", fs)
	}
}

func TestSimClockFlagged(t *testing.T) {
	fs := analyze(t, "internal/core", `
package core
import "hipec/internal/simtime"
func mk() *simtime.Clock { return simtime.NewClock() }
`)
	wantFinding(t, fs, "simclock", "simtime.Clock")
	wantFinding(t, fs, "simclock", "simtime.NewClock")
}

func TestSimClockEventHandleFlagged(t *testing.T) {
	fs := analyze(t, "internal/vm", `
package vm
import "hipec/internal/simtime"
type holder struct{ ev *simtime.Event }
`)
	wantFinding(t, fs, "simclock", "simtime.Event")
}

func TestSimClockNeutralVocabularyAllowed(t *testing.T) {
	fs := analyze(t, "internal/core", `
package core
import "hipec/internal/simtime"
func stamp(t simtime.Time) simtime.Time { return t }
func sched() string { return simtime.DefaultScheduler().String() }
`)
	for _, f := range fs {
		if f.Analyzer == "simclock" {
			t.Fatalf("substrate-neutral simtime vocabulary flagged: %v", f)
		}
	}
}

func TestSimClockExemptInSubstrate(t *testing.T) {
	fs := analyze(t, "internal/substrate", `
package substrate
import "hipec/internal/simtime"
func mk() *simtime.Clock { return simtime.NewClock() }
`)
	for _, f := range fs {
		if f.Analyzer == "simclock" {
			t.Fatalf("substrate package is the seam and must be exempt, got %v", f)
		}
	}
}

func TestGlobalRandFlaggedSeededAllowed(t *testing.T) {
	fs := analyze(t, "internal/workload", `
package workload
import "math/rand"
func bad() int { return rand.Intn(4) }
func good(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`)
	wantFinding(t, fs, "globalrand", "rand.Intn")
	for _, f := range fs {
		if strings.Contains(f.Msg, "rand.New") {
			t.Fatalf("seeded constructor flagged: %v", f)
		}
	}
}

func TestUntypedErrorfFlagged(t *testing.T) {
	fs := analyze(t, "internal/vm", `
package vm
import "fmt"
func bad() error { return fmt.Errorf("vm: %d", 7) }
`)
	wantFinding(t, fs, "errtype", "without %w")
}

func TestWrappedErrorfAllowed(t *testing.T) {
	fs := analyze(t, "internal/vm", `
package vm
import ("errors"; "fmt")
var sentinel = errors.New("vm: sentinel")
func good() error { return fmt.Errorf("vm: context: %w", sentinel) }
`)
	if len(fs) != 0 {
		t.Fatalf("wrapped Errorf and package sentinel must pass, got %v", fs)
	}
}

func TestInlineErrorsNewFlagged(t *testing.T) {
	fs := analyze(t, "internal/core", `
package core
import "errors"
func bad() error { return errors.New("oops") }
`)
	wantFinding(t, fs, "errtype", "inline errors.New")
}

func TestErrTypeOnlyInKernelPackages(t *testing.T) {
	fs := analyze(t, "internal/workload", `
package workload
import "fmt"
func fine() error { return fmt.Errorf("workload: %d", 7) }
`)
	if len(fs) != 0 {
		t.Fatalf("errtype must only apply to kernel packages, got %v", fs)
	}
}

func TestPackageCounterFlagged(t *testing.T) {
	fs := analyze(t, "internal/core", `
package core
var faultCount int
`)
	wantFinding(t, fs, "globalstate", "faultCount")
}

func TestAtomicImportFlagged(t *testing.T) {
	fs := analyze(t, "internal/mem", `
package mem
import "sync/atomic"
var x atomic.Int64
`)
	wantFinding(t, fs, "globalstate", "sync/atomic")
}

// TestRepoIsClean is the real gate: the analyzers run over the actual
// source tree and must report nothing. CI runs the same check through
// cmd/hipecvet.
func TestRepoIsClean(t *testing.T) {
	findings, err := Run("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestMapInLoopFlaggedInHotPath(t *testing.T) {
	fs := analyze(t, "internal/vm", `package vm
type obj struct{ resident map[int64]*int }

//hipec:hotpath
func (o *obj) get(off int64) *int { return o.resident[off] }
`)
	wantFinding(t, fs, "mapinloop", "resident")
}

func TestMapInLoopRangeFlagged(t *testing.T) {
	fs := analyze(t, "internal/pageout", `package pageout

//hipec:hotpath
func sweep() {
	seen := make(map[int]bool)
	for k := range seen {
		_ = k
	}
}
`)
	wantFinding(t, fs, "mapinloop", "seen")
}

func TestMapInLoopUnmarkedFunctionAllowed(t *testing.T) {
	fs := analyze(t, "internal/vm", `package vm
func cold(m map[int]int) int { return m[3] }
`)
	for _, f := range fs {
		if f.Analyzer == "mapinloop" {
			t.Fatalf("unmarked function flagged: %v", f)
		}
	}
}

func TestMapInLoopAllowlistedSparseFallback(t *testing.T) {
	fs := analyze(t, "internal/vm", `package vm
type obj struct{ sparse map[int64]*int }

//hipec:hotpath
func (o *obj) get(off int64) *int { return o.sparse[off] }
`)
	for _, f := range fs {
		if f.Analyzer == "mapinloop" {
			t.Fatalf("allowlisted sparse fallback flagged: %v", f)
		}
	}
}

func TestMapInLoopOnlyKernelPackages(t *testing.T) {
	fs := analyze(t, "internal/workload", `package workload

//hipec:hotpath
func hot(m map[int]int) int { return m[3] }
`)
	for _, f := range fs {
		if f.Analyzer == "mapinloop" {
			t.Fatalf("non-kernel package flagged: %v", f)
		}
	}
}

func TestLoopSeamFlagsConstructionInCmd(t *testing.T) {
	src := `
package main
import "hipec/internal/core"
func main() {
	l := core.NewLoop(nil)
	_ = l
	_ = &core.Loop{}
	_ = new(core.Loop)
}
`
	fs := analyze(t, "cmd/badtool", src)
	wantFinding(t, fs, "loopseam", "core.NewLoop")
	wantFinding(t, fs, "loopseam", "core.Loop literal")
	wantFinding(t, fs, "loopseam", "new(core.Loop)")
}

func TestLoopSeamAllowsInternalAndRoot(t *testing.T) {
	src := `
package x
import "hipec/internal/core"
func mk(k *core.Kernel) *core.Loop { return core.NewLoop(k) }
`
	if fs := analyze(t, "internal/bench", src); len(fs) != 0 {
		t.Fatalf("internal package flagged: %v", fs)
	}
	if fs := analyze(t, ".", src); len(fs) != 0 {
		t.Fatalf("root package flagged: %v", fs)
	}
}

func TestLoopSeamAllowsInspectionOnlyCoreUse(t *testing.T) {
	src := `
package main
import "hipec/internal/core"
func dump(s *core.Spec) { _ = s }
`
	if fs := analyze(t, "cmd/hipecdis", src); len(fs) != 0 {
		t.Fatalf("inspection-only use flagged: %v", fs)
	}
}

func TestInternalPassesSkipNonInternalPackages(t *testing.T) {
	src := `
package main
import "time"
func main() { _ = time.Now() }
`
	for _, f := range analyze(t, "examples/netcache", src) {
		if f.Analyzer == "wallclock" {
			t.Fatalf("wallclock fired outside internal/: %v", f)
		}
	}
}
