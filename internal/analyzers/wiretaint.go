package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The wiretaint pass turns the wire protocol's refuse-before-allocate rule
// from a comment into a checked dataflow property: inside internal/wire and
// internal/server, any integer decoded from the network — a cursor read
// (u8/u16/u32/u64), a raw binary.LittleEndian/BigEndian Uint*, or a field
// of an already-decoded wire.Request/wire.Response — is tainted, and a
// tainted value must pass through a relational bound check (<, >, <=, >=
// against anything) before it may reach a make() length or capacity. A
// hostile peer controls every tainted value; an unchecked one reaching an
// allocation is exactly the "length prefix says 4 GiB" bug MaxFrame exists
// to refuse.
//
// The analysis is per-function and statement-ordered, not path-sensitive:
// a comparison anywhere before the allocation clears the taint. That is
// deliberately the same strength as the invariant the code claims — every
// decoded length is checked immediately after decode, on every path.

// wireTaintSourceCall classifies a call as producing attacker-controlled
// integers.
func (p *Pkg) wireTaintSourceCall(call *ast.CallExpr) bool {
	fn := p.funcFor(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "encoding/binary" {
		switch fn.Name() {
		case "Uint16", "Uint32", "Uint64":
			return true
		}
		return false
	}
	if pkgPath, recvName, ok := recvNamed(fn); ok &&
		pkgPath == "hipec/internal/wire" && recvName == "cursor" {
		switch fn.Name() {
		case "u8", "u16", "u32", "u64":
			return true
		}
	}
	return false
}

// wireMessageField reports whether sel reads an integer field off a decoded
// wire message (wire.Request / wire.Response / wire.Stats).
func (p *Pkg) wireMessageField(sel *ast.SelectorExpr) bool {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	pkgPath, name, ok := namedType(s.Recv())
	if !ok || pkgPath != "hipec/internal/wire" {
		return false
	}
	switch name {
	case "Request", "Response", "Stats":
	default:
		return false
	}
	b, ok := s.Obj().Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// taintState tracks which local variables currently hold unchecked
// network-derived integers within one function.
type taintState struct {
	pkg     *Pkg
	tainted map[*types.Var]bool
}

// exprTainted reports whether evaluating e yields an unchecked
// network-derived integer.
func (ts *taintState) exprTainted(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj, ok := ts.pkg.objectOf(v).(*types.Var)
		return ok && ts.tainted[obj]
	case *ast.SelectorExpr:
		if ts.pkg.wireMessageField(v) {
			return true
		}
		// A selector whose base is a tainted var (rare) stays clean: field
		// taint is not tracked beyond the wire message types.
		return false
	case *ast.CallExpr:
		if ts.pkg.wireTaintSourceCall(v) {
			return true
		}
		// Conversions propagate: int(n), uint32(n).
		if tv, ok := ts.pkg.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return ts.exprTainted(v.Args[0])
		}
		return false
	case *ast.BinaryExpr:
		switch v.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.SHR, token.AND, token.OR, token.XOR:
			return ts.exprTainted(v.X) || ts.exprTainted(v.Y)
		}
		return false
	case *ast.UnaryExpr:
		return ts.exprTainted(v.X)
	}
	return false
}

// sanitize clears the taint of every variable mentioned in a relational
// comparison: the code has inspected the value against a bound.
func (ts *taintState) sanitize(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					if obj, ok := ts.pkg.objectOf(id).(*types.Var); ok {
						delete(ts.tainted, obj)
					}
					return true
				})
			}
		}
		return true
	})
}

// assign updates taint for one lhs := rhs pair.
func (ts *taintState) assign(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj, ok := ts.pkg.objectOf(id).(*types.Var)
	if !ok {
		return
	}
	if rhs != nil && ts.exprTainted(rhs) {
		ts.tainted[obj] = true
	} else {
		delete(ts.tainted, obj)
	}
}

// checkWireTaint runs the per-function taint walk over the package.
func checkWireTaint(p *Pkg, report reportFunc) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ts := &taintState{pkg: p, tainted: map[*types.Var]bool{}}
			ts.walkStmt(fd.Body, report)
		}
	}
}

// walkStmt processes statements in source order, updating taint and
// reporting tainted allocation sizes.
func (ts *taintState) walkStmt(s ast.Stmt, report reportFunc) {
	switch n := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, sub := range n.List {
			ts.walkStmt(sub, report)
		}
	case *ast.IfStmt:
		ts.walkStmt(n.Init, report)
		ts.checkExpr(n.Cond, report)
		ts.sanitize(n.Cond)
		ts.walkStmt(n.Body, report)
		ts.walkStmt(n.Else, report)
	case *ast.ForStmt:
		ts.walkStmt(n.Init, report)
		if n.Cond != nil {
			ts.checkExpr(n.Cond, report)
			ts.sanitize(n.Cond)
		}
		ts.walkStmt(n.Body, report)
		ts.walkStmt(n.Post, report)
	case *ast.RangeStmt:
		ts.checkExpr(n.X, report)
		ts.walkStmt(n.Body, report)
	case *ast.SwitchStmt:
		ts.walkStmt(n.Init, report)
		if n.Tag != nil {
			ts.checkExpr(n.Tag, report)
		}
		for _, clause := range n.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, e := range cc.List {
				ts.checkExpr(e, report)
				ts.sanitize(e)
			}
			for _, sub := range cc.Body {
				ts.walkStmt(sub, report)
			}
		}
	case *ast.TypeSwitchStmt:
		ts.walkStmt(n.Init, report)
		ts.walkStmt(n.Assign, report)
		for _, clause := range n.Body.List {
			for _, sub := range clause.(*ast.CaseClause).Body {
				ts.walkStmt(sub, report)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range n.Body.List {
			cc := clause.(*ast.CommClause)
			ts.walkStmt(cc.Comm, report)
			for _, sub := range cc.Body {
				ts.walkStmt(sub, report)
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			ts.checkExpr(rhs, report)
		}
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				ts.assign(n.Lhs[i], n.Rhs[i])
			}
		} else {
			// Multi-value call: results are not wire sources; clear.
			for _, lhs := range n.Lhs {
				ts.assign(lhs, nil)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					ts.checkExpr(vs.Values[i], report)
					ts.assign(name, vs.Values[i])
				}
			}
		}
	case *ast.ExprStmt:
		ts.checkExpr(n.X, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			ts.checkExpr(r, report)
		}
	case *ast.GoStmt:
		ts.checkExpr(n.Call, report)
	case *ast.DeferStmt:
		ts.checkExpr(n.Call, report)
	case *ast.SendStmt:
		ts.checkExpr(n.Value, report)
	case *ast.IncDecStmt:
		ts.checkExpr(n.X, report)
	case *ast.LabeledStmt:
		ts.walkStmt(n.Stmt, report)
	}
}

// checkExpr scans an expression for make() calls whose length or capacity
// is tainted (including nested closures, which inherit the current state).
func (ts *taintState) checkExpr(e ast.Expr, report reportFunc) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ts.walkStmt(lit.Body, report)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !ts.pkg.isBuiltin(call, "make") {
			return true
		}
		for _, arg := range call.Args[1:] {
			if ts.exprTainted(arg) {
				report(call, "length decoded from the network reaches make without a bound check; compare against MaxFrame or a declared cap first (refuse-before-allocate)")
				break
			}
		}
		return true
	})
}
