package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The hotalloc pass enforces the zero-allocation contract of //hipec:hotpath
// functions for the shapes only resolved types can reveal — the ones
// benchguard catches after the fact and go/ast alone cannot see at all:
//
//   - interface boxing: passing or converting a non-pointer concrete value
//     where an interface is expected heap-allocates the value's box;
//   - capturing closures: a func literal that references enclosing
//     variables allocates its environment (a capture-free literal compiles
//     to a singleton and stays legal);
//   - append without capacity: appending to a slice whose every visible
//     initialization lacks a capacity (var s []T, s := []T{}, make with no
//     cap) grows on the hot path;
//   - string concatenation: non-constant string + allocates the result.
//
// Together with mapinloop (map lookups) this subsumes the old syntactic
// pass: mapinloop keeps its name and its map rule, everything that needed
// type resolution lives here.

// pointerShaped reports whether boxing t into an interface stores the value
// directly in the interface word (no allocation): pointers, channels, maps,
// funcs, unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		b, ok := t.Underlying().(*types.Basic)
		if ok {
			return b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil
		}
		return true
	}
	return false
}

// isInterface reports whether t is an interface type.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxesAt reports whether passing arg where an interface is expected
// allocates: the arg's resolved type is concrete, not pointer-shaped, and
// not a constant nil.
func (p *Pkg) boxesAt(arg ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return "", false
	}
	if isInterface(tv.Type) || pointerShaped(tv.Type) {
		return "", false
	}
	return tv.Type.String(), true
}

// checkHotAlloc inspects every //hipec:hotpath function in the package.
func checkHotAlloc(p *Pkg, report reportFunc) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hotPathMarked(fd) || fd.Body == nil {
				continue
			}
			p.checkHotFunc(fd, report)
		}
	}
}

func (p *Pkg) checkHotFunc(fd *ast.FuncDecl, report reportFunc) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if id := p.firstCapture(n, fd); id != "" {
				report(n, "closure capturing %q allocates inside hot-path function %s; hoist the state or pass it explicitly", id, fd.Name.Name)
			}
			return false // the literal's body runs elsewhere; its own cost is the capture
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := p.Info.Types[n]; ok && tv.Value == nil && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation allocates inside hot-path function %s; use a preallocated buffer", fd.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			p.checkHotCall(n, fd, report)
		}
		return true
	})
}

// checkHotCall flags append-without-capacity, interface-boxing arguments,
// and boxing conversions at one call site.
func (p *Pkg) checkHotCall(call *ast.CallExpr, fd *ast.FuncDecl, report reportFunc) {
	if p.isBuiltin(call, "append") {
		if len(call.Args) > 0 && p.appendTargetUncapped(call.Args[0], fd) {
			report(call, "append to a slice with no visible capacity inside hot-path function %s; preallocate with make(..., 0, n) or reuse a scratch buffer", fd.Name.Name)
		}
		return
	}
	// Conversion to an interface type: any(x), error(x), substrate.Timer(x).
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 {
			if from, boxes := p.boxesAt(call.Args[0]); boxes {
				report(call, "conversion boxes %s into %s inside hot-path function %s", from, tv.Type.String(), fd.Name.Name)
			}
		}
		return
	}
	sig := p.callSignature(call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil || !isInterface(pt) {
			continue
		}
		if from, boxes := p.boxesAt(arg); boxes {
			report(arg, "argument boxes %s into %s inside hot-path function %s", from, pt.String(), fd.Name.Name)
		}
	}
}

// callSignature resolves the signature a call dispatches through (declared
// function, method, or func value), nil for builtins and conversions.
func (p *Pkg) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt reports the type of parameter i, unwrapping the variadic
// tail: for f(xs ...T), every trailing argument lands in a T.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if i < params.Len()-1 || (!sig.Variadic() && i < params.Len()) {
		return params.At(i).Type()
	}
	if !sig.Variadic() {
		return nil
	}
	last := params.At(params.Len() - 1).Type()
	if sl, ok := last.(*types.Slice); ok {
		return sl.Elem()
	}
	return nil
}

// firstCapture reports the first enclosing-function variable a func literal
// captures ("" when capture-free).
func (p *Pkg) firstCapture(lit *ast.FuncLit, fd *ast.FuncDecl) string {
	capture := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capture != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured: declared in the enclosing function but outside the
		// literal. Package-level vars are not captures (no environment).
		if obj.Parent() == p.Types.Scope() {
			return true
		}
		if obj.Pos() >= fd.Pos() && obj.Pos() <= fd.End() && !declaredInside(obj, lit) {
			capture = id.Name
		}
		return true
	})
	return capture
}

// appendTargetUncapped reports whether the append target is a local slice
// variable whose every visible initialization lacks capacity. Parameters,
// fields, package-level and cross-function slices fail open — their
// capacity discipline is their owner's contract.
func (p *Pkg) appendTargetUncapped(target ast.Expr, fd *ast.FuncDecl) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.objectOf(id).(*types.Var)
	if !ok || obj.IsField() || obj.Parent() == p.Types.Scope() {
		return false
	}
	if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
		return false // not declared in this function
	}
	// A parameter: capacity is the caller's business.
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if p.Info.Defs[name] == obj {
					return false
				}
			}
		}
	}
	uncapped := false
	verdict := true
	seen := false
	consider := func(rhs ast.Expr) {
		rhs = ast.Unparen(rhs)
		switch v := rhs.(type) {
		case *ast.CallExpr:
			if p.isBuiltin(v, "make") {
				seen = true
				verdict = verdict && len(v.Args) < 3 // make([]T, n): no cap
				return
			}
			if p.isBuiltin(v, "append") {
				if inner, ok := ast.Unparen(v.Args[0]).(*ast.Ident); ok && p.objectOf(inner) == obj {
					return // self-append: growth, not initialization
				}
			}
			seen, verdict = true, false // produced elsewhere: fail open
		case *ast.CompositeLit:
			seen = true
			verdict = verdict && len(v.Elts) == 0 // []T{}: nil-ish, no cap
		case *ast.SliceExpr:
			if inner, ok := ast.Unparen(v.X).(*ast.Ident); ok && p.objectOf(inner) == obj {
				return // s = s[:0]: reuse, capacity unchanged
			}
			seen, verdict = true, false
		default:
			seen, verdict = true, false
		}
	}
	declaredBare := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || p.objectOf(lid) != obj || i >= len(n.Rhs) {
					continue
				}
				consider(n.Rhs[i])
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if p.Info.Defs[name] != obj {
					continue
				}
				if i < len(n.Values) {
					consider(n.Values[i])
				} else {
					declaredBare = true // var s []T: nil slice
				}
			}
		}
		return true
	})
	if declaredBare && !seen {
		uncapped = true
	} else if seen && verdict {
		uncapped = true
	}
	return uncapped
}
