// Package fixture exercises the vet-ignore meta pass: a suppression that
// silences nothing is itself a finding — stale waivers rot into lies.
//
//hipec:fixture-as internal/fixture
package fixture

// Size is clean; the directive below it suppresses nothing.
func Size(xs []int) int {
	// want `vet-ignore: unused suppression of mapinloop`
	//hipec:vet-ignore mapinloop -- stale waiver kept after the map was removed
	return len(xs)
}
