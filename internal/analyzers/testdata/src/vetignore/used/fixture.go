// Package fixture shows a working suppression: the deliberate sparse probe
// is waived inline with its justification, so the package analyzes clean.
//
//hipec:fixture-as internal/fixture
package fixture

type table struct{ sparse map[int64]int }

// Lookup keeps its sparse map on purpose.
//
//hipec:hotpath
func (t *table) Lookup(off int64) int {
	//hipec:vet-ignore mapinloop -- deliberate sparse fallback in this fixture
	return t.sparse[off]
}
