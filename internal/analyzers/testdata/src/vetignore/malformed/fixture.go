// Package fixture exercises the vet-ignore meta pass on malformed
// directives: a missing reason, an unknown pass name, and no pass at all
// are each findings.
//
//hipec:fixture-as internal/fixture
package fixture

// Noop carries three broken suppressions.
func Noop() int {
	// want `vet-ignore: suppression of mapinloop has no reason`
	//hipec:vet-ignore mapinloop
	// want `vet-ignore: suppression names unknown pass "nosuchpass"`
	//hipec:vet-ignore nosuchpass -- the pass does not exist
	// want `vet-ignore: suppression names no pass`
	//hipec:vet-ignore -- reason with no pass
	return 0
}
