// Package fixture exercises the mapinloop pass: map access inside a
// //hipec:hotpath function, via index or range.
//
//hipec:fixture-as internal/fixture
package fixture

type table struct {
	sparse map[int64]int
}

// Lookup probes a map on the fault hot path.
//
//hipec:hotpath
func (t *table) Lookup(off int64) int {
	return t.sparse[off] // want `mapinloop: map lookup inside hot-path function Lookup`
}

// Sum iterates a map on the hot path.
//
//hipec:hotpath
func (t *table) Sum() int {
	n := 0
	for _, v := range t.sparse { // want `mapinloop: map iteration inside hot-path function Sum`
		n += v
	}
	return n
}
