// Package fixture shows the legal forms: dense slice indexing on the hot
// path, and map use in functions without the hotpath contract.
//
//hipec:fixture-as internal/fixture
package fixture

type table struct {
	flat  []int
	names map[string]int
}

// Lookup indexes the dense page table.
//
//hipec:hotpath
func (t *table) Lookup(i int) int {
	if i < len(t.flat) {
		return t.flat[i]
	}
	return 0
}

// Rename is control-plane code; maps are fine off the hot path.
func (t *table) Rename(name string, v int) {
	t.names[name] = v
}
