// Package fixture shows the legal shapes: spawned goroutines block
// themselves, buffered sends absorb the burst, and genuinely blocking work
// hides behind interface dispatch — the substrate seam — where the chain
// deliberately breaks.
//
//hipec:fixture-as internal/server
package fixture

import (
	"time"

	"hipec/internal/core"
)

// ready has capacity; a send parks only when the buffer is full, which the
// loop's backpressure contract accepts.
var ready = make(chan struct{}, 8)

// Store is the seam: the realtime backend owns the blocking consequences.
type Store interface {
	Sync() error
}

// run keeps the engine goroutine free.
func run(l *core.Loop, st Store) error {
	return l.Call(func(k *core.Kernel) error {
		go func() {
			time.Sleep(time.Millisecond) // blocks its own goroutine, not the loop
		}()
		ready <- struct{}{}
		return st.Sync()
	})
}
