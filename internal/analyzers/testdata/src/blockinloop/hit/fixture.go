// Package fixture exercises the blockinloop pass: blocking work statically
// reachable from a Loop command closure stalls every client of the loop —
// directly, through a call chain, or via a provably-unbuffered send.
//
//hipec:fixture-as internal/server
package fixture

import (
	"os"
	"time"

	"hipec/internal/core"
)

// wakeup is provably unbuffered: its only initialization is make(chan T).
var wakeup = make(chan struct{})

// run blocks the engine goroutine three ways.
func run(l *core.Loop, f *os.File) error {
	return l.Call(func(k *core.Kernel) error {
		time.Sleep(time.Millisecond) // want `blockinloop: blocking call reachable from a Loop command closure .* time\.Sleep`
		flush(f)                     // want `blockinloop: blocking call reachable from a Loop command closure .*flush -> \(\*os\.File\)\.Sync`
		wakeup <- struct{}{}         // want `blockinloop: blocking call reachable from a Loop command closure .* send on unbuffered channel`
		return nil
	})
}

// flush hides the blocking leaf one call deep.
func flush(f *os.File) {
	_ = f.Sync()
}
