// Package fixture exercises the blockinloop pass over concrete page
// stores: calling a backend's I/O methods from inside a Loop command
// closure stalls every client of the loop, whether the call is direct or
// hidden behind a helper. The sanctioned shape routes storage through the
// substrate.Store interface the kernel was assembled with — see the
// storeclean fixture.
//
//hipec:fixture-as internal/server
package fixture

import (
	"hipec/internal/core"
	"hipec/internal/disk/filestore"
	"hipec/internal/store"
	"hipec/internal/substrate"
)

// run drives concrete store I/O from the engine goroutine three ways.
func run(l *core.Loop, fs *filestore.Store, tr *store.Tiered, mm *store.Mmap) error {
	return l.Call(func(k *core.Kernel) error {
		if err := fs.WritePage(substrate.PageKey{Object: 1}, nil); err != nil { // want `blockinloop: blocking call reachable from a Loop command closure .* \(filestore\.Store\)\.WritePage`
			return err
		}
		if _, _, err := mm.ReadPage(substrate.PageKey{Object: 1}); err != nil { // want `blockinloop: blocking call reachable from a Loop command closure .* \(store\.Mmap\)\.ReadPage`
			return err
		}
		return flush(tr) // want `blockinloop: blocking call reachable from a Loop command closure .*flush -> \(store\.Tiered\)\.Sync`
	})
}

// flush hides the blocking store call one frame deep; the chain is chased.
func flush(tr *store.Tiered) error {
	return tr.Sync()
}
