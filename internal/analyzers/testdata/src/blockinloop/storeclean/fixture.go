// Package fixture shows the sanctioned storage shape: concrete backends
// are composed and opened before the loop starts, and loop closures reach
// pages only through the substrate.Store interface — the seam where the
// blockinloop chain deliberately breaks, because whichever backend the
// kernel was assembled with owns the blocking consequences.
//
//hipec:fixture-as internal/server
package fixture

import (
	"hipec/internal/core"
	"hipec/internal/store"
	"hipec/internal/substrate"
)

// assemble composes a tiered backend outside the loop; this is setup-time
// code on the caller's goroutine, free to do real I/O.
func assemble(pageSize int) (substrate.Store, error) {
	slow, err := store.Open("file", "", pageSize)
	if err != nil {
		return nil, err
	}
	return store.NewTiered(substrate.NewMemStore(pageSize, true), slow, store.WriteThrough, 64), nil
}

// run drives pages through the interface seam from inside the loop.
func run(l *core.Loop, st substrate.Store) error {
	return l.Call(func(k *core.Kernel) error {
		if err := st.WritePage(substrate.PageKey{Object: 1}, nil); err != nil {
			return err
		}
		_, _, err := st.ReadPage(substrate.PageKey{Object: 1})
		return err
	})
}
