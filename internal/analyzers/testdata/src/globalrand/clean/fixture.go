// Package fixture shows the legal form: an explicitly seeded *rand.Rand,
// whose methods are deterministic given the seed.
//
//hipec:fixture-as internal/fixture
package fixture

import "math/rand"

// Pick draws from a private, seeded generator.
func Pick(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
