// Package fixture exercises the globalrand pass: package-level math/rand
// functions draw from the shared global source and make runs unrepeatable.
//
//hipec:fixture-as internal/fixture
package fixture

import "math/rand"

// Pick draws from the global generator.
func Pick(n int) int {
	return rand.Intn(n) // want `globalrand: rand\.Intn uses the global math/rand state`
}
