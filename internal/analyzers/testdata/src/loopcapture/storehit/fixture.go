// Package fixture exercises the loopcapture pass over concrete page
// stores: a backend handle is loop-confined single-writer state, and
// parking one anywhere that outlives a Loop closure invites unserialized
// I/O on buffers the loop is still using.
//
//hipec:fixture-as internal/fixture
package fixture

import (
	"hipec/internal/core"
	"hipec/internal/disk/filestore"
	"hipec/internal/store"
)

// leakedStore is where the bad closure parks the backend.
var leakedStore *filestore.Store

// run leaks store handles four ways.
func run(l *core.Loop, fs *filestore.Store, tr *store.Tiered, sink chan *store.Mmap, mm *store.Mmap) error {
	var outer *store.Tiered
	err := l.Call(func(k *core.Kernel) error {
		go prefetch(mm)  // want `loopcapture: \*store\.Mmap "mm" escapes into a goroutine`
		leakedStore = fs // want `loopcapture: \*filestore\.Store stored in package-level variable "leakedStore"`
		outer = tr       // want `loopcapture: \*store\.Tiered stored in "outer", which outlives the Loop closure`
		sink <- mm       // want `loopcapture: \*store\.Mmap sent on a channel from inside a Loop closure`
		return nil
	})
	_ = outer
	return err
}

func prefetch(m *store.Mmap) { _ = m }
