// Package fixture shows the legal pattern: results leave the closure by
// value; the kernel pointer itself never escapes the call window.
//
//hipec:fixture-as internal/fixture
package fixture

import "hipec/internal/core"

// countRegions extracts a plain value from inside the call.
func countRegions(l *core.Loop) (int, error) {
	regions := 0
	err := l.Call(func(k *core.Kernel) error {
		regions = snapshot(k)
		return nil
	})
	return regions, err
}

func snapshot(k *core.Kernel) int {
	_ = k
	return 0
}
