// Package fixture shows the legal page-store pattern: backends are built
// and handed to the kernel before the loop starts, closures read plain
// values (counts, bytes) out through the substrate.Store seam, and no
// concrete handle crosses the call window in either direction.
//
//hipec:fixture-as internal/fixture
package fixture

import (
	"hipec/internal/core"
	"hipec/internal/substrate"
)

// residentPages extracts a plain value from the store inside the call.
func residentPages(l *core.Loop, st substrate.Store) (int, error) {
	pages := 0
	err := l.Call(func(k *core.Kernel) error {
		pages = st.Len()
		return nil
	})
	return pages, err
}
