// Package fixture exercises the loopcapture pass: the kernel pointer a
// Loop.Call closure receives must not outlive the call — no goroutines,
// package variables, outer locals, or channels.
//
//hipec:fixture-as internal/fixture
package fixture

import "hipec/internal/core"

// leaked is where the bad closure parks the kernel.
var leaked *core.Kernel

// run leaks the kernel four ways.
func run(l *core.Loop, sink chan *core.Kernel) error {
	var outer *core.Kernel
	err := l.Call(func(k *core.Kernel) error {
		go logFaults(k) // want `loopcapture: \*core\.Kernel "k" escapes into a goroutine`
		leaked = k      // want `loopcapture: \*core\.Kernel stored in package-level variable "leaked"`
		outer = k       // want `loopcapture: \*core\.Kernel stored in "outer", which outlives the Loop closure`
		sink <- k       // want `loopcapture: \*core\.Kernel sent on a channel from inside a Loop closure`
		return nil
	})
	_ = outer
	return err
}

func logFaults(k *core.Kernel) { _ = k }
