// Package fixture shows the legal shapes: constants are immutable, and
// mutable counters live on per-object state, not at package level.
//
//hipec:fixture-as internal/core
package fixture

const maxRetries = 3

type stats struct{ faults int64 }

func (s *stats) bump() int {
	s.faults++
	return maxRetries
}
