// Package fixture exercises the globalstate pass: package-level numeric
// state (and sync/atomic wholesale) leaks between the independent kernels
// tests construct.
//
//hipec:fixture-as internal/core
package fixture

import "sync/atomic" // want `globalstate: kernel package imports sync/atomic`

var faultCount int64 // want `globalstate: package-level numeric var faultCount`

var ops atomic.Int64

func bump() {
	faultCount++
	ops.Add(1)
}
