// Package fixture shows the allocation-free counterparts: pointer-shaped
// boxing rides in the interface word, capture-free literals compile to
// singletons, preallocated and caller-owned slices append in place, and
// constant concatenation folds at compile time.
//
//hipec:fixture-as internal/fixture
package fixture

// record accepts anything; pointers box for free.
func record(v any) { _ = v }

const prefix = "page:"

// Touch does the same work without allocating.
//
//hipec:hotpath
func Touch(off *int64, scratch []int64) int {
	record(off)                                   // pointer-shaped: the interface word holds the pointer
	probe := func(v int64) int64 { return v + 1 } // capture-free literal
	_ = probe(*off)
	buf := make([]int64, 0, 8)
	buf = append(buf, *off)
	scratch = append(scratch, *off) // parameter: capacity is the caller's contract
	_ = scratch
	const tag = prefix + "hot" // constant concatenation folds at compile time
	_ = tag
	return len(buf)
}
