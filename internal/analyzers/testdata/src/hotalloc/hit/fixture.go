// Package fixture exercises the hotalloc pass: the allocation shapes only
// resolved types reveal — interface boxing, capturing closures, append
// without capacity, string concatenation — inside //hipec:hotpath
// functions.
//
//hipec:fixture-as internal/fixture
package fixture

// record accepts anything; calls from hot paths must not box.
func record(v any) { _ = v }

// Touch allocates five distinct ways.
//
//hipec:hotpath
func Touch(off int64, name string) string {
	record(off)                          // want `hotalloc: argument boxes int64 into any`
	_ = any(off)                         // want `hotalloc: conversion boxes int64 into any`
	probe := func() int64 { return off } // want `hotalloc: closure capturing "off" allocates`
	_ = probe()
	var hist []int64
	hist = append(hist, off) // want `hotalloc: append to a slice with no visible capacity`
	_ = hist
	return "page:" + name // want `hotalloc: string concatenation allocates`
}
