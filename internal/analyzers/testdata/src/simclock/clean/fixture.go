// Package fixture shows the legal simtime surface: the value types
// (simtime.Time, simtime.Duration) are substrate-neutral vocabulary and may
// appear anywhere.
//
//hipec:fixture-as internal/fixture
package fixture

import "hipec/internal/simtime"

// Deadline does pure time arithmetic on the neutral value types.
func Deadline(now simtime.Time, d simtime.Duration) simtime.Time {
	return now.Add(d)
}
