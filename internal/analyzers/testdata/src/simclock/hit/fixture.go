// Package fixture exercises the simclock pass: naming the concrete
// simulation clock outside internal/substrate re-welds the engine to the
// sim backend.
//
//hipec:fixture-as internal/fixture
package fixture

import "hipec/internal/simtime"

// Backend leaks the concrete clock and its timer handle type.
func Backend() (any, any) {
	var c *simtime.Clock  // want `simclock: simtime\.Clock pins this package to the simulation backend`
	var ev *simtime.Event // want `simclock: simtime\.Event pins this package to the simulation backend`
	return c, ev
}
