// Package fixture exercises the wiretaint pass: integers decoded from the
// network — raw binary reads or fields of a decoded wire message — must not
// reach a make() size without a bound check.
//
//hipec:fixture-as internal/wire
package fixture

import (
	"encoding/binary"

	"hipec/internal/wire"
)

// decodePayload trusts a raw length prefix.
func decodePayload(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	buf := make([]byte, n) // want `wiretaint: length decoded from the network reaches make without a bound check`
	copy(buf, b[4:])
	return buf
}

// replyBuffer trusts a field of an already-decoded message.
func replyBuffer(req *wire.Request) []byte {
	return make([]byte, int(req.MaxLen)) // want `wiretaint: length decoded from the network reaches make without a bound check`
}
