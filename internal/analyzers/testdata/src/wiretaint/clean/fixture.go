// Package fixture shows refuse-before-allocate done right: every decoded
// length passes a relational bound check before it reaches an allocation.
//
//hipec:fixture-as internal/wire
package fixture

import (
	"encoding/binary"

	"hipec/internal/wire"
)

// decodePayload refuses oversized prefixes before allocating.
func decodePayload(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	if n > wire.MaxFrame {
		return nil
	}
	buf := make([]byte, n)
	copy(buf, b[4:])
	return buf
}

// replyBuffer clamps the requested size against the page size.
func replyBuffer(req *wire.Request, pageSize int) []byte {
	maxLen := int(req.MaxLen)
	if maxLen > pageSize {
		maxLen = pageSize
	}
	return make([]byte, maxLen)
}
