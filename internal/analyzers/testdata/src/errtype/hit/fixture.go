// Package fixture exercises the errtype pass: kernel packages must return
// typed errors — a bare fmt.Errorf without %w or an inline errors.New drops
// the hiperr taxonomy.
//
//hipec:fixture-as internal/core
package fixture

import (
	"errors"
	"fmt"
)

// open loses the error taxonomy both ways.
func open(name string) error {
	if name == "" {
		return errors.New("empty name") // want `errtype: returned inline errors\.New is untyped`
	}
	return fmt.Errorf("open %s failed", name) // want `errtype: returned fmt\.Errorf without %w drops the hiperr error taxonomy`
}
