// Package fixture shows the legal error discipline: errors.New declares a
// package sentinel (that is exactly where it belongs), and fmt.Errorf wraps
// it with %w so errors.Is still matches.
//
//hipec:fixture-as internal/core
package fixture

import (
	"errors"
	"fmt"
)

// ErrStale is the package sentinel.
var ErrStale = errors.New("stale handle")

// refresh wraps the sentinel, keeping the taxonomy intact.
func refresh(ok bool) error {
	if !ok {
		return fmt.Errorf("refresh: %w", ErrStale)
	}
	return nil
}
