// Package fixture exercises the loopseam pass: application code (cmd/,
// examples/) must not construct a core.Loop directly — every entry point
// goes through the facade so it carries the Client contract.
//
//hipec:fixture-as cmd/fixture
package fixture

import "hipec/internal/core"

// build constructs the loop all three banned ways.
func build() *core.Loop {
	l := core.NewLoop(nil) // want `loopseam: core\.NewLoop outside internal/`
	_ = new(core.Loop)     // want `loopseam: new\(core\.Loop\) outside internal/`
	_ = core.Loop{}        // want `loopseam: core\.Loop literal outside internal/`
	return l
}
