// Package fixture shows the legal use: application code may hold and drive
// a *core.Loop it was handed — only construction is fenced behind the
// facade.
//
//hipec:fixture-as cmd/fixture
package fixture

import "hipec/internal/core"

// inspect drives a loop someone else built.
func inspect(l *core.Loop) error {
	return l.Call(func(k *core.Kernel) error { return nil })
}
