// Package fixture shows the legal side of the wallclock rule: duration
// arithmetic and time constants are substrate-neutral vocabulary; only
// reading or waiting on the real clock is banned.
//
//hipec:fixture-as internal/fixture
package fixture

import "time"

// Budget compares durations without ever consulting a clock.
func Budget(d time.Duration) bool {
	return d > 5*time.Millisecond
}
