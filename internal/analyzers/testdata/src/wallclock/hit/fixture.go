// Package fixture exercises the wallclock pass: reading or waiting on the
// real clock inside a simulation package breaks determinism.
//
//hipec:fixture-as internal/fixture
package fixture

import "time"

// Tick reads the wall clock three ways on the simulation path.
func Tick() time.Duration {
	start := time.Now()          // want `wallclock: time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `wallclock: time\.Sleep reads the wall clock`
	return time.Since(start)     // want `wallclock: time\.Since reads the wall clock`
}
