package analyzers

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: every directory under testdata/src/<pass>/<case> is
// one package analyzed with the full engine. Expected findings are declared
// in the sources with want comments holding backquoted regexes:
//
//	buf := make([]byte, n) // want `wiretaint: length decoded from the network`
//
// A trailing want applies to its own line; a want alone on its line applies
// to the line below (the only way to expect a finding on a comment line,
// which is where the vet-ignore meta pass reports). Each finding must match
// exactly one want and each want exactly one finding.

// want is one expected finding parsed from a fixture source.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

const wantMarker = "// want "

// parseWants scans the fixture package's sources for want comments.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, wantMarker)
			if idx < 0 {
				continue
			}
			target := i + 1 // 1-based line of the comment itself
			if strings.HasPrefix(strings.TrimSpace(line), strings.TrimSpace(wantMarker)) {
				target++ // standalone want: expect on the next line
			}
			for _, raw := range backquoted(t, ent.Name(), i+1, line[idx+len(wantMarker):]) {
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", ent.Name(), i+1, raw, err)
				}
				wants = append(wants, &want{file: ent.Name(), line: target, re: re, raw: raw})
			}
		}
	}
	return wants
}

// backquoted extracts the backquote-delimited segments of a want spec.
func backquoted(t *testing.T, file string, line int, spec string) []string {
	t.Helper()
	var out []string
	for {
		start := strings.IndexByte(spec, '`')
		if start < 0 {
			break
		}
		end := strings.IndexByte(spec[start+1:], '`')
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want regexp", file, line)
		}
		out = append(out, spec[start+1:start+1+end])
		spec = spec[start+1+end+1:]
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment carries no backquoted regexp", file, line)
	}
	return out
}

// TestFixtures runs every pass's hit and clean fixture packages through one
// shared engine and checks the findings against the want comments.
func TestFixtures(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(root)
	base := filepath.Join("testdata", "src")
	passDirs, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pd := range passDirs {
		if !pd.IsDir() {
			continue
		}
		caseDirs, err := os.ReadDir(filepath.Join(base, pd.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, cd := range caseDirs {
			if !cd.IsDir() {
				continue
			}
			dir := filepath.Join(base, pd.Name(), cd.Name())
			// Subtests share the engine's package cache; run sequentially.
			t.Run(pd.Name()+"/"+cd.Name(), func(t *testing.T) {
				findings, err := eng.AnalyzeDir(dir)
				if err != nil {
					t.Fatalf("analyzing %s: %v", dir, err)
				}
				wants := parseWants(t, dir)
			findings:
				for _, f := range findings {
					got := f.Analyzer + ": " + f.Msg
					for _, w := range wants {
						if !w.hit && w.file == filepath.Base(f.Pos.Filename) &&
							w.line == f.Pos.Line && w.re.MatchString(got) {
							w.hit = true
							continue findings
						}
					}
					t.Errorf("unexpected finding: %v", f)
				}
				for _, w := range wants {
					if !w.hit {
						t.Errorf("%s:%d: no finding matched `%s`", w.file, w.line, w.raw)
					}
				}
			})
		}
	}
}

// TestFixtureDirRequiresIdentity checks that a fixture package without a
// //hipec:fixture-as directive is rejected rather than silently analyzed
// with the wrong scoping.
func TestFixtureDirRequiresIdentity(t *testing.T) {
	dir := t.TempDir()
	src := "package fixture\n\nfunc F() int { return 0 }\n"
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(root).AnalyzeDir(dir); err == nil ||
		!strings.Contains(err.Error(), "fixture-as") {
		t.Fatalf("expected fixture-as error, got %v", err)
	}
}
