package analyzers

import (
	"bufio"
	_ "embed"
	"go/ast"
	"strings"
)

// The mapinloop pass guards the data-plane overhaul: the fault and pageout
// hot paths replaced their per-access map lookups with dense page-indexed
// slices and intrusive queues, and this pass keeps maps from creeping back.
// Functions on the hot path carry a `//hipec:hotpath` directive in their
// doc comment; inside such a function (kernel packages only), indexing or
// ranging over a map-typed name is a finding.
//
// The pass is pure go/ast, so "map-typed" is resolved syntactically: a name
// counts as a map if the same file declares it as one — a struct field or
// variable of map type, a parameter of map type, or an assignment from
// make(map...) or a map literal. That covers every map the kernel packages
// own; cross-package map-typed expressions are invisible, which fails open
// (no false positives) and matches the pass's job of guarding this repo's
// own hot paths.
//
// mapinloop_allow.txt is the allowlist: one `pkg:name` per line for map
// names that are legal on the hot path. The only entry is the sparse
// page-table fallback — oversized objects (and the ForceSparseObjects
// reference mode) deliberately keep the map, and the flat path never
// touches it for ordinary objects.

//go:embed mapinloop_allow.txt
var mapInLoopAllowRaw string

// mapInLoopAllow holds "pkg:name" entries parsed from the allowlist file.
var mapInLoopAllow = parseMapAllow(mapInLoopAllowRaw)

func parseMapAllow(raw string) map[string]bool {
	allow := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(raw))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allow[line] = true
	}
	return allow
}

// hotPathMarked reports whether a function's doc comment carries the
// `//hipec:hotpath` directive.
func hotPathMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//hipec:hotpath") {
			return true
		}
	}
	return false
}

// fileMapNames collects every name the file declares with a map type.
func fileMapNames(f *ast.File) map[string]bool {
	names := map[string]bool{}
	declare := func(idents []*ast.Ident) {
		for _, id := range idents {
			if id.Name != "_" {
				names[id.Name] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.Field: // struct fields, params, results
			if _, ok := d.Type.(*ast.MapType); ok {
				declare(d.Names)
			}
		case *ast.ValueSpec:
			if _, ok := d.Type.(*ast.MapType); ok {
				declare(d.Names)
			}
		case *ast.AssignStmt:
			for i, rhs := range d.Rhs {
				if i >= len(d.Lhs) || !isMapExpr(rhs) {
					continue
				}
				if id, ok := d.Lhs[i].(*ast.Ident); ok {
					declare([]*ast.Ident{id})
				}
			}
		}
		return true
	})
	return names
}

// isMapExpr matches the syntactic map constructors: make(map[...]...) and
// map literals.
func isMapExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, isMap := v.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := v.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// terminalName extracts the identifier a map access names: `m` for m[k]
// and `o.m` alike (the field name is what the allowlist keys on).
func terminalName(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.SelectorExpr:
		return v.Sel.Name, true
	case *ast.ParenExpr:
		return terminalName(v.X)
	}
	return "", false
}

// checkMapInLoop flags map index and range expressions inside
// //hipec:hotpath functions of kernel packages.
func checkMapInLoop(f *file, report func(ast.Node, string, ...any)) {
	if !kernelPkgs[f.pkg] {
		return
	}
	mapNames := fileMapNames(f.ast)
	if len(mapNames) == 0 {
		return
	}
	flagged := func(x ast.Expr) (string, bool) {
		name, ok := terminalName(x)
		if !ok || !mapNames[name] {
			return "", false
		}
		if mapInLoopAllow[f.pkg+":"+name] {
			return "", false
		}
		return name, true
	}
	for _, decl := range f.ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !hotPathMarked(fd) || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.IndexExpr:
				if name, bad := flagged(v.X); bad {
					report(v, "map lookup on %q inside hot-path function %s; use a dense index or add %s:%s to mapinloop_allow.txt",
						name, fd.Name.Name, f.pkg, name)
				}
			case *ast.RangeStmt:
				if name, bad := flagged(v.X); bad {
					report(v, "map iteration over %q inside hot-path function %s is allocation- and order-hazardous; use a dense index or add %s:%s to mapinloop_allow.txt",
						name, fd.Name.Name, f.pkg, name)
				}
			}
			return true
		})
	}
}
