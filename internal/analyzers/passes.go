package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// wallClockFuncs are the time-package functions that read or wait on the
// real clock. Simulation code must use simtime.Clock so runs are
// deterministic and replayable.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func checkWallClock(f *file, report func(ast.Node, string, ...any)) {
	if wallClockExempt[f.pkg] {
		return
	}
	timeName := f.importName("time")
	if timeName == "" {
		return
	}
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := pkgCall(call, timeName); ok && wallClockFuncs[fn] {
			report(call, "time.%s reads the wall clock in a simulation package; use simtime.Clock", fn)
		}
		return true
	})
}

// simClockExempt may hold concrete simulation-clock references: the
// substrate package IS the seam — it wraps *simtime.Clock behind
// substrate.Clock and is the one place allowed to name it.
var simClockExempt = map[string]bool{
	"internal/substrate": true,
}

// simClockIdents are the simtime identifiers that pin code to the concrete
// simulation backend. The value types (simtime.Time, simtime.Duration) and
// the scheduler selectors stay legal everywhere: they are substrate-neutral
// vocabulary, not a backend dependency.
var simClockIdents = map[string]bool{
	"Clock": true, "NewClock": true, "NewClockSched": true, "Event": true,
}

// checkSimClock keeps the substrate seam tight: outside internal/substrate,
// engine code must depend on substrate.Clock, never on the concrete
// *simtime.Clock (or its *simtime.Event timer handles). A direct reference
// re-welds the kernel to the simulation and silently breaks the realtime
// backend.
func checkSimClock(f *file, report func(ast.Node, string, ...any)) {
	if simClockExempt[f.pkg] {
		return
	}
	name := f.importName("hipec/internal/simtime")
	if name == "" {
		return
	}
	ast.Inspect(f.ast, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if simClockIdents[sel.Sel.Name] {
			report(sel, "simtime.%s pins this package to the simulation backend; depend on substrate.Clock", sel.Sel.Name)
		}
		return true
	})
}

// globalRandOK are the math/rand constructors that produce an explicitly
// seeded generator; everything else on the package (Intn, Seed, ...) draws
// from or mutates the shared global source.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func checkGlobalRand(f *file, report func(ast.Node, string, ...any)) {
	randName := f.importName("math/rand")
	if randName == "" {
		return
	}
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := pkgCall(call, randName); ok && !globalRandOK[fn] {
			report(call, "rand.%s uses the global math/rand state; use an explicitly seeded *rand.Rand", fn)
		}
		return true
	})
}

// checkErrType requires kernel packages to return typed errors: a return
// statement must not hand back a bare fmt.Errorf whose format lacks %w, or
// an inline errors.New. Both lose the hiperr taxonomy (nothing to match
// with errors.Is). Package-level sentinel declarations stay legal — that is
// exactly where errors.New belongs.
func checkErrType(f *file, report func(ast.Node, string, ...any)) {
	if !kernelPkgs[f.pkg] {
		return
	}
	fmtName := f.importName("fmt")
	errorsName := f.importName("errors")
	ast.Inspect(f.ast, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := res.(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn, ok := pkgCall(call, fmtName); ok && fn == "Errorf" && fmtName != "" {
				if lit := stringLit(call.Args); lit != "" && !strings.Contains(lit, "%w") {
					report(call, "returned fmt.Errorf without %%w drops the hiperr error taxonomy; wrap a sentinel")
				}
			}
			if fn, ok := pkgCall(call, errorsName); ok && fn == "New" && errorsName != "" {
				report(call, "returned inline errors.New is untyped; declare a package sentinel or wrap a hiperr one")
			}
		}
		return true
	})
}

func stringLit(args []ast.Expr) string {
	if len(args) == 0 {
		return ""
	}
	lit, ok := args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	return lit.Value
}

// checkGlobalState keeps kernel packages free of package-level mutable
// numeric state and sync/atomic: counters belong in the kevent registry
// (or per-object Stats structs), and package globals leak between the
// independent kernels tests construct.
func checkGlobalState(f *file, report func(ast.Node, string, ...any)) {
	if !kernelPkgs[f.pkg] {
		return
	}
	if f.importName("sync/atomic") != "" {
		report(f.ast.Name, "kernel package imports sync/atomic; counters belong in the kevent registry")
	}
	for _, decl := range f.ast.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if !numericType(vs) {
				continue
			}
			for _, name := range vs.Names {
				report(name, "package-level numeric var %s in a kernel package; use the kevent registry", name.Name)
			}
		}
	}
}

var numericNames = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "float32": true, "float64": true,
}

// numericType reports whether a var spec is declared (or initialized) as a
// basic numeric type. Untyped specs initialized from non-literal
// expressions are left alone — without go/types we only flag the certain
// cases.
func numericType(vs *ast.ValueSpec) bool {
	if id, ok := vs.Type.(*ast.Ident); ok {
		return numericNames[id.Name]
	}
	if vs.Type == nil && len(vs.Values) > 0 {
		if lit, ok := vs.Values[0].(*ast.BasicLit); ok {
			return lit.Kind == token.INT || lit.Kind == token.FLOAT
		}
	}
	return false
}

// checkLoopSeam protects the client seam: outside internal/ and the root
// hipec package, nothing may construct a core.Loop directly (core.NewLoop,
// a core.Loop composite literal, or new(core.Loop)). Application code —
// cmd/, examples/ — goes through hipec.NewClient, hipec.Serve or hipec.Dial
// so every entry point carries the Client contract. Inspection-only use of
// internal/core (the compiler and VM tools) stays legal.
func checkLoopSeam(f *file, report func(ast.Node, string, ...any)) {
	if f.pkg == "." || strings.HasPrefix(f.pkg, "internal") {
		return
	}
	coreName := f.importName("hipec/internal/core")
	if coreName == "" {
		return
	}
	isCoreSel := func(e ast.Expr, name string) bool {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == coreName && sel.Sel.Name == name
	}
	ast.Inspect(f.ast, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn, ok := pkgCall(n, coreName); ok && fn == "NewLoop" {
				report(n, "core.NewLoop outside internal/; construct clients through hipec.NewClient / hipec.Serve / hipec.Dial")
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 && isCoreSel(n.Args[0], "Loop") {
				report(n, "new(core.Loop) outside internal/; construct clients through hipec.NewClient / hipec.Serve / hipec.Dial")
			}
		case *ast.CompositeLit:
			if isCoreSel(n.Type, "Loop") {
				report(n, "core.Loop literal outside internal/; construct clients through hipec.NewClient / hipec.Serve / hipec.Dial")
			}
		}
		return true
	})
}
