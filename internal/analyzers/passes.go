package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// This file holds the seven legacy passes, ported from the old per-file
// go/ast walker onto the type-aware engine. Each now matches on resolved
// objects and package paths — a renamed import (`import t "time"`), an
// aliased type, or a cross-package map value are all visible — where the old
// passes matched identifier spelling and failed open on anything indirect.

// wallClockFuncs are the time-package functions that read or wait on the
// real clock. Simulation code must use the substrate clock so runs are
// deterministic and replayable.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func checkWallClock(p *Pkg, report reportFunc) {
	if wallClockExempt[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if ok && pkgFunc(fn, "time", fn.Name()) && wallClockFuncs[fn.Name()] {
				report(sel, "time.%s reads the wall clock in a simulation package; use the substrate clock", fn.Name())
			}
			return true
		})
	}
}

// simClockIdents are the simtime identifiers that pin code to the concrete
// simulation backend. The value types (simtime.Time, simtime.Duration) and
// the scheduler selectors stay legal everywhere: they are substrate-neutral
// vocabulary, not a backend dependency.
var simClockIdents = map[string]bool{
	"Clock": true, "NewClock": true, "NewClockSched": true, "Event": true,
}

// checkSimClock keeps the substrate seam tight: outside internal/substrate,
// engine code must depend on substrate.Clock, never on the concrete
// *simtime.Clock (or its *simtime.Event timer handles). A direct reference
// re-welds the kernel to the simulation and silently breaks the realtime
// backend.
func checkSimClock(p *Pkg, report reportFunc) {
	if simClockExempt[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "hipec/internal/simtime" {
				return true
			}
			if simClockIdents[obj.Name()] {
				report(sel, "simtime.%s pins this package to the simulation backend; depend on substrate.Clock", obj.Name())
			}
			return true
		})
	}
}

// globalRandOK are the math/rand constructors that produce an explicitly
// seeded generator; every other package-level function (Intn, Seed, ...)
// draws from or mutates the shared global source. Methods on a *rand.Rand
// value are always legal — that is the seeded generator itself.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func checkGlobalRand(p *Pkg, report reportFunc) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if ok && pkgFunc(fn, "math/rand", fn.Name()) && !globalRandOK[fn.Name()] {
				report(sel, "rand.%s uses the global math/rand state; use an explicitly seeded *rand.Rand", fn.Name())
			}
			return true
		})
	}
}

// checkErrType requires kernel packages to return typed errors: a return
// statement must not hand back a bare fmt.Errorf whose format lacks %w, or
// an inline errors.New. Both lose the hiperr taxonomy (nothing to match
// with errors.Is). Package-level sentinel declarations stay legal — that is
// exactly where errors.New belongs. The format string is resolved through
// constant folding, so a named format constant is checked too.
func checkErrType(p *Pkg, report reportFunc) {
	if !kernelPkgs[p.Path] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				call, ok := ast.Unparen(res).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn := p.funcFor(call)
				switch {
				case pkgFunc(fn, "fmt", "Errorf"):
					if format, ok := p.constString(call.Args[0]); ok && !strings.Contains(format, "%w") {
						report(call, "returned fmt.Errorf without %%w drops the hiperr error taxonomy; wrap a sentinel")
					}
				case pkgFunc(fn, "errors", "New"):
					report(call, "returned inline errors.New is untyped; declare a package sentinel or wrap a hiperr one")
				}
			}
			return true
		})
	}
}

// constString resolves e to its constant string value via the type-checker's
// constant folding.
func (p *Pkg) constString(e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkGlobalState keeps kernel packages free of package-level mutable
// numeric state and sync/atomic: counters belong in the kevent registry
// (or per-object Stats structs), and package globals leak between the
// independent kernels tests construct. Resolved types catch what the old
// syntactic pass could not: `var n = computeSize()` and named integer types
// are package counters too.
func checkGlobalState(p *Pkg, report reportFunc) {
	if !kernelPkgs[p.Path] {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"sync/atomic"` {
				report(imp, "kernel package imports sync/atomic; counters belong in the kevent registry")
			}
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					v, ok := p.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
						report(name, "package-level numeric var %s in a kernel package; use the kevent registry", name.Name)
					}
				}
			}
		}
	}
}

// checkMapInLoop guards the data-plane overhaul: the fault and pageout hot
// paths replaced their per-access map lookups with dense page-indexed slices
// and intrusive queues, and this pass keeps maps from creeping back. Inside
// any //hipec:hotpath function, indexing or ranging over a value whose
// resolved type is a map is a finding — including maps declared in other
// files or packages, which the old syntactic pass could not see. The sparse
// page-table fallback keeps its map deliberately and carries an inline
// vet-ignore at each probe site.
func checkMapInLoop(p *Pkg, report reportFunc) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hotPathMarked(fd) || fd.Body == nil {
				continue
			}
			isMap := func(e ast.Expr) bool {
				t := p.exprType(e)
				if t == nil {
					return false
				}
				_, ok := t.Underlying().(*types.Map)
				return ok
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.IndexExpr:
					if isMap(v.X) {
						report(v, "map lookup inside hot-path function %s; use a dense index or suppress with a vet-ignore directive", fd.Name.Name)
					}
				case *ast.RangeStmt:
					if isMap(v.X) {
						report(v, "map iteration inside hot-path function %s is allocation- and order-hazardous; use a dense index or suppress with a vet-ignore directive", fd.Name.Name)
					}
				}
				return true
			})
		}
	}
}

// coreLoop reports whether t (after unwrapping pointers) is the
// core.Loop named type.
func coreLoop(t types.Type) bool {
	pkgPath, name, ok := namedType(t)
	return ok && pkgPath == "hipec/internal/core" && name == "Loop"
}

// checkLoopSeam protects the client seam: outside internal/ and the root
// hipec package, nothing may construct a core.Loop directly (core.NewLoop,
// a core.Loop composite literal, or new(core.Loop)). Application code —
// cmd/, examples/ — goes through hipec.NewClient, hipec.Serve or hipec.Dial
// so every entry point carries the Client contract. Inspection-only use of
// internal/core (the compiler and VM tools) stays legal.
func checkLoopSeam(p *Pkg, report reportFunc) {
	if p.Path == "." || strings.HasPrefix(p.Path, "internal") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkgFunc(p.funcFor(n), "hipec/internal/core", "NewLoop") {
					report(n, "core.NewLoop outside internal/; construct clients through hipec.NewClient / hipec.Serve / hipec.Dial")
				}
				if p.isBuiltin(n, "new") && len(n.Args) == 1 {
					if tv, ok := p.Info.Types[n.Args[0]]; ok && tv.IsType() && coreLoop(tv.Type) {
						report(n, "new(core.Loop) outside internal/; construct clients through hipec.NewClient / hipec.Serve / hipec.Dial")
					}
				}
			case *ast.CompositeLit:
				if t := p.exprType(n); t != nil && coreLoop(t) {
					report(n, "core.Loop literal outside internal/; construct clients through hipec.NewClient / hipec.Serve / hipec.Dial")
				}
			}
			return true
		})
	}
}
