// Package hiperr defines the typed error taxonomy of the simulated kernel.
//
// Every failing kernel operation returns (possibly wrapped in layers of
// context) an *Error carrying the operation name and whatever scope — address
// space, container, policy command counter — applies, with a sentinel at the
// bottom of the chain so callers can program against failure classes with
// errors.Is and recover structure with errors.As. The taxonomy is re-exported
// from the root hipec package.
package hiperr

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors: the failure classes the kernel distinguishes. They sit at
// the bottom of wrap chains; match with errors.Is.
var (
	// ErrMinFrame is returned when HiPEC activation cannot grant the
	// requested minimum frame count ("If the minFrame request cannot be
	// satisfied when HiPEC is initially invoked, an error code is
	// returned", §4.3.1).
	ErrMinFrame = errors.New("hipec: minFrame request cannot be satisfied")
	// ErrDiskIO is a paging-device I/O failure (real or injected).
	ErrDiskIO = errors.New("hipec: disk I/O error")
	// ErrPagerLost is a lost or timed-out external-pager interaction
	// (network loss on a remote pager, injected or modeled).
	ErrPagerLost = errors.New("hipec: external pager lost")
	// ErrPolicyFault is a runtime fault in a HiPEC policy program (illegal
	// command, type error, runaway execution, checker kill).
	ErrPolicyFault = errors.New("hipec: policy runtime fault")
	// ErrPolicyRejected is a registration-time rejection by the security
	// checker's static verifier: the spec never becomes a container. It
	// wraps ErrPolicyFault so existing errors.Is(err, ErrPolicyFault)
	// callers keep matching.
	ErrPolicyRejected = fmt.Errorf("hipec: policy rejected by verifier: %w", ErrPolicyFault)
	// ErrRevoked marks operations against a container whose region has been
	// handed back to the default pageout policy by graceful degradation.
	ErrRevoked = errors.New("hipec: container revoked")
	// ErrBadSpec marks a malformed policy spec (bad operand declarations,
	// nonpositive minFrame) that cannot be registered.
	ErrBadSpec = errors.New("hipec: malformed policy spec")
	// ErrBadOperand marks host-API access to a policy operand that does not
	// exist, has the wrong kind, or cannot be written.
	ErrBadOperand = errors.New("hipec: bad operand access")
	// ErrBadRequest marks a malformed client command on the typed command
	// surface (unknown region handle, page index out of range, oversized
	// payload, unparseable wire frame). It is the taxonomy's "caller sent
	// nonsense" class: the kernel state is untouched.
	ErrBadRequest = errors.New("hipec: bad client request")
)

// Error is the typed error for kernel operations. Op names the failing
// operation ("vm.fault", "disk.read", "hipec.exec", ...); Space, Container
// and PC carry scope where applicable (zero means not applicable). Err is the
// cause chain, terminating in one of the sentinels above where the failure
// class is known.
type Error struct {
	Op        string // failing operation, e.g. "vm.pagein"
	Space     int    // address-space ID (0 = n/a)
	Container int    // container ID (0 = n/a)
	PC        int    // policy command counter (0 = n/a)
	Err       error  // cause; nil is not allowed
}

// Error implements error.
func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString(e.Op)
	if e.Space > 0 {
		fmt.Fprintf(&b, " space=%d", e.Space)
	}
	if e.Container > 0 {
		fmt.Fprintf(&b, " container=%d", e.Container)
	}
	if e.PC > 0 {
		fmt.Fprintf(&b, " cc=%d", e.PC)
	}
	b.WriteString(": ")
	if e.Err != nil {
		b.WriteString(e.Err.Error())
	} else {
		b.WriteString("unknown error")
	}
	return b.String()
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }
