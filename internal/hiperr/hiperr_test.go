package hiperr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestErrorFormatting(t *testing.T) {
	e := &Error{Op: "vm.fault", Space: 3, Container: 2, PC: 7, Err: ErrDiskIO}
	s := e.Error()
	for _, want := range []string{"vm.fault", "space=3", "container=2", "cc=7", ErrDiskIO.Error()} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q, missing %q", s, want)
		}
	}
	// Zero scope fields stay out of the message.
	e2 := &Error{Op: "disk.read", Err: ErrDiskIO}
	if s := e2.Error(); strings.Contains(s, "space=") || strings.Contains(s, "container=") || strings.Contains(s, "cc=") {
		t.Errorf("Error() = %q leaks zero scope fields", s)
	}
}

func TestUnwrapChain(t *testing.T) {
	inner := fmt.Errorf("block 42: %w", ErrDiskIO)
	mid := &Error{Op: "disk.read", Err: inner}
	outer := &Error{Op: "vm.pagein", Space: 1, Err: fmt.Errorf("at 0x1000: %w", mid)}

	if !errors.Is(outer, ErrDiskIO) {
		t.Fatalf("errors.Is(outer, ErrDiskIO) = false; chain %v", outer)
	}
	var te *Error
	if !errors.As(outer, &te) {
		t.Fatal("errors.As failed to extract *Error")
	}
	if te.Op != "vm.pagein" || te.Space != 1 {
		t.Errorf("errors.As extracted %+v, want outermost (vm.pagein, space 1)", te)
	}
	// As finds the nested Error once the outer is peeled.
	var te2 *Error
	if !errors.As(te.Err, &te2) || te2.Op != "disk.read" {
		t.Errorf("nested errors.As = %+v, want disk.read", te2)
	}
}

func TestSentinelsDistinct(t *testing.T) {
	sentinels := []error{ErrMinFrame, ErrDiskIO, ErrPagerLost, ErrPolicyFault, ErrRevoked}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %v matches %v", a, b)
			}
		}
	}
}
