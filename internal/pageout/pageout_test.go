package pageout

import (
	"testing"
	"testing/quick"
	"time"

	"hipec/internal/mem"
	"hipec/internal/simtime"
	"hipec/internal/substrate"
	"hipec/internal/vm"
)

func newSys(frames int) (*simtime.Clock, *vm.System, *Daemon) {
	clock := simtime.NewClock()
	sys := vm.NewSystem(substrate.Sim(clock), vm.Config{Frames: frames, PageSize: 4096})
	d := New(sys, Targets{})
	sys.SetDefaultPolicy(d)
	return clock, sys, d
}

func TestDefaultTargetsSane(t *testing.T) {
	tg := DefaultTargets(16384)
	if tg.Reserved <= 0 || tg.Free <= tg.Reserved || tg.Inactive <= tg.Free {
		t.Fatalf("targets not ordered: %+v", tg)
	}
}

func TestFaultsFillActiveQueue(t *testing.T) {
	_, sys, d := newSys(64)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(10 * 4096)
	for a := e.Start; a < e.End; a += 4096 {
		if _, err := sp.Touch(a); err != nil {
			t.Fatal(err)
		}
	}
	if d.Active.Len() != 10 {
		t.Fatalf("active = %d, want 10", d.Active.Len())
	}
}

func TestBalanceReclaimsUnreferenced(t *testing.T) {
	_, sys, d := newSys(32)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(20 * 4096)
	for a := e.Start; a < e.End; a += 4096 {
		sp.Touch(a)
	}
	free := d.FreeCount()
	d.Targets.Free = free + 5
	d.Targets.Inactive = 8
	d.Balance()
	if d.FreeCount() < free+5 {
		t.Fatalf("free = %d, want >= %d", d.FreeCount(), free+5)
	}
	if d.Stats().Deactivations == 0 || d.Stats().Reclaims == 0 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestSecondChancePreservesReferencedPages(t *testing.T) {
	_, sys, d := newSys(32)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(10 * 4096)
	for a := e.Start; a < e.End; a += 4096 {
		sp.Touch(a)
	}
	// Deactivate everything, then re-reference pages 0 and 1.
	d.Targets.Inactive = 10
	d.Balance()
	sp.Touch(e.Start)
	sp.Touch(e.Start + 4096)
	hot0 := e.Object.Resident(0)
	hot1 := e.Object.Resident(4096)
	d.Targets.Free = d.FreeCount() + 8
	d.Balance()
	// Second chance: the referenced pages survive the reclaim pass (they
	// may end up on either queue depending on refill order, as in Mach's
	// vm_pageout_scan), while exactly 8 unreferenced pages are freed.
	if d.Stats().Reactivations < 2 {
		t.Fatalf("Reactivations = %d, want >= 2", d.Stats().Reactivations)
	}
	if e.Object.Resident(0) == nil || e.Object.Resident(4096) == nil {
		t.Fatal("hot pages were evicted")
	}
	if hot0.Queue() == nil || hot1.Queue() == nil {
		t.Fatal("hot pages fell off all queues")
	}
}

func TestDirtyPagesFlushedOnReclaim(t *testing.T) {
	clock, sys, d := newSys(32)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(10 * 4096)
	for a := e.Start; a < e.End; a += 4096 {
		sp.Write(a)
	}
	d.Targets.Inactive = 10
	d.Targets.Free = d.FreeCount() + 10
	d.Balance() // deactivate
	d.Balance() // reclaim (all unreferenced after first pass cleared bits? second chance consumed)
	if d.Stats().Flushes == 0 {
		t.Fatalf("no dirty pages flushed; stats = %+v", d.Stats())
	}
	if sys.Stats().PageOuts == 0 {
		t.Fatal("PageOuts not counted")
	}
	clock.Advance(time.Second) // drain async writes
	if sys.Disk.Inflight() != 0 {
		t.Fatal("flush writes never completed")
	}
}

func TestSteadyStateUnderPressure(t *testing.T) {
	_, sys, d := newSys(16)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(64 * 4096)
	for round := 0; round < 3; round++ {
		for a := e.Start; a < e.End; a += 4096 {
			if _, err := sp.Touch(a); err != nil {
				t.Fatalf("round %d addr %#x: %v", round, a, err)
			}
		}
	}
	if err := d.Active.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := d.Inactive.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every frame is free, queued, or resident-wired: conservation.
	loose := map[*mem.Page]bool{}
	e.Object.EachResident(func(off int64, p *mem.Page) bool {
		if p.Queue() == nil {
			loose[p] = true
		}
		return true
	})
	if err := sys.Frames.Conservation([]*mem.Queue{d.Active, d.Inactive}, loose); err != nil {
		t.Fatal(err)
	}
}

func TestTakeFreeHonorsReserve(t *testing.T) {
	_, _, d := newSys(64)
	got := d.TakeFree(1000) // far more than exists
	if len(got) == 0 {
		t.Fatal("TakeFree returned nothing")
	}
	if d.FreeCount() > d.Targets.Reserved {
		// fine: it stopped early with frames to spare
		t.Logf("free=%d reserve=%d", d.FreeCount(), d.Targets.Reserved)
	}
	if len(got)+d.FreeCount() > 64 {
		t.Fatal("TakeFree fabricated frames")
	}
	for _, p := range got {
		d.ReturnFrame(p)
	}
	if d.FreeCount() != 64 {
		t.Fatalf("free = %d after returning all, want 64", d.FreeCount())
	}
}

func TestTakeFreeStealsFromResident(t *testing.T) {
	_, sys, d := newSys(32)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(28 * 4096)
	for a := e.Start; a < e.End; a += 4096 {
		sp.Touch(a)
	}
	d.Targets.Inactive = 16
	freeBefore := d.FreeCount()
	got := d.TakeFree(freeBefore + 8) // must steal at least 8 resident pages
	if len(got) < freeBefore {
		t.Fatalf("TakeFree returned %d, want >= %d", len(got), freeBefore)
	}
	if sys.Stats().Evictions == 0 {
		t.Fatal("no residents were stolen")
	}
	for _, p := range got {
		d.ReturnFrame(p)
	}
}

func TestStartPeriodicBalances(t *testing.T) {
	clock, sys, d := newSys(32)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(30 * 4096)
	for a := e.Start; a < e.End; a += 4096 {
		sp.Touch(a)
	}
	d.Targets.Free = d.FreeCount() + 5
	d.Targets.Inactive = 8
	before := d.Stats().Balances
	d.StartPeriodic(100 * time.Millisecond)
	clock.Advance(350 * time.Millisecond)
	if d.Stats().Balances <= before {
		t.Fatal("periodic daemon never balanced")
	}
	if d.FreeCount() < d.Targets.Free {
		t.Fatalf("free = %d below target %d after periodic balance", d.FreeCount(), d.Targets.Free)
	}
}

// Property: any access pattern against a small memory keeps the queues
// valid and conserves frames.
func TestPropertyRandomAccessConservation(t *testing.T) {
	f := func(seed uint32, steps uint8) bool {
		_, sys, d := newSys(8)
		sp := sys.NewSpace()
		e, _ := sp.Allocate(32 * 4096)
		addr := e.Start
		state := uint64(seed) | 1
		for i := 0; i < int(steps)+16; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			pageIdx := int64(state>>33) % 32
			addr = e.Start + pageIdx*4096
			if state&(1<<5) != 0 {
				if _, err := sp.Write(addr); err != nil {
					return false
				}
			} else if _, err := sp.Touch(addr); err != nil {
				return false
			}
		}
		if d.Active.Validate() != nil || d.Inactive.Validate() != nil {
			return false
		}
		loose := map[*mem.Page]bool{}
		e.Object.EachResident(func(off int64, p *mem.Page) bool {
			if p.Queue() == nil {
				loose[p] = true
			}
			return true
		})
		return sys.Frames.Conservation([]*mem.Queue{d.Active, d.Inactive}, loose) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateBalanceLoopDoesNotAllocate pins the daemon's steady-state
// hot loop at zero heap allocations: under memory pressure every touch
// faults, runs PageFor -> Balance -> reclaim, and installs the page, and
// none of it may allocate. Clean zero-fill pages are used so the loop
// exercises deactivate/reclaim without the (allocating) disk write path.
func TestSteadyStateBalanceLoopDoesNotAllocate(t *testing.T) {
	_, sys, d := newSys(16)
	sp := sys.NewSpace()
	e, err := sp.Allocate(64 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Prime: cycle every page once so queues, counters and the free pool
	// reach steady state before measuring.
	for a := e.Start; a < e.End; a += 4096 {
		if _, err := sp.Touch(a); err != nil {
			t.Fatal(err)
		}
	}
	i := int64(0)
	if avg := testing.AllocsPerRun(2000, func() {
		if _, err := sp.Touch(e.Start + (i%64)*4096); err != nil {
			t.Fatal(err)
		}
		i++
	}); avg != 0 {
		t.Fatalf("steady-state balance loop allocates %.2f/op, want 0", avg)
	}
	if d.Stats().Balances == 0 || d.Stats().Reclaims == 0 {
		t.Fatalf("loop never balanced: %+v", d.Stats())
	}
}

// TestTakeFreeIntoReusesScratch pins the frame-manager grant path's
// supplier: repeatedly taking frames into a caller-owned buffer and
// returning them must not allocate.
func TestTakeFreeIntoReusesScratch(t *testing.T) {
	_, _, d := newSys(64)
	buf := make([]*mem.Page, 0, 8)
	if avg := testing.AllocsPerRun(200, func() {
		buf = d.TakeFreeInto(buf[:0], 4)
		if len(buf) != 4 {
			t.Fatalf("took %d frames, want 4", len(buf))
		}
		for _, p := range buf {
			d.ReturnFrame(p)
		}
	}); avg != 0 {
		t.Fatalf("TakeFreeInto allocates %.2f/op, want 0", avg)
	}
}
