// Package pageout implements the Mach 3.0 default page-replacement policy —
// FIFO with second chance over active/inactive/free queues (Draves,
// "Page Replacement and Reference Bit Emulation in Mach", USENIX Mach
// Symposium 1991) — as a vm.Policy.
//
// In the paper this daemon plays two roles: it is the fixed LRU-like policy
// that non-specific applications get, and it is the engine of the HiPEC
// global frame manager (§4.3.1), which allocates free frames to specific
// applications and reclaims them under pressure. Package core builds the
// frame manager on top of the Daemon's TakeFree/ReturnFrame interface.
package pageout

import (
	"time"

	"hipec/internal/kevent"
	"hipec/internal/mem"
	"hipec/internal/simtime"
	"hipec/internal/vm"
)

// Targets are the daemon's watermarks, in frames. They correspond to Mach's
// vm_page_free_target, vm_page_inactive_target and vm_page_free_reserved.
type Targets struct {
	Free     int // balance until this many frames are free
	Inactive int // keep this many pages on the inactive queue
	Reserved int // never let free count fall below this without balancing
}

// DefaultTargets derives Mach-like watermarks from the machine size.
func DefaultTargets(frames int) Targets {
	reserved := frames/100 + 4
	free := 2*reserved + 8
	inactive := frames / 3
	return Targets{Free: free, Inactive: inactive, Reserved: reserved}
}

// Stats is a snapshot of daemon activity, derived from the kernel event
// spine.
type Stats struct {
	Balances      int64 // balance passes
	Deactivations int64 // active -> inactive moves
	Reactivations int64 // inactive -> active second chances
	Reclaims      int64 // inactive pages freed
	Flushes       int64 // dirty pages written during reclaim
}

// Daemon is the default pageout policy. It is also the supplier of free
// frames for the HiPEC global frame manager.
type Daemon struct {
	sys      *vm.System
	events   *kevent.Emitter
	Active   *mem.Queue
	Inactive *mem.Queue
	Targets  Targets

	// BalanceCPUCost is charged to the clock per reclaimed frame,
	// modelling the daemon's CPU time (small next to fault service).
	BalanceCPUCost time.Duration
}

// New creates a daemon for sys with the given targets and installs nothing;
// callers typically pass it to sys.SetDefaultPolicy. The daemon emits into
// sys's kernel event spine.
func New(sys *vm.System, t Targets) *Daemon {
	if t == (Targets{}) {
		t = DefaultTargets(sys.Frames.Frames())
	}
	return &Daemon{
		sys:      sys,
		events:   sys.Events,
		Active:   mem.NewQueue("global_active"),
		Inactive: mem.NewQueue("global_inactive"),
		Targets:  t,
	}
}

// Stats reports the daemon's activity counters, derived from the event
// spine.
func (d *Daemon) Stats() Stats {
	sc := d.events.Registry().Global()
	return Stats{
		Balances:      sc.Counts[kevent.EvDaemonBalance],
		Deactivations: sc.Counts[kevent.EvDaemonDeactivate],
		Reactivations: sc.Counts[kevent.EvDaemonReactivate],
		Reclaims:      sc.Counts[kevent.EvDaemonReclaim],
		Flushes:       sc.Counts[kevent.EvDaemonFlush],
	}
}

// Name implements vm.Policy.
func (d *Daemon) Name() string { return "mach-fifo-second-chance" }

// FreeCount reports the machine-wide free frame count (the frame table's
// free queue is Mach's vm_page_free_queue).
func (d *Daemon) FreeCount() int { return d.sys.Frames.FreeCount() }

// PageFor implements vm.Policy: produce one free frame for a fault,
// balancing the queues if the free pool is at or below reserve.
//
//hipec:hotpath
func (d *Daemon) PageFor(f *vm.Fault) (*mem.Page, error) {
	if d.FreeCount() <= d.Targets.Reserved {
		d.Balance()
	}
	p := d.sys.Frames.Alloc()
	if p == nil {
		d.Balance()
		p = d.sys.Frames.Alloc()
	}
	if p == nil {
		return nil, vm.ErrNoMemory
	}
	return p, nil
}

// Installed implements vm.Policy: newly resident pages join the active
// queue (wired pages stay off all queues).
func (d *Daemon) Installed(f *vm.Fault, p *mem.Page) {
	if p.Wired {
		return
	}
	d.Active.EnqueueTail(p)
}

// Release implements vm.Policy: the page is leaving residency for reasons
// outside the daemon's control (object destruction); drop it from our
// queues.
func (d *Daemon) Release(p *mem.Page) {
	if q := p.Queue(); q == d.Active || q == d.Inactive {
		q.Remove(p)
	}
}

// Balance runs the FIFO-with-second-chance pass: refill the inactive queue
// from the head of the active queue (clearing reference bits), then free
// inactive pages, giving referenced ones a second chance on the active
// queue and flushing dirty ones.
//
//hipec:hotpath
func (d *Daemon) Balance() {
	d.events.Emit(kevent.Event{Type: kevent.EvDaemonBalance})
	d.refillInactive()
	for d.FreeCount() < d.Targets.Free && !d.Inactive.Empty() {
		p := d.Inactive.DequeueHead()
		if p.Referenced {
			// Second chance.
			p.Referenced = false
			d.Active.EnqueueTail(p)
			d.events.Emit(kevent.Event{Type: kevent.EvDaemonReactivate, Arg: int64(p.Object), Aux: p.Offset})
			continue
		}
		if p.Modified {
			if err := d.sys.PageOut(p, nil); err != nil {
				// Write-back failed: the page holds the only copy, so it
				// cannot be reclaimed. Re-activate it and abandon the pass —
				// retrying the same dirty page in a loop would spin.
				d.Active.EnqueueTail(p)
				break
			}
			d.events.Emit(kevent.Event{Type: kevent.EvDaemonFlush, Arg: int64(p.Object), Aux: p.Offset})
		}
		d.sys.Detach(p)
		d.sys.Frames.Free(p)
		d.events.Emit(kevent.Event{Type: kevent.EvDaemonReclaim, Arg: int64(p.Object), Aux: p.Offset})
		if d.BalanceCPUCost > 0 {
			d.sys.Clock.Sleep(d.BalanceCPUCost)
		}
		d.refillInactive()
	}
}

//hipec:hotpath
func (d *Daemon) refillInactive() {
	for d.Inactive.Len() < d.Targets.Inactive && !d.Active.Empty() {
		p := d.Active.DequeueHead()
		p.Referenced = false
		d.Inactive.EnqueueTail(p)
		d.events.Emit(kevent.Event{Type: kevent.EvDaemonDeactivate, Arg: int64(p.Object), Aux: p.Offset})
	}
}

// TakeFree extracts up to n frames from the machine free pool for a
// specific application's private list, balancing (stealing from
// non-specific pages) as needed while honouring the reserve. It returns
// fewer than n frames when memory genuinely cannot be reclaimed.
func (d *Daemon) TakeFree(n int) []*mem.Page {
	return d.TakeFreeInto(make([]*mem.Page, 0, n), n)
}

// TakeFreeInto is TakeFree appending into a caller-supplied buffer, so
// steady-state callers (the frame manager's grant path) can reuse scratch
// across rounds instead of allocating a slice per call.
//
//hipec:hotpath
func (d *Daemon) TakeFreeInto(out []*mem.Page, n int) []*mem.Page {
	want := len(out) + n
	for len(out) < want {
		p := d.TakeOne()
		if p == nil {
			break
		}
		out = append(out, p)
	}
	return out
}

// TakeOne extracts a single frame from the machine free pool (balancing as
// TakeFree does), or nil when memory cannot be reclaimed. It never
// allocates: single-frame consumers (FlushExchange) call it directly
// rather than taking a one-element slice.
//
//hipec:hotpath
func (d *Daemon) TakeOne() *mem.Page {
	for {
		if d.FreeCount() <= d.Targets.Reserved {
			before := d.FreeCount()
			d.Balance()
			if d.FreeCount() <= d.Targets.Reserved && d.FreeCount() <= before {
				return nil // no progress possible
			}
			continue
		}
		return d.sys.Frames.Alloc()
	}
}

// ReturnFrame accepts a frame back into the machine free pool. The frame
// must be detached from any object and off all queues.
func (d *Daemon) ReturnFrame(p *mem.Page) {
	d.sys.Frames.Free(p)
}

// StartPeriodic schedules the daemon to wake every interval of virtual time
// and balance when the free pool is below target, mirroring the kernel
// thread. It reschedules itself forever; intended for long-running
// simulations.
func (d *Daemon) StartPeriodic(interval time.Duration) {
	var schedule func()
	schedule = func() {
		d.sys.Clock.After(interval, func(simtime.Time) {
			if d.FreeCount() < d.Targets.Free {
				d.Balance()
			}
			schedule()
		})
	}
	schedule()
}
