// Package isa defines the HiPEC instruction-set architecture: the 32-bit
// command word encoding (Figure 3 of the paper), the 20 operators of Table 1
// plus the §6 extension opcodes, the well-known operand-array slots
// reconstructed from Table 2, the reserved event numbers, and the operand
// kinds. It is the shared leaf vocabulary of the stack: the core kernel,
// the hpl translator and the static verifier all speak in these types
// without importing each other.
//
// # Encoding reconstruction
//
// A HiPEC command is one 32-bit word: an 8-bit operator code followed by
// three 8-bit operand bytes (op1, op2, flag). The paper leaves a few
// semantics implicit; this implementation reconstructs them so that the
// printed example program (Table 2, FIFO with second chance) assembles and
// executes exactly as annotated:
//
//   - Test commands (Comp, Logic, EmptyQ, InQ, Ref, Mod) set the container's
//     condition register (CR). Every non-test command clears CR.
//   - Jump with mode byte 0 branches iff CR is false — the paper's
//     "/* else */ Jump" idiom. Because non-test commands clear CR, a Jump
//     following a non-test command is effectively unconditional, which is
//     how Table 2 uses it. Modes 1 (always) and 2 (branch if CR true) are
//     additionally defined for translator output.
//   - Comparison flags follow Table 2's byte values: 1 is ">", 2 is "<".
//   - Word 0 of every event program is the HiPEC magic number.
package isa

import "fmt"

// Opcode is the 8-bit HiPEC operator code (Table 1).
type Opcode uint8

// The 20 commands of the paper plus the extension opcodes implemented from
// the future-work section (§6).
const (
	OpReturn   Opcode = 0x00 // end of execution; return value in op1
	OpArith    Opcode = 0x01 // integer arithmetic, result into op1
	OpComp     Opcode = 0x02 // integer comparison -> CR
	OpLogic    Opcode = 0x03 // boolean logic -> CR
	OpEmptyQ   Opcode = 0x04 // CR = queue op1 empty
	OpInQ      Opcode = 0x05 // CR = page op2 on queue op1
	OpJump     Opcode = 0x06 // branch to command flag; op1 = mode
	OpDeQueue  Opcode = 0x07 // page op1 <- removed from queue op2 (flag: head/tail)
	OpEnQueue  Opcode = 0x08 // add page op1 to queue op2 (flag: head/tail)
	OpRequest  Opcode = 0x09 // request op1 (int operand) frames from the frame manager
	OpRelease  Opcode = 0x0A // release frame(s) op1 to the frame manager
	OpFlush    Opcode = 0x0B // flush page op1 to disk (asynchronous exchange)
	OpSet      Opcode = 0x0C // set/clear reference or modify bit of page op1
	OpRef      Opcode = 0x0D // CR = page op1 referenced
	OpMod      Opcode = 0x0E // CR = page op1 modified
	OpFind     Opcode = 0x0F // page op1 <- resident page at vaddr (int operand op2)
	OpActivate Opcode = 0x10 // invoke event number op1
	OpFIFO     Opcode = 0x11 // run canned FIFO replacement on queue op1
	OpLRU      Opcode = 0x12 // run canned LRU replacement on queue op1
	OpMRU      Opcode = 0x13 // run canned MRU replacement on queue op1

	// Extension opcodes (disabled unless Spec.EnableExtensions; §6
	// "adding new HiPEC commands is easy").
	OpMigrate Opcode = 0x14 // migrate page op1 to container id in int operand op2
	OpAge     Opcode = 0x15 // halve the age counters of queue op1 (clock-style aging)

	// MaxBaseOpcode and MaxExtOpcode bound the paper's command set and the
	// extended command set respectively.
	MaxBaseOpcode Opcode = OpMRU
	MaxExtOpcode  Opcode = OpAge
)

var opcodeNames = map[Opcode]string{
	OpReturn: "Return", OpArith: "Arith", OpComp: "Comp", OpLogic: "Logic",
	OpEmptyQ: "EmptyQ", OpInQ: "InQ", OpJump: "Jump", OpDeQueue: "DeQueue",
	OpEnQueue: "EnQueue", OpRequest: "Request", OpRelease: "Release",
	OpFlush: "Flush", OpSet: "Set", OpRef: "Ref", OpMod: "Mod", OpFind: "Find",
	OpActivate: "Activate", OpFIFO: "FIFO", OpLRU: "LRU", OpMRU: "MRU",
	OpMigrate: "Migrate", OpAge: "Age",
}

// String returns the mnemonic for the opcode.
func (o Opcode) String() string {
	if n, ok := opcodeNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Opcode(%#02x)", uint8(o))
}

// Arith flags (op1 = op1 OP op2, except Mov/Inc/Dec).
const (
	ArithAdd uint8 = 0 // op1 += op2
	ArithSub uint8 = 1 // op1 -= op2
	ArithMul uint8 = 2 // op1 *= op2
	ArithDiv uint8 = 3 // op1 /= op2 (divide-by-zero is a runtime fault)
	ArithMod uint8 = 4 // op1 %= op2
	ArithMov uint8 = 5 // op1 = op2
	ArithInc uint8 = 6 // op1++
	ArithDec uint8 = 7 // op1--
)

// Comp flags. The values of CompGT and CompLT are fixed by Table 2 of the
// paper (rows "if(_free_count > reserved_target)" = flag 01 and
// "if(_free_count < free_target)" = flag 02).
const (
	CompEQ uint8 = 0
	CompGT uint8 = 1
	CompLT uint8 = 2
	CompNE uint8 = 3
	CompGE uint8 = 4
	CompLE uint8 = 5
)

// Logic flags.
const (
	LogicAnd uint8 = 0
	LogicOr  uint8 = 1
	LogicNot uint8 = 2 // CR = !op1
	LogicXor uint8 = 3
)

// Jump modes (op1 byte).
const (
	JumpIfFalse uint8 = 0 // the paper's "/* else */" conditional
	JumpAlways  uint8 = 1
	JumpIfTrue  uint8 = 2
)

// Queue-end flags for DeQueue/EnQueue, matching Table 2's byte values
// (de_queue_head / en_queue_head use 01, en_queue_tail uses 02).
const (
	QueueHead uint8 = 1
	QueueTail uint8 = 2
)

// Set command selectors: flag1 chooses the bit, flag2 the operation.
const (
	SetBitModify    uint8 = 1
	SetBitReference uint8 = 2 // Table 2 resets the reference bit with flag1=02
	SetOpSet        uint8 = 0
	SetOpClear      uint8 = 1 // Table 2 uses flag2=01 to reset
)

// Magic is the HiPEC magic number occupying word 0 of every event program
// ("HiPE" in ASCII). The security checker rejects programs without it.
const Magic Command = 0x48695045

// Command is one encoded 32-bit HiPEC command word.
type Command uint32

// Encode packs an opcode and three operand bytes into a command word.
func Encode(op Opcode, a, b, c uint8) Command {
	return Command(uint32(op)<<24 | uint32(a)<<16 | uint32(b)<<8 | uint32(c))
}

// Op extracts the opcode.
func (c Command) Op() Opcode { return Opcode(c >> 24) }

// A extracts operand byte 1.
func (c Command) A() uint8 { return uint8(c >> 16) }

// B extracts operand byte 2.
func (c Command) B() uint8 { return uint8(c >> 8) }

// C extracts operand byte 3 (the flag byte).
func (c Command) C() uint8 { return uint8(c) }

// String disassembles the command word.
func (c Command) String() string {
	if c == Magic {
		return "HiPEC-Magic"
	}
	return fmt.Sprintf("%-8s %#02x %#02x %#02x", c.Op(), c.A(), c.B(), c.C())
}

// Program is one event's command sequence: the magic word followed by
// commands. Command counters (jump targets) index this slice directly, so
// CC 0 is the magic word and execution starts at CC 1, matching Table 2's
// numbering.
type Program []Command

// NewProgram builds a program from commands, prepending the magic word.
func NewProgram(cmds ...Command) Program {
	p := make(Program, 0, len(cmds)+1)
	p = append(p, Magic)
	return append(p, cmds...)
}

// Reserved event numbers (§4.2: "a specific application at least has to
// handle the two HiPEC-defined events, PageFault and ReclaimFrame").
const (
	EventPageFault    = 0
	EventReclaimFrame = 1
	// User-defined events are numbered from EventUser upward.
	EventUser = 2
)

// Well-known operand array slots. The byte values are reconstructed from
// the example program in Table 2 of the paper (e.g. slot 0x02 compared
// against 0x0C is "_free_count > reserved_target", slot 0x0B is the page
// register that DeQueue/EnQueue/Ref/Mod operate on).
const (
	SlotScratch       uint8 = 0x00 // general-purpose integer scratch
	SlotFreeQueue     uint8 = 0x01 // container's private free frame list
	SlotFreeCount     uint8 = 0x02 // live length of the free list
	SlotActiveQueue   uint8 = 0x03
	SlotActiveCount   uint8 = 0x04
	SlotInactiveQueue uint8 = 0x05
	SlotInactiveCount uint8 = 0x06
	SlotAllocated     uint8 = 0x07 // frames currently granted to the container
	SlotMinFrame      uint8 = 0x08 // the container's guaranteed minimum
	SlotInactiveTgt   uint8 = 0x09
	SlotFreeTgt       uint8 = 0x0A
	SlotPageReg       uint8 = 0x0B // the page register
	SlotReservedTgt   uint8 = 0x0C
	SlotFaultAddr     uint8 = 0x0D // faulting virtual address (int)
	SlotFaultOffset   uint8 = 0x0E // page-aligned object offset of the fault
	SlotZero          uint8 = 0x0F // constant 0
	SlotOne           uint8 = 0x10 // constant 1

	// SlotUser is the first slot available for application-declared
	// operands (constants, counters, extra queues, page registers).
	SlotUser uint8 = 0x20
)

// Kind is the runtime type of an operand-array entry. The operand array is
// stored in the container with up to 256 entries; "each entry in the
// operand array is a pointer to a variable. The types of the variable can
// be as simple as an unsigned integer, or as complex as the virtual memory
// page structure or page queue list" (§4.2).
type Kind uint8

const (
	KindNone  Kind = iota // unregistered slot
	KindInt               // signed integer variable or constant
	KindBool              // boolean variable
	KindQueue             // page queue list
	KindPage              // page register (may be empty at runtime)
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindQueue:
		return "queue"
	case KindPage:
		return "page"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// SlotInfo describes the static contract of one well-known operand slot:
// its kind, its printable name, whether policies may write it, and — for
// live counters — which queue slot its value mirrors (SlotNoQueue when the
// counter tracks non-queue kernel state such as the grant count).
//
// The table is consumed by the static verifier (which must know builtin
// kinds without constructing a container) and cross-checked against
// core.newContainer by a core test so the two can never drift.
type SlotInfo struct {
	Slot     uint8
	Kind     Kind
	Name     string
	ReadOnly bool
	// LiveQueue is the queue slot whose length this live counter reads,
	// or SlotNoQueue. Only meaningful for live (kernel-maintained) ints.
	LiveQueue uint8
	Live      bool
}

// SlotNoQueue marks a SlotInfo whose value is not a queue length.
const SlotNoQueue uint8 = 0xFF

// WellKnownSlots returns the static contract of the builtin operand slots,
// indexed positionally (not by slot number).
func WellKnownSlots() []SlotInfo {
	return []SlotInfo{
		{Slot: SlotScratch, Kind: KindInt, Name: "_scratch", LiveQueue: SlotNoQueue},
		{Slot: SlotFreeQueue, Kind: KindQueue, Name: "_free_queue", ReadOnly: true, LiveQueue: SlotNoQueue},
		{Slot: SlotFreeCount, Kind: KindInt, Name: "_free_count", ReadOnly: true, Live: true, LiveQueue: SlotFreeQueue},
		{Slot: SlotActiveQueue, Kind: KindQueue, Name: "_active_queue", ReadOnly: true, LiveQueue: SlotNoQueue},
		{Slot: SlotActiveCount, Kind: KindInt, Name: "_active_count", ReadOnly: true, Live: true, LiveQueue: SlotActiveQueue},
		{Slot: SlotInactiveQueue, Kind: KindQueue, Name: "_inactive_queue", ReadOnly: true, LiveQueue: SlotNoQueue},
		{Slot: SlotInactiveCount, Kind: KindInt, Name: "_inactive_count", ReadOnly: true, Live: true, LiveQueue: SlotInactiveQueue},
		{Slot: SlotAllocated, Kind: KindInt, Name: "_allocated", ReadOnly: true, Live: true, LiveQueue: SlotNoQueue},
		{Slot: SlotMinFrame, Kind: KindInt, Name: "_min_frame", ReadOnly: true, Live: true, LiveQueue: SlotNoQueue},
		{Slot: SlotInactiveTgt, Kind: KindInt, Name: "inactive_target", LiveQueue: SlotNoQueue},
		{Slot: SlotFreeTgt, Kind: KindInt, Name: "free_target", LiveQueue: SlotNoQueue},
		{Slot: SlotPageReg, Kind: KindPage, Name: "_page", LiveQueue: SlotNoQueue},
		{Slot: SlotReservedTgt, Kind: KindInt, Name: "reserved_target", LiveQueue: SlotNoQueue},
		{Slot: SlotFaultAddr, Kind: KindInt, Name: "_fault_addr", ReadOnly: true, LiveQueue: SlotNoQueue},
		{Slot: SlotFaultOffset, Kind: KindInt, Name: "_fault_offset", ReadOnly: true, LiveQueue: SlotNoQueue},
		{Slot: SlotZero, Kind: KindInt, Name: "_zero", ReadOnly: true, LiveQueue: SlotNoQueue},
		{Slot: SlotOne, Kind: KindInt, Name: "_one", ReadOnly: true, LiveQueue: SlotNoQueue},
	}
}
