// Package mem models physical memory for the simulated kernel: page frames
// with reference/modify bits, intrusive page queues (the currency of every
// replacement policy in this repository), and the frame table that owns all
// frames.
//
// These types correspond to Mach's vm_page structures and page queues
// (active, inactive, free); the HiPEC container's private frame lists
// (paper §3, §4.1) are built from the same Queue type.
package mem

import (
	"errors"
	"fmt"

	"hipec/internal/simtime"
)

// ErrCorrupt marks a violated memory invariant found by Validate or
// Conservation: a broken queue link or an unaccounted/doubly-accounted
// frame.
var ErrCorrupt = errors.New("mem: invariant violated")

// Page is one physical page frame and its machine-maintained state. A Page
// belongs to at most one Queue at a time (intrusive links); replacement
// policies move pages between queues.
type Page struct {
	Frame  int    // physical frame number, fixed for the page's lifetime
	Object uint64 // owning VM object ID (0 = unowned/free)
	Offset int64  // page-aligned byte offset within the owning object

	Referenced bool // hardware reference bit (emulated)
	Modified   bool // hardware modify/dirty bit (emulated)
	Wired      bool // wired pages are never candidates for replacement

	// LastAccess is the virtual time of the most recent access; it backs
	// the complex LRU/MRU commands. Real Mach approximates this with
	// reference-bit sampling; the simulation has the exact value.
	LastAccess simtime.Time

	// AllocSeq is a monotonically increasing stamp set when the frame is
	// handed to an owner; the global frame manager's forced reclamation
	// walks frames in AllocSeq order (First Allocated, First Reclaimed).
	AllocSeq uint64

	// Data optionally holds page contents (nil when the kernel runs with
	// contents disabled for fault-count-only experiments).
	Data []byte

	queue      *Queue
	prev, next *Page
}

// Queue returns the queue currently holding the page, or nil.
func (p *Page) Queue() *Queue { return p.queue }

// Next returns the page after p on its queue (nil at the tail or when p is
// not enqueued). Together with Queue.Head this supports allocation-free
// iteration on hot paths where an Each callback would capture.
func (p *Page) Next() *Page { return p.next }

// Prev returns the page before p on its queue (nil at the head or when p
// is not enqueued).
func (p *Page) Prev() *Page { return p.prev }

// InQueue reports whether the page is currently on q.
func (p *Page) InQueue(q *Queue) bool { return p.queue == q }

// String implements fmt.Stringer for debugging.
func (p *Page) String() string {
	q := "none"
	if p.queue != nil {
		q = p.queue.Name
	}
	return fmt.Sprintf("page{frame=%d obj=%d off=%d ref=%t mod=%t q=%s}",
		p.Frame, p.Object, p.Offset, p.Referenced, p.Modified, q)
}

// Queue is an intrusive doubly-linked list of pages. The zero value is not
// usable; construct with NewQueue. A page may be on at most one queue;
// enqueueing a page that is already on some queue panics — callers must
// dequeue or Remove first. This strictness catches policy bugs (a frame on
// two lists is exactly the corruption the paper's security checker exists
// to prevent).
type Queue struct {
	Name string
	// AccessOrder asks the VM layer to move a page to the tail of this
	// queue on every resident access, keeping the queue in exact
	// recency order (head = least recently used). This makes the canned
	// LRU/MRU commands O(1) instead of O(n) scans.
	AccessOrder bool

	head, tail *Page
	count      int
}

// NewQueue creates an empty named queue.
func NewQueue(name string) *Queue { return &Queue{Name: name} }

// Len reports the number of pages on the queue.
func (q *Queue) Len() int { return q.count }

// Empty reports whether the queue has no pages.
func (q *Queue) Empty() bool { return q.count == 0 }

// Head returns the first page without removing it, or nil.
func (q *Queue) Head() *Page { return q.head }

// Tail returns the last page without removing it, or nil.
func (q *Queue) Tail() *Page { return q.tail }

func (q *Queue) checkFree(p *Page) {
	if p == nil {
		panic("mem: nil page")
	}
	if p.queue != nil {
		panic(fmt.Sprintf("mem: %v already on queue %q", p, p.queue.Name))
	}
}

// EnqueueHead inserts p at the front of the queue.
func (q *Queue) EnqueueHead(p *Page) {
	q.checkFree(p)
	p.queue = q
	p.next = q.head
	p.prev = nil
	if q.head != nil {
		q.head.prev = p
	} else {
		q.tail = p
	}
	q.head = p
	q.count++
}

// EnqueueTail inserts p at the back of the queue.
func (q *Queue) EnqueueTail(p *Page) {
	q.checkFree(p)
	p.queue = q
	p.prev = q.tail
	p.next = nil
	if q.tail != nil {
		q.tail.next = p
	} else {
		q.head = p
	}
	q.tail = p
	q.count++
}

// DequeueHead removes and returns the first page, or nil if empty.
func (q *Queue) DequeueHead() *Page {
	p := q.head
	if p == nil {
		return nil
	}
	q.unlink(p)
	return p
}

// DequeueTail removes and returns the last page, or nil if empty.
func (q *Queue) DequeueTail() *Page {
	p := q.tail
	if p == nil {
		return nil
	}
	q.unlink(p)
	return p
}

// Remove unlinks p from this queue. It panics if p is not on q.
func (q *Queue) Remove(p *Page) {
	if p == nil || p.queue != q {
		panic(fmt.Sprintf("mem: Remove of page not on queue %q", q.Name))
	}
	q.unlink(p)
}

func (q *Queue) unlink(p *Page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		q.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		q.tail = p.prev
	}
	p.prev, p.next, p.queue = nil, nil, nil
	q.count--
}

// Each calls fn for every page from head to tail; fn returning false stops
// the walk. fn must not mutate the queue.
func (q *Queue) Each(fn func(*Page) bool) {
	for p := q.head; p != nil; p = p.next {
		if !fn(p) {
			return
		}
	}
}

// EachReverse calls fn from tail to head; fn returning false stops the
// walk. fn must not mutate the queue.
func (q *Queue) EachReverse(fn func(*Page) bool) {
	for p := q.tail; p != nil; p = p.prev {
		if !fn(p) {
			return
		}
	}
}

// MoveToTail relocates p (which must be on q) to the tail, preserving the
// recency invariant of AccessOrder queues.
func (q *Queue) MoveToTail(p *Page) {
	if p.queue != q {
		panic(fmt.Sprintf("mem: MoveToTail of page not on queue %q", q.Name))
	}
	if q.tail == p {
		return
	}
	q.unlink(p)
	q.EnqueueTail(p)
}

// FindMin returns the page minimizing key, or nil if the queue is empty.
// Used by the canned LRU command (minimum LastAccess).
func (q *Queue) FindMin(key func(*Page) int64) *Page {
	var best *Page
	var bestKey int64
	for p := q.head; p != nil; p = p.next {
		k := key(p)
		if best == nil || k < bestKey {
			best, bestKey = p, k
		}
	}
	return best
}

// FindMax returns the page maximizing key, or nil if the queue is empty.
// Used by the canned MRU command (maximum LastAccess).
func (q *Queue) FindMax(key func(*Page) int64) *Page {
	var best *Page
	var bestKey int64
	for p := q.head; p != nil; p = p.next {
		k := key(p)
		if best == nil || k > bestKey {
			best, bestKey = p, k
		}
	}
	return best
}

// Validate walks the queue checking structural invariants; it returns an
// error describing the first violation. Intended for tests and the security
// checker's consistency sweep.
func (q *Queue) Validate() error {
	n := 0
	var prev *Page
	for p := q.head; p != nil; p = p.next {
		if p.queue != q {
			return fmt.Errorf("%w: %v linked into %q but queue pointer is wrong", ErrCorrupt, p, q.Name)
		}
		if p.prev != prev {
			return fmt.Errorf("%w: broken prev link at %v in %q", ErrCorrupt, p, q.Name)
		}
		prev = p
		n++
		if n > q.count {
			return fmt.Errorf("%w: cycle or overcount in %q", ErrCorrupt, q.Name)
		}
	}
	if n != q.count {
		return fmt.Errorf("%w: %q count=%d but %d pages linked", ErrCorrupt, q.Name, q.count, n)
	}
	if q.tail != prev {
		return fmt.Errorf("%w: %q tail pointer wrong", ErrCorrupt, q.Name)
	}
	return nil
}

// FrameTable owns every physical page frame in the machine. Frames start on
// the table's free queue; the pageout daemon / global frame manager draws
// from and returns to it.
type FrameTable struct {
	pageSize int
	pages    []Page
	free     *Queue
	keepData bool
	allocSeq uint64
	// arena is the contiguous payload backing when the table was built
	// with NewFrameTableArena; frame i's Data is the i-th pageSize slice.
	arena []byte
}

// NewFrameTable creates a table of frames frames of pageSize bytes each.
// If keepData is set, each allocated frame carries a pageSize byte buffer
// (allocated lazily, per frame, on first Alloc).
func NewFrameTable(frames, pageSize int, keepData bool) *FrameTable {
	if frames <= 0 || pageSize <= 0 {
		panic(fmt.Sprintf("mem: invalid frame table %d x %d", frames, pageSize))
	}
	ft := &FrameTable{
		pageSize: pageSize,
		pages:    make([]Page, frames),
		free:     NewQueue("frame_table_free"),
		keepData: keepData,
	}
	for i := range ft.pages {
		ft.pages[i].Frame = i
		ft.free.EnqueueTail(&ft.pages[i])
	}
	return ft
}

// NewFrameTableArena creates a table whose frames carry real payloads cut
// from one contiguous frames×pageSize arena — physical memory for the
// realtime substrate. Every frame's Data is assigned up front (Alloc never
// allocates), adjacent frames are adjacent in memory, and the whole arena
// is one object to the collector.
func NewFrameTableArena(frames, pageSize int) *FrameTable {
	ft := NewFrameTable(frames, pageSize, true)
	ft.arena = make([]byte, frames*pageSize)
	for i := range ft.pages {
		ft.pages[i].Data = ft.arena[i*pageSize : (i+1)*pageSize : (i+1)*pageSize]
	}
	return ft
}

// HasArena reports whether the table's payloads are arena-backed.
func (ft *FrameTable) HasArena() bool { return ft.arena != nil }

// Frames reports the total number of frames.
func (ft *FrameTable) Frames() int { return len(ft.pages) }

// PageSize reports the frame size in bytes.
func (ft *FrameTable) PageSize() int { return ft.pageSize }

// FreeCount reports the number of frames on the table's free queue.
func (ft *FrameTable) FreeCount() int { return ft.free.Len() }

// Page returns the page descriptor for frame number n.
func (ft *FrameTable) Page(n int) *Page {
	return &ft.pages[n]
}

// Alloc removes one frame from the free queue, stamps its allocation
// sequence, and returns it. It returns nil if no frames are free.
func (ft *FrameTable) Alloc() *Page {
	p := ft.free.DequeueHead()
	if p == nil {
		return nil
	}
	ft.allocSeq++
	p.AllocSeq = ft.allocSeq
	p.Referenced = false
	p.Modified = false
	p.Wired = false
	if ft.keepData && p.Data == nil {
		p.Data = make([]byte, ft.pageSize)
	}
	return p
}

// Free returns a frame to the free queue, clearing its identity. The page
// must not be on any queue.
func (ft *FrameTable) Free(p *Page) {
	if p == nil {
		panic("mem: Free(nil)")
	}
	if p.queue != nil {
		panic(fmt.Sprintf("mem: Free of %v still on queue %q", p, p.queue.Name))
	}
	p.Object = 0
	p.Offset = 0
	p.Referenced = false
	p.Modified = false
	p.Wired = false
	if p.Data != nil {
		for i := range p.Data {
			p.Data[i] = 0
		}
	}
	ft.free.EnqueueTail(p)
}

// AllocN allocates up to n frames, returning as many as are free.
func (ft *FrameTable) AllocN(n int) []*Page {
	out := make([]*Page, 0, n)
	for i := 0; i < n; i++ {
		p := ft.Alloc()
		if p == nil {
			break
		}
		out = append(out, p)
	}
	return out
}

// Conservation checks that every frame is accounted for exactly once across
// the supplied queues plus the table's own free queue plus the set of
// loose pages (pages legitimately off-queue, e.g. wired or in transit).
// It returns an error naming the first unaccounted or doubly-accounted
// frame. Tests and the security checker use this as the global invariant.
func (ft *FrameTable) Conservation(queues []*Queue, loose map[*Page]bool) error {
	seen := make(map[*Page]string, len(ft.pages))
	mark := func(p *Page, where string) error {
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("%w: frame %d in both %s and %s", ErrCorrupt, p.Frame, prev, where)
		}
		seen[p] = where
		return nil
	}
	collect := func(q *Queue) error {
		var err error
		q.Each(func(p *Page) bool {
			err = mark(p, q.Name)
			return err == nil
		})
		return err
	}
	if err := collect(ft.free); err != nil {
		return err
	}
	for _, q := range queues {
		if err := collect(q); err != nil {
			return err
		}
	}
	for p := range loose {
		if err := mark(p, "loose"); err != nil {
			return err
		}
	}
	for i := range ft.pages {
		if _, ok := seen[&ft.pages[i]]; !ok {
			return fmt.Errorf("%w: frame %d unaccounted for", ErrCorrupt, i)
		}
	}
	if len(seen) != len(ft.pages) {
		return fmt.Errorf("%w: %d frames accounted, table has %d", ErrCorrupt, len(seen), len(ft.pages))
	}
	return nil
}
