package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hipec/internal/simtime"
)

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue("q")
	pages := make([]Page, 5)
	for i := range pages {
		pages[i].Frame = i
		q.EnqueueTail(&pages[i])
	}
	if q.Len() != 5 || q.Empty() {
		t.Fatalf("Len=%d Empty=%t", q.Len(), q.Empty())
	}
	for i := 0; i < 5; i++ {
		p := q.DequeueHead()
		if p == nil || p.Frame != i {
			t.Fatalf("dequeue %d got %v", i, p)
		}
		if p.Queue() != nil {
			t.Fatal("dequeued page still has queue pointer")
		}
	}
	if q.DequeueHead() != nil {
		t.Fatal("dequeue from empty queue returned page")
	}
}

func TestQueueLIFOViaHead(t *testing.T) {
	q := NewQueue("q")
	pages := make([]Page, 3)
	for i := range pages {
		pages[i].Frame = i
		q.EnqueueHead(&pages[i])
	}
	for i := 2; i >= 0; i-- {
		if p := q.DequeueHead(); p.Frame != i {
			t.Fatalf("want %d got %d", i, p.Frame)
		}
	}
}

func TestDequeueTail(t *testing.T) {
	q := NewQueue("q")
	pages := make([]Page, 3)
	for i := range pages {
		pages[i].Frame = i
		q.EnqueueTail(&pages[i])
	}
	if p := q.DequeueTail(); p.Frame != 2 {
		t.Fatalf("tail = %d, want 2", p.Frame)
	}
	if p := q.DequeueTail(); p.Frame != 1 {
		t.Fatalf("tail = %d, want 1", p.Frame)
	}
	if p := q.DequeueTail(); p.Frame != 0 {
		t.Fatalf("tail = %d, want 0", p.Frame)
	}
	if q.DequeueTail() != nil {
		t.Fatal("empty DequeueTail returned page")
	}
}

func TestRemoveMiddle(t *testing.T) {
	q := NewQueue("q")
	pages := make([]Page, 3)
	for i := range pages {
		pages[i].Frame = i
		q.EnqueueTail(&pages[i])
	}
	q.Remove(&pages[1])
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.DequeueHead().Frame != 0 || q.DequeueHead().Frame != 2 {
		t.Fatal("wrong order after Remove")
	}
}

func TestRemoveHeadAndTail(t *testing.T) {
	q := NewQueue("q")
	pages := make([]Page, 3)
	for i := range pages {
		pages[i].Frame = i
		q.EnqueueTail(&pages[i])
	}
	q.Remove(&pages[0])
	q.Remove(&pages[2])
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 1 || q.Head() != &pages[1] || q.Tail() != &pages[1] {
		t.Fatal("head/tail wrong after removing ends")
	}
}

func TestDoubleEnqueuePanics(t *testing.T) {
	q1, q2 := NewQueue("a"), NewQueue("b")
	var p Page
	q1.EnqueueTail(&p)
	defer func() {
		if recover() == nil {
			t.Fatal("double enqueue did not panic")
		}
	}()
	q2.EnqueueTail(&p)
}

func TestRemoveFromWrongQueuePanics(t *testing.T) {
	q1, q2 := NewQueue("a"), NewQueue("b")
	var p Page
	q1.EnqueueTail(&p)
	defer func() {
		if recover() == nil {
			t.Fatal("Remove from wrong queue did not panic")
		}
	}()
	q2.Remove(&p)
}

func TestInQueue(t *testing.T) {
	q1, q2 := NewQueue("a"), NewQueue("b")
	var p Page
	q1.EnqueueTail(&p)
	if !p.InQueue(q1) || p.InQueue(q2) {
		t.Fatal("InQueue mismatch")
	}
}

func TestEachStopsEarly(t *testing.T) {
	q := NewQueue("q")
	pages := make([]Page, 5)
	for i := range pages {
		q.EnqueueTail(&pages[i])
	}
	n := 0
	q.Each(func(*Page) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestFindMinMax(t *testing.T) {
	q := NewQueue("q")
	pages := make([]Page, 4)
	access := []int64{30, 10, 40, 20}
	for i := range pages {
		pages[i].Frame = i
		pages[i].LastAccess = simtime.Time(access[i])
		q.EnqueueTail(&pages[i])
	}
	min := q.FindMin(func(p *Page) int64 { return int64(p.LastAccess) })
	max := q.FindMax(func(p *Page) int64 { return int64(p.LastAccess) })
	if min.Frame != 1 {
		t.Fatalf("min frame = %d, want 1", min.Frame)
	}
	if max.Frame != 2 {
		t.Fatalf("max frame = %d, want 2", max.Frame)
	}
	empty := NewQueue("e")
	if empty.FindMin(func(p *Page) int64 { return 0 }) != nil {
		t.Fatal("FindMin on empty queue not nil")
	}
}

func TestFrameTableAllocFree(t *testing.T) {
	ft := NewFrameTable(8, 4096, false)
	if ft.Frames() != 8 || ft.FreeCount() != 8 || ft.PageSize() != 4096 {
		t.Fatalf("table shape wrong: %d/%d/%d", ft.Frames(), ft.FreeCount(), ft.PageSize())
	}
	p := ft.Alloc()
	if p == nil || ft.FreeCount() != 7 {
		t.Fatal("Alloc failed")
	}
	if p.AllocSeq == 0 {
		t.Fatal("AllocSeq not stamped")
	}
	p.Object = 42
	p.Modified = true
	ft.Free(p)
	if ft.FreeCount() != 8 {
		t.Fatal("Free did not return frame")
	}
	if p.Object != 0 || p.Modified {
		t.Fatal("Free did not clear identity")
	}
}

func TestFrameTableExhaustion(t *testing.T) {
	ft := NewFrameTable(2, 4096, false)
	a, b := ft.Alloc(), ft.Alloc()
	if a == nil || b == nil {
		t.Fatal("allocations failed")
	}
	if ft.Alloc() != nil {
		t.Fatal("over-allocation succeeded")
	}
	if a.AllocSeq >= b.AllocSeq {
		t.Fatal("AllocSeq not increasing")
	}
}

func TestFrameTableDataBuffers(t *testing.T) {
	ft := NewFrameTable(1, 64, true)
	p := ft.Alloc()
	if len(p.Data) != 64 {
		t.Fatalf("Data len = %d, want 64", len(p.Data))
	}
	p.Data[0] = 0xFF
	ft.Free(p)
	p2 := ft.Alloc()
	if p2.Data[0] != 0 {
		t.Fatal("Free did not zero data")
	}
}

func TestAllocN(t *testing.T) {
	ft := NewFrameTable(5, 4096, false)
	got := ft.AllocN(3)
	if len(got) != 3 || ft.FreeCount() != 2 {
		t.Fatalf("AllocN(3) gave %d, free %d", len(got), ft.FreeCount())
	}
	got = ft.AllocN(10)
	if len(got) != 2 || ft.FreeCount() != 0 {
		t.Fatalf("AllocN(10) gave %d, free %d", len(got), ft.FreeCount())
	}
}

func TestFreeWhileQueuedPanics(t *testing.T) {
	ft := NewFrameTable(1, 4096, false)
	p := ft.Alloc()
	q := NewQueue("q")
	q.EnqueueTail(p)
	defer func() {
		if recover() == nil {
			t.Fatal("Free of queued page did not panic")
		}
	}()
	ft.Free(p)
}

func TestConservationDetectsLoss(t *testing.T) {
	ft := NewFrameTable(4, 4096, false)
	q := NewQueue("owned")
	p := ft.Alloc()
	q.EnqueueTail(p)
	// One frame allocated but reported in neither queues nor loose: error.
	p2 := ft.Alloc()
	if err := ft.Conservation([]*Queue{q}, nil); err == nil {
		t.Fatal("Conservation missed a lost frame")
	}
	if err := ft.Conservation([]*Queue{q}, map[*Page]bool{p2: true}); err != nil {
		t.Fatalf("Conservation false positive: %v", err)
	}
}

func TestConservationDetectsDuplicate(t *testing.T) {
	ft := NewFrameTable(2, 4096, false)
	q := NewQueue("owned")
	p := ft.Alloc()
	q.EnqueueTail(p)
	if err := ft.Conservation([]*Queue{q}, map[*Page]bool{p: true}); err == nil {
		t.Fatal("Conservation missed a duplicate accounting")
	}
}

// Property: arbitrary sequences of queue operations preserve page
// conservation and structural validity.
func TestPropertyQueueOps(t *testing.T) {
	f := func(seed int64, opsCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const frames = 16
		ft := NewFrameTable(frames, 4096, false)
		qs := []*Queue{NewQueue("a"), NewQueue("b"), NewQueue("c")}
		loose := map[*Page]bool{}
		for op := 0; op < int(opsCount)+20; op++ {
			switch rng.Intn(6) {
			case 0: // alloc to random queue
				if p := ft.Alloc(); p != nil {
					qs[rng.Intn(len(qs))].EnqueueTail(p)
				}
			case 1: // move head between queues
				src := qs[rng.Intn(len(qs))]
				if p := src.DequeueHead(); p != nil {
					qs[rng.Intn(len(qs))].EnqueueHead(p)
				}
			case 2: // move tail between queues
				src := qs[rng.Intn(len(qs))]
				if p := src.DequeueTail(); p != nil {
					qs[rng.Intn(len(qs))].EnqueueTail(p)
				}
			case 3: // free a head
				src := qs[rng.Intn(len(qs))]
				if p := src.DequeueHead(); p != nil {
					ft.Free(p)
				}
			case 4: // detach into loose set
				src := qs[rng.Intn(len(qs))]
				if p := src.DequeueHead(); p != nil {
					loose[p] = true
				}
			case 5: // reattach a loose page
				for p := range loose {
					delete(loose, p)
					qs[rng.Intn(len(qs))].EnqueueTail(p)
					break
				}
			}
		}
		for _, q := range qs {
			if q.Validate() != nil {
				return false
			}
		}
		return ft.Conservation(qs, loose) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEachReverse(t *testing.T) {
	q := NewQueue("q")
	pages := make([]Page, 4)
	for i := range pages {
		pages[i].Frame = i
		q.EnqueueTail(&pages[i])
	}
	var got []int
	q.EachReverse(func(p *Page) bool { got = append(got, p.Frame); return true })
	for i, v := range got {
		if v != 3-i {
			t.Fatalf("reverse order = %v", got)
		}
	}
	n := 0
	q.EachReverse(func(*Page) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMoveToTail(t *testing.T) {
	q := NewQueue("q")
	pages := make([]Page, 3)
	for i := range pages {
		pages[i].Frame = i
		q.EnqueueTail(&pages[i])
	}
	q.MoveToTail(&pages[0])
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Tail() != &pages[0] || q.Head() != &pages[1] {
		t.Fatal("MoveToTail order wrong")
	}
	// Moving the tail is a no-op.
	q.MoveToTail(&pages[0])
	if q.Tail() != &pages[0] || q.Len() != 3 {
		t.Fatal("MoveToTail of tail broke the queue")
	}
}

func TestMoveToTailWrongQueuePanics(t *testing.T) {
	q1, q2 := NewQueue("a"), NewQueue("b")
	var p Page
	q1.EnqueueTail(&p)
	defer func() {
		if recover() == nil {
			t.Fatal("MoveToTail across queues did not panic")
		}
	}()
	q2.MoveToTail(&p)
}

func TestFrameTablePageAccessor(t *testing.T) {
	ft := NewFrameTable(4, 4096, false)
	if ft.Page(2).Frame != 2 {
		t.Fatal("Page accessor wrong")
	}
}
