package vm

import (
	"errors"
	"testing"

	"hipec/internal/mem"
	"hipec/internal/simtime"
	"hipec/internal/substrate"
)

// stubPolicy hands out frames straight from the frame table and keeps an
// active list, enough to exercise the fault path without package pageout
// (which would be an import cycle in tests).
type stubPolicy struct {
	sys    *System
	active *mem.Queue
	fails  bool
}

func newStub(sys *System) *stubPolicy {
	return &stubPolicy{sys: sys, active: mem.NewQueue("stub_active")}
}

func (s *stubPolicy) Name() string { return "stub" }
func (s *stubPolicy) PageFor(f *Fault) (*mem.Page, error) {
	if s.fails {
		return nil, ErrNoMemory
	}
	p := s.sys.Frames.Alloc()
	if p == nil {
		// evict oldest
		victim := s.active.DequeueHead()
		if victim == nil {
			return nil, ErrNoMemory
		}
		if victim.Modified {
			s.sys.PageOut(victim, nil)
		}
		s.sys.Detach(victim)
		s.sys.Frames.Free(victim)
		p = s.sys.Frames.Alloc()
	}
	return p, nil
}
func (s *stubPolicy) Installed(f *Fault, p *mem.Page) {
	if !p.Wired {
		s.active.EnqueueTail(p)
	}
}
func (s *stubPolicy) Release(p *mem.Page) {
	if p.Queue() == s.active {
		s.active.Remove(p)
	}
}

func newTestSystem(t *testing.T, frames int) (*simtime.Clock, *System, *stubPolicy) {
	t.Helper()
	clock := simtime.NewClock()
	sys := NewSystem(substrate.Sim(clock), Config{Frames: frames, PageSize: 4096, KeepData: true})
	pol := newStub(sys)
	sys.SetDefaultPolicy(pol)
	return clock, sys, pol
}

func TestZeroFillFaultAndHit(t *testing.T) {
	clock, sys, _ := newTestSystem(t, 16)
	sp := sys.NewSpace()
	e, err := sp.Allocate(8 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	p, err := sp.Touch(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now().Sub(before) < sys.Costs.FaultService {
		t.Fatal("fault did not charge service time")
	}
	if !p.Referenced || p.Modified {
		t.Fatalf("bits after read fault: ref=%t mod=%t", p.Referenced, p.Modified)
	}
	if sp.Stats().Faults != 1 || sp.Stats().ZeroFills != 1 || sp.Stats().PageIns != 0 {
		t.Fatalf("stats = %+v", sp.Stats())
	}
	// Second access: hit, no fault.
	p2, err := sp.Touch(e.Start + 100)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Fatal("same-page access returned different page")
	}
	if sp.Stats().Faults != 1 || sp.Stats().Hits != 1 {
		t.Fatalf("stats after hit = %+v", sp.Stats())
	}
}

func TestWriteSetsModified(t *testing.T) {
	_, sys, _ := newTestSystem(t, 16)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(4096)
	p, err := sp.Write(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Modified {
		t.Fatal("write fault did not set Modified")
	}
}

func TestUnmappedAddressFails(t *testing.T) {
	_, sys, _ := newTestSystem(t, 16)
	sp := sys.NewSpace()
	if _, err := sp.Touch(0xdeadbeef); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("err = %v, want ErrBadAddress", err)
	}
}

func TestMappedFileFaultsPageIn(t *testing.T) {
	clock, sys, _ := newTestSystem(t, 16)
	obj := sys.NewObject(2*4096, false)
	content := make([]byte, 2*4096)
	content[0] = 0xAB
	content[4096] = 0xCD
	if err := sys.Populate(obj, content); err != nil {
		t.Fatal(err)
	}
	sp := sys.NewSpace()
	e, err := sp.Map(obj, 0, obj.Size)
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	p, err := sp.Touch(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Stats().PageIns != 1 {
		t.Fatalf("PageIns = %d, want 1", sp.Stats().PageIns)
	}
	if p.Data[0] != 0xAB {
		t.Fatalf("page data = %#x, want 0xAB", p.Data[0])
	}
	ioTime := clock.Now().Sub(before)
	if ioTime < sys.Disk.PageReadTime(4096) {
		t.Fatalf("page-in charged %v, expected at least disk read time", ioTime)
	}
	p2, _ := sp.Touch(e.Start + 4096)
	if p2.Data[0] != 0xCD {
		t.Fatal("second page content wrong")
	}
}

func TestReplacementUnderPressure(t *testing.T) {
	_, sys, _ := newTestSystem(t, 4)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(16 * 4096)
	for addr := e.Start; addr < e.End; addr += 4096 {
		if _, err := sp.Touch(addr); err != nil {
			t.Fatalf("touch %#x: %v", addr, err)
		}
	}
	if sp.Stats().Faults != 16 {
		t.Fatalf("Faults = %d, want 16", sp.Stats().Faults)
	}
	if got := e.Object.ResidentCount(); got > 4 {
		t.Fatalf("resident = %d with only 4 frames", got)
	}
	if sys.Stats().Evictions < 12 {
		t.Fatalf("Evictions = %d, want >= 12", sys.Stats().Evictions)
	}
}

func TestEvictedDirtyPageRestoredFromStore(t *testing.T) {
	_, sys, _ := newTestSystem(t, 2)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(8 * 4096)
	// Dirty page 0.
	p, _ := sp.Write(e.Start)
	p.Data[10] = 0x77
	// Evict it by touching the rest.
	for addr := e.Start + 4096; addr < e.End; addr += 4096 {
		if _, err := sp.Touch(addr); err != nil {
			t.Fatal(err)
		}
	}
	if e.Object.Resident(0) != nil {
		t.Fatal("page 0 still resident; cannot test restore")
	}
	p2, err := sp.Touch(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Data[10] != 0x77 {
		t.Fatal("dirty data lost across eviction")
	}
	if sp.Stats().PageIns == 0 {
		t.Fatal("restore did not count as page-in")
	}
}

func TestPolicyFailurePropagates(t *testing.T) {
	_, sys, pol := newTestSystem(t, 4)
	pol.fails = true
	sp := sys.NewSpace()
	e, _ := sp.Allocate(4096)
	if _, err := sp.Touch(e.Start); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
}

func TestWireRange(t *testing.T) {
	_, sys, pol := newTestSystem(t, 8)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(3 * 4096)
	n, err := sp.WireRange(e)
	if err != nil || n != 3 {
		t.Fatalf("WireRange = %d, %v", n, err)
	}
	if pol.active.Len() != 0 {
		t.Fatal("wired pages were placed on the active queue")
	}
	e.Object.EachResident(func(off int64, p *mem.Page) bool {
		if !p.Wired {
			t.Errorf("page at %d not wired", off)
		}
		return true
	})
}

func TestObjectRoundsToPageSize(t *testing.T) {
	_, sys, _ := newTestSystem(t, 8)
	o := sys.NewObject(100, true)
	if o.Size != 4096 {
		t.Fatalf("Size = %d, want 4096", o.Size)
	}
}

func TestMapValidation(t *testing.T) {
	_, sys, _ := newTestSystem(t, 8)
	sp := sys.NewSpace()
	o := sys.NewObject(4096, true)
	if _, err := sp.Map(o, 100, 4096); err == nil {
		t.Fatal("unaligned map offset accepted")
	}
	if _, err := sp.Map(o, 0, 2*4096); err == nil {
		t.Fatal("map beyond object size accepted")
	}
	if _, err := sp.Map(o, 0, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestMultipleRegionsIndependent(t *testing.T) {
	_, sys, _ := newTestSystem(t, 32)
	sp := sys.NewSpace()
	a, _ := sp.Allocate(2 * 4096)
	b, _ := sp.Allocate(2 * 4096)
	if a.End > b.Start {
		t.Fatal("regions overlap")
	}
	pa, _ := sp.Touch(a.Start)
	pb, _ := sp.Touch(b.Start)
	if pa == pb || pa.Object == pb.Object {
		t.Fatal("regions share pages/objects")
	}
	if ea, ok := sp.Lookup(a.Start + 4097); !ok || ea != a {
		t.Fatal("Lookup failed inside region a")
	}
	if _, ok := sp.Lookup(a.End); ok {
		t.Fatal("Lookup succeeded in guard gap")
	}
}

func TestDestroyObjectFreesFrames(t *testing.T) {
	_, sys, _ := newTestSystem(t, 8)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(4 * 4096)
	for addr := e.Start; addr < e.End; addr += 4096 {
		sp.Touch(addr)
	}
	freeBefore := sys.Frames.FreeCount()
	sys.DestroyObject(e.Object)
	if got := sys.Frames.FreeCount(); got != freeBefore+4 {
		t.Fatalf("free = %d, want %d", got, freeBefore+4)
	}
	if sys.Object(e.Object.ID) != nil {
		t.Fatal("object still registered")
	}
}

func TestAccessCountsPerSpaceAndGlobal(t *testing.T) {
	_, sys, _ := newTestSystem(t, 8)
	sp1 := sys.NewSpace()
	sp2 := sys.NewSpace()
	e1, _ := sp1.Allocate(4096)
	e2, _ := sp2.Allocate(4096)
	sp1.Touch(e1.Start)
	sp1.Touch(e1.Start)
	sp2.Touch(e2.Start)
	if sp1.Stats().Accesses != 2 || sp2.Stats().Accesses != 1 {
		t.Fatalf("per-space accesses: %d, %d", sp1.Stats().Accesses, sp2.Stats().Accesses)
	}
	if sys.Stats().Accesses != 3 || sys.Stats().Faults != 2 || sys.Stats().Hits != 1 {
		t.Fatalf("global stats = %+v", sys.Stats())
	}
}

func TestDetachNonResidentPanics(t *testing.T) {
	_, sys, _ := newTestSystem(t, 8)
	p := sys.Frames.Alloc()
	p.Object = 999
	defer func() {
		if recover() == nil {
			t.Fatal("Detach of non-resident page did not panic")
		}
	}()
	sys.Detach(p)
}

func TestPageOutSyncWritesThrough(t *testing.T) {
	clock, sys, _ := newTestSystem(t, 4)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(4096)
	p, _ := sp.Write(e.Start)
	p.Data[3] = 0x3C
	before := clock.Now()
	sys.PageOutSync(p)
	if clock.Now() == before {
		t.Fatal("sync page-out did not advance the clock")
	}
	if p.Modified {
		t.Fatal("Modified bit not cleared")
	}
	// Evict and refault: data must come back.
	sys.Detach(p)
	pol := sys.DefaultPolicy().(*stubPolicy)
	pol.active.Remove(p)
	sys.Frames.Free(p)
	p2, err := sp.Touch(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Data[3] != 0x3C {
		t.Fatal("synchronously flushed data lost")
	}
}

func TestEntriesAndSize(t *testing.T) {
	_, sys, _ := newTestSystem(t, 8)
	sp := sys.NewSpace()
	a, _ := sp.Allocate(2 * 4096)
	b, _ := sp.Allocate(4096)
	if len(sp.Entries()) != 2 {
		t.Fatalf("Entries = %d", len(sp.Entries()))
	}
	if a.Size() != 2*4096 || b.Size() != 4096 {
		t.Fatal("Size wrong")
	}
	if sys.DefaultPolicy() == nil {
		t.Fatal("DefaultPolicy accessor nil")
	}
}

func TestDiskAddrScatter(t *testing.T) {
	_, sys, _ := newTestSystem(t, 8)
	o := sys.NewObject(16*4096, false)
	if err := sys.Populate(o, nil); err != nil {
		t.Fatal(err)
	}
	sp := sys.NewSpace()
	e, _ := sp.Map(o, 0, o.Size)
	// Sequential page-ins of consecutive pages must NOT hit the disk's
	// sequential fast path (swap blocks are scattered).
	sp.Touch(e.Start)
	sp.Touch(e.Start + 4096)
	if sys.Disk.Stats().SeqHits != 0 {
		t.Fatal("page-in addresses were sequential; swap should scatter")
	}
}

func TestUnmap(t *testing.T) {
	_, sys, _ := newTestSystem(t, 8)
	sp := sys.NewSpace()
	a, _ := sp.Allocate(4096)
	b, _ := sp.Allocate(4096)
	sp.Touch(a.Start)
	if err := sp.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(a.Start); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("unmapped access err = %v", err)
	}
	if _, err := sp.Touch(b.Start); err != nil {
		t.Fatalf("unrelated entry broken: %v", err)
	}
	if err := sp.Unmap(a); err == nil {
		t.Fatal("double unmap accepted")
	}
}
