package vm

import (
	"errors"
	"testing"

	"hipec/internal/kevent"
)

// TestEventSpineSpaceStatsSumToSystem is the bookkeeping invariant that the
// event spine exists to enforce: per-space statistics and system statistics
// are two views derived from the same event stream, so the per-access
// counters summed over every space must equal the system totals exactly.
// (PageOuts and Evictions are system-scoped — the pageout path runs on
// behalf of the machine, not one space — so their per-space values are
// zero by construction.)
func TestEventSpineSpaceStatsSumToSystem(t *testing.T) {
	_, sys, _ := newTestSystem(t, 24) // small: forces evictions and pageouts

	const ps = 4096
	spaces := make([]*AddressSpace, 3)
	entries := make([]*MapEntry, 3)
	for i := range spaces {
		spaces[i] = sys.NewSpace()
		e, err := spaces[i].Allocate(16 * ps)
		if err != nil {
			t.Fatal(err)
		}
		entries[i] = e
	}

	// Mixed workload: reads, writes (dirty pages that must be laundered on
	// eviction), re-touches after eviction (pageins), and bad addresses.
	for round := 0; round < 4; round++ {
		for i, sp := range spaces {
			for pg := int64(0); pg < 16; pg += int64(i + 1) {
				addr := entries[i].Start + pg*ps
				var err error
				if (round+int(pg))%2 == 0 {
					_, err = sp.Write(addr)
				} else {
					_, err = sp.Touch(addr)
				}
				if err != nil {
					t.Fatalf("space %d addr %#x: %v", i, addr, err)
				}
				// Immediate re-touch: still resident, counts as a hit.
				if _, err := sp.Touch(addr); err != nil {
					t.Fatalf("space %d re-touch %#x: %v", i, addr, err)
				}
			}
			if _, err := sp.Touch(1 << 40); !errors.Is(err, ErrBadAddress) {
				t.Fatalf("space %d: bad address returned %v", i, err)
			}
		}
	}

	var sum Stats
	for _, sp := range spaces {
		st := sp.Stats()
		if st.PageOuts != 0 || st.Evictions != 0 {
			t.Fatalf("space %d reports system-scoped counters: %+v", sp.ID, st)
		}
		sum.Accesses += st.Accesses
		sum.Hits += st.Hits
		sum.Faults += st.Faults
		sum.PageIns += st.PageIns
		sum.ZeroFills += st.ZeroFills
	}

	total := sys.Stats()
	if total.Accesses == 0 || total.Faults == 0 || total.Hits == 0 {
		t.Fatalf("workload produced no traffic: %+v", total)
	}
	if total.PageOuts == 0 || total.Evictions == 0 {
		t.Fatalf("workload never overflowed memory: %+v", total)
	}
	if sum.Accesses != total.Accesses ||
		sum.Hits != total.Hits ||
		sum.Faults != total.Faults ||
		sum.PageIns != total.PageIns ||
		sum.ZeroFills != total.ZeroFills {
		t.Fatalf("per-space sum %+v != system %+v", sum, total)
	}
	if total.Accesses != total.Hits+total.Faults+sys.Events.Registry().Count(kevent.EvBadAddress) {
		t.Fatalf("accesses %d != hits %d + faults %d + bad addresses", total.Accesses, total.Hits, total.Faults)
	}
	if total.Faults != total.PageIns+total.ZeroFills {
		t.Fatalf("faults %d != pageins %d + zerofills %d", total.Faults, total.PageIns, total.ZeroFills)
	}
}
