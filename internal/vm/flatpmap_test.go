package vm

import (
	"fmt"
	"math/rand"
	"testing"

	"hipec/internal/kevent"
	"hipec/internal/mem"
	"hipec/internal/simtime"
	"hipec/internal/substrate"
)

// traceSink records every kernel event as a comparable string.
type traceSink struct {
	events []string
}

func (t *traceSink) Emit(ev kevent.Event) {
	t.events = append(t.events, fmt.Sprintf("%v %d sp=%d addr=%#x arg=%d aux=%d f=%v",
		ev.Time, ev.Type, ev.Space, ev.Addr, ev.Arg, ev.Aux, ev.Flag))
}

// greedyPolicy is a minimal replacement policy for the differential fuzz:
// allocate until the frame table is empty, then evict the head of its FIFO
// queue. It is fully deterministic given the access sequence.
type greedyPolicy struct {
	sys   *System
	queue *mem.Queue
}

func (g *greedyPolicy) Name() string { return "fuzz-greedy" }
func (g *greedyPolicy) PageFor(f *Fault) (*mem.Page, error) {
	if p := g.sys.Frames.Alloc(); p != nil {
		return p, nil
	}
	victim := g.queue.DequeueHead()
	if victim == nil {
		return nil, ErrNoMemory
	}
	if victim.Modified {
		if err := g.sys.PageOutSync(victim); err != nil {
			return nil, err
		}
	}
	g.sys.Detach(victim)
	return victim, nil
}
func (g *greedyPolicy) Installed(f *Fault, p *mem.Page) { g.queue.EnqueueTail(p) }
func (g *greedyPolicy) Release(p *mem.Page) {
	if p.Queue() == g.queue {
		g.queue.Remove(p)
	}
}

// buildFuzzSystem constructs a small deterministic system with the given
// page-table mode and returns it with its trace sink.
func buildFuzzSystem(forceSparse bool) (*System, *traceSink) {
	clock := simtime.NewClock()
	s := NewSystem(substrate.Sim(clock), Config{Frames: 24, PageSize: 4096})
	s.ForceSparseObjects = forceSparse
	sink := &traceSink{}
	s.Events.Attach(sink)
	s.SetDefaultPolicy(&greedyPolicy{sys: s, queue: mem.NewQueue("fuzz")})
	return s, sink
}

// driveFuzz applies a seeded random schedule of touches, writes, evict
// pressure, unmaps, remaps and object destruction to the system. Both
// page-table modes see the exact same schedule.
func driveFuzz(t *testing.T, s *System, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sp := s.NewSpace()
	const ps = 4096

	type region struct {
		e *MapEntry
		o *Object
	}
	var regions []region
	newRegion := func() {
		pages := int64(rng.Intn(12) + 1)
		o := s.NewObject(pages*ps, rng.Intn(2) == 0)
		if !o.ZeroFill {
			if err := s.Populate(o, nil); err != nil {
				t.Fatal(err)
			}
		}
		e, err := sp.Map(o, 0, pages*ps)
		if err != nil {
			t.Fatalf("map: %v", err)
		}
		regions = append(regions, region{e, o})
	}
	for i := 0; i < 3; i++ {
		newRegion()
	}

	for op := 0; op < 600; op++ {
		switch rng.Intn(12) {
		case 0: // map a fresh region
			if len(regions) < 8 {
				newRegion()
			}
		case 1: // unmap + destroy a region
			if len(regions) > 1 {
				i := rng.Intn(len(regions))
				r := regions[i]
				if err := sp.Unmap(r.e); err != nil {
					t.Fatalf("unmap: %v", err)
				}
				s.DestroyObject(r.o)
				regions = append(regions[:i], regions[i+1:]...)
			}
		case 2: // out-of-range access
			if _, err := sp.Touch(int64(1) << 40); err == nil {
				t.Fatal("expected bad address")
			}
		default: // touch or write within a random region
			r := regions[rng.Intn(len(regions))]
			addr := r.e.Start + int64(rng.Intn(int(r.e.Size()/ps)))*ps + int64(rng.Intn(ps))
			var err error
			if rng.Intn(3) == 0 {
				_, err = sp.Write(addr)
			} else {
				_, err = sp.Touch(addr)
			}
			if err != nil {
				t.Fatalf("access %#x: %v", addr, err)
			}
		}
	}
}

// TestFlatSparseDifferentialFuzz drives identical random fault/evict/unmap
// schedules through a flat-pmap system and a forced-sparse (map-backed
// reference) system and requires byte-identical event traces — the
// data-plane swap must be observationally invisible.
func TestFlatSparseDifferentialFuzz(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			flatSys, flatTrace := buildFuzzSystem(false)
			sparseSys, sparseTrace := buildFuzzSystem(true)
			driveFuzz(t, flatSys, seed)
			driveFuzz(t, sparseSys, seed)
			if len(flatTrace.events) != len(sparseTrace.events) {
				t.Fatalf("trace lengths differ: flat %d, sparse %d",
					len(flatTrace.events), len(sparseTrace.events))
			}
			for i := range flatTrace.events {
				if flatTrace.events[i] != sparseTrace.events[i] {
					t.Fatalf("traces diverge at event %d:\n  flat:   %s\n  sparse: %s",
						i, flatTrace.events[i], sparseTrace.events[i])
				}
			}
			if flatTrace.events[len(flatTrace.events)-1] == "" {
				t.Fatal("empty trace entry")
			}
		})
	}
}

// TestFlatPmapModeSelection pins the dense/sparse choice: ordinary objects
// get the flat table, oversized ones and forced-sparse systems get the map.
func TestFlatPmapModeSelection(t *testing.T) {
	s, _ := buildFuzzSystem(false)
	if o := s.NewObject(64*4096, true); o.flat == nil || o.sparse != nil {
		t.Fatal("small object did not get a flat table")
	}
	if o := s.NewObject((flatMaxPages+1)*4096, true); o.sparse == nil || o.flat != nil {
		t.Fatal("oversized object did not fall back to sparse")
	}
	s.ForceSparseObjects = true
	if o := s.NewObject(64*4096, true); o.sparse == nil {
		t.Fatal("ForceSparseObjects ignored")
	}
}

// TestObjectIDsNeverReused pins the generation property of the object
// table: destroying objects must not recycle their IDs, so a stale ID
// resolves to nil rather than to a different object.
func TestObjectIDsNeverReused(t *testing.T) {
	s, _ := buildFuzzSystem(false)
	a := s.NewObject(4096, true)
	s.DestroyObject(a)
	b := s.NewObject(4096, true)
	if b.ID == a.ID {
		t.Fatalf("object ID %d reused after destroy", a.ID)
	}
	if got := s.Object(a.ID); got != nil {
		t.Fatalf("stale ID %d resolved to %+v", a.ID, got)
	}
	if got := s.Object(b.ID); got != b {
		t.Fatal("live ID did not resolve")
	}
	if got := s.Object(1 << 30); got != nil {
		t.Fatal("out-of-range ID resolved")
	}
}

// buildQuietSystem is buildFuzzSystem without the string-building trace
// sink, for allocation measurements.
func buildQuietSystem() *System {
	s := NewSystem(substrate.NewSimClock(), Config{Frames: 24, PageSize: 4096})
	s.SetDefaultPolicy(&greedyPolicy{sys: s, queue: mem.NewQueue("fuzz")})
	return s
}

// TestResidentHitPathDoesNotAllocate pins the tentpole's 0-alloc claim at
// the vm layer: a resident read/write hit performs no heap allocation.
func TestResidentHitPathDoesNotAllocate(t *testing.T) {
	s := buildQuietSystem()
	sp := s.NewSpace()
	o := s.NewObject(16*4096, true)
	e, err := sp.Map(o, 0, 16*4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := sp.Touch(e.Start); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("resident hit allocates %.1f/op, want 0", avg)
	}
}

// TestFaultPathDoesNotAllocateFaultRecords pins the pooled-Fault change:
// steady-state faulting (hit + evict + zero-fill refault) must not allocate
// Fault records. The policy itself is allocation-free, so the only
// allocations permitted are none.
func TestFaultPathDoesNotAllocateFaultRecords(t *testing.T) {
	s := buildQuietSystem()
	sp := s.NewSpace()
	// More pages than frames so every touch in the cycle faults.
	o := s.NewObject(64*4096, true)
	e, err := sp.Map(o, 0, 64*4096)
	if err != nil {
		t.Fatal(err)
	}
	addr, step := e.Start, int64(4096)
	// Prime: cycle through all pages once so the frame pool is exhausted
	// and the steady state is fault+evict.
	for i := int64(0); i < 64; i++ {
		if _, err := sp.Touch(e.Start + i*step); err != nil {
			t.Fatal(err)
		}
	}
	i := int64(0)
	if avg := testing.AllocsPerRun(500, func() {
		if _, err := sp.Touch(addr + (i%64)*step); err != nil {
			t.Fatal(err)
		}
		i++
	}); avg != 0 {
		t.Fatalf("fault path allocates %.2f/op, want 0", avg)
	}
}
