// Package vm implements the Mach-3.0-like virtual memory substrate that
// HiPEC plugs into: address spaces made of map entries, VM objects with
// resident-page tables, and the page-fault state machine.
//
// The design mirrors the structures named in the paper: a VM object
// "represents a segment of virtual memory region that can be a memory-mapped
// data file or a segment of address space with the same protection
// attributes" (§4.1), the region (map entry) is the unit of specific
// control (§3), and page replacement is delegated to a Policy — either the
// default pageout daemon (package pageout) or a HiPEC container
// (package core).
package vm

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"time"

	"hipec/internal/disk"
	"hipec/internal/faultinj"
	"hipec/internal/hiperr"
	"hipec/internal/kevent"
	"hipec/internal/mem"
	"hipec/internal/simtime"
	"hipec/internal/substrate"
)

// Costs are the calibrated CPU costs charged to the virtual clock by the VM
// layer. Defaults reproduce the paper's testbed (see DESIGN.md §4).
type Costs struct {
	// FaultService is the base cost of the kernel fault path exclusive of
	// disk I/O and policy execution. Calibrated from Table 3:
	// 4016.5 ms / 10240 faults ≈ 392 µs.
	FaultService time.Duration
	// MemAccess is the cost charged for a resident (non-faulting) access.
	MemAccess time.Duration
	// RegionCheck is the extra cost added to every fault when the kernel
	// is built with HiPEC support (the "checking statements ... to decide
	// whether the faulted virtual address is located in the regions
	// controlled by the specific applications", §5.2).
	RegionCheck time.Duration
}

// DefaultCosts returns the calibration documented in EXPERIMENTS.md.
func DefaultCosts() Costs {
	return Costs{
		FaultService: 392 * time.Microsecond,
		MemAccess:    0,
		RegionCheck:  200 * time.Nanosecond,
	}
}

// Stats is a snapshot of VM activity, derived from the kernel event spine
// (package kevent). System.Stats() reports machine-wide totals;
// AddressSpace.Stats() reports one space's share. There is no separate
// bookkeeping: every counter is a view over the event registry, so
// per-space and system totals can never drift apart.
type Stats struct {
	Accesses  int64
	Hits      int64
	Faults    int64
	PageIns   int64 // faults served from backing store (disk read)
	ZeroFills int64 // faults served by zero-fill
	PageOuts  int64 // dirty pages written to backing store
	Evictions int64 // resident pages detached by a policy
}

// statsFromScope derives a Stats snapshot from one registry scope.
func statsFromScope(sc *kevent.ScopeCounters) Stats {
	hits := sc.Counts[kevent.EvHit]
	faults := sc.Counts[kevent.EvFault]
	return Stats{
		Accesses:  hits + faults + sc.Counts[kevent.EvBadAddress],
		Hits:      hits,
		Faults:    faults,
		PageIns:   sc.Counts[kevent.EvPageIn],
		ZeroFills: sc.Counts[kevent.EvZeroFill],
		PageOuts:  sc.Counts[kevent.EvPageOut],
		Evictions: sc.Counts[kevent.EvEviction],
	}
}

// Fault describes one page fault being serviced; it is handed to the
// responsible Policy.
type Fault struct {
	Space  *AddressSpace
	Entry  *MapEntry
	Object *Object
	Offset int64 // page-aligned offset within Object
	Addr   int64 // faulting virtual address
	Write  bool
}

// Policy decides page replacement for the regions it controls.
//
// PageFor must return a frame not attached to any object and not on any
// queue; the fault handler installs it. Installed is called after the page
// is resident so the policy can track it (e.g. place it on an active
// queue). Release is called when the VM layer detaches a resident page on
// object destruction; the policy must drop its references (dequeue) and
// must NOT free the frame — the caller does.
type Policy interface {
	Name() string
	PageFor(f *Fault) (*mem.Page, error)
	Installed(f *Fault, p *mem.Page)
	Release(p *mem.Page)
}

// ErrNoMemory is returned when a policy cannot produce a frame.
var ErrNoMemory = errors.New("vm: out of page frames")

// ErrBadAddress is returned for accesses outside any mapped region.
var ErrBadAddress = errors.New("vm: address not mapped")

// ErrBadMap marks a Map/Unmap call with invalid parameters.
var ErrBadMap = errors.New("vm: bad mapping")

// ErrNoPolicy is returned when a fault finds no replacement policy
// installed for the object or the system.
var ErrNoPolicy = errors.New("vm: no replacement policy installed")

// FaultAborter is optionally implemented by policies that own frame grant
// accounting (HiPEC containers). When a fault fails permanently after
// PageFor — the page never became resident — the fault handler calls
// FaultAborted so the policy can reclaim the frame into its private pool
// instead of leaking the grant. Policies that do not implement it get the
// frame returned to the machine free pool.
type FaultAborter interface {
	FaultAborted(f *Fault, p *mem.Page)
}

// Retry configures the fault path's bounded retry-with-backoff for transient
// page-in failures (disk I/O errors, pager loss). Backoff is charged to the
// virtual clock and doubles per attempt.
type Retry struct {
	Budget  int           // total page-in attempts per fault (including the first)
	Backoff time.Duration // initial backoff before the first retry
}

// DefaultRetry returns the kernel default: three attempts with a 500 µs
// initial backoff (a paging operation already costs milliseconds; the
// backoff exists to separate retries in time, not to rate-limit).
func DefaultRetry() Retry {
	return Retry{Budget: 3, Backoff: 500 * time.Microsecond}
}

// Pager is the external-memory-management interface (Mach EMM): a memory
// object may be backed by a user-level pager instead of the kernel's
// default store. DataRequest supplies page contents on page-in (returning
// false for "zero fill"); DataReturn receives evicted contents on
// page-out. Implementations charge their own costs (IPC, network, disk) to
// the clock. See package emm.
type Pager interface {
	PagerName() string
	DataRequest(obj uint64, off int64, dst []byte) (present bool, err error)
	DataReturn(obj uint64, off int64, src []byte) error
	PagerTerminate(obj uint64)
}

// flatMaxPages bounds the dense page table: objects above this page count
// (4 GiB of 4 KiB pages — none of the paper's workloads come close) fall
// back to a sparse map so a huge, thinly-touched object does not pay a
// pointer slot per possible page.
const flatMaxPages = 1 << 20

// Object is a Mach VM object: a pager-backed or zero-fill segment of data.
type Object struct {
	ID       uint64
	Size     int64
	ZeroFill bool  // anonymous memory: first touch zero-fills, no page-in
	DiskBase int64 // block address of the object's first page on disk

	// The resident-page table. Objects are contiguous, so the common case
	// is the flat slice indexed by off>>pageShift — the fault path's
	// resident lookup is then a shift and a bounds-checked load, no
	// hashing. Objects beyond flatMaxPages (and every object when the
	// system's ForceSparseObjects reference mode is on) use sparse
	// instead; exactly one of flat/sparse is non-nil.
	flat      []*mem.Page
	sparse    map[int64]*mem.Page
	nres      int
	pageShift uint8

	sys *System
	// Policy optionally overrides the system default for every region
	// mapping this object (HiPEC mounts a container here, mirroring the
	// paper's container-under-VM-object design).
	Policy Policy
	// ExternalPager, when set, replaces the kernel's default store/disk
	// backing for this object (the Mach external pager of §2/§4).
	ExternalPager Pager
	// RetryBudget, when positive, overrides System.Retry.Budget for faults
	// on this object (the WithRetryBudget allocation option).
	RetryBudget int
}

// Resident returns the resident page at offset, or nil.
//
//hipec:hotpath
func (o *Object) Resident(off int64) *mem.Page {
	if o.flat != nil {
		if i := uint64(off) >> o.pageShift; i < uint64(len(o.flat)) {
			return o.flat[i]
		}
		return nil
	}
	//hipec:vet-ignore mapinloop -- sparse fallback for objects past the flat-table limit (and ForceSparseObjects runs); the flat path above is the hot one
	return o.sparse[off]
}

// setResident installs p as the resident page at off.
//
//hipec:hotpath
func (o *Object) setResident(off int64, p *mem.Page) {
	if o.flat != nil {
		if prev := o.flat[uint64(off)>>o.pageShift]; prev == nil {
			o.nres++
		}
		o.flat[uint64(off)>>o.pageShift] = p
	} else {
		//hipec:vet-ignore mapinloop -- sparse fallback branch; flat-table objects take the branch above
		if _, had := o.sparse[off]; !had {
			o.nres++
		}
		//hipec:vet-ignore mapinloop -- sparse fallback branch; flat-table objects take the branch above
		o.sparse[off] = p
	}
}

// clearResident removes the resident page at off.
//
//hipec:hotpath
func (o *Object) clearResident(off int64) {
	if o.flat != nil {
		if o.flat[uint64(off)>>o.pageShift] != nil {
			o.nres--
		}
		o.flat[uint64(off)>>o.pageShift] = nil
	} else {
		//hipec:vet-ignore mapinloop -- sparse fallback branch; flat-table objects take the branch above
		if _, had := o.sparse[off]; had {
			o.nres--
		}
		delete(o.sparse, off)
	}
}

// ResidentCount reports the number of resident pages.
func (o *Object) ResidentCount() int { return o.nres }

// EachResident calls fn for every resident (offset, page) pair; fn
// returning false stops the walk. Flat objects walk in ascending offset
// order; sparse objects walk in map order. Callers must not rely on
// either — the order is unspecified, as it was when every object was
// map-backed.
func (o *Object) EachResident(fn func(off int64, p *mem.Page) bool) {
	if o.flat != nil {
		for i, p := range o.flat {
			if p != nil && !fn(int64(i)<<o.pageShift, p) {
				return
			}
		}
		return
	}
	for off, p := range o.sparse {
		if !fn(off, p) {
			return
		}
	}
}

// MapEntry is one contiguous mapped region of an address space.
type MapEntry struct {
	Start, End int64 // [Start, End) virtual byte range
	Object     *Object
	ObjOffset  int64 // offset into Object corresponding to Start
	Wired      bool  // pages faulted through this entry are wired
}

// Contains reports whether addr falls inside the entry.
func (e *MapEntry) Contains(addr int64) bool { return addr >= e.Start && addr < e.End }

// Size returns the byte length of the region.
func (e *MapEntry) Size() int64 { return e.End - e.Start }

// AddressSpace is a task's virtual address space (Mach vm_map).
type AddressSpace struct {
	ID      int
	sys     *System
	entries []*MapEntry // sorted by Start, non-overlapping
	nextVA  int64       // simple bump allocator for vm_allocate
	// hot is a one-entry translation cache (a software TLB): the entry the
	// last access resolved to. Accesses have strong region locality, so
	// the common case skips the binary search. Invalidated on Unmap.
	hot *MapEntry
}

// Stats reports the space's VM activity, derived from the event spine.
func (sp *AddressSpace) Stats() Stats {
	return statsFromScope(sp.sys.Events.Registry().Space(sp.ID))
}

// System owns physical memory, the paging device, all objects and spaces.
type System struct {
	Clock  substrate.Clock
	Frames *mem.FrameTable
	Disk   *disk.Disk
	Store  substrate.Store
	Costs  Costs
	// Events is the kernel event spine; every layer of the simulated
	// kernel (fault path, pageout daemon, disk, HiPEC core) emits through
	// it, and its Registry is the single source of truth for counters.
	Events *kevent.Emitter
	// Retry bounds the fault path's page-in retries (see Retry).
	Retry Retry
	// OnFaultFailure, when set, is called after a fault exhausts its retry
	// budget, with the object and the final error. Returning true means the
	// hook degraded the region (e.g. revoked its HiPEC container) and the
	// fault should be replayed once under the replacement policy; package
	// core installs the kernel's revocation hook here.
	OnFaultFailure func(o *Object, cause error) bool

	// ForceSparseObjects restores the pre-overhaul reference data plane:
	// every subsequently created object uses the sparse (map-backed) page
	// table regardless of size, and address spaces skip the one-entry
	// hot-entry cache, binary-searching the map list on every access as
	// the old code did. It exists as the reference mode for the
	// flat-vs-sparse differential fuzz and for same-host before/after
	// benchmarking; production configurations leave it false. The mode is
	// behaviour-preserving — only speed differs — which is exactly what
	// the differential fuzz proves.
	ForceSparseObjects bool

	defaultPolicy Policy
	// objects is indexed by object ID. IDs are never reused (the slot of a
	// destroyed object stays nil forever), so the monotonically increasing
	// ID doubles as its generation: a stale ID can only ever resolve to
	// nil, never to a recycled object.
	objects      []*Object
	nextSpaceID  int
	nextDiskBase int64

	pageShift uint8
	pageMask  int64 // PageSize-1

	// faultScratch pools Fault records so the fault path does not allocate
	// per fault. Depth exceeds 1 only on the degrade-replay recursion;
	// deeper nesting (a pathological policy) falls back to the heap.
	faultScratch [4]Fault
	faultDepth   int
}

// takeFault returns a zeroed Fault record, pooled up to the scratch depth.
func (s *System) takeFault() *Fault {
	if s.faultDepth < len(s.faultScratch) {
		f := &s.faultScratch[s.faultDepth]
		s.faultDepth++
		return f
	}
	s.faultDepth++
	return &Fault{}
}

// putFault releases the most recently taken Fault record, clearing the
// pooled slot so it does not pin the space/entry/object it referenced.
func (s *System) putFault() {
	s.faultDepth--
	if s.faultDepth < len(s.faultScratch) {
		s.faultScratch[s.faultDepth] = Fault{}
	}
}

// Stats reports machine-wide VM activity, derived from the event spine.
func (s *System) Stats() Stats {
	return statsFromScope(s.Events.Registry().Global())
}

// Config configures a System.
type Config struct {
	Frames   int  // number of physical page frames
	PageSize int  // bytes per page
	KeepData bool // allocate and track page contents
	Costs    Costs
	Disk     disk.Params
	// Retry bounds page-in retries; the zero value takes DefaultRetry.
	Retry Retry
	// Inject, when non-nil, attaches the fault-injection plane to the
	// paging device (pager-side injection is configured on the pagers).
	Inject *faultinj.Plane
	// Store overrides the backing store (nil = the in-memory MemStore).
	// The realtime substrate passes a file-backed store here.
	Store substrate.Store
	// PayloadArena backs every frame with a real page-sized payload cut
	// from one contiguous arena (implies KeepData). The realtime substrate
	// sets it so cached pages hold actual bytes.
	PayloadArena bool

	// RawCosts keeps a zero Costs value as-is instead of substituting the
	// calibrated 1994 defaults. The realtime substrate sets it: real time
	// is measured by the clock, not modeled by charges.
	RawCosts bool
}

// NewSystem builds the VM substrate on the given clock.
func NewSystem(clock substrate.Clock, cfg Config) *System {
	if clock.IsZero() {
		panic("vm: zero substrate clock")
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.PageSize&(cfg.PageSize-1) != 0 {
		panic(fmt.Sprintf("vm: page size %d is not a power of two", cfg.PageSize))
	}
	if cfg.Frames <= 0 {
		panic("vm: config needs a positive frame count")
	}
	if cfg.Costs == (Costs{}) && !cfg.RawCosts {
		cfg.Costs = DefaultCosts()
	}
	if cfg.Disk == (disk.Params{}) {
		cfg.Disk = disk.DefaultParams()
	}
	if cfg.Retry == (Retry{}) {
		cfg.Retry = DefaultRetry()
	}
	events := kevent.NewEmitter(clock)
	d := disk.New(clock, cfg.Disk, events)
	d.SetInjector(cfg.Inject)
	frames := mem.NewFrameTable(cfg.Frames, cfg.PageSize, cfg.KeepData)
	if cfg.PayloadArena {
		frames = mem.NewFrameTableArena(cfg.Frames, cfg.PageSize)
	}
	store := cfg.Store
	if store == nil {
		store = disk.NewStore(cfg.PageSize, cfg.KeepData)
	}
	return &System{
		Clock:  clock,
		Frames: frames,
		Disk:   d,
		Store:  store,
		Costs:  cfg.Costs,
		Events: events,
		Retry:  cfg.Retry,
		// Slot 0 is a permanent nil: object IDs start at 1.
		objects:   make([]*Object, 1, 64),
		pageShift: uint8(bits.TrailingZeros64(uint64(cfg.PageSize))),
		pageMask:  int64(cfg.PageSize) - 1,
	}
}

// PageSize returns the system page size.
func (s *System) PageSize() int { return s.Frames.PageSize() }

// SetDefaultPolicy installs the replacement policy used for regions without
// a specific one (the Mach pageout daemon in this reproduction). It must be
// called before the first fault on a default region.
func (s *System) SetDefaultPolicy(p Policy) { s.defaultPolicy = p }

// DefaultPolicy returns the installed default policy.
func (s *System) DefaultPolicy() Policy { return s.defaultPolicy }

// NewObject creates a VM object of size bytes (rounded up to whole pages).
// zeroFill objects page in as zeroes; otherwise the object is backed by the
// paging store at a fresh disk extent.
func (s *System) NewObject(size int64, zeroFill bool) *Object {
	if size <= 0 {
		panic(fmt.Sprintf("vm: object size %d", size))
	}
	ps := int64(s.PageSize())
	size = (size + ps - 1) / ps * ps
	o := &Object{
		ID:        uint64(len(s.objects)),
		Size:      size,
		ZeroFill:  zeroFill,
		DiskBase:  s.nextDiskBase,
		pageShift: s.pageShift,
		sys:       s,
	}
	if pages := size / ps; pages > flatMaxPages || s.ForceSparseObjects {
		o.sparse = make(map[int64]*mem.Page)
	} else {
		o.flat = make([]*mem.Page, pages)
	}
	s.nextDiskBase += size / ps
	s.objects = append(s.objects, o)
	return o
}

// Object looks up an object by ID; destroyed or never-issued IDs return
// nil. IDs index the object table directly (they are assigned densely and
// never reused), so the lookup is a bounds-checked load.
func (s *System) Object(id uint64) *Object {
	if id < uint64(len(s.objects)) {
		return s.objects[id]
	}
	return nil
}

// NewSpace creates an empty address space.
func (s *System) NewSpace() *AddressSpace {
	s.nextSpaceID++
	return &AddressSpace{ID: s.nextSpaceID, sys: s, nextVA: int64(s.PageSize())}
}

// Map maps object o at the lowest free address of the space and returns the
// entry. This corresponds to vm_map() (file mapping) when o is store-backed
// and vm_allocate() when o is zero-fill.
func (sp *AddressSpace) Map(o *Object, objOffset, length int64) (*MapEntry, error) {
	ps := int64(sp.sys.PageSize())
	if objOffset%ps != 0 || length <= 0 {
		return nil, fmt.Errorf("%w: off=%d len=%d", ErrBadMap, objOffset, length)
	}
	length = (length + ps - 1) / ps * ps
	if objOffset+length > o.Size {
		return nil, fmt.Errorf("%w: [%d,%d) exceeds object size %d", ErrBadMap, objOffset, objOffset+length, o.Size)
	}
	start := sp.nextVA
	sp.nextVA += length + ps // one-page guard gap between regions
	e := &MapEntry{Start: start, End: start + length, Object: o, ObjOffset: objOffset}
	sp.entries = append(sp.entries, e)
	sort.Slice(sp.entries, func(i, j int) bool { return sp.entries[i].Start < sp.entries[j].Start })
	return e, nil
}

// Allocate is vm_allocate(): create and map fresh zero-fill memory.
func (sp *AddressSpace) Allocate(length int64) (*MapEntry, error) {
	o := sp.sys.NewObject(length, true)
	return sp.Map(o, 0, length)
}

// Unmap removes a map entry from the space (vm_deallocate of the range).
// The backing object and its resident pages are untouched; callers that
// want the memory back destroy the object (or its container) separately.
func (sp *AddressSpace) Unmap(e *MapEntry) error {
	for i, cand := range sp.entries {
		if cand == e {
			sp.entries = append(sp.entries[:i], sp.entries[i+1:]...)
			if sp.hot == e {
				sp.hot = nil
			}
			return nil
		}
	}
	return fmt.Errorf("%w: entry [%#x,%#x) not in this space", ErrBadAddress, e.Start, e.End)
}

// Lookup finds the entry containing addr.
func (sp *AddressSpace) Lookup(addr int64) (*MapEntry, bool) {
	i := sort.Search(len(sp.entries), func(i int) bool { return sp.entries[i].End > addr })
	if i < len(sp.entries) && sp.entries[i].Contains(addr) {
		return sp.entries[i], true
	}
	return nil, false
}

// Entries returns the space's map entries (do not mutate).
func (sp *AddressSpace) Entries() []*MapEntry { return sp.entries }

// Touch performs a read access at addr. Write performs a write access.
// Both return the page (resident afterwards) or an error.
func (sp *AddressSpace) Touch(addr int64) (*mem.Page, error) { return sp.access(addr, false) }

// Write performs a write access at addr.
func (sp *AddressSpace) Write(addr int64) (*mem.Page, error) { return sp.access(addr, true) }

// access is the core of the fault state machine. Each outcome — hit, bad
// address, fault (plus its page-in or zero-fill resolution) — is a single
// event emission on the spine; the access count is derived, never
// separately tracked.
//
//hipec:hotpath
func (sp *AddressSpace) access(addr int64, write bool) (*mem.Page, error) {
	s := sp.sys
	e := sp.hot
	if e == nil || !e.Contains(addr) {
		var ok bool
		e, ok = sp.Lookup(addr)
		if !ok {
			s.Events.Emit(kevent.Event{Type: kevent.EvBadAddress, Space: int32(sp.ID), Addr: addr})
			//hipec:vet-ignore hotalloc -- bad-address error construction; this branch never runs on a hit
			return nil, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
		}
		if !s.ForceSparseObjects {
			sp.hot = e
		}
	}
	off := e.ObjOffset + ((addr - e.Start) &^ s.pageMask)
	if p := e.Object.Resident(off); p != nil {
		// Resident: hardware sets reference (and modify) bits.
		p.Referenced = true
		if write {
			p.Modified = true
		}
		p.LastAccess = s.Clock.Now()
		if q := p.Queue(); q != nil && q.AccessOrder {
			q.MoveToTail(p)
		}
		if s.Costs.MemAccess > 0 {
			s.Clock.Sleep(s.Costs.MemAccess)
		}
		s.Events.Emit(kevent.Event{Type: kevent.EvHit, Space: int32(sp.ID), Addr: addr, Flag: write})
		return p, nil
	}
	return sp.fault(e, off, addr, write)
}

//hipec:hotpath
func (sp *AddressSpace) fault(e *MapEntry, off, addr int64, write bool) (*mem.Page, error) {
	s := sp.sys
	s.Events.Emit(kevent.Event{Type: kevent.EvFault, Space: int32(sp.ID), Addr: addr, Flag: write})
	s.Clock.Sleep(s.Costs.FaultService)
	if s.Costs.RegionCheck > 0 {
		// HiPEC-enabled kernels check whether the fault lies in a
		// specific region (§5.2); charged on every fault.
		s.Clock.Sleep(s.Costs.RegionCheck)
	}
	policy := e.Object.Policy
	if policy == nil {
		policy = s.defaultPolicy
	}
	if policy == nil {
		return nil, ErrNoPolicy
	}
	f := s.takeFault()
	defer s.putFault()
	*f = Fault{Space: sp, Entry: e, Object: e.Object, Offset: off, Addr: addr, Write: write}
	p, err := policy.PageFor(f)
	if err != nil {
		//hipec:vet-ignore hotalloc -- fault-failure error construction; allocation is fine once the fault is already lost
		return nil, &hiperr.Error{Op: "vm.fault", Space: sp.ID, Err: fmt.Errorf("at %#x: %w", addr, err)}
	}
	if p == nil {
		//hipec:vet-ignore hotalloc -- policy-misbehavior error construction; failure path only
		err := fmt.Errorf("at %#x: policy %q returned no page: %w", addr, policy.Name(), hiperr.ErrPolicyFault)
		return nil, &hiperr.Error{Op: "vm.fault", Space: sp.ID, Err: err}
	}
	if p.Queue() != nil {
		//hipec:vet-ignore hotalloc -- invariant-violation panic; the process is crashing
		panic(fmt.Sprintf("vm: policy %q returned %v still on a queue", policy.Name(), p))
	}
	// Install the frame.
	p.Object = e.Object.ID
	p.Offset = off
	p.Referenced = true
	p.Modified = write
	p.Wired = e.Wired
	p.LastAccess = s.Clock.Now()
	if err := sp.pageIn(e, off, addr, p); err != nil {
		// The fault failed permanently (retry budget exhausted). The frame
		// never became resident: clear its identity and hand it back to
		// the policy's grant accounting (FaultAborter) or the machine
		// free pool.
		p.Object, p.Offset = 0, 0
		p.Referenced, p.Modified, p.Wired = false, false, false
		if ab, ok := policy.(FaultAborter); ok {
			ab.FaultAborted(f, p)
		} else {
			s.Frames.Free(p)
		}
		s.Events.Emit(kevent.Event{Type: kevent.EvFaultAbandon, Space: int32(sp.ID), Addr: addr})
		if s.OnFaultFailure != nil && s.OnFaultFailure(e.Object, err) {
			// The kernel degraded the region (revoked its policy);
			// replay the fault once under the replacement policy. The
			// replay cannot recurse: after revocation the object's
			// policy is the default one, whose next failure returns
			// false from the hook.
			return sp.fault(e, off, addr, write)
		}
		return nil, err
	}
	e.Object.setResident(off, p)
	policy.Installed(f, p)
	return p, nil
}

// pageIn fills p with the contents for (object, off) — from the external
// pager, the backing store, or by zero fill — retrying transient failures
// with doubling virtual-time backoff within the object's retry budget.
func (sp *AddressSpace) pageIn(e *MapEntry, off, addr int64, p *mem.Page) error {
	s := sp.sys
	budget := e.Object.RetryBudget
	if budget <= 0 {
		budget = s.Retry.Budget
	}
	if budget <= 0 {
		budget = 1
	}
	backoff := s.Retry.Backoff
	for attempt := 1; ; attempt++ {
		err := sp.pageInOnce(e, off, addr, p)
		if err == nil {
			return nil
		}
		if attempt >= budget {
			return err
		}
		s.Events.Emit(kevent.Event{Type: kevent.EvFaultRetry, Space: int32(sp.ID), Addr: addr, Arg: int64(attempt), Aux: int64(backoff)})
		if backoff > 0 {
			s.Clock.Sleep(backoff)
			backoff *= 2
		}
	}
}

// pageInOnce is one page-in attempt: exactly the paper-era fill path, plus
// typed errors on the newly fallible disk and pager edges.
func (sp *AddressSpace) pageInOnce(e *MapEntry, off, addr int64, p *mem.Page) error {
	s := sp.sys
	if pg := e.Object.ExternalPager; pg != nil {
		// Memory-object data comes from the external pager (EMM).
		present, perr := pg.DataRequest(e.Object.ID, off, p.Data)
		if perr != nil {
			return &hiperr.Error{Op: "vm.pagein", Space: sp.ID,
				Err: fmt.Errorf("external pager %q: %w", pg.PagerName(), perr)}
		}
		if present {
			s.Events.Emit(kevent.Event{Type: kevent.EvPageIn, Space: int32(sp.ID), Addr: addr, Arg: int64(e.Object.ID), Aux: off})
		} else {
			s.Events.Emit(kevent.Event{Type: kevent.EvZeroFill, Space: int32(sp.ID), Addr: addr, Arg: int64(e.Object.ID), Aux: off})
		}
		return nil
	}
	// A page present in the backing store must be read back even for
	// zero-fill objects: it was either populated (mapped file) or
	// paged out earlier (anonymous memory gone to swap). Zero-fill
	// only applies to never-written pages.
	key := disk.StoreKey{Object: e.Object.ID, Offset: off}
	if s.Store.Contains(key) {
		// Page-in from backing store: synchronous disk read.
		if _, derr := s.Disk.Read(s.diskAddr(e.Object, off), s.PageSize()); derr != nil {
			return &hiperr.Error{Op: "vm.pagein", Space: sp.ID, Err: fmt.Errorf("at %#x: %w", addr, derr)}
		}
		// A real store (file-backed) can fail the transfer itself; feed the
		// error into the same retry ladder as a modeled device error.
		data, _, serr := s.Store.ReadPage(key)
		if serr != nil {
			return &hiperr.Error{Op: "vm.pagein", Space: sp.ID, Err: fmt.Errorf("at %#x: %w", addr, serr)}
		}
		if data != nil && p.Data != nil {
			copy(p.Data, data)
		}
		s.Events.Emit(kevent.Event{Type: kevent.EvPageIn, Space: int32(sp.ID), Addr: addr, Arg: int64(e.Object.ID), Aux: off})
	} else {
		s.Events.Emit(kevent.Event{Type: kevent.EvZeroFill, Space: int32(sp.ID), Addr: addr, Arg: int64(e.Object.ID), Aux: off})
	}
	return nil
}

// Detach removes a resident page from its object without freeing the frame;
// the caller (a replacement policy evicting the page) takes ownership. If
// the page is dirty the caller is responsible for writing it back (PageOut).
func (s *System) Detach(p *mem.Page) {
	o := s.Object(p.Object)
	if o == nil || o.Resident(p.Offset) != p {
		panic(fmt.Sprintf("vm: Detach of non-resident %v", p))
	}
	o.clearResident(p.Offset)
	s.Events.Emit(kevent.Event{Type: kevent.EvEviction, Arg: int64(p.Object), Aux: p.Offset})
}

// diskAddr maps an object page to its backing-store block. Blocks are
// deliberately scattered (a multiplicative hash of the logical block):
// the Mach default pager allocates paging-file blocks on demand, so
// successive virtual pages do NOT sit on consecutive disk blocks and every
// page-in pays a full seek — which is what calibrates the paper's
// ~7.66 ms/page figure (Table 3).
func (s *System) diskAddr(o *Object, off int64) int64 {
	base := int64(0)
	if o != nil {
		base = o.DiskBase
	}
	block := uint64(base + off/int64(s.PageSize()))
	return int64((block * 0x9E3779B97F4A7C15) >> 20)
}

// PageOut writes the page's contents to the backing store asynchronously
// and clears its Modified bit. done may be nil. Pages of externally-paged
// objects are returned to their pager (memory_object_data_return) instead;
// a pager write-back failure keeps the page dirty (its contents are the only
// copy) and returns an error — the caller decides whether to keep the page
// resident or retry. The kernel store path has the same contract: on the
// simulation substrate the in-memory store write cannot fail (the disk
// write models timing only), while a realtime store's genuine I/O failure
// (ENOSPC, EIO) keeps the page dirty and surfaces as a typed error.
func (s *System) PageOut(p *mem.Page, done func(simtime.Time)) error {
	o := s.Object(p.Object)
	s.Events.Emit(kevent.Event{Type: kevent.EvPageOut, Arg: int64(p.Object), Aux: p.Offset})
	if o != nil && o.ExternalPager != nil {
		if err := o.ExternalPager.DataReturn(o.ID, p.Offset, p.Data); err != nil {
			s.Events.Emit(kevent.Event{Type: kevent.EvPageOutError, Arg: int64(p.Object), Aux: p.Offset})
			return &hiperr.Error{Op: "vm.pageout",
				Err: fmt.Errorf("external pager %q: %w", o.ExternalPager.PagerName(), err)}
		}
		p.Modified = false
		if done != nil {
			s.Clock.After(0, done)
		}
		return nil
	}
	key := disk.StoreKey{Object: p.Object, Offset: p.Offset}
	if err := s.Store.WritePage(key, p.Data); err != nil {
		s.Events.Emit(kevent.Event{Type: kevent.EvPageOutError, Arg: int64(p.Object), Aux: p.Offset})
		return &hiperr.Error{Op: "vm.pageout", Err: err}
	}
	s.Disk.Write(s.diskAddr(o, p.Offset), s.PageSize(), done)
	p.Modified = false
	return nil
}

// PageOutSync writes the page synchronously (clock advances by the service
// time). Used by policies that must wait for the write. Error semantics
// match PageOut.
func (s *System) PageOutSync(p *mem.Page) error {
	o := s.Object(p.Object)
	s.Events.Emit(kevent.Event{Type: kevent.EvPageOut, Arg: int64(p.Object), Aux: p.Offset, Flag: true})
	if o != nil && o.ExternalPager != nil {
		if err := o.ExternalPager.DataReturn(o.ID, p.Offset, p.Data); err != nil {
			s.Events.Emit(kevent.Event{Type: kevent.EvPageOutError, Arg: int64(p.Object), Aux: p.Offset})
			return &hiperr.Error{Op: "vm.pageout",
				Err: fmt.Errorf("external pager %q: %w", o.ExternalPager.PagerName(), err)}
		}
		p.Modified = false
		return nil
	}
	key := disk.StoreKey{Object: p.Object, Offset: p.Offset}
	if err := s.Store.WritePage(key, p.Data); err != nil {
		s.Events.Emit(kevent.Event{Type: kevent.EvPageOutError, Arg: int64(p.Object), Aux: p.Offset})
		return &hiperr.Error{Op: "vm.pageout", Err: err}
	}
	// Model as a read-shaped synchronous access (same service time). The
	// store write above already made the contents durable, so an injected
	// read error here would not lose data; the timing model ignores it.
	s.Disk.Read(s.diskAddr(o, p.Offset), s.PageSize()) //nolint:errcheck // timing-only access, data already durable in store
	p.Modified = false
	return nil
}

// Populate writes initial content pages for an object into the backing
// store so that subsequent faults page in from disk (a "memory-mapped data
// file"). With nil data only presence is recorded. On a store write error
// (realtime substrate) population stops at the failing page and the typed
// error is returned; pages already written stay present.
func (s *System) Populate(o *Object, data []byte) error {
	ps := int64(s.PageSize())
	for off := int64(0); off < o.Size; off += ps {
		var chunk []byte
		if data != nil {
			lo := off
			if lo >= int64(len(data)) {
				chunk = nil
			} else {
				hi := lo + ps
				if hi > int64(len(data)) {
					hi = int64(len(data))
				}
				chunk = data[lo:hi]
			}
		}
		if err := s.Store.WritePage(disk.StoreKey{Object: o.ID, Offset: off}, chunk); err != nil {
			return &hiperr.Error{Op: "vm.populate", Err: err}
		}
	}
	return nil
}

// WireRange faults in and wires every page of the entry, making the range
// ineligible for replacement (vm_wire). It returns the number of pages
// wired.
func (sp *AddressSpace) WireRange(e *MapEntry) (int, error) {
	e.Wired = true
	ps := int64(sp.sys.PageSize())
	n := 0
	for addr := e.Start; addr < e.End; addr += ps {
		p, err := sp.Touch(addr)
		if err != nil {
			return n, err
		}
		p.Wired = true
		n++
	}
	return n, nil
}

// DestroyObject detaches and frees every resident page of o (notifying the
// responsible policy via Release) and removes the object. Map entries
// referring to it become invalid; destroying an object that is still
// mapped by live workloads is a caller bug.
func (s *System) DestroyObject(o *Object) {
	policy := o.Policy
	if policy == nil {
		policy = s.defaultPolicy
	}
	o.EachResident(func(_ int64, p *mem.Page) bool {
		if policy != nil {
			policy.Release(p)
		}
		if p.Queue() != nil {
			p.Queue().Remove(p)
		}
		s.Frames.Free(p)
		return true
	})
	o.flat, o.sparse, o.nres = nil, nil, 0
	if o.ExternalPager != nil {
		o.ExternalPager.PagerTerminate(o.ID)
	}
	// The slot is retired, never reused: stale IDs resolve to nil.
	s.objects[o.ID] = nil
}
