// Package machipc models the Mach communication primitives that HiPEC is
// compared against in Table 4 of the paper: system-call traps, message-based
// IPC (ports), and upcalls. It also implements an external-pager baseline —
// a user-level memory manager in the style of Mach's EMM interface extended
// per McNamee's PREMO — whose every replacement decision pays an IPC round
// trip, which is precisely the overhead HiPEC's in-kernel executor avoids.
//
// Costs are calibrated from Table 4 (null syscall 19 µs, null IPC 292 µs on
// the paper's i486-50 testbed) and charged to the simulation clock. A real
// goroutine-channel round trip (RealPort) is also provided so benchmarks can
// report modern measured numbers next to the calibrated ones.
package machipc

import (
	"errors"
	"time"

	"hipec/internal/mem"
	"hipec/internal/substrate"
	"hipec/internal/vm"
)

// Costs are the calibrated mechanism costs (Table 4).
type Costs struct {
	NullSyscall time.Duration // user->kernel trap and return
	NullIPC     time.Duration // full message round trip between tasks
	// Upcall is a kernel->user procedure invocation. The paper uses the
	// null-syscall time to describe upcall overhead ("the overhead is
	// mainly in allocating area for new user stack and changing stacks").
	Upcall time.Duration
}

// DefaultCosts returns Table 4's measured values.
func DefaultCosts() Costs {
	return Costs{
		NullSyscall: 19 * time.Microsecond,
		NullIPC:     292 * time.Microsecond,
		Upcall:      19 * time.Microsecond,
	}
}

// Stats counts simulated mechanism activity.
type Stats struct {
	Syscalls int64
	Messages int64 // one-way messages
	RPCs     int64 // request/reply pairs
	Upcalls  int64
}

// IPC charges mechanism costs to the virtual clock.
type IPC struct {
	Clock substrate.Clock
	Costs Costs
	Stats Stats
}

// New creates an IPC cost model on clock.
func New(clock substrate.Clock, costs Costs) *IPC {
	if costs == (Costs{}) {
		costs = DefaultCosts()
	}
	return &IPC{Clock: clock, Costs: costs}
}

// Syscall charges one trap and runs fn in "kernel mode".
func (i *IPC) Syscall(fn func()) {
	i.Stats.Syscalls++
	i.Clock.Sleep(i.Costs.NullSyscall)
	if fn != nil {
		fn()
	}
}

// Upcall charges a kernel->user invocation (stack switch) and runs fn in
// "user mode"; returning charges the trap back into the kernel.
func (i *IPC) Upcall(fn func()) {
	i.Stats.Upcalls++
	i.Clock.Sleep(i.Costs.Upcall)
	if fn != nil {
		fn()
	}
	i.Clock.Sleep(i.Costs.NullSyscall)
}

// Message is one Mach-style typed message.
type Message struct {
	ID   int
	Body any
}

// Handler processes a request message and produces a reply.
type Handler func(Message) Message

// Port is a simulated Mach port: a named message endpoint with a server
// handler. Calls are synchronous and charge the full IPC round trip.
type Port struct {
	Name    string
	ipc     *IPC
	handler Handler
	backlog []Message
}

// NewPort allocates a port served by handler (may be nil for a queue-only
// port used with Send/Receive).
func (i *IPC) NewPort(name string, handler Handler) *Port {
	return &Port{Name: name, ipc: i, handler: handler}
}

// ErrNoServer is returned by Call on a port with no registered handler.
var ErrNoServer = errors.New("machipc: port has no server")

// Call performs a synchronous RPC: request out, reply back, one null-IPC
// charge end to end (Table 4 measures the round trip).
func (p *Port) Call(req Message) (Message, error) {
	if p.handler == nil {
		return Message{}, ErrNoServer
	}
	p.ipc.Stats.RPCs++
	p.ipc.Stats.Messages += 2
	p.ipc.Clock.Sleep(p.ipc.Costs.NullIPC)
	return p.handler(req), nil
}

// Send enqueues a one-way message, charging half a round trip.
func (p *Port) Send(msg Message) {
	p.ipc.Stats.Messages++
	p.ipc.Clock.Sleep(p.ipc.Costs.NullIPC / 2)
	if p.handler != nil {
		p.handler(msg)
		return
	}
	p.backlog = append(p.backlog, msg)
}

// Receive dequeues a pending message from a queue-only port.
func (p *Port) Receive() (Message, bool) {
	if len(p.backlog) == 0 {
		return Message{}, false
	}
	m := p.backlog[0]
	p.backlog = p.backlog[1:]
	return m, true
}

// Pending reports queued messages.
func (p *Port) Pending() int { return len(p.backlog) }

// --- External pager baseline ----------------------------------------------

// EMM message IDs, mirroring the Mach external memory management interface.
const (
	MsgDataRequest  = 1 // kernel -> pager: need a frame / victim decision
	MsgDataReturn   = 2 // pager -> kernel: victim choice
	MsgDataWrite    = 3 // kernel -> pager: dirty page contents
	MsgObjectDestry = 4
)

// VictimFunc is the user-level pager's replacement decision: given the
// resident queue, pick a victim (nil means "no opinion", evict queue head).
type VictimFunc func(resident *mem.Queue) *mem.Page

// ExtPagerPolicy is a vm.Policy that consults a user-level memory manager
// over IPC on every replacement decision, PREMO-style: the kernel sends a
// data_request, the user task picks the victim with whatever policy it
// likes, and replies. Functionally equivalent control to HiPEC, but every
// fault that needs a replacement pays Costs.NullIPC — the overhead Table 4
// contrasts with HiPEC's ≈150 ns command interpretation.
type ExtPagerPolicy struct {
	PolicyName string
	ipc        *IPC
	sys        *vm.System
	port       *Port
	resident   *mem.Queue
	pool       []*mem.Page // private free frames
	victim     VictimFunc

	Faults       int64
	Replacements int64
}

// NewExtPager grants the policy poolFrames private frames (taken directly
// from the frame table) and installs the user-level victim function behind
// a port.
func NewExtPager(name string, ipc *IPC, sys *vm.System, poolFrames int, victim VictimFunc) (*ExtPagerPolicy, error) {
	p := &ExtPagerPolicy{
		PolicyName: name,
		ipc:        ipc,
		sys:        sys,
		resident:   mem.NewQueue("extpager_" + name),
		victim:     victim,
	}
	// Keep the resident queue in exact recency order (head = LRU,
	// tail = MRU) so user-level victim functions can be O(1).
	p.resident.AccessOrder = true
	for i := 0; i < poolFrames; i++ {
		f := sys.Frames.Alloc()
		if f == nil {
			for _, q := range p.pool {
				sys.Frames.Free(q)
			}
			return nil, vm.ErrNoMemory
		}
		p.pool = append(p.pool, f)
	}
	p.port = ipc.NewPort("pager:"+name, func(req Message) Message {
		// This handler body is the "user-level pager": it runs the
		// application's replacement policy outside the kernel.
		if req.ID != MsgDataRequest {
			return Message{ID: MsgDataReturn}
		}
		var v *mem.Page
		if p.victim != nil {
			v = p.victim(p.resident)
		}
		if v == nil {
			v = p.resident.Head() // default: FIFO
		}
		return Message{ID: MsgDataReturn, Body: v}
	})
	return p, nil
}

// Name implements vm.Policy.
func (p *ExtPagerPolicy) Name() string { return "extpager:" + p.PolicyName }

// PageFor implements vm.Policy: free frames are handed out directly; when
// the pool is empty the kernel must consult the user-level pager over IPC
// for a victim.
func (p *ExtPagerPolicy) PageFor(f *vm.Fault) (*mem.Page, error) {
	p.Faults++
	if n := len(p.pool); n > 0 {
		pg := p.pool[n-1]
		p.pool = p.pool[:n-1]
		return pg, nil
	}
	if p.resident.Empty() {
		return nil, vm.ErrNoMemory
	}
	reply, err := p.port.Call(Message{ID: MsgDataRequest})
	if err != nil {
		return nil, err
	}
	victim, ok := reply.Body.(*mem.Page)
	if !ok || victim == nil || !victim.InQueue(p.resident) {
		victim = p.resident.Head()
	}
	p.resident.Remove(victim)
	if victim.Modified {
		// data_write back to the pager: another message.
		p.port.Send(Message{ID: MsgDataWrite, Body: victim})
		p.sys.PageOut(victim, nil)
	}
	p.sys.Detach(victim)
	victim.Object, victim.Offset = 0, 0
	p.Replacements++
	return victim, nil
}

// Installed implements vm.Policy.
func (p *ExtPagerPolicy) Installed(f *vm.Fault, pg *mem.Page) {
	if !pg.Wired {
		p.resident.EnqueueTail(pg)
	}
}

// Release implements vm.Policy.
func (p *ExtPagerPolicy) Release(pg *mem.Page) {
	if pg.Queue() == p.resident {
		p.resident.Remove(pg)
	}
}

var _ vm.Policy = (*ExtPagerPolicy)(nil)

// --- Real (wall-clock) mechanisms for modern measurements ------------------

// RealPort is a live goroutine server for measuring an actual Go
// channel-based RPC round trip, the closest modern analogue to a null IPC.
type RealPort struct {
	req  chan int
	resp chan int
	done chan struct{}
}

// NewRealPort starts the echo server goroutine.
func NewRealPort() *RealPort {
	p := &RealPort{
		req:  make(chan int),
		resp: make(chan int),
		done: make(chan struct{}),
	}
	go func() {
		for {
			select {
			case v := <-p.req:
				p.resp <- v
			case <-p.done:
				return
			}
		}
	}()
	return p
}

// Call performs one round trip.
func (p *RealPort) Call(v int) int {
	p.req <- v
	return <-p.resp
}

// Close stops the server.
func (p *RealPort) Close() { close(p.done) }
