package machipc

import (
	"runtime"
	"testing"
	"time"

	"hipec/internal/mem"
	"hipec/internal/simtime"
	"hipec/internal/substrate"
	"hipec/internal/vm"
)

func newIPC() (*simtime.Clock, *IPC) {
	c := simtime.NewClock()
	return c, New(substrate.Sim(c), Costs{})
}

func TestDefaultCostsMatchTable4(t *testing.T) {
	c := DefaultCosts()
	if c.NullSyscall != 19*time.Microsecond {
		t.Fatalf("NullSyscall = %v", c.NullSyscall)
	}
	if c.NullIPC != 292*time.Microsecond {
		t.Fatalf("NullIPC = %v", c.NullIPC)
	}
}

func TestSyscallChargesTrap(t *testing.T) {
	clock, ipc := newIPC()
	ran := false
	ipc.Syscall(func() { ran = true })
	if !ran {
		t.Fatal("syscall body did not run")
	}
	if clock.Now() != simtime.Time(19*time.Microsecond) {
		t.Fatalf("clock = %v, want 19µs", clock.Now())
	}
	if ipc.Stats.Syscalls != 1 {
		t.Fatal("syscall not counted")
	}
}

func TestUpcallChargesBothDirections(t *testing.T) {
	clock, ipc := newIPC()
	ipc.Upcall(nil)
	want := simtime.Time(19*time.Microsecond + 19*time.Microsecond)
	if clock.Now() != want {
		t.Fatalf("clock = %v, want %v", clock.Now(), want)
	}
}

func TestPortCallRoundTrip(t *testing.T) {
	clock, ipc := newIPC()
	port := ipc.NewPort("echo", func(m Message) Message {
		return Message{ID: m.ID + 1, Body: m.Body}
	})
	reply, err := port.Call(Message{ID: 41, Body: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.ID != 42 || reply.Body != "x" {
		t.Fatalf("reply = %+v", reply)
	}
	if clock.Now() != simtime.Time(292*time.Microsecond) {
		t.Fatalf("clock = %v, want 292µs", clock.Now())
	}
	if ipc.Stats.RPCs != 1 || ipc.Stats.Messages != 2 {
		t.Fatalf("stats = %+v", ipc.Stats)
	}
}

func TestCallWithoutServerFails(t *testing.T) {
	_, ipc := newIPC()
	port := ipc.NewPort("dead", nil)
	if _, err := port.Call(Message{}); err == nil {
		t.Fatal("call to serverless port succeeded")
	}
}

func TestQueuePortSendReceive(t *testing.T) {
	_, ipc := newIPC()
	port := ipc.NewPort("q", nil)
	port.Send(Message{ID: 1})
	port.Send(Message{ID: 2})
	if port.Pending() != 2 {
		t.Fatalf("Pending = %d", port.Pending())
	}
	m, ok := port.Receive()
	if !ok || m.ID != 1 {
		t.Fatalf("Receive = %+v, %t", m, ok)
	}
	m, _ = port.Receive()
	if m.ID != 2 {
		t.Fatal("FIFO order broken")
	}
	if _, ok := port.Receive(); ok {
		t.Fatal("empty receive succeeded")
	}
}

func newPagerSystem(t *testing.T, frames, pool int, victim VictimFunc) (*simtime.Clock, *vm.System, *IPC, *ExtPagerPolicy) {
	t.Helper()
	clock := simtime.NewClock()
	sys := vm.NewSystem(substrate.Sim(clock), vm.Config{Frames: frames})
	ipc := New(substrate.Sim(clock), Costs{})
	pol, err := NewExtPager("test", ipc, sys, pool, victim)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetDefaultPolicy(pol)
	return clock, sys, ipc, pol
}

func TestExtPagerServesFromPoolWithoutIPC(t *testing.T) {
	_, sys, ipc, _ := newPagerSystem(t, 32, 8, nil)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(8 * 4096)
	for a := e.Start; a < e.End; a += 4096 {
		if _, err := sp.Touch(a); err != nil {
			t.Fatal(err)
		}
	}
	if ipc.Stats.RPCs != 0 {
		t.Fatalf("pool-served faults used %d IPCs", ipc.Stats.RPCs)
	}
}

func TestExtPagerConsultsUserLevelOnReplacement(t *testing.T) {
	// MRU victim function living "in user space".
	mru := func(q *mem.Queue) *mem.Page {
		return q.FindMax(func(p *mem.Page) int64 { return int64(p.LastAccess) })
	}
	clock, sys, ipc, pol := newPagerSystem(t, 32, 4, mru)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(8 * 4096)
	for a := e.Start; a < e.End; a += 4096 {
		if _, err := sp.Touch(a); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Millisecond)
	}
	if pol.Replacements != 4 {
		t.Fatalf("Replacements = %d, want 4", pol.Replacements)
	}
	if ipc.Stats.RPCs != 4 {
		t.Fatalf("RPCs = %d, want 4 (one per replacement)", ipc.Stats.RPCs)
	}
	// MRU behaviour: the first 3 pages survive.
	for i := int64(0); i < 3; i++ {
		if e.Object.Resident(i*4096) == nil {
			t.Fatalf("MRU-over-IPC evicted prefix page %d", i)
		}
	}
}

func TestExtPagerDirtyVictimWritesBack(t *testing.T) {
	clock, sys, ipc, _ := newPagerSystem(t, 32, 2, nil)
	sp := sys.NewSpace()
	e, _ := sp.Allocate(4 * 4096)
	for a := e.Start; a < e.End; a += 4096 {
		if _, err := sp.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Stats().PageOuts == 0 {
		t.Fatal("dirty victims were not written back")
	}
	// data_write messages were sent in addition to the victim RPCs.
	if ipc.Stats.Messages <= 2*ipc.Stats.RPCs {
		t.Fatalf("no data_write messages: %+v", ipc.Stats)
	}
	clock.Advance(time.Second)
	if sys.Disk.Inflight() != 0 {
		t.Fatal("writebacks never completed")
	}
}

func TestExtPagerPoolExhaustion(t *testing.T) {
	clock := simtime.NewClock()
	sys := vm.NewSystem(substrate.Sim(clock), vm.Config{Frames: 4})
	ipc := New(substrate.Sim(clock), Costs{})
	if _, err := NewExtPager("big", ipc, sys, 10, nil); err == nil {
		t.Fatal("oversized pool accepted")
	}
	if sys.Frames.FreeCount() != 4 {
		t.Fatal("failed construction leaked frames")
	}
}

func TestRealPortRoundTrip(t *testing.T) {
	p := NewRealPort()
	defer p.Close()
	for i := 0; i < 100; i++ {
		if got := p.Call(i); got != i {
			t.Fatalf("Call(%d) = %d", i, got)
		}
	}
}

// TestRealPortCloseStopsServer is the lifecycle contract: Close must
// actually terminate the echo-server goroutine, not just make Call hang.
func TestRealPortCloseStopsServer(t *testing.T) {
	before := runtime.NumGoroutine()
	ports := make([]*RealPort, 16)
	for i := range ports {
		ports[i] = NewRealPort()
	}
	// The servers are live: well above the baseline goroutine count.
	if n := runtime.NumGoroutine(); n < before+len(ports) {
		t.Fatalf("expected %d server goroutines, NumGoroutine %d -> %d", len(ports), before, n)
	}
	for _, p := range ports {
		p.Call(1)
		p.Close()
	}
	// Termination is asynchronous; poll until the servers are gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("echo servers leaked: NumGoroutine %d -> %d after Close", before, n)
	}
}
