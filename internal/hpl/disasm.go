package hpl

import (
	"fmt"
	"strings"

	"hipec/internal/core"
)

// Disassemble renders one event program as an annotated listing in the
// style of the paper's Table 2: command counter, hex bytes, mnemonic.
func Disassemble(prog core.Program) string {
	var b strings.Builder
	for cc, cmd := range prog {
		if cc == 0 {
			fmt.Fprintf(&b, "%3d  %08x  HiPEC Magic No\n", cc, uint32(cmd))
			continue
		}
		fmt.Fprintf(&b, "%3d  %02x %02x %02x %02x  %s\n",
			cc, uint8(cmd.Op()), cmd.A(), cmd.B(), cmd.C(), describe(cmd))
	}
	return b.String()
}

// DisassembleSpec renders every event of a spec.
func DisassembleSpec(spec *core.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %q (minframe=%d)\n", spec.Name, spec.MinFrame)
	for i, prog := range spec.Events {
		if prog == nil {
			continue
		}
		name := fmt.Sprintf("event%d", i)
		if i < len(spec.EventNames) && spec.EventNames[i] != "" {
			name = spec.EventNames[i]
		}
		fmt.Fprintf(&b, "\n# The %s Event\n", name)
		b.WriteString(Disassemble(prog))
	}
	if len(spec.Operands) > 0 {
		fmt.Fprintf(&b, "\n# Operands\n")
		for _, d := range spec.Operands {
			c := ""
			if d.Const {
				c = " const"
			}
			fmt.Fprintf(&b, "%#02x  %-6v%s  %s = %d\n", d.Slot, d.Kind, c, d.Name, d.Init)
		}
	}
	return b.String()
}

var compNames = map[uint8]string{
	core.CompEQ: "==", core.CompGT: ">", core.CompLT: "<",
	core.CompNE: "!=", core.CompGE: ">=", core.CompLE: "<=",
}

var arithNames = map[uint8]string{
	core.ArithAdd: "+=", core.ArithSub: "-=", core.ArithMul: "*=",
	core.ArithDiv: "/=", core.ArithMod: "%=", core.ArithMov: "=",
	core.ArithInc: "++", core.ArithDec: "--",
}

func describe(cmd core.Command) string {
	a, b, c := cmd.A(), cmd.B(), cmd.C()
	op := func(slot uint8) string { return slotName(slot) }
	switch cmd.Op() {
	case core.OpReturn:
		return fmt.Sprintf("Return %s", op(a))
	case core.OpArith:
		if c == core.ArithInc || c == core.ArithDec {
			return fmt.Sprintf("Arith %s%s", op(a), arithNames[c])
		}
		return fmt.Sprintf("Arith %s %s %s", op(a), arithNames[c], op(b))
	case core.OpComp:
		return fmt.Sprintf("Comp %s %s %s", op(a), compNames[c], op(b))
	case core.OpLogic:
		return fmt.Sprintf("Logic %s op%d %s", op(a), c, op(b))
	case core.OpEmptyQ:
		return fmt.Sprintf("EmptyQ %s", op(a))
	case core.OpInQ:
		return fmt.Sprintf("InQ %s in %s", op(b), op(a))
	case core.OpJump:
		mode := map[uint8]string{core.JumpIfFalse: "if-false", core.JumpAlways: "always", core.JumpIfTrue: "if-true"}[a]
		return fmt.Sprintf("Jump %s -> %d", mode, c)
	case core.OpDeQueue:
		end := map[uint8]string{core.QueueHead: "head", core.QueueTail: "tail"}[c]
		return fmt.Sprintf("DeQueue %s <- %s(%s)", op(a), op(b), end)
	case core.OpEnQueue:
		end := map[uint8]string{core.QueueHead: "head", core.QueueTail: "tail"}[c]
		return fmt.Sprintf("EnQueue %s -> %s(%s)", op(a), op(b), end)
	case core.OpRequest:
		return fmt.Sprintf("Request %s", op(a))
	case core.OpRelease:
		return fmt.Sprintf("Release %s", op(a))
	case core.OpFlush:
		return fmt.Sprintf("Flush %s", op(a))
	case core.OpSet:
		bit := map[uint8]string{core.SetBitModify: "mod", core.SetBitReference: "ref"}[b]
		what := map[uint8]string{core.SetOpSet: "set", core.SetOpClear: "clear"}[c]
		return fmt.Sprintf("Set %s %s.%s", what, op(a), bit)
	case core.OpRef:
		return fmt.Sprintf("Ref %s", op(a))
	case core.OpMod:
		return fmt.Sprintf("Mod %s", op(a))
	case core.OpFind:
		return fmt.Sprintf("Find %s at %s", op(a), op(b))
	case core.OpActivate:
		return fmt.Sprintf("Activate event %d", a)
	case core.OpFIFO, core.OpLRU, core.OpMRU:
		return fmt.Sprintf("%s %s", cmd.Op(), op(a))
	case core.OpMigrate:
		return fmt.Sprintf("Migrate %s -> container %s", op(a), op(b))
	case core.OpAge:
		return fmt.Sprintf("Age %s", op(a))
	default:
		return cmd.String()
	}
}

var wellKnown = map[uint8]string{
	core.SlotScratch: "_scratch", core.SlotFreeQueue: "_free_queue",
	core.SlotFreeCount: "_free_count", core.SlotActiveQueue: "_active_queue",
	core.SlotActiveCount: "_active_count", core.SlotInactiveQueue: "_inactive_queue",
	core.SlotInactiveCount: "_inactive_count", core.SlotAllocated: "_allocated",
	core.SlotMinFrame: "_min_frame", core.SlotInactiveTgt: "inactive_target",
	core.SlotFreeTgt: "free_target", core.SlotPageReg: "page",
	core.SlotReservedTgt: "reserved_target", core.SlotFaultAddr: "_fault_addr",
	core.SlotFaultOffset: "_fault_offset", core.SlotZero: "0", core.SlotOne: "1",
}

func slotName(slot uint8) string {
	if n, ok := wellKnown[slot]; ok {
		return n
	}
	return fmt.Sprintf("op[%#02x]", slot)
}
