package hpl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"hipec/internal/core"
)

// Binary policy container format shared by hipecc and hipecdis:
//
//	u32 magic "HPEC"
//	u32 eventCount
//	per event: u32 wordCount, then wordCount little-endian command words
//
// Absent events are encoded with wordCount 0.
const binaryMagic = 0x48504543 // "HPEC"

// BinaryMagic is the container magic, exported so tools (hipeclint) can
// sniff whether a file is a hipecc binary or HPL source.
const BinaryMagic uint32 = binaryMagic

// maxBinaryEvents bounds decoding (the Activate operand is 8 bits).
const maxBinaryEvents = 256

// maxBinaryWords bounds one event (8-bit command counters).
const maxBinaryWords = 256

// EncodeBinary writes the event programs of spec in the binary container
// format.
func EncodeBinary(w io.Writer, spec *core.Spec) error {
	put := func(v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := put(binaryMagic); err != nil {
		return err
	}
	if len(spec.Events) > maxBinaryEvents {
		return fmt.Errorf("hpl: %d events exceed format limit %d", len(spec.Events), maxBinaryEvents)
	}
	if err := put(uint32(len(spec.Events))); err != nil {
		return err
	}
	for i, prog := range spec.Events {
		if len(prog) > maxBinaryWords {
			return fmt.Errorf("hpl: event %d has %d words, limit %d", i, len(prog), maxBinaryWords)
		}
		if err := put(uint32(len(prog))); err != nil {
			return err
		}
		for _, cmd := range prog {
			if err := put(uint32(cmd)); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeBinaryBytes decodes an in-memory hipecc binary container.
func DecodeBinaryBytes(data []byte) ([]core.Program, error) {
	return DecodeBinary(bytes.NewReader(data))
}

// DecodeBinary reads event programs in the binary container format.
func DecodeBinary(r io.Reader) ([]core.Program, error) {
	var get = func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("hpl: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("hpl: bad magic %#08x (not a hipecc binary)", magic)
	}
	count, err := get()
	if err != nil {
		return nil, err
	}
	if count > maxBinaryEvents {
		return nil, fmt.Errorf("hpl: implausible event count %d", count)
	}
	events := make([]core.Program, count)
	for i := range events {
		words, err := get()
		if err != nil {
			return nil, fmt.Errorf("hpl: event %d header: %w", i, err)
		}
		if words > maxBinaryWords {
			return nil, fmt.Errorf("hpl: event %d: implausible length %d", i, words)
		}
		if words == 0 {
			continue
		}
		prog := make(core.Program, words)
		for j := range prog {
			w, err := get()
			if err != nil {
				return nil, fmt.Errorf("hpl: event %d word %d: %w", i, j, err)
			}
			prog[j] = core.Command(w)
		}
		events[i] = prog
	}
	return events, nil
}
