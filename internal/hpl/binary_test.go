package hpl

import (
	"bytes"
	"testing"
	"testing/quick"

	"hipec/internal/core"
)

func TestBinaryRoundTrip(t *testing.T) {
	spec := mustSpec(t, "fig4", figure4)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, spec); err != nil {
		t.Fatal(err)
	}
	events, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(spec.Events) {
		t.Fatalf("events = %d, want %d", len(events), len(spec.Events))
	}
	for i := range events {
		if len(events[i]) != len(spec.Events[i]) {
			t.Fatalf("event %d length mismatch", i)
		}
		for j := range events[i] {
			if events[i][j] != spec.Events[i][j] {
				t.Fatalf("event %d word %d mismatch", i, j)
			}
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := DecodeBinary(bytes.NewReader([]byte("not a policy file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	spec := mustSpec(t, "fig4", figure4)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, spec); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{4, 8, 12, len(full) - 2} {
		if _, err := DecodeBinary(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncated at %d accepted", n)
		}
	}
}

func TestBinaryAbsentEvents(t *testing.T) {
	spec := &core.Spec{Events: []core.Program{
		core.NewProgram(core.Encode(core.OpReturn, 0, 0, 0)),
		nil, // absent
		core.NewProgram(core.Encode(core.OpReturn, 0, 0, 0)),
	}}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, spec); err != nil {
		t.Fatal(err)
	}
	events, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if events[1] != nil {
		t.Fatal("absent event materialized")
	}
	if len(events[0]) != 2 || len(events[2]) != 2 {
		t.Fatal("present events corrupted")
	}
}

// Property: arbitrary command words survive the round trip.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(words []uint32) bool {
		if len(words) > maxBinaryWords-1 {
			words = words[:maxBinaryWords-1]
		}
		prog := core.NewProgram()
		for _, w := range words {
			prog = append(prog, core.Command(w))
		}
		spec := &core.Spec{Events: []core.Program{prog, prog}}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, spec); err != nil {
			return false
		}
		events, err := DecodeBinary(&buf)
		if err != nil || len(events) != 2 {
			return false
		}
		for _, ev := range events {
			if len(ev) != len(prog) {
				return false
			}
			for i := range ev {
				if ev[i] != prog[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
