package hpl

// AST node definitions for HPL. The tree is deliberately small: the target
// machine has one condition register and 8-bit operand slots, so expressions
// stay simple.

type program struct {
	settings []setting
	decls    []decl
	events   []*eventDecl
}

// setting is a top-level "name = int" assignment (minframe, free_target,
// inactive_target, reserved_target).
type setting struct {
	tok   token
	name  string
	value int64
}

type declKind uint8

const (
	declVar declKind = iota
	declConst
	declQueue
	declPage
)

type decl struct {
	tok  token
	kind declKind
	name string
	init int64
}

type eventDecl struct {
	tok  token
	name string
	body []stmt
}

// --- statements ----------------------------------------------------------

type stmt interface{ stmtNode() }

// assignStmt is "target = expr" where expr is an int or page expression.
type assignStmt struct {
	tok    token
	target string
	value  expr
}

// callStmt is a built-in procedure call: enqueue_tail(q, p), flush(p), ...
type callStmt struct {
	tok  token
	name string
	args []expr
}

// activateStmt invokes another event.
type activateStmt struct {
	tok   token
	event string
}

type ifStmt struct {
	tok  token
	cond cond
	then []stmt
	els  []stmt
}

type whileStmt struct {
	tok  token
	cond cond
	body []stmt
}

type returnStmt struct {
	tok   token
	value expr // nil for bare return
}

type breakStmt struct{ tok token }
type continueStmt struct{ tok token }

func (*assignStmt) stmtNode()   {}
func (*callStmt) stmtNode()     {}
func (*activateStmt) stmtNode() {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}

// --- expressions ---------------------------------------------------------

type expr interface{ exprNode() }

// intLit is an integer literal.
type intLit struct {
	tok token
	val int64
}

// varRef names a variable (int, page or queue, resolved at codegen).
type varRef struct {
	tok  token
	name string
}

// binExpr is an integer binary operation: + - * / %.
type binExpr struct {
	tok  token
	op   string
	l, r expr
}

// callExpr is a value-returning builtin: dequeue_head(q), find(addr).
type callExpr struct {
	tok  token
	name string
	args []expr
}

func (*intLit) exprNode()   {}
func (*varRef) exprNode()   {}
func (*binExpr) exprNode()  {}
func (*callExpr) exprNode() {}

// --- conditions ----------------------------------------------------------

// cond is a boolean expression evaluated for control flow.
type cond interface{ condNode() }

// relCond compares two integer expressions: == != < <= > >=.
type relCond struct {
	tok  token
	op   string
	l, r expr
}

// boolCall is a boolean builtin: empty(q), inq(q,p), referenced(p),
// modified(p), request(n).
type boolCall struct {
	tok  token
	name string
	args []expr
}

// varCond tests a boolean/int variable for truthiness.
type varCond struct {
	tok  token
	name string
}

type andCond struct{ l, r cond }
type orCond struct{ l, r cond }
type notCond struct{ c cond }

func (*relCond) condNode()  {}
func (*boolCall) condNode() {}
func (*varCond) condNode()  {}
func (*andCond) condNode()  {}
func (*orCond) condNode()   {}
func (*notCond) condNode()  {}
