package hpl

import (
	"strings"
	"testing"

	"hipec/internal/core"
)

// figure4 is the paper's Figure 4 pseudo-code program (FIFO with second
// chance), with the empty-queue guards spelled out and the paper's own
// builtin spellings (de_queue_head, en_queue_tail, reserve_target).
const figure4 = `
minframe = 16
free_target = 4
inactive_target = 6
reserved_target = 1

event PageFault() {
    if (_free_count > reserve_target) {
        page = de_queue_head(_free_queue)
    } else {
        activate Lack_free_frame()
        page = de_queue_head(_free_queue)
    }
    return page
}

event Lack_free_frame() {
    /* FIFO with 2nd Chance */
    while (_inactive_count < inactive_target && !empty(_active_queue)) {
        page = de_queue_head(_active_queue)
        reset_ref(page)
        en_queue_tail(_inactive_queue, page)
    }
    while (_free_count < free_target && !empty(_inactive_queue)) {
        page = de_queue_head(_inactive_queue)
        if (referenced(page)) {
            reset_ref(page)
            en_queue_tail(_active_queue, page)
        } else {
            if (modified(page)) {
                flush(page)
            }
            en_queue_head(_free_queue, page)
        }
    }
}

event ReclaimFrame() {
    if (!empty(_free_queue)) {
        release(1)
    }
    return
}
`

func mustSpec(t *testing.T, name, src string) *core.Spec {
	t.Helper()
	spec, err := Translate(name, src)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return spec
}

func TestFigure4Translates(t *testing.T) {
	spec := mustSpec(t, "fig4", figure4)
	if spec.MinFrame != 16 {
		t.Fatalf("MinFrame = %d", spec.MinFrame)
	}
	if len(spec.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(spec.Events))
	}
	if spec.Events[core.EventPageFault] == nil || spec.Events[core.EventReclaimFrame] == nil {
		t.Fatal("mandatory events missing")
	}
	if spec.EventNames[2] != "Lack_free_frame" {
		t.Fatalf("user event name = %q", spec.EventNames[2])
	}
	for _, prog := range spec.Events {
		if prog[0] != core.Magic {
			t.Fatal("program missing magic word")
		}
	}
}

func TestFigure4RunsOnKernel(t *testing.T) {
	spec := mustSpec(t, "fig4", figure4)
	k := core.New(core.Config{Frames: 256})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 64*4096, core.WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		for i := int64(0); i < 64; i++ {
			if _, err := sp.Write(e.Start + i*4096); err != nil {
				t.Fatalf("round %d page %d: %v", round, i, err)
			}
		}
	}
	if c.State() != core.StateActive {
		t.Fatalf("container %v: %s", c.State(), c.TerminationReason())
	}
	if got := e.Object.ResidentCount(); got > 16 {
		t.Fatalf("resident %d > private pool 16", got)
	}
	if c.Stats().Flushes == 0 {
		t.Fatal("dirty sweep produced no flushes")
	}
}

func TestMRUPolicyTranslatesAndIsCorrect(t *testing.T) {
	src := `
minframe = 8
event PageFault() {
    if (empty(_free_queue)) {
        mru(_active_queue)
    }
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() {
    if (!empty(_free_queue)) { release(1) }
    return
}
`
	spec := mustSpec(t, "mru", src)
	k := core.New(core.Config{Frames: 256})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 16*4096, core.WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	// Touch pages 0..15 sequentially. With an 8-frame MRU pool the
	// resident set converges to the first 7 pages plus the newest.
	for i := int64(0); i < 16; i++ {
		if _, err := sp.Touch(e.Start + i*4096); err != nil {
			t.Fatal(err)
		}
		k.Clock.Advance(1000) // distinct timestamps
	}
	if c.State() != core.StateActive {
		t.Fatal(c.TerminationReason())
	}
	for i := int64(0); i < 7; i++ {
		if e.Object.Resident(i*4096) == nil {
			t.Fatalf("MRU evicted old page %d; want old pages retained", i)
		}
	}
	if e.Object.Resident(15*4096) == nil {
		t.Fatal("newest page not resident")
	}
}

func TestIntExpressionsAndVars(t *testing.T) {
	src := `
minframe = 4
var x = 5
const k = 3
event PageFault() {
    x = x * 2 + k - 1   // 12
    if (x == 12) {
        page = dequeue_head(_free_queue)
        return page
    }
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() { return }
`
	spec := mustSpec(t, "expr", src)
	k := core.New(core.Config{Frames: 64})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 4*4096, core.WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err != nil {
		t.Fatal(err)
	}
	// Find x and verify the arithmetic executed.
	found := false
	for _, d := range spec.Operands {
		if d.Name == "x" {
			if got := c.Operand(d.Slot).Int; got != 12 {
				t.Fatalf("x = %d, want 12", got)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("x not in operand decls")
	}
}

func TestBooleanOperators(t *testing.T) {
	src := `
minframe = 4
var hits = 0
event PageFault() {
    if ((_free_count > 0 && !empty(_free_queue)) || _allocated < 0) {
        hits = hits + 1
    }
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() { return }
`
	spec := mustSpec(t, "bools", src)
	k := core.New(core.Config{Frames: 64})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 4*4096, core.WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	sp.Touch(e.Start)
	sp.Touch(e.Start + 4096)
	var hitsSlot uint8
	for _, d := range spec.Operands {
		if d.Name == "hits" {
			hitsSlot = d.Slot
		}
	}
	if got := c.Operand(hitsSlot).Int; got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
}

func TestWhileWithBreakContinue(t *testing.T) {
	src := `
minframe = 4
var i = 0
var total = 0
event PageFault() {
    i = 0
    total = 0
    while (i < 10) {
        i = i + 1
        if (i == 3) { continue }
        if (i > 5) { break }
        total = total + i
    }
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() { return }
`
	spec := mustSpec(t, "loops", src)
	k := core.New(core.Config{Frames: 64})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 4096, core.WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Touch(e.Start); err != nil {
		t.Fatal(err)
	}
	var totalSlot uint8
	for _, d := range spec.Operands {
		if d.Name == "total" {
			totalSlot = d.Slot
		}
	}
	// 1+2+4+5 = 12 (3 skipped by continue, 6.. stopped by break)
	if got := c.Operand(totalSlot).Int; got != 12 {
		t.Fatalf("total = %d, want 12", got)
	}
}

func TestUserQueuesAndRegisters(t *testing.T) {
	src := `
minframe = 4
queue cold
page victim
event PageFault() {
    if (empty(_free_queue)) {
        victim = dequeue_head(cold)
        enqueue_tail(_free_queue, victim)
        page = dequeue_head(_free_queue)
        return page
    }
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() { return }
`
	spec := mustSpec(t, "userq", src)
	k := core.New(core.Config{Frames: 64})
	sp := k.NewSpace()
	if _, _, err := k.Allocate(sp, 4*4096, core.WithPolicy(spec)); err != nil {
		t.Fatal(err)
	}
}

func TestTranslatorErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing events", `event PageFault() { return }`, "ReclaimFrame"},
		{"no events", `var x = 1`, "no events"},
		{"undefined var", `event PageFault() { y = 1 return } event ReclaimFrame() { return }`, "undefined name"},
		{"undefined activate", `event PageFault() { activate Nope() return } event ReclaimFrame() { return }`, "undefined event"},
		{"assign to queue", `event PageFault() { _free_queue = 1 return } event ReclaimFrame() { return }`, "read-only"},
		{"assign to readonly", `event PageFault() { _free_count = 1 return } event ReclaimFrame() { return }`, "read-only"},
		{"page copy", `page p event PageFault() { p = page return } event ReclaimFrame() { return }`, "cannot be copied"},
		{"bad builtin", `event PageFault() { frobnicate(1) return } event ReclaimFrame() { return }`, "unknown builtin"},
		{"redeclare builtin", `var page event PageFault() { return } event ReclaimFrame() { return }`, ""},
		{"queue arg type", `event PageFault() { fifo(page) return } event ReclaimFrame() { return }`, "want queue"},
		{"unterminated block", `event PageFault() { return `, "unterminated"},
		{"bad setting", `bogus = 3 event PageFault() { return } event ReclaimFrame() { return }`, "unknown setting"},
		{"duplicate event", `event PageFault() { return } event PageFault() { return } event ReclaimFrame() { return }`, "redefined"},
		{"break outside loop", `event PageFault() { break return } event ReclaimFrame() { return }`, "outside a loop"},
		{"const needs init", `const k event PageFault() { return } event ReclaimFrame() { return }`, "initializer"},
		{"unterminated comment", `/* oops event PageFault() { return }`, "unterminated block comment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Translate(tc.name, tc.src)
			if err == nil {
				t.Fatalf("%s: accepted", tc.name)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Every translator output must pass the kernel's static security checker —
// the translator may never emit code the checker rejects.
func TestTranslatorOutputPassesChecker(t *testing.T) {
	sources := []string{figure4,
		`minframe = 4
		 event PageFault() { page = dequeue_head(_free_queue) return page }
		 event ReclaimFrame() { release(1) return }`,
		`minframe = 4
		 var n = 0
		 event PageFault() {
		   n = n + 1
		   if (n % 2 == 0) { lru(_active_queue) } else { fifo(_active_queue) }
		   page = dequeue_head(_free_queue)
		   return page
		 }
		 event ReclaimFrame() { if (request(2)) { release(2) } return }`,
	}
	for i, src := range sources {
		spec, err := Translate("gen", src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		k := core.New(core.Config{Frames: 128})
		sp := k.NewSpace()
		if _, _, err := k.Allocate(sp, 4*4096, core.WithPolicy(spec)); err != nil {
			t.Fatalf("source %d rejected by checker: %v", i, err)
		}
	}
}

func TestDisassembler(t *testing.T) {
	spec := mustSpec(t, "fig4", figure4)
	out := DisassembleSpec(spec)
	for _, want := range []string{"PageFault", "Lack_free_frame", "DeQueue", "Comp", "Jump", "Flush", "HiPEC Magic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
	// Single-program form.
	one := Disassemble(spec.Events[core.EventPageFault])
	if !strings.Contains(one, "Return page") {
		t.Fatalf("PageFault disassembly missing return:\n%s", one)
	}
}

func TestConstPoolDeduplication(t *testing.T) {
	src := `
minframe = 4
var a = 0
event PageFault() {
    a = 7
    a = a + 7
    a = a + 7
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() { return }
`
	spec := mustSpec(t, "consts", src)
	count := 0
	for _, d := range spec.Operands {
		if d.Const && d.Init == 7 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("constant 7 pooled %d times, want 1", count)
	}
}

func TestNegativeLiterals(t *testing.T) {
	src := `
minframe = 4
var a = -5
event PageFault() {
    a = a + -3
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() { return }
`
	spec := mustSpec(t, "neg", src)
	k := core.New(core.Config{Frames: 64})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 4096, core.WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	sp.Touch(e.Start)
	for _, d := range spec.Operands {
		if d.Name == "a" {
			if got := c.Operand(d.Slot).Int; got != -8 {
				t.Fatalf("a = %d, want -8", got)
			}
		}
	}
}

func TestFaultAddrVisibleToPolicy(t *testing.T) {
	src := `
minframe = 4
var lastaddr = 0
event PageFault() {
    lastaddr = _fault_offset
    page = dequeue_head(_free_queue)
    return page
}
event ReclaimFrame() { return }
`
	spec := mustSpec(t, "addr", src)
	k := core.New(core.Config{Frames: 64})
	sp := k.NewSpace()
	e, c, err := k.Allocate(sp, 8*4096, core.WithPolicy(spec))
	if err != nil {
		t.Fatal(err)
	}
	sp.Touch(e.Start + 3*4096)
	for _, d := range spec.Operands {
		if d.Name == "lastaddr" {
			if got := c.Operand(d.Slot).Int; got != 3*4096 {
				t.Fatalf("lastaddr = %d, want %d", got, 3*4096)
			}
		}
	}
}
