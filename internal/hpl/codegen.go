package hpl

import (
	"fmt"
	"strings"

	"hipec/internal/core"
)

// The client seam's WithPolicySource needs HPL translation where the kernel
// lives, but core cannot import hpl (hpl imports core). Register Translate
// behind core's hook: any program linking this package — everything that
// imports hipec or internal/server — can open regions from policy source.
func init() { core.RegisterPolicyTranslator(Translate) }

// Translate compiles HPL source into a core.Spec ready for
// vm_allocate_hipec / vm_map_hipec. name labels the policy.
func Translate(name, src string) (*core.Spec, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	cg := newCodegen(name)
	return cg.compile(prog)
}

// MustTranslate is Translate for known-good embedded policies.
func MustTranslate(name, src string) *core.Spec {
	s, err := Translate(name, src)
	if err != nil {
		panic(err)
	}
	return s
}

type symbol struct {
	name     string
	slot     uint8
	kind     core.Kind
	readOnly bool
}

type codegen struct {
	spec      *core.Spec
	syms      map[string]*symbol
	nextSlot  int
	constPool map[int64]uint8
	eventNums map[string]int

	// per-event state
	code      []core.Command
	patches   []patch
	labelPos  map[int]int
	nextLabel int
	tempHi    []uint8 // allocated temp slots (reused across statements)
	tempNext  int     // temps in use by the current statement
	loops     []loopLabels
}

type patch struct {
	cc    int
	label int
	tok   token
}

type loopLabels struct{ brk, cont int }

func newCodegen(name string) *codegen {
	cg := &codegen{
		spec:      &core.Spec{Name: name},
		syms:      make(map[string]*symbol),
		nextSlot:  int(core.SlotUser),
		constPool: make(map[int64]uint8),
		eventNums: make(map[string]int),
	}
	builtin := func(name string, slot uint8, kind core.Kind, ro bool) {
		cg.syms[name] = &symbol{name: name, slot: slot, kind: kind, readOnly: ro}
	}
	builtin("_free_queue", core.SlotFreeQueue, core.KindQueue, true)
	builtin("_free_count", core.SlotFreeCount, core.KindInt, true)
	builtin("_active_queue", core.SlotActiveQueue, core.KindQueue, true)
	builtin("_active_count", core.SlotActiveCount, core.KindInt, true)
	builtin("_inactive_queue", core.SlotInactiveQueue, core.KindQueue, true)
	builtin("_inactive_count", core.SlotInactiveCount, core.KindInt, true)
	builtin("_allocated", core.SlotAllocated, core.KindInt, true)
	builtin("_min_frame", core.SlotMinFrame, core.KindInt, true)
	builtin("inactive_target", core.SlotInactiveTgt, core.KindInt, false)
	builtin("free_target", core.SlotFreeTgt, core.KindInt, false)
	builtin("page", core.SlotPageReg, core.KindPage, false)
	builtin("reserved_target", core.SlotReservedTgt, core.KindInt, false)
	builtin("reserve_target", core.SlotReservedTgt, core.KindInt, false) // Figure 4 spelling
	builtin("_fault_addr", core.SlotFaultAddr, core.KindInt, true)
	builtin("_fault_offset", core.SlotFaultOffset, core.KindInt, true)
	builtin("_scratch", core.SlotScratch, core.KindInt, false)
	return cg
}

func (cg *codegen) allocSlot(tok token) (uint8, error) {
	if cg.nextSlot > 255 {
		return 0, errAt(tok, "operand array exhausted (more than 256 slots)")
	}
	s := uint8(cg.nextSlot)
	cg.nextSlot++
	return s, nil
}

func (cg *codegen) compile(prog *program) (*core.Spec, error) {
	// Settings.
	for _, s := range prog.settings {
		switch s.name {
		case "minframe", "min_frame":
			cg.spec.MinFrame = int(s.value)
		case "extensions":
			cg.spec.EnableExtensions = s.value != 0
		case "access_order":
			cg.spec.AccessOrderQueues = s.value != 0
		case "free_target", "inactive_target", "reserved_target", "reserve_target":
			sym := cg.syms[s.name]
			cg.spec.Operands = append(cg.spec.Operands, core.OperandDecl{
				Slot: sym.slot, Kind: core.KindInt, Name: sym.name, Init: s.value,
			})
		default:
			return nil, errAt(s.tok, "unknown setting %q (want minframe, extensions, access_order, free_target, inactive_target or reserved_target)", s.name)
		}
	}
	// Declarations.
	for _, d := range prog.decls {
		if _, exists := cg.syms[d.name]; exists {
			return nil, errAt(d.tok, "%q redeclared (or shadows a builtin)", d.name)
		}
		slot, err := cg.allocSlot(d.tok)
		if err != nil {
			return nil, err
		}
		var kind core.Kind
		ro := false
		switch d.kind {
		case declVar:
			kind = core.KindInt
		case declConst:
			kind = core.KindInt
			ro = true
		case declQueue:
			kind = core.KindQueue
			ro = true
		case declPage:
			kind = core.KindPage
		}
		cg.syms[d.name] = &symbol{name: d.name, slot: slot, kind: kind, readOnly: ro}
		cg.spec.Operands = append(cg.spec.Operands, core.OperandDecl{
			Slot: slot, Kind: kind, Name: d.name, Init: d.init, Const: ro && kind == core.KindInt,
		})
	}
	// Event numbering: PageFault=0, ReclaimFrame=1, then declaration order.
	var userEvents []*eventDecl
	byName := map[string]*eventDecl{}
	for _, ev := range prog.events {
		if byName[ev.name] != nil {
			return nil, errAt(ev.tok, "event %q redefined", ev.name)
		}
		byName[ev.name] = ev
		switch ev.name {
		case "PageFault":
			cg.eventNums[ev.name] = core.EventPageFault
		case "ReclaimFrame":
			cg.eventNums[ev.name] = core.EventReclaimFrame
		default:
			userEvents = append(userEvents, ev)
		}
	}
	if byName["PageFault"] == nil || byName["ReclaimFrame"] == nil {
		return nil, &Error{Line: 1, Col: 1, Msg: "policy must define both PageFault and ReclaimFrame events"}
	}
	for i, ev := range userEvents {
		cg.eventNums[ev.name] = core.EventUser + i
	}
	n := core.EventUser + len(userEvents)
	cg.spec.Events = make([]core.Program, n)
	cg.spec.EventNames = make([]string, n)
	for name, num := range cg.eventNums {
		cg.spec.EventNames[num] = name
	}
	for _, ev := range prog.events {
		p, err := cg.compileEvent(ev)
		if err != nil {
			return nil, err
		}
		cg.spec.Events[cg.eventNums[ev.name]] = p
	}
	return cg.spec, nil
}

// --- emission helpers ----------------------------------------------------

func (cg *codegen) emit(cmd core.Command) int {
	cg.code = append(cg.code, cmd)
	return len(cg.code) - 1
}

func (cg *codegen) newLabel() int {
	cg.nextLabel++
	return cg.nextLabel
}

func (cg *codegen) bind(label int) {
	cg.labelPos[label] = len(cg.code)
}

func (cg *codegen) jump(tok token, mode uint8, label int) {
	cc := cg.emit(core.Encode(core.OpJump, mode, 0, 0))
	cg.patches = append(cg.patches, patch{cc: cc, label: label, tok: tok})
}

func (cg *codegen) compileEvent(ev *eventDecl) (core.Program, error) {
	cg.code = []core.Command{core.Magic}
	cg.patches = nil
	cg.labelPos = map[int]int{}
	cg.loops = nil
	if err := cg.compileStmts(ev.body); err != nil {
		return nil, err
	}
	// Implicit bare return if the body can fall off the end.
	cg.emit(core.Encode(core.OpReturn, core.SlotScratch, 0, 0))
	if len(cg.code) > 256 {
		return nil, errAt(ev.tok, "event %q compiles to %d commands; 8-bit command counters allow at most 256", ev.name, len(cg.code))
	}
	for _, p := range cg.patches {
		pos, ok := cg.labelPos[p.label]
		if !ok {
			return nil, errAt(p.tok, "internal error: unbound label")
		}
		if pos >= len(cg.code) {
			// A label bound at the very end points at the implicit
			// return we just emitted... which is len-1; pos==len means
			// label bound after the final emit — impossible since we
			// appended the return afterwards. Guard anyway.
			pos = len(cg.code) - 1
		}
		old := cg.code[p.cc]
		cg.code[p.cc] = core.Encode(core.OpJump, old.A(), 0, uint8(pos))
	}
	return core.Program(cg.code), nil
}

func (cg *codegen) compileStmts(body []stmt) error {
	for _, s := range body {
		cg.tempNext = 0 // temporaries are statement-scoped
		if err := cg.compileStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (cg *codegen) compileStmt(s stmt) error {
	switch n := s.(type) {
	case *returnStmt:
		return cg.compileReturn(n)
	case *assignStmt:
		return cg.compileAssign(n)
	case *callStmt:
		return cg.compileCall(n)
	case *activateStmt:
		num, ok := cg.eventNums[n.event]
		if !ok {
			return errAt(n.tok, "activate of undefined event %q", n.event)
		}
		cg.emit(core.Encode(core.OpActivate, uint8(num), 0, 0))
		return nil
	case *ifStmt:
		thenL, elseL, endL := cg.newLabel(), cg.newLabel(), cg.newLabel()
		if err := cg.compileCond(n.cond, thenL, elseL); err != nil {
			return err
		}
		cg.bind(thenL)
		if err := cg.compileStmts(n.then); err != nil {
			return err
		}
		if len(n.els) > 0 {
			cg.jump(n.tok, core.JumpAlways, endL)
			cg.bind(elseL)
			if err := cg.compileStmts(n.els); err != nil {
				return err
			}
			cg.bind(endL)
		} else {
			cg.bind(elseL)
			cg.bind(endL)
		}
		return nil
	case *whileStmt:
		topL, bodyL, endL := cg.newLabel(), cg.newLabel(), cg.newLabel()
		cg.bind(topL)
		if err := cg.compileCond(n.cond, bodyL, endL); err != nil {
			return err
		}
		cg.bind(bodyL)
		cg.loops = append(cg.loops, loopLabels{brk: endL, cont: topL})
		if err := cg.compileStmts(n.body); err != nil {
			return err
		}
		cg.loops = cg.loops[:len(cg.loops)-1]
		cg.jump(n.tok, core.JumpAlways, topL)
		cg.bind(endL)
		return nil
	case *breakStmt:
		if len(cg.loops) == 0 {
			return errAt(n.tok, "break outside a loop")
		}
		cg.jump(n.tok, core.JumpAlways, cg.loops[len(cg.loops)-1].brk)
		return nil
	case *continueStmt:
		if len(cg.loops) == 0 {
			return errAt(n.tok, "continue outside a loop")
		}
		cg.jump(n.tok, core.JumpAlways, cg.loops[len(cg.loops)-1].cont)
		return nil
	default:
		return fmt.Errorf("hpl: unknown statement %T", s)
	}
}

func (cg *codegen) compileReturn(n *returnStmt) error {
	if n.value == nil {
		cg.emit(core.Encode(core.OpReturn, core.SlotScratch, 0, 0))
		return nil
	}
	switch e := n.value.(type) {
	case *varRef:
		sym, err := cg.lookup(e.tok, e.name)
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpReturn, sym.slot, 0, 0))
		return nil
	case *callExpr:
		if _, ok := pageBuiltins[e.name]; ok {
			slot, err := cg.compilePageCallInto(e, core.SlotPageReg)
			if err != nil {
				return err
			}
			cg.emit(core.Encode(core.OpReturn, slot, 0, 0))
			return nil
		}
		return errAt(e.tok, "cannot return call %q", e.name)
	default:
		slot, err := cg.compileInt(n.value)
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpReturn, slot, 0, 0))
		return nil
	}
}

func (cg *codegen) lookup(tok token, name string) (*symbol, error) {
	sym, ok := cg.syms[name]
	if !ok {
		return nil, errAt(tok, "undefined name %q", name)
	}
	return sym, nil
}

func (cg *codegen) compileAssign(n *assignStmt) error {
	sym, err := cg.lookup(n.tok, n.target)
	if err != nil {
		return err
	}
	if sym.readOnly {
		return errAt(n.tok, "%q is read-only", n.target)
	}
	switch sym.kind {
	case core.KindPage:
		call, ok := n.value.(*callExpr)
		if !ok {
			if _, isVar := n.value.(*varRef); isVar {
				return errAt(n.tok, "page registers cannot be copied; dequeue into the target register directly")
			}
			return errAt(n.tok, "page %q must be assigned from dequeue_head, dequeue_tail or find", n.target)
		}
		_, err := cg.compilePageCallInto(call, sym.slot)
		return err
	case core.KindInt:
		src, err := cg.compileInt(n.value)
		if err != nil {
			return err
		}
		if src != sym.slot {
			cg.emit(core.Encode(core.OpArith, sym.slot, src, core.ArithMov))
		}
		return nil
	default:
		return errAt(n.tok, "cannot assign to %v %q", sym.kind, n.target)
	}
}

// compilePageCallInto emits a page-valued builtin writing into dest.
func (cg *codegen) compilePageCallInto(e *callExpr, dest uint8) (uint8, error) {
	switch e.name {
	case "dequeue_head", "dequeue_tail", "de_queue_head", "de_queue_tail":
		q, err := cg.queueArg(e, 0, 1)
		if err != nil {
			return 0, err
		}
		flag := core.QueueHead
		if strings.HasSuffix(e.name, "tail") {
			flag = core.QueueTail
		}
		cg.emit(core.Encode(core.OpDeQueue, dest, q, flag))
		return dest, nil
	case "find":
		if len(e.args) != 1 {
			return 0, errAt(e.tok, "find takes 1 argument")
		}
		addr, err := cg.compileInt(e.args[0])
		if err != nil {
			return 0, err
		}
		cg.emit(core.Encode(core.OpFind, dest, addr, 0))
		return dest, nil
	default:
		return 0, errAt(e.tok, "%q is not a page-valued builtin", e.name)
	}
}

func (cg *codegen) queueArg(e *callExpr, idx, arity int) (uint8, error) {
	if len(e.args) != arity {
		return 0, errAt(e.tok, "%s takes %d argument(s), got %d", e.name, arity, len(e.args))
	}
	v, ok := e.args[idx].(*varRef)
	if !ok {
		return 0, errAt(e.tok, "argument %d of %s must be a queue", idx+1, e.name)
	}
	sym, err := cg.lookup(v.tok, v.name)
	if err != nil {
		return 0, err
	}
	if sym.kind != core.KindQueue {
		return 0, errAt(v.tok, "%q is %v, want queue", v.name, sym.kind)
	}
	return sym.slot, nil
}

func (cg *codegen) pageArg(e *callExpr, idx int) (uint8, error) {
	v, ok := e.args[idx].(*varRef)
	if !ok {
		return 0, errAt(e.tok, "argument %d of %s must be a page register", idx+1, e.name)
	}
	sym, err := cg.lookup(v.tok, v.name)
	if err != nil {
		return 0, err
	}
	if sym.kind != core.KindPage {
		return 0, errAt(v.tok, "%q is %v, want page", v.name, sym.kind)
	}
	return sym.slot, nil
}

func (cg *codegen) compileCall(n *callStmt) error {
	e := &callExpr{tok: n.tok, name: n.name, args: n.args}
	switch n.name {
	case "enqueue_head", "enqueue_tail", "en_queue_head", "en_queue_tail":
		if len(n.args) != 2 {
			return errAt(n.tok, "%s takes (queue, page)", n.name)
		}
		q, err := cg.queueArg(e, 0, 2)
		if err != nil {
			return err
		}
		p, err := cg.pageArg(e, 1)
		if err != nil {
			return err
		}
		flag := core.QueueHead
		if strings.HasSuffix(n.name, "tail") {
			flag = core.QueueTail
		}
		cg.emit(core.Encode(core.OpEnQueue, p, q, flag))
		return nil
	case "flush":
		if len(n.args) != 1 {
			return errAt(n.tok, "flush takes (page)")
		}
		p, err := cg.pageArg(e, 0)
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpFlush, p, 0, 0))
		return nil
	case "set_ref", "reset_ref", "clear_ref", "set_mod", "reset_mod", "clear_mod":
		if len(n.args) != 1 {
			return errAt(n.tok, "%s takes (page)", n.name)
		}
		p, err := cg.pageArg(e, 0)
		if err != nil {
			return err
		}
		bit := core.SetBitReference
		if n.name == "set_mod" || n.name == "reset_mod" || n.name == "clear_mod" {
			bit = core.SetBitModify
		}
		op := core.SetOpSet
		if n.name != "set_ref" && n.name != "set_mod" {
			op = core.SetOpClear
		}
		cg.emit(core.Encode(core.OpSet, p, bit, op))
		return nil
	case "release":
		if len(n.args) != 1 {
			return errAt(n.tok, "release takes (page) or (count)")
		}
		if v, ok := n.args[0].(*varRef); ok {
			sym, err := cg.lookup(v.tok, v.name)
			if err != nil {
				return err
			}
			if sym.kind == core.KindPage {
				cg.emit(core.Encode(core.OpRelease, sym.slot, 0, 0))
				return nil
			}
		}
		slot, err := cg.compileInt(n.args[0])
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpRelease, slot, 0, 0))
		return nil
	case "request":
		if len(n.args) != 1 {
			return errAt(n.tok, "request takes (count)")
		}
		slot, err := cg.compileInt(n.args[0])
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpRequest, slot, 0, 0))
		return nil
	case "fifo", "lru", "mru", "age":
		q, err := cg.queueArg(e, 0, 1)
		if err != nil {
			return err
		}
		op := map[string]core.Opcode{"fifo": core.OpFIFO, "lru": core.OpLRU, "mru": core.OpMRU, "age": core.OpAge}[n.name]
		cg.emit(core.Encode(op, q, 0, 0))
		return nil
	case "migrate":
		if len(n.args) != 2 {
			return errAt(n.tok, "migrate takes (page, container)")
		}
		p, err := cg.pageArg(e, 0)
		if err != nil {
			return err
		}
		dst, err := cg.compileInt(n.args[1])
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpMigrate, p, dst, 0))
		return nil
	default:
		return errAt(n.tok, "unknown builtin %q", n.name)
	}
}

// --- conditions ----------------------------------------------------------

var compFlags = map[string]uint8{
	"==": core.CompEQ, ">": core.CompGT, "<": core.CompLT,
	"!=": core.CompNE, ">=": core.CompGE, "<=": core.CompLE,
}

func (cg *codegen) compileCond(c cond, trueL, falseL int) error {
	switch n := c.(type) {
	case *relCond:
		l, err := cg.compileInt(n.l)
		if err != nil {
			return err
		}
		r, err := cg.compileInt(n.r)
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpComp, l, r, compFlags[n.op]))
		cg.jump(n.tok, core.JumpIfFalse, falseL)
		cg.jump(n.tok, core.JumpAlways, trueL)
		return nil
	case *boolCall:
		if err := cg.emitBoolCall(n); err != nil {
			return err
		}
		cg.jump(n.tok, core.JumpIfFalse, falseL)
		cg.jump(n.tok, core.JumpAlways, trueL)
		return nil
	case *varCond:
		sym, err := cg.lookup(n.tok, n.name)
		if err != nil {
			return err
		}
		if sym.kind != core.KindInt && sym.kind != core.KindBool {
			return errAt(n.tok, "%q is %v, cannot be a condition", n.name, sym.kind)
		}
		cg.emit(core.Encode(core.OpComp, sym.slot, core.SlotZero, core.CompNE))
		cg.jump(n.tok, core.JumpIfFalse, falseL)
		cg.jump(n.tok, core.JumpAlways, trueL)
		return nil
	case *andCond:
		mid := cg.newLabel()
		if err := cg.compileCond(n.l, mid, falseL); err != nil {
			return err
		}
		cg.bind(mid)
		return cg.compileCond(n.r, trueL, falseL)
	case *orCond:
		mid := cg.newLabel()
		if err := cg.compileCond(n.l, trueL, mid); err != nil {
			return err
		}
		cg.bind(mid)
		return cg.compileCond(n.r, trueL, falseL)
	case *notCond:
		return cg.compileCond(n.c, falseL, trueL)
	default:
		return fmt.Errorf("hpl: unknown condition %T", c)
	}
}

func (cg *codegen) emitBoolCall(n *boolCall) error {
	e := &callExpr{tok: n.tok, name: n.name, args: n.args}
	switch n.name {
	case "empty":
		q, err := cg.queueArg(e, 0, 1)
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpEmptyQ, q, 0, 0))
	case "inq":
		if len(n.args) != 2 {
			return errAt(n.tok, "inq takes (queue, page)")
		}
		q, err := cg.queueArg(e, 0, 2)
		if err != nil {
			return err
		}
		p, err := cg.pageArg(e, 1)
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpInQ, q, p, 0))
	case "referenced", "modified":
		if len(n.args) != 1 {
			return errAt(n.tok, "%s takes (page)", n.name)
		}
		p, err := cg.pageArg(e, 0)
		if err != nil {
			return err
		}
		op := core.OpRef
		if n.name == "modified" {
			op = core.OpMod
		}
		cg.emit(core.Encode(op, p, 0, 0))
	case "request":
		if len(n.args) != 1 {
			return errAt(n.tok, "request takes (count)")
		}
		slot, err := cg.compileInt(n.args[0])
		if err != nil {
			return err
		}
		cg.emit(core.Encode(core.OpRequest, slot, 0, 0))
	default:
		return errAt(n.tok, "unknown boolean builtin %q", n.name)
	}
	return nil
}

// --- integer expressions --------------------------------------------------

func (cg *codegen) constSlot(tok token, v int64) (uint8, error) {
	if v == 0 {
		return core.SlotZero, nil
	}
	if v == 1 {
		return core.SlotOne, nil
	}
	if s, ok := cg.constPool[v]; ok {
		return s, nil
	}
	slot, err := cg.allocSlot(tok)
	if err != nil {
		return 0, err
	}
	cg.constPool[v] = slot
	cg.spec.Operands = append(cg.spec.Operands, core.OperandDecl{
		Slot: slot, Kind: core.KindInt, Name: fmt.Sprintf("const$%d", v), Init: v, Const: true,
	})
	return slot, nil
}

func (cg *codegen) tempSlot(tok token) (uint8, error) {
	if cg.tempNext < len(cg.tempHi) {
		s := cg.tempHi[cg.tempNext]
		cg.tempNext++
		return s, nil
	}
	slot, err := cg.allocSlot(tok)
	if err != nil {
		return 0, err
	}
	cg.tempHi = append(cg.tempHi, slot)
	cg.tempNext++
	cg.spec.Operands = append(cg.spec.Operands, core.OperandDecl{
		Slot: slot, Kind: core.KindInt, Name: fmt.Sprintf("tmp$%d", len(cg.tempHi)-1),
	})
	return slot, nil
}

var arithFlags = map[string]uint8{
	"+": core.ArithAdd, "-": core.ArithSub, "*": core.ArithMul,
	"/": core.ArithDiv, "%": core.ArithMod,
}

// compileInt evaluates an integer expression, returning the slot holding
// its value (which may be a variable, constant-pool or temp slot).
func (cg *codegen) compileInt(e expr) (uint8, error) {
	switch n := e.(type) {
	case *intLit:
		return cg.constSlot(n.tok, n.val)
	case *varRef:
		sym, err := cg.lookup(n.tok, n.name)
		if err != nil {
			return 0, err
		}
		if sym.kind != core.KindInt {
			return 0, errAt(n.tok, "%q is %v, want int", n.name, sym.kind)
		}
		return sym.slot, nil
	case *binExpr:
		l, err := cg.compileInt(n.l)
		if err != nil {
			return 0, err
		}
		r, err := cg.compileInt(n.r)
		if err != nil {
			return 0, err
		}
		t, err := cg.tempSlot(n.tok)
		if err != nil {
			return 0, err
		}
		if t != l {
			cg.emit(core.Encode(core.OpArith, t, l, core.ArithMov))
		}
		cg.emit(core.Encode(core.OpArith, t, r, arithFlags[n.op]))
		return t, nil
	case *callExpr:
		return 0, errAt(n.tok, "%q does not produce an integer", n.name)
	default:
		return 0, fmt.Errorf("hpl: unknown expression %T", e)
	}
}
