package hpl

import "fmt"

// parser is a recursive-descent parser over the token slice. Semicolons are
// optional statement terminators (consumed wherever present).
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind == kind && t.text == text {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if t.kind != kind || t.text != text {
		return t, errAt(t, "expected %q, found %s", text, t)
	}
	return p.advance(), nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, errAt(t, "expected identifier, found %s", t)
	}
	return p.advance(), nil
}

func (p *parser) skipSemis() {
	for p.accept(tokPunct, ";") {
	}
}

// parse parses a whole program.
func parse(src string) (*program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &program{}
	for {
		p.skipSemis()
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			if len(prog.events) == 0 {
				return nil, errAt(t, "program declares no events")
			}
			return prog, nil
		case t.kind == tokKeyword && t.text == "event":
			ev, err := p.parseEvent()
			if err != nil {
				return nil, err
			}
			prog.events = append(prog.events, ev)
		case t.kind == tokKeyword && (t.text == "var" || t.text == "const" || t.text == "queue" || t.text == "page"):
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			prog.decls = append(prog.decls, d)
		case t.kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == "=":
			// Top-level setting: name = INT
			name := p.advance()
			p.advance() // '='
			v := p.cur()
			if v.kind != tokInt {
				return nil, errAt(v, "setting %s must be an integer literal", name.text)
			}
			p.advance()
			prog.settings = append(prog.settings, setting{tok: name, name: name.text, value: v.val})
		default:
			return nil, errAt(t, "expected declaration or event, found %s", t)
		}
	}
}

func (p *parser) parseDecl() (decl, error) {
	kw := p.advance()
	var kind declKind
	switch kw.text {
	case "var":
		kind = declVar
	case "const":
		kind = declConst
	case "queue":
		kind = declQueue
	case "page":
		kind = declPage
	}
	name, err := p.expectIdent()
	if err != nil {
		return decl{}, err
	}
	d := decl{tok: kw, kind: kind, name: name.text}
	if kind == declVar || kind == declConst {
		if p.accept(tokPunct, "=") {
			v := p.cur()
			neg := false
			if v.kind == tokPunct && v.text == "-" {
				neg = true
				p.advance()
				v = p.cur()
			}
			if v.kind != tokInt {
				return decl{}, errAt(v, "initializer for %s must be an integer literal", d.name)
			}
			p.advance()
			d.init = v.val
			if neg {
				d.init = -d.init
			}
		} else if kind == declConst {
			return decl{}, errAt(name, "const %s needs an initializer", d.name)
		}
	}
	p.skipSemis()
	return d, nil
}

func (p *parser) parseEvent() (*eventDecl, error) {
	kw := p.advance() // "event"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &eventDecl{tok: kw, name: name.text, body: body}, nil
}

func (p *parser) parseBlock() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []stmt
	for {
		p.skipSemis()
		if p.accept(tokPunct, "}") {
			return out, nil
		}
		if p.cur().kind == tokEOF {
			return nil, errAt(p.cur(), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// parseStmtOrBlock accepts either a braced block or a single statement,
// returning the statement list.
func (p *parser) parseStmtOrBlock() ([]stmt, error) {
	if p.cur().kind == tokPunct && p.cur().text == "{" {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []stmt{s}, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword && t.text == "if":
		return p.parseIf()
	case t.kind == tokKeyword && t.text == "while":
		return p.parseWhile()
	case t.kind == tokKeyword && t.text == "return":
		p.advance()
		// return | return expr | return(expr)
		nt := p.cur()
		if nt.kind == tokEOF || (nt.kind == tokPunct && (nt.text == "}" || nt.text == ";")) {
			return &returnStmt{tok: t}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSemis()
		return &returnStmt{tok: t, value: e}, nil
	case t.kind == tokKeyword && t.text == "activate":
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.accept(tokPunct, "(") {
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		}
		p.skipSemis()
		return &activateStmt{tok: t, event: name.text}, nil
	case t.kind == tokKeyword && t.text == "break":
		p.advance()
		p.skipSemis()
		return &breakStmt{tok: t}, nil
	case t.kind == tokKeyword && t.text == "continue":
		p.advance()
		p.skipSemis()
		return &continueStmt{tok: t}, nil
	case t.kind == tokKeyword && t.text == "page":
		// "page" used as the built-in page register in an assignment.
		if p.peek().kind == tokPunct && p.peek().text == "=" {
			p.advance()
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			p.skipSemis()
			return &assignStmt{tok: t, target: "page", value: e}, nil
		}
		return nil, errAt(t, "page declarations must appear before events")
	case t.kind == tokIdent:
		name := p.advance()
		nt := p.cur()
		if nt.kind == tokPunct && nt.text == "=" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			p.skipSemis()
			return &assignStmt{tok: name, target: name.text, value: e}, nil
		}
		if nt.kind == tokPunct && nt.text == "(" {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			p.skipSemis()
			return &callStmt{tok: name, name: name.text, args: args}, nil
		}
		return nil, errAt(nt, "expected %q or %q after %q", "=", "(", name.text)
	default:
		return nil, errAt(t, "unexpected %s", t)
	}
}

func (p *parser) parseIf() (stmt, error) {
	kw := p.advance()
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	c, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	node := &ifStmt{tok: kw, cond: c, then: then}
	p.skipSemis()
	if p.cur().kind == tokKeyword && p.cur().text == "else" {
		p.advance()
		els, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		node.els = els
	}
	return node, nil
}

func (p *parser) parseWhile() (stmt, error) {
	kw := p.advance()
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	c, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	return &whileStmt{tok: kw, cond: c, body: body}, nil
}

func (p *parser) parseArgs() ([]expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var args []expr
	if p.accept(tokPunct, ")") {
		return args, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.accept(tokPunct, ")") {
			return args, nil
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
	}
}

// --- conditions ----------------------------------------------------------

func (p *parser) parseCond() (cond, error) { return p.parseOr() }

func (p *parser) parseOr() (cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPunct, "||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &orCond{l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (cond, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPunct, "&&") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &andCond{l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot() (cond, error) {
	if p.accept(tokPunct, "!") {
		c, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notCond{c: c}, nil
	}
	return p.parsePrimaryCond()
}

// boolBuiltins are boolean-valued builtin functions.
var boolBuiltins = map[string]int{ // name -> arity
	"empty": 1, "inq": 2, "referenced": 1, "modified": 1, "request": 1,
}

func (p *parser) parsePrimaryCond() (cond, error) {
	t := p.cur()
	// Parenthesized sub-condition: "(a < b && ...)". A '(' could also
	// start a parenthesized integer expression in a relation; try the
	// condition interpretation first by backtracking on failure.
	if t.kind == tokPunct && t.text == "(" {
		save := p.pos
		p.advance()
		c, err := p.parseCond()
		if err == nil {
			if _, err2 := p.expect(tokPunct, ")"); err2 == nil {
				return c, nil
			}
		}
		p.pos = save
	}
	// Boolean builtin?
	if t.kind == tokIdent {
		if _, ok := boolBuiltins[t.text]; ok && p.peek().kind == tokPunct && p.peek().text == "(" {
			name := p.advance()
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &boolCall{tok: name, name: name.text, args: args}, nil
		}
	}
	// Relation or bare variable truth test.
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	op := p.cur()
	if op.kind == tokPunct {
		switch op.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &relCond{tok: op, op: op.text, l: l, r: r}, nil
		}
	}
	if v, ok := l.(*varRef); ok {
		return &varCond{tok: v.tok, name: v.name}, nil
	}
	return nil, errAt(op, "expected comparison operator, found %s", op)
}

// --- integer/page expressions --------------------------------------------

// pageBuiltins are page-valued builtin functions. The de_queue_* spellings
// are the paper's (Figure 4).
var pageBuiltins = map[string]int{
	"dequeue_head": 1, "dequeue_tail": 1, "find": 1,
	"de_queue_head": 1, "de_queue_tail": 1,
}

func (p *parser) parseExpr() (expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-") {
			p.advance()
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = &binExpr{tok: t, op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseTerm() (expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokPunct && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.advance()
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = &binExpr{tok: t, op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseFactor() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		return &intLit{tok: t, val: t.val}, nil
	case t.kind == tokPunct && t.text == "-":
		p.advance()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*intLit); ok {
			return &intLit{tok: t, val: -lit.val}, nil
		}
		return &binExpr{tok: t, op: "-", l: &intLit{tok: t, val: 0}, r: inner}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokKeyword && t.text == "page":
		// the built-in page register used as a value
		p.advance()
		return &varRef{tok: t, name: "page"}, nil
	case t.kind == tokIdent:
		name := p.advance()
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &callExpr{tok: name, name: name.text, args: args}, nil
		}
		return &varRef{tok: name, name: name.text}, nil
	default:
		return nil, errAt(t, "expected expression, found %s", t)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = fmt.Sprintf // keep fmt for errAt users in this file
