// Package hpl implements the HiPEC pseudo-code translator of §4.3.4: a
// small C-like policy language ("HPL") that compiles to HiPEC command
// streams (core.Spec). The paper's Figure 4 program is valid HPL.
//
// Language summary:
//
//	minframe = 16                 // settings (minframe, free_target, ...)
//	var counter = 0               // int variable
//	const chunk = 8               // int constant
//	queue scans                   // extra private queue
//	page victim                   // extra page register
//
//	event PageFault() {
//	    if (_free_count > reserved_target) {
//	        page = dequeue_head(_free_queue)
//	    } else {
//	        activate Lack_free_frame()
//	        page = dequeue_head(_free_queue)
//	    }
//	    return page
//	}
//	event ReclaimFrame() { ... }
//	event Lack_free_frame() { ... }
//
// Built-in variables map to the container's well-known operand slots
// (_free_queue, _free_count, _active_queue, _active_count,
// _inactive_queue, _inactive_count, _allocated, _min_frame, page,
// inactive_target, free_target, reserved_target, _fault_addr,
// _fault_offset).
//
// Built-in statements: enqueue_head(q,p), enqueue_tail(q,p), flush(p),
// set_ref(p), reset_ref(p), set_mod(p), reset_mod(p), release(p|n),
// fifo(q), lru(q), mru(q), age(q), migrate(p, id), activate Event().
// Built-in expressions: dequeue_head(q), dequeue_tail(q), find(addr)
// (page-valued); empty(q), inq(q,p), referenced(p), modified(p),
// request(n) (boolean, usable in conditions).
package hpl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokPunct // single/double character punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"event": true, "if": true, "else": true, "while": true, "return": true,
	"var": true, "const": true, "queue": true, "page": true,
	"activate": true, "break": true, "continue": true,
}

type token struct {
	kind tokKind
	text string
	val  int64 // for tokInt
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a translation error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("hpl:%d:%d: %s", e.Line, e.Col, e.Msg) }

func errAt(t token, format string, args ...any) *Error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// lexer scans HPL source.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	b := l.src[l.pos]
	l.pos++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		b := l.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			l.advance()
		case b == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case b == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 <= len(l.src) {
				if l.pos+1 < len(l.src) && l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				if l.pos >= len(l.src) {
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

var twoCharPunct = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	b := l.peekByte()
	switch {
	case isIdentStart(b):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: startLine, col: startCol}, nil
	case b >= '0' && b <= '9':
		start := l.pos
		for l.pos < len(l.src) && (isIdentPart(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, &Error{Line: startLine, Col: startCol, Msg: fmt.Sprintf("bad integer literal %q", text)}
		}
		return token{kind: tokInt, text: text, val: v, line: startLine, col: startCol}, nil
	default:
		if l.pos+1 < len(l.src) {
			two := l.src[l.pos : l.pos+2]
			if twoCharPunct[two] {
				l.advance()
				l.advance()
				return token{kind: tokPunct, text: two, line: startLine, col: startCol}, nil
			}
		}
		if strings.ContainsRune("(){}=<>!+-*/%,;", rune(b)) {
			l.advance()
			return token{kind: tokPunct, text: string(b), line: startLine, col: startCol}, nil
		}
		r := rune(b)
		if !unicode.IsPrint(r) {
			return token{}, &Error{Line: startLine, Col: startCol, Msg: fmt.Sprintf("invalid byte %#02x", b)}
		}
		return token{}, &Error{Line: startLine, Col: startCol, Msg: fmt.Sprintf("unexpected character %q", r)}
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentPart(b byte) bool {
	return isIdentStart(b) || (b >= '0' && b <= '9')
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
