package verify

import (
	"strings"
	"testing"

	"hipec/internal/isa"
)

// unit builds a two-event Unit (PageFault, ReclaimFrame) with a declared
// user page register and int counter for the tests that need them.
func unit(t *testing.T, pf, rf isa.Program, extra ...isa.Program) *Unit {
	t.Helper()
	u := NewUnit("test")
	u.Events = append([]isa.Program{pf, rf}, extra...)
	u.Declare(isa.SlotUser, isa.KindPage, "victim", false)
	u.Declare(isa.SlotUser+1, isa.KindInt, "count", false)
	u.Declare(isa.SlotUser+2, isa.KindPage, "other", false)
	return u
}

func codes(diags []Diagnostic) []Code {
	var out []Code
	for _, d := range diags {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(diags []Diagnostic, c Code, sev Severity) bool {
	for _, d := range diags {
		if d.Code == c && d.Severity == sev {
			return true
		}
	}
	return false
}

// ret is the minimal valid event body.
func ret() isa.Program {
	return isa.NewProgram(isa.Encode(isa.OpReturn, 0, 0, 0))
}

// pfAlloc is a well-formed PageFault handler: dequeue a free frame, return
// it.
func pfAlloc() isa.Program {
	return isa.NewProgram(
		isa.Encode(isa.OpDeQueue, isa.SlotUser, isa.SlotFreeQueue, isa.QueueHead),
		isa.Encode(isa.OpReturn, isa.SlotUser, 0, 0),
	)
}

func TestCleanProgramNoDiagnostics(t *testing.T) {
	u := unit(t, pfAlloc(), isa.NewProgram(
		isa.Encode(isa.OpDeQueue, isa.SlotUser, isa.SlotActiveQueue, isa.QueueHead),
		isa.Encode(isa.OpEnQueue, isa.SlotUser, isa.SlotFreeQueue, isa.QueueTail),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	))
	diags := Analyze(u)
	if len(diags) != 0 {
		t.Fatalf("expected clean verification, got %v", diags)
	}
}

func TestMissingMagic(t *testing.T) {
	u := unit(t, isa.Program{isa.Encode(isa.OpReturn, 0, 0, 0)}, ret())
	if !hasCode(Analyze(u), CodeMissingMagic, SevError) {
		t.Fatal("want missing-magic error")
	}
}

func TestMissingEvents(t *testing.T) {
	u := NewUnit("test")
	u.Events = []isa.Program{pfAlloc()}
	if !hasCode(Analyze(u), CodeMissingEvent, SevError) {
		t.Fatal("want missing-event error")
	}
}

func TestIllegalOpcodeAndBadFlag(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.Opcode(0x7f), 0, 0, 0),
		isa.Encode(isa.OpComp, isa.SlotZero, isa.SlotOne, 99),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	diags := Analyze(u)
	if !hasCode(diags, CodeIllegalOpcode, SevError) || !hasCode(diags, CodeBadFlag, SevError) {
		t.Fatalf("want illegal-opcode and bad-flag, got %v", codes(diags))
	}
}

func TestOperandKindMismatch(t *testing.T) {
	// EnQueue with an int where a page register is required.
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpEnQueue, isa.SlotUser+1, isa.SlotFreeQueue, isa.QueueTail),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeOperandKind, SevError) {
		t.Fatal("want operand-kind error")
	}
}

func TestReadOnlyWrite(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpArith, isa.SlotZero, isa.SlotOne, isa.ArithAdd),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeReadOnlyWrite, SevError) {
		t.Fatal("want readonly-write error")
	}
}

func TestKindInferenceConflict(t *testing.T) {
	// Binary-lint mode: slot 0x40 is undeclared; used as both queue and page.
	u := NewUnit("bin")
	u.Events = []isa.Program{
		isa.NewProgram(
			isa.Encode(isa.OpEmptyQ, 0x40, 0, 0),
			isa.Encode(isa.OpRef, 0x40, 0, 0),
			isa.Encode(isa.OpReturn, 0, 0, 0),
		),
		ret(),
	}
	if !hasCode(Analyze(u), CodeKindConflict, SevError) {
		t.Fatal("want kind-conflict error")
	}
}

func TestRunOffEnd(t *testing.T) {
	// No Return and control reaches the end.
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpArith, isa.SlotUser+1, 0, isa.ArithInc),
	), ret())
	diags := Analyze(u)
	if !hasCode(diags, CodeRunOffEnd, SevError) || !hasCode(diags, CodeNoReturn, SevError) {
		t.Fatalf("want run-off-end and no-return, got %v", codes(diags))
	}
}

// TestRunOffEndBehindKernelOutcome is the regression for the old checkFlow
// unsoundness: a "Jump if-false" directly after Request was treated as
// always taken because Request was modeled as clearing CR. In reality CR
// holds the grant outcome, so the fall-through path is realizable.
func TestRunOffEndBehindKernelOutcome(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpRequest, isa.SlotOne, 0, 0),
		isa.Encode(isa.OpJump, isa.JumpIfFalse, 0, 3),
		// fall-through on CR=true runs off the end
	), ret())
	if !hasCode(Analyze(u), CodeRunOffEnd, SevError) {
		t.Fatal("want run-off-end error on the CR-true fall-through after Request")
	}
}

func TestUnreachableCode(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpReturn, 0, 0, 0),
		isa.Encode(isa.OpArith, isa.SlotUser+1, 0, isa.ArithInc),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeUnreachable, SevWarning) {
		t.Fatal("want unreachable warning")
	}
}

func TestSelfActivateCycle(t *testing.T) {
	pf := isa.NewProgram(
		isa.Encode(isa.OpActivate, 0, 0, 0), // PageFault activates itself
		isa.Encode(isa.OpReturn, 0, 0, 0),
	)
	u := unit(t, pf, ret())
	if !hasCode(Analyze(u), CodeActivateCycle, SevError) {
		t.Fatal("want activate-cycle error for self-activation")
	}
}

// TestMutualActivateCycle is the headline regression: A activates B and B
// activates A used to pass validation and loop until the checker timeout.
func TestMutualActivateCycle(t *testing.T) {
	evA := isa.NewProgram(
		isa.Encode(isa.OpActivate, 3, 0, 0),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	)
	evB := isa.NewProgram(
		isa.Encode(isa.OpActivate, 2, 0, 0),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	)
	u := unit(t, pfAlloc(), ret(), evA, evB)
	diags := Analyze(u)
	if !hasCode(diags, CodeActivateCycle, SevError) {
		t.Fatalf("want activate-cycle error for mutual recursion, got %v", codes(diags))
	}
	found := false
	for _, d := range diags {
		if d.Code == CodeActivateCycle && strings.Contains(d.Msg, "->") {
			found = true
		}
	}
	if !found {
		t.Fatal("cycle diagnostic should name the event chain")
	}
}

func TestActivateDepthBudget(t *testing.T) {
	// A chain of 10 user events, each activating the next, exceeds the
	// default budget of 8.
	events := []isa.Program{pfAlloc(), ret()}
	const chain = 10
	for i := 0; i < chain; i++ {
		if i == chain-1 {
			events = append(events, ret())
			break
		}
		events = append(events, isa.NewProgram(
			isa.Encode(isa.OpActivate, uint8(3+i), 0, 0),
			isa.Encode(isa.OpReturn, 0, 0, 0),
		))
	}
	u := unit(t, events[0], events[1], events[2:]...)
	if !hasCode(Analyze(u), CodeActivateDepth, SevError) {
		t.Fatal("want activate-depth error for a 9-deep chain")
	}
}

func TestUndefinedEventActivate(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpActivate, 9, 0, 0),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeUndefinedEvent, SevError) {
		t.Fatal("want undefined-event error")
	}
}

// TestUndefinedPageRegister: the spec EnQueues a register no event ever
// fills with DeQueue or Find — a guaranteed empty-register fault that the
// old checker only caught at runtime.
func TestUndefinedPageRegister(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpEnQueue, isa.SlotUser+2, isa.SlotActiveQueue, isa.QueueTail),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeUndefinedPageReg, SevError) {
		t.Fatal("want undefined-page-register error")
	}
}

func TestDefinedPageRegisterClean(t *testing.T) {
	// The same use is fine when another event defines the register.
	rf := isa.NewProgram(
		isa.Encode(isa.OpDeQueue, isa.SlotUser+2, isa.SlotActiveQueue, isa.QueueHead),
		isa.Encode(isa.OpEnQueue, isa.SlotUser+2, isa.SlotFreeQueue, isa.QueueTail),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	)
	pf := isa.NewProgram(
		isa.Encode(isa.OpDeQueue, isa.SlotUser, isa.SlotFreeQueue, isa.QueueHead),
		isa.Encode(isa.OpReturn, isa.SlotUser, 0, 0),
	)
	u := unit(t, pf, rf)
	if hasCode(Analyze(u), CodeUndefinedPageReg, SevError) {
		t.Fatal("register defined in ReclaimFrame must not be flagged")
	}
}

func TestEmptyRegisterWarning(t *testing.T) {
	// EnQueue empties the register, then a second EnQueue of the same
	// register is a definite empty-register fault on that path.
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpDeQueue, isa.SlotUser, isa.SlotFreeQueue, isa.QueueHead),
		isa.Encode(isa.OpEnQueue, isa.SlotUser, isa.SlotActiveQueue, isa.QueueTail),
		isa.Encode(isa.OpEnQueue, isa.SlotUser, isa.SlotActiveQueue, isa.QueueTail),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeEmptyReg, SevWarning) {
		t.Fatal("want maybe-empty-register warning")
	}
}

// TestInfiniteLoopConstantFold: Comp over the read-only constants folds to
// a definite CR, proving the busy-wait never exits.
func TestInfiniteLoopConstantFold(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpComp, isa.SlotZero, isa.SlotOne, isa.CompLT), // 0 < 1: true
		isa.Encode(isa.OpJump, isa.JumpIfTrue, 0, 1),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeInfiniteLoop, SevError) {
		t.Fatal("want infinite-loop error for the constant busy-wait")
	}
}

func TestJumpAlwaysSelfLoop(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpJump, isa.JumpAlways, 0, 1),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	diags := Analyze(u)
	if !hasCode(diags, CodeInfiniteLoop, SevError) {
		t.Fatalf("want infinite-loop error, got %v", codes(diags))
	}
}

// TestStuckLoop: the loop's exit test reads a counter nothing in the loop
// writes, so no iteration can change the outcome.
func TestStuckLoop(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpEmptyQ, isa.SlotFreeQueue, 0, 0), // CC1: test free queue
		isa.Encode(isa.OpJump, isa.JumpIfTrue, 0, 1),      // CC2: loop while empty
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeStuckLoop, SevError) {
		t.Fatal("want stuck-loop error: nothing in the loop refills the free queue")
	}
}

// TestProgressLoopClean mirrors the paper's reclaim idiom: the loop
// dequeues from the queue whose emptiness gates the exit, so it drains.
func TestProgressLoopClean(t *testing.T) {
	rf := isa.NewProgram(
		isa.Encode(isa.OpEmptyQ, isa.SlotActiveQueue, 0, 0),
		isa.Encode(isa.OpJump, isa.JumpIfTrue, 0, 6),
		isa.Encode(isa.OpDeQueue, isa.SlotUser, isa.SlotActiveQueue, isa.QueueHead),
		isa.Encode(isa.OpEnQueue, isa.SlotUser, isa.SlotFreeQueue, isa.QueueTail),
		isa.Encode(isa.OpJump, isa.JumpAlways, 0, 1),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	)
	u := unit(t, pfAlloc(), rf)
	diags := Analyze(u)
	if HasErrors(diags) {
		t.Fatalf("draining loop must verify clean, got %v", diags)
	}
}

// TestCounterProgressLoopClean: an Arith-driven countdown loop whose exit
// Comp reads the counter being decremented.
func TestCounterProgressLoopClean(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpComp, isa.SlotUser+1, isa.SlotZero, isa.CompGT),
		isa.Encode(isa.OpJump, isa.JumpIfFalse, 0, 5),
		isa.Encode(isa.OpArith, isa.SlotUser+1, 0, isa.ArithDec),
		isa.Encode(isa.OpJump, isa.JumpAlways, 0, 1),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if HasErrors(Analyze(u)) {
		t.Fatalf("countdown loop must verify clean, got %v", Analyze(u))
	}
}

// TestFrameLeakLoop: Request in a loop with no Release and an exit test
// (EmptyQ of Active) blind to the grant outcome — unbounded frame requests
// that today only die at the checker timeout.
func TestFrameLeakLoop(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpRequest, isa.SlotOne, 0, 0),      // CC1
		isa.Encode(isa.OpEmptyQ, isa.SlotActiveQueue, 0, 0), // CC2
		isa.Encode(isa.OpJump, isa.JumpIfTrue, 0, 1),      // CC3: loop blind to grant
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeFrameLeak, SevError) {
		t.Fatal("want frame-leak error for the blind Request loop")
	}
}

// TestRequestLoopConditionedClean: branching on the Request outcome right
// after it, with an exit on failure, bounds the loop acceptably.
func TestRequestLoopConditionedClean(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpRequest, isa.SlotOne, 0, 0),       // CC1
		isa.Encode(isa.OpJump, isa.JumpIfFalse, 0, 5),      // CC2: exit on denial
		isa.Encode(isa.OpEmptyQ, isa.SlotFreeQueue, 0, 0),  // CC3
		isa.Encode(isa.OpJump, isa.JumpIfTrue, 0, 1),       // CC4
		isa.Encode(isa.OpReturn, 0, 0, 0),                  // CC5
	), ret())
	if hasCode(Analyze(u), CodeFrameLeak, SevError) {
		t.Fatalf("grant-conditioned Request loop must not be a frame leak: %v", Analyze(u))
	}
}

func TestNoReleaseWarning(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpRequest, isa.SlotOne, 0, 0),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeNoRelease, SevWarning) {
		t.Fatal("want no-release warning")
	}
}

func TestExtensionGating(t *testing.T) {
	prog := isa.NewProgram(
		isa.Encode(isa.OpAge, isa.SlotActiveQueue, 0, 0),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	)
	u := unit(t, pfAlloc(), prog)
	if !hasCode(Analyze(u), CodeExtension, SevError) {
		t.Fatal("want extension-disabled error")
	}
	u = unit(t, pfAlloc(), prog)
	u.Extensions = true
	if hasCode(Analyze(u), CodeExtension, SevError) {
		t.Fatal("extensions enabled: Age must pass")
	}
}

func TestJumpRange(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpJump, isa.JumpAlways, 0, 200),
		isa.Encode(isa.OpReturn, 0, 0, 0),
	), ret())
	if !hasCode(Analyze(u), CodeJumpRange, SevError) {
		t.Fatal("want jump-range error")
	}
}

func TestDiagnosticOrdering(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpReturn, 0, 0, 0),
		isa.Encode(isa.OpArith, isa.SlotUser+1, 0, isa.ArithInc), // unreachable (warning)
		isa.Encode(isa.Opcode(0x7f), 0, 0, 0),                    // illegal (error)
	), ret())
	diags := Analyze(u)
	if len(diags) < 2 {
		t.Fatalf("want at least 2 diagnostics, got %v", diags)
	}
	if diags[0].Severity != SevError {
		t.Fatalf("errors must sort first, got %v", diags)
	}
	if !strings.Contains(diags[0].String(), "[illegal-opcode]") {
		t.Fatalf("String must include the code, got %q", diags[0].String())
	}
}

// TestFindCorrelation: Find leaves CR correlated with the register — on the
// CR-true branch the register is full, so using it there is clean; on the
// CR-false branch it is empty.
func TestFindCorrelation(t *testing.T) {
	u := unit(t, isa.NewProgram(
		isa.Encode(isa.OpFind, isa.SlotUser, isa.SlotUser+1, 0), // CC1
		isa.Encode(isa.OpJump, isa.JumpIfFalse, 0, 4),           // CC2
		isa.Encode(isa.OpEnQueue, isa.SlotUser, isa.SlotActiveQueue, isa.QueueTail), // CC3: full here
		isa.Encode(isa.OpReturn, 0, 0, 0),                       // CC4
	), ret())
	if hasCode(Analyze(u), CodeEmptyReg, SevWarning) {
		t.Fatalf("CR-true branch after Find must know the register is full: %v", Analyze(u))
	}

	// Using the register on the not-found branch is flagged.
	u = unit(t, isa.NewProgram(
		isa.Encode(isa.OpFind, isa.SlotUser, isa.SlotUser+1, 0),  // CC1
		isa.Encode(isa.OpJump, isa.JumpIfTrue, 0, 4),             // CC2
		isa.Encode(isa.OpEnQueue, isa.SlotUser, isa.SlotActiveQueue, isa.QueueTail), // CC3: empty here
		isa.Encode(isa.OpReturn, 0, 0, 0),                        // CC4
	), ret())
	if !hasCode(Analyze(u), CodeEmptyReg, SevWarning) {
		t.Fatal("CR-false branch after Find must know the register is empty")
	}
}
