package verify

import (
	"fmt"
	"sort"
)

// Severity ranks a diagnostic. Errors reject the program at registration;
// warnings and infos are advisory (surfaced by hipeclint and hipecc
// -analyze but never block loading).
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String returns the conventional lowercase severity label.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// Code identifies the analysis that produced a diagnostic. Codes are stable
// strings: tests and tools match on them, messages are free to evolve.
type Code string

const (
	// Structural checks.
	CodeMissingMagic  Code = "missing-magic"
	CodeEmptyProgram  Code = "empty-program"
	CodeMissingEvent  Code = "missing-event"
	CodeIllegalOpcode Code = "illegal-opcode"
	CodeBadFlag       Code = "bad-flag"
	CodeNoReturn      Code = "no-return"
	CodeJumpRange     Code = "jump-range"
	CodeExtension     Code = "extension-disabled"

	// Operand typing.
	CodeOperandKind   Code = "operand-kind"
	CodeKindConflict  Code = "kind-conflict"
	CodeReadOnlyWrite Code = "readonly-write"

	// Control flow.
	CodeRunOffEnd   Code = "run-off-end"
	CodeUnreachable Code = "unreachable"

	// Activate call graph.
	CodeUndefinedEvent Code = "undefined-event"
	CodeActivateCycle  Code = "activate-cycle"
	CodeActivateDepth  Code = "activate-depth"

	// Page-register dataflow.
	CodeUndefinedPageReg Code = "undefined-page-register"
	CodeEmptyReg         Code = "maybe-empty-register"

	// Loop boundedness.
	CodeInfiniteLoop Code = "infinite-loop"
	CodeStuckLoop    Code = "stuck-loop"

	// Frame accounting.
	CodeFrameLeak Code = "frame-leak"
	CodeNoRelease Code = "no-release"
)

// Diagnostic is one verifier finding, located by event and command counter.
// Event -1 marks a spec-level finding with no single program location.
type Diagnostic struct {
	Code      Code
	Severity  Severity
	Event     int
	EventName string
	CC        int
	Msg       string
}

// String renders the diagnostic in the verifier's one-line format.
func (d Diagnostic) String() string {
	if d.Event < 0 {
		return fmt.Sprintf("%s: spec: %s [%s]", d.Severity, d.Msg, d.Code)
	}
	return fmt.Sprintf("%s: event %s CC=%d: %s [%s]", d.Severity, d.EventName, d.CC, d.Msg, d.Code)
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Errors filters the error-severity diagnostics.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == SevError {
			out = append(out, d)
		}
	}
	return out
}

// sortDiags orders diagnostics most-severe first, then by program location.
func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		if a.CC != b.CC {
			return a.CC < b.CC
		}
		return a.Code < b.Code
	})
}
