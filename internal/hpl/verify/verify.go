// Package verify is the HPL static verifier: an eBPF-style analysis
// pipeline that proves policy programs safe before they enter the kernel
// (the §6 future-work direction "the security checker could do more").
//
// It works on compiled programs (isa.Program) plus a description of the
// operand array, and needs no kernel objects, so the same pipeline serves
// three layers: the hipecc compiler (-analyze), the hipeclint tool (source
// and binary policies, inferring operand kinds for binaries), and the
// in-kernel security checker at registration time.
//
// The passes, in order:
//
//  1. Structural/typing: magic word, legal opcodes and flags, operand-kind
//     checks against the operand array (or kind inference with conflict
//     detection when kinds are unknown), read-only write rejection,
//     jump-target ranges, extension gating, Return presence.
//  2. Activate call graph: cross-event cycle detection (mutual recursion —
//     A activates B activates A — is as fatal as self-activation) and
//     static nesting depth against the executor's Activate budget.
//  3. Page-register def-before-use: a page register that is used (EnQueue,
//     Flush, Set, Ref, Mod, Release, Migrate, Return-from-PageFault) but
//     never defined (DeQueue, Find) anywhere in the spec is a guaranteed
//     first-execution fault.
//  4. CR-aware flow: a symbolic walk of each event tracking the condition
//     register (three-valued, with constant folding of Comp on read-only
//     constants) and the emptiness of up to four page registers. Yields
//     run-off-end errors, unreachable-code warnings, empty-register-use
//     warnings, and the realizable control-flow edges the loop passes use.
//  5. Loop boundedness: strongly connected components of the realizable
//     CFG, dominator-based back-edge identification; loops with no exit
//     edge or with no state change feeding their exit tests are errors
//     (the checker's wall-clock timeout becomes a backstop, not the
//     primary defense).
//  6. Frame balance: a Request inside a loop with no Release and no exit
//     conditioned on the request outcome is an unbounded grant leak;
//     specs that Request but never Release anywhere get a warning.
package verify

import (
	"fmt"

	"hipec/internal/isa"
)

// DefaultMaxActivateDepth mirrors core.Executor.MaxActivateDepth.
const DefaultMaxActivateDepth = 8

// OperandInfo describes one operand-array slot to the verifier.
type OperandInfo struct {
	Kind     isa.Kind
	Name     string
	ReadOnly bool // constants and kernel-maintained (live) counters
	Live     bool // kernel-maintained counter
	// LiveQueue is the queue slot whose length a live counter mirrors
	// (isa.SlotNoQueue otherwise); the loop-progress pass uses it to tie
	// counter reads to queue mutations.
	LiveQueue uint8
	// HasConst marks a read-only integer whose value is statically known
	// (ConstVal), enabling Comp constant folding.
	HasConst bool
	ConstVal int64
	// Known marks the Kind as authoritative. Unknown slots (linting a
	// binary policy, which carries no operand table) get their kinds
	// inferred from use, with conflicting uses reported.
	Known bool
}

// Unit is the verifier's input: a compiled policy plus its operand
// contract.
type Unit struct {
	Name       string
	Events     []isa.Program
	EventNames []string
	Operands   [256]OperandInfo
	Extensions bool
	// MaxActivateDepth bounds static Activate nesting (0 = default 8).
	MaxActivateDepth int
}

// NewUnit builds a unit with the well-known builtin slots populated from
// the isa contract and every other slot unknown (kind inference mode).
func NewUnit(name string) *Unit {
	u := &Unit{Name: name}
	for i := range u.Operands {
		u.Operands[i].LiveQueue = isa.SlotNoQueue
	}
	for _, s := range isa.WellKnownSlots() {
		u.Operands[s.Slot] = OperandInfo{
			Kind: s.Kind, Name: s.Name, ReadOnly: s.ReadOnly,
			Live: s.Live, LiveQueue: s.LiveQueue, Known: true,
		}
	}
	z := &u.Operands[isa.SlotZero]
	z.HasConst, z.ConstVal = true, 0
	o := &u.Operands[isa.SlotOne]
	o.HasConst, o.ConstVal = true, 1
	return u
}

// Declare sets the authoritative kind of a slot (source/registration mode).
func (u *Unit) Declare(slot uint8, kind isa.Kind, name string, readOnly bool) {
	u.Operands[slot] = OperandInfo{
		Kind: kind, Name: name, ReadOnly: readOnly,
		LiveQueue: isa.SlotNoQueue, Known: true,
	}
}

// EventName returns a printable name for an event number.
func (u *Unit) EventName(ev int) string {
	switch ev {
	case isa.EventPageFault:
		return "PageFault"
	case isa.EventReclaimFrame:
		return "ReclaimFrame"
	}
	if ev >= 0 && ev < len(u.EventNames) && u.EventNames[ev] != "" {
		return u.EventNames[ev]
	}
	return fmt.Sprintf("event%d", ev)
}

// kindMask is a set of acceptable kinds for a slot.
type kindMask uint8

func maskOf(ks ...isa.Kind) kindMask {
	var m kindMask
	for _, k := range ks {
		m |= 1 << k
	}
	return m
}

var (
	maskInt       = maskOf(isa.KindInt)
	maskBoolish   = maskOf(isa.KindInt, isa.KindBool)
	maskQueue     = maskOf(isa.KindQueue)
	maskPage      = maskOf(isa.KindPage)
	maskIntOrPage = maskOf(isa.KindInt, isa.KindPage)
)

func (m kindMask) String() string {
	switch m {
	case maskInt:
		return "int"
	case maskBoolish:
		return "int or bool"
	case maskQueue:
		return "queue"
	case maskPage:
		return "page"
	case maskIntOrPage:
		return "int or page"
	}
	return fmt.Sprintf("kindMask(%#x)", uint8(m))
}

func (m kindMask) single() (isa.Kind, bool) {
	for k := isa.KindInt; k <= isa.KindPage; k++ {
		if m == 1<<k {
			return k, true
		}
	}
	return isa.KindNone, false
}

// analysis carries the pipeline state for one Analyze call.
type analysis struct {
	u        *Unit
	maxDepth int
	diags    []Diagnostic

	// constraints narrows the possible kinds of unknown slots; conflicted
	// marks slots already reported so each conflict errors once.
	constraints [256]kindMask
	conflicted  [256]bool

	hasRelease bool // any Release anywhere in the spec
	// flows holds the per-event symbolic-walk results for the loop passes.
	flows map[int]*eventFlow
}

// Analyze runs the full pipeline and returns severity-sorted diagnostics.
func Analyze(u *Unit) []Diagnostic {
	a := &analysis{u: u, maxDepth: u.MaxActivateDepth, flows: map[int]*eventFlow{}}
	if a.maxDepth <= 0 {
		a.maxDepth = DefaultMaxActivateDepth
	}
	for i := range a.constraints {
		a.constraints[i] = ^kindMask(0)
	}

	if len(u.Events) < 2 || u.Events[isa.EventPageFault] == nil || u.Events[isa.EventReclaimFrame] == nil {
		a.spec(SevError, CodeMissingEvent, "must define the PageFault and ReclaimFrame events")
		if len(u.Events) < 2 {
			sortDiags(a.diags)
			return a.diags
		}
	}

	structuralOK := make([]bool, len(u.Events))
	for ev, prog := range u.Events {
		if prog == nil {
			continue
		}
		structuralOK[ev] = a.structural(ev, prog)
	}
	a.callGraph()
	a.pageRegDefUse()
	for ev, prog := range u.Events {
		if prog == nil || !structuralOK[ev] {
			continue
		}
		f := a.flow(ev, prog)
		a.flows[ev] = f
		a.loops(ev, prog, f)
	}
	a.frameBalance()
	sortDiags(a.diags)
	return a.diags
}

func (a *analysis) report(sev Severity, code Code, ev, cc int, format string, args ...any) {
	a.diags = append(a.diags, Diagnostic{
		Code: code, Severity: sev, Event: ev, EventName: a.u.EventName(ev),
		CC: cc, Msg: fmt.Sprintf(format, args...),
	})
}

func (a *analysis) spec(sev Severity, code Code, format string, args ...any) {
	a.diags = append(a.diags, Diagnostic{
		Code: code, Severity: sev, Event: -1, Msg: fmt.Sprintf(format, args...),
	})
}

// kindOf resolves the kind of a slot: authoritative when known, inferred
// when use narrowed an unknown slot to a single kind.
func (a *analysis) kindOf(slot uint8) (isa.Kind, bool) {
	o := &a.u.Operands[slot]
	if o.Known {
		return o.Kind, true
	}
	if k, ok := a.constraints[slot].single(); ok {
		return k, true
	}
	return isa.KindNone, false
}

func (a *analysis) slotName(slot uint8) string {
	if n := a.u.Operands[slot].Name; n != "" {
		return n
	}
	return fmt.Sprintf("slot %#02x", slot)
}

// demand requires slot to hold one of the kinds in want. Known slots are
// checked directly; unknown slots accumulate the constraint, reporting a
// conflict when the acceptable set becomes empty.
func (a *analysis) demand(ev, cc int, slot uint8, want kindMask, what string) {
	o := &a.u.Operands[slot]
	if o.Known {
		if want&(1<<o.Kind) == 0 {
			a.report(SevError, CodeOperandKind, ev, cc,
				"%s operand %#02x is %v, want %v", what, slot, o.Kind, want)
		}
		return
	}
	prev := a.constraints[slot]
	a.constraints[slot] = prev & want
	if a.constraints[slot] == 0 && !a.conflicted[slot] {
		a.conflicted[slot] = true
		a.constraints[slot] = prev // keep the earlier inference for later checks
		a.report(SevError, CodeKindConflict, ev, cc,
			"operand %#02x used as %v here but earlier uses imply %v", slot, want, prev)
	}
}

// demandWrite additionally rejects writes to read-only slots.
func (a *analysis) demandWrite(ev, cc int, slot uint8, what string) {
	a.demand(ev, cc, slot, maskInt, what)
	o := &a.u.Operands[slot]
	if o.Known && (o.ReadOnly || o.Live) {
		a.report(SevError, CodeReadOnlyWrite, ev, cc,
			"%s writes read-only operand %#02x (%s)", what, slot, o.Name)
	}
}

// structural runs the per-command checks on one event program. It returns
// false when the program is too malformed (missing magic, empty) for the
// flow passes to run.
func (a *analysis) structural(ev int, prog isa.Program) bool {
	if len(prog) == 0 || prog[0] != isa.Magic {
		a.report(SevError, CodeMissingMagic, ev, 0, "missing HiPEC magic number")
		return false
	}
	if len(prog) == 1 {
		a.report(SevError, CodeEmptyProgram, ev, 0, "empty program")
		return false
	}
	hasReturn := false
	for cc := 1; cc < len(prog); cc++ {
		cmd := prog[cc]
		op1, op2, flag := cmd.A(), cmd.B(), cmd.C()
		switch cmd.Op() {
		case isa.OpReturn:
			hasReturn = true
		case isa.OpArith:
			a.demandWrite(ev, cc, op1, "Arith destination")
			if flag > isa.ArithDec {
				a.report(SevError, CodeBadFlag, ev, cc, "bad Arith flag %d", flag)
			}
			if flag != isa.ArithInc && flag != isa.ArithDec {
				a.demand(ev, cc, op2, maskInt, "Arith source")
			}
		case isa.OpComp:
			a.demand(ev, cc, op1, maskInt, "Comp")
			a.demand(ev, cc, op2, maskInt, "Comp")
			if flag > isa.CompLE {
				a.report(SevError, CodeBadFlag, ev, cc, "bad Comp flag %d", flag)
			}
		case isa.OpLogic:
			a.demand(ev, cc, op1, maskBoolish, "Logic")
			if flag != isa.LogicNot {
				a.demand(ev, cc, op2, maskBoolish, "Logic")
			}
			if flag > isa.LogicXor {
				a.report(SevError, CodeBadFlag, ev, cc, "bad Logic flag %d", flag)
			}
		case isa.OpEmptyQ:
			a.demand(ev, cc, op1, maskQueue, "EmptyQ")
		case isa.OpInQ:
			a.demand(ev, cc, op1, maskQueue, "InQ queue")
			a.demand(ev, cc, op2, maskPage, "InQ page")
		case isa.OpJump:
			if op1 > isa.JumpIfTrue {
				a.report(SevError, CodeBadFlag, ev, cc, "bad Jump mode %d", op1)
			}
			if t := int(flag); t < 1 || t >= len(prog) {
				a.report(SevError, CodeJumpRange, ev, cc,
					"jump target %d out of range [1,%d)", t, len(prog))
			}
		case isa.OpDeQueue:
			a.demand(ev, cc, op1, maskPage, "DeQueue destination")
			a.demand(ev, cc, op2, maskQueue, "DeQueue source")
			if flag != isa.QueueHead && flag != isa.QueueTail {
				a.report(SevError, CodeBadFlag, ev, cc, "bad DeQueue flag %d", flag)
			}
		case isa.OpEnQueue:
			a.demand(ev, cc, op1, maskPage, "EnQueue page")
			a.demand(ev, cc, op2, maskQueue, "EnQueue queue")
			if flag != isa.QueueHead && flag != isa.QueueTail {
				a.report(SevError, CodeBadFlag, ev, cc, "bad EnQueue flag %d", flag)
			}
		case isa.OpRequest:
			a.demand(ev, cc, op1, maskInt, "Request size")
		case isa.OpRelease:
			a.demand(ev, cc, op1, maskIntOrPage, "Release")
			a.hasRelease = true
		case isa.OpFlush:
			a.demand(ev, cc, op1, maskPage, "Flush")
		case isa.OpSet:
			a.demand(ev, cc, op1, maskPage, "Set")
			if op2 != isa.SetBitModify && op2 != isa.SetBitReference {
				a.report(SevError, CodeBadFlag, ev, cc, "bad Set bit selector %d", op2)
			}
			if flag != isa.SetOpSet && flag != isa.SetOpClear {
				a.report(SevError, CodeBadFlag, ev, cc, "bad Set operation %d", flag)
			}
		case isa.OpRef:
			a.demand(ev, cc, op1, maskPage, "Ref")
		case isa.OpMod:
			a.demand(ev, cc, op1, maskPage, "Mod")
		case isa.OpFind:
			a.demand(ev, cc, op1, maskPage, "Find destination")
			a.demand(ev, cc, op2, maskInt, "Find address")
		case isa.OpActivate:
			if t := int(op1); t >= len(a.u.Events) || a.u.Events[t] == nil {
				a.report(SevError, CodeUndefinedEvent, ev, cc,
					"Activate of undefined event %d", t)
			}
		case isa.OpFIFO, isa.OpLRU, isa.OpMRU:
			a.demand(ev, cc, op1, maskQueue, cmd.Op().String())
		case isa.OpMigrate:
			if !a.u.Extensions {
				a.report(SevError, CodeExtension, ev, cc, "Migrate used without EnableExtensions")
			}
			a.demand(ev, cc, op1, maskPage, "Migrate page")
			a.demand(ev, cc, op2, maskInt, "Migrate target")
		case isa.OpAge:
			if !a.u.Extensions {
				a.report(SevError, CodeExtension, ev, cc, "Age used without EnableExtensions")
			}
			a.demand(ev, cc, op1, maskQueue, "Age")
		default:
			a.report(SevError, CodeIllegalOpcode, ev, cc,
				"illegal opcode %#02x", uint8(cmd.Op()))
		}
	}
	if !hasReturn {
		a.report(SevError, CodeNoReturn, ev, 0, "program has no Return command")
	}
	return true
}

// callGraph checks the cross-event Activate graph for cycles (mutual and
// self recursion) and for static nesting deeper than the executor budget.
func (a *analysis) callGraph() {
	n := len(a.u.Events)
	edges := make([][]int, n)     // callee event numbers
	sites := make([]map[int]int, n) // callee -> first Activate CC
	for ev, prog := range a.u.Events {
		if prog == nil {
			continue
		}
		sites[ev] = map[int]int{}
		for cc := 1; cc < len(prog); cc++ {
			if prog[cc].Op() != isa.OpActivate {
				continue
			}
			t := int(prog[cc].A())
			if t >= n || t < 0 || a.u.Events[t] == nil {
				continue // undefined target already reported
			}
			if _, dup := sites[ev][t]; !dup {
				sites[ev][t] = cc
				edges[ev] = append(edges[ev], t)
			}
		}
	}

	const (
		white = iota
		grey
		black
	)
	color := make([]int, n)
	var path []int
	cyclic := false
	var visit func(ev int)
	visit = func(ev int) {
		color[ev] = grey
		path = append(path, ev)
		for _, t := range edges[ev] {
			switch color[t] {
			case grey:
				// Reconstruct the cycle from the DFS path.
				start := 0
				for i, p := range path {
					if p == t {
						start = i
						break
					}
				}
				names := ""
				for _, p := range path[start:] {
					names += a.u.EventName(p) + " -> "
				}
				names += a.u.EventName(t)
				cyclic = true
				a.report(SevError, CodeActivateCycle, ev, sites[ev][t],
					"Activate cycle: %s (unbounded recursion)", names)
			case white:
				visit(t)
			}
		}
		path = path[:len(path)-1]
		color[ev] = black
	}
	for ev := range a.u.Events {
		if a.u.Events[ev] != nil && color[ev] == white {
			visit(ev)
		}
	}
	if cyclic {
		return
	}

	// Acyclic: the longest Activate chain from any event must fit the
	// executor's nesting budget.
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	var chain func(ev int) int
	chain = func(ev int) int {
		if depth[ev] >= 0 {
			return depth[ev]
		}
		d := 0
		for _, t := range edges[ev] {
			if c := chain(t) + 1; c > d {
				d = c
			}
		}
		depth[ev] = d
		return d
	}
	for ev, prog := range a.u.Events {
		if prog == nil {
			continue
		}
		if d := chain(ev); d > a.maxDepth {
			// Report at the first Activate site of the deepest chain head.
			cc := 0
			for _, c := range sites[ev] {
				if cc == 0 || c < cc {
					cc = c
				}
			}
			a.report(SevError, CodeActivateDepth, ev, cc,
				"Activate chain of depth %d exceeds the executor budget of %d", d, a.maxDepth)
		}
	}
}

// pageRegDefUse flags page registers that some command uses in a way that
// faults on an empty register, but that no command in any event ever
// defines (DeQueue, Find). Registers start empty at container creation and
// only those two commands fill them, so the first execution reaching such
// a use is a guaranteed runtime PolicyFault.
func (a *analysis) pageRegDefUse() {
	type site struct{ ev, cc int }
	defined := [256]bool{}
	uses := map[uint8][]site{}

	noteUse := func(slot uint8, ev, cc int) {
		if k, ok := a.kindOf(slot); ok && k == isa.KindPage {
			uses[slot] = append(uses[slot], site{ev, cc})
		}
	}
	for ev, prog := range a.u.Events {
		if prog == nil {
			continue
		}
		for cc := 1; cc < len(prog); cc++ {
			cmd := prog[cc]
			op1, op2 := cmd.A(), cmd.B()
			switch cmd.Op() {
			case isa.OpDeQueue, isa.OpFind:
				defined[op1] = true
			case isa.OpEnQueue, isa.OpFlush, isa.OpSet, isa.OpRef, isa.OpMod, isa.OpMigrate:
				noteUse(op1, ev, cc)
			case isa.OpRelease:
				noteUse(op1, ev, cc)
			case isa.OpReturn:
				if ev == isa.EventPageFault {
					// PageFor rejects a PageFault activation that returns
					// an empty register.
					noteUse(op1, ev, cc)
				}
			case isa.OpInQ:
				_ = op2 // InQ tolerates an empty register (CR = false)
			}
		}
	}
	for slot, sites := range uses {
		if defined[slot] {
			continue
		}
		s := sites[0]
		a.report(SevError, CodeUndefinedPageReg, s.ev, s.cc,
			"page register %s (%#02x) is used but never defined by DeQueue or Find in any event (guaranteed empty-register fault)",
			a.slotName(slot), slot)
	}
}

// frameBalance emits the spec-wide Request/Release advisory: a policy that
// requests frames from the global frame manager but has no Release path
// anywhere can only give frames back through forced reclamation.
func (a *analysis) frameBalance() {
	if a.hasRelease {
		return
	}
	for ev, prog := range a.u.Events {
		if prog == nil {
			continue
		}
		for cc := 1; cc < len(prog); cc++ {
			if prog[cc].Op() == isa.OpRequest {
				a.report(SevWarning, CodeNoRelease, ev, cc,
					"spec Requests frames but never Releases any (only forced reclamation can recover them)")
				return
			}
		}
	}
}
