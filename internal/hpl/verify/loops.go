package verify

import (
	"fmt"
	"sort"

	"hipec/internal/isa"
)

// The loop passes work on the realizable CFG produced by the symbolic walk:
// Tarjan's SCC decomposition finds the loop regions, dominators identify
// the back edges for diagnostics, and two boundedness arguments run per
// region:
//
//   - A region with no exit edge can never terminate: error.
//   - A region whose only CR producers are pure tests (Comp, Logic, EmptyQ,
//     InQ, Ref, Mod) and whose commands write none of the state those tests
//     read cannot make progress: every iteration re-evaluates the same
//     predicates over unchanged state, so the loop either exits on its
//     first pass or never does. Error.
//
// Loops containing kernel-outcome commands (Request, Release, Flush, Find,
// Migrate, the canned replacements) or queue/register mutations that feed
// their exit tests are left to the checker's wall-clock timeout — the
// backstop, no longer the primary defense.

// Abstract state keys for the progress argument: operand slots plus the
// frame-grant account, plus a universal key for Activate (which may touch
// anything).
const (
	keyAllocated = 256
	keyUniversal = 257
)

// readKeys maps a test's operand read to the state it actually observes:
// live queue-length counters read their queue, the allocation counters read
// the grant account, everything else reads its own slot.
func (a *analysis) readKeys(slot uint8, out map[int]struct{}) {
	o := &a.u.Operands[slot]
	if o.Live {
		if o.LiveQueue != isa.SlotNoQueue {
			out[int(o.LiveQueue)] = struct{}{}
		} else {
			out[keyAllocated] = struct{}{}
		}
		return
	}
	out[int(slot)] = struct{}{}
}

// loops runs the boundedness and frame-balance analyses over one event.
func (a *analysis) loops(ev int, prog isa.Program, f *eventFlow) {
	sccs := stronglyConnected(f)
	if len(sccs) == 0 {
		return
	}
	back := backEdges(f)

	for _, scc := range sccs {
		member := map[int]bool{}
		for _, cc := range scc {
			member[cc] = true
		}
		lo, hi := scc[0], scc[0]
		for _, cc := range scc {
			if cc < lo {
				lo = cc
			}
			if cc > hi {
				hi = cc
			}
		}
		// Annotate with the dominator-identified back edge when the loop
		// is reducible.
		loopDesc := ""
		for _, e := range back {
			if member[e[0]] && member[e[1]] {
				loopDesc = fmt.Sprintf(" (back edge CC=%d->CC=%d)", e[0], e[1])
				break
			}
		}

		hasExit := false
		for _, cc := range scc {
			for to := range f.edges[cc] {
				if !member[to] {
					hasExit = true
				}
			}
		}
		if !hasExit {
			a.report(SevError, CodeInfiniteLoop, ev, lo,
				"loop CC=%d..%d has no exit path%s", lo, hi, loopDesc)
			continue
		}

		// Classify the loop body.
		dynamicCR := false // CR comes from kernel outcomes -> can't reason
		universal := false
		hasRequest, hasRelease := false, false
		requestCCs := []int{}
		testReads := map[int]struct{}{}
		writes := map[int]struct{}{}
		for _, cc := range scc {
			cmd := prog[cc]
			op1, op2, flag := cmd.A(), cmd.B(), cmd.C()
			switch cmd.Op() {
			case isa.OpComp:
				a.readKeys(op1, testReads)
				a.readKeys(op2, testReads)
			case isa.OpLogic:
				a.readKeys(op1, testReads)
				if flag != isa.LogicNot {
					a.readKeys(op2, testReads)
				}
			case isa.OpEmptyQ:
				testReads[int(op1)] = struct{}{}
			case isa.OpInQ:
				testReads[int(op1)] = struct{}{}
				testReads[int(op2)] = struct{}{}
			case isa.OpRef, isa.OpMod:
				testReads[int(op1)] = struct{}{}
			case isa.OpArith:
				writes[int(op1)] = struct{}{}
			case isa.OpDeQueue, isa.OpEnQueue:
				writes[int(op1)] = struct{}{}
				writes[int(op2)] = struct{}{}
				if cmd.Op() == isa.OpEnQueue && op2 == isa.SlotFreeQueue {
					writes[keyAllocated] = struct{}{}
				}
			case isa.OpSet, isa.OpAge:
				writes[int(op1)] = struct{}{}
			case isa.OpRequest:
				hasRequest = true
				requestCCs = append(requestCCs, cc)
				dynamicCR = true
				writes[int(isa.SlotFreeQueue)] = struct{}{}
				writes[keyAllocated] = struct{}{}
			case isa.OpRelease:
				hasRelease = true
				dynamicCR = true
				writes[int(op1)] = struct{}{}
				writes[int(isa.SlotFreeQueue)] = struct{}{}
				writes[keyAllocated] = struct{}{}
			case isa.OpFlush, isa.OpFind, isa.OpMigrate:
				dynamicCR = true
				writes[int(op1)] = struct{}{}
			case isa.OpFIFO, isa.OpLRU, isa.OpMRU:
				dynamicCR = true
				writes[int(op1)] = struct{}{}
				writes[int(isa.SlotFreeQueue)] = struct{}{}
				writes[keyAllocated] = struct{}{}
			case isa.OpActivate:
				universal = true
			}
		}

		if !dynamicCR && !universal {
			progress := false
			for k := range writes {
				if _, ok := testReads[k]; ok {
					progress = true
					break
				}
			}
			if !progress {
				a.report(SevError, CodeStuckLoop, ev, lo,
					"loop CC=%d..%d cannot make progress: no command in the loop changes state read by its exit tests%s",
					lo, hi, loopDesc)
				continue
			}
		}

		// Frame balance inside the loop: a Request with no Release in the
		// same loop, no branch on the request outcome that can leave the
		// loop, and no exit test observing the grant state re-requests
		// frames unboundedly — today this only dies at the timeout.
		if hasRequest && !hasRelease && !universal {
			conditioned := false
			for _, r := range requestCCs {
				nc := r + 1
				if nc >= len(prog) || prog[nc].Op() != isa.OpJump {
					continue
				}
				if prog[nc].A() == isa.JumpAlways {
					continue
				}
				for to := range f.edges[nc] {
					if !member[to] {
						conditioned = true
					}
				}
				if nc+1 < len(prog) && !member[nc+1] {
					conditioned = true
				}
			}
			if _, ok := testReads[int(isa.SlotFreeQueue)]; ok {
				conditioned = true
			}
			if _, ok := testReads[keyAllocated]; ok {
				conditioned = true
			}
			if !conditioned {
				a.report(SevError, CodeFrameLeak, ev, requestCCs[0],
					"Request inside loop CC=%d..%d with no Release and no exit conditioned on the grant outcome (unbounded frame requests)%s",
					lo, hi, loopDesc)
			}
		}
	}
}

// stronglyConnected returns the non-trivial SCCs (size > 1, or a single
// node with a self-edge) of the realizable CFG, each sorted by CC.
func stronglyConnected(f *eventFlow) [][]int {
	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []int
	var out [][]int
	next := 0

	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for w := range f.edges[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Ints(scc)
				out = append(out, scc)
			} else if _, self := f.edges[scc[0]][scc[0]]; self {
				out = append(out, scc)
			}
		}
	}
	for cc := 1; cc < len(f.prog); cc++ {
		if f.seen[cc] {
			if _, visited := index[cc]; !visited {
				strong(cc)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// backEdges computes the dominator relation over the realizable CFG
// (entry CC=1) and returns the edges u->v where v dominates u — the
// natural-loop back edges of reducible flow.
func backEdges(f *eventFlow) [][2]int {
	var nodes []int
	for cc := 1; cc < len(f.prog); cc++ {
		if f.seen[cc] {
			nodes = append(nodes, cc)
		}
	}
	if len(nodes) == 0 {
		return nil
	}
	preds := map[int][]int{}
	for from, tos := range f.edges {
		for to := range tos {
			preds[to] = append(preds[to], from)
		}
	}
	// Iterative dominator sets: dom(entry) = {entry}; dom(n) = {n} ∪
	// ⋂ dom(preds). Node counts are <= 256, so sets are cheap.
	all := map[int]struct{}{}
	for _, n := range nodes {
		all[n] = struct{}{}
	}
	dom := map[int]map[int]struct{}{}
	for _, n := range nodes {
		if n == 1 {
			dom[n] = map[int]struct{}{1: {}}
			continue
		}
		d := map[int]struct{}{}
		for k := range all {
			d[k] = struct{}{}
		}
		dom[n] = d
	}
	changed := true
	for changed {
		changed = false
		for _, n := range nodes {
			if n == 1 {
				continue
			}
			var inter map[int]struct{}
			for _, p := range preds[n] {
				pd := dom[p]
				if inter == nil {
					inter = map[int]struct{}{}
					for k := range pd {
						inter[k] = struct{}{}
					}
					continue
				}
				for k := range inter {
					if _, ok := pd[k]; !ok {
						delete(inter, k)
					}
				}
			}
			if inter == nil {
				inter = map[int]struct{}{}
			}
			inter[n] = struct{}{}
			if len(inter) != len(dom[n]) {
				dom[n] = inter
				changed = true
			}
		}
	}
	var back [][2]int
	for from, tos := range f.edges {
		for to := range tos {
			if _, ok := dom[from][to]; ok {
				back = append(back, [2]int{from, to})
			}
		}
	}
	sort.Slice(back, func(i, j int) bool {
		if back[i][0] != back[j][0] {
			return back[i][0] < back[j][0]
		}
		return back[i][1] < back[j][1]
	})
	return back
}
