package verify

import "hipec/internal/isa"

// The symbolic flow walk explores every (CC, CR, register-emptiness) state
// an event program can realize under a three-valued condition-register
// abstraction. It subsumes the old checker's reachability pass and fixes
// its unsoundness: commands that *compute* into CR (Request, Release,
// Flush, Find, Migrate, and the canned replacements) used to be modeled as
// clearing it, which let run-off-end paths behind "Jump if-false" hide.
//
// CR values: unknown, definitely-false, definitely-true. Non-test commands
// clear CR (the Table 2 "Jump after a non-test command is unconditional"
// idiom); Comp over two read-only constants folds to a definite value,
// which is how busy-wait loops over constants are proven infinite.
//
// Up to maxTrackedRegs page registers are additionally tracked through the
// lattice {unknown, full, empty}: DeQueue makes a register full (it faults
// rather than continue on an empty queue), EnQueue empties it, Find and
// Flush leave it correlated with CR until the next branch splits the two
// outcomes. A fault-on-empty use of a definitely-empty register is a
// warning (registers may survive across activations, so this is advisory;
// the guaranteed-fault case is handled by pageRegDefUse).

type crv uint8

const (
	crU crv = iota // unknown
	crF            // definitely false
	crT            // definitely true
)

type regAbs uint8

const (
	rTop   regAbs = iota // unknown contents
	rFull                // definitely holds a page
	rEmpty               // definitely empty
)

const maxTrackedRegs = 4

// corrFalseEmpty marks a correlation whose CR-false outcome means the
// register is empty (Find); without it the false outcome is unknown
// (Flush, whose failure path keeps the original page).
const corrFalseEmpty = 0x80

type fstate struct {
	cc   int
	cr   crv
	corr uint8 // 0 = none; else (reg index + 1) | corrFalseEmpty
	regs [maxTrackedRegs]regAbs
}

// eventFlow is the walk result for one event.
type eventFlow struct {
	prog    isa.Program
	seen    []bool                   // CC reachability
	edges   map[int]map[int]struct{} // realizable CC -> CC transitions
	tracked map[uint8]int            // page slot -> register index
}

func (f *eventFlow) edge(from, to int) {
	m := f.edges[from]
	if m == nil {
		m = map[int]struct{}{}
		f.edges[from] = m
	}
	m[to] = struct{}{}
}

// flow runs the symbolic walk over one event, emitting run-off-end errors,
// empty-register warnings and unreachable-code warnings.
func (a *analysis) flow(ev int, prog isa.Program) *eventFlow {
	f := &eventFlow{
		prog:    prog,
		seen:    make([]bool, len(prog)),
		edges:   map[int]map[int]struct{}{},
		tracked: map[uint8]int{},
	}
	// Track the page registers the program touches, in first-use order.
	for cc := 1; cc < len(prog) && len(f.tracked) < maxTrackedRegs; cc++ {
		for _, slot := range []uint8{prog[cc].A(), prog[cc].B()} {
			if k, ok := a.kindOf(slot); ok && k == isa.KindPage {
				if _, have := f.tracked[slot]; !have && len(f.tracked) < maxTrackedRegs {
					f.tracked[slot] = len(f.tracked)
				}
			}
		}
	}

	visited := map[fstate]struct{}{}
	var stack []fstate
	ranOff := false
	warned := map[int]bool{}

	push := func(s fstate, from int) {
		if s.cc >= len(prog) {
			if !ranOff {
				ranOff = true
				a.report(SevError, CodeRunOffEnd, ev, from,
					"control flow can run off the end of the program")
			}
			return
		}
		f.edge(from, s.cc)
		if _, ok := visited[s]; !ok {
			visited[s] = struct{}{}
			stack = append(stack, s)
		}
	}

	// A register's contents may survive from a previous activation, so the
	// entry state is unknown, as is the entry CR.
	start := fstate{cc: 1, cr: crU}
	visited[start] = struct{}{}
	stack = append(stack, start)
	f.seen[1] = true

	// warnEmpty reports a fault-on-empty use of a definitely-empty register.
	warnEmpty := func(s fstate, slot uint8, what string) {
		idx, ok := f.tracked[slot]
		if !ok || s.regs[idx] != rEmpty || warned[s.cc] {
			return
		}
		warned[s.cc] = true
		a.report(SevWarning, CodeEmptyReg, ev, s.cc,
			"%s of page register %s (%#02x), which is empty on this path", what, a.slotName(slot), slot)
	}
	setReg := func(s *fstate, slot uint8, v regAbs) {
		if idx, ok := f.tracked[slot]; ok {
			s.regs[idx] = v
		}
	}

	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f.seen[s.cc] = true
		cmd := prog[s.cc]
		op1, op2, flag := cmd.A(), cmd.B(), cmd.C()

		// next is the default successor template: fall through with the
		// registers carried over and the correlation consumed.
		next := s
		next.cc = s.cc + 1
		next.corr = 0

		switch cmd.Op() {
		case isa.OpReturn:
			if ev == isa.EventPageFault {
				if k, ok := a.kindOf(op1); ok && k == isa.KindPage {
					warnEmpty(s, op1, "PageFault Return")
				}
			}
			continue // terminal

		case isa.OpComp:
			next.cr = a.foldComp(op1, op2, flag)
		case isa.OpLogic, isa.OpEmptyQ, isa.OpInQ:
			next.cr = crU
		case isa.OpRef:
			warnEmpty(s, op1, "Ref")
			next.cr = crU
		case isa.OpMod:
			warnEmpty(s, op1, "Mod")
			next.cr = crU

		case isa.OpJump:
			target := int(flag)
			taken := true
			fall := true
			switch op1 {
			case isa.JumpAlways:
				fall = false
			case isa.JumpIfFalse:
				taken = s.cr != crT
				fall = s.cr != crF
			case isa.JumpIfTrue:
				taken = s.cr != crF
				fall = s.cr != crT
			default:
				continue // bad mode: runtime fault, terminal (already an error)
			}
			// The executor clears CR when evaluating a Jump; a pending
			// Find/Flush correlation resolves differently on each branch.
			mk := func(cc int, outcome crv) fstate {
				ns := s
				ns.cc, ns.cr, ns.corr = cc, crF, 0
				if s.corr != 0 && s.cr == crU && op1 != isa.JumpAlways {
					idx := int(s.corr&^corrFalseEmpty) - 1
					switch outcome {
					case crT:
						ns.regs[idx] = rFull
					case crF:
						if s.corr&corrFalseEmpty != 0 {
							ns.regs[idx] = rEmpty
						} else {
							ns.regs[idx] = rTop
						}
					}
				}
				return ns
			}
			if taken && target >= 1 && target < len(prog) {
				outcome := crT
				if op1 == isa.JumpIfFalse {
					outcome = crF
				}
				push(mk(target, outcome), s.cc)
			}
			if fall {
				outcome := crF
				if op1 == isa.JumpIfFalse {
					outcome = crT
				}
				push(mk(s.cc+1, outcome), s.cc)
			}
			continue

		case isa.OpArith, isa.OpAge:
			next.cr = crF
		case isa.OpSet:
			warnEmpty(s, op1, "Set")
			next.cr = crF
		case isa.OpDeQueue:
			// DeQueue either fills the register or faults; the successor
			// state is definitely full.
			setReg(&next, op1, rFull)
			next.cr = crF
		case isa.OpEnQueue:
			warnEmpty(s, op1, "EnQueue")
			setReg(&next, op1, rEmpty)
			next.cr = crF
		case isa.OpActivate:
			// The callee may rewrite any register (they are container
			// state, not frame-locals).
			for i := range next.regs {
				next.regs[i] = rTop
			}
			next.cr = crF
		case isa.OpRequest, isa.OpFIFO, isa.OpLRU, isa.OpMRU:
			// CR is the operation's outcome, not cleared.
			next.cr = crU
		case isa.OpRelease:
			if k, ok := a.kindOf(op1); ok && k == isa.KindPage {
				warnEmpty(s, op1, "Release")
				setReg(&next, op1, rTop) // failed release restores the page
			}
			next.cr = crU
		case isa.OpFlush:
			warnEmpty(s, op1, "Flush")
			setReg(&next, op1, rTop)
			next.cr = crU
			if idx, ok := f.tracked[op1]; ok {
				next.corr = uint8(idx + 1) // CR true -> exchanged page present
			}
		case isa.OpFind:
			setReg(&next, op1, rTop)
			next.cr = crU
			if idx, ok := f.tracked[op1]; ok {
				next.corr = uint8(idx+1) | corrFalseEmpty // CR false -> not found, empty
			}
		case isa.OpMigrate:
			warnEmpty(s, op1, "Migrate")
			setReg(&next, op1, rTop)
			next.cr = crU
		default:
			// Illegal opcode: runtime fault, terminal (already an error).
			continue
		}
		push(next, s.cc)
	}

	a.reportUnreachable(ev, f)
	return f
}

// foldComp evaluates Comp when both operands are read-only constants.
func (a *analysis) foldComp(op1, op2, flag uint8) crv {
	x, y := &a.u.Operands[op1], &a.u.Operands[op2]
	if !x.HasConst || !y.HasConst {
		return crU
	}
	av, bv := x.ConstVal, y.ConstVal
	var r bool
	switch flag {
	case isa.CompEQ:
		r = av == bv
	case isa.CompGT:
		r = av > bv
	case isa.CompLT:
		r = av < bv
	case isa.CompNE:
		r = av != bv
	case isa.CompGE:
		r = av >= bv
	case isa.CompLE:
		r = av <= bv
	default:
		return crU
	}
	if r {
		return crT
	}
	return crF
}

// reportUnreachable warns once per contiguous run of never-visited commands.
func (a *analysis) reportUnreachable(ev int, f *eventFlow) {
	for cc := 1; cc < len(f.prog); cc++ {
		if f.seen[cc] {
			continue
		}
		end := cc
		for end+1 < len(f.prog) && !f.seen[end+1] {
			end++
		}
		if end > cc {
			a.report(SevWarning, CodeUnreachable, ev, cc,
				"commands CC=%d..%d are unreachable", cc, end)
		} else {
			a.report(SevWarning, CodeUnreachable, ev, cc, "command is unreachable")
		}
		cc = end
	}
}
