// Package filestore is the realtime substrate's backing store: pages live
// in one flat file on the host filesystem, so page-ins and page-outs take
// genuine I/O time instead of a modeled disk charge. It plays the role the
// paging partition plays under the real HiPEC kernel — the store the
// default pager and policy-managed regions page to and from.
//
// Layout is a dense slot file: the first time a (object, offset) key is
// written it is assigned the next free page-sized slot, and an in-memory
// index maps keys to slots (the index is rebuildable state, not durable
// metadata — the store is a cache backend, not a database). ReadPage
// returns a buffer reused per store; callers copy into frames immediately,
// which is exactly what the VM page-in path does.
//
// The store itself is not safe for concurrent use; in realtime mode every
// access is serialized by the kernel's actor loop (core.Loop), the same
// single-writer discipline the simulated kernel gets from its one clock.
package filestore

import (
	"fmt"
	"os"
	"path/filepath"

	"hipec/internal/hiperr"
	"hipec/internal/substrate"
)

// Store is a file-backed substrate.Store.
type Store struct {
	f        *os.File
	path     string
	pageSize int
	slots    map[substrate.PageKey]int64 // key -> slot index
	free     []int64                     // slots released by DeletePage, reused first
	nextSlot int64
	readBuf  []byte
	writeBuf []byte // scratch for padding partial writes; never aliased to readBuf
	zeroBuf  []byte
	temp     bool // backing file is removed on Close

	// Reads/Writes count page transfers that actually hit the file.
	Reads  int64
	Writes int64
}

// Open creates (or truncates) a backing file for pages of pageSize bytes.
// The parent directory must exist.
func Open(path string, pageSize int) (*Store, error) {
	if pageSize <= 0 {
		return nil, &hiperr.Error{Op: "filestore.open",
			Err: fmt.Errorf("non-positive page size %d: %w", pageSize, hiperr.ErrPolicyFault)}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, &hiperr.Error{Op: "filestore.open", Err: fmt.Errorf("%s: %w", path, hiperr.ErrDiskIO)}
	}
	return &Store{
		f:        f,
		path:     path,
		pageSize: pageSize,
		slots:    make(map[substrate.PageKey]int64),
		readBuf:  make([]byte, pageSize),
		writeBuf: make([]byte, pageSize),
		zeroBuf:  make([]byte, pageSize),
	}, nil
}

// OpenTemp creates a store backed by a fresh file in dir (or the OS temp
// directory when dir is empty). Close removes it.
func OpenTemp(dir string, pageSize int) (*Store, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "hipec-pages-*.dat")
	if err != nil {
		return nil, &hiperr.Error{Op: "filestore.open", Err: fmt.Errorf("%s: %w", dir, hiperr.ErrDiskIO)}
	}
	name := f.Name()
	f.Close()
	s, err := Open(name, pageSize)
	if err != nil {
		os.Remove(name)
		return nil, err
	}
	s.temp = true
	return s, nil
}

// Path returns the backing file's path.
func (s *Store) Path() string { return filepath.Clean(s.path) }

// Close flushes and closes the backing file, removing it if the store was
// opened with OpenTemp.
func (s *Store) Close() error {
	err := s.f.Close()
	if s.temp {
		os.Remove(s.path)
	}
	return err
}

// PageSize implements substrate.Store.
func (s *Store) PageSize() int { return s.pageSize }

// slot returns the file slot for key, allocating one on first use; fresh
// reports whether the slot was allocated by this call (so a failed first
// write can release it again). Slots freed by DeletePage are reused before
// the file grows.
func (s *Store) slot(key substrate.PageKey) (n int64, fresh bool) {
	if n, ok := s.slots[key]; ok {
		return n, false
	}
	if l := len(s.free); l > 0 {
		n = s.free[l-1]
		s.free = s.free[:l-1]
	} else {
		n = s.nextSlot
		s.nextSlot++
	}
	s.slots[key] = n
	return n, true
}

// releaseSlot returns slot n to the allocator: the tail slot shrinks the
// high-water mark, anything else goes on the free list for reuse.
func (s *Store) releaseSlot(n int64) {
	if n == s.nextSlot-1 {
		s.nextSlot--
		return
	}
	s.free = append(s.free, n)
}

// WritePage implements substrate.Store: the page is written to its slot at
// real I/O cost. Nil data writes zeroes (presence must be durable — unlike
// the simulation there is no metadata-only mode; a cache that forgot its
// bytes would serve garbage). A real I/O failure (ENOSPC, EIO) comes back
// as a typed hiperr error wrapping ErrDiskIO — the VM's pageout path keeps
// the page dirty and resident, so no data is lost; a first write that fails
// does not record the key as present.
func (s *Store) WritePage(key substrate.PageKey, data []byte) error {
	if key.Offset%int64(s.pageSize) != 0 {
		panic(fmt.Sprintf("filestore: unaligned store offset %d", key.Offset))
	}
	if len(data) > s.pageSize {
		panic(fmt.Sprintf("filestore: page data %d bytes exceeds page size %d", len(data), s.pageSize))
	}
	buf := s.zeroBuf
	if len(data) > 0 {
		if len(data) == s.pageSize {
			buf = data
		} else {
			copy(s.writeBuf, data)
			copy(s.writeBuf[len(data):], s.zeroBuf[len(data):])
			buf = s.writeBuf
		}
	}
	n, fresh := s.slot(key)
	if _, err := s.f.WriteAt(buf, n*int64(s.pageSize)); err != nil {
		if fresh {
			delete(s.slots, key)
			s.releaseSlot(n)
		}
		return &hiperr.Error{Op: "filestore.write",
			Err: fmt.Errorf("%s slot %d: %v: %w", s.path, n, err, hiperr.ErrDiskIO)}
	}
	s.Writes++
	return nil
}

// ReadPage implements substrate.Store. The returned slice is the store's
// reusable read buffer, valid until the next ReadPage (WritePage uses a
// separate scratch buffer and never clobbers it) — the VM copies it into
// the destination frame immediately. A real I/O failure returns ok=true
// (the page is present) with a typed hiperr error wrapping ErrDiskIO, which
// feeds the VM's fault retry ladder.
func (s *Store) ReadPage(key substrate.PageKey) ([]byte, bool, error) {
	n, ok := s.slots[key]
	if !ok {
		return nil, false, nil
	}
	if _, err := s.f.ReadAt(s.readBuf, n*int64(s.pageSize)); err != nil {
		return nil, true, &hiperr.Error{Op: "filestore.read",
			Err: fmt.Errorf("%s slot %d: %v: %w", s.path, n, err, hiperr.ErrDiskIO)}
	}
	s.Reads++
	return s.readBuf, true, nil
}

// Contains implements substrate.Store.
func (s *Store) Contains(key substrate.PageKey) bool {
	_, ok := s.slots[key]
	return ok
}

// Len implements substrate.Store.
func (s *Store) Len() int { return len(s.slots) }

// DeletePage implements substrate.Deleter: the key's slot returns to the
// free list (or shrinks the high-water mark) and is reused by later writes.
// The slot's bytes are not scrubbed — the store is a cache backend, and a
// freed slot is unreachable through the index.
func (s *Store) DeletePage(key substrate.PageKey) bool {
	n, ok := s.slots[key]
	if !ok {
		return false
	}
	delete(s.slots, key)
	s.releaseSlot(n)
	return true
}

// Sync flushes the backing file to stable storage (fsync).
func (s *Store) Sync() error {
	if err := s.f.Sync(); err != nil {
		return &hiperr.Error{Op: "filestore.sync",
			Err: fmt.Errorf("%s: %v: %w", s.path, err, hiperr.ErrDiskIO)}
	}
	return nil
}

// StoreIO reports the page transfers that hit the file, for banners and
// harnesses that work against any backend kind.
func (s *Store) StoreIO() (reads, writes int64) { return s.Reads, s.Writes }

var (
	_ substrate.Store   = (*Store)(nil)
	_ substrate.Deleter = (*Store)(nil)
)
