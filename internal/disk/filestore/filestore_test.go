package filestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hipec/internal/substrate"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "pages.dat"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	s := newStore(t)
	key := substrate.PageKey{Object: 7, Offset: 8192}
	page := bytes.Repeat([]byte{0xAB}, 4096)
	s.WritePage(key, page)
	got, ok := s.ReadPage(key)
	if !ok || !bytes.Equal(got, page) {
		t.Fatalf("round trip lost data (ok=%v)", ok)
	}
	if s.Len() != 1 || !s.Contains(key) {
		t.Fatalf("Len=%d Contains=%v", s.Len(), s.Contains(key))
	}
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("Reads=%d Writes=%d", s.Reads, s.Writes)
	}
}

func TestAbsentPage(t *testing.T) {
	s := newStore(t)
	if _, ok := s.ReadPage(substrate.PageKey{Object: 1}); ok {
		t.Fatal("absent page read as present")
	}
}

func TestRewriteReusesSlot(t *testing.T) {
	s := newStore(t)
	key := substrate.PageKey{Object: 1, Offset: 0}
	s.WritePage(key, bytes.Repeat([]byte{1}, 4096))
	s.WritePage(key, bytes.Repeat([]byte{2}, 4096))
	if s.Len() != 1 {
		t.Fatalf("rewrite grew the store to %d slots", s.Len())
	}
	got, _ := s.ReadPage(key)
	if got[0] != 2 {
		t.Fatalf("rewrite not visible, got %d", got[0])
	}
}

func TestShortWriteZeroPads(t *testing.T) {
	s := newStore(t)
	key := substrate.PageKey{Object: 3, Offset: 4096}
	s.WritePage(key, []byte{9, 9})
	got, ok := s.ReadPage(key)
	if !ok || got[0] != 9 || got[1] != 9 || got[2] != 0 || got[4095] != 0 {
		t.Fatalf("short write not zero-padded (ok=%v)", ok)
	}
}

func TestNilDataDurablePresence(t *testing.T) {
	s := newStore(t)
	key := substrate.PageKey{Object: 4, Offset: 0}
	s.WritePage(key, nil)
	got, ok := s.ReadPage(key)
	if !ok {
		t.Fatal("nil write did not record presence")
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("nil write must read back as zeroes")
		}
	}
}

func TestUnalignedOffsetPanics(t *testing.T) {
	s := newStore(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned offset did not panic")
		}
	}()
	s.WritePage(substrate.PageKey{Object: 1, Offset: 100}, nil)
}

func TestOpenTempRemovesOnClose(t *testing.T) {
	s, err := OpenTemp(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	path := s.Path()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("backing file missing while open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("backing file survived Close: %v", err)
	}
}
