package filestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hipec/internal/hiperr"
	"hipec/internal/substrate"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "pages.dat"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustWrite(t *testing.T, s *Store, key substrate.PageKey, data []byte) {
	t.Helper()
	if err := s.WritePage(key, data); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	s := newStore(t)
	key := substrate.PageKey{Object: 7, Offset: 8192}
	page := bytes.Repeat([]byte{0xAB}, 4096)
	mustWrite(t, s, key, page)
	got, ok, err := s.ReadPage(key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !bytes.Equal(got, page) {
		t.Fatalf("round trip lost data (ok=%v)", ok)
	}
	if s.Len() != 1 || !s.Contains(key) {
		t.Fatalf("Len=%d Contains=%v", s.Len(), s.Contains(key))
	}
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("Reads=%d Writes=%d", s.Reads, s.Writes)
	}
}

func TestAbsentPage(t *testing.T) {
	s := newStore(t)
	if _, ok, err := s.ReadPage(substrate.PageKey{Object: 1}); ok || err != nil {
		t.Fatalf("absent page read as present (ok=%v err=%v)", ok, err)
	}
}

func TestRewriteReusesSlot(t *testing.T) {
	s := newStore(t)
	key := substrate.PageKey{Object: 1, Offset: 0}
	mustWrite(t, s, key, bytes.Repeat([]byte{1}, 4096))
	mustWrite(t, s, key, bytes.Repeat([]byte{2}, 4096))
	if s.Len() != 1 {
		t.Fatalf("rewrite grew the store to %d slots", s.Len())
	}
	got, _, _ := s.ReadPage(key)
	if got[0] != 2 {
		t.Fatalf("rewrite not visible, got %d", got[0])
	}
}

func TestShortWriteZeroPads(t *testing.T) {
	s := newStore(t)
	key := substrate.PageKey{Object: 3, Offset: 4096}
	mustWrite(t, s, key, []byte{9, 9})
	got, ok, _ := s.ReadPage(key)
	if !ok || got[0] != 9 || got[1] != 9 || got[2] != 0 || got[4095] != 0 {
		t.Fatalf("short write not zero-padded (ok=%v)", ok)
	}
}

func TestNilDataDurablePresence(t *testing.T) {
	s := newStore(t)
	key := substrate.PageKey{Object: 4, Offset: 0}
	mustWrite(t, s, key, nil)
	got, ok, _ := s.ReadPage(key)
	if !ok {
		t.Fatal("nil write did not record presence")
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("nil write must read back as zeroes")
		}
	}
}

func TestUnalignedOffsetPanics(t *testing.T) {
	s := newStore(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned offset did not panic")
		}
	}()
	s.WritePage(substrate.PageKey{Object: 1, Offset: 100}, nil)
}

// TestPartialWriteDoesNotClobberReadBuffer pins ReadPage's contract: the
// returned buffer stays valid until the next ReadPage, even across a
// partial-page WritePage (which pads in its own scratch buffer).
func TestPartialWriteDoesNotClobberReadBuffer(t *testing.T) {
	s := newStore(t)
	keyA := substrate.PageKey{Object: 1, Offset: 0}
	keyB := substrate.PageKey{Object: 2, Offset: 0}
	mustWrite(t, s, keyA, bytes.Repeat([]byte{0xAA}, 4096))
	held, ok, err := s.ReadPage(keyA)
	if !ok || err != nil {
		t.Fatalf("read back: ok=%v err=%v", ok, err)
	}
	mustWrite(t, s, keyB, []byte{0xBB, 0xBB}) // partial: pads via writeBuf
	for i, b := range held {
		if b != 0xAA {
			t.Fatalf("partial WritePage clobbered held read buffer at %d: %#x", i, b)
		}
	}
}

// TestIOErrorsAreTypedNotPanics: real I/O failures surface as hiperr-typed
// ErrDiskIO errors, not process-killing panics, and a failed first write
// does not record the key as present.
func TestIOErrorsAreTypedNotPanics(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "pages.dat"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	key := substrate.PageKey{Object: 1, Offset: 0}
	mustWrite(t, s, key, []byte{1, 2, 3})
	// Close the fd underneath the store: every subsequent transfer fails
	// the way EIO/ENOSPC would.
	if err := s.f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, rerr := s.ReadPage(key); !ok || !errors.Is(rerr, hiperr.ErrDiskIO) {
		t.Fatalf("ReadPage on dead fd: ok=%v err=%v, want present + ErrDiskIO", ok, rerr)
	}
	werr := s.WritePage(substrate.PageKey{Object: 9, Offset: 0}, []byte{7})
	if !errors.Is(werr, hiperr.ErrDiskIO) {
		t.Fatalf("WritePage on dead fd: err=%v, want ErrDiskIO", werr)
	}
	if s.Contains(substrate.PageKey{Object: 9, Offset: 0}) {
		t.Fatal("failed first write recorded the key as present")
	}
	if werr := s.WritePage(key, []byte{7}); !errors.Is(werr, hiperr.ErrDiskIO) {
		t.Fatalf("rewrite on dead fd: err=%v, want ErrDiskIO", werr)
	}
	if !s.Contains(key) {
		t.Fatal("failed rewrite dropped an already-durable key")
	}
}

func TestOpenTempRemovesOnClose(t *testing.T) {
	s, err := OpenTemp(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	path := s.Path()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("backing file missing while open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("backing file survived Close: %v", err)
	}
}
